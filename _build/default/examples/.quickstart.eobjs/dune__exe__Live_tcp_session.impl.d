examples/live_tcp_session.ml: Array Bgp_addr Bgp_fsm Bgp_route Bgp_speaker Bgp_tcp Bgp_wire Format Hashtbl List Option Sys Unix
