examples/live_tcp_session.mli:
