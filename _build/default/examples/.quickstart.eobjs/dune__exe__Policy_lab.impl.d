examples/policy_lab.ml: Bgp_addr Bgp_policy Bgp_rib Bgp_route Format List
