examples/policy_lab.mli:
