examples/quickstart.ml: Bgp_addr Bgp_fib Bgp_rib Bgp_route Format List
