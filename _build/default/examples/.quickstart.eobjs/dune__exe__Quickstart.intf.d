examples/quickstart.mli:
