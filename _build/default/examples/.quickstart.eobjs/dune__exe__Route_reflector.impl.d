examples/route_reflector.ml: Bgp_addr Bgp_rib Bgp_route Format List Printf
