examples/route_reflector.mli:
