examples/startup_storm.ml: Array Bgp_router Bgpmark Format List Sys
