examples/startup_storm.mli:
