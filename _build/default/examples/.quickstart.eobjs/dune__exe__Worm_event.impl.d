examples/worm_event.ml: Array Bgp_addr Bgp_netsim Bgp_route Bgp_router Bgp_sim Bgp_speaker Format List
