examples/worm_event.mli:
