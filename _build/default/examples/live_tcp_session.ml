(* Live TCP session: the same protocol engine used by the benchmark,
   speaking real BGP over a real loopback TCP connection.

   One process hosts both ends: a passive "router" endpoint listening
   on 127.0.0.1 and an active "speaker" endpoint that connects, brings
   the session to Established, transfers a routing table, withdraws
   half of it, and shuts down cleanly with a CEASE.

   Run with:  dune exec examples/live_tcp_session.exe [port] *)

module Fsm = Bgp_fsm.Fsm
module Session = Bgp_fsm.Session
module Msg = Bgp_wire.Msg
module Endpoint = Bgp_tcp.Endpoint
module Loop = Bgp_tcp.Event_loop

let ip = Bgp_addr.Ipv4.of_string_exn
let asn = Bgp_route.Asn.of_int

let () =
  let port =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1)
    else 17900 + (Unix.getpid () mod 100)
  in
  let loop = Loop.create () in

  (* The "router" side keeps a live view of what it has been told. *)
  let routes = Hashtbl.create 1024 in
  let router_hooks =
    { Session.null_hooks with
      Session.on_update =
        (fun u ->
          List.iter (Hashtbl.remove routes) u.Msg.withdrawn;
          Option.iter
            (fun attrs -> List.iter (fun p -> Hashtbl.replace routes p attrs) u.Msg.nlri)
            u.Msg.attrs);
      on_established = (fun () -> Format.printf "[router ] session Established@.");
      on_down = (fun r -> Format.printf "[router ] session down: %s@." r) }
  in
  let speaker_hooks =
    { Session.null_hooks with
      Session.on_established = (fun () -> Format.printf "[speaker] session Established@.") }
  in
  let router =
    Endpoint.listen loop ~port
      ~cfg:(Fsm.default_config ~asn:(asn 65000) ~router_id:(ip "10.255.0.1"))
      ~hooks:router_hooks
  in
  let speaker =
    Endpoint.connect loop ~port
      ~cfg:(Fsm.default_config ~asn:(asn 65001) ~router_id:(ip "192.0.2.1"))
      ~hooks:speaker_hooks
  in
  Format.printf "listening on 127.0.0.1:%d ...@." port;
  Endpoint.start router;
  Endpoint.start speaker;
  let both_up () =
    Endpoint.state router = Fsm.Established
    && Endpoint.state speaker = Fsm.Established
  in
  if not (Loop.run loop ~until:both_up ~timeout:10.0) then begin
    prerr_endline "session failed to establish";
    exit 1
  end;

  (* Transfer a 5000-prefix table in 500-prefix UPDATEs. *)
  let table = Bgp_addr.Prefix_gen.table ~seed:42 ~n:5_000 () in
  let attrs =
    Bgp_speaker.Workload.attrs ~speaker_asn:(asn 65001)
      ~next_hop:(ip "127.0.0.1") ~path_len:3 ()
  in
  List.iter
    (fun chunk -> ignore (Endpoint.send speaker (Msg.announcement attrs chunk)))
    (Bgp_speaker.Workload.chunk 500 table);
  ignore
    (Loop.run loop ~until:(fun () -> Hashtbl.length routes = 5_000) ~timeout:10.0);
  Format.printf "[router ] learned %d routes over real TCP@." (Hashtbl.length routes);

  (* Withdraw the first half. *)
  let half = Array.sub table 0 2_500 in
  List.iter
    (fun chunk -> ignore (Endpoint.send speaker (Msg.withdrawal chunk)))
    (Bgp_speaker.Workload.chunk 500 half);
  ignore
    (Loop.run loop ~until:(fun () -> Hashtbl.length routes = 2_500) ~timeout:10.0);
  Format.printf "[router ] %d routes after withdrawals@." (Hashtbl.length routes);

  (* Clean shutdown: the speaker sends CEASE. *)
  Endpoint.stop speaker;
  ignore
    (Loop.run loop ~until:(fun () -> Endpoint.state router = Fsm.Idle) ~timeout:5.0);
  Endpoint.close speaker;
  Endpoint.close router;
  Format.printf "done.@."
