(* Policy lab: route-maps shaping the decision process.

   Demonstrates the paper's premise that BGP route selection "is always
   policy-based": a Gao-Rexford-style customer/peer/provider policy
   overrides pure path-length selection.

   Run with:  dune exec examples/policy_lab.exe *)

module Policy = Bgp_policy.Policy
module Rib = Bgp_rib.Rib_manager

let ip = Bgp_addr.Ipv4.of_string_exn
let pfx = Bgp_addr.Prefix.of_string_exn
let asn = Bgp_route.Asn.of_int

(* Neighbors: AS 64900 is our customer, AS 7018 our transit provider. *)
let customer =
  Bgp_route.Peer.make ~id:0 ~asn:(asn 64900) ~router_id:(ip "192.0.2.1")
    ~addr:(ip "192.0.2.1")

let provider =
  Bgp_route.Peer.make ~id:1 ~asn:(asn 7018) ~router_id:(ip "192.0.2.2")
    ~addr:(ip "192.0.2.2")

(* Import policy: prefer customer routes (LOCAL_PREF 200) over provider
   routes (LOCAL_PREF 80); drop anything with a bogon prefix; tag
   customer routes with a community. *)
let import_policy =
  let bogons =
    Bgp_addr.Prefix_set.of_list
      [ pfx "10.0.0.0/8"; pfx "172.16.0.0/12"; pfx "192.168.0.0/16" ]
  in
  Policy.make ~name:"gao-rexford-import"
    [ { Policy.term_name = "drop-bogons";
        conds = [ Policy.Prefix_in bogons ];
        verdict = Policy.Reject };
      { Policy.term_name = "customer";
        conds = [ Policy.Neighbor_as (asn 64900) ];
        verdict =
          Policy.Accept
            [ Policy.Set_local_pref 200;
              Policy.Add_community (Bgp_route.Community.make (asn 65000) 100) ] };
      { Policy.term_name = "provider";
        conds = [ Policy.Neighbor_as (asn 7018) ];
        verdict = Policy.Accept [ Policy.Set_local_pref 80 ] }
    ]

let attrs ~peer ~path =
  Bgp_route.Attrs.make
    ~as_path:(Bgp_route.As_path.of_asns (List.map asn path))
    ~next_hop:peer.Bgp_route.Peer.addr ()

let () =
  Format.printf "%a@.@." Policy.pp import_policy;
  let rib =
    Rib.create ~import:import_policy ~local_asn:(asn 65000)
      ~router_id:(ip "10.255.0.1") ()
  in
  Rib.add_peer rib customer;
  Rib.add_peer rib provider;

  (* The provider offers a short path; the customer a longer one.  With
     no policy the provider would win on path length — the import
     policy flips it. *)
  ignore
    (Rib.announce rib ~from:provider (pfx "203.0.113.0/24")
       (attrs ~peer:provider ~path:[ 7018; 3356 ]));
  ignore
    (Rib.announce rib ~from:customer (pfx "203.0.113.0/24")
       (attrs ~peer:customer ~path:[ 64900; 64901; 64902; 64903 ]));
  (match Bgp_rib.Loc_rib.find (Rib.loc_rib rib) (pfx "203.0.113.0/24") with
  | Some best ->
    Format.printf "best route for 203.0.113.0/24: %a@." Bgp_route.Route.pp best;
    Format.printf "  (customer wins despite the longer AS path)@."
  | None -> assert false);

  (* Bogon filtering in action. *)
  let o =
    Rib.announce rib ~from:provider (pfx "10.1.0.0/16")
      (attrs ~peer:provider ~path:[ 7018 ])
  in
  Format.printf "@.announcing bogon 10.1.0.0/16: loc changed = %b (filtered)@."
    o.Rib.loc_changed;

  (* Decision explanation between the two candidates. *)
  let c1 =
    Bgp_route.Route.make ~prefix:(pfx "203.0.113.0/24")
      ~attrs:
        (Bgp_route.Attrs.with_local_pref (Some 200)
           (attrs ~peer:customer ~path:[ 64900; 64901; 64902; 64903 ]))
      ~from:customer
  in
  let c2 =
    Bgp_route.Route.make ~prefix:(pfx "203.0.113.0/24")
      ~attrs:
        (Bgp_route.Attrs.with_local_pref (Some 80)
           (attrs ~peer:provider ~path:[ 7018; 3356 ]))
      ~from:provider
  in
  let c, rule = Bgp_rib.Decision.compare_routes ~local_asn:(asn 65000) c1 c2 in
  Format.printf "@.compare(customer, provider) = %+d, decided by %a@." c
    Bgp_rib.Decision.pp_rule rule
