(* Quickstart: the BGP protocol engine in 60 lines.

   Builds a router's RIB machinery directly (no simulator), feeds it
   announcements from two peers, and shows the decision process,
   forwarding-table deltas, and re-advertisements at work.

   Run with:  dune exec examples/quickstart.exe *)

module Rib = Bgp_rib.Rib_manager
module Fib = Bgp_fib.Fib

let ip = Bgp_addr.Ipv4.of_string_exn
let pfx = Bgp_addr.Prefix.of_string_exn
let asn = Bgp_route.Asn.of_int

let () =
  (* A router in AS 65000 with two EBGP neighbors. *)
  let rib = Rib.create ~local_asn:(asn 65000) ~router_id:(ip "10.255.0.1") () in
  let fib = Fib.create () in
  let peer1 =
    Bgp_route.Peer.make ~id:0 ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
      ~addr:(ip "192.0.2.1")
  in
  let peer2 =
    Bgp_route.Peer.make ~id:1 ~asn:(asn 65002) ~router_id:(ip "192.0.2.2")
      ~addr:(ip "192.0.2.2")
  in
  Rib.add_peer rib peer1;
  Rib.add_peer rib peer2;

  let attrs ~from_asn ~path =
    Bgp_route.Attrs.make
      ~as_path:(Bgp_route.As_path.of_asns (List.map asn path))
      ~next_hop:(if from_asn = 65001 then ip "192.0.2.1" else ip "192.0.2.2")
      ()
  in
  let show_outcome label (o : Rib.outcome) =
    Format.printf "@.== %s@." label;
    Format.printf "   loc-rib changed: %b@." o.Rib.loc_changed;
    List.iter (fun d -> Format.printf "   fib: %a@." Fib.pp_delta d) o.Rib.fib_deltas;
    List.iter
      (fun a -> Format.printf "   out: %a@." Rib.pp_announcement a)
      o.Rib.announcements;
    ignore (Fib.apply_all fib o.Rib.fib_deltas)
  in

  (* 1. peer1 announces a prefix: installed and re-advertised to peer2. *)
  show_outcome "peer1 announces 203.0.113.0/24 (path 65001 7018)"
    (Rib.announce rib ~from:peer1 (pfx "203.0.113.0/24")
       (attrs ~from_asn:65001 ~path:[ 65001; 7018 ]));

  (* 2. peer2 offers a longer path: decision keeps peer1, FIB untouched. *)
  show_outcome "peer2 announces the same prefix with a longer path"
    (Rib.announce rib ~from:peer2 (pfx "203.0.113.0/24")
       (attrs ~from_asn:65002 ~path:[ 65002; 3356; 1299; 7018 ]));

  (* 3. peer2 improves its path: FIB flips to peer2. *)
  show_outcome "peer2 re-announces with a shorter path"
    (Rib.announce rib ~from:peer2 (pfx "203.0.113.0/24")
       (attrs ~from_asn:65002 ~path:[ 65002 ]));

  (* 4. peer2 withdraws: the router falls back to peer1's route. *)
  show_outcome "peer2 withdraws"
    (Rib.withdraw rib ~from:peer2 (pfx "203.0.113.0/24"));

  (* Forwarding lookup against the resulting FIB. *)
  (match Fib.lookup fib (ip "203.0.113.99") with
  | Some (p, nh) ->
    Format.printf "@.lookup 203.0.113.99 -> %a via %a@." Bgp_addr.Prefix.pp p
      Fib.pp_nexthop nh
  | None -> Format.printf "@.lookup failed?!@.");
  Format.printf "loc-rib size: %d, fib size: %d@."
    (Bgp_rib.Loc_rib.size (Rib.loc_rib rib))
    (Fib.size fib)
