(* Route reflection (RFC 4456): scaling IBGP without a full mesh.

   An AS with four routers would classically need 6 IBGP sessions (full
   mesh); with a route reflector it needs 3.  This example builds the
   reflector's RIB, shows the base IBGP rule blocking re-advertisement,
   then shows reflection fixing it — with ORIGINATOR_ID and
   CLUSTER_LIST stamped for loop protection.

   Run with:  dune exec examples/route_reflector.exe *)

module Rib = Bgp_rib.Rib_manager
module A = Bgp_route.Attrs

let ip = Bgp_addr.Ipv4.of_string_exn
let pfx = Bgp_addr.Prefix.of_string_exn
let asn = Bgp_route.Asn.of_int
let local_asn = asn 65000

let ibgp id last =
  Bgp_route.Peer.make ~id ~asn:local_asn
    ~router_id:(ip (Printf.sprintf "10.0.0.%d" last))
    ~addr:(ip (Printf.sprintf "10.0.0.%d" last))

let client1 = ibgp 0 1
let client2 = ibgp 1 2
let core = ibgp 2 3 (* non-client *)

let show_out label (o : Rib.outcome) =
  Format.printf "@.== %s@." label;
  if o.Rib.announcements = [] then Format.printf "   (no advertisements)@."
  else
    List.iter
      (fun a -> Format.printf "   %a@." Rib.pp_announcement a)
      o.Rib.announcements

let route nh = A.make ~as_path:Bgp_route.As_path.empty ~next_hop:(ip nh) ()

let () =
  Format.printf "--- Without reflection: the IBGP dead end ---@.";
  let plain = Rib.create ~local_asn ~router_id:(ip "10.0.0.100") () in
  List.iter (Rib.add_peer plain) [ client1; client2; core ];
  show_out "client1 announces 203.0.113.0/24 over IBGP"
    (Rib.announce plain ~from:client1 (pfx "203.0.113.0/24") (route "10.0.0.1"));
  Format.printf
    "   (RFC 4271 section 9.2: IBGP routes are not re-advertised to IBGP@.\
    \    peers -- a full mesh would be required)@.";

  Format.printf "@.--- With a route reflector ---@.";
  let rr = Rib.create ~local_asn ~router_id:(ip "10.0.0.100") () in
  Rib.add_peer ~rr_client:true rr client1;
  Rib.add_peer ~rr_client:true rr client2;
  Rib.add_peer rr core;
  show_out "client1 announces 203.0.113.0/24"
    (Rib.announce rr ~from:client1 (pfx "203.0.113.0/24") (route "10.0.0.1"));
  show_out "core (non-client) announces 198.51.100.0/24"
    (Rib.announce rr ~from:core (pfx "198.51.100.0/24") (route "10.0.0.3"));
  Format.printf
    "   (non-client routes reach only clients; client routes reach everyone)@.";

  (* Loop protection: the reflector rejects its own reflections. *)
  let looped =
    A.make
      ~cluster_list:[ ip "10.0.0.100" ]
      ~originator_id:(ip "10.0.0.1") ~as_path:Bgp_route.As_path.empty
      ~next_hop:(ip "10.0.0.1") ()
  in
  let o = Rib.announce rr ~from:client2 (pfx "192.0.2.0/24") looped in
  Format.printf
    "@.== client2 replays a route carrying our own cluster id@.\
    \   adj-in change: %s (reflection loop detected and dropped)@."
    (match o.Rib.adj_in_change with `Loop -> "loop" | _ -> "?!")
