(* Startup storm: how long does each router architecture take to learn
   a full table after power-up? (Paper scenario 1/2 — the situation
   "where a router is just powered up and needs to learn routes from
   neighboring routers as fast as possible".)

   Run with:  dune exec examples/startup_storm.exe [table-size] *)

module H = Bgpmark.Harness
module Scenario = Bgpmark.Scenario
module Arch = Bgp_router.Arch

let () =
  let table_size =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5_000
  in
  let config = { H.default_config with H.table_size } in
  Format.printf
    "Loading a %d-prefix table into each router (large packets, then small):@.@."
    table_size;
  Format.printf "%-10s %16s %16s %18s@." "system" "small pkts (tps)"
    "large pkts (tps)" "startup (s, large)";
  List.iter
    (fun arch ->
      let small = H.run ~config arch (Scenario.of_id_exn 1) in
      let large = H.run ~config arch (Scenario.of_id_exn 2) in
      Format.printf "%-10s %16.1f %16.1f %18.1f@." arch.Arch.name small.H.tps
        large.H.tps large.H.measure_seconds)
    Arch.all;
  Format.printf
    "@.Reading: a 2007 full table was ~180k prefixes; scale the startup@.\
     column by %.1fx for the full-table boot time. The XScale-class@.\
     control processor needs tens of minutes — the paper's Fig. 3(c).@."
    (180_000.0 /. float_of_int table_size)
