lib/addr/ipv4.ml: Char Format Hashtbl Int Printf String
