lib/addr/ipv4.mli: Format
