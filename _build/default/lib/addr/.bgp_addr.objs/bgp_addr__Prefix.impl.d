lib/addr/prefix.ml: Float Format Int Ipv4 Printf Result String
