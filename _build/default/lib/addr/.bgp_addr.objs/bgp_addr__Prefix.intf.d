lib/addr/prefix.mli: Format Ipv4
