lib/addr/prefix_gen.ml: Array Hashtbl Int Ipv4 List Option Prefix
