lib/addr/prefix_gen.mli: Prefix
