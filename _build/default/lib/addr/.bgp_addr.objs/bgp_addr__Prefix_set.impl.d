lib/addr/prefix_set.ml: Format List Prefix Set
