lib/addr/prefix_set.mli: Format Ipv4 Prefix
