type t = int

let width = 32
let all_ones = 0xFFFF_FFFF

let of_int n = n land all_ones
let to_int a = a

let of_octets a b c d =
  ((a land 0xFF) lsl 24)
  lor ((b land 0xFF) lsl 16)
  lor ((c land 0xFF) lsl 8)
  lor (d land 0xFF)

let to_octets a =
  ((a lsr 24) land 0xFF, (a lsr 16) land 0xFF, (a lsr 8) land 0xFF, a land 0xFF)

let zero = 0
let broadcast = all_ones

let of_string s =
  let n = String.length s in
  (* Hand-rolled parser: avoids Scanf (which accepts leading spaces and
     stops silently at garbage) and keeps the error cases explicit. *)
  let rec octet i acc digits =
    if i >= n then Ok (acc, i, digits)
    else
      match s.[i] with
      | '0' .. '9' when digits < 3 ->
        octet (i + 1) ((acc * 10) + (Char.code s.[i] - Char.code '0')) (digits + 1)
      | '0' .. '9' -> Error "octet too long"
      | '.' -> Ok (acc, i, digits)
      | c -> Error (Printf.sprintf "unexpected character %C" c)
  in
  let rec go i k acc =
    match octet i 0 0 with
    | Error e -> Error e
    | Ok (_, _, 0) -> Error "empty octet"
    | Ok (v, _, _) when v > 255 -> Error "octet out of range"
    | Ok (v, j, _) ->
      let acc = (acc lsl 8) lor v in
      if k = 3 then if j = n then Ok acc else Error "trailing garbage"
      else if j < n && s.[j] = '.' then go (j + 1) (k + 1) acc
      else Error "expected '.'"
  in
  if n = 0 then Error "empty address" else go 0 0 0

let of_string_exn s =
  match of_string s with
  | Ok a -> a
  | Error e -> invalid_arg (Printf.sprintf "Ipv4.of_string_exn %S: %s" s e)

let to_string a =
  let x, y, z, w = to_octets a in
  Printf.sprintf "%d.%d.%d.%d" x y z w

let pp ppf a = Format.pp_print_string ppf (to_string a)
let compare = Int.compare
let equal = Int.equal
let succ a = (a + 1) land all_ones
let add a n = (a + n) land all_ones

let bit a i =
  if i < 0 || i >= width then invalid_arg "Ipv4.bit: index out of range";
  (a lsr (width - 1 - i)) land 1 = 1

let mask len =
  if len < 0 || len > width then invalid_arg "Ipv4.mask: length out of range";
  if len = 0 then 0 else all_ones lxor ((1 lsl (width - len)) - 1)

let apply_mask a len = a land mask len

let common_prefix_len a b =
  let x = a lxor b in
  if x = 0 then width
  else
    let rec clz i = if x land (1 lsl (width - 1 - i)) <> 0 then i else clz (i + 1) in
    clz 0

let hash a = Hashtbl.hash a
