(** IPv4 addresses.

    An address is an unboxed 32-bit value carried in a native [int]
    (always non-negative, in the range [0, 2{^32} - 1]).  This gives
    allocation-free arithmetic, which matters because the forwarding
    structures and workload generators manipulate millions of
    addresses. *)

type t = private int
(** An IPv4 address. The [private] view guarantees the 32-bit range
    invariant is enforced by this module. *)

val of_int : int -> t
(** [of_int n] truncates [n] to its low 32 bits. *)

val to_int : t -> int
(** [to_int a] is the address as an integer in [0, 2{^32} - 1]. *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d]. Each octet is
    truncated to 8 bits. *)

val to_octets : t -> int * int * int * int

val of_string : string -> (t, string) result
(** Parse dotted-quad notation. Rejects out-of-range octets, empty
    components, and trailing garbage. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on parse failure. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int

val equal : t -> t -> bool

val zero : t

val broadcast : t
(** [255.255.255.255] *)

val succ : t -> t
(** Successor, wrapping at [broadcast]. *)

val add : t -> int -> t
(** [add a n] offsets [a] by [n], modulo 2{^32}. *)

val bit : t -> int -> bool
(** [bit a i] is bit [i] of [a], where bit 0 is the most significant
    bit (network order, as used by prefix tries).
    @raise Invalid_argument if [i] is outside [0, 31]. *)

val mask : int -> t
(** [mask len] is the netmask with [len] leading one bits.
    @raise Invalid_argument if [len] is outside [0, 32]. *)

val apply_mask : t -> int -> t
(** [apply_mask a len] zeroes all but the [len] leading bits of [a]. *)

val common_prefix_len : t -> t -> int
(** Length of the longest common leading bit string of two addresses,
    in [0, 32]. *)

val hash : t -> int
