(** CIDR prefixes (RFC 1519 / RFC 4632).

    A prefix is an IPv4 network address plus a mask length.  Values are
    kept canonical: host bits below the mask are always zero, so
    structural equality coincides with semantic equality. *)

type t = private { addr : Ipv4.t; len : int }
(** [addr] has its host bits zeroed; [0 <= len <= 32]. *)

val make : Ipv4.t -> int -> t
(** [make addr len] canonicalizes [addr] to [len] bits.
    @raise Invalid_argument if [len] is outside [0, 32]. *)

val addr : t -> Ipv4.t
val len : t -> int

val default : t
(** [0.0.0.0/0], the default route. *)

val of_string : string -> (t, string) result
(** Parse ["a.b.c.d/len"]. A bare address parses as a /32.
    Host bits set below the mask are an error (strict CIDR),
    e.g. ["10.0.0.1/24"] is rejected. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on parse failure. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
(** Total order: by address, then by length (shorter first). *)

val equal : t -> t -> bool

val mem : Ipv4.t -> t -> bool
(** [mem a p] is true iff address [a] falls inside prefix [p]. *)

val subsumes : t -> t -> bool
(** [subsumes p q] is true iff every address of [q] is in [p]
    (i.e. [p] is a shorter-or-equal prefix of [q]). *)

val first : t -> Ipv4.t
(** Lowest address covered (the network address itself). *)

val last : t -> Ipv4.t
(** Highest address covered (the broadcast address of the prefix). *)

val size : t -> float
(** Number of addresses covered, as a float (a /0 covers 2{^32}). *)

val split : t -> (t * t) option
(** [split p] is the two halves of [p] ([None] for a /32). *)

val bit : t -> int -> bool
(** [bit p i] is bit [i] of the network address; only meaningful for
    [i < len p].
    @raise Invalid_argument if [i] is outside [0, 31]. *)

val hash : t -> int

val wire_octets : t -> int
(** Number of address octets needed to encode this prefix in an
    UPDATE's NLRI field: [ceil(len / 8)] (RFC 4271 §4.3). *)
