(* SplitMix64 finalizer. OCaml ints are 63-bit; we deliberately run the
   mixer in that domain — the constants still diffuse well and the
   result only feeds synthetic workload shaping, not cryptography. *)
let mix64 z =
  let z = z + 0x1E3779B97F4A7C15 in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

(* Cumulative prefix-length distribution, per-mille, modeled on the
   2007 global BGP table: /24 ~44%, /19../23 ~35%, /16 ~9%, the rest
   spread over /8../18. The exact mille values are unimportant; tests
   only require the qualitative shape (mode at /24, thin short tail). *)
let length_cdf =
  [| (8, 4); (9, 6); (10, 9); (11, 14); (12, 22); (13, 34); (14, 52)
   ; (15, 72); (16, 162); (17, 192); (18, 232); (19, 312); (20, 372)
   ; (21, 432); (22, 512); (23, 562); (24, 1000) |]

let pick_len u =
  let m = u mod 1000 in
  let rec go i =
    let l, c = length_cdf.(i) in
    if m < c then l else go (i + 1)
  in
  go 0

let nth ~seed i =
  let h = mix64 ((seed * 0x1000003) lxor i) in
  let len = pick_len (h land 0xFFFF) in
  (* Keep addresses in 1.0.0.0 .. 223.255.255.255 and away from 127/8,
     so generated tables look like plausible unicast space. *)
  let a = (h lsr 16) land 0xFFFF_FFFF in
  let first_octet = 1 + ((a lsr 24) mod 223) in
  let first_octet = if first_octet = 127 then 128 else first_octet in
  let addr = Ipv4.of_int ((first_octet lsl 24) lor (a land 0xFF_FFFF)) in
  Prefix.make addr len

let table ?(seed = 42) ~n () =
  if n < 0 then invalid_arg "Prefix_gen.table: negative size";
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make (max n 1) Prefix.default in
  let rec fill count i =
    if count = n then ()
    else
      let p = nth ~seed i in
      if Hashtbl.mem seen p then fill count (i + 1)
      else begin
        Hashtbl.add seen p ();
        out.(count) <- p;
        fill (count + 1) (i + 1)
      end
  in
  fill 0 0;
  if n = 0 then [||] else out

let length_histogram ps =
  let h = Hashtbl.create 33 in
  Array.iter
    (fun p ->
      let l = Prefix.len p in
      Hashtbl.replace h l (1 + Option.value ~default:0 (Hashtbl.find_opt h l)))
    ps;
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) h []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
