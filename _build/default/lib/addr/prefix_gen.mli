(** Deterministic synthetic routing-table generation.

    The paper injects "a large routing table" (Internet scale: ~180k
    prefixes in 2007) from a benchmark speaker.  We do not ship real
    RouteViews dumps; instead this module generates tables that are
    - {b repeatable}: a pure function of [(seed, index)], so every
      benchmark run sees the identical table (a stated design goal of
      the paper's benchmark), and
    - {b Internet-shaped}: prefix lengths follow the 2007 BGP table
      distribution (dominated by /24s, with mass at /16–/23 and a thin
      tail of short prefixes).

    Generation uses a SplitMix64-style mixer, so there is no hidden
    state and tables of any two sizes share their common prefix
    ([table ~n] is a prefix of [table ~n:(n+k)] for the same seed). *)

val mix64 : int -> int
(** The underlying 64-bit finalizer (SplitMix64).  Exposed for reuse by
    other deterministic generators (AS paths, traffic). *)

val nth : seed:int -> int -> Prefix.t
(** [nth ~seed i] is the [i]-th synthetic prefix of stream [seed].
    Distinct [i] may occasionally collide; use {!table} when a
    duplicate-free table is required. *)

val table : ?seed:int -> n:int -> unit -> Prefix.t array
(** [table ~seed ~n ()] is [n] {e distinct} prefixes drawn from stream
    [seed] (default seed 42), in generation order.
    @raise Invalid_argument if [n < 0]. *)

val length_histogram : Prefix.t array -> (int * int) list
(** [(len, count)] pairs, ascending by [len]; diagnostic for tests. *)
