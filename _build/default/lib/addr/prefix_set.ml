module M = Set.Make (Prefix)

type t = M.t

let empty = M.empty
let is_empty = M.is_empty
let cardinal = M.cardinal
let add = M.add
let remove = M.remove
let mem = M.mem
let of_list ps = List.fold_left (fun s p -> M.add p s) M.empty ps
let to_list = M.elements

let covering p s =
  let rec go l acc =
    if l > Prefix.len p then List.rev acc
    else
      let q = Prefix.make (Prefix.addr p) l in
      go (l + 1) (if M.mem q s then q :: acc else acc)
  in
  go 0 []

let best_covering p s =
  let rec go l =
    if l < 0 then None
    else
      let q = Prefix.make (Prefix.addr p) l in
      if M.mem q s then Some q else go (l - 1)
  in
  go (Prefix.len p)

let covers_addr a s = best_covering (Prefix.make a 32) s <> None
let fold = M.fold
let iter = M.iter
let union = M.union
let inter = M.inter
let equal = M.equal

let pp ppf s =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") Prefix.pp)
    (to_list s)
