(** Finite sets of prefixes with containment queries.

    Backed by a balanced map keyed by {!Prefix.compare}.  Covering
    queries walk the at-most-33 possible ancestor prefixes, so they are
    O(33 log n) — plenty for policy prefix-lists, which are small. *)

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int
val add : Prefix.t -> t -> t
val remove : Prefix.t -> t -> t
val mem : Prefix.t -> t -> bool
val of_list : Prefix.t list -> t
val to_list : t -> Prefix.t list
(** In {!Prefix.compare} order. *)

val covering : Prefix.t -> t -> Prefix.t list
(** [covering p s] is every member of [s] that {!Prefix.subsumes} [p],
    shortest (least specific) first. *)

val best_covering : Prefix.t -> t -> Prefix.t option
(** The longest (most specific) member of [s] subsuming [p]. *)

val covers_addr : Ipv4.t -> t -> bool
(** True iff some member contains the address. *)

val fold : (Prefix.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Prefix.t -> unit) -> t -> unit
val union : t -> t -> t
val inter : t -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
