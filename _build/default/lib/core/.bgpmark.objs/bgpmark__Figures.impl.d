lib/core/figures.ml: Bgp_netsim Bgp_router Bgp_sim Bgp_stats Buffer Float Harness List Option Printf Scenario String
