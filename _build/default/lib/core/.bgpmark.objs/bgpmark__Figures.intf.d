lib/core/figures.mli: Bgp_router Bgp_stats Harness Scenario
