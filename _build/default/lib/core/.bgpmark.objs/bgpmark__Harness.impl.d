lib/core/harness.ml: Array Bgp_addr Bgp_fib Bgp_netsim Bgp_rib Bgp_route Bgp_router Bgp_sim Bgp_speaker Float Format Hashtbl List Option Printf Scenario Stdlib
