lib/core/harness.mli: Bgp_fib Bgp_netsim Bgp_rib Bgp_router Bgp_sim Format Scenario Stdlib
