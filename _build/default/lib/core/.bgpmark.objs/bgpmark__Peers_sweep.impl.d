lib/core/peers_sweep.ml: Bgp_addr Bgp_netsim Bgp_rib Bgp_route Bgp_router Bgp_sim Bgp_speaker Buffer Float List Printf
