lib/core/peers_sweep.mli: Bgp_router
