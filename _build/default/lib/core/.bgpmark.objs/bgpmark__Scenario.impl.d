lib/core/scenario.ml: Buffer Format List Printf
