lib/core/scenario.mli: Format
