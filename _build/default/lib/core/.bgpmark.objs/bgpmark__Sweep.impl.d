lib/core/sweep.ml: Bgp_netsim Bgp_router Bgp_stats Harness List Printf Scenario
