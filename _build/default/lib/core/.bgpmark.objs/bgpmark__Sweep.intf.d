lib/core/sweep.mli: Bgp_router Bgp_stats Harness Scenario
