lib/core/table3.ml: Bgp_router Buffer Float Harness List Option Printf Scenario
