lib/core/table3.mli: Bgp_router Harness Scenario
