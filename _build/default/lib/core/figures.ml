module Arch = Bgp_router.Arch
module Trace = Bgp_sim.Trace
module Traffic = Bgp_netsim.Traffic
module Chart = Bgp_stats.Chart

type cpu_figure = {
  title : string;
  arch_name : string;
  scenario_id : int;
  cross_traffic_mbps : float;
  rows : Chart.series list;
  forwarding_rate : Chart.series option;
  result : Harness.result;
}

let cpu_run ?(config = Harness.default_config) ?(cross_mbps = 0.0) arch scenario =
  let config =
    { config with
      Harness.trace_interval =
        Some (Option.value ~default:1.0 config.Harness.trace_interval);
      cross_traffic =
        (if cross_mbps > 0.0 then Traffic.make ~mbps:cross_mbps ()
         else config.Harness.cross_traffic) }
  in
  let result = Harness.run ~config arch scenario in
  let samples = result.Harness.trace in
  let names =
    match samples with [] -> [] | s :: _ -> List.map fst s.Trace.s_procs
  in
  let proc_series name =
    { Chart.label = name;
      points =
        List.map
          (fun s ->
            ( s.Trace.s_time,
              Option.value ~default:0.0 (List.assoc_opt name s.Trace.s_procs) ))
          samples }
  in
  let rows =
    List.map proc_series names
    @ [ { Chart.label = "interrupts";
          points = List.map (fun s -> (s.Trace.s_time, s.Trace.s_interrupt)) samples };
        { Chart.label = "forwarding(sys)";
          points = List.map (fun s -> (s.Trace.s_time, s.Trace.s_forwarding)) samples }
      ]
  in
  let forwarding_rate =
    if cross_mbps > 0.0 then
      let admitted = Float.min cross_mbps arch.Arch.line_rate_mbps in
      Some
        { Chart.label = "forwarding rate (Mbps)";
          points =
            List.map
              (fun s -> (s.Trace.s_time, admitted *. s.Trace.s_fwd_ratio))
              samples }
    else None
  in
  { title =
      Printf.sprintf "%s, scenario %d%s" arch.Arch.name scenario.Scenario.id
        (if cross_mbps > 0.0 then Printf.sprintf ", %.0f Mbps cross-traffic" cross_mbps
         else "");
    arch_name = arch.Arch.name; scenario_id = scenario.Scenario.id;
    cross_traffic_mbps = cross_mbps; rows; forwarding_rate; result }

let render_cpu f =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "--- %s ---\n" f.title);
  Buffer.add_string b
    (Chart.render ~x_label:"time (s)" ~y_label:"CPU load (% of one core)" f.rows);
  Option.iter
    (fun s ->
      Buffer.add_char b '\n';
      Buffer.add_string b
        (Chart.render ~x_label:"time (s)" ~y_label:"forwarding rate (Mbps)" [ s ]))
    f.forwarding_rate;
  Buffer.add_string b
    (Printf.sprintf "tps=%.1f verified=%s\n" f.result.Harness.tps
       (match f.result.Harness.verified with Ok () -> "ok" | Error e -> e));
  Buffer.contents b

let fig3 ?config () =
  let sc6 = Scenario.of_id_exn 6 in
  List.map
    (fun arch -> cpu_run ?config arch sc6)
    [ Arch.pentium3; Arch.xeon; Arch.ixp2400 ]

let fig4 ?config () =
  List.map
    (fun sid -> cpu_run ?config Arch.pentium3 (Scenario.of_id_exn sid))
    [ 1; 2 ]

let fig6 ?config () =
  let sc8 = Scenario.of_id_exn 8 in
  [ cpu_run ?config ~cross_mbps:0.0 Arch.pentium3 sc8;
    cpu_run ?config ~cross_mbps:300.0 Arch.pentium3 sc8 ]

let render_all figs = String.concat "\n" (List.map render_cpu figs)
