(** Reproductions of the paper's time-series figures.

    Each [figN] function runs the corresponding experiment and returns
    a rendered multi-chart report; [*_data] variants expose the raw
    series for tests and external plotting. *)

type cpu_figure = {
  title : string;
  arch_name : string;
  scenario_id : int;
  cross_traffic_mbps : float;
  rows : Bgp_stats.Chart.series list;
      (** per-process CPU %, plus interrupts/forwarding *)
  forwarding_rate : Bgp_stats.Chart.series option;
      (** achieved forwarding Mbps over time (Fig. 6(c)) *)
  result : Harness.result;
}

val cpu_run :
  ?config:Harness.config -> ?cross_mbps:float -> Bgp_router.Arch.t ->
  Scenario.t -> cpu_figure
(** One traced run (trace interval auto-scaled to the run length). *)

val render_cpu : cpu_figure -> string

val fig3 : ?config:Harness.config -> unit -> cpu_figure list
(** Scenario 6 on Pentium III / Xeon / IXP2400: per-process CPU load
    over the three phases. *)

val fig4 : ?config:Harness.config -> unit -> cpu_figure list
(** Scenarios 1 and 2 on the Pentium III: packet-size effect on the
    process mix. *)

val fig6 : ?config:Harness.config -> unit -> cpu_figure list
(** Scenario 8 on the Pentium III without and with 300 Mbps of
    cross-traffic, including the forwarding-rate dip. *)

val render_all : cpu_figure list -> string
