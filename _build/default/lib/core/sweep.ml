module Arch = Bgp_router.Arch
module Traffic = Bgp_netsim.Traffic

type point = { mbps : float; result : Harness.result }

type series = {
  arch_name : string;
  line_rate : float;
  points : point list;
}

type t = { scenario : Scenario.t; series : series list }

let default_levels = List.init 11 (fun i -> float_of_int (i * 100))

let run ?(config = Harness.default_config) ?(levels = default_levels)
    ?(archs = Bgp_router.Arch.all) scenario =
  let series =
    List.map
      (fun arch ->
        let line = arch.Arch.line_rate_mbps in
        (* Sample below the line rate (a level right at the cap is
           included as the last point, like the paper's end-of-line
           markers). *)
        let levels =
          List.sort_uniq compare
            (List.filter (fun m -> m <= line) levels @ [ line ])
        in
        let points =
          List.map
            (fun mbps ->
              let config =
                { config with
                  Harness.cross_traffic = Traffic.make ~mbps () }
              in
              { mbps; result = Harness.run ~config arch scenario })
            levels
        in
        { arch_name = arch.Arch.name; line_rate = line; points })
      archs
  in
  { scenario; series }

let tps_series t =
  List.map
    (fun s ->
      { Bgp_stats.Chart.label = s.arch_name;
        points = List.map (fun p -> (p.mbps, p.result.Harness.tps)) s.points })
    t.series

let render t =
  Printf.sprintf "Benchmark %d: transactions/s vs cross-traffic\n%s"
    t.scenario.Scenario.id
    (Bgp_stats.Chart.render ~log_y:true ~x_label:"cross traffic (Mbps)"
       ~y_label:"transactions/s" (tps_series t))

let degradation s =
  match s.points with
  | [] -> 1.0
  | first :: _ ->
    let last = List.nth s.points (List.length s.points - 1) in
    if last.result.Harness.tps <= 0.0 then infinity
    else first.result.Harness.tps /. last.result.Harness.tps
