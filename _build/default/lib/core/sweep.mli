(** Cross-traffic sweeps — the machinery behind Figure 5 (eight panels
    of transactions/s vs. offered cross-traffic for all four
    systems).

    Cross-traffic only makes sense up to each system's line rate, so
    the sweep clips its sample grid per architecture, exactly as the
    paper's plots end early for the Cisco (78 Mbps) and the Pentium III
    (315 Mbps). *)

type point = {
  mbps : float;
  result : Harness.result;
}

type series = {
  arch_name : string;
  line_rate : float;
  points : point list;  (** ascending offered Mbps *)
}

type t = {
  scenario : Scenario.t;
  series : series list;
}

val default_levels : float list
(** 0, 100, ..., 1000 Mbps (clipped per system). *)

val run :
  ?config:Harness.config -> ?levels:float list ->
  ?archs:Bgp_router.Arch.t list -> Scenario.t -> t
(** Sweep one scenario. [config.cross_traffic] is overridden by each
    level. *)

val tps_series : t -> Bgp_stats.Chart.series list
(** One chart series per architecture. *)

val render : t -> string
(** Log-y ASCII panel like one Fig. 5 subplot. *)

val degradation : series -> float
(** tps(no cross-traffic) / tps(highest level), >= 1 when traffic
    hurts; the number the Fig. 5 shape criteria are stated in. *)
