lib/fib/dir24_8.ml: Array Bgp_addr Bytes Char Hashtbl Int List
