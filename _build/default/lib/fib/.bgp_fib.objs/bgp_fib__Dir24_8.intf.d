lib/fib/dir24_8.mli: Bgp_addr
