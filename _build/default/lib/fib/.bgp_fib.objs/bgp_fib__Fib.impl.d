lib/fib/fib.ml: Bgp_addr Format List Patricia
