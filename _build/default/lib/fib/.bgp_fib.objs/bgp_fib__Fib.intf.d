lib/fib/fib.mli: Bgp_addr Format Patricia
