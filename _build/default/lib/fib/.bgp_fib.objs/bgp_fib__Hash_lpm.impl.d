lib/fib/hash_lpm.ml: Array Bgp_addr Hashtbl
