lib/fib/hash_lpm.mli: Bgp_addr
