lib/fib/patricia.ml: Bgp_addr List Printf Result
