lib/fib/patricia.mli: Bgp_addr
