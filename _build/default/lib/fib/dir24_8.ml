module P = Bgp_addr.Prefix
module I = Bgp_addr.Ipv4

(* Cell encoding (16 bits):
   0xFFFF                  = empty
   0x8000 lor block_index  = pointer to a second-level block
   index < 0x8000          = direct index into [entries] *)
let empty_cell = 0xFFFF
let ptr_bit = 0x8000

let is_ptr cell = cell <> empty_cell && cell land ptr_bit <> 0

type 'a t = {
  tbl24 : Bytes.t;            (* 2^24 cells of 2 bytes *)
  blocks : Bytes.t array;     (* 256-cell blocks for prefixes > /24 *)
  entries : (P.t * 'a) array;
}

let get16 b i =
  Char.code (Bytes.get b (2 * i)) lor (Char.code (Bytes.get b ((2 * i) + 1)) lsl 8)

let set16 b i v =
  Bytes.set b (2 * i) (Char.chr (v land 0xFF));
  Bytes.set b ((2 * i) + 1) (Char.chr ((v lsr 8) land 0xFF))

let build bindings =
  (* Deduplicate (later bindings win), then process in ascending prefix
     length so more-specific prefixes overwrite the ranges painted by
     less-specific ones. All prefixes > /24 therefore arrive after
     every <= /24 prefix, which keeps block creation one-way. *)
  let dedup = Hashtbl.create 1024 in
  List.iter (fun (p, v) -> Hashtbl.replace dedup p v) bindings;
  let entries =
    Hashtbl.fold (fun p v acc -> (p, v) :: acc) dedup []
    |> List.sort (fun (p, _) (q, _) ->
           let c = Int.compare (P.len p) (P.len q) in
           if c <> 0 then c else P.compare p q)
    |> Array.of_list
  in
  if Array.length entries > 0x7FFE then
    invalid_arg "Dir24_8.build: too many entries for 15-bit indices";
  let tbl24 = Bytes.make (2 * (1 lsl 24)) '\xFF' in
  let blocks = ref [||] in
  let nblocks = ref 0 in
  let new_block seed_cell =
    let b = Bytes.make (2 * 256) '\xFF' in
    if seed_cell <> empty_cell then
      for i = 0 to 255 do
        set16 b i seed_cell
      done;
    if !nblocks = Array.length !blocks then begin
      let bigger = Array.make (max 8 (2 * !nblocks)) b in
      Array.blit !blocks 0 bigger 0 !nblocks;
      blocks := bigger
    end;
    !blocks.(!nblocks) <- b;
    incr nblocks;
    !nblocks - 1
  in
  Array.iteri
    (fun idx (p, _) ->
      let len = P.len p in
      let a = I.to_int (P.addr p) in
      if len <= 24 then begin
        let base = a lsr 8 in
        let span = 1 lsl (24 - len) in
        (* No > /24 prefix has been processed yet, so every touched cell
           is empty or direct — overwrite unconditionally. *)
        for i = base to base + span - 1 do
          set16 tbl24 i idx
        done
      end
      else begin
        let chunk = a lsr 8 in
        let cell = get16 tbl24 chunk in
        let bidx =
          if is_ptr cell then cell land 0x7FFF
          else begin
            let bidx = new_block cell in
            set16 tbl24 chunk (ptr_bit lor bidx);
            bidx
          end
        in
        let b = !blocks.(bidx) in
        let base = a land 0xFF in
        let span = 1 lsl (32 - len) in
        for i = base to base + span - 1 do
          set16 b i idx
        done
      end)
    entries;
  { tbl24; blocks = Array.sub !blocks 0 !nblocks; entries }

let lookup t a =
  let ai = I.to_int a in
  let cell = get16 t.tbl24 (ai lsr 8) in
  if cell = empty_cell then None
  else if is_ptr cell then begin
    let inner = get16 t.blocks.(cell land 0x7FFF) (ai land 0xFF) in
    if inner = empty_cell then None else Some t.entries.(inner)
  end
  else Some t.entries.(cell)

let size t = Array.length t.entries

let memory_bytes t =
  Bytes.length t.tbl24 + Array.fold_left (fun n b -> n + Bytes.length b) 0 t.blocks
