(** DIR-24-8-BASIC lookup table (Gupta/Lin/McKeown, as surveyed by
    Ruiz-Sanchez et al. [9] in the paper's related work).

    A compiled, read-optimized structure: one 2{^24}-entry first-level
    table indexed by the top 24 address bits, plus 256-entry
    second-level blocks for the minority of prefixes longer than /24.
    Lookups touch at most two array cells — the hardware-friendly
    design used by line-card ASICs.

    The price is update cost: a single insertion may rewrite up to
    2{^24} first-level cells, which is why this module only offers
    whole-table {!build}.  The bench suite uses it to show the
    throughput/updatability trade-off against {!Patricia}. *)

type 'a t

val build : (Bgp_addr.Prefix.t * 'a) list -> 'a t
(** Compile a table.  When the same prefix appears twice the later
    binding wins.
    @raise Invalid_argument when there are more than 32766 distinct
    bindings (the 15-bit index budget of the two-byte cells). *)

val lookup : 'a t -> Bgp_addr.Ipv4.t -> (Bgp_addr.Prefix.t * 'a) option
val size : 'a t -> int
val memory_bytes : 'a t -> int
(** Approximate resident size of the index arrays (the figure the
    lookup-survey trade-off is about). *)
