type nexthop = { nh_addr : Bgp_addr.Ipv4.t; nh_port : int }

let pp_nexthop ppf nh =
  Format.fprintf ppf "%a@@port%d" Bgp_addr.Ipv4.pp nh.nh_addr nh.nh_port

let nexthop_equal a b =
  Bgp_addr.Ipv4.equal a.nh_addr b.nh_addr && a.nh_port = b.nh_port

type delta =
  | Add of Bgp_addr.Prefix.t * nexthop
  | Replace of Bgp_addr.Prefix.t * nexthop
  | Withdraw of Bgp_addr.Prefix.t

let pp_delta ppf = function
  | Add (p, nh) -> Format.fprintf ppf "add %a -> %a" Bgp_addr.Prefix.pp p pp_nexthop nh
  | Replace (p, nh) ->
    Format.fprintf ppf "replace %a -> %a" Bgp_addr.Prefix.pp p pp_nexthop nh
  | Withdraw p -> Format.fprintf ppf "withdraw %a" Bgp_addr.Prefix.pp p

let delta_prefix = function Add (p, _) | Replace (p, _) | Withdraw p -> p

type stats = { adds : int; replaces : int; withdraws : int; lookups : int }

type t = {
  mutable tree : nexthop Patricia.t;
  mutable size : int;
  mutable adds : int;
  mutable replaces : int;
  mutable withdraws : int;
  mutable lookups : int;
}

let create () =
  { tree = Patricia.empty; size = 0; adds = 0; replaces = 0; withdraws = 0;
    lookups = 0 }

let size t = t.size

let stats t =
  { adds = t.adds; replaces = t.replaces; withdraws = t.withdraws;
    lookups = t.lookups }

let set t p nh =
  match Patricia.find_exact p t.tree with
  | Some existing when nexthop_equal existing nh -> false
  | Some _ ->
    t.tree <- Patricia.add p nh t.tree;
    true
  | None ->
    t.tree <- Patricia.add p nh t.tree;
    t.size <- t.size + 1;
    true

let apply t = function
  | Add (p, nh) ->
    t.adds <- t.adds + 1;
    set t p nh
  | Replace (p, nh) ->
    t.replaces <- t.replaces + 1;
    set t p nh
  | Withdraw p ->
    t.withdraws <- t.withdraws + 1;
    (match Patricia.find_exact p t.tree with
    | None -> false
    | Some _ ->
      t.tree <- Patricia.remove p t.tree;
      t.size <- t.size - 1;
      true)

let apply_all t deltas =
  List.fold_left (fun n d -> if apply t d then n + 1 else n) 0 deltas

let lookup t a =
  t.lookups <- t.lookups + 1;
  Patricia.lookup a t.tree

let find_exact t p = Patricia.find_exact p t.tree
let iter f t = Patricia.iter f t.tree
let to_list t = Patricia.to_list t.tree
let snapshot t = t.tree
