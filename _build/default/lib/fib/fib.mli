(** The router's forwarding information base (FIB).

    This is the structure the BGP process pushes Loc-RIB changes into
    (via the simulated [xorp_fea] stage) and the forwarding engine
    consults per packet.  It wraps {!Patricia} with next-hop payloads,
    a maintained size counter, and cumulative operation statistics that
    the router cost model converts into simulated CPU cycles. *)

type nexthop = {
  nh_addr : Bgp_addr.Ipv4.t;  (** IP of the neighbor to forward to *)
  nh_port : int;              (** egress interface / peer index *)
}

val pp_nexthop : Format.formatter -> nexthop -> unit
val nexthop_equal : nexthop -> nexthop -> bool

type delta =
  | Add of Bgp_addr.Prefix.t * nexthop
  | Replace of Bgp_addr.Prefix.t * nexthop
  | Withdraw of Bgp_addr.Prefix.t

val pp_delta : Format.formatter -> delta -> unit
val delta_prefix : delta -> Bgp_addr.Prefix.t

type stats = {
  adds : int;
  replaces : int;
  withdraws : int;
  lookups : int;
  (** All cumulative since [create]. *)
}

type t

val create : unit -> t
val size : t -> int
val stats : t -> stats

val apply : t -> delta -> bool
(** Apply one delta.  Returns [false] for a semantic no-op ([Add] of an
    existing identical entry, [Withdraw] of a missing one, [Replace]
    with the same next hop) — the router model charges less for
    those. *)

val apply_all : t -> delta list -> int
(** Number of deltas that changed the table. *)

val lookup : t -> Bgp_addr.Ipv4.t -> (Bgp_addr.Prefix.t * nexthop) option
(** Longest-prefix match (counts toward [lookups] in {!stats}). *)

val find_exact : t -> Bgp_addr.Prefix.t -> nexthop option
val iter : (Bgp_addr.Prefix.t -> nexthop -> unit) -> t -> unit
val to_list : t -> (Bgp_addr.Prefix.t * nexthop) list
val snapshot : t -> nexthop Patricia.t
(** O(1) persistent snapshot of the current table. *)
