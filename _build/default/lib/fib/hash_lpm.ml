module P = Bgp_addr.Prefix
module I = Bgp_addr.Ipv4

type 'a t = {
  (* tables.(l) maps the masked address of every stored /l prefix. *)
  tables : (I.t, 'a) Hashtbl.t array;
  mutable count : int;
}

let create () = { tables = Array.init 33 (fun _ -> Hashtbl.create 64); count = 0 }

let clear t =
  Array.iter Hashtbl.reset t.tables;
  t.count <- 0

let insert t p v =
  let tbl = t.tables.(P.len p) in
  let key = P.addr p in
  if not (Hashtbl.mem tbl key) then t.count <- t.count + 1;
  Hashtbl.replace tbl key v

let remove t p =
  let tbl = t.tables.(P.len p) in
  let key = P.addr p in
  if Hashtbl.mem tbl key then begin
    Hashtbl.remove tbl key;
    t.count <- t.count - 1;
    true
  end
  else false

let find_exact t p = Hashtbl.find_opt t.tables.(P.len p) (P.addr p)

let lookup t a =
  let rec go l =
    if l < 0 then None
    else
      let key = I.apply_mask a l in
      match Hashtbl.find_opt t.tables.(l) key with
      | Some v -> Some (P.make key l, v)
      | None -> go (l - 1)
  in
  go 32

let size t = t.count

let iter f t =
  Array.iteri
    (fun l tbl -> Hashtbl.iter (fun key v -> f (P.make key l) v) tbl)
    t.tables
