(** Hash-table longest-prefix match: one table per prefix length,
    probed from /32 down to /0.

    The comparison baseline for the Patricia trie in the lookup
    ablation benches: O(1) insert/remove, but every lookup costs up to
    33 hash probes regardless of table contents (Ruiz-Sanchez et al.'s
    "binary search on prefix lengths" family, without the binary
    search). *)

type 'a t

val create : unit -> 'a t
val clear : 'a t -> unit
val insert : 'a t -> Bgp_addr.Prefix.t -> 'a -> unit
(** Insert or replace. *)

val remove : 'a t -> Bgp_addr.Prefix.t -> bool
(** [true] when a binding was removed. *)

val find_exact : 'a t -> Bgp_addr.Prefix.t -> 'a option
val lookup : 'a t -> Bgp_addr.Ipv4.t -> (Bgp_addr.Prefix.t * 'a) option
val size : 'a t -> int
val iter : (Bgp_addr.Prefix.t -> 'a -> unit) -> 'a t -> unit
