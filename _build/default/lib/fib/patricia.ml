module P = Bgp_addr.Prefix
module I = Bgp_addr.Ipv4

(* Invariants:
   - every child's prefix is a strict more-specific of its parent's;
   - a left child's bit at position [parent len] is 0, a right child's 1;
   - a node with no value has two non-empty children (path compression),
     except possibly the root.  We keep even the root compressed. *)
type 'a t =
  | Empty
  | Node of { pfx : P.t; value : 'a option; l : 'a t; r : 'a t }

let empty = Empty
let is_empty = function Empty -> true | Node _ -> false

let leaf pfx v = Node { pfx; value = Some v; l = Empty; r = Empty }

(* Common prefix length of two prefixes, capped by both lengths. *)
let common p q =
  min (min (P.len p) (P.len q)) (I.common_prefix_len (P.addr p) (P.addr q))

let rec add p v t =
  match t with
  | Empty -> leaf p v
  | Node n ->
    let c = common p n.pfx in
    if c = P.len n.pfx && c = P.len p then Node { n with value = Some v }
    else if c = P.len n.pfx then
      (* p is strictly inside n: descend on bit c of p. *)
      if P.bit p c then Node { n with r = add p v n.r }
      else Node { n with l = add p v n.l }
    else if c = P.len p then
      (* p is a strict ancestor of n: new node above. *)
      if P.bit n.pfx c then Node { pfx = p; value = Some v; l = Empty; r = t }
      else Node { pfx = p; value = Some v; l = t; r = Empty }
    else
      (* Diverge below c: create a valueless branch point. *)
      let join = P.make (P.addr p) c in
      let lf = leaf p v in
      if P.bit p c then Node { pfx = join; value = None; l = t; r = lf }
      else Node { pfx = join; value = None; l = lf; r = t }

(* Re-establish path compression after a removal. *)
let collapse pfx value l r =
  match value, l, r with
  | None, Empty, Empty -> Empty
  | None, (Node _ as child), Empty | None, Empty, (Node _ as child) -> child
  | _ -> Node { pfx; value; l; r }

let rec remove p t =
  match t with
  | Empty -> Empty
  | Node n ->
    if P.equal p n.pfx then collapse n.pfx None n.l n.r
    else if P.len p > P.len n.pfx && common p n.pfx = P.len n.pfx then
      if P.bit p (P.len n.pfx) then collapse n.pfx n.value n.l (remove p n.r)
      else collapse n.pfx n.value (remove p n.l) n.r
    else t

let rec find_exact p t =
  match t with
  | Empty -> None
  | Node n ->
    if P.equal p n.pfx then n.value
    else if P.len p > P.len n.pfx && common p n.pfx = P.len n.pfx then
      find_exact p (if P.bit p (P.len n.pfx) then n.r else n.l)
    else None

let lookup a t =
  let rec go best t =
    match t with
    | Empty -> best
    | Node n ->
      if not (P.mem a n.pfx) then best
      else
        let best = match n.value with Some v -> Some (n.pfx, v) | None -> best in
        if P.len n.pfx = 32 then best
        else go best (if I.bit a (P.len n.pfx) then n.r else n.l)
  in
  go None t

let lookup_prefix p t =
  let rec go best t =
    match t with
    | Empty -> best
    | Node n ->
      if not (P.subsumes n.pfx p) then best
      else
        let best = match n.value with Some v -> Some (n.pfx, v) | None -> best in
        if P.len n.pfx >= P.len p then best
        else go best (if P.bit p (P.len n.pfx) then n.r else n.l)
  in
  go None t

let rec fold f t acc =
  match t with
  | Empty -> acc
  | Node n ->
    let acc = match n.value with Some v -> f n.pfx v acc | None -> acc in
    fold f n.r (fold f n.l acc)

let iter f t = fold (fun p v () -> f p v) t ()
let cardinal t = fold (fun _ _ n -> n + 1) t 0
let to_list t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])

let subtree_count t p =
  let rec go t =
    match t with
    | Empty -> 0
    | Node n ->
      if P.subsumes p n.pfx then
        (* whole subtree inside p *)
        (match n.value with Some _ -> 1 | None -> 0) + go_all n.l + go_all n.r
      else if P.subsumes n.pfx p && P.len n.pfx < P.len p then
        go (if P.bit p (P.len n.pfx) then n.r else n.l)
      else 0
  and go_all t =
    match t with
    | Empty -> 0
    | Node n -> (match n.value with Some _ -> 1 | None -> 0) + go_all n.l + go_all n.r
  in
  go t

let check_invariants t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec go ~parent t =
    match t with
    | Empty -> Ok ()
    | Node n ->
      let bad_child =
        match parent with
        | None -> None
        | Some (ppfx, expect_bit) ->
          if not (P.subsumes ppfx n.pfx) || P.len n.pfx <= P.len ppfx then
            Some "child not strictly inside parent"
          else if P.bit n.pfx (P.len ppfx) <> expect_bit then
            Some "child on wrong side"
          else None
      in
      (match bad_child with
      | Some msg -> fail "%s at %s" msg (P.to_string n.pfx)
      | None ->
        if n.value = None && (n.l = Empty || n.r = Empty) then
          fail "collapsible valueless node at %s" (P.to_string n.pfx)
        else
          Result.bind (go ~parent:(Some (n.pfx, false)) n.l) (fun () ->
              go ~parent:(Some (n.pfx, true)) n.r))
  in
  match t with
  | Empty -> Ok ()
  | Node n ->
    (* The root itself has no parent constraint but must not be a
       collapsible branch either — except a bare valueless root cannot
       occur; enforce uniformly. *)
    if n.value = None && (n.l = Empty || n.r = Empty) then
      Error "collapsible valueless root"
    else
      Result.bind (go ~parent:(Some (n.pfx, false)) n.l) (fun () ->
          go ~parent:(Some (n.pfx, true)) n.r)
