(** Path-compressed binary trie (Patricia trie) keyed by prefixes, with
    longest-prefix-match lookup.  The workhorse structure behind the
    router's forwarding table and Loc-RIB iteration order.

    Persistent: [add]/[remove] share structure, so snapshotting a FIB
    for comparison (as the benchmark's verification step does) is
    free. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

val add : Bgp_addr.Prefix.t -> 'a -> 'a t -> 'a t
(** Insert or replace the binding at exactly this prefix. *)

val remove : Bgp_addr.Prefix.t -> 'a t -> 'a t
(** Remove the exact binding; no-op when absent. *)

val find_exact : Bgp_addr.Prefix.t -> 'a t -> 'a option

val lookup : Bgp_addr.Ipv4.t -> 'a t -> (Bgp_addr.Prefix.t * 'a) option
(** Longest-prefix match for an address. *)

val lookup_prefix : Bgp_addr.Prefix.t -> 'a t -> (Bgp_addr.Prefix.t * 'a) option
(** Longest stored prefix that {!Bgp_addr.Prefix.subsumes} the given
    prefix (useful for aggregate checks). *)

val cardinal : 'a t -> int
(** O(n). Wrap in {!Fib} for a maintained counter. *)

val iter : (Bgp_addr.Prefix.t -> 'a -> unit) -> 'a t -> unit
(** In ascending {!Bgp_addr.Prefix.compare}-like trie order. *)

val fold : (Bgp_addr.Prefix.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
val to_list : 'a t -> (Bgp_addr.Prefix.t * 'a) list

val subtree_count : 'a t -> Bgp_addr.Prefix.t -> int
(** Number of stored prefixes subsumed by the argument. *)

val check_invariants : 'a t -> (unit, string) result
(** Structural invariants (children inside parent, no collapsible
    nodes); used by the property tests. *)
