lib/fsm/framer.ml: Bgp_wire String
