lib/fsm/framer.mli: Bgp_wire
