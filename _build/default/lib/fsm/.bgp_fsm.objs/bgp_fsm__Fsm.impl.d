lib/fsm/fsm.ml: Bgp_addr Bgp_route Bgp_wire Format
