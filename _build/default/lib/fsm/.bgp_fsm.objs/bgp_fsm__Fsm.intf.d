lib/fsm/fsm.mli: Bgp_addr Bgp_route Bgp_wire Format
