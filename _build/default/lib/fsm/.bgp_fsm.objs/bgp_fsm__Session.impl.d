lib/fsm/session.ml: Bgp_wire Framer Fsm Hashtbl List String
