lib/fsm/session.mli: Bgp_wire Fsm
