(** The BGP session finite state machine (RFC 4271 §8), as a pure
    transition function.

    The FSM neither owns sockets nor timers: it consumes {!event}s and
    emits {!action}s, which the surrounding {!Session} executes against
    a transport and a timer service.  Purity keeps every transition
    unit-testable.

    Connection-collision resolution (§6.8) is out of scope: the
    benchmark establishes exactly one connection per speaker pair, with
    the router side passive. *)

type state = Idle | Connect | Active | Open_sent | Open_confirm | Established

val pp_state : Format.formatter -> state -> unit
val state_name : state -> string

type timer = Connect_retry | Hold | Keepalive

val pp_timer : Format.formatter -> timer -> unit

type event =
  | Manual_start
  | Manual_stop
  | Tcp_connected   (** transport reports the connection is up *)
  | Tcp_failed      (** connect attempt failed *)
  | Tcp_closed      (** established connection lost *)
  | Msg_received of Bgp_wire.Msg.t
  | Protocol_error of Bgp_wire.Msg.error
      (** the framer failed to decode incoming bytes *)
  | Timer_expired of timer

type action =
  | Start_connect               (** open the transport *)
  | Close_connection
  | Send of Bgp_wire.Msg.t
  | Arm of timer * float        (** (re)arm with the given seconds *)
  | Cancel of timer
  | Deliver_update of Bgp_wire.Msg.update
      (** pass an UPDATE to the RIB layer *)
  | Deliver_refresh of int * int
      (** a ROUTE-REFRESH (RFC 2918) arrived: resend the Adj-RIB-Out *)
  | Session_established
  | Session_down of string      (** reason, for logging/metrics *)

type config = {
  my_asn : Bgp_route.Asn.t;
  my_id : Bgp_addr.Ipv4.t;
  hold_time : int;              (** proposed, seconds; 0 disables *)
  connect_retry : float;        (** seconds *)
  passive : bool;               (** wait for the peer to connect *)
}

val default_config :
  asn:Bgp_route.Asn.t -> router_id:Bgp_addr.Ipv4.t -> config
(** hold 90 s, connect-retry 30 s, active. *)

type t

val create : config -> t
val state : t -> state
val config : t -> config

val negotiated_hold_time : t -> float option
(** [Some seconds] once OPENs have been exchanged (min of both sides);
    [None] before that or when keepalives are disabled. *)

val peer_open : t -> Bgp_wire.Msg.open_msg option
(** The OPEN received from the peer, once in Open_confirm or later. *)

val handle : t -> event -> t * action list
(** The transition function.  Unknown/ignorable events in a state
    return the unchanged machine and no actions. *)
