lib/netsim/channel.ml: Bgp_fsm Bgp_sim Float String
