lib/netsim/channel.mli: Bgp_fsm Bgp_sim
