lib/netsim/forwarding.ml: Bgp_sim Float Traffic
