lib/netsim/forwarding.mli: Bgp_sim Traffic
