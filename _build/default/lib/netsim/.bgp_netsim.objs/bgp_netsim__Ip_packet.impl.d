lib/netsim/ip_packet.ml: Bgp_addr Bgp_fib Bytes Char Printf String
