lib/netsim/ip_packet.mli: Bgp_addr Bgp_fib
