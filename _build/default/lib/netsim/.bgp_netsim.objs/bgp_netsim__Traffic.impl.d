lib/netsim/traffic.ml: Format
