lib/netsim/traffic.mli: Format
