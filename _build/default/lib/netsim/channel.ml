module Engine = Bgp_sim.Engine

type side = A | B

type dir_state = {
  mutable receiver : string -> unit;
  mutable on_connected : unit -> unit;
  mutable on_closed : unit -> unit;
  mutable busy_until : float;  (* serialization horizon of the sender *)
  mutable carried : int;
}

type t = {
  engine : Engine.t;
  latency : float;
  bandwidth_bps : float;
  a : dir_state;
  b : dir_state;
  mutable opened : bool;
}

let blank () =
  { receiver = (fun _ -> ()); on_connected = (fun () -> ());
    on_closed = (fun () -> ()); busy_until = 0.0; carried = 0 }

let create engine ?(latency = 1e-4) ?(bandwidth_mbps = 1000.0) () =
  if latency < 0.0 then invalid_arg "Channel.create: negative latency";
  if bandwidth_mbps <= 0.0 then invalid_arg "Channel.create: bandwidth";
  { engine; latency; bandwidth_bps = bandwidth_mbps *. 1e6; a = blank ();
    b = blank (); opened = false }

let this t = function A -> t.a | B -> t.b
let other t = function A -> t.b | B -> t.a

let set_receiver t side f = (this t side).receiver <- f
let set_on_connected t side f = (this t side).on_connected <- f
let set_on_closed t side f = (this t side).on_closed <- f

let connect t =
  if not t.opened then begin
    t.opened <- true;
    ignore
      (Engine.schedule t.engine ~delay:t.latency (fun () ->
           if t.opened then begin
             t.a.on_connected ();
             t.b.on_connected ()
           end))
  end

let close t =
  if t.opened then begin
    t.opened <- false;
    t.a.busy_until <- 0.0;
    t.b.busy_until <- 0.0;
    ignore
      (Engine.schedule t.engine ~delay:t.latency (fun () ->
           t.a.on_closed ();
           t.b.on_closed ()))
  end

let is_open t = t.opened

let send t side bytes =
  if t.opened && bytes <> "" then begin
    let src = this t side in
    let dst = other t side in
    src.carried <- src.carried + String.length bytes;
    let now = Engine.now t.engine in
    let start = Float.max now src.busy_until in
    let ser = float_of_int (8 * String.length bytes) /. t.bandwidth_bps in
    src.busy_until <- start +. ser;
    let deliver_at = start +. ser +. t.latency in
    ignore
      (Engine.schedule_at t.engine ~time:deliver_at (fun () ->
           if t.opened then dst.receiver bytes))
  end

let session_io t side ~connect_side =
  { Bgp_fsm.Session.out_bytes = (fun bytes -> send t side bytes);
    start_connect = (fun () -> if connect_side then connect t);
    close = (fun () -> close t) }

let bytes_carried t side = (this t side).carried
