(** A reliable, ordered, bidirectional byte channel inside the
    simulator — the stand-in for a TCP connection between a benchmark
    speaker and the router under test.

    Models propagation latency and per-direction serialization at a
    configurable bandwidth; delivery is loss-free and ordered, which is
    what BGP assumes of TCP. *)

type side = A | B

type t

val create :
  Bgp_sim.Engine.t -> ?latency:float -> ?bandwidth_mbps:float -> unit -> t
(** Default latency 100 us, bandwidth 1000 Mbps. *)

val set_receiver : t -> side -> (string -> unit) -> unit
(** Install the byte sink for one side (bytes sent by the {e other}
    side arrive here). *)

val set_on_connected : t -> side -> (unit -> unit) -> unit
val set_on_closed : t -> side -> (unit -> unit) -> unit

val connect : t -> unit
(** Begin the (abstracted) handshake; both sides' [on_connected] fire
    after one latency.  Idempotent while open. *)

val close : t -> unit
(** Both sides' [on_closed] fire after one latency; in-flight bytes are
    dropped. *)

val is_open : t -> bool

val send : t -> side -> string -> unit
(** Queue bytes from [side] to its peer.  Silently dropped when the
    channel is closed (as with a TCP RST race). *)

val session_io : t -> side -> connect_side:bool -> Bgp_fsm.Session.io
(** Adapt one side to {!Bgp_fsm.Session.io}: [start_connect] calls
    {!connect} when [connect_side] (the active opener), else waits.
    [close] closes the channel. *)

val bytes_carried : t -> side -> int
(** Total payload bytes this side has transmitted. *)
