type resources =
  | Shared of {
      sched : Bgp_sim.Sched.t;
      interrupt_cycles_per_packet : float;
      forwarding_cycles_per_packet : float;
    }
  | Dedicated of { capacity_pps : float }

type t = {
  resources : resources;
  line_rate_mbps : float;
  mutable traffic : Traffic.t;
}

let create resources ~line_rate_mbps =
  if line_rate_mbps <= 0.0 then invalid_arg "Forwarding.create: line rate";
  { resources; line_rate_mbps; traffic = Traffic.none }

let line_rate_mbps t = t.line_rate_mbps

(* The line-rate ceiling applies before the CPU sees the packets: a
   315 Mbps PCI bus simply never delivers 500 Mbps of interrupts. *)
let admitted_pps t =
  let admitted_mbps = Float.min t.traffic.Traffic.mbps t.line_rate_mbps in
  Traffic.pps { t.traffic with Traffic.mbps = admitted_mbps }

let set_offered t traffic =
  t.traffic <- traffic;
  match t.resources with
  | Shared { sched; interrupt_cycles_per_packet; forwarding_cycles_per_packet } ->
    let pps = admitted_pps t in
    Bgp_sim.Sched.set_interrupt_demand sched
      ~cycles_per_sec:(pps *. interrupt_cycles_per_packet);
    Bgp_sim.Sched.set_forwarding_demand sched
      ~cycles_per_sec:(pps *. forwarding_cycles_per_packet) ()
  | Dedicated _ -> ()

let offered t = t.traffic

let achieved_mbps t =
  let admitted = Float.min t.traffic.Traffic.mbps t.line_rate_mbps in
  match t.resources with
  | Shared { sched; _ } -> admitted *. Bgp_sim.Sched.forwarding_ratio sched
  | Dedicated { capacity_pps } ->
    let pps = admitted_pps t in
    if pps <= capacity_pps then admitted
    else admitted *. (capacity_pps /. pps)

let loss_ratio t =
  if t.traffic.Traffic.mbps <= 0.0 then 0.0
  else 1.0 -. (achieved_mbps t /. t.traffic.Traffic.mbps)

let uses_control_cpu t =
  match t.resources with Shared _ -> true | Dedicated _ -> false
