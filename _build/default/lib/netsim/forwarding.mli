(** The forwarding engine of a router under cross-traffic: RFC 1812
    per-packet work (checksum, TTL, FIB lookup) executed on whichever
    resources the architecture provides.

    Two resource models (paper §IV):

    - {b Shared}: forwarding runs in the kernel of the {e same} CPU
      that runs BGP (uni-core, dual-core).  Per-packet interrupt cycles
      are charged as absolute-priority interrupt demand and per-packet
      forwarding cycles as high-weight kernel demand on the control
      scheduler; heavy BGP activity can therefore shave forwarding
      throughput (Fig. 6(c)) and vice versa (Fig. 5).

    - {b Dedicated}: forwarding runs on its own silicon (IXP2400
      packet processors, Cisco forwarding path) with a packet-rate
      capacity, never touching the control CPU.

    Either way the {e line rate} (bus/port ceiling, Table in §V.B)
    caps the achievable bit rate. *)

type resources =
  | Shared of {
      sched : Bgp_sim.Sched.t;
      interrupt_cycles_per_packet : float;
      forwarding_cycles_per_packet : float;
    }
  | Dedicated of { capacity_pps : float }

type t

val create : resources -> line_rate_mbps:float -> t

val line_rate_mbps : t -> float

val set_offered : t -> Traffic.t -> unit
(** Change the offered cross-traffic (propagates demand to a shared
    scheduler). *)

val offered : t -> Traffic.t

val achieved_mbps : t -> float
(** Bit rate currently leaving the router: offered, capped by line
    rate and capacity, scaled by the shared scheduler's forwarding
    ratio when applicable. *)

val loss_ratio : t -> float
(** 1 - achieved/offered (0 when idle). *)

val uses_control_cpu : t -> bool
