module I = Bgp_addr.Ipv4

type t = {
  src : I.t;
  dst : I.t;
  ttl : int;
  protocol : int;
  payload : string;
}

let make ?(ttl = 64) ?(protocol = 17) ~src ~dst payload =
  if ttl < 0 || ttl > 255 then invalid_arg "Ip_packet.make: ttl out of range";
  if protocol < 0 || protocol > 255 then
    invalid_arg "Ip_packet.make: protocol out of range";
  { src; dst; ttl; protocol; payload }

(* RFC 1071: sum 16-bit big-endian words with end-around carry, then
   complement. *)
let checksum buf =
  let n = String.length buf in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + ((Char.code buf.[!i] lsl 8) lor Char.code buf.[!i + 1]);
    i := !i + 2
  done;
  if n land 1 = 1 then sum := !sum + (Char.code buf.[n - 1] lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

(* RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m').  A TTL decrement changes
   the big-endian word (ttl lsl 8 | proto) by -0x0100; protocol is
   unchanged so only the high byte moves. *)
let incremental_ttl_decrement ~old_checksum ~old_ttl =
  if old_ttl <= 0 || old_ttl > 255 then
    invalid_arg "Ip_packet.incremental_ttl_decrement: bad ttl";
  let m = old_ttl lsl 8 in
  let m' = (old_ttl - 1) lsl 8 in
  let sum =
    (lnot old_checksum land 0xFFFF) + (lnot m land 0xFFFF) + m'
  in
  let sum = ref sum in
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let header_len = 20

let build_header t ~checksum:ck =
  let b = Bytes.create header_len in
  let set i v = Bytes.set b i (Char.chr (v land 0xFF)) in
  let total = header_len + String.length t.payload in
  set 0 0x45 (* version 4, IHL 5 *);
  set 1 0 (* DSCP/ECN *);
  set 2 (total lsr 8);
  set 3 total;
  set 4 0;
  set 5 0 (* identification *);
  set 6 0;
  set 7 0 (* flags/fragment *);
  set 8 t.ttl;
  set 9 t.protocol;
  set 10 (ck lsr 8);
  set 11 ck;
  let src = I.to_int t.src and dst = I.to_int t.dst in
  set 12 (src lsr 24);
  set 13 (src lsr 16);
  set 14 (src lsr 8);
  set 15 src;
  set 16 (dst lsr 24);
  set 17 (dst lsr 16);
  set 18 (dst lsr 8);
  set 19 dst;
  Bytes.to_string b

let serialize t =
  let h0 = build_header t ~checksum:0 in
  let ck = checksum h0 in
  build_header t ~checksum:ck ^ t.payload

let parse buf =
  let n = String.length buf in
  if n < header_len then Error "truncated header"
  else begin
    let byte i = Char.code buf.[i] in
    let version = byte 0 lsr 4 in
    let ihl = byte 0 land 0xF in
    if version <> 4 then Error (Printf.sprintf "bad version %d" version)
    else if ihl <> 5 then Error "options not supported"
    else begin
      let total = (byte 2 lsl 8) lor byte 3 in
      if total <> n then
        Error (Printf.sprintf "length field %d does not match buffer %d" total n)
      else if checksum (String.sub buf 0 header_len) <> 0 then
        (* A correct header sums (with its checksum field included) to
           0xFFFF, whose complement is 0. *)
        Error "bad header checksum"
      else begin
        let word32 i =
          (byte i lsl 24) lor (byte (i + 1) lsl 16) lor (byte (i + 2) lsl 8)
          lor byte (i + 3)
        in
        Ok
          { src = I.of_int (word32 12); dst = I.of_int (word32 16);
            ttl = byte 8; protocol = byte 9;
            payload = String.sub buf header_len (n - header_len) }
      end
    end
  end

type verdict =
  | Forwarded of { next_hop : Bgp_fib.Fib.nexthop; packet : t }
  | Ttl_expired
  | No_route

let forward fib t =
  if t.ttl <= 1 then Ttl_expired
  else
    match Bgp_fib.Fib.lookup fib t.dst with
    | None -> No_route
    | Some (_, next_hop) ->
      Forwarded { next_hop; packet = { t with ttl = t.ttl - 1 } }

let forward_wire fib buf =
  match parse buf with
  | Error e -> Error e
  | Ok pkt -> (
    match forward fib pkt with
    | Ttl_expired -> Error "ttl expired"
    | No_route -> Error "no route"
    | Forwarded { next_hop; packet } ->
      (* Fast path: patch TTL and checksum in place rather than
         re-serializing from scratch. *)
      let b = Bytes.of_string buf in
      let old_ck = (Char.code buf.[10] lsl 8) lor Char.code buf.[11] in
      let ck = incremental_ttl_decrement ~old_checksum:old_ck ~old_ttl:pkt.ttl in
      Bytes.set b 8 (Char.chr packet.ttl);
      Bytes.set b 10 (Char.chr (ck lsr 8));
      Bytes.set b 11 (Char.chr (ck land 0xFF));
      Ok (next_hop, Bytes.to_string b))
