(** IPv4 packets and RFC 1812 forwarding — the real data path.

    The benchmark charges forwarding as a fluid CPU load (millions of
    packets per second would swamp a discrete-event simulation), but
    the per-packet work it stands for is implemented here for real:
    header parse/serialize, Internet checksum (RFC 1071) with
    incremental update (RFC 1624), TTL handling, and the
    forward-one-packet function every RFC 1812 router performs.
    Property tests validate the checksum algebra; the calibration of
    the fluid model's cycles-per-packet constants is justified by
    benching {!forward} (see [bench/main.ml]). *)

type t = {
  src : Bgp_addr.Ipv4.t;
  dst : Bgp_addr.Ipv4.t;
  ttl : int;                  (** 0-255 *)
  protocol : int;             (** 0-255; 6 = TCP, 17 = UDP *)
  payload : string;
}

val make :
  ?ttl:int -> ?protocol:int -> src:Bgp_addr.Ipv4.t -> dst:Bgp_addr.Ipv4.t ->
  string -> t
(** Default TTL 64, protocol 17. *)

val serialize : t -> string
(** A minimal 20-byte IPv4 header (no options) with a correct header
    checksum, followed by the payload. *)

val parse : string -> (t, string) result
(** Parse and {e verify the checksum}; errors name the failure
    (truncated, bad version, bad checksum, length mismatch). *)

(** {1 Internet checksum} *)

val checksum : string -> int
(** RFC 1071 16-bit one's-complement sum of the buffer (padded with a
    zero byte when odd). *)

val incremental_ttl_decrement : old_checksum:int -> old_ttl:int -> int
(** RFC 1624 incremental checksum update for a TTL decrement — what
    fast paths do instead of recomputing the sum. *)

(** {1 Forwarding} *)

type verdict =
  | Forwarded of { next_hop : Bgp_fib.Fib.nexthop; packet : t }
      (** TTL decremented, checksum updated *)
  | Ttl_expired       (** would emit ICMP Time Exceeded *)
  | No_route          (** would emit ICMP Destination Unreachable *)

val forward : Bgp_fib.Fib.t -> t -> verdict
(** One RFC 1812 forwarding decision: TTL check + decrement and
    longest-prefix-match against the FIB. *)

val forward_wire : Bgp_fib.Fib.t -> string -> (Bgp_fib.Fib.nexthop * string, string) result
(** The full per-packet fast path on wire bytes: parse + verify,
    forward, re-serialize (with incremental checksum update).  This is
    the function the fluid model's cycles-per-packet constant
    abstracts. *)
