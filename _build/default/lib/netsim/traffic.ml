type t = { mbps : float; packet_bytes : int }

let make ?(packet_bytes = 64) ~mbps () =
  if mbps < 0.0 then invalid_arg "Traffic.make: negative rate";
  if packet_bytes < 1 then invalid_arg "Traffic.make: packet size";
  { mbps; packet_bytes }

let none = { mbps = 0.0; packet_bytes = 64 }
let pps t = t.mbps *. 1e6 /. (8.0 *. float_of_int t.packet_bytes)

let pp ppf t =
  Format.fprintf ppf "%.0f Mbps (%dB packets, %.0f pps)" t.mbps t.packet_bytes
    (pps t)
