(** Cross-traffic description: the data-plane load offered to the
    router while the BGP benchmark runs (paper §V.B).

    The paper's generators blast minimum-size frames at a configured
    bit rate; what matters to the control plane is the resulting
    {e packet} rate (interrupts are per packet) and {e bit} rate
    (line-rate ceilings are in Mbps). *)

type t = {
  mbps : float;          (** offered bit rate *)
  packet_bytes : int;    (** frame size; 64 B minimum Ethernet *)
}

val make : ?packet_bytes:int -> mbps:float -> unit -> t
(** Default 64-byte packets.
    @raise Invalid_argument for negative rate or packet size < 1. *)

val none : t
(** Zero traffic. *)

val pps : t -> float
(** Packets per second. *)

val pp : Format.formatter -> t -> unit
