lib/policy/policy.ml: Bgp_addr Bgp_route Format List
