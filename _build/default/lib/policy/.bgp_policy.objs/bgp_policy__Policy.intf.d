lib/policy/policy.mli: Bgp_addr Bgp_route Format
