module R = Bgp_route.Route
module A = Bgp_route.Attrs

type cond =
  | Prefix_in of Bgp_addr.Prefix_set.t
  | Prefix_exact of Bgp_addr.Prefix_set.t
  | Prefix_len_range of int * int
  | Path_contains of Bgp_route.Asn.t
  | Neighbor_as of Bgp_route.Asn.t
  | Origin_as of Bgp_route.Asn.t
  | Path_len_at_least of int
  | Has_community of Bgp_route.Community.t
  | Med_at_most of int
  | Origin_is of Bgp_route.Attrs.origin
  | All of cond list
  | Any of cond list
  | Not of cond

type action =
  | Set_local_pref of int
  | Clear_local_pref
  | Set_med of int
  | Clear_med
  | Prepend_path of Bgp_route.Asn.t * int
  | Add_community of Bgp_route.Community.t
  | Strip_communities
  | Set_next_hop of Bgp_addr.Ipv4.t

type verdict = Accept of action list | Reject

type term = { term_name : string; conds : cond list; verdict : verdict }

type t = { name : string; terms : term list; default : [ `Accept | `Reject ] }

let make ?(default = `Accept) ~name terms = { name; terms; default }
let name t = t.name
let terms t = t.terms
let accept_all = { name = "accept-all"; terms = []; default = `Accept }
let reject_all = { name = "reject-all"; terms = []; default = `Reject }

(* [matches_counted] threads a work counter so [work_units] shares the
   evaluation logic instead of re-implementing it. *)
let rec matches_counted count c r =
  incr count;
  let attrs = R.attrs r in
  match c with
  | Prefix_in set -> Bgp_addr.Prefix_set.best_covering (R.prefix r) set <> None
  | Prefix_exact set -> Bgp_addr.Prefix_set.mem (R.prefix r) set
  | Prefix_len_range (lo, hi) ->
    let l = Bgp_addr.Prefix.len (R.prefix r) in
    l >= lo && l <= hi
  | Path_contains a -> Bgp_route.As_path.contains a attrs.A.as_path
  | Neighbor_as a ->
    (match Bgp_route.As_path.first_hop attrs.A.as_path with
    | Some h -> Bgp_route.Asn.equal h a
    | None -> false)
  | Origin_as a ->
    (match Bgp_route.As_path.origin_as attrs.A.as_path with
    | Some h -> Bgp_route.Asn.equal h a
    | None -> false)
  | Path_len_at_least n -> Bgp_route.As_path.length attrs.A.as_path >= n
  | Has_community c -> A.has_community c attrs
  | Med_at_most n -> (match attrs.A.med with Some m -> m <= n | None -> false)
  | Origin_is o -> attrs.A.origin = o
  | All cs -> List.for_all (fun c -> matches_counted count c r) cs
  | Any cs -> List.exists (fun c -> matches_counted count c r) cs
  | Not c -> not (matches_counted count c r)

let matches c r =
  let count = ref 0 in
  matches_counted count c r

let apply_action act r =
  let attrs = R.attrs r in
  let attrs =
    match act with
    | Set_local_pref v -> A.with_local_pref (Some v) attrs
    | Clear_local_pref -> A.with_local_pref None attrs
    | Set_med v -> A.with_med (Some v) attrs
    | Clear_med -> A.with_med None attrs
    | Prepend_path (a, n) ->
      A.with_as_path (Bgp_route.As_path.prepend_n a n attrs.A.as_path) attrs
    | Add_community c -> A.add_community c attrs
    | Strip_communities -> { attrs with A.communities = [] }
    | Set_next_hop nh -> { attrs with A.next_hop = nh }
  in
  R.make ~prefix:(R.prefix r) ~attrs ~from:(R.from r)

let eval_counted count t r =
  let rec go = function
    | [] -> (match t.default with `Accept -> Some r | `Reject -> None)
    | term :: rest ->
      if List.for_all (fun c -> matches_counted count c r) term.conds then
        match term.verdict with
        | Reject -> None
        | Accept actions -> Some (List.fold_left (fun r a -> apply_action a r) r actions)
      else go rest
  in
  go t.terms

let eval t r =
  let count = ref 0 in
  eval_counted count t r

let work_units t r =
  let count = ref 0 in
  ignore (eval_counted count t r);
  (* Even the empty policy costs one unit: the router must still run
     the route through the (trivial) filter stage. *)
  max 1 !count

let pp_verdict ppf = function
  | Reject -> Format.pp_print_string ppf "reject"
  | Accept [] -> Format.pp_print_string ppf "accept"
  | Accept acts -> Format.fprintf ppf "accept (%d actions)" (List.length acts)

let pp ppf t =
  Format.fprintf ppf "@[<v>policy %s (default %s)" t.name
    (match t.default with `Accept -> "accept" | `Reject -> "reject");
  List.iter
    (fun term ->
      Format.fprintf ppf "@,  term %s: %d conds -> %a" term.term_name
        (List.length term.conds) pp_verdict term.verdict)
    t.terms;
  Format.fprintf ppf "@]"
