(** Routing policy: the mechanism that makes BGP "always policy-based"
    (paper §III.A, citing Gao & Rexford).

    A policy is an ordered list of {e terms}, as in XORP's policy
    framework or a Cisco route-map: each term has match conditions
    (ANDed) and either rejects the route or applies a list of actions
    and accepts it.  The first matching term decides; a configurable
    default applies when no term matches.

    Policies are evaluated on {b import} (between Adj-RIB-In and the
    decision process) and on {b export} (between Loc-RIB and each
    Adj-RIB-Out). *)

type cond =
  | Prefix_in of Bgp_addr.Prefix_set.t
      (** the route's prefix equals, or is a more-specific of, a member *)
  | Prefix_exact of Bgp_addr.Prefix_set.t
      (** the route's prefix is exactly a member *)
  | Prefix_len_range of int * int
      (** inclusive bounds on the route's prefix length *)
  | Path_contains of Bgp_route.Asn.t
  | Neighbor_as of Bgp_route.Asn.t  (** first hop of the AS path *)
  | Origin_as of Bgp_route.Asn.t    (** last hop of the AS path *)
  | Path_len_at_least of int
  | Has_community of Bgp_route.Community.t
  | Med_at_most of int              (** false when MED is absent *)
  | Origin_is of Bgp_route.Attrs.origin
  | All of cond list                (** conjunction; [All []] is true *)
  | Any of cond list                (** disjunction; [Any []] is false *)
  | Not of cond

type action =
  | Set_local_pref of int
  | Clear_local_pref
  | Set_med of int
  | Clear_med
  | Prepend_path of Bgp_route.Asn.t * int
  | Add_community of Bgp_route.Community.t
  | Strip_communities
  | Set_next_hop of Bgp_addr.Ipv4.t

type verdict = Accept of action list | Reject

type term = { term_name : string; conds : cond list; verdict : verdict }
(** [conds] are ANDed; an empty list always matches. *)

type t

val make : ?default:[ `Accept | `Reject ] -> name:string -> term list -> t
(** Default default is [`Accept] (BGP's implicit permit differs per
    vendor; XORP accepts when no policy is configured). *)

val name : t -> string
val terms : t -> term list

val accept_all : t
(** The empty always-accept policy. *)

val reject_all : t

val eval : t -> Bgp_route.Route.t -> Bgp_route.Route.t option
(** [eval p r] is [None] when rejected, or [Some r'] with the first
    matching term's actions applied. *)

val matches : cond -> Bgp_route.Route.t -> bool
(** Evaluate a single condition (exposed for tests). *)

val apply_action : action -> Bgp_route.Route.t -> Bgp_route.Route.t

val work_units : t -> Bgp_route.Route.t -> int
(** Number of condition evaluations performed on [r] — the quantity the
    router cost model charges for policy processing. *)

val pp : Format.formatter -> t -> unit
