lib/rib/adj_rib.ml: Bgp_addr Bgp_route Hashtbl
