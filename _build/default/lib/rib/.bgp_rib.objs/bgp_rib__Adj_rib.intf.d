lib/rib/adj_rib.mli: Bgp_addr Bgp_route
