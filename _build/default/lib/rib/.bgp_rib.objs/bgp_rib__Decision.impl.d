lib/rib/decision.ml: Bgp_addr Bgp_route Bool Format Int List Option
