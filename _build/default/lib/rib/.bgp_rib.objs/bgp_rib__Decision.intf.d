lib/rib/decision.mli: Bgp_route Format
