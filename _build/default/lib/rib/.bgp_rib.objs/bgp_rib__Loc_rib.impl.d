lib/rib/loc_rib.ml: Bgp_addr Bgp_route Hashtbl
