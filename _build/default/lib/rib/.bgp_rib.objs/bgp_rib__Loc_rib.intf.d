lib/rib/loc_rib.mli: Bgp_addr Bgp_route
