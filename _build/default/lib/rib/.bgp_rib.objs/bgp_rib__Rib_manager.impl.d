lib/rib/rib_manager.ml: Adj_rib Bgp_addr Bgp_fib Bgp_policy Bgp_route Decision Format Hashtbl List Loc_rib Option Printf
