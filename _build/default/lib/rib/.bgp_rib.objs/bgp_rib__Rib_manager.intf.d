lib/rib/rib_manager.mli: Bgp_addr Bgp_fib Bgp_policy Bgp_route Format Loc_rib
