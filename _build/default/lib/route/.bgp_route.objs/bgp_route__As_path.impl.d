lib/route/as_path.ml: Asn Format List
