lib/route/as_path.mli: Asn Format
