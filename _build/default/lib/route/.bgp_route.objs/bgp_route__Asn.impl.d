lib/route/asn.ml: Format Int Printf
