lib/route/asn.mli: Format
