lib/route/attrs.ml: As_path Asn Bgp_addr Bool Community Format Int List Option
