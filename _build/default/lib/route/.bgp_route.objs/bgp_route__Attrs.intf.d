lib/route/attrs.mli: As_path Asn Bgp_addr Community Format
