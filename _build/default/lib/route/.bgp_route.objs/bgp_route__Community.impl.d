lib/route/community.ml: Asn Format Int
