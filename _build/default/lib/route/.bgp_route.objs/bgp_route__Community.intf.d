lib/route/community.mli: Asn Format
