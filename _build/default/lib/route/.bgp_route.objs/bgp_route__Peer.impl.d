lib/route/peer.ml: Asn Bgp_addr Format Int
