lib/route/peer.mli: Asn Bgp_addr Format
