lib/route/route.ml: As_path Attrs Bgp_addr Format Peer
