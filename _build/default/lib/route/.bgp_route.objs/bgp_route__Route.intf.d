lib/route/route.mli: Attrs Bgp_addr Format Peer
