type segment = Seq of Asn.t list | Set of Asn.t list

type t = segment list

let empty = []

let check_segment = function
  | Seq [] | Set [] -> invalid_arg "As_path: empty segment"
  | Seq l | Set l ->
    if List.length l > 255 then invalid_arg "As_path: segment longer than 255"

let of_segments segs =
  List.iter check_segment segs;
  segs

let segments t = t
let of_asns = function [] -> [] | asns -> of_segments [ Seq asns ]

let length t =
  List.fold_left
    (fun n -> function Seq l -> n + List.length l | Set _ -> n + 1)
    0 t

let prepend a = function
  | Seq l :: rest when List.length l < 255 -> Seq (a :: l) :: rest
  | t -> Seq [ a ] :: t

let rec prepend_n a k t = if k <= 0 then t else prepend_n a (k - 1) (prepend a t)

let contains a t =
  List.exists (function Seq l | Set l -> List.exists (Asn.equal a) l) t

let first_hop = function Seq (a :: _) :: _ -> Some a | _ -> None

let origin_as t =
  let rec last_seq acc = function
    | [] -> acc
    | Seq l :: rest -> last_seq (Some (List.nth l (List.length l - 1))) rest
    | Set _ :: rest -> last_seq acc rest
  in
  last_seq None t

let to_asn_list t = List.concat_map (function Seq l | Set l -> l) t

let seg_equal s1 s2 =
  match s1, s2 with
  | Seq a, Seq b -> List.equal Asn.equal a b
  | Set a, Set b ->
    (* Sets are unordered on the wire; compare as sorted multisets. *)
    List.equal Asn.equal
      (List.sort Asn.compare a)
      (List.sort Asn.compare b)
  | Seq _, Set _ | Set _, Seq _ -> false

let equal a b = List.equal seg_equal a b

let seg_compare s1 s2 =
  match s1, s2 with
  | Seq a, Seq b -> List.compare Asn.compare a b
  | Set a, Set b ->
    List.compare Asn.compare (List.sort Asn.compare a) (List.sort Asn.compare b)
  | Seq _, Set _ -> -1
  | Set _, Seq _ -> 1

let compare a b = List.compare seg_compare a b

let pp ppf t =
  let pp_asns ppf l =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
      (fun ppf a -> Format.pp_print_int ppf (Asn.to_int a))
      ppf l
  in
  let pp_seg ppf = function
    | Seq l -> pp_asns ppf l
    | Set l -> Format.fprintf ppf "{%a}" pp_asns l
  in
  match t with
  | [] -> Format.pp_print_string ppf "(empty)"
  | _ ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
      pp_seg ppf t

let hash t =
  List.fold_left
    (fun h seg ->
      let tag, l = match seg with Seq l -> 1, l | Set l -> 2, List.sort Asn.compare l in
      List.fold_left (fun h a -> (h * 31) + Asn.hash a) ((h * 7) + tag) l)
    17 t
