(** AS_PATH attribute values (RFC 4271 §4.3, §5.1.2).

    A path is a list of segments; each segment is an ordered AS_SEQUENCE
    or an unordered AS_SET (produced by aggregation).  Path {e length}
    — the quantity the decision process compares, and the quantity the
    benchmark's Speaker 2 manipulates in scenarios 5–8 — counts each
    sequence element as 1 and each whole set as 1. *)

type segment =
  | Seq of Asn.t list  (** AS_SEQUENCE: ordered, most recent AS first *)
  | Set of Asn.t list  (** AS_SET: unordered *)

type t

val empty : t
(** The empty path (routes originated locally). *)

val of_segments : segment list -> t
(** Validates: no empty segments, no segment longer than 255 ASes
    (the wire format's one-octet count).
    @raise Invalid_argument on violation. *)

val segments : t -> segment list

val of_asns : Asn.t list -> t
(** A path of a single AS_SEQUENCE ([empty] for []). *)

val length : t -> int
(** Decision-process length: sequences count per-AS, each set counts 1. *)

val prepend : Asn.t -> t -> t
(** [prepend a p] adds [a] at the front, merging into a front
    AS_SEQUENCE when one exists and it has room. *)

val prepend_n : Asn.t -> int -> t -> t
(** [prepend_n a k p] prepends [a] [k] times (policy path-prepending). *)

val contains : Asn.t -> t -> bool
(** Loop detection (RFC 4271 §9.1.2): does the path mention this AS? *)

val first_hop : t -> Asn.t option
(** The neighboring AS: first element of a leading AS_SEQUENCE.
    [None] for an empty path or a path starting with an AS_SET. *)

val origin_as : t -> Asn.t option
(** The AS that originated the route (last sequence element). *)

val to_asn_list : t -> Asn.t list
(** All ASes in order of appearance (sets flattened in place). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** E.g. [7018 701 {3356 2914} 174]. *)

val hash : t -> int
