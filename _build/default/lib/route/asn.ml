type t = int

let of_int_opt n = if n >= 0 && n <= 0xFFFF then Some n else None

let of_int n =
  match of_int_opt n with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Asn.of_int: %d out of 16-bit range" n)

let to_int a = a
let compare = Int.compare
let equal = Int.equal
let pp ppf a = Format.fprintf ppf "AS%d" a
let hash a = a
let reserved = 0
let max_value = 0xFFFF
let is_private a = a >= 64512 && a <= 65534
