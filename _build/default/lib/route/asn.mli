(** Autonomous-system numbers.

    The paper predates RFC 4893; AS numbers are 16-bit, matching the
    two-octet fields of the RFC 4271 wire format. *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument outside [0, 65535]. *)

val of_int_opt : int -> t option
val to_int : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val hash : t -> int

val reserved : t
(** AS 0, reserved; never a valid path element. *)

val max_value : t
(** AS 65535. *)

val is_private : t -> bool
(** RFC 1930 private range 64512–65534. *)
