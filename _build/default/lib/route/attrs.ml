type origin = Igp | Egp | Incomplete

let origin_to_int = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

let origin_of_int = function
  | 0 -> Some Igp
  | 1 -> Some Egp
  | 2 -> Some Incomplete
  | _ -> None

let pp_origin ppf o =
  Format.pp_print_string ppf
    (match o with Igp -> "IGP" | Egp -> "EGP" | Incomplete -> "incomplete")

type t = {
  origin : origin;
  as_path : As_path.t;
  next_hop : Bgp_addr.Ipv4.t;
  med : int option;
  local_pref : int option;
  atomic_aggregate : bool;
  aggregator : (Asn.t * Bgp_addr.Ipv4.t) option;
  communities : Community.t list;
  originator_id : Bgp_addr.Ipv4.t option;
  cluster_list : Bgp_addr.Ipv4.t list;
}

let make ?(origin = Igp) ?med ?local_pref ?(atomic_aggregate = false) ?aggregator
    ?(communities = []) ?originator_id ?(cluster_list = []) ~as_path ~next_hop
    () =
  { origin; as_path; next_hop; med; local_pref; atomic_aggregate; aggregator;
    communities; originator_id; cluster_list }

let with_as_path as_path t = { t with as_path }
let with_local_pref local_pref t = { t with local_pref }
let with_med med t = { t with med }

let add_community c t =
  if List.exists (Community.equal c) t.communities then t
  else { t with communities = c :: t.communities }

let has_community c t = List.exists (Community.equal c) t.communities
let prepend_as a t = { t with as_path = As_path.prepend a t.as_path }

let equal a b =
  a.origin = b.origin
  && As_path.equal a.as_path b.as_path
  && Bgp_addr.Ipv4.equal a.next_hop b.next_hop
  && Option.equal Int.equal a.med b.med
  && Option.equal Int.equal a.local_pref b.local_pref
  && Bool.equal a.atomic_aggregate b.atomic_aggregate
  && Option.equal
       (fun (x, xa) (y, ya) -> Asn.equal x y && Bgp_addr.Ipv4.equal xa ya)
       a.aggregator b.aggregator
  && List.equal Community.equal
       (List.sort Community.compare a.communities)
       (List.sort Community.compare b.communities)
  && Option.equal Bgp_addr.Ipv4.equal a.originator_id b.originator_id
  && List.equal Bgp_addr.Ipv4.equal a.cluster_list b.cluster_list

let pp ppf t =
  Format.fprintf ppf "@[<h>origin=%a path=[%a] nh=%a" pp_origin t.origin
    As_path.pp t.as_path Bgp_addr.Ipv4.pp t.next_hop;
  Option.iter (Format.fprintf ppf " med=%d") t.med;
  Option.iter (Format.fprintf ppf " lp=%d") t.local_pref;
  if t.atomic_aggregate then Format.pp_print_string ppf " atomic";
  (match t.communities with
  | [] -> ()
  | cs ->
    Format.fprintf ppf " comm=%a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         Community.pp)
      cs);
  Option.iter
    (fun o -> Format.fprintf ppf " originator=%a" Bgp_addr.Ipv4.pp o)
    t.originator_id;
  (match t.cluster_list with
  | [] -> ()
  | cl ->
    Format.fprintf ppf " clusters=%a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         Bgp_addr.Ipv4.pp)
      cl);
  Format.fprintf ppf "@]"
