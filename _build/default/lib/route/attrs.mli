(** Path attributes of a BGP route (RFC 4271 §5).

    Carries the well-known mandatory attributes (ORIGIN, AS_PATH,
    NEXT_HOP) plus the optional ones the decision process and the
    benchmark's policy layer consult. *)

type origin =
  | Igp         (** learned from an interior protocol; most preferred *)
  | Egp         (** learned via EGP *)
  | Incomplete  (** other means (e.g. redistribution); least preferred *)

val origin_to_int : origin -> int
(** Wire encoding: IGP = 0, EGP = 1, INCOMPLETE = 2; also the
    preference order (lower wins) used by the decision process. *)

val origin_of_int : int -> origin option
val pp_origin : Format.formatter -> origin -> unit

type t = {
  origin : origin;
  as_path : As_path.t;
  next_hop : Bgp_addr.Ipv4.t;
  med : int option;          (** MULTI_EXIT_DISC; lower preferred, only
                                 comparable between routes from the same
                                 neighboring AS *)
  local_pref : int option;   (** LOCAL_PREF; higher preferred; IBGP only *)
  atomic_aggregate : bool;
  aggregator : (Asn.t * Bgp_addr.Ipv4.t) option;
  communities : Community.t list;
  originator_id : Bgp_addr.Ipv4.t option;
      (** ORIGINATOR_ID (RFC 4456): router id of the route's IBGP
          originator, stamped by a route reflector *)
  cluster_list : Bgp_addr.Ipv4.t list;
      (** CLUSTER_LIST (RFC 4456): reflection path, most recent cluster
          first; loop protection for reflector topologies *)
}

val make :
  ?origin:origin ->
  ?med:int ->
  ?local_pref:int ->
  ?atomic_aggregate:bool ->
  ?aggregator:Asn.t * Bgp_addr.Ipv4.t ->
  ?communities:Community.t list ->
  ?originator_id:Bgp_addr.Ipv4.t ->
  ?cluster_list:Bgp_addr.Ipv4.t list ->
  as_path:As_path.t ->
  next_hop:Bgp_addr.Ipv4.t ->
  unit ->
  t
(** Default origin is [Igp]; optional attributes default to absent. *)

val with_as_path : As_path.t -> t -> t
val with_local_pref : int option -> t -> t
val with_med : int option -> t -> t
val add_community : Community.t -> t -> t
val has_community : Community.t -> t -> bool
val prepend_as : Asn.t -> t -> t
(** Prepend to the AS path (used when exporting over EBGP). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
