type t = int

let make asn v =
  if v < 0 || v > 0xFFFF then invalid_arg "Community.make: value out of range";
  (Asn.to_int asn lsl 16) lor v

let of_int32_value n = n land 0xFFFF_FFFF
let to_int32_value t = t
let asn_part t = Asn.of_int (t lsr 16)
let value_part t = t land 0xFFFF
let no_export = 0xFFFFFF01
let no_advertise = 0xFFFFFF02
let no_export_subconfed = 0xFFFFFF03
let is_well_known t = t land 0xFFFF0000 = 0xFFFF0000
let equal = Int.equal
let compare = Int.compare

let pp ppf t =
  if t = no_export then Format.pp_print_string ppf "no-export"
  else if t = no_advertise then Format.pp_print_string ppf "no-advertise"
  else if t = no_export_subconfed then Format.pp_print_string ppf "no-export-subconfed"
  else Format.fprintf ppf "%d:%d" (t lsr 16) (t land 0xFFFF)
