(** BGP communities (RFC 1997): 32-bit route tags, conventionally
    written [asn:value]. *)

type t = private int
(** 32-bit value. *)

val make : Asn.t -> int -> t
(** [make asn v] is the community [asn:v].
    @raise Invalid_argument if [v] is outside [0, 65535]. *)

val of_int32_value : int -> t
(** Raw 32-bit constructor (truncates to 32 bits). *)

val to_int32_value : t -> int
val asn_part : t -> Asn.t
val value_part : t -> int

val no_export : t
(** [0xFFFFFF01]: do not advertise outside the AS. *)

val no_advertise : t
(** [0xFFFFFF02]: do not advertise to any peer. *)

val no_export_subconfed : t
(** [0xFFFFFF03]. *)

val is_well_known : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
