type t = {
  id : int;
  asn : Asn.t;
  router_id : Bgp_addr.Ipv4.t;
  addr : Bgp_addr.Ipv4.t;
}

let make ~id ~asn ~router_id ~addr = { id; asn; router_id; addr }

let local =
  { id = -1; asn = Asn.reserved; router_id = Bgp_addr.Ipv4.zero;
    addr = Bgp_addr.Ipv4.zero }

let is_local t = t.id < 0
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

let pp ppf t =
  if is_local t then Format.pp_print_string ppf "local"
  else
    Format.fprintf ppf "peer%d(%a,%a)" t.id Asn.pp t.asn Bgp_addr.Ipv4.pp
      t.addr
