(** Identity of a BGP neighbor, as the RIBs and decision process see it.

    The decision process needs the neighbor's AS (for MED
    comparability and EBGP-vs-IBGP ranking), its BGP identifier (the
    §9.1.2.2 tie-break), and its peering address (final tie-break). *)

type t = {
  id : int;                   (** dense local index, assigned by the router *)
  asn : Asn.t;                (** the neighbor's AS *)
  router_id : Bgp_addr.Ipv4.t;(** the neighbor's BGP identifier *)
  addr : Bgp_addr.Ipv4.t;     (** the peering address *)
}

val make :
  id:int -> asn:Asn.t -> router_id:Bgp_addr.Ipv4.t -> addr:Bgp_addr.Ipv4.t -> t

val local : t
(** Pseudo-peer for locally originated routes (id -1). Local routes
    win every tie-break against learned routes. *)

val is_local : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
