type t = {
  prefix : Bgp_addr.Prefix.t;
  attrs : Attrs.t;
  from : Peer.t;
}

let make ~prefix ~attrs ~from = { prefix; attrs; from }

let local ~prefix ~next_hop =
  { prefix;
    attrs = Attrs.make ~as_path:As_path.empty ~next_hop ();
    from = Peer.local }

let prefix t = t.prefix
let attrs t = t.attrs
let from t = t.from
let as_path_length t = As_path.length t.attrs.Attrs.as_path

let equal a b =
  Bgp_addr.Prefix.equal a.prefix b.prefix
  && Attrs.equal a.attrs b.attrs
  && Peer.equal a.from b.from

let pp ppf t =
  Format.fprintf ppf "@[<h>%a via %a [%a]@]" Bgp_addr.Prefix.pp t.prefix
    Peer.pp t.from Attrs.pp t.attrs
