(** A route: a destination prefix, its path attributes, and the peer it
    was learned from.  This is the unit stored in the RIBs and the unit
    the benchmark counts as one "transaction". *)

type t = {
  prefix : Bgp_addr.Prefix.t;
  attrs : Attrs.t;
  from : Peer.t;
}

val make : prefix:Bgp_addr.Prefix.t -> attrs:Attrs.t -> from:Peer.t -> t

val local : prefix:Bgp_addr.Prefix.t -> next_hop:Bgp_addr.Ipv4.t -> t
(** A locally originated route with an empty AS path. *)

val prefix : t -> Bgp_addr.Prefix.t
val attrs : t -> Attrs.t
val from : t -> Peer.t
val as_path_length : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
