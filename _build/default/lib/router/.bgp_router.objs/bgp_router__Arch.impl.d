lib/router/arch.ml: Format List String
