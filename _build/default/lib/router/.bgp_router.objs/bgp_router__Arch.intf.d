lib/router/arch.mli: Format
