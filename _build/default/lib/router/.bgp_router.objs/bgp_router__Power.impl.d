lib/router/power.ml: Arch Bgp_sim Float Format List Printf
