lib/router/power.mli: Arch Bgp_sim Format
