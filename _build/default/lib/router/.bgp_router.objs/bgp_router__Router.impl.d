lib/router/router.ml: Arch Bgp_addr Bgp_fib Bgp_fsm Bgp_netsim Bgp_rib Bgp_route Bgp_sim Bgp_wire Float Format Hashtbl List Option Printf Queue
