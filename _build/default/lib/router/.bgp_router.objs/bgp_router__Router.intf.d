lib/router/router.mli: Arch Bgp_addr Bgp_fib Bgp_fsm Bgp_netsim Bgp_policy Bgp_rib Bgp_route Bgp_sim
