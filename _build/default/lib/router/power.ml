type t = {
  idle_watts : float;
  active_watts_per_core : float;
  forwarding_watts : float;
}

let of_arch (arch : Arch.t) =
  match arch.Arch.name with
  | "pentium3" ->
    { idle_watts = 18.0; active_watts_per_core = 22.0; forwarding_watts = 0.0 }
  | "xeon" ->
    (* dual Netburst-class cores: heavy idle and heavy active draw *)
    { idle_watts = 65.0; active_watts_per_core = 48.0; forwarding_watts = 0.0 }
  | "ixp2400" ->
    (* XScale control core is tiny; the packet processors draw their
       own ~10 W independent of control load *)
    { idle_watts = 4.0; active_watts_per_core = 1.5; forwarding_watts = 10.0 }
  | "cisco3620" ->
    { idle_watts = 30.0; active_watts_per_core = 8.0; forwarding_watts = 0.0 }
  | name -> invalid_arg (Printf.sprintf "Power.of_arch: unknown system %s" name)

let control_watts t ~busy_cores =
  t.idle_watts +. (Float.max 0.0 busy_cores *. t.active_watts_per_core)

type report = {
  arch_name : string;
  scenario_id : int;
  tps : float;
  avg_busy_cores : float;
  avg_watts : float;
  joules : float;
  transactions_per_joule : float;
}

let of_run (arch : Arch.t) ~scenario_id ~tps ~measure_seconds ~trace
    ~transactions =
  let model = of_arch arch in
  (* Busy core-equivalents per sample: user processes plus, on shared-
     CPU architectures, interrupts and kernel forwarding. *)
  let busy_of sample =
    let user = Bgp_sim.Trace.total_user_percent sample in
    let kernel =
      match arch.Arch.forwarding with
      | Arch.Kernel_shared _ ->
        sample.Bgp_sim.Trace.s_interrupt +. sample.Bgp_sim.Trace.s_forwarding
      | Arch.Dedicated_pps _ -> sample.Bgp_sim.Trace.s_interrupt
    in
    (user +. kernel) /. 100.0
  in
  let avg_busy_cores =
    match trace with
    | [] -> 0.0
    | samples ->
      List.fold_left (fun acc s -> acc +. busy_of s) 0.0 samples
      /. float_of_int (List.length samples)
  in
  let avg_watts =
    control_watts model ~busy_cores:avg_busy_cores +. model.forwarding_watts
  in
  let joules = avg_watts *. measure_seconds in
  { arch_name = arch.Arch.name; scenario_id; tps; avg_busy_cores; avg_watts;
    joules;
    transactions_per_joule =
      (if joules > 0.0 then float_of_int transactions /. joules else 0.0) }

let pp_report ppf r =
  Format.fprintf ppf
    "%-10s scenario %d: %8.1f tps, %4.2f busy cores, %6.1f W avg, %8.1f J, %8.2f transactions/J"
    r.arch_name r.scenario_id r.tps r.avg_busy_cores r.avg_watts r.joules
    r.transactions_per_joule
