(** Control-plane power model — the paper's deferred question
    ("an interesting tradeoff is how much power should be dedicated to
    the control plane", §V.C), implemented as an extension.

    Power is modeled per architecture as idle draw plus a linear active
    term per busy core-equivalent, with a separate term for dedicated
    forwarding silicon.  Combined with a benchmark run it yields
    transactions per joule of {e control-plane} energy — the efficiency
    metric the paper hints at when noting that "a dual-core Xeon
    consumes a large amount of power that would not be available to
    perform data path processing".

    Draw figures are representative of the era's parts (Pentium III
    Coppermine ~25 W TDP, Netburst-class Xeon ~110 W/socket, XScale
    ~1.5 W, 3620 chassis ~35 W); they parameterize a model, they are
    not measurements. *)

type t = {
  idle_watts : float;         (** chassis + memory + NICs, control side *)
  active_watts_per_core : float;
      (** additional draw of one fully busy core-equivalent *)
  forwarding_watts : float;   (** dedicated forwarding silicon at load *)
}

val of_arch : Arch.t -> t
(** The built-in model for each of the four systems.
    @raise Invalid_argument for an architecture not in {!Arch.all}. *)

val control_watts : t -> busy_cores:float -> float
(** Instantaneous control-plane draw given the number of busy
    core-equivalents. *)

type report = {
  arch_name : string;
  scenario_id : int;
  tps : float;
  avg_busy_cores : float;      (** mean over the measured phase *)
  avg_watts : float;
  joules : float;              (** control-plane energy over the phase *)
  transactions_per_joule : float;
}

val of_run :
  Arch.t -> scenario_id:int -> tps:float -> measure_seconds:float ->
  trace:Bgp_sim.Trace.sample list -> transactions:int -> report
(** Derive the power report from a traced harness run: busy cores are
    integrated from the CPU-load samples (user + interrupts +
    forwarding when the forwarding plane shares the CPU). *)

val pp_report : Format.formatter -> report -> unit
