module Engine = Bgp_sim.Engine
module Sched = Bgp_sim.Sched
module Channel = Bgp_netsim.Channel
module Msg = Bgp_wire.Msg
module Session = Bgp_fsm.Session
module Peer = Bgp_route.Peer
module Rib_manager = Bgp_rib.Rib_manager
module Fib = Bgp_fib.Fib

type procs =
  | Xorp of {
      bgp : Sched.proc;
      policy : Sched.proc;
      rib : Sched.proc;
      fea : Sched.proc;
      rtrmgr : Sched.proc;
    }
  | Ios of {
      ios : Sched.proc;
      pacing : float;
      pending : (unit -> unit) Queue.t;  (* paced message processors *)
      mutable pacer_busy : bool;
    }

type peer_link = {
  peer : Peer.t;
  mutable session : Session.t option;  (* set right after creation *)
  mutable last_rx_size : int;
  max_prefixes : int option;  (* per-peer prefix-limit protection *)
  (* MRAI (RFC 4271 section 9.2.1.1): advertisements pending the
     per-peer MinRouteAdvertisementInterval timer. Later decisions for
     the same prefix overwrite earlier ones (only the final state is
     advertised when the timer fires). *)
  mrai_pending : (Bgp_addr.Prefix.t, Bgp_route.Attrs.t option) Hashtbl.t;
  mutable mrai_armed : bool;
}

type counters = {
  transactions : int;
  updates_rx : int;
  msgs_rx : int;
  msgs_tx : int;
  bytes_rx : int;
  bytes_tx : int;
  first_work_at : float option;
  last_transaction_at : float option;
}

type t = {
  engine : Engine.t;
  arch : Arch.t;
  sched : Sched.t;
  rib : Rib_manager.t;
  fib : Fib.t;
  fwd : Bgp_netsim.Forwarding.t;
  procs : procs;
  mrai : float option;
  peers : (int, peer_link) Hashtbl.t;
  mutable transactions : int;
  mutable updates_rx : int;
  mutable msgs_rx : int;
  mutable msgs_tx : int;
  mutable bytes_rx : int;
  mutable bytes_tx : int;
  mutable first_work_at : float option;
  mutable last_transaction_at : float option;
  mutable inflight : int;  (* update messages still in the pipeline *)
}

let timer_service engine =
  { Session.arm_timer =
      (fun delay fn ->
        let h = Engine.schedule engine ~delay fn in
        fun () -> Engine.cancel h) }

let make_forwarding arch sched =
  match arch.Arch.forwarding with
  | Arch.Kernel_shared
      { interrupt_cycles_per_packet; forwarding_cycles_per_packet;
        forwarding_weight } ->
    (* Install the weight once; demand changes keep it. *)
    Sched.set_forwarding_demand sched ~weight:forwarding_weight
      ~cycles_per_sec:0.0 ();
    Bgp_netsim.Forwarding.create
      (Bgp_netsim.Forwarding.Shared
         { sched; interrupt_cycles_per_packet; forwarding_cycles_per_packet })
      ~line_rate_mbps:arch.Arch.line_rate_mbps
  | Arch.Dedicated_pps capacity_pps ->
    Bgp_netsim.Forwarding.create
      (Bgp_netsim.Forwarding.Dedicated { capacity_pps })
      ~line_rate_mbps:arch.Arch.line_rate_mbps

let start_rtrmgr engine sched arch proc =
  if arch.Arch.rtrmgr_period > 0.0 && arch.Arch.rtrmgr_cycles > 0.0 then begin
    let rec tick () =
      Sched.submit sched proc ~cycles:arch.Arch.rtrmgr_cycles (fun () -> ());
      ignore (Engine.schedule engine ~delay:arch.Arch.rtrmgr_period tick)
    in
    ignore (Engine.schedule engine ~delay:arch.Arch.rtrmgr_period tick)
  end

let create ?import ?export ?mrai engine arch ~local_asn ~router_id =
  let sched =
    Sched.create engine ~hz:(Arch.effective_hz arch) ~pool:arch.Arch.pool
  in
  let procs =
    match arch.Arch.software with
    | Arch.Xorp_pipeline ->
      let bgp = Sched.add_proc sched "xorp_bgp" in
      let policy = Sched.add_proc sched "xorp_policy" in
      let rib = Sched.add_proc sched "xorp_rib" in
      let fea = Sched.add_proc sched "xorp_fea" in
      let rtrmgr = Sched.add_proc sched "xorp_rtrmgr" in
      start_rtrmgr engine sched arch rtrmgr;
      Xorp { bgp; policy; rib; fea; rtrmgr }
    | Arch.Monolithic { pacing_delay_per_msg } ->
      Ios
        { ios = Sched.add_proc sched "ios"; pacing = pacing_delay_per_msg;
          pending = Queue.create (); pacer_busy = false }
  in
  let fwd = make_forwarding arch sched in
  { engine; arch; sched;
    rib = Rib_manager.create ?import ?export ~local_asn ~router_id ();
    fib = Fib.create (); fwd; procs; mrai; peers = Hashtbl.create 8;
    transactions = 0; updates_rx = 0; msgs_rx = 0; msgs_tx = 0; bytes_rx = 0;
    bytes_tx = 0; first_work_at = None; last_transaction_at = None;
    inflight = 0 }

let arch t = t.arch
let engine t = t.engine
let sched t = t.sched
let rib t = t.rib
let fib t = t.fib
let forwarding t = t.fwd

let set_cross_traffic t traffic = Bgp_netsim.Forwarding.set_offered t.fwd traffic

(* ------------------------------------------------------------------ *)
(* Cost helpers                                                        *)
(* ------------------------------------------------------------------ *)

let cost t = t.arch.Arch.cost

let rx_cycles t ~bytes ~announced ~withdrawn =
  let c = cost t in
  c.Arch.cyc_per_msg_rx
  +. (float_of_int bytes *. c.Arch.cyc_per_byte)
  +. (float_of_int announced *. c.Arch.cyc_per_prefix_parse)
  +. (float_of_int withdrawn *. c.Arch.cyc_per_withdraw_parse)

let delta_cycles (c : Arch.cost_model) deltas =
  List.fold_left
    (fun acc d ->
      acc
      +.
      match d with
      | Fib.Replace _ -> c.Arch.cyc_per_fib_replace
      | Fib.Add _ | Fib.Withdraw _ -> c.Arch.cyc_per_fib_delta)
    0.0 deltas

(* Aggregate of RIB outcomes for one inbound update. *)
type update_work = {
  mutable w_candidates : int;
  mutable w_policy : int;
  mutable w_loc_changes : int;
  mutable w_deltas : Fib.delta list;
  mutable w_anns : Rib_manager.announcement list;
}

let run_rib_update t ~from (u : Msg.update) =
  let w =
    { w_candidates = 0; w_policy = 0; w_loc_changes = 0; w_deltas = [];
      w_anns = [] }
  in
  let absorb (o : Rib_manager.outcome) =
    w.w_candidates <- w.w_candidates + o.Rib_manager.candidates;
    w.w_policy <- w.w_policy + o.Rib_manager.policy_work;
    if o.Rib_manager.loc_changed then w.w_loc_changes <- w.w_loc_changes + 1;
    w.w_deltas <- w.w_deltas @ o.Rib_manager.fib_deltas;
    w.w_anns <- w.w_anns @ o.Rib_manager.announcements
  in
  List.iter (fun p -> absorb (Rib_manager.withdraw t.rib ~from p)) u.Msg.withdrawn;
  (match u.Msg.attrs with
  | Some attrs ->
    List.iter (fun p -> absorb (Rib_manager.announce t.rib ~from p attrs)) u.Msg.nlri
  | None -> ());
  w

(* ------------------------------------------------------------------ *)
(* Transmission                                                        *)
(* ------------------------------------------------------------------ *)

let link t peer =
  match Hashtbl.find_opt t.peers peer.Peer.id with
  | Some l -> l
  | None ->
    invalid_arg (Printf.sprintf "Router: unattached peer id %d" peer.Peer.id)

let link_session l =
  match l.session with
  | Some s -> s
  | None -> invalid_arg "Router: session not initialized"

(* Send a message to a peer, charging [proc] for the send path. *)
let transmit t proc peer msg =
  let c = cost t in
  let bytes = Bgp_wire.Codec.encoded_size msg in
  let cycles =
    c.Arch.cyc_per_msg_tx +. (float_of_int bytes *. c.Arch.cyc_per_byte)
  in
  Sched.submit t.sched proc ~cycles (fun () ->
      ignore (Session.send (link_session (link t peer)) msg))

let tx_proc_of t =
  match t.procs with Xorp { bgp; _ } -> bgp | Ios { ios; _ } -> ios

(* Flush a peer's MRAI buffer: withdrawals batched together, then
   announcements grouped by identical attributes, each group one
   UPDATE. *)
let rec mrai_flush t lnk =
  let withdrawn = ref [] in
  let groups = Hashtbl.create 8 in
  Hashtbl.iter
    (fun prefix attrs_opt ->
      match attrs_opt with
      | None -> withdrawn := prefix :: !withdrawn
      | Some attrs ->
        let key = Format.asprintf "%a" Bgp_route.Attrs.pp attrs in
        let prefixes, _ =
          Option.value ~default:([], attrs) (Hashtbl.find_opt groups key)
        in
        Hashtbl.replace groups key (prefix :: prefixes, attrs))
    lnk.mrai_pending;
  Hashtbl.reset lnk.mrai_pending;
  let msgs =
    (if !withdrawn = [] then [] else [ Msg.withdrawal !withdrawn ])
    @ Hashtbl.fold
        (fun _ (prefixes, attrs) acc -> Msg.announcement attrs prefixes :: acc)
        groups []
  in
  if msgs <> [] then begin
    List.iter (fun msg -> transmit t (tx_proc_of t) lnk.peer msg) msgs;
    true
  end
  else false

and mrai_arm t lnk interval =
  lnk.mrai_armed <- true;
  ignore
    (Engine.schedule t.engine ~delay:interval (fun () ->
         if Hashtbl.length lnk.mrai_pending > 0 then begin
           ignore (mrai_flush t lnk);
           mrai_arm t lnk interval
         end
         else lnk.mrai_armed <- false))

(* Route one decision's advertisement toward a peer, immediately or
   through the MRAI buffer. *)
let emit_announcement t tx_proc (a : Rib_manager.announcement) =
  match t.mrai with
  | None ->
    (* XORP-style: one UPDATE per announcement as decisions are made. *)
    let msg =
      match a.Rib_manager.ann_attrs with
      | Some attrs -> Msg.announcement attrs [ a.Rib_manager.ann_prefix ]
      | None -> Msg.withdrawal [ a.Rib_manager.ann_prefix ]
    in
    transmit t tx_proc a.Rib_manager.dest msg
  | Some interval ->
    let lnk = link t a.Rib_manager.dest in
    Hashtbl.replace lnk.mrai_pending a.Rib_manager.ann_prefix
      a.Rib_manager.ann_attrs;
    if not lnk.mrai_armed then begin
      ignore (mrai_flush t lnk);
      mrai_arm t lnk interval
    end

(* XORP emits one UPDATE per announcement as decisions are made. *)
let announcement_msgs anns =
  List.map
    (fun (a : Rib_manager.announcement) ->
      ( a.Rib_manager.dest,
        match a.Rib_manager.ann_attrs with
        | Some attrs -> Msg.announcement attrs [ a.Rib_manager.ann_prefix ]
        | None -> Msg.withdrawal [ a.Rib_manager.ann_prefix ] ))
    anns

(* Pack a full-table export (Phase 2) into large UPDATEs: consecutive
   announcements sharing attributes ride in one message. *)
let pack_export anns =
  let max_per_msg = 200 in
  let rec go acc current_attrs current_prefixes = function
    | [] ->
      let acc =
        if current_prefixes = [] then acc
        else
          match current_attrs with
          | Some attrs -> Msg.announcement attrs (List.rev current_prefixes) :: acc
          | None -> acc
      in
      List.rev acc
    | (a : Rib_manager.announcement) :: rest -> (
      match a.Rib_manager.ann_attrs with
      | None -> go acc current_attrs current_prefixes rest
      | Some attrs -> (
        match current_attrs with
        | Some cur
          when Bgp_route.Attrs.equal cur attrs
               && List.length current_prefixes < max_per_msg ->
          go acc current_attrs (a.Rib_manager.ann_prefix :: current_prefixes) rest
        | Some cur ->
          go
            (Msg.announcement cur (List.rev current_prefixes) :: acc)
            (Some attrs)
            [ a.Rib_manager.ann_prefix ] rest
        | None -> go acc (Some attrs) [ a.Rib_manager.ann_prefix ] rest))
  in
  go [] None [] anns

(* ------------------------------------------------------------------ *)
(* Pipeline stages                                                     *)
(* ------------------------------------------------------------------ *)

let note_transactions t n =
  t.transactions <- t.transactions + n;
  t.last_transaction_at <- Some (Engine.now t.engine);
  t.inflight <- t.inflight - 1

let finish_update t tx_proc (w : update_work) ~prefixes =
  (* Emit per-decision announcements, then count the transactions. *)
  List.iter (emit_announcement t tx_proc) w.w_anns;
  note_transactions t prefixes

let process_update_xorp t ~from ~bytes (u : Msg.update) =
  match t.procs with
  | Ios _ -> assert false
  | Xorp { bgp; policy; rib; fea; _ } ->
    let c = cost t in
    let announced = List.length u.Msg.nlri in
    let withdrawn = List.length u.Msg.withdrawn in
    let prefixes = announced + withdrawn in
    let n_peers = max 1 (List.length (Rib_manager.peers t.rib)) in
    Sched.submit t.sched bgp ~cycles:(rx_cycles t ~bytes ~announced ~withdrawn)
      (fun () ->
        (* Policy stage: cost estimated from fan-out (the real policy
           work is folded into the rib stage costing below; this stage
           models the XORP process hop). *)
        let policy_cycles =
          float_of_int (prefixes * n_peers) *. c.Arch.cyc_per_policy_unit
        in
        Sched.submit t.sched policy ~cycles:policy_cycles (fun () ->
            (* Decision stage: run the actual RIB machinery, then charge
               for what it did. *)
            let w = run_rib_update t ~from u in
            let rib_cycles =
              (float_of_int w.w_candidates *. c.Arch.cyc_per_candidate)
              +. (float_of_int w.w_loc_changes *. c.Arch.cyc_per_rib_change)
              +. float_of_int (List.length w.w_anns)
                 *. c.Arch.cyc_per_announcement
              (* prefixes that produced no decision at all still burn a
                 lookup *)
              +. Float.max 0.0
                   (float_of_int (prefixes - w.w_candidates)
                   *. (0.5 *. c.Arch.cyc_per_candidate))
            in
            Sched.submit t.sched rib ~cycles:rib_cycles (fun () ->
                match w.w_deltas with
                | [] -> finish_update t bgp w ~prefixes
                | deltas ->
                  let fea_cycles =
                    c.Arch.cyc_per_fib_msg +. delta_cycles c deltas
                  in
                  Sched.submit t.sched fea ~cycles:fea_cycles (fun () ->
                      ignore (Fib.apply_all t.fib deltas);
                      finish_update t bgp w ~prefixes))))

let rec ios_pump t =
  match t.procs with
  | Xorp _ -> assert false
  | Ios p ->
    if (not p.pacer_busy) && not (Queue.is_empty p.pending) then begin
      p.pacer_busy <- true;
      let work = Queue.pop p.pending in
      ignore
        (Engine.schedule t.engine ~delay:p.pacing (fun () ->
             (* work() submits the CPU job; completion re-pumps *)
             work ()))
    end

and ios_done t =
  match t.procs with
  | Xorp _ -> assert false
  | Ios p ->
    p.pacer_busy <- false;
    ios_pump t

let process_update_ios t ~from ~bytes (u : Msg.update) =
  match t.procs with
  | Xorp _ -> assert false
  | Ios p ->
    let c = cost t in
    let announced = List.length u.Msg.nlri in
    let withdrawn = List.length u.Msg.withdrawn in
    let prefixes = announced + withdrawn in
    Queue.add
      (fun () ->
        let w = run_rib_update t ~from u in
        let cycles =
          rx_cycles t ~bytes ~announced ~withdrawn
          +. (float_of_int w.w_candidates *. c.Arch.cyc_per_candidate)
          +. (float_of_int w.w_loc_changes *. c.Arch.cyc_per_rib_change)
          +. delta_cycles c w.w_deltas
          +. (float_of_int (List.length w.w_anns) *. c.Arch.cyc_per_announcement)
        in
        Sched.submit t.sched p.ios ~cycles (fun () ->
            ignore (Fib.apply_all t.fib w.w_deltas);
            List.iter (emit_announcement t p.ios) w.w_anns;
            note_transactions t prefixes;
            ios_done t))
      p.pending;
    ios_pump t

(* Prefix-limit protection: a peer announcing more prefixes than
   configured gets a CEASE, the standard operator defense against
   leaks (and against the worm-scale storms of paper section II). *)
let over_prefix_limit t peer_link (u : Msg.update) =
  match peer_link.max_prefixes with
  | None -> false
  | Some limit ->
    Rib_manager.adj_in_size t.rib peer_link.peer + List.length u.Msg.nlri
    > limit

let on_update t peer_link (u : Msg.update) =
  let now = Engine.now t.engine in
  if t.first_work_at = None then t.first_work_at <- Some now;
  t.updates_rx <- t.updates_rx + 1;
  if over_prefix_limit t peer_link u then
    (* Session teardown; the FSM sends CEASE and on_down flushes the
       peer's contribution. *)
    Option.iter Session.stop peer_link.session
  else begin
    t.inflight <- t.inflight + 1;
    let bytes = peer_link.last_rx_size in
    match t.arch.Arch.software with
    | Arch.Xorp_pipeline -> process_update_xorp t ~from:peer_link.peer ~bytes u
    | Arch.Monolithic _ -> process_update_ios t ~from:peer_link.peer ~bytes u
  end

(* Ship a full advertisement set to one peer, packed into large
   updates, charging per-prefix announcement-building cycles. *)
let send_packed t peer_link anns =
  let msgs = pack_export anns in
  let tx_proc =
    match t.procs with Xorp { bgp; _ } -> bgp | Ios { ios; _ } -> ios
  in
  let c = cost t in
  List.iter
    (fun msg ->
      t.inflight <- t.inflight + 1;
      let per_prefix =
        float_of_int (Msg.nlri_count msg) *. c.Arch.cyc_per_announcement
      in
      Sched.submit t.sched tx_proc ~cycles:per_prefix (fun () ->
          t.inflight <- t.inflight - 1;
          ignore (Session.send (link_session peer_link) msg)))
    msgs

(* Phase 2: a peer reached Established; if we already hold routes, ship
   the full table. *)
let on_established t peer_link =
  Rib_manager.set_peer_up t.rib peer_link.peer true;
  send_packed t peer_link (Rib_manager.export_full t.rib peer_link.peer)

(* RFC 2918: the peer asked for a refresh. Only IPv4 unicast exists
   here; other AFI/SAFI pairs are ignored, as the RFC prescribes for
   unadvertised families. *)
let on_refresh t peer_link ~afi ~safi =
  if afi = 1 && safi = 1 then
    send_packed t peer_link (Rib_manager.refresh t.rib peer_link.peer)

let attach_peer ?max_prefixes t ~peer ~channel ~side =
  if Hashtbl.mem t.peers peer.Peer.id then
    invalid_arg (Printf.sprintf "Router.attach_peer: duplicate id %d" peer.Peer.id);
  Rib_manager.add_peer ~up:false t.rib peer;
  let cfg =
    { (Bgp_fsm.Fsm.default_config ~asn:(Rib_manager.local_asn t.rib)
         ~router_id:(Rib_manager.router_id t.rib))
      with Bgp_fsm.Fsm.passive = true }
  in
  let io = Channel.session_io channel side ~connect_side:false in
  let lnk =
    { peer; session = None; last_rx_size = 0; max_prefixes;
      mrai_pending = Hashtbl.create 16; mrai_armed = false }
  in
  let hooks =
    { Session.on_update = (fun u -> on_update t lnk u);
      on_refresh = (fun afi safi -> on_refresh t lnk ~afi ~safi);
      on_established = (fun () -> on_established t lnk);
      on_down =
        (fun _reason ->
          (* Session loss invalidates everything the peer contributed;
             the repair work flows through the pipeline like any other
             burst (paper: "a link is down or another router failed"). *)
          let o = Rib_manager.peer_down t.rib lnk.peer in
          match o.Rib_manager.fib_deltas, o.Rib_manager.announcements with
          | [], [] -> ()
          | deltas, anns ->
            t.inflight <- t.inflight + 1;
            let c = cost t in
            let proc =
              match t.procs with
              | Xorp { fea; _ } -> fea
              | Ios { ios; _ } -> ios
            in
            let cycles =
              c.Arch.cyc_per_fib_msg +. delta_cycles c deltas
              +. (float_of_int (List.length anns) *. c.Arch.cyc_per_announcement)
            in
            Sched.submit t.sched proc ~cycles (fun () ->
                ignore (Fib.apply_all t.fib deltas);
                List.iter
                  (fun (dest, msg) -> transmit t proc dest msg)
                  (announcement_msgs anns);
                t.inflight <- t.inflight - 1));
      on_tx_msg =
        (fun _ bytes ->
          t.msgs_tx <- t.msgs_tx + 1;
          t.bytes_tx <- t.bytes_tx + bytes);
      on_rx_msg =
        (fun _ bytes ->
          t.msgs_rx <- t.msgs_rx + 1;
          t.bytes_rx <- t.bytes_rx + bytes;
          lnk.last_rx_size <- bytes) }
  in
  let session = Session.create cfg (timer_service t.engine) io hooks in
  lnk.session <- Some session;
  Hashtbl.replace t.peers peer.Peer.id lnk;
  Channel.set_receiver channel side (fun bytes -> Session.feed session bytes);
  Channel.set_on_connected channel side (fun () -> Session.connected session);
  Channel.set_on_closed channel side (fun () -> Session.closed session);
  Session.start session

let session_state t peer = Session.state (link_session (link t peer))

let idle t =
  t.inflight = 0
  &&
  match t.procs with
  | Xorp { bgp; policy; rib; fea; _ } ->
    Sched.queue_length t.sched bgp = 0
    && Sched.queue_length t.sched policy = 0
    && Sched.queue_length t.sched rib = 0
    && Sched.queue_length t.sched fea = 0
  | Ios { ios; pending; pacer_busy; _ } ->
    Sched.queue_length t.sched ios = 0 && Queue.is_empty pending
    && not pacer_busy

let counters t =
  { transactions = t.transactions; updates_rx = t.updates_rx;
    msgs_rx = t.msgs_rx; msgs_tx = t.msgs_tx; bytes_rx = t.bytes_rx;
    bytes_tx = t.bytes_tx; first_work_at = t.first_work_at;
    last_transaction_at = t.last_transaction_at }

let reset_counters t =
  t.transactions <- 0;
  t.updates_rx <- 0;
  t.msgs_rx <- 0;
  t.msgs_tx <- 0;
  t.bytes_rx <- 0;
  t.bytes_tx <- 0;
  t.first_work_at <- None;
  t.last_transaction_at <- None
