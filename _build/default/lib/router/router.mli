(** The router under test: protocol engine + architecture model.

    Assembles, inside one simulation engine:
    - a passive BGP {!Bgp_fsm.Session} per attached peer,
    - the {!Bgp_rib.Rib_manager} three-RIB update engine,
    - a {!Bgp_fib.Fib} forwarding table,
    - a {!Bgp_netsim.Forwarding} data-plane model, and
    - the architecture's CPU: either the five-process XORP pipeline
      (xorp_bgp -> xorp_policy -> xorp_rib -> xorp_fea, with
      xorp_rtrmgr housekeeping) on a {!Bgp_sim.Sched} pool, or the
      monolithic paced model for the commercial black box.

    Protocol work happens logically when messages arrive, but its
    {e completion} — and therefore the transactions-per-second metric —
    is gated by simulated CPU-cycle jobs flowing through the process
    pipeline, which is where architecture differences and cross-traffic
    interference show up. *)

type t

val create :
  ?import:Bgp_policy.Policy.t ->
  ?export:Bgp_policy.Policy.t ->
  ?mrai:float ->
  Bgp_sim.Engine.t ->
  Arch.t ->
  local_asn:Bgp_route.Asn.t ->
  router_id:Bgp_addr.Ipv4.t ->
  t
(** [mrai]: enable RFC 4271 section 9.2.1.1 MinRouteAdvertisementInterval
    batching of outbound advertisements (seconds between flushes per
    peer).  Off by default — XORP 1.3, as benchmarked by the paper,
    advertises per decision. *)

val arch : t -> Arch.t
val engine : t -> Bgp_sim.Engine.t
val sched : t -> Bgp_sim.Sched.t
val rib : t -> Bgp_rib.Rib_manager.t
val fib : t -> Bgp_fib.Fib.t
val forwarding : t -> Bgp_netsim.Forwarding.t

val attach_peer :
  ?max_prefixes:int -> t -> peer:Bgp_route.Peer.t ->
  channel:Bgp_netsim.Channel.t -> side:Bgp_netsim.Channel.side -> unit
(** Register a neighbor reachable over [channel]/[side] and start a
    passive session on it.  The peer's id must be unique.
    [max_prefixes] enables prefix-limit protection: an announcement
    pushing the peer's Adj-RIB-In beyond the limit tears the session
    down with a CEASE and flushes the peer's routes. *)

val session_state : t -> Bgp_route.Peer.t -> Bgp_fsm.Fsm.state

val set_cross_traffic : t -> Bgp_netsim.Traffic.t -> unit

val idle : t -> bool
(** No control-plane work queued or in flight (the criterion the
    harness uses to detect the end of a phase). *)

type counters = {
  transactions : int;
      (** prefixes fully processed through to FIB/Loc-RIB completion *)
  updates_rx : int;
  msgs_rx : int;
  msgs_tx : int;
  bytes_rx : int;
  bytes_tx : int;
  first_work_at : float option;
      (** virtual time the first update of the window arrived *)
  last_transaction_at : float option;
}

val counters : t -> counters
val reset_counters : t -> unit
(** Zero the window counters (phase boundary). *)
