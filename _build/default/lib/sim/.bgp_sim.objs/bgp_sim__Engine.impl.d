lib/sim/engine.ml: Heap
