lib/sim/engine.mli:
