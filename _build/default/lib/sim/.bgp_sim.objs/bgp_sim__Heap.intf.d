lib/sim/heap.mli:
