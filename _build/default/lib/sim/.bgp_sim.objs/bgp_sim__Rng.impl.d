lib/sim/rng.ml: Array
