lib/sim/rng.mli:
