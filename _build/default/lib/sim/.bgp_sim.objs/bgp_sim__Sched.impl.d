lib/sim/sched.ml: Array Engine Float List Option Queue
