lib/sim/sched.mli: Engine
