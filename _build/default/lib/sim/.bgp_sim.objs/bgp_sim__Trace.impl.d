lib/sim/trace.ml: Engine Format List Option Sched
