lib/sim/trace.mli: Engine Format Sched
