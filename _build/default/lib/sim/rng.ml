(* SplitMix in the 62-bit positive-int domain: good diffusion, no
   dependence on the global Random state, O(1) split. *)
type t = { mutable state : int }

let mask = (1 lsl 62) - 1

let mix z =
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land mask in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land mask in
  z lxor (z lsr 31)

let next t =
  t.state <- (t.state + 0x1E3779B97F4A7C15) land mask;
  mix t.state

let create seed = { state = mix (seed land mask) }
let split t = { state = mix (next t) }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod n

let float t x = float_of_int (next t land ((1 lsl 53) - 1)) /. float_of_int (1 lsl 53) *. x

let bool t = next t land 1 = 1

let exponential t ~mean =
  let u = ref (float t 1.0) in
  (* avoid log 0 *)
  if !u <= 0.0 then u := 1e-300;
  -.mean *. log !u

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))
