(** Deterministic pseudo-random streams (SplitMix-style).

    Every stochastic element of the benchmark — cross-traffic
    inter-arrival jitter, AS-path length draws — pulls from an [Rng.t]
    seeded by the scenario configuration, so identical configurations
    replay identical runs on any machine.  The global [Random] state is
    never touched. *)

type t

val create : int -> t
(** A stream from a seed. *)

val split : t -> t
(** An independent stream derived from (and advancing) [t]. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1].
    @raise Invalid_argument when [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed (Poisson inter-arrivals). *)

val pick : t -> 'a array -> 'a
(** Uniform element.
    @raise Invalid_argument on an empty array. *)
