lib/speaker/speaker.ml: Bgp_addr Bgp_fsm Bgp_netsim Bgp_route Bgp_sim Bgp_wire Hashtbl List Option Printf Workload
