lib/speaker/speaker.mli: Bgp_addr Bgp_fsm Bgp_netsim Bgp_route Bgp_sim Hashtbl
