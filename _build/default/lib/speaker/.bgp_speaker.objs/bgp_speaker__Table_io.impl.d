lib/speaker/table_io.ml: Array Bgp_addr Bgp_route Buffer Fun List Option Printf Result String Workload
