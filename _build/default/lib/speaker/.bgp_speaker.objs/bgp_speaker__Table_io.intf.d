lib/speaker/table_io.mli: Bgp_addr Bgp_route
