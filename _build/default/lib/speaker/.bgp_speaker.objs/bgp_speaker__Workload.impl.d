lib/speaker/workload.ml: Array Bgp_route List
