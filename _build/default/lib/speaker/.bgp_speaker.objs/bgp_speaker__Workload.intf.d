lib/speaker/workload.mli: Bgp_addr Bgp_route
