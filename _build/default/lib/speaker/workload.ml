let path ~origin_asn ~len =
  if len < 1 then invalid_arg "Workload.path: length must be >= 1";
  (* Deterministic filler in the private-AS range, never colliding with
     benchmark speaker/router ASes (which live below 64512). *)
  let filler i = Bgp_route.Asn.of_int (64512 + (i mod 1000)) in
  Bgp_route.As_path.of_asns
    (origin_asn :: List.init (len - 1) filler)

let attrs ?med ~speaker_asn ~next_hop ~path_len () =
  Bgp_route.Attrs.make ?med ~as_path:(path ~origin_asn:speaker_asn ~len:path_len)
    ~next_hop ()

let chunk n arr =
  if n < 1 then invalid_arg "Workload.chunk: size must be >= 1";
  let len = Array.length arr in
  let rec go start acc =
    if start >= len then List.rev acc
    else
      let stop = min len (start + n) in
      let piece = Array.to_list (Array.sub arr start (stop - start)) in
      go stop (piece :: acc)
  in
  go 0 []
