(** Attribute construction for benchmark workloads.

    Scenarios 5-8 hinge on Speaker 2 announcing the {e same} prefixes
    as Speaker 1 with a {e longer} (5/6) or {e shorter} (7/8) AS path,
    so path length is the controlled variable here. *)

val path : origin_asn:Bgp_route.Asn.t -> len:int -> Bgp_route.As_path.t
(** A synthetic AS_SEQUENCE of [len] hops starting at the speaker's own
    AS ([origin_asn]) and padded with deterministic filler ASes.
    @raise Invalid_argument when [len < 1]. *)

val attrs :
  ?med:int ->
  speaker_asn:Bgp_route.Asn.t ->
  next_hop:Bgp_addr.Ipv4.t ->
  path_len:int ->
  unit ->
  Bgp_route.Attrs.t
(** Announcement attributes as a benchmark speaker would send them. *)

val chunk : int -> 'a array -> 'a list list
(** [chunk n arr] splits into consecutive lists of [n] (last one
    shorter).  This is the paper's "packet size" knob: [n = 1] small
    packets, [n = 500] large packets.
    @raise Invalid_argument when [n < 1]. *)
