lib/stats/chart.ml: Array Buffer Float List Printf String
