lib/stats/chart.mli:
