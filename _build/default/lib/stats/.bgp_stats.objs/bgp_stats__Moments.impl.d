lib/stats/moments.ml: Format List
