lib/stats/moments.mli: Format
