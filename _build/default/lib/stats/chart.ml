type series = { label : string; points : (float * float) list }

let glyphs = [| '*'; '+'; 'x'; 'o'; '#'; '@'; '%' |]

let render ?(width = 72) ?(height = 20) ?(log_y = false) ~x_label ~y_label
    series =
  let all_points = List.concat_map (fun s -> s.points) series in
  match all_points with
  | [] -> Printf.sprintf "(no data for %s vs %s)\n" y_label x_label
  | _ ->
    let tx y = if log_y then (if y > 0.0 then log10 y else nan) else y in
    let xs = List.map fst all_points in
    let ys = List.filter_map (fun (_, y) ->
        let v = tx y in
        if Float.is_nan v then None else Some v)
        all_points
    in
    let xmin = List.fold_left Float.min infinity xs in
    let xmax = List.fold_left Float.max neg_infinity xs in
    let ymin = List.fold_left Float.min infinity ys in
    let ymax = List.fold_left Float.max neg_infinity ys in
    let xspan = if xmax -. xmin <= 0.0 then 1.0 else xmax -. xmin in
    let yspan = if ymax -. ymin <= 0.0 then 1.0 else ymax -. ymin in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si s ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        List.iter
          (fun (x, y) ->
            let yv = tx y in
            if not (Float.is_nan yv) then begin
              let col =
                int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1))
              in
              let row =
                height - 1
                - int_of_float ((yv -. ymin) /. yspan *. float_of_int (height - 1))
              in
              if row >= 0 && row < height && col >= 0 && col < width then
                grid.(row).(col) <- glyph
            end)
          s.points)
      series;
    let buf = Buffer.create 4096 in
    let fmt_y v = if log_y then Printf.sprintf "%9.3g" (Float.pow 10.0 v) else Printf.sprintf "%9.3g" v in
    Array.iteri
      (fun row line ->
        let frac = float_of_int (height - 1 - row) /. float_of_int (height - 1) in
        let yv = ymin +. (frac *. yspan) in
        let label =
          if row = 0 || row = height - 1 || row = height / 2 then fmt_y yv
          else String.make 9 ' '
        in
        Buffer.add_string buf label;
        Buffer.add_string buf " |";
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make 10 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%10s %-8.6g%*s%8.6g\n" "" xmin (width - 14) "" xmax);
    Buffer.add_string buf
      (Printf.sprintf "%10s x: %s   y: %s%s\n" "" x_label y_label
         (if log_y then " (log scale)" else ""));
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf "%10s %c = %s\n" "" glyphs.(si mod Array.length glyphs)
             s.label))
      series;
    Buffer.contents buf

let to_tsv series =
  let xs =
    List.sort_uniq compare (List.concat_map (fun s -> List.map fst s.points) series)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "x";
  List.iter (fun s -> Buffer.add_string buf ("\t" ^ s.label)) series;
  Buffer.add_char buf '\n';
  List.iter
    (fun x ->
      Buffer.add_string buf (Printf.sprintf "%g" x);
      List.iter
        (fun s ->
          match List.assoc_opt x s.points with
          | Some y -> Buffer.add_string buf (Printf.sprintf "\t%g" y)
          | None -> Buffer.add_char buf '\t')
        series;
      Buffer.add_char buf '\n')
    xs;
  Buffer.contents buf
