(** Terminal charts for the figure reproductions.

    Plots multiple [(x, y)] series as an ASCII grid with axis labels
    and a legend — enough to eyeball the shapes of Figures 3-6 without
    leaving the terminal.  Also emits the underlying data as
    tab-separated rows for external plotting. *)

type series = { label : string; points : (float * float) list }

val render :
  ?width:int -> ?height:int -> ?log_y:bool ->
  x_label:string -> y_label:string -> series list -> string
(** Default 72x20 characters.  [log_y] plots log10 of positive values
    (the paper's Fig. 5 uses a log y-axis).  Series are drawn with the
    glyphs [* + x o # @ %] in order. *)

val to_tsv : series list -> string
(** Tab-separated: header [x label1 label2 ...], rows sorted by x, with
    empty cells for series lacking that x. *)
