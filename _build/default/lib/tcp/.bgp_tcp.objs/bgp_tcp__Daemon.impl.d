lib/tcp/daemon.ml: Bgp_fib Bgp_fsm Bgp_rib Bgp_route Bgp_wire Endpoint Event_loop Format List Option Printf
