lib/tcp/daemon.mli: Bgp_addr Bgp_fib Bgp_policy Bgp_rib Bgp_route Event_loop
