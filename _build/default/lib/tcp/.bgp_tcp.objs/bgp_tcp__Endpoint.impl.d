lib/tcp/endpoint.ml: Bgp_fsm Bytes Event_loop String Unix
