lib/tcp/endpoint.mli: Bgp_fsm Bgp_wire Event_loop
