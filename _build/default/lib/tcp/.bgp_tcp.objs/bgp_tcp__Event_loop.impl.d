lib/tcp/event_loop.ml: Bgp_fsm Float List Unix
