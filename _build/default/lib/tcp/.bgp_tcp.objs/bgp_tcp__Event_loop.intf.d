lib/tcp/event_loop.mli: Bgp_fsm Unix
