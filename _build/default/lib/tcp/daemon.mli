(** A small but real BGP daemon: the protocol engine ({!Bgp_rib}),
    policies, and aggregation wired to real TCP sessions on an
    {!Event_loop}.

    Unlike the benchmark's simulated router, the daemon has no cost
    model — it processes messages as fast as OCaml runs.  It exists so
    the library is usable as an actual (loopback-scoped) BGP speaker:
    originate routes, peer with neighbors, and watch tables converge
    across a multi-hop topology (see [bin/bgpd.ml] and the daemon
    tests, which run a three-node chain in one process).

    Neighbor identity (ASN, router id) is learned from the OPEN
    exchange, so peers need no pre-declaration beyond a TCP port. *)

type t

val create :
  ?import:Bgp_policy.Policy.t ->
  ?export:Bgp_policy.Policy.t ->
  ?aggregates:Bgp_rib.Rib_manager.aggregate_config list ->
  ?log:(string -> unit) ->
  Event_loop.t ->
  asn:Bgp_route.Asn.t ->
  router_id:Bgp_addr.Ipv4.t ->
  unit ->
  t

val listen : ?rr_client:bool -> t -> port:int -> unit
(** Accept one neighbor on 127.0.0.1:[port].  [rr_client] (default
    false) marks the neighbor as a route-reflection client (RFC 4456;
    only meaningful for IBGP neighbors).
    @raise Unix.Unix_error if the port cannot be bound. *)

val connect : ?rr_client:bool -> t -> port:int -> unit
(** Actively peer with a daemon listening on 127.0.0.1:[port]. *)

val originate : t -> Bgp_addr.Prefix.t -> unit
(** Inject a locally originated route (next hop = our router id) and
    propagate it to established neighbors. *)

val originate_route : t -> Bgp_addr.Prefix.t -> Bgp_route.Attrs.t -> unit
(** Originate with explicit attributes (used when replaying a saved
    table file through the daemon). *)

val withdraw_origin : t -> Bgp_addr.Prefix.t -> unit

val rib : t -> Bgp_rib.Rib_manager.t
val fib : t -> Bgp_fib.Fib.t
val routes : t -> Bgp_route.Route.t list
(** Current Loc-RIB contents. *)

val established_peers : t -> int
(** Number of sessions currently Established. *)

val stop : t -> unit
(** Cease all sessions and close all sockets. *)
