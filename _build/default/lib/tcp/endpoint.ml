module Session = Bgp_fsm.Session
module Fsm = Bgp_fsm.Fsm

type role = Listener of Unix.file_descr | Connector of int

type t = {
  loop : Event_loop.t;
  role : role;
  mutable conn : Unix.file_descr option;
  mutable session : Session.t option;
}

let session t =
  match t.session with
  | Some s -> s
  | None -> invalid_arg "Endpoint: not initialized"

let close_conn t =
  match t.conn with
  | None -> ()
  | Some fd ->
    Event_loop.unwatch t.loop fd;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.conn <- None

let rec write_all fd bytes off len =
  if len > 0 then begin
    let n = Unix.write fd bytes off len in
    write_all fd bytes (off + n) (len - n)
  end

let install_conn t fd =
  close_conn t;
  Unix.set_nonblock fd;
  t.conn <- Some fd;
  let buf = Bytes.create 65536 in
  Event_loop.watch_read t.loop fd (fun () ->
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 ->
        close_conn t;
        Session.closed (session t)
      | n -> Session.feed (session t) (Bytes.sub_string buf 0 n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) ->
        close_conn t;
        Session.closed (session t));
  (* Tell the FSM once we are back at the loop's top level. *)
  Event_loop.post t.loop (fun () -> Session.connected (session t))

let io_of t ~active =
  { Session.out_bytes =
      (fun bytes ->
        match t.conn with
        | None -> ()
        | Some fd -> (
          (* Loopback demo volumes: briefly clear O_NONBLOCK and write
             it all. *)
          try
            Unix.clear_nonblock fd;
            write_all fd (Bytes.of_string bytes) 0 (String.length bytes);
            Unix.set_nonblock fd
          with Unix.Unix_error _ ->
            close_conn t;
            Session.closed (session t)));
    start_connect =
      (fun () ->
        if active then
          match t.role with
          | Connector port -> (
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            try
              Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              install_conn t fd
            with Unix.Unix_error _ ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Event_loop.post t.loop (fun () -> Session.failed (session t)))
          | Listener _ -> ());
    close = (fun () -> close_conn t) }

let listen loop ~port ~cfg ~hooks =
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen lfd 1;
  let t = { loop; role = Listener lfd; conn = None; session = None } in
  let cfg = { cfg with Fsm.passive = true } in
  t.session <-
    Some (Session.create cfg (Event_loop.timer_service loop) (io_of t ~active:false) hooks);
  Event_loop.watch_read loop lfd (fun () ->
      match Unix.accept lfd with
      | fd, _ -> install_conn t fd
      | exception Unix.Unix_error _ -> ());
  t

let connect loop ~port ~cfg ~hooks =
  let t = { loop; role = Connector port; conn = None; session = None } in
  t.session <-
    Some (Session.create cfg (Event_loop.timer_service loop) (io_of t ~active:true) hooks);
  t

let start t = Session.start (session t)
let stop t = Session.stop (session t)
let state t = Session.state (session t)
let send t msg = Session.send (session t) msg

let close t =
  Session.stop (session t);
  close_conn t;
  match t.role with
  | Listener lfd ->
    Event_loop.unwatch t.loop lfd;
    (try Unix.close lfd with Unix.Unix_error _ -> ())
  | Connector _ -> ()
