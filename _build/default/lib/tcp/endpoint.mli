(** BGP speakers over real loopback TCP sockets.

    This is the interop proof for the wire codec and FSM: the exact
    bytes produced by {!Bgp_wire.Codec} travel through the kernel's TCP
    stack between two endpoints in one process (or two — the socket
    layer doesn't care).

    Single-connection model: one endpoint listens, the other connects;
    collision handling (RFC 4271 §6.8) is out of scope, as in the
    simulated transport. *)

type t

val listen :
  Event_loop.t -> port:int -> cfg:Bgp_fsm.Fsm.config ->
  hooks:Bgp_fsm.Session.hooks -> t
(** Passive endpoint on 127.0.0.1:[port].  [cfg.passive] is forced on.
    Accepts exactly one connection at a time; a new connection replaces
    a dead one.
    @raise Unix.Unix_error if the port cannot be bound. *)

val connect :
  Event_loop.t -> port:int -> cfg:Bgp_fsm.Fsm.config ->
  hooks:Bgp_fsm.Session.hooks -> t
(** Active endpoint connecting to 127.0.0.1:[port].  The connection is
    attempted when the FSM asks for it (i.e. after {!start}). *)

val start : t -> unit
val stop : t -> unit
val session : t -> Bgp_fsm.Session.t
val state : t -> Bgp_fsm.Fsm.state

val send : t -> Bgp_wire.Msg.t -> bool
(** Send an UPDATE (requires Established). *)

val close : t -> unit
(** Tear down sockets and unregister from the loop. *)
