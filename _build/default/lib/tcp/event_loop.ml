type timer = { fire_at : float; fn : unit -> unit; mutable live : bool }

type t = {
  mutable readers : (Unix.file_descr * (unit -> unit)) list;
  mutable timers : timer list;
  mutable posted : (unit -> unit) list;
}

let create () = { readers = []; timers = []; posted = [] }

let watch_read t fd fn =
  t.readers <- (fd, fn) :: List.remove_assoc fd t.readers

let unwatch t fd = t.readers <- List.remove_assoc fd t.readers

let after t delay fn =
  let timer = { fire_at = Unix.gettimeofday () +. delay; fn; live = true } in
  t.timers <- timer :: t.timers;
  fun () -> timer.live <- false

let post t fn = t.posted <- t.posted @ [ fn ]

let timer_service t =
  { Bgp_fsm.Session.arm_timer = (fun delay fn -> after t delay fn) }

let run_due_timers t =
  let now = Unix.gettimeofday () in
  let due, rest = List.partition (fun tm -> tm.live && tm.fire_at <= now) t.timers in
  t.timers <- List.filter (fun tm -> tm.live) rest;
  List.iter (fun tm -> tm.fn ()) due

let run_posted t =
  let posted = t.posted in
  t.posted <- [];
  List.iter (fun fn -> fn ()) posted

let next_timer_in t =
  let now = Unix.gettimeofday () in
  List.fold_left
    (fun acc tm -> if tm.live then Float.min acc (Float.max 0.0 (tm.fire_at -. now)) else acc)
    0.1 t.timers

let run t ~until ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if until () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      run_posted t;
      run_due_timers t;
      if until () then true
      else begin
        let fds = List.map fst t.readers in
        let wait = Float.min 0.05 (next_timer_in t) in
        (match Unix.select fds [] [] wait with
        | readable, _, _ ->
          List.iter
            (fun fd ->
              match List.assoc_opt fd t.readers with
              | Some fn -> fn ()
              | None -> ())
            readable
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go ()
      end
    end
  in
  go ()

let stop_watching_all t =
  t.readers <- [];
  t.timers <- [];
  t.posted <- []
