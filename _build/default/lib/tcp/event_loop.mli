(** A small single-threaded [select]-based event loop with wall-clock
    timers — the real-world counterpart of the simulator's engine, used
    to drive {!Bgp_fsm.Session}s over actual sockets. *)

type t

val create : unit -> t

val watch_read : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Invoke the callback whenever the descriptor is readable.  Replaces
    any previous watcher for the descriptor. *)

val unwatch : t -> Unix.file_descr -> unit

val after : t -> float -> (unit -> unit) -> unit -> unit
(** [after t delay fn] schedules [fn] in [delay] wall-clock seconds and
    returns a cancel thunk. *)

val post : t -> (unit -> unit) -> unit
(** Run a thunk on the next loop iteration (breaks reentrancy). *)

val timer_service : t -> Bgp_fsm.Session.timer_service
(** Adapter for sessions. *)

val run : t -> until:(unit -> bool) -> timeout:float -> bool
(** Pump the loop until [until ()] is true (returns [true]) or
    [timeout] wall-clock seconds elapse (returns [false]). *)

val stop_watching_all : t -> unit
