lib/wire/codec.ml: Bgp_addr Bgp_route Buffer Char List Msg Option Printf String
