lib/wire/codec.mli: Msg
