lib/wire/msg.ml: Bgp_addr Bgp_route Format List
