lib/wire/msg.mli: Bgp_addr Bgp_route Format
