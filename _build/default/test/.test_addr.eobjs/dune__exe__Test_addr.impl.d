test/test_addr.ml: Alcotest Array Bgp_addr Float Hashtbl Ipv4 List Option Prefix Prefix_gen Prefix_set Printf QCheck2 QCheck_alcotest
