test/test_bench.ml: Alcotest Array Bgp_addr Bgp_fsm Bgp_netsim Bgp_rib Bgp_route Bgp_router Bgp_sim Bgp_speaker Bgpmark Float Hashtbl List Option Printf String
