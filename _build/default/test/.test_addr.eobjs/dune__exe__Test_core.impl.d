test/test_core.ml: Alcotest Bgp_router Bgp_stats Bgpmark Float Format List Printf QCheck2 QCheck_alcotest String
