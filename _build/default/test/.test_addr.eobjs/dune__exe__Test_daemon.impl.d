test/test_daemon.ml: Alcotest Bgp_addr Bgp_fib Bgp_rib Bgp_route Bgp_tcp Fun List Option Unix
