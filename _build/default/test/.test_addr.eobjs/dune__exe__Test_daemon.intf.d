test/test_daemon.mli:
