test/test_fib.ml: Alcotest Array Bgp_addr Bgp_fib Dir24_8 Fib Hash_lpm Hashtbl List Patricia Printf QCheck2 QCheck_alcotest
