test/test_fib.mli:
