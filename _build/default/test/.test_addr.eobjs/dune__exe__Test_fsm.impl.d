test/test_fsm.ml: Alcotest Bgp_addr Bgp_fsm Bgp_route Bgp_wire Framer Fsm List Printf QCheck2 QCheck_alcotest Session String
