test/test_fsm.mli:
