test/test_netsim.ml: Alcotest Bgp_addr Bgp_fib Bgp_netsim Bgp_sim Buffer Bytes Channel Char Float Forwarding Ip_packet List Printf QCheck2 QCheck_alcotest String Traffic
