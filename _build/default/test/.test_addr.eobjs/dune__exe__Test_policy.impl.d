test/test_policy.ml: Alcotest Bgp_addr Bgp_policy Bgp_route List Policy QCheck2 QCheck_alcotest
