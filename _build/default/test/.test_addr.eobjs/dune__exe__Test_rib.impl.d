test/test_rib.ml: Alcotest Array Bgp_addr Bgp_fib Bgp_policy Bgp_rib Bgp_route Decision Format Hashtbl List Loc_rib Option QCheck2 QCheck_alcotest Rib_manager
