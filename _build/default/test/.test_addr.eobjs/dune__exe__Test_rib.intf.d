test/test_rib.mli:
