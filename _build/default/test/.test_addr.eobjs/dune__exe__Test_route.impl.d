test/test_route.ml: Alcotest As_path Asn Attrs Bgp_addr Bgp_route Community Format List Option Peer QCheck2 QCheck_alcotest Route
