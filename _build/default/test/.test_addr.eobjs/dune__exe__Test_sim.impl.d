test/test_sim.ml: Alcotest Bgp_sim Engine Float Fun Heap List Printf QCheck2 QCheck_alcotest Rng Sched Trace
