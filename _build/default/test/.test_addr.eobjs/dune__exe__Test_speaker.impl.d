test/test_speaker.ml: Alcotest Array Bgp_addr Bgp_route Bgp_speaker Filename Fun List Option QCheck2 QCheck_alcotest String Sys
