test/test_speaker.mli:
