test/test_tcp.ml: Alcotest Bgp_addr Bgp_fsm Bgp_route Bgp_speaker Bgp_tcp Bgp_wire Buffer Bytes Char List String Unix
