test/test_wire.ml: Alcotest Array Bgp_addr Bgp_route Bgp_wire Buffer Bytes Char Codec Format List Msg Option QCheck2 QCheck_alcotest String
