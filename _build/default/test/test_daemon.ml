(* Multi-hop daemon tests: real BGP over real loopback TCP between
   three daemons in one process — the "downstream user" configuration
   (a tiny AS chain: A -- B -- C). *)

module Daemon = Bgp_tcp.Daemon
module Loop = Bgp_tcp.Event_loop
module R = Bgp_route.Route
module As_path = Bgp_route.As_path

let ip = Bgp_addr.Ipv4.of_string_exn
let pfx = Bgp_addr.Prefix.of_string_exn
let asn = Bgp_route.Asn.of_int
let base_port = 43100 + (Unix.getpid () mod 400)

(* A(65101) listens p1; B(65102) connects to A, listens p2; C(65103)
   connects to B. *)
let with_chain ?aggregates_b f =
  let loop = Loop.create () in
  let p1 = base_port and p2 = base_port + 1 in
  let a = Daemon.create loop ~asn:(asn 65101) ~router_id:(ip "10.0.0.1") () in
  let b =
    Daemon.create ?aggregates:aggregates_b loop ~asn:(asn 65102)
      ~router_id:(ip "10.0.0.2") ()
  in
  let c = Daemon.create loop ~asn:(asn 65103) ~router_id:(ip "10.0.0.3") () in
  Daemon.listen a ~port:p1;
  Daemon.listen b ~port:p2;
  Daemon.connect b ~port:p1;
  Daemon.connect c ~port:p2;
  let all_up () =
    Daemon.established_peers a = 1
    && Daemon.established_peers b = 2
    && Daemon.established_peers c = 1
  in
  if not (Loop.run loop ~until:all_up ~timeout:10.0) then
    Alcotest.fail "chain failed to establish";
  Fun.protect
    ~finally:(fun () ->
      Daemon.stop a;
      Daemon.stop b;
      Daemon.stop c)
    (fun () -> f loop a b c)

let wait loop what cond =
  if not (Loop.run loop ~until:cond ~timeout:10.0) then
    Alcotest.failf "timed out waiting for %s" what

let find_route d prefix =
  List.find_opt (fun r -> Bgp_addr.Prefix.equal (R.prefix r) prefix) (Daemon.routes d)

let test_propagation_chain () =
  with_chain (fun loop a b c ->
      Daemon.originate a (pfx "198.51.100.0/24");
      wait loop "propagation to C" (fun () ->
          find_route c (pfx "198.51.100.0/24") <> None);
      (* B sees path [A]; C sees path [B, A]. *)
      (match find_route b (pfx "198.51.100.0/24") with
      | Some r ->
        Alcotest.(check (list int)) "path at B" [ 65101 ]
          (List.map Bgp_route.Asn.to_int
             (As_path.to_asn_list (R.attrs r).Bgp_route.Attrs.as_path))
      | None -> Alcotest.fail "B missing route");
      (match find_route c (pfx "198.51.100.0/24") with
      | Some r ->
        Alcotest.(check (list int)) "path at C" [ 65102; 65101 ]
          (List.map Bgp_route.Asn.to_int
             (As_path.to_asn_list (R.attrs r).Bgp_route.Attrs.as_path));
        (* next hop rewritten at each EBGP hop: C's next hop is B *)
        Alcotest.(check string) "next hop at C" "10.0.0.2"
          (Bgp_addr.Ipv4.to_string (R.attrs r).Bgp_route.Attrs.next_hop)
      | None -> Alcotest.fail "C missing route");
      (* FIBs were updated along the way *)
      Alcotest.(check int) "B fib" 1 (Bgp_fib.Fib.size (Daemon.fib b));
      Alcotest.(check int) "C fib" 1 (Bgp_fib.Fib.size (Daemon.fib c));
      (* withdraw at the origin propagates *)
      Daemon.withdraw_origin a (pfx "198.51.100.0/24");
      wait loop "withdraw to C" (fun () ->
          find_route c (pfx "198.51.100.0/24") = None);
      Alcotest.(check int) "C fib empty" 0 (Bgp_fib.Fib.size (Daemon.fib c)))

let test_aggregation_at_transit () =
  let aggs =
    [ { Bgp_rib.Rib_manager.agg_prefix = pfx "198.51.0.0/16"; agg_as_set = true;
        agg_summary_only = true } ]
  in
  with_chain ~aggregates_b:aggs (fun loop a _b c ->
      Daemon.originate a (pfx "198.51.100.0/24");
      Daemon.originate a (pfx "198.51.101.0/24");
      (* C hears only B's summary, never the /24s *)
      wait loop "summary at C" (fun () ->
          find_route c (pfx "198.51.0.0/16") <> None);
      Alcotest.(check bool) "specific suppressed" true
        (find_route c (pfx "198.51.100.0/24") = None);
      match find_route c (pfx "198.51.0.0/16") with
      | Some r ->
        let path = (R.attrs r).Bgp_route.Attrs.as_path in
        (* B prepended itself; the AS_SET carries A *)
        Alcotest.(check bool) "path has B" true (As_path.contains (asn 65102) path);
        Alcotest.(check bool) "as-set has A" true (As_path.contains (asn 65101) path)
      | None -> Alcotest.fail "summary missing")

let test_session_loss_withdraws () =
  with_chain (fun loop a b c ->
      Daemon.originate a (pfx "203.0.113.0/24");
      wait loop "route at C" (fun () -> find_route c (pfx "203.0.113.0/24") <> None);
      (* kill A entirely: B must withdraw from C *)
      Daemon.stop a;
      wait loop "withdraw reaches C" (fun () ->
          find_route c (pfx "203.0.113.0/24") = None);
      Alcotest.(check int) "B cleaned up" 0 (List.length (Daemon.routes b)))

(* IBGP route reflection over real TCP: three routers in ONE AS.
   Clients A and C peer only with reflector B; without RFC 4456 their
   routes would never reach each other. *)
let test_ibgp_route_reflection () =
  let loop = Loop.create () in
  let p1 = base_port + 10 and p2 = base_port + 11 in
  let mk last = Daemon.create loop ~asn:(asn 65200) ~router_id:(ip ("10.1.0." ^ string_of_int last)) () in
  let a = mk 1 and b = mk 2 and c = mk 3 in
  (* B listens on both ports and marks both neighbors as clients. *)
  Daemon.listen ~rr_client:true b ~port:p1;
  Daemon.listen ~rr_client:true b ~port:p2;
  Daemon.connect a ~port:p1;
  Daemon.connect c ~port:p2;
  let all_up () =
    Daemon.established_peers a = 1
    && Daemon.established_peers b = 2
    && Daemon.established_peers c = 1
  in
  if not (Loop.run loop ~until:all_up ~timeout:10.0) then
    Alcotest.fail "IBGP sessions failed to establish";
  Fun.protect
    ~finally:(fun () -> Daemon.stop a; Daemon.stop b; Daemon.stop c)
    (fun () ->
      Daemon.originate a (pfx "203.0.113.0/24");
      wait loop "reflection to C" (fun () ->
          find_route c (pfx "203.0.113.0/24") <> None);
      match find_route c (pfx "203.0.113.0/24") with
      | Some r ->
        let at = R.attrs r in
        (* IBGP end to end: no AS prepending anywhere *)
        Alcotest.(check int) "empty as path" 0
          (As_path.length at.Bgp_route.Attrs.as_path);
        (* the reflector stamped its bookkeeping *)
        Alcotest.(check (option string)) "originator is A" (Some "10.1.0.1")
          (Option.map Bgp_addr.Ipv4.to_string at.Bgp_route.Attrs.originator_id);
        Alcotest.(check (list string)) "cluster list is B" [ "10.1.0.2" ]
          (List.map Bgp_addr.Ipv4.to_string at.Bgp_route.Attrs.cluster_list);
        (* next hop preserved across reflection *)
        Alcotest.(check string) "next hop is A" "10.1.0.1"
          (Bgp_addr.Ipv4.to_string at.Bgp_route.Attrs.next_hop)
      | None -> Alcotest.fail "reflected route missing")

let () =
  Alcotest.run "bgp daemon"
    [ ( "chain",
        [ Alcotest.test_case "propagation A->B->C" `Quick test_propagation_chain;
          Alcotest.test_case "aggregation at transit" `Quick
            test_aggregation_at_transit;
          Alcotest.test_case "session loss withdraws" `Quick
            test_session_loss_withdraws;
          Alcotest.test_case "IBGP route reflection over TCP" `Quick
            test_ibgp_route_reflection
        ] )
    ]
