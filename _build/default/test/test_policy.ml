open Bgp_policy
module A = Bgp_route.Attrs
module R = Bgp_route.Route
module As_path = Bgp_route.As_path
module Asn = Bgp_route.Asn
module Community = Bgp_route.Community

let ip = Bgp_addr.Ipv4.of_string_exn
let pfx = Bgp_addr.Prefix.of_string_exn
let asn = Asn.of_int

let route ?(prefix = "203.0.113.0/24") ?med ?local_pref ?(communities = [])
    ?(path = [ 65001; 65002 ]) () =
  let attrs =
    A.make ?med ?local_pref ~communities
      ~as_path:(As_path.of_asns (List.map asn path))
      ~next_hop:(ip "192.0.2.1") ()
  in
  let peer =
    Bgp_route.Peer.make ~id:1 ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
      ~addr:(ip "192.0.2.1")
  in
  R.make ~prefix:(pfx prefix) ~attrs ~from:peer

(* ------------------------------------------------------------------ *)
(* Conditions                                                          *)
(* ------------------------------------------------------------------ *)

let test_prefix_conds () =
  let set = Bgp_addr.Prefix_set.of_list [ pfx "203.0.113.0/24"; pfx "10.0.0.0/8" ] in
  let r = route ~prefix:"203.0.113.0/24" () in
  Alcotest.(check bool) "exact" true (Policy.matches (Policy.Prefix_exact set) r);
  Alcotest.(check bool) "in" true (Policy.matches (Policy.Prefix_in set) r);
  let sub = route ~prefix:"10.1.0.0/16" () in
  Alcotest.(check bool) "more specific not exact" false
    (Policy.matches (Policy.Prefix_exact set) sub);
  Alcotest.(check bool) "more specific in" true
    (Policy.matches (Policy.Prefix_in set) sub);
  Alcotest.(check bool) "unrelated" false
    (Policy.matches (Policy.Prefix_in set) (route ~prefix:"198.51.100.0/24" ()));
  Alcotest.(check bool) "len range yes" true
    (Policy.matches (Policy.Prefix_len_range (20, 24)) r);
  Alcotest.(check bool) "len range no" false
    (Policy.matches (Policy.Prefix_len_range (25, 32)) r)

let test_path_conds () =
  let r = route ~path:[ 7018; 701; 3356 ] () in
  Alcotest.(check bool) "contains" true
    (Policy.matches (Policy.Path_contains (asn 701)) r);
  Alcotest.(check bool) "not contains" false
    (Policy.matches (Policy.Path_contains (asn 9)) r);
  Alcotest.(check bool) "neighbor" true
    (Policy.matches (Policy.Neighbor_as (asn 7018)) r);
  Alcotest.(check bool) "origin as" true
    (Policy.matches (Policy.Origin_as (asn 3356)) r);
  Alcotest.(check bool) "len at least" true
    (Policy.matches (Policy.Path_len_at_least 3) r);
  Alcotest.(check bool) "len at least no" false
    (Policy.matches (Policy.Path_len_at_least 4) r)

let test_attr_conds () =
  let c = Community.make (asn 65000) 100 in
  let r = route ~med:50 ~communities:[ c ] () in
  Alcotest.(check bool) "community" true (Policy.matches (Policy.Has_community c) r);
  Alcotest.(check bool) "med <=" true (Policy.matches (Policy.Med_at_most 50) r);
  Alcotest.(check bool) "med >" false (Policy.matches (Policy.Med_at_most 49) r);
  Alcotest.(check bool) "no med" false
    (Policy.matches (Policy.Med_at_most 1000) (route ()));
  Alcotest.(check bool) "origin igp" true
    (Policy.matches (Policy.Origin_is A.Igp) r)

let test_combinators () =
  let r = route ~med:50 () in
  let t = Policy.Med_at_most 50 and f = Policy.Med_at_most 0 in
  Alcotest.(check bool) "all empty" true (Policy.matches (Policy.All []) r);
  Alcotest.(check bool) "any empty" false (Policy.matches (Policy.Any []) r);
  Alcotest.(check bool) "all" true (Policy.matches (Policy.All [ t; t ]) r);
  Alcotest.(check bool) "all short" false (Policy.matches (Policy.All [ t; f ]) r);
  Alcotest.(check bool) "any" true (Policy.matches (Policy.Any [ f; t ]) r);
  Alcotest.(check bool) "not" true (Policy.matches (Policy.Not f) r)

(* ------------------------------------------------------------------ *)
(* Actions and evaluation                                              *)
(* ------------------------------------------------------------------ *)

let test_actions () =
  let r = route () in
  let lp = Policy.apply_action (Policy.Set_local_pref 200) r in
  Alcotest.(check (option int)) "lp" (Some 200) (R.attrs lp).A.local_pref;
  let nolp = Policy.apply_action Policy.Clear_local_pref lp in
  Alcotest.(check (option int)) "clear lp" None (R.attrs nolp).A.local_pref;
  let prep = Policy.apply_action (Policy.Prepend_path (asn 65001, 3)) r in
  Alcotest.(check int) "prepend" 5 (R.as_path_length prep);
  let comm = Policy.apply_action (Policy.Add_community Community.no_export) r in
  Alcotest.(check bool) "community" true
    (A.has_community Community.no_export (R.attrs comm));
  let stripped = Policy.apply_action Policy.Strip_communities comm in
  Alcotest.(check int) "stripped" 0 (List.length (R.attrs stripped).A.communities);
  let nh = Policy.apply_action (Policy.Set_next_hop (ip "10.9.9.9")) r in
  Alcotest.(check string) "nh" "10.9.9.9"
    (Bgp_addr.Ipv4.to_string (R.attrs nh).A.next_hop)

let test_eval_term_order () =
  (* First matching term decides; later terms never run. *)
  let p =
    Policy.make ~name:"ordered"
      [ { Policy.term_name = "t1"; conds = [ Policy.Path_len_at_least 1 ];
          verdict = Policy.Accept [ Policy.Set_local_pref 111 ] };
        { Policy.term_name = "t2"; conds = [];
          verdict = Policy.Accept [ Policy.Set_local_pref 222 ] }
      ]
  in
  match Policy.eval p (route ()) with
  | None -> Alcotest.fail "accepted expected"
  | Some r -> Alcotest.(check (option int)) "first term" (Some 111) (R.attrs r).A.local_pref

let test_eval_reject_and_default () =
  let reject_long =
    Policy.make ~name:"no-long-paths"
      [ { Policy.term_name = "kill"; conds = [ Policy.Path_len_at_least 5 ];
          verdict = Policy.Reject }
      ]
  in
  Alcotest.(check bool) "short accepted" true
    (Policy.eval reject_long (route ()) <> None);
  Alcotest.(check bool) "long rejected" true
    (Policy.eval reject_long (route ~path:[ 1; 2; 3; 4; 5 ] ()) = None);
  let default_reject = Policy.make ~default:`Reject ~name:"whitelist" [] in
  Alcotest.(check bool) "default reject" true
    (Policy.eval default_reject (route ()) = None);
  Alcotest.(check bool) "accept_all" true (Policy.eval Policy.accept_all (route ()) <> None);
  Alcotest.(check bool) "reject_all" true (Policy.eval Policy.reject_all (route ()) = None)

let test_multiple_actions_compose () =
  let p =
    Policy.make ~name:"compose"
      [ { Policy.term_name = "t"; conds = [];
          verdict =
            Policy.Accept
              [ Policy.Set_local_pref 50; Policy.Set_med 10;
                Policy.Prepend_path (asn 9, 2) ] }
      ]
  in
  match Policy.eval p (route ()) with
  | None -> Alcotest.fail "accept"
  | Some r ->
    Alcotest.(check (option int)) "lp" (Some 50) (R.attrs r).A.local_pref;
    Alcotest.(check (option int)) "med" (Some 10) (R.attrs r).A.med;
    Alcotest.(check int) "path" 4 (R.as_path_length r)

let test_work_units () =
  Alcotest.(check bool) "empty policy costs >= 1" true
    (Policy.work_units Policy.accept_all (route ()) >= 1);
  let p =
    Policy.make ~name:"three-conds"
      [ { Policy.term_name = "t";
          conds = [ Policy.Path_len_at_least 1; Policy.Med_at_most 5;
                    Policy.Origin_is A.Igp ];
          verdict = Policy.Reject }
      ]
  in
  (* Path_len matches, Med fails -> 2 evaluations, then default. *)
  Alcotest.(check int) "short circuit" 2 (Policy.work_units p (route ()))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_route =
  QCheck2.Gen.(
    let* med = option (int_range 0 100) in
    let* lp = option (int_range 0 500) in
    let* plen = int_range 1 6 in
    let* path = list_size (return plen) (int_range 1 65535) in
    return (route ?med ?local_pref:lp ~path ()))

let prop_eval_deterministic =
  QCheck2.Test.make ~name:"eval is deterministic" ~count:300 gen_route (fun r ->
      let p =
        Policy.make ~name:"p"
          [ { Policy.term_name = "a"; conds = [ Policy.Med_at_most 50 ];
              verdict = Policy.Accept [ Policy.Set_local_pref 7 ] };
            { Policy.term_name = "b"; conds = [ Policy.Path_len_at_least 4 ];
              verdict = Policy.Reject }
          ]
      in
      let o1 = Policy.eval p r and o2 = Policy.eval p r in
      (match o1, o2 with
      | None, None -> true
      | Some a, Some b -> R.equal a b
      | _ -> false))

let prop_accept_all_identity =
  QCheck2.Test.make ~name:"accept_all is the identity" ~count:300 gen_route
    (fun r ->
      match Policy.eval Policy.accept_all r with
      | Some r' -> R.equal r r'
      | None -> false)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "bgp_policy"
    [ ( "conditions",
        [ Alcotest.test_case "prefix matching" `Quick test_prefix_conds;
          Alcotest.test_case "path matching" `Quick test_path_conds;
          Alcotest.test_case "attribute matching" `Quick test_attr_conds;
          Alcotest.test_case "combinators" `Quick test_combinators
        ] );
      ( "evaluation",
        [ Alcotest.test_case "actions" `Quick test_actions;
          Alcotest.test_case "term order" `Quick test_eval_term_order;
          Alcotest.test_case "reject and defaults" `Quick test_eval_reject_and_default;
          Alcotest.test_case "actions compose" `Quick test_multiple_actions_compose;
          Alcotest.test_case "work units" `Quick test_work_units
        ] );
      qsuite "properties" [ prop_eval_deterministic; prop_accept_all_identity ]
    ]
