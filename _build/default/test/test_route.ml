open Bgp_route

let asn = Asn.of_int
let ip = Bgp_addr.Ipv4.of_string_exn
let pfx = Bgp_addr.Prefix.of_string_exn

(* ------------------------------------------------------------------ *)
(* Asn                                                                 *)
(* ------------------------------------------------------------------ *)

let test_asn_range () =
  Alcotest.(check int) "roundtrip" 7018 (Asn.to_int (asn 7018));
  Alcotest.(check bool) "none below" true (Asn.of_int_opt (-1) = None);
  Alcotest.(check bool) "none above" true (Asn.of_int_opt 65536 = None);
  Alcotest.(check bool) "max ok" true (Asn.of_int_opt 65535 <> None);
  Alcotest.(check bool) "private" true (Asn.is_private (asn 64512));
  Alcotest.(check bool) "not private" false (Asn.is_private (asn 7018))

(* ------------------------------------------------------------------ *)
(* As_path                                                             *)
(* ------------------------------------------------------------------ *)

let path asns = As_path.of_asns (List.map asn asns)

let test_path_length () =
  Alcotest.(check int) "empty" 0 (As_path.length As_path.empty);
  Alcotest.(check int) "seq" 3 (As_path.length (path [ 1; 2; 3 ]));
  let with_set =
    As_path.of_segments
      [ As_path.Seq [ asn 1; asn 2 ]; As_path.Set [ asn 3; asn 4; asn 5 ] ]
  in
  (* RFC: an AS_SET counts as a single hop. *)
  Alcotest.(check int) "set counts 1" 3 (As_path.length with_set)

let test_path_prepend () =
  let p = As_path.prepend (asn 100) (path [ 1; 2 ]) in
  Alcotest.(check int) "len" 3 (As_path.length p);
  Alcotest.(check (option int)) "first hop" (Some 100)
    (Option.map Asn.to_int (As_path.first_hop p));
  let p5 = As_path.prepend_n (asn 9) 5 As_path.empty in
  Alcotest.(check int) "prepend_n" 5 (As_path.length p5);
  (* Prepending onto a leading Set starts a fresh sequence. *)
  let onto_set = As_path.prepend (asn 1) (As_path.of_segments [ As_path.Set [ asn 2 ] ]) in
  Alcotest.(check int) "onto set" 2 (As_path.length onto_set);
  Alcotest.(check (option int)) "first hop onto set" (Some 1)
    (Option.map Asn.to_int (As_path.first_hop onto_set))

let test_path_contains () =
  let p =
    As_path.of_segments [ As_path.Seq [ asn 1; asn 2 ]; As_path.Set [ asn 7 ] ]
  in
  Alcotest.(check bool) "in seq" true (As_path.contains (asn 2) p);
  Alcotest.(check bool) "in set" true (As_path.contains (asn 7) p);
  Alcotest.(check bool) "absent" false (As_path.contains (asn 9) p)

let test_path_ends () =
  let p = path [ 10; 20; 30 ] in
  Alcotest.(check (option int)) "first" (Some 10)
    (Option.map Asn.to_int (As_path.first_hop p));
  Alcotest.(check (option int)) "origin" (Some 30)
    (Option.map Asn.to_int (As_path.origin_as p));
  Alcotest.(check (option int)) "empty first" None
    (Option.map Asn.to_int (As_path.first_hop As_path.empty))

let test_path_set_equality () =
  let a = As_path.of_segments [ As_path.Set [ asn 1; asn 2 ] ] in
  let b = As_path.of_segments [ As_path.Set [ asn 2; asn 1 ] ] in
  Alcotest.(check bool) "sets unordered" true (As_path.equal a b);
  Alcotest.(check bool) "hash agrees" true (As_path.hash a = As_path.hash b);
  let c = As_path.of_segments [ As_path.Seq [ asn 1; asn 2 ] ] in
  Alcotest.(check bool) "seq ordered" false
    (As_path.equal c (As_path.of_segments [ As_path.Seq [ asn 2; asn 1 ] ]))

let test_path_validation () =
  Alcotest.check_raises "empty segment" (Invalid_argument "As_path: empty segment")
    (fun () -> ignore (As_path.of_segments [ As_path.Seq [] ]));
  let too_long = List.init 256 (fun i -> asn (i + 1)) in
  Alcotest.check_raises "long segment"
    (Invalid_argument "As_path: segment longer than 255") (fun () ->
      ignore (As_path.of_segments [ As_path.Seq too_long ]))

let test_path_pp () =
  let p =
    As_path.of_segments [ As_path.Seq [ asn 7018; asn 701 ]; As_path.Set [ asn 3356 ] ]
  in
  Alcotest.(check string) "pp" "7018 701 {3356}" (Format.asprintf "%a" As_path.pp p)

(* ------------------------------------------------------------------ *)
(* Community                                                           *)
(* ------------------------------------------------------------------ *)

let test_community () =
  let c = Community.make (asn 7018) 666 in
  Alcotest.(check string) "pp" "7018:666" (Format.asprintf "%a" Community.pp c);
  Alcotest.(check int) "asn part" 7018 (Asn.to_int (Community.asn_part c));
  Alcotest.(check int) "value part" 666 (Community.value_part c);
  Alcotest.(check bool) "well known" true (Community.is_well_known Community.no_export);
  Alcotest.(check bool) "ordinary" false (Community.is_well_known c);
  Alcotest.(check string) "no-export" "no-export"
    (Format.asprintf "%a" Community.pp Community.no_export)

(* ------------------------------------------------------------------ *)
(* Attrs and Route                                                     *)
(* ------------------------------------------------------------------ *)

let base_attrs () =
  Attrs.make ~as_path:(path [ 1; 2; 3 ]) ~next_hop:(ip "10.0.0.1") ()

let test_attrs_builders () =
  let a = base_attrs () in
  Alcotest.(check bool) "defaults" true (a.Attrs.origin = Attrs.Igp);
  Alcotest.(check bool) "no med" true (a.Attrs.med = None);
  let a2 = Attrs.with_local_pref (Some 200) a in
  Alcotest.(check (option int)) "lp" (Some 200) a2.Attrs.local_pref;
  let a3 = Attrs.prepend_as (asn 99) a in
  Alcotest.(check int) "prepended" 4 (As_path.length a3.Attrs.as_path);
  let a4 = Attrs.add_community Community.no_export a in
  Alcotest.(check bool) "has community" true
    (Attrs.has_community Community.no_export a4);
  (* add_community is idempotent *)
  let a5 = Attrs.add_community Community.no_export a4 in
  Alcotest.(check int) "idempotent" 1 (List.length a5.Attrs.communities)

let test_attrs_equal () =
  let a = base_attrs () in
  Alcotest.(check bool) "refl" true (Attrs.equal a a);
  Alcotest.(check bool) "lp differs" false
    (Attrs.equal a (Attrs.with_local_pref (Some 1) a));
  (* community order is irrelevant *)
  let c1 = Community.make (asn 1) 1 and c2 = Community.make (asn 2) 2 in
  let x = Attrs.add_community c1 (Attrs.add_community c2 a) in
  let y = Attrs.add_community c2 (Attrs.add_community c1 a) in
  Alcotest.(check bool) "communities unordered" true (Attrs.equal x y)

let test_route () =
  let peer =
    Peer.make ~id:0 ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
      ~addr:(ip "192.0.2.1")
  in
  let r = Route.make ~prefix:(pfx "203.0.113.0/24") ~attrs:(base_attrs ()) ~from:peer in
  Alcotest.(check int) "path length" 3 (Route.as_path_length r);
  Alcotest.(check bool) "not local" false (Peer.is_local (Route.from r));
  let l = Route.local ~prefix:(pfx "198.51.100.0/24") ~next_hop:(ip "0.0.0.1") in
  Alcotest.(check bool) "local" true (Peer.is_local (Route.from l));
  Alcotest.(check int) "local empty path" 0 (Route.as_path_length l)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_asn = QCheck2.Gen.map Asn.of_int (QCheck2.Gen.int_range 1 65535)

let gen_seg =
  QCheck2.Gen.(
    bind bool (fun is_set ->
        map
          (fun l -> if is_set then As_path.Set l else As_path.Seq l)
          (list_size (int_range 1 8) gen_asn)))

let gen_path = QCheck2.Gen.(map As_path.of_segments (list_size (int_range 0 4) gen_seg))

let prop_prepend_increments =
  QCheck2.Test.make ~name:"prepend increments length by one" ~count:500
    QCheck2.Gen.(pair gen_asn gen_path)
    (fun (a, p) -> As_path.length (As_path.prepend a p) = As_path.length p + 1)

let prop_prepend_contains =
  QCheck2.Test.make ~name:"prepended AS is contained and is first hop" ~count:500
    QCheck2.Gen.(pair gen_asn gen_path)
    (fun (a, p) ->
      let p' = As_path.prepend a p in
      As_path.contains a p' && As_path.first_hop p' = Some a)

let prop_path_equal_refl =
  QCheck2.Test.make ~name:"as_path equal is reflexive, compare agrees" ~count:500
    QCheck2.Gen.(pair gen_path gen_path)
    (fun (a, b) ->
      As_path.equal a a
      && As_path.compare a a = 0
      && As_path.equal a b = (As_path.compare a b = 0))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "bgp_route"
    [ ("asn", [ Alcotest.test_case "range and predicates" `Quick test_asn_range ]);
      ( "as_path",
        [ Alcotest.test_case "length" `Quick test_path_length;
          Alcotest.test_case "prepend" `Quick test_path_prepend;
          Alcotest.test_case "contains" `Quick test_path_contains;
          Alcotest.test_case "first hop / origin" `Quick test_path_ends;
          Alcotest.test_case "set equality" `Quick test_path_set_equality;
          Alcotest.test_case "validation" `Quick test_path_validation;
          Alcotest.test_case "pretty printing" `Quick test_path_pp
        ] );
      ("community", [ Alcotest.test_case "encode/known" `Quick test_community ]);
      ( "attrs",
        [ Alcotest.test_case "builders" `Quick test_attrs_builders;
          Alcotest.test_case "equality" `Quick test_attrs_equal
        ] );
      ("route", [ Alcotest.test_case "construction" `Quick test_route ]);
      qsuite "properties"
        [ prop_prepend_increments; prop_prepend_contains; prop_path_equal_refl ]
    ]
