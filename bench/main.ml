(* Bechamel benchmarks for the bgpmark reproduction.

   One Test.make per paper artifact — Table I/II rendering, each
   Table III scenario, and each figure — each benchmark running a
   scaled-down but complete harness experiment; plus microbenchmarks of
   the substrate hot paths (wire codec, LPM structures, decision
   process, policy) and the DESIGN.md ablations (LPM structure choice,
   policy chain depth, packet packing).

   Wall-clock numbers here measure the *simulator and protocol
   engine*'s OCaml performance; the paper-facing transactions/s numbers
   come from `bgpbench` (virtual time). *)

open Bechamel
open Toolkit

module H = Bgpmark.Harness
module Scenario = Bgpmark.Scenario
module Arch = Bgp_router.Arch
module Msg = Bgp_wire.Msg
module Codec = Bgp_wire.Codec

let ip = Bgp_addr.Ipv4.of_string_exn
let asn = Bgp_route.Asn.of_int

(* Small-but-complete runs keep each benchmark iteration in the
   low-millisecond range. *)
let bench_config = { H.default_config with H.table_size = 200 }

(* ------------------------------------------------------------------ *)
(* Per-table / per-figure harness benches                              *)
(* ------------------------------------------------------------------ *)

let table1_test =
  Test.make ~name:"table1/render" (Staged.stage @@ fun () -> Scenario.table1 ())

let table2_test =
  Test.make ~name:"table2/render"
    (Staged.stage @@ fun () ->
     List.map (fun a -> Format.asprintf "%a" Arch.pp a) Arch.all)

let table3_tests =
  List.map
    (fun sc ->
      Test.make ~name:(Printf.sprintf "table3/scenario%d" sc.Scenario.id)
        (Staged.stage @@ fun () ->
         List.map
           (fun arch ->
             let r = H.run ~config:bench_config arch sc in
             assert (r.H.verified = Ok ());
             r.H.tps)
           Arch.all))
    Scenario.all

let fig3_test =
  Test.make ~name:"fig3/cpu-traces-scenario6"
    (Staged.stage @@ fun () -> Bgpmark.Figures.fig3 ~config:bench_config ())

let fig4_test =
  Test.make ~name:"fig4/packet-size-traces"
    (Staged.stage @@ fun () -> Bgpmark.Figures.fig4 ~config:bench_config ())

let fig5_tests =
  (* One per panel, on a reduced 3-level sweep. *)
  List.map
    (fun sc ->
      Test.make ~name:(Printf.sprintf "fig5/benchmark%d" sc.Scenario.id)
        (Staged.stage @@ fun () ->
         Bgpmark.Sweep.run ~config:bench_config ~levels:[ 0.0; 150.0; 300.0 ] sc))
    Scenario.all

let fig6_test =
  Test.make ~name:"fig6/cross-traffic-traces"
    (Staged.stage @@ fun () -> Bgpmark.Figures.fig6 ~config:bench_config ())

(* ------------------------------------------------------------------ *)
(* Substrate microbenches                                              *)
(* ------------------------------------------------------------------ *)

let table10k = Bgp_addr.Prefix_gen.table ~seed:1 ~n:10_000 ()

let update500 =
  let attrs =
    Bgp_speaker.Workload.attrs ~speaker_asn:(asn 65001)
      ~next_hop:(ip "192.0.2.1") ~path_len:4 ()
  in
  Msg.announcement attrs (Array.to_list (Array.sub table10k 0 500))

let update500_wire = Codec.encode update500

let wire_tests =
  [ Test.make ~name:"wire/encode-update-500"
      (Staged.stage @@ fun () -> Codec.encode update500);
    Test.make ~name:"wire/decode-update-500"
      (Staged.stage @@ fun () -> Result.get_ok (Codec.decode update500_wire));
    Test.make ~name:"wire/keepalive-roundtrip"
      (Staged.stage @@ fun () ->
       Result.get_ok (Codec.decode (Codec.encode Msg.Keepalive))) ]

(* LPM ablation: the three structures over the same 10k-prefix table. *)
let nh = { Bgp_fib.Fib.nh_addr = ip "192.0.2.1"; nh_port = 0 }

let patricia_full =
  Array.fold_left
    (fun t p -> Bgp_fib.Patricia.add p nh t)
    Bgp_fib.Patricia.empty table10k

let hash_full =
  let h = Bgp_fib.Hash_lpm.create () in
  Array.iter (fun p -> Bgp_fib.Hash_lpm.insert h p nh) table10k;
  h

let dir_full =
  Bgp_fib.Dir24_8.build (Array.to_list (Array.map (fun p -> (p, nh)) table10k))

let probe_addrs =
  Array.init 1024 (fun i ->
      Bgp_addr.Prefix.first table10k.(i * (Array.length table10k / 1024)))

let lookup_all lookup =
  let acc = ref 0 in
  Array.iter (fun a -> if lookup a <> None then incr acc) probe_addrs;
  !acc

let fib_tests =
  [ Test.make ~name:"fib/patricia-build-10k"
      (Staged.stage @@ fun () ->
       Array.fold_left
         (fun t p -> Bgp_fib.Patricia.add p nh t)
         Bgp_fib.Patricia.empty table10k);
    Test.make ~name:"fib/dir24-build-10k"
      (Staged.stage @@ fun () ->
       Bgp_fib.Dir24_8.build
         (Array.to_list (Array.map (fun p -> (p, nh)) table10k)));
    Test.make ~name:"ablation-lpm/patricia-lookup-1k"
      (Staged.stage @@ fun () ->
       lookup_all (fun a -> Bgp_fib.Patricia.lookup a patricia_full));
    Test.make ~name:"ablation-lpm/hashlpm-lookup-1k"
      (Staged.stage @@ fun () ->
       lookup_all (fun a -> Bgp_fib.Hash_lpm.lookup hash_full a));
    Test.make ~name:"ablation-lpm/dir24-lookup-1k"
      (Staged.stage @@ fun () -> lookup_all (Bgp_fib.Dir24_8.lookup dir_full)) ]

(* Decision process and RIB machinery. *)
let candidates =
  List.init 8 (fun i ->
      let peer =
        Bgp_route.Peer.make ~id:i
          ~asn:(asn (65001 + i))
          ~router_id:(Bgp_addr.Ipv4.of_octets 192 0 2 (i + 1))
          ~addr:(Bgp_addr.Ipv4.of_octets 192 0 2 (i + 1))
      in
      Bgp_route.Route.make
        ~prefix:(Bgp_addr.Prefix.of_string_exn "203.0.113.0/24")
        ~attrs:
          (Bgp_speaker.Workload.attrs
             ~speaker_asn:(asn (65001 + i))
             ~next_hop:peer.Bgp_route.Peer.addr
             ~path_len:(2 + (i mod 4))
             ())
        ~from:peer)

let rib_bench =
  let attrs =
    Bgp_speaker.Workload.attrs ~speaker_asn:(asn 65001)
      ~next_hop:(ip "192.0.2.1") ~path_len:3 ()
  in
  Test.make ~name:"rib/announce-withdraw-1k"
    (Staged.stage @@ fun () ->
     let rib =
       Bgp_rib.Rib_manager.create ~local_asn:(asn 65000)
         ~router_id:(ip "10.255.0.1") ()
     in
     let p1 =
       Bgp_route.Peer.make ~id:0 ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
         ~addr:(ip "192.0.2.1")
     in
     Bgp_rib.Rib_manager.add_peer rib p1;
     for i = 0 to 999 do
       ignore (Bgp_rib.Rib_manager.announce rib ~from:p1 table10k.(i) attrs)
     done;
     for i = 0 to 999 do
       ignore (Bgp_rib.Rib_manager.withdraw rib ~from:p1 table10k.(i))
     done)

let decision_test =
  Test.make ~name:"rib/decision-8-candidates"
    (Staged.stage @@ fun () ->
     Bgp_rib.Decision.select ~local_asn:(asn 65000) candidates)

(* Policy-depth ablation. *)
let policy_of_depth n =
  Bgp_policy.Policy.make ~name:(Printf.sprintf "depth-%d" n)
    (List.init n (fun i ->
         { Bgp_policy.Policy.term_name = Printf.sprintf "t%d" i;
           conds = [ Bgp_policy.Policy.Path_contains (asn (i + 1)) ];
           verdict = Bgp_policy.Policy.Reject }))

let sample_route = List.hd candidates

let policy_tests =
  List.map
    (fun depth ->
      let p = policy_of_depth depth in
      Test.make ~name:(Printf.sprintf "ablation-policy/depth-%d" depth)
        (Staged.stage @@ fun () -> Bgp_policy.Policy.eval p sample_route))
    [ 0; 8; 32 ]

(* Packing ablation: the paper's small-vs-large knob, end to end. *)
let packing_tests =
  List.map
    (fun packing ->
      Test.make ~name:(Printf.sprintf "ablation-packing/%d-per-update" packing)
        (Staged.stage @@ fun () ->
         let config = { bench_config with H.large_packing = max packing 2 } in
         let sc =
           if packing = 1 then Scenario.of_id_exn 1 else Scenario.of_id_exn 2
         in
         (H.run ~config Arch.pentium3 sc).H.tps))
    [ 1; 50; 500 ]

(* Decision-process scaling with the number of candidate routes. *)
let candidates_of n =
  List.filteri (fun i _ -> i < n) (candidates @ candidates @ candidates @ candidates)

let decision_scaling_tests =
  List.map
    (fun n ->
      let cs =
        List.mapi
          (fun i r ->
            Bgp_route.Route.make
              ~prefix:(Bgp_route.Route.prefix r)
              ~attrs:(Bgp_route.Route.attrs r)
              ~from:
                (Bgp_route.Peer.make ~id:i
                   ~asn:(asn (64000 + i))
                   ~router_id:(Bgp_addr.Ipv4.of_int (1000 + i))
                   ~addr:(Bgp_addr.Ipv4.of_int (1000 + i))))
          (candidates_of n)
      in
      Test.make ~name:(Printf.sprintf "ablation-decision/candidates-%d" n)
        (Staged.stage @@ fun () ->
         Bgp_rib.Decision.select ~local_asn:(asn 65000) cs))
    [ 2; 8; 32 ]

(* Aggregation cost: announce/withdraw 1k prefixes with and without a
   configured covering aggregate. *)
let rib_agg_tests =
  let attrs =
    Bgp_speaker.Workload.attrs ~speaker_asn:(asn 65001)
      ~next_hop:(ip "192.0.2.1") ~path_len:3 ()
  in
  let mk_run aggregates () =
    let rib =
      Bgp_rib.Rib_manager.create ?aggregates ~local_asn:(asn 65000)
        ~router_id:(ip "10.255.0.1") ()
    in
    let p1 =
      Bgp_route.Peer.make ~id:0 ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
        ~addr:(ip "192.0.2.1")
    in
    Bgp_rib.Rib_manager.add_peer rib p1;
    for i = 0 to 999 do
      ignore (Bgp_rib.Rib_manager.announce rib ~from:p1 table10k.(i) attrs)
    done;
    for i = 0 to 999 do
      ignore (Bgp_rib.Rib_manager.withdraw rib ~from:p1 table10k.(i))
    done
  in
  [ Test.make ~name:"ablation-aggregation/off"
      (Staged.stage (mk_run None));
    Test.make ~name:"ablation-aggregation/default-route-aggregate"
      (Staged.stage
         (mk_run
            (Some
               [ { Bgp_rib.Rib_manager.agg_prefix = Bgp_addr.Prefix.default;
                   agg_as_set = false; agg_summary_only = false } ]))) ]

(* Workload realism ablation: the paper's uniform paths vs an
   Internet-shaped mix. *)
let workload_shape_tests =
  [ Test.make ~name:"ablation-workload/uniform-paths"
      (Staged.stage @@ fun () ->
       (H.run ~config:bench_config Arch.pentium3 (Scenario.of_id_exn 2)).H.tps);
    Test.make ~name:"ablation-workload/varied-paths"
      (Staged.stage @@ fun () ->
       (H.run
          ~config:{ bench_config with H.varied_paths = true }
          Arch.pentium3 (Scenario.of_id_exn 2))
         .H.tps) ]

(* MRAI ablation: outbound advertisement batching on scenario 7. *)
let mrai_tests =
  [ Test.make ~name:"ablation-mrai/off"
      (Staged.stage @@ fun () ->
       (H.run ~config:bench_config Arch.pentium3 (Scenario.of_id_exn 7)).H.msgs_tx);
    Test.make ~name:"ablation-mrai/1s"
      (Staged.stage @@ fun () ->
       (H.run
          ~config:{ bench_config with H.mrai = Some 1.0 }
          Arch.pentium3 (Scenario.of_id_exn 7))
         .H.msgs_tx) ]

(* Stream framing throughput: reassemble a 50-message burst fed in
   1400-byte chunks (TCP segment sized). *)
let framer_test =
  let burst =
    String.concat ""
      (List.init 50 (fun i ->
           Codec.encode
             (Msg.announcement
                (Bgp_speaker.Workload.attrs ~speaker_asn:(asn 65001)
                   ~next_hop:(ip "192.0.2.1") ~path_len:3 ())
                (Array.to_list (Array.sub table10k (i * 20) 20)))))
  in
  Test.make ~name:"fsm/framer-50-updates-chunked"
    (Staged.stage @@ fun () ->
     let f = Bgp_fsm.Framer.create () in
     let n = String.length burst in
     let i = ref 0 in
     let count = ref 0 in
     while !i < n do
       let take = min 1400 (n - !i) in
       Bgp_fsm.Framer.feed f (String.sub burst !i take);
       i := !i + take;
       let continue = ref true in
       while !continue do
         match Bgp_fsm.Framer.next f with
         | Bgp_fsm.Framer.Msg _ -> incr count
         | _ -> continue := false
       done
     done;
     assert (!count = 50))

(* The real RFC 1812 fast path on wire bytes — the work the fluid
   forwarding model's cycles-per-packet constant abstracts. *)
let forward_wire_test =
  let fib = Bgp_fib.Fib.create () in
  Array.iter
    (fun p -> ignore (Bgp_fib.Fib.apply fib (Bgp_fib.Fib.Add (p, nh))))
    table10k;
  let wire =
    Bgp_netsim.Ip_packet.serialize
      (Bgp_netsim.Ip_packet.make ~src:(ip "10.0.0.1")
         ~dst:(Bgp_addr.Prefix.first table10k.(42))
         (String.make 36 'x'))
  in
  Test.make ~name:"datapath/rfc1812-forward-64B-packet"
    (Staged.stage @@ fun () ->
     Result.get_ok (Bgp_netsim.Ip_packet.forward_wire fib wire))

(* Attribute-arena microbenches: interning a varied table (mostly
   hits), and the O(1) handle equality against the structural walk it
   replaces. *)
let arena_tests =
  let module I = Bgp_route.Attrs.Interned in
  let varied_attrs =
    List.map
      (Bgp_speaker.Table_io.to_attrs ~next_hop:(ip "192.0.2.1"))
      (Bgp_speaker.Table_io.synthesize ~seed:3 ~n:1000 ~speaker_asn:(asn 65001)
         ())
  in
  let ha = I.intern (List.hd varied_attrs) in
  let hb = I.intern (List.nth varied_attrs 1) in
  [ Test.make ~name:"arena/intern-1k-varied"
      (Staged.stage @@ fun () ->
       List.iter (fun at -> ignore (I.intern at)) varied_attrs);
    Test.make ~name:"arena/interned-equal"
      (Staged.stage @@ fun () -> I.equal ha hb);
    Test.make ~name:"arena/structural-equal"
      (Staged.stage @@ fun () ->
       Bgp_route.Attrs.equal (I.value ha) (I.value hb)) ]

let gen_test =
  Test.make ~name:"workload/prefix-table-10k"
    (Staged.stage @@ fun () -> Bgp_addr.Prefix_gen.table ~seed:9 ~n:10_000 ())

(* The Barabási–Albert generator used to rebuild its endpoint bag per
   vertex (quadratic); these pin the linear rewrite at the scales the
   partitioned topology runs use. *)
let topo_gen_tests =
  [ Test.make ~name:"topo/ba-generate-1k"
      (Staged.stage @@ fun () ->
       Bgp_topo.Topology.make ~seed:9 Bgp_topo.Topology.Scale_free ~n:1_000);
    Test.make ~name:"topo/ba-generate-10k"
      (Staged.stage @@ fun () ->
       Bgp_topo.Topology.make ~seed:9 Bgp_topo.Topology.Scale_free ~n:10_000);
    Test.make ~name:"topo/partition-ba-10k-8way"
      (let topo =
         Bgp_topo.Topology.make ~seed:9 Bgp_topo.Topology.Scale_free ~n:10_000
       in
       Staged.stage @@ fun () -> Bgp_topo.Partition.assign topo ~parts:8) ]

let sim_test =
  Test.make ~name:"sim/schedule-drain-10k-events"
    (Staged.stage @@ fun () ->
     let e = Bgp_sim.Engine.create () in
     for i = 1 to 10_000 do
       ignore (Bgp_sim.Engine.schedule e ~delay:(float_of_int i *. 1e-3) ignore)
     done;
     Bgp_sim.Engine.run e)

(* ------------------------------------------------------------------ *)
(* Per-stage cost breakdown preamble                                   *)
(* ------------------------------------------------------------------ *)

(* One complete scenario-1 run per architecture, reporting where the
   simulated cycles went stage by stage.  Also the `--smoke` payload:
   a cheap end-to-end exercise of harness + pipeline + reporting. *)
let print_stage_breakdowns () =
  let sc = Scenario.of_id_exn 1 in
  Format.printf
    "Per-stage cycle breakdown (scenario %d, %d prefixes, small packets):@.@."
    sc.Scenario.id bench_config.H.table_size;
  List.iter
    (fun arch ->
      let r = H.run ~config:bench_config arch sc in
      assert (r.H.verified = Ok ());
      Format.printf "%s: %.1f transactions/s@.%a@." r.H.arch_name r.H.tps
        Bgp_pipeline.Pipeline.pp_stage_stats r.H.stage_stats)
    Arch.all

(* Fault-injection smoke: both adversarial scenarios on one
   architecture, asserting the router survived, answered every
   malformed UPDATE with the predicted NOTIFICATION, and re-converged
   after every teardown. *)
let print_fault_smoke () =
  let config = { bench_config with H.fault_rounds = 2 } in
  Format.printf "Fault-injection smoke (%d prefixes, %d rounds):@.@."
    config.H.table_size config.H.fault_rounds;
  List.iter
    (fun sc ->
      let r = H.run ~config Arch.pentium3 sc in
      assert (r.H.verified = Ok ());
      let f = Option.get r.H.faults in
      Format.printf
        "%s: %.1f transactions/s; faults injected %d, malformed dropped %d, \
         session restarts %d, re-convergence mean %.3fs@."
        (Scenario.name sc) r.H.tps f.H.fr_injected f.H.fr_malformed_dropped
        f.H.fr_session_restarts f.H.fr_reconverge_mean)
    Scenario.adversarial;
  Format.printf "@."

(* Allocation-regression smoke: replay a 20k-prefix table through the
   receiver path with the arena on and compare Gc.allocated_bytes per
   UPDATE against the checked-in baseline.  The gate is two-sided:
   >20% above baseline is a regression, >20% below means the code got
   better and the checked-in number is stale — both fail (exit 1) so
   the baseline always tracks reality. *)
let print_alloc_smoke () =
  let sweep = Bgpmark.Arena_sweep.run ~seed:42 [ 20_000 ] in
  let shared = List.hd sweep.Bgpmark.Arena_sweep.cells in
  let measured = shared.Bgpmark.Arena_sweep.sw_alloc_per_update in
  Format.printf
    "Allocation smoke (20k-prefix table, arena on): %.0f B/update, hit rate \
     %.1f%%@."
    measured
    (100.0 *. shared.Bgpmark.Arena_sweep.sw_hit_rate);
  Format.printf
    "  challenger phase (scenario-5/6 shape): %.0f B/update, %.0f msgs/s \
     unpaced@."
    shared.Bgpmark.Arena_sweep.sw_chal_alloc_per_update
    shared.Bgpmark.Arena_sweep.sw_chal_tps;
  let baseline_file =
    List.find_opt Sys.file_exists
      [ "bench/alloc_baseline.txt"; "alloc_baseline.txt" ]
  in
  match baseline_file with
  | None ->
    Format.printf "  (no alloc_baseline.txt found; skipping regression gate)@.@."
  | Some file ->
    let ic = open_in file in
    let baseline =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> float_of_string (String.trim (input_line ic)))
    in
    let upper = baseline *. 1.2 and lower = baseline /. 1.2 in
    Format.printf "  baseline %.0f B/update (gate: %.0f .. %.0f)@.@." baseline
      lower upper;
    if measured > upper then begin
      Format.eprintf
        "allocation regression: %.0f B/update exceeds baseline %.0f by more \
         than 20%%@."
        measured baseline;
      exit 1
    end;
    if measured < lower then begin
      Format.eprintf
        "allocation baseline is stale: measured %.0f B/update is more than \
         20%% below the checked-in %.0f — update %s@."
        measured baseline file;
      exit 1
    end

(* MRT smoke: a synthesized dump must survive a write -> read
   roundtrip bit for bit, and scenario 13 must replay it through the
   harness and verify against the replay oracle — all offline, no
   external trace. *)
let print_mrt_smoke () =
  let module Mrt = Bgp_mrt.Mrt in
  let records =
    Bgp_speaker.Mrt_gen.records ~seed:bench_config.H.seed ~events:40
      ~n:bench_config.H.table_size ~speaker_asn:(asn 65001)
      ~next_hop:(ip "192.0.2.1") ()
  in
  let bytes = Mrt.to_string records in
  (match Mrt.of_string bytes with
  | Error e -> failwith ("MRT roundtrip failed: " ^ e)
  | Ok (records', skipped) ->
    assert (skipped = 0);
    assert (List.length records' = List.length records);
    assert (Mrt.to_string records' = bytes));
  let config = { bench_config with H.replay_events = 40 } in
  let r = H.run ~config Arch.pentium3 (Scenario.of_id_exn 13) in
  assert (r.H.verified = Ok ());
  Format.printf
    "MRT smoke: %d-record dump roundtripped (%d bytes); replay %.1f \
     transactions/s, FIB end size %d@.@."
    (List.length records) (String.length bytes) r.H.tps r.H.fib_size_end

(* Damping smoke: the scenario-14 flap storm must suppress flapping
   routes, reuse every one of them, and end with nothing suppressed —
   and a damped scenario-10 run must leave the Loc-RIB fingerprint of
   the undamped run intact (damping off by default is the Table III
   determinism guarantee). *)
let print_damping_smoke () =
  let config = { bench_config with H.fault_rounds = 3 } in
  let r = H.run ~config Arch.pentium3 (Scenario.of_id_exn 14) in
  assert (r.H.verified = Ok ());
  let d = Option.get r.H.damping in
  assert (d.H.dr_suppressions > 0);
  assert (d.H.dr_reuses = d.H.dr_suppressions);
  assert (d.H.dr_suppressed_end = 0);
  let sc10 = Scenario.of_id_exn 10 in
  let plain = H.run ~config Arch.pentium3 sc10 in
  let damped =
    H.run
      ~config:{ config with H.damping = Some Bgp_rib.Damping.test_config }
      Arch.pentium3 sc10
  in
  assert (plain.H.verified = Ok ());
  assert (damped.H.verified = Ok ());
  assert (plain.H.damping = None);
  assert (plain.H.locrib_fp = damped.H.locrib_fp);
  Format.printf
    "Damping smoke (scenario 14, %d rounds): %d flaps, %d suppressed, %d \
     reused, reuse latency mean %.2fs; damped scenario-10 fingerprint \
     unchanged@.@."
    config.H.fault_rounds d.H.dr_flaps d.H.dr_suppressions d.H.dr_reuses
    d.H.dr_reuse_latency_mean

(* Churn smoke: one small scenario-16 run — batched /32 injection at an
   exact prefix limit with MRAI on, Markov churn, failover sweep — must
   verify against the subscriber-plan oracle, and every swept
   withdrawal must have been timed at speaker 2. *)
let print_churn_smoke () =
  let sub_cfg =
    { Bgp_speaker.Subscriber.subscribers = 1_000; batch = 200;
      batch_interval = 0.02; churn_rate = 200.0; churn_duration = 0.5;
      seed = bench_config.H.seed }
  in
  let config = { bench_config with H.churn = Some sub_cfg } in
  let r = H.run ~config Arch.pentium3 (Scenario.of_id_exn 16) in
  assert (r.H.verified = Ok ());
  let c = Option.get r.H.churn in
  assert (c.H.cr_sweep_count = c.H.cr_sessions_up_end);
  Format.printf
    "Churn smoke (%d subscribers, %d events): injection %.0f tps, churn %.0f \
     tps, failover swept %d routes in %.3fs@.@."
    c.H.cr_subscribers c.H.cr_churn_events c.H.cr_injection_tps
    c.H.cr_churn_tps c.H.cr_sweep_count c.H.cr_failover_s

(* Live-mode smoke: one real-TCP harness run (scenario 5, the
   best-vs-challenger shape the incremental decision path serves) must
   finish and verify — sessions establish over loopback, the table
   loads, the challenger phase completes, and the Loc-RIB checks out.
   Small table: this guards the live plumbing, not throughput. *)
let print_live_smoke () =
  let sc = Scenario.of_id_exn 5 in
  let config = { bench_config with H.mode = H.Live; H.timeout = 60.0 } in
  let r = H.run ~config Arch.pentium3 sc in
  assert (r.H.verified = Ok ());
  Format.printf "Live smoke (%s, %d prefixes, real TCP): %.1f transactions/s@.@."
    (Scenario.name sc) config.H.table_size r.H.tps

let fault_tests =
  List.map
    (fun sc ->
      Test.make ~name:(Printf.sprintf "faults/scenario%d" sc.Scenario.id)
        (Staged.stage @@ fun () ->
         let config = { bench_config with H.fault_rounds = 2 } in
         let r = H.run ~config Arch.pentium3 sc in
         assert (r.H.verified = Ok ());
         r.H.tps))
    Scenario.adversarial

(* MRT replay and flap damping (scenarios 13-14), wall-clock cost of
   the full dump-synthesize + parse + replay cycle. *)
let mrt_tests =
  [ Test.make ~name:"mrt/scenario13-replay"
      (Staged.stage @@ fun () ->
       let config = { bench_config with H.replay_events = 40 } in
       let r = H.run ~config Arch.pentium3 (Scenario.of_id_exn 13) in
       assert (r.H.verified = Ok ());
       r.H.tps);
    Test.make ~name:"mrt/scenario14-damping"
      (Staged.stage @@ fun () ->
       let config = { bench_config with H.fault_rounds = 2 } in
       let r = H.run ~config Arch.pentium3 (Scenario.of_id_exn 14) in
       assert (r.H.verified = Ok ());
       r.H.tps) ]

(* Subscriber-edge churn (scenario 16): wall-clock cost of the full
   inject + churn + failover cycle on the simulated clock. *)
let churn_tests =
  [ Test.make ~name:"churn/scenario16-1k"
      (Staged.stage @@ fun () ->
       let sub_cfg =
         { Bgp_speaker.Subscriber.subscribers = 1_000; batch = 200;
           batch_interval = 0.02; churn_rate = 200.0; churn_duration = 0.5;
           seed = bench_config.H.seed }
       in
       let config = { bench_config with H.churn = Some sub_cfg } in
       let r = H.run ~config Arch.pentium3 (Scenario.of_id_exn 16) in
       assert (r.H.verified = Ok ());
       r.H.tps) ]

(* Multi-router topology: scenario 11 at growing graph sizes plus one
   scenario-12 link failure.  These measure the wall-clock cost of
   simulating the whole graph; the convergence numbers themselves are
   virtual time, reported by `bgpbench topo`. *)
let topo_tests =
  let module Topology = Bgp_topo.Topology in
  let module TB = Bgp_topo.Topo_bench in
  List.map
    (fun n ->
      Test.make ~name:(Printf.sprintf "topo/convergence-ba%d" n)
        (Staged.stage @@ fun () ->
         let r = TB.run_convergence ~kind:Topology.Scale_free ~n () in
         assert (r.TB.cr_verified = Ok ());
         r.TB.cr_announce_s))
    [ 4; 8; 16 ]
  @ [ Test.make ~name:"topo/link-failure-ba16"
        (Staged.stage @@ fun () ->
         let r = TB.run_link_failure ~kind:Topology.Scale_free ~n:16 () in
         assert (r.TB.lf_verified = Ok ());
         r.TB.lf_heal_s) ]

(* Structured tracing: the recorder must stay cheap enough to leave on
   (ring-slot writes, no I/O), and a traced harness run must not change
   the measured result.  The smoke variant asserts both. *)
let trace_tests =
  let module Tracer = Bgp_trace.Tracer in
  [ Test.make ~name:"trace/record-100k-spans"
      (Staged.stage @@ fun () ->
       let tr = Tracer.create ~capacity:(1 lsl 16) () in
       let tk = Tracer.track tr ~thread:"cpu" () in
       for i = 0 to 99_999 do
         let t0 = float_of_int i *. 1e-6 in
         Tracer.span tr tk ~name:"decision" ~ts:t0 ~dur:1e-6
           ~args:[ ("units", Tracer.Int 1) ] ()
       done;
       Tracer.recorded tr);
    Test.make ~name:"trace/chrome-export-50k-events"
      (Staged.stage @@ fun () ->
       let tr = Tracer.create ~capacity:(1 lsl 16) () in
       let tk = Tracer.track tr ~thread:"cpu" () in
       for i = 0 to 49_999 do
         Tracer.instant tr tk ~name:"run" ~ts:(float_of_int i *. 1e-6) ()
       done;
       String.length (Bgp_trace.Chrome.to_string tr)) ]

let print_trace_smoke () =
  let module Tracer = Bgp_trace.Tracer in
  let sc = Scenario.of_id_exn 1 in
  let base = H.run ~config:bench_config Arch.pentium3 sc in
  let tr = Tracer.create () in
  let traced =
    H.run ~config:{ bench_config with H.tracer = Some tr } Arch.pentium3 sc
  in
  assert (base.H.tps = traced.H.tps);
  let names =
    List.filter_map
      (fun e ->
        match e.Tracer.ev_phase with
        | Tracer.Span -> Some e.Tracer.ev_name
        | _ -> None)
      (Tracer.events tr)
  in
  List.iter
    (fun st -> assert (List.mem st names))
    [ "wire-decode"; "import-policy"; "adj-rib-in"; "decision";
      "fib-install"; "export-policy"; "mrai-pacing" ];
  Format.printf
    "Trace smoke: %d events recorded (%d dropped), tps unchanged at %.1f@.@."
    (Tracer.recorded tr) (Tracer.dropped tr) traced.H.tps

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let all_tests =
  [ table1_test; table2_test ]
  @ table3_tests
  @ [ fig3_test; fig4_test ]
  @ fig5_tests
  @ [ fig6_test ]
  @ wire_tests @ fib_tests
  @ [ rib_bench; decision_test ]
  @ policy_tests @ packing_tests @ decision_scaling_tests @ rib_agg_tests
  @ workload_shape_tests @ mrai_tests @ fault_tests @ mrt_tests @ churn_tests
  @ topo_tests
  @ arena_tests
  @ trace_tests
  @ [ framer_test; forward_wire_test; gen_test ]
  @ topo_gen_tests
  @ [ sim_test ]

let () =
  print_stage_breakdowns ();
  print_fault_smoke ();
  print_mrt_smoke ();
  print_damping_smoke ();
  print_churn_smoke ();
  print_alloc_smoke ();
  print_live_smoke ();
  print_trace_smoke ();
  (* --smoke: the breakdown runs above are a complete (if small)
     harness exercise; stop before the wall-clock measurements. *)
  if Array.mem "--smoke" Sys.argv then begin
    print_endline "smoke OK";
    exit 0
  end;
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let instances = [ Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Printf.printf "%-42s %14s %8s\n" "benchmark" "time/run" "r^2";
  Printf.printf "%s\n" (String.make 66 '-');
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let m = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Instance.monotonic_clock m in
          let ns =
            match Analyze.OLS.estimates est with
            | Some (e :: _) -> e
            | _ -> nan
          in
          let r2 = Option.value ~default:nan (Analyze.OLS.r_square est) in
          let time_str =
            if Float.is_nan ns then "n/a"
            else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
          in
          Printf.printf "%-42s %14s %8.3f\n%!" (Test.Elt.name elt) time_str r2)
        (Test.elements test))
    all_tests;
  Printf.printf "\n%d benchmarks completed.\n" (List.length all_tests)
