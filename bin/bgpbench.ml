(* bgpbench: regenerate every table and figure of "Benchmarking BGP
   Routers" (IISWC 2007) from the bgpmark simulation. *)

open Cmdliner
module Arch = Bgp_router.Arch
module H = Bgpmark.Harness
module Scenario = Bgpmark.Scenario

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)
(* ------------------------------------------------------------------ *)

let size_t =
  let doc = "Routing-table size (prefixes injected by Speaker 1)." in
  Arg.(value & opt int 10_000 & info [ "n"; "size" ] ~docv:"PREFIXES" ~doc)

let packing_t =
  let doc = "Prefixes per large UPDATE (the paper uses 500)." in
  Arg.(value & opt int 500 & info [ "packing" ] ~docv:"N" ~doc)

let seed_t =
  let doc = "Workload generation seed (runs are deterministic per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let config_of ?(varied = false) size packing seed =
  { H.default_config with
    H.table_size = size; large_packing = packing; seed; varied_paths = varied }

let live_t =
  let doc =
    "Run over real loopback TCP sockets on a select loop (wall-clock \
     time) instead of the simulated network.  Timings will differ from \
     sim mode; routing outcomes (Loc-RIB fingerprints, verification \
     verdicts) must not — see `bgpbench crosscheck'."
  in
  Arg.(value & flag & info [ "live" ] ~doc)

let live_timeout_t =
  let doc = "Wall-clock guard per live run, in seconds." in
  Arg.(value & opt float 120.0 & info [ "live-timeout" ] ~docv:"SECONDS" ~doc)

let apply_live live live_timeout config =
  if live then { config with H.mode = H.Live; timeout = live_timeout }
  else config

let arch_conv =
  let parse s =
    match Arch.by_name s with
    | Some a -> Ok a
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown system %S (expected %s)" s
              (String.concat ", " (List.map (fun a -> a.Arch.name) Arch.all))))
  in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf a.Arch.name)

let archs_t =
  let doc = "Systems to benchmark (repeatable); default: all four." in
  Arg.(value & opt_all arch_conv [] & info [ "a"; "arch" ] ~docv:"SYSTEM" ~doc)

let resolve_archs = function [] -> Arch.all | l -> l

let scenario_conv =
  let parse s =
    match Option.bind (int_of_string_opt s) Scenario.of_id with
    | Some sc when Scenario.is_topo sc ->
      Error
        (`Msg
           (Printf.sprintf
              "scenario %d runs on a multi-router graph; use `bgpbench topo'"
              sc.Scenario.id))
    | Some sc -> Ok sc
    | None ->
      Error
        (`Msg
           (Printf.sprintf
              "scenario must be 1-8 (adversarial 9-10, MRT/damping 13-14, \
               churn 16), got %S"
              s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_int ppf s.Scenario.id)

let json_t =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit machine-readable JSON instead of text.")

let print_json j = print_endline (Bgp_stats.Json.to_string_pretty j)

(* Structured tracing (--trace): shared by table3, faults, and topo. *)

let trace_file_t =
  let doc =
    "Record structured trace events and write them to $(docv) as Chrome \
     trace-event JSON (load in Perfetto or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_sample_t =
  let doc =
    "Trace every $(docv)th update batch and scheduler event (1 = trace \
     everything); bounds trace size on large runs."
  in
  Arg.(value & opt int 1 & info [ "trace-sample" ] ~docv:"N" ~doc)

let make_tracer trace_file sample =
  Option.map (fun _ -> Bgp_trace.Tracer.create ~sample ()) trace_file

(* Write the Chrome JSON whenever a file was requested; print the
   trace summary only in text mode so --json output stays parseable. *)
let finish_trace ?(quiet = false) trace_file tracer =
  match (trace_file, tracer) with
  | Some path, Some tr ->
    Bgp_trace.Chrome.write_file tr path;
    if not quiet then begin
      print_newline ();
      print_string (Bgp_trace.Summary.render tr);
      Printf.printf "Chrome trace written to %s\n" path
    end
  | _, _ -> ()

let scenarios_t =
  let doc =
    "Scenarios to run (repeatable); default: the paper's eight (9-10 are \
     the adversarial fault-injection extensions, 13-14 the MRT replay and \
     flap-damping extensions)."
  in
  Arg.(value & opt_all scenario_conv [] & info [ "s"; "scenario" ] ~docv:"1-14" ~doc)

let resolve_scenarios = function [] -> Scenario.all | l -> l

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let scenarios_cmd =
  let run () = print_string (Scenario.table1 ()) in
  Cmd.v (Cmd.info "scenarios" ~doc:"Print Table I (the eight benchmark scenarios)")
    Term.(const run $ const ())

let systems_cmd =
  let run verbose =
    print_endline "Table II: system configurations";
    List.iter (fun a -> Format.printf "  %a@." Arch.pp a) Arch.all;
    if verbose then
      List.iter (fun a -> Format.printf "@.%a@." Arch.pp_block_diagram a) Arch.all
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Also print Fig. 2 block diagrams.")
  in
  Cmd.v (Cmd.info "systems" ~doc:"Print Table II (the four router systems)")
    Term.(const run $ verbose)

let varied_t =
  Arg.(
    value & flag
    & info [ "varied-paths" ]
        ~doc:
          "Use an Internet-shaped workload (2-6 hop AS paths, mixed            origins/MEDs) instead of the paper's uniform paths.")

let table_file_t =
  let doc =
    "Load the phase-1 routing table from $(docv) instead of synthesizing \
     one.  The format is auto-detected: MRT TABLE_DUMP_V2 (RFC 6396 \
     binary) or bgpmark text (`# bgpmark-table v1').  Overrides --size."
  in
  Arg.(
    value
    & opt (some file) None
    & info [ "table"; "mrt" ] ~docv:"FILE" ~doc)

let table3_cmd =
  let run size packing seed varied table_file archs scenarios no_paper prefixes
      no_incremental json trace_file trace_sample live live_timeout =
    match prefixes with
    | _ :: _ ->
      (* Full-table scale mode: instead of the 8x4 grid, sweep the
         attribute arena over the requested table sizes (up to 500k). *)
      let sweep =
        Bgpmark.Arena_sweep.run ~seed ~packing
          ~incremental:(not no_incremental) prefixes
      in
      if json then print_json (Bgpmark.Arena_sweep.to_json sweep)
      else print_string (Bgpmark.Arena_sweep.render sweep)
    | [] ->
      let tracer = make_tracer trace_file trace_sample in
      let config =
        apply_live live live_timeout
          { (config_of ~varied size packing seed) with
            H.tracer; table_file }
      in
      let t =
        Bgpmark.Table3.run ~config
          ~archs:(resolve_archs archs)
          ~scenarios:(resolve_scenarios scenarios) ()
      in
      if json then print_json (Bgpmark.Table3.to_json t)
      else begin
        print_string (Bgpmark.Table3.render ~compare_paper:(not no_paper) t);
        print_endline "\nShape criteria (DESIGN.md section 5):";
        List.iter
          (fun (desc, ok) ->
            Printf.printf "  [%s] %s\n" (if ok then "PASS" else "fail") desc)
          (Bgpmark.Table3.shape_checks t)
      end;
      finish_trace ~quiet:json trace_file tracer
  in
  let no_paper =
    Arg.(value & flag & info [ "no-paper" ] ~doc:"Omit the paper-comparison rows.")
  in
  let prefixes_t =
    let doc =
      "Run the attribute-arena full-table scale sweep at this table size \
       instead of the scenario grid (repeatable, e.g. --prefixes 250000 \
       --prefixes 500000)."
    in
    Arg.(value & opt_all int [] & info [ "prefixes" ] ~docv:"N" ~doc)
  in
  let no_incremental_t =
    Arg.(
      value & flag
      & info [ "no-incremental" ]
          ~doc:
            "With --prefixes: disable the best-vs-challenger decision fast \
             path (full re-selection per update), to A/B its effect on the \
             challenger-phase columns.")
  in
  Cmd.v
    (Cmd.info "table3"
       ~doc:"Reproduce Table III: transactions/s, 8 scenarios x 4 systems")
    Term.(
      const run $ size_t $ packing_t $ seed_t $ varied_t $ table_file_t
      $ archs_t $ scenarios_t $ no_paper $ prefixes_t $ no_incremental_t
      $ json_t $ trace_file_t $ trace_sample_t $ live_t $ live_timeout_t)

let scenario_cmd =
  let run size packing seed archs scenario cross trace =
    let config = config_of size packing seed in
    let config =
      { config with
        H.cross_traffic =
          (if cross > 0.0 then Bgp_netsim.Traffic.make ~mbps:cross ()
           else config.H.cross_traffic);
        trace_interval = (if trace then Some 1.0 else None) }
    in
    List.iter
      (fun arch ->
        let r = H.run ~config arch scenario in
        Format.printf "%a@." H.pp_result r;
        if trace then begin
          let fig =
            Bgpmark.Figures.cpu_run ~config ~cross_mbps:cross arch scenario
          in
          print_string (Bgpmark.Figures.render_cpu fig)
        end)
      (resolve_archs archs)
  in
  let scenario =
    Arg.(required & pos 0 (some scenario_conv) None & info [] ~docv:"SCENARIO")
  in
  let cross =
    Arg.(value & opt float 0.0 & info [ "cross" ] ~docv:"MBPS" ~doc:"Cross-traffic load.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Record and print the CPU-load trace.")
  in
  Cmd.v (Cmd.info "scenario" ~doc:"Run a single benchmark scenario")
    Term.(const run $ size_t $ packing_t $ seed_t $ archs_t $ scenario $ cross $ trace)

let fig_cmd name doc f =
  let run size packing seed tsv =
    let config = config_of size packing seed in
    let figs = f ~config () in
    if tsv then
      List.iter
        (fun fig ->
          Printf.printf "# %s\n" fig.Bgpmark.Figures.title;
          print_string (Bgp_stats.Chart.to_tsv fig.Bgpmark.Figures.rows);
          Option.iter
            (fun s -> print_string (Bgp_stats.Chart.to_tsv [ s ]))
            fig.Bgpmark.Figures.forwarding_rate)
        figs
    else print_string (Bgpmark.Figures.render_all figs)
  in
  let tsv =
    Arg.(value & flag & info [ "tsv" ] ~doc:"Emit tab-separated data instead of charts.")
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ size_t $ packing_t $ seed_t $ tsv)

let fig3_cmd =
  fig_cmd "fig3" "Figure 3: per-process CPU load during scenario 6"
    (fun ~config () -> Bgpmark.Figures.fig3 ~config ())

let fig4_cmd =
  fig_cmd "fig4" "Figure 4: Pentium III CPU load, small vs large packets"
    (fun ~config () -> Bgpmark.Figures.fig4 ~config ())

let fig6_cmd =
  fig_cmd "fig6"
    "Figure 6: scenario 8 on the Pentium III with and without cross-traffic"
    (fun ~config () -> Bgpmark.Figures.fig6 ~config ())

let fig5_cmd =
  let run size packing seed archs scenarios tsv =
    let config = config_of size packing seed in
    List.iter
      (fun sc ->
        let sweep =
          Bgpmark.Sweep.run ~config ~archs:(resolve_archs archs) sc
        in
        if tsv then begin
          Printf.printf "# benchmark %d\n" sc.Scenario.id;
          print_string (Bgp_stats.Chart.to_tsv (Bgpmark.Sweep.tps_series sweep))
        end
        else print_string (Bgpmark.Sweep.render sweep);
        print_newline ())
      (resolve_scenarios scenarios)
  in
  let tsv =
    Arg.(value & flag & info [ "tsv" ] ~doc:"Emit tab-separated data instead of charts.")
  in
  Cmd.v
    (Cmd.info "fig5"
       ~doc:"Figure 5: transactions/s vs cross-traffic, per scenario panel")
    Term.(const run $ size_t $ packing_t $ seed_t $ archs_t $ scenarios_t $ tsv)

let power_cmd =
  let run size packing seed archs scenarios =
    print_endline
      "Control-plane energy efficiency (extension; paper section V.C):";
    List.iter
      (fun scenario ->
        List.iter
          (fun arch ->
            let config =
              { (config_of size packing seed) with H.trace_interval = Some 0.5 }
            in
            let r = H.run ~config arch scenario in
            let report =
              Bgp_router.Power.of_run arch ~scenario_id:scenario.Scenario.id
                ~tps:r.H.tps ~measure_seconds:r.H.measure_seconds
                ~trace:r.H.trace ~transactions:r.H.measured_prefixes
            in
            Format.printf "  %a@." Bgp_router.Power.pp_report report)
          (resolve_archs archs);
        print_newline ())
      (resolve_scenarios scenarios)
  in
  Cmd.v
    (Cmd.info "power"
       ~doc:
         "Transactions per joule of control-plane energy (the power \
          tradeoff the paper defers)")
    Term.(const run $ size_t $ packing_t $ seed_t $ archs_t $ scenarios_t)

let peers_cmd =
  let run size seed archs counts json =
    let counts = match counts with [] -> [ 2; 4; 8; 16 ] | l -> l in
    let sweeps =
      List.map
        (fun arch -> Bgpmark.Peers_sweep.run ~table_size:size ~seed ~counts arch)
        (resolve_archs archs)
    in
    if json then
      print_json (Bgp_stats.Json.List (List.map Bgpmark.Peers_sweep.to_json sweeps))
    else
      List.iter
        (fun sweep ->
          print_string (Bgpmark.Peers_sweep.render sweep);
          print_newline ())
        sweeps
  in
  let counts =
    Arg.(
      value & opt_all int []
      & info [ "peers" ] ~docv:"N" ~doc:"Peer counts to sweep (repeatable).")
  in
  Cmd.v
    (Cmd.info "peers"
       ~doc:
         "Extension: transactions/s vs peering density (the paper uses           exactly two speakers)")
    Term.(const run $ size_t $ seed_t $ archs_t $ counts $ json_t)

let faults_cmd =
  let run size packing seed rounds damping archs scenarios json trace_file
      trace_sample live live_timeout =
    let scenarios =
      match scenarios with [] -> Scenario.adversarial | l -> l
    in
    let tracer = make_tracer trace_file trace_sample in
    let failed = ref false in
    let results =
      List.concat_map
        (fun scenario ->
          List.map
            (fun arch ->
              let config =
                apply_live live live_timeout
                  { (config_of size packing seed) with
                    H.fault_rounds = rounds; tracer;
                    damping =
                      (if damping then Some Bgp_rib.Damping.test_config
                       else None) }
              in
              let r = H.run ~config arch scenario in
              if Result.is_error r.H.verified then failed := true;
              r)
            (resolve_archs archs))
        scenarios
    in
    if json then
      print_json (Bgp_stats.Json.List (List.map H.result_json results))
    else
      List.iter
        (fun r ->
          Format.printf "%a@." H.pp_result r;
          Option.iter
            (fun f ->
              let pp_codes ppf codes =
                Format.pp_print_list
                  ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
                  (fun ppf (c, s) -> Format.fprintf ppf "%d/%d" c s)
                  ppf codes
              in
              if f.H.fr_expected <> [] then
                Format.printf
                  "  expected NOTIFICATIONs (code/subcode): %a@.  answered \
                   NOTIFICATIONs (code/subcode): %a@."
                  pp_codes f.H.fr_expected pp_codes f.H.fr_answered)
            r.H.faults)
        results;
    finish_trace ~quiet:json trace_file tracer;
    if !failed then exit 1
  in
  let rounds =
    Arg.(
      value & opt int 5
      & info [ "rounds" ] ~docv:"N" ~doc:"Fault injections per run.")
  in
  let damping =
    Arg.(
      value & flag
      & info [ "damping" ]
          ~doc:
            "Enable RFC 2439 route flap damping (accelerated test timers) on \
             the router under test; the fault oracle then additionally \
             verifies that flapping routes were suppressed and later \
             reused.  Scenario 14 enables damping implicitly.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run the adversarial fault-injection scenarios (9: corrupted-update \
          storm, 10: session flaps, 14: flap storm with RFC 2439 damping); \
          exits non-zero if any verification fails")
    Term.(
      const run $ size_t $ packing_t $ seed_t $ rounds $ damping $ archs_t
      $ scenarios_t $ json_t $ trace_file_t $ trace_sample_t $ live_t
      $ live_timeout_t)

let mrt_cmd =
  let run size packing seed file events speedup _replay archs json crosscheck
      live live_timeout =
    let scenario = Scenario.of_id_exn 13 in
    let config =
      { (config_of size packing seed) with
        H.table_file = file;
        replay_events = Option.value events ~default:(-1);
        replay_speedup = speedup }
    in
    if crosscheck then begin
      let checks =
        List.map
          (fun arch -> H.cross_validate ~config ~live_timeout arch scenario)
          (resolve_archs archs)
      in
      if json then
        print_json (Bgp_stats.Json.List (List.map H.crosscheck_json checks))
      else List.iter (fun xc -> Format.printf "%a@." H.pp_crosscheck xc) checks;
      if not (List.for_all H.crosscheck_ok checks) then exit 1
    end
    else begin
      let config = apply_live live live_timeout config in
      let failed = ref false in
      let results =
        List.map
          (fun arch ->
            let r = H.run ~config arch scenario in
            if Result.is_error r.H.verified then failed := true;
            r)
          (resolve_archs archs)
      in
      if json then
        print_json (Bgp_stats.Json.List (List.map H.result_json results))
      else List.iter (fun r -> Format.printf "%a@." H.pp_result r) results;
      if !failed then exit 1
    end
  in
  let file_t =
    let doc =
      "Replay this MRT dump (RFC 6396: TABLE_DUMP_V2 RIB entries load the \
       table, BGP4MP updates drive the replay).  Without it a dump is \
       synthesized from --seed/--size/--events, so no external trace is \
       needed."
    in
    Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)
  in
  let events_t =
    let doc =
      "Number of update events to synthesize for the replay phase (0 = \
       table load only; default: about size/5).  Ignored with --file."
    in
    Arg.(value & opt (some int) None & info [ "events" ] ~docv:"N" ~doc)
  in
  let speedup_t =
    let doc =
      "Replay the trace at recorded timing accelerated by this factor \
       (1 = real time).  Default: unpaced, i.e. maximum-throughput replay."
    in
    Arg.(value & opt (some float) None & info [ "speedup" ] ~docv:"X" ~doc)
  in
  let replay_t =
    let doc =
      "Replay the update trace after the table load.  This is the default \
       mode; the flag exists for explicit scripting (use --events 0 for a \
       table-load-only run)."
    in
    Arg.(value & flag & info [ "replay" ] ~doc)
  in
  let crosscheck_t =
    let doc =
      "Run the replay in both sim and live (loopback TCP) mode and assert \
       identical Loc-RIB fingerprints and verdicts; exits non-zero on \
       divergence."
    in
    Arg.(value & flag & info [ "crosscheck" ] ~doc)
  in
  Cmd.v
    (Cmd.info "mrt"
       ~doc:
         "Scenario 13: load an MRT RIB dump and replay its update trace \
          (synthesized by default; bring your own with --file); exits \
          non-zero if verification fails")
    Term.(
      const run $ size_t $ packing_t $ seed_t $ file_t $ events_t $ speedup_t
      $ replay_t $ archs_t $ json_t $ crosscheck_t $ live_t $ live_timeout_t)

let churn_cmd =
  let module Subscriber = Bgp_speaker.Subscriber in
  let run subscribers batch batch_interval churn_rate churn_duration seed archs
      json metrics crosscheck live live_timeout =
    let scenario = Scenario.of_id_exn 16 in
    let sub_cfg =
      { Subscriber.subscribers; batch; batch_interval; churn_rate;
        churn_duration; seed }
    in
    let config =
      { H.default_config with
        H.table_size = subscribers; seed; churn = Some sub_cfg }
    in
    if crosscheck then begin
      let checks =
        List.map
          (fun arch -> H.cross_validate ~config ~live_timeout arch scenario)
          (resolve_archs archs)
      in
      if json then
        print_json (Bgp_stats.Json.List (List.map H.crosscheck_json checks))
      else List.iter (fun xc -> Format.printf "%a@." H.pp_crosscheck xc) checks;
      if not (List.for_all H.crosscheck_ok checks) then exit 1
    end
    else begin
      let config = apply_live live live_timeout config in
      let failed = ref false in
      let results =
        List.map
          (fun arch ->
            let r = H.run ~config arch scenario in
            if Result.is_error r.H.verified then failed := true;
            r)
          (resolve_archs archs)
      in
      if json then
        print_json (Bgp_stats.Json.List (List.map H.result_json results))
      else begin
        List.iter (fun r -> Format.printf "%a@." H.pp_result r) results;
        if metrics then
          List.iter
            (fun r ->
              Option.iter
                (fun c ->
                  Format.printf "%s metrics registry:@.%s@." r.H.arch_name
                    (Bgp_stats.Json.to_string_pretty c.H.cr_metrics))
                r.H.churn)
            results
      end;
      if !failed then exit 1
    end
  in
  let subscribers_t =
    let doc =
      "Subscriber sessions, one /32 route each, drawn from the RFC 6598 \
       CGNAT pool 100.64.0.0/10 (max 4194304)."
    in
    Arg.(
      value & opt int 10_000
      & info [ "subscribers" ] ~docv:"N" ~doc)
  in
  let batch_t =
    let doc = "Prefixes per injection batch (and per-UPDATE packing)." in
    Arg.(value & opt int 500 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let batch_interval_t =
    let doc = "Seconds between injection batches (rate-limited injection)." in
    Arg.(
      value & opt float 0.02 & info [ "batch-interval" ] ~docv:"SECONDS" ~doc)
  in
  let churn_rate_t =
    let doc = "Session up/down/resync events per second during churn." in
    Arg.(value & opt float 500.0 & info [ "churn-rate" ] ~docv:"EV_S" ~doc)
  in
  let churn_duration_t =
    let doc = "Seconds of steady-state churn before the failover." in
    Arg.(
      value & opt float 2.0 & info [ "churn-duration" ] ~docv:"SECONDS" ~doc)
  in
  let metrics_t =
    let doc =
      "Also dump the router's full metrics registry (counters, histograms, \
       gauges) after the run — the stand-in for Prometheus scrape targets.  \
       With --json the dump is always embedded under churn.metrics."
    in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let crosscheck_t =
    let doc =
      "Run the churn workload in both sim and live (loopback TCP) mode and \
       assert identical post-churn Loc-RIB fingerprints and verdicts; exits \
       non-zero on divergence."
    in
    Arg.(value & flag & info [ "crosscheck" ] ~doc)
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Scenario 16: subscriber-edge churn at BNG scale — rate-limited /32 \
          injection against an exact prefix limit with MRAI on, steady-state \
          session churn, then a failover whose withdraw sweep is timed \
          end-to-end; exits non-zero if verification fails")
    Term.(
      const run $ subscribers_t $ batch_t $ batch_interval_t $ churn_rate_t
      $ churn_duration_t $ seed_t $ archs_t $ json_t $ metrics_t $ crosscheck_t
      $ live_t $ live_timeout_t)

let topo_cmd =
  let module Topology = Bgp_topo.Topology in
  let module Net = Bgp_topo.Net in
  let module TB = Bgp_topo.Topo_bench in
  let kind_conv =
    let parse s =
      match Topology.kind_of_string s with
      | Some k -> Ok k
      | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown topology %S (expected %s)" s
                (String.concat ", "
                   (List.map Topology.kind_to_string Topology.all_kinds))))
    in
    Arg.conv
      (parse, fun ppf k -> Format.pp_print_string ppf (Topology.kind_to_string k))
  in
  let run kind nodes seed gao cut domains json smoke trace_file trace_sample =
    if domains <> [] then begin
      (* Scenario 15: partitioned scale runs.  Each requested node count
         runs once per requested domain count; converged fingerprints
         must agree across domain counts for the same graph. *)
      let domain_list = List.sort_uniq compare domains in
      (match List.find_opt (fun d -> d < 1) domain_list with
      | Some d ->
        Printf.eprintf "topo: --domains %d: need at least 1\n" d;
        exit 2
      | None -> ());
      let sizes =
        match nodes with [] -> [ 1000 ] | l -> List.sort_uniq compare l
      in
      let mode = if gao then Some Net.Gao_rexford else None in
      let runs =
        List.concat_map
          (fun n ->
            List.map
              (fun d -> TB.run_scale ?mode ~seed ~domains:d ~kind ~n ())
              domain_list)
          sizes
      in
      if json then print_json (TB.scale_runs_json runs)
      else print_string (TB.render_scale_runs runs);
      let mismatch =
        List.exists
          (fun n ->
            let fps =
              List.filter_map
                (fun r ->
                  if r.TB.sc_n = n then Some r.TB.sc_fingerprint else None)
                runs
            in
            List.exists (fun f -> f <> List.hd fps) fps)
          sizes
      in
      if mismatch then begin
        prerr_endline
          "topo scale: converged fingerprints differ across domain counts";
        exit 1
      end;
      if List.exists (fun r -> Result.is_error r.TB.sc_verified) runs then
        exit 1
    end
    else if smoke then begin
      (* CI gate: a small clique must establish, converge, and verify. *)
      let r = TB.run_convergence ~seed ~kind:Topology.Clique ~n:4 () in
      match r.TB.cr_verified with
      | Ok () ->
        Printf.printf
          "topo smoke: 4-clique converged (announce %.6fs, withdraw %.6fs)\n"
          r.TB.cr_announce_s r.TB.cr_withdraw_s
      | Error e ->
        prerr_endline ("topo smoke FAILED: " ^ e);
        exit 1
    end
    else begin
      let sizes = match nodes with [] -> [ 4; 8; 16 ] | l -> List.sort_uniq compare l in
      let mode = if gao then Net.Gao_rexford else Net.Transit in
      let tracer = make_tracer trace_file trace_sample in
      let runs = TB.sweep ~mode ~seed ?tracer ~kind ~sizes () in
      let lf =
        TB.run_link_failure ~mode ~seed ?cut ?tracer ~kind
          ~n:(List.fold_left max 2 sizes) ()
      in
      if json then
        print_json
          (Bgp_stats.Json.Obj
             [ ("convergence", TB.convergence_runs_json runs);
               ("link_failure", TB.link_failure_json lf) ])
      else begin
        print_string (TB.render_convergence_runs runs);
        print_newline ();
        print_string (TB.render_link_failure lf)
      end;
      finish_trace ~quiet:json trace_file tracer;
      let bad r = Result.is_error r in
      if
        bad lf.TB.lf_verified
        || List.exists (fun r -> bad r.TB.cr_verified) runs
      then exit 1
    end
  in
  let kind =
    Arg.(
      value
      & opt kind_conv Topology.Scale_free
      & info [ "k"; "kind" ] ~docv:"TOPOLOGY"
          ~doc:
            "Graph family: line, ring, star, grid, clique, or scale-free \
             (seeded Barabasi-Albert).")
  in
  let nodes =
    Arg.(
      value & opt_all int []
      & info [ "nodes" ] ~docv:"N"
          ~doc:"Node counts for the convergence sweep (repeatable); default 4 8 16.")
  in
  let gao =
    Arg.(
      value & flag
      & info [ "gao-rexford" ]
          ~doc:
            "Use Gao-Rexford customer/peer/provider policies per edge \
             instead of full-mesh transit.")
  in
  let cut =
    Arg.(
      value
      & opt (some (pair ~sep:',' int int)) None
      & info [ "cut" ] ~docv:"U,V"
          ~doc:
            "Edge to fail in the link-failure run (default: the first cut \
             the graph survives).")
  in
  let domains =
    Arg.(
      value & opt_all int []
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Run scenario 15 (partitioned scale) instead of 11/12: \
             single-origin convergence with the network split over $(docv) \
             parallel simulation domains.  Repeatable; each node count runs \
             once per domain count and the converged fingerprints must \
             match.  Default node count 1000; policies default to \
             Gao-Rexford (accept-all transit path-hunts combinatorially at \
             scale).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"CI smoke: converge a small clique and exit non-zero on failure.")
  in
  Cmd.v
    (Cmd.info "topo"
       ~doc:
         "Multi-router topology benchmarks (scenario 11: convergence sweep; \
          scenario 12: link failure and path hunting; scenario 15: \
          partitioned scale with --domains); exits non-zero if verification \
          fails")
    Term.(
      const run $ kind $ nodes $ seed_t $ gao $ cut $ domains $ json_t $ smoke
      $ trace_file_t $ trace_sample_t)

let crosscheck_cmd =
  let run size packing seed archs scenarios live_timeout json =
    let scenarios =
      match scenarios with
      | [] -> [ Scenario.of_id_exn 2; Scenario.of_id_exn 10 ]
      | l -> l
    in
    let config = config_of size packing seed in
    let checks =
      List.concat_map
        (fun scenario ->
          List.map
            (fun arch -> H.cross_validate ~config ~live_timeout arch scenario)
            (resolve_archs archs))
        scenarios
    in
    if json then
      print_json (Bgp_stats.Json.List (List.map H.crosscheck_json checks))
    else
      List.iter (fun xc -> Format.printf "%a@." H.pp_crosscheck xc) checks;
    if not (List.for_all H.crosscheck_ok checks) then exit 1
  in
  Cmd.v
    (Cmd.info "crosscheck"
       ~doc:
         "Run the same scenario in sim and live (loopback TCP) mode and \
          assert identical Loc-RIB fingerprints and verification verdicts; \
          exits non-zero on divergence")
    Term.(
      const run $ size_t $ packing_t $ seed_t $ archs_t $ scenarios_t
      $ live_timeout_t $ json_t)

let all_cmd =
  let run size packing seed =
    let config = config_of size packing seed in
    print_string (Scenario.table1 ());
    print_endline "";
    List.iter (fun a -> Format.printf "  %a@." Arch.pp a) Arch.all;
    print_endline "";
    let t = Bgpmark.Table3.run ~config () in
    print_string (Bgpmark.Table3.render t);
    print_endline "\nShape criteria:";
    List.iter
      (fun (desc, ok) ->
        Printf.printf "  [%s] %s\n" (if ok then "PASS" else "fail") desc)
      (Bgpmark.Table3.shape_checks t);
    print_endline "\n=== Figure 3 ===";
    print_string (Bgpmark.Figures.render_all (Bgpmark.Figures.fig3 ~config ()));
    print_endline "\n=== Figure 4 ===";
    print_string (Bgpmark.Figures.render_all (Bgpmark.Figures.fig4 ~config ()));
    print_endline "\n=== Figure 5 ===";
    List.iter
      (fun sc ->
        print_string (Bgpmark.Sweep.render (Bgpmark.Sweep.run ~config sc));
        print_newline ())
      Scenario.all;
    print_endline "\n=== Figure 6 ===";
    print_string (Bgpmark.Figures.render_all (Bgpmark.Figures.fig6 ~config ()))
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every table and figure (the EXPERIMENTS.md run)")
    Term.(const run $ size_t $ packing_t $ seed_t)

let main_cmd =
  let doc = "Benchmarking BGP routers: IISWC 2007 reproduction" in
  let info = Cmd.info "bgpbench" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ scenarios_cmd; systems_cmd; table3_cmd; scenario_cmd; fig3_cmd; fig4_cmd;
      fig5_cmd; fig6_cmd; power_cmd; peers_cmd; faults_cmd; mrt_cmd;
      churn_cmd; crosscheck_cmd; topo_cmd; all_cmd ]

let () =
  try exit (Cmd.eval ~catch:false main_cmd)
  with Failure msg ->
    Printf.eprintf "bgpbench: %s\n" msg;
    exit 1
