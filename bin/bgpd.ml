(* bgpd: a minimal real BGP daemon built from the bgpmark protocol
   engine, for loopback experiments.

   Example (three terminals):
     bgpd --asn 65101 --router-id 10.0.0.1 --listen 1790 \
          --announce 198.51.100.0/24
     bgpd --asn 65102 --router-id 10.0.0.2 --connect 1790 --listen 1791 \
          --aggregate 198.51.0.0/16,as-set,summary-only
     bgpd --asn 65103 --router-id 10.0.0.3 --connect 1791

   Each daemon prints session events and, every few seconds, its
   Loc-RIB. *)

open Cmdliner
module Daemon = Bgp_tcp.Daemon
module Loop = Bgp_tcp.Event_loop

let asn_t =
  let doc = "Local autonomous system number." in
  Arg.(required & opt (some int) None & info [ "asn" ] ~docv:"ASN" ~doc)

let router_id_t =
  let doc = "BGP identifier (dotted quad)." in
  Arg.(required & opt (some string) None & info [ "router-id" ] ~docv:"IP" ~doc)

let listen_t =
  let doc = "Listen for one neighbor on 127.0.0.1:$(docv) (repeatable)." in
  Arg.(value & opt_all int [] & info [ "listen" ] ~docv:"PORT" ~doc)

let connect_t =
  let doc = "Actively peer with 127.0.0.1:$(docv) (repeatable)." in
  Arg.(value & opt_all int [] & info [ "connect" ] ~docv:"PORT" ~doc)

let listen_client_t =
  let doc =
    "Like --listen, but treat the neighbor as a route-reflection client      (RFC 4456; for IBGP neighbors)."
  in
  Arg.(value & opt_all int [] & info [ "listen-client" ] ~docv:"PORT" ~doc)

let connect_client_t =
  let doc = "Like --connect, but treat the neighbor as a reflection client." in
  Arg.(value & opt_all int [] & info [ "connect-client" ] ~docv:"PORT" ~doc)

let announce_t =
  let doc = "Originate $(docv) locally (repeatable)." in
  Arg.(value & opt_all string [] & info [ "announce" ] ~docv:"PREFIX" ~doc)

let announce_file_t =
  let doc =
    "Originate every route from a table file: bgpmark text (see               Bgp_speaker.Table_io for the format) or an MRT TABLE_DUMP_V2 dump,       auto-detected."
  in
  Arg.(value & opt (some string) None & info [ "announce-file" ] ~docv:"FILE" ~doc)

let aggregate_t =
  let doc =
    "Configure an aggregate: PREFIX[,as-set][,summary-only] (repeatable)."
  in
  Arg.(value & opt_all string [] & info [ "aggregate" ] ~docv:"SPEC" ~doc)

let interval_t =
  let doc = "Seconds between Loc-RIB dumps (0 disables)." in
  Arg.(value & opt float 5.0 & info [ "status-interval" ] ~docv:"SECONDS" ~doc)

let parse_aggregate spec =
  match String.split_on_char ',' spec with
  | prefix :: flags ->
    let agg_prefix = Bgp_addr.Prefix.of_string_exn prefix in
    List.iter
      (fun f ->
        if f <> "as-set" && f <> "summary-only" then
          invalid_arg (Printf.sprintf "unknown aggregate flag %S" f))
      flags;
    { Bgp_rib.Rib_manager.agg_prefix;
      agg_as_set = List.mem "as-set" flags;
      agg_summary_only = List.mem "summary-only" flags }
  | [] -> invalid_arg "empty aggregate spec"

let dump_rib daemon =
  let routes = Daemon.routes daemon in
  Printf.printf "--- loc-rib (%d routes, %d peers up) ---\n"
    (List.length routes)
    (Daemon.established_peers daemon);
  List.iter
    (fun r -> Format.printf "  %a@." Bgp_route.Route.pp r)
    (List.sort
       (fun a b ->
         Bgp_addr.Prefix.compare (Bgp_route.Route.prefix a)
           (Bgp_route.Route.prefix b))
       routes);
  flush stdout

let run asn router_id listens connects client_listens client_connects announces
    announce_file aggregates interval =
  let loop = Loop.create () in
  let daemon =
    Daemon.create
      ~aggregates:(List.map parse_aggregate aggregates)
      ~log:(fun msg ->
        Printf.printf "[bgpd] %s\n%!" msg)
      loop
      ~asn:(Bgp_route.Asn.of_int asn)
      ~router_id:(Bgp_addr.Ipv4.of_string_exn router_id)
      ()
  in
  List.iter (fun port -> Daemon.listen daemon ~port) listens;
  List.iter (fun port -> Daemon.connect daemon ~port) connects;
  List.iter (fun port -> Daemon.listen ~rr_client:true daemon ~port) client_listens;
  List.iter (fun port -> Daemon.connect ~rr_client:true daemon ~port) client_connects;
  List.iter
    (fun p -> Daemon.originate daemon (Bgp_addr.Prefix.of_string_exn p))
    announces;
  Option.iter
    (fun file ->
      match Bgp_speaker.Table_io.load_auto file with
      | Error msg ->
        (* [load_auto] errors already lead with the file name. *)
        prerr_endline ("bgpd: cannot load table: " ^ msg);
        exit 1
      | Ok entries ->
        let next_hop = Bgp_addr.Ipv4.of_string_exn router_id in
        List.iter
          (fun e ->
            Daemon.originate_route daemon e.Bgp_speaker.Table_io.e_prefix
              (Bgp_speaker.Table_io.to_attrs ~next_hop e))
          entries;
        Printf.printf "[bgpd] originated %d routes from %s\n%!"
          (List.length entries) file)
    announce_file;
  if interval > 0.0 then begin
    let rec status () =
      dump_rib daemon;
      let (_ : unit -> unit) = Loop.after loop interval status in
      ()
    in
    let (_ : unit -> unit) = Loop.after loop interval status in
    ()
  end;
  Printf.printf "[bgpd] AS%d %s up (listen: %s; connect: %s)\n%!" asn router_id
    (String.concat "," (List.map string_of_int listens))
    (String.concat "," (List.map string_of_int connects));
  (* Run forever (ctrl-C to quit). *)
  ignore (Loop.run loop ~until:(fun () -> false) ~timeout:infinity)

let cmd =
  let doc = "a tiny real BGP daemon built on the bgpmark protocol engine" in
  Cmd.v
    (Cmd.info "bgpd" ~version:"1.0.0" ~doc)
    Term.(
      const run $ asn_t $ router_id_t $ listen_t $ connect_t $ listen_client_t
      $ connect_client_t $ announce_t $ announce_file_t $ aggregate_t
      $ interval_t)

let () = exit (Cmd.eval cmd)
