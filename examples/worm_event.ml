(* Worm event: can the router keep up with a BGP storm?

   Paper §II: routers normally see on the order of 100 BGP messages per
   second, but "in case of network-wide events (e.g., worm attacks) the
   number of BGP messages can increase by 2-3 orders of magnitude", and
   a router that cannot keep up stops sending keepalives and makes
   things worse.

   This example offers each architecture a steady update stream at
   increasing rates and reports whether the control plane keeps up —
   and, when it does not, how far the pipeline backlog grows in 30
   seconds and whether that backlog exceeds the 90 s hold time.

   Run with:  dune exec examples/worm_event.exe *)

module Engine = Bgp_sim.Engine
module Channel = Bgp_netsim.Channel
module Arch = Bgp_router.Arch
module Router = Bgp_router.Router
module Speaker = Bgp_speaker.Speaker
module Workload = Bgp_speaker.Workload

let ip = Bgp_addr.Ipv4.of_string_exn
let asn = Bgp_route.Asn.of_int

let duration = 30.0 (* seconds of storm *)

(* Offer [rate] single-prefix updates per second for [duration]; each
   flips a prefix between two AS paths, so every update is real work. *)
let run_storm arch ~rate =
  let engine = Engine.create () in
  let clock = Engine.clock engine in
  let router =
    Router.create clock arch ~local_asn:(asn 65000) ~router_id:(ip "10.255.0.1")
  in
  let ch = Channel.create engine () in
  let peer =
    Bgp_route.Peer.make ~id:0 ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
      ~addr:(ip "192.0.2.1")
  in
  Router.attach_peer router ~peer ~link:(Channel.endpoint ch Channel.B);
  let speaker =
    Speaker.create clock ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
      ~link:(Channel.endpoint ch Channel.A)
  in
  Speaker.start speaker;
  Engine.run ~until:1.0 engine;
  assert (Speaker.established speaker);
  let table = Bgp_addr.Prefix_gen.table ~seed:7 ~n:2000 () in
  let attrs_a =
    Workload.attrs ~speaker_asn:(asn 65001) ~next_hop:(ip "192.0.2.1")
      ~path_len:3 ()
  in
  let attrs_b =
    Workload.attrs ~speaker_asn:(asn 65001) ~next_hop:(ip "192.0.2.1")
      ~path_len:4 ()
  in
  Router.reset_counters router;
  let offered = ref 0 in
  let period = 1.0 /. rate in
  let start = Engine.now engine in
  let rec send i () =
    if Engine.now engine -. start < duration then begin
      let prefix = table.(i mod Array.length table) in
      let attrs = if i mod 2 = 0 then attrs_b else attrs_a in
      ignore (Speaker.announce speaker ~packing:1 ~attrs [| prefix |]);
      incr offered;
      ignore (Engine.schedule engine ~delay:period (send (i + 1)))
    end
  in
  send 0 ();
  Engine.run ~until:(start +. duration) engine;
  let done_at_cutoff = (Router.counters router).Router.transactions in
  let backlog = !offered - done_at_cutoff in
  (* How long to drain what piled up? *)
  let drain_start = Engine.now engine in
  let rec drain () =
    if not (Router.idle router) && Engine.now engine -. drain_start < 3600.0
    then begin
      Engine.run ~until:(Engine.now engine +. 1.0) engine;
      drain ()
    end
  in
  drain ();
  let drain_time = Engine.now engine -. drain_start in
  (!offered, done_at_cutoff, backlog, drain_time)

let () =
  Format.printf
    "30-second BGP storms of single-prefix updates (hold time: 90 s)@.@.";
  Format.printf "%-10s %10s %10s %10s %10s %12s  %s@." "system" "rate/s"
    "offered" "processed" "backlog" "drain (s)" "verdict";
  List.iter
    (fun arch ->
      List.iter
        (fun rate ->
          let offered, processed, backlog, drain = run_storm arch ~rate in
          let verdict =
            if backlog <= max 2 (int_of_float (rate /. 10.0)) then "keeps up"
            else if drain > 90.0 then "WOULD DROP SESSION (hold expiry)"
            else "falls behind"
          in
          Format.printf "%-10s %10.0f %10d %10d %10d %12.1f  %s@."
            arch.Arch.name rate offered processed backlog drain verdict)
        [ 100.0; 1000.0; 10000.0 ];
      Format.printf "@.")
    Arch.all;
  Format.printf
    "Paper's conclusion holds: only the dual-core class survives a@.\
     1000/s event, and nothing survives 3 orders of magnitude above@.\
     the normal ~100 msg/s load.@."
