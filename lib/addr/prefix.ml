type t = { addr : Ipv4.t; len : int }

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: length out of range";
  { addr = Ipv4.apply_mask addr len; len }

let addr p = p.addr
let len p = p.len
let default = { addr = Ipv4.zero; len = 0 }

(* Strict decimal length: 1-2 digits, no sign/prefix/underscore (which
   [int_of_string_opt] would otherwise accept, e.g. "0x18", "2_4", "+24"). *)
let length_of_string s =
  let n = String.length s in
  if n < 1 || n > 2 then None
  else
    let digit c = c >= '0' && c <= '9' in
    if not (digit s.[0]) || (n = 2 && not (digit s.[1])) then None
    else
      let v =
        if n = 1 then Char.code s.[0] - Char.code '0'
        else ((Char.code s.[0] - Char.code '0') * 10) + (Char.code s.[1] - Char.code '0')
      in
      Some v

let of_string s =
  match String.index_opt s '/' with
  | None -> Result.map (fun a -> { addr = a; len = 32 }) (Ipv4.of_string s)
  | Some i ->
    let astr = String.sub s 0 i in
    let lstr = String.sub s (i + 1) (String.length s - i - 1) in
    (match Ipv4.of_string astr with
    | Error e -> Error e
    | Ok a ->
      (match length_of_string lstr with
      | None -> Error "invalid prefix length"
      | Some l when l > 32 -> Error "prefix length out of range"
      | Some l ->
        if Ipv4.equal (Ipv4.apply_mask a l) a then Ok { addr = a; len = l }
        else Error "host bits set below mask"))

let of_string_exn s =
  match of_string s with
  | Ok p -> p
  | Error e -> invalid_arg (Printf.sprintf "Prefix.of_string_exn %S: %s" s e)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.addr) p.len
let pp ppf p = Format.pp_print_string ppf (to_string p)

let compare p q =
  let c = Ipv4.compare p.addr q.addr in
  if c <> 0 then c else Int.compare p.len q.len

let equal p q = Ipv4.equal p.addr q.addr && p.len = q.len
let mem a p = Ipv4.equal (Ipv4.apply_mask a p.len) p.addr
let subsumes p q = p.len <= q.len && mem q.addr p
let first p = p.addr

let last p =
  Ipv4.of_int (Ipv4.to_int p.addr lor (Ipv4.to_int Ipv4.broadcast lxor Ipv4.to_int (Ipv4.mask p.len)))

let size p = Float.pow 2.0 (float_of_int (32 - p.len))

let split p =
  if p.len = 32 then None
  else
    let l = p.len + 1 in
    let lo = { addr = p.addr; len = l } in
    let hi = { addr = Ipv4.of_int (Ipv4.to_int p.addr lor (1 lsl (32 - l))); len = l } in
    Some (lo, hi)

let bit p i = Ipv4.bit p.addr i
let hash p = (Ipv4.hash p.addr * 31) + p.len
let wire_octets p = (p.len + 7) / 8
