(* Full-table scale sweep for the attribute arena: feed an
   Internet-shaped table of [n] prefixes through the receiver path
   (wire decode -> intern -> RIB announce -> export) twice — once with
   hash-consing on, once bypassed — and report arena effectiveness and
   allocation per processed UPDATE.  This is the measurement behind the
   250k+-prefix acceptance gate: interning must hit > 90% of the time
   and allocate strictly less per update than the un-interned path. *)

module A = Bgp_route.Attrs
module I = Bgp_route.Attrs.Interned
module Asn = Bgp_route.Asn
module Msg = Bgp_wire.Msg
module Codec = Bgp_wire.Codec
module Peer = Bgp_route.Peer
module Rib_manager = Bgp_rib.Rib_manager

type cell = {
  sw_prefixes : int;
  sw_sharing : bool;
  sw_updates : int;            (* UPDATE messages decoded and applied *)
  sw_interns : int;
  sw_hits : int;
  sw_hit_rate : float;
  sw_live : int;               (* distinct attribute sets in the arena *)
  sw_saved_bytes : int;
  sw_alloc_per_update : float; (* Gc.allocated_bytes per UPDATE *)
  (* Challenger phase: the same table re-announced by a second peer
     with longer AS paths — every route loses to the incumbent, the
     scenario-5/6 shape — measured wall-clock with no cost-model
     pacing, i.e. the software msgs/sec ceiling the live harness can
     at best approach. *)
  sw_chal_alloc_per_update : float;
  sw_chal_tps : float;         (* prefix transactions per second *)
}

type t = { seed : int; packing : int; cells : cell list }

let speaker_asn = Asn.of_int 65001
let router_asn = Asn.of_int 65000
let router_id = Bgp_addr.Ipv4.of_string_exn "192.0.2.254"
let speaker_addr = Bgp_addr.Ipv4.of_string_exn "192.0.2.1"
let sink_addr = Bgp_addr.Ipv4.of_string_exn "192.0.2.2"

(* Pack consecutive entries sharing an attribute set into one UPDATE,
   like a speaker replaying a table dump; the encodings are built
   before measurement so only the receiver path is on the clock. *)
let encode_table ?(to_attrs = Bgp_speaker.Table_io.to_attrs) ~packing entries
    ~next_hop =
  let flush acc attrs prefixes =
    match prefixes with
    | [] -> acc
    | ps -> Codec.encode (Msg.announcement attrs (List.rev ps)) :: acc
  in
  let rec go acc cur_attrs cur_prefixes = function
    | [] -> List.rev (flush acc cur_attrs cur_prefixes)
    | e :: rest ->
      let attrs = to_attrs ~next_hop e in
      if A.equal attrs cur_attrs && List.length cur_prefixes < packing then
        go acc cur_attrs (e.Bgp_speaker.Table_io.e_prefix :: cur_prefixes) rest
      else
        go
          (flush acc cur_attrs cur_prefixes)
          attrs
          [ e.Bgp_speaker.Table_io.e_prefix ]
          rest
  in
  match entries with
  | [] -> []
  | e :: rest ->
    go [] (to_attrs ~next_hop e) [ e.Bgp_speaker.Table_io.e_prefix ] rest

let run_one ~seed ~packing ~sharing ~incremental n =
  let entries = Bgp_speaker.Table_io.synthesize ~seed ~n ~speaker_asn () in
  let encoded = encode_table ~packing entries ~next_hop:speaker_addr in
  let rib =
    Rib_manager.create ~incremental ~local_asn:router_asn ~router_id ()
  in
  let src =
    Peer.make ~id:1 ~asn:speaker_asn ~router_id:speaker_addr ~addr:speaker_addr
  in
  (* A second EBGP peer keeps the export/rewrite path (which interns
     rewritten attribute sets) in the measurement. *)
  let sink =
    Peer.make ~id:2 ~asn:(Asn.of_int 65002) ~router_id:sink_addr
      ~addr:sink_addr
  in
  Rib_manager.add_peer rib src;
  Rib_manager.add_peer rib sink;
  (* Challengers: the same table from the second peer with one extra
     AS hop, so every route loses to the incumbent on path length —
     the scenario-5/6 workload shape.  Encoded up front, off the
     clock. *)
  let challengers =
    encode_table ~packing entries ~next_hop:sink_addr
      ~to_attrs:(fun ~next_hop e ->
        A.prepend_as (Asn.of_int 65002)
          { (Bgp_speaker.Table_io.to_attrs ~next_hop e) with
            A.next_hop })
  in
  (* Measurement starts from an empty arena so [live] counts this
     table's distinct attribute sets only. *)
  I.clear ();
  I.set_sharing sharing;
  let apply ~from buf =
    match Codec.decode buf with
    | Ok (Msg.Update u) -> (
      match u.Msg.attrs with
      | Some interned ->
        Rib_manager.announce_group rib ~from
          ~each:(fun _ _ -> ())
          u.Msg.nlri interned
      | None -> ())
    | Ok _ | Error _ -> invalid_arg "Arena_sweep: bad self-encoded UPDATE"
  in
  let updates = List.length encoded in
  let before = Gc.allocated_bytes () in
  List.iter (apply ~from:src) encoded;
  let after = Gc.allocated_bytes () in
  (* Arena stats reflect the table-load phase only, as before the
     challenger phase existed. *)
  let s = I.stats () in
  let chal_updates = List.length challengers in
  let chal_t0 = Unix.gettimeofday () in
  let chal_before = Gc.allocated_bytes () in
  List.iter (apply ~from:sink) challengers;
  let chal_after = Gc.allocated_bytes () in
  let chal_dt = Unix.gettimeofday () -. chal_t0 in
  I.set_sharing true;
  { sw_prefixes = n; sw_sharing = sharing; sw_updates = updates;
    sw_interns = s.I.interns; sw_hits = s.I.hits;
    sw_hit_rate = I.hit_rate s; sw_live = s.I.live;
    sw_saved_bytes = s.I.saved_bytes;
    sw_alloc_per_update =
      (if updates = 0 then 0.0
       else (after -. before) /. float_of_int updates);
    sw_chal_alloc_per_update =
      (if chal_updates = 0 then 0.0
       else (chal_after -. chal_before) /. float_of_int chal_updates);
    sw_chal_tps =
      (if chal_dt <= 0.0 then 0.0 else float_of_int n /. chal_dt) }

let run ?(seed = 42) ?(packing = 500) ?(incremental = true) counts =
  let cells =
    List.concat_map
      (fun n ->
        [ run_one ~seed ~packing ~sharing:true ~incremental n;
          run_one ~seed ~packing ~sharing:false ~incremental n ])
      counts
  in
  { seed; packing; cells }

(* The gate the ISSUE acceptance criteria check at 250k prefixes. *)
let cell_ok shared unshared =
  shared.sw_hit_rate > 0.9
  && shared.sw_alloc_per_update < unshared.sw_alloc_per_update

let checks t =
  let rec pairs = function
    | a :: b :: rest when a.sw_prefixes = b.sw_prefixes && a.sw_sharing ->
      (a, b) :: pairs rest
    | _ -> []
  in
  List.map
    (fun (s, u) ->
      ( Printf.sprintf
          "n=%d: hit rate > 90%% and lower allocation than un-interned"
          s.sw_prefixes,
        cell_ok s u ))
    (pairs t.cells)

let render t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "Attribute-arena scale sweep (wire decode -> RIB announce -> export)\n";
  Buffer.add_string b
    (Printf.sprintf "seed %d, packing %d\n\n" t.seed t.packing);
  Buffer.add_string b
    (Printf.sprintf "%10s %8s %9s %10s %9s %8s %14s %16s %14s %12s\n"
       "prefixes" "sharing" "updates" "interns" "hit-rate" "live"
       "saved-bytes" "alloc/update-B" "chal-alloc-B" "chal-tps");
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf
           "%10d %8s %9d %10d %8.1f%% %8d %14d %16.0f %14.0f %12.0f\n"
           c.sw_prefixes
           (if c.sw_sharing then "on" else "off")
           c.sw_updates c.sw_interns
           (100.0 *. c.sw_hit_rate)
           c.sw_live c.sw_saved_bytes c.sw_alloc_per_update
           c.sw_chal_alloc_per_update c.sw_chal_tps))
    t.cells;
  Buffer.add_char b '\n';
  List.iter
    (fun (desc, ok) ->
      Buffer.add_string b
        (Printf.sprintf "  [%s] %s\n" (if ok then "PASS" else "fail") desc))
    (checks t);
  Buffer.contents b

let to_json t =
  let module J = Bgp_stats.Json in
  J.Obj
    [ ("name", J.Str "arena_sweep");
      ("seed", J.Int t.seed);
      ("packing", J.Int t.packing);
      ( "cells",
        J.List
          (List.map
             (fun c ->
               J.Obj
                 [ ("prefixes", J.Int c.sw_prefixes);
                   ("sharing", J.Bool c.sw_sharing);
                   ("updates", J.Int c.sw_updates);
                   ("interns", J.Int c.sw_interns);
                   ("hits", J.Int c.sw_hits);
                   ("hit_rate", J.Float c.sw_hit_rate);
                   ("live", J.Int c.sw_live);
                   ("saved_bytes", J.Int c.sw_saved_bytes);
                   ("alloc_per_update", J.Float c.sw_alloc_per_update);
                   ( "challenger_alloc_per_update",
                     J.Float c.sw_chal_alloc_per_update );
                   ("challenger_tps", J.Float c.sw_chal_tps) ])
             t.cells) );
      ( "checks",
        J.Obj (List.map (fun (desc, ok) -> (desc, J.Bool ok)) (checks t)) ) ]
