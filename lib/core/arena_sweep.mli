(** Full-table scale sweep for the attribute arena.

    For each requested table size the sweep replays an Internet-shaped
    synthetic table through the receiver path — wire decode (which
    interns once per UPDATE), RIB announce via the attr-group batched
    path, and export rewriting — twice: with hash-consing enabled and
    with the arena bypassed ({!Bgp_route.Attrs.Interned.set_sharing}).
    Each run reports arena statistics and [Gc.allocated_bytes] per
    processed UPDATE, demonstrating the memory win at full-table scale
    (the ROADMAP's 250k+-prefix target). *)

type cell = {
  sw_prefixes : int;
  sw_sharing : bool;
  sw_updates : int;            (** UPDATE messages decoded and applied *)
  sw_interns : int;
  sw_hits : int;
  sw_hit_rate : float;
  sw_live : int;               (** distinct attribute sets in the arena *)
  sw_saved_bytes : int;
  sw_alloc_per_update : float; (** [Gc.allocated_bytes] per UPDATE *)
  sw_chal_alloc_per_update : float;
      (** allocation per UPDATE while a second peer re-announces the
          table with longer paths (every route loses — the
          scenario-5/6 shape, resolved by the incremental decision
          fast path) *)
  sw_chal_tps : float;
      (** wall-clock prefix transactions/s of that challenger phase —
          the unpaced software msgs/sec ceiling *)
}

type t = { seed : int; packing : int; cells : cell list }

val run : ?seed:int -> ?packing:int -> ?incremental:bool -> int list -> t
(** [run counts] sweeps each table size in [counts], producing two
    cells per size (sharing on, then off).  [packing] (default 500)
    caps prefixes per UPDATE; [incremental] (default true) is passed to
    {!Bgp_rib.Rib_manager.create}, so [~incremental:false] A/Bs the
    best-vs-challenger fast path against full re-selection.  Leaves the
    global arena cleared and sharing re-enabled. *)

val checks : t -> (string * bool) list
(** Per-size acceptance checks: sharing hit rate above 90% and strictly
    lower allocation per update than the un-interned run. *)

val render : t -> string
val to_json : t -> Bgp_stats.Json.t
