module Engine = Bgp_sim.Engine
module Clock = Bgp_engine.Clock
module Link = Bgp_engine.Link
module Trace = Bgp_sim.Trace
module Channel = Bgp_netsim.Channel
module Event_loop = Bgp_tcp.Event_loop
module Tcp_link = Bgp_tcp.Tcp_link
module Loc_rib = Bgp_rib.Loc_rib
module Traffic = Bgp_netsim.Traffic
module Arch = Bgp_router.Arch
module Router = Bgp_router.Router
module Speaker = Bgp_speaker.Speaker
module Workload = Bgp_speaker.Workload
module Peer = Bgp_route.Peer
module Fib = Bgp_fib.Fib
module Ipv4 = Bgp_addr.Ipv4
module Fsm = Bgp_fsm.Fsm
module Msg = Bgp_wire.Msg
module Faults = Bgp_faults.Faults
module Metrics = Bgp_stats.Metrics
module Damping = Bgp_rib.Damping
module Mrt = Bgp_mrt.Mrt
module Replay = Bgp_mrt.Replay
module Mrt_gen = Bgp_speaker.Mrt_gen
module Subscriber = Bgp_speaker.Subscriber

type mode = Sim | Live

let mode_name = function Sim -> "sim" | Live -> "live"

type config = {
  mode : mode;
      (* Sim: discrete-event engine, virtual time, deterministic.
         Live: loopback TCP sockets on a select loop, wall-clock time.
         Same scenarios, same verification, same Loc-RIB fingerprint. *)
  table_size : int;
  large_packing : int;
  cross_traffic : Traffic.t;
  seed : int;
  trace_interval : float option;
  setup_path_len : int;
  longer_path_len : int;
  shorter_path_len : int;
  varied_paths : bool;
  mrai : float option;
  timeout : float;
  fault_rounds : int;
  table_file : string option;
      (* Load the Phase-1 table from a file (bgpmark text or MRT dump,
         auto-detected) instead of synthesizing; overrides table_size. *)
  damping : Bgp_rib.Damping.config option;
      (* RFC 2439 damping parameters for the router under test.  None
         (the default) leaves the update path untouched; scenario 14
         forces [Damping.test_config] when unset. *)
  replay_speedup : float option;
      (* Scenario 13 pacing: None replays the update trace unpaced
         (throughput mode); Some x honors recorded inter-arrival times
         divided by x. *)
  replay_events : int;
      (* Scenario 13 synthesized-trace length; negative = the
         generator's default (n/5, at least 20). *)
  churn : Subscriber.config option;
      (* Scenario 16 workload shape.  None derives the default
         subscriber model from [table_size] and [seed]; an explicit
         config overrides [table_size] with its subscriber count. *)
  tracer : Bgp_trace.Tracer.t option;
}

let default_config =
  { mode = Sim; table_size = 10_000; large_packing = 500; cross_traffic = Traffic.none;
    seed = 42; trace_interval = None; setup_path_len = 3; longer_path_len = 6;
    shorter_path_len = 1; varied_paths = false; mrai = None;
    timeout = 500_000.0; fault_rounds = 5; table_file = None; damping = None;
    replay_speedup = None; replay_events = -1; churn = None; tracer = None }

type fault_report = {
  fr_injected : int;
  fr_malformed_dropped : int;
  fr_session_restarts : int;
  fr_reconverge_count : int;
  fr_reconverge_mean : float;
  fr_reconverge_max : float;
  fr_expected : (int * int) list;
  fr_answered : (int * int) list;
}

type damping_report = {
  dr_flaps : int;
  dr_suppressions : int;
  dr_reuses : int;
  dr_suppressed_end : int;
  dr_reuse_latency_mean : float;
  dr_reuse_latency_max : float;
}

type churn_report = {
  cr_subscribers : int;
  cr_injection_s : float;  (* Phase A: rate-limited batch injection *)
  cr_injection_tps : float;
  cr_churn_events : int;  (* Phase B: steady-state session churn *)
  cr_churn_s : float;
  cr_churn_tps : float;
  cr_sessions_up_end : int;  (* oracle: sessions up when failover hits *)
  cr_failover_s : float;  (* Phase C: peer loss -> sweep drained at s2 *)
  cr_sweep_count : int;  (* withdrawals timed landing at speaker 2 *)
  cr_sweep_mean_s : float;
  cr_sweep_max_s : float;
  cr_metrics : Bgp_stats.Json.t;
      (* full registry dump at run end — the stand-in for the BNG
         playbook's Prometheus scrape targets *)
}

type result = {
  arch_name : string;
  scenario : Scenario.t;
  used : config;
  tps : float;
  measured_prefixes : int;
  measure_seconds : float;
  setup_seconds : float;
  trace : Trace.sample list;
  fib_size_end : int;
  fib_stats : Fib.stats;
  rib_stats : Bgp_rib.Rib_manager.stats;
  stage_stats : Bgp_pipeline.Pipeline.stage_stat list;
  msgs_rx : int;
  msgs_tx : int;
  fwd_ratio_min : float;
  faults : fault_report option;
  damping : damping_report option;
      (* present when the router ran with RFC 2439 damping enabled *)
  churn : churn_report option;  (* present for scenario 16 *)
  locrib_fp : string;
      (* Loc-RIB digest at run end; equal across sim and live runs of
         the same scenario/seed (the cross-validation invariant) *)
  verified : (unit, string) Stdlib.result;
}

(* ------------------------------------------------------------------ *)
(* Fixed benchmark topology identities                                 *)
(* ------------------------------------------------------------------ *)

let router_asn = Bgp_route.Asn.of_int 65000
let router_id = Ipv4.of_string_exn "10.255.0.1"
let speaker1_asn = Bgp_route.Asn.of_int 65001
let speaker1_id = Ipv4.of_string_exn "192.0.2.1"
let speaker2_asn = Bgp_route.Asn.of_int 65002
let speaker2_id = Ipv4.of_string_exn "192.0.2.2"

let peer1 =
  Peer.make ~id:0 ~asn:speaker1_asn ~router_id:speaker1_id ~addr:speaker1_id

let peer2 =
  Peer.make ~id:1 ~asn:speaker2_asn ~router_id:speaker2_id ~addr:speaker2_id

(* ------------------------------------------------------------------ *)
(* Execution environment: one clock, two transports                    *)
(* ------------------------------------------------------------------ *)

(* What a benchmark run needs from its world: a clock and a way to mint
   speaker<->router transport pairs.  The drivers below are written
   against this record only, so the same scenario code runs simulated
   or over loopback TCP. *)
type link_pair = {
  sp_end : Link.t;  (* speaker side: the active opener *)
  rt_end : Link.t;  (* router side: passive *)
}

type env = {
  clock : Clock.t;
  new_link : unit -> link_pair;
  dispose : unit -> unit;  (* release live sockets; no-op in sim *)
}

let make_env = function
  | Sim ->
    let engine = Engine.create () in
    Engine.set_event_limit engine 500_000_000;
    { clock = Engine.clock engine;
      new_link =
        (fun () ->
          let ch = Channel.create engine () in
          { sp_end = Channel.endpoint ch Channel.A;
            rt_end = Channel.endpoint ch Channel.B });
      dispose = (fun () -> ()) }
  | Live ->
    let loop = Event_loop.create () in
    let pairs = ref [] in
    { clock = Event_loop.clock loop;
      new_link =
        (fun () ->
          let p = Tcp_link.pair loop in
          pairs := p :: !pairs;
          { sp_end = p.Tcp_link.connector; rt_end = p.Tcp_link.listener });
      dispose =
        (fun () ->
          List.iter (fun p -> p.Tcp_link.dispose ()) !pairs;
          Event_loop.stop_watching_all loop) }

(* ------------------------------------------------------------------ *)
(* Convergence driver                                                  *)
(* ------------------------------------------------------------------ *)

(* Advance the clock in steps until [cond] holds.  Recurring protocol
   timers (keepalives) keep the event queue alive forever, so "run to
   empty" is not an option.  On a simulated clock each [Clock.run]
   consumes its whole window regardless of [cond] (preserving exact
   event ordering); on a live clock it returns as soon as [cond]
   holds. *)
let wait_until clock ~timeout ~what cond =
  let deadline = Clock.now clock +. timeout in
  let rec go step =
    if cond () then ()
    else if Clock.now clock >= deadline then
      failwith
        (Printf.sprintf "Harness: timed out after %.0fs waiting for %s" timeout
           what)
    else begin
      ignore (Clock.run clock ~cond ~step);
      (* Exponentially growing step bounded at 2s keeps polling overhead
         negligible for slow architectures without hurting precision:
         measurements use event timestamps, not the polling grid. *)
      go (Float.min 2.0 (step *. 1.5))
    end
  in
  go 0.01

let wait_established clock ~timeout speaker =
  wait_until clock ~timeout ~what:"session establishment" (fun () ->
      Speaker.established speaker)

let wait_router_idle clock ~timeout router ~what ~transactions =
  wait_until clock ~timeout ~what (fun () ->
      (Router.counters router).Router.transactions >= transactions
      && Router.idle router)

let router_fingerprint router =
  Loc_rib.fingerprint (Bgp_rib.Rib_manager.loc_rib (Router.rib router))

(* Damping totals come from the table itself (never reset); only the
   reuse-latency distribution rides the metrics registry. *)
let damping_report_of router =
  Option.map
    (fun d ->
      let mean, mx =
        match
          Metrics.find_histogram (Router.metrics router) "damping.reuse_latency"
        with
        | Some h -> (Metrics.hist_mean h, Metrics.hist_max h)
        | None -> (0.0, 0.0)
      in
      { dr_flaps = Damping.flaps d;
        dr_suppressions = Damping.suppressions d;
        dr_reuses = Damping.reuses d;
        dr_suppressed_end = Damping.suppressed_count d;
        dr_reuse_latency_mean = mean;
        dr_reuse_latency_max = mx })
    (Router.damping router)

(* ------------------------------------------------------------------ *)
(* Scenario verification                                               *)
(* ------------------------------------------------------------------ *)

let check name cond = if cond then Ok () else Error name

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let verify (scenario : Scenario.t) cfg router s2_opt ~measured
    ~(fib_before : Fib.stats) =
  let fib = Router.fib router in
  let stats = Fib.stats fib in
  let n = cfg.table_size in
  (* Adversarial scenarios re-inject the full table once per fault
     round, so the measured phase processes [rounds * n] prefixes. *)
  let expected_measured =
    match scenario.Scenario.operation with
    | Scenario.Corrupted_storm | Scenario.Session_flaps
    | Scenario.Flap_damping ->
      cfg.fault_rounds * n
    | _ -> n
  in
  let s2_holds_table () =
    check "speaker 2 held the full table"
      (match s2_opt with
      | Some s2 -> Hashtbl.length (Speaker.received_prefix_set s2) = n
      | None -> false)
  in
  (* With damping on, each reuse-timer re-injection books one extra
     transaction on top of the per-round announcements, so the exact
     count is timing-dependent; the floor is not. *)
  let* () =
    if cfg.damping <> None then
      check "all prefixes measured" (measured >= expected_measured)
    else check "all prefixes measured" (measured = expected_measured)
  in
  match scenario.Scenario.operation with
  | Scenario.Topo_convergence | Scenario.Topo_link_failure ->
    Error "topology scenarios verify through Bgp_topo"
  | Scenario.Mrt_replay ->
    Error "scenario 13 verifies through its replay driver"
  | Scenario.Subscriber_churn ->
    Error "scenario 16 verifies through its churn driver"
  | Scenario.Corrupted_storm | Scenario.Session_flaps
  | Scenario.Flap_damping ->
    let r = cfg.fault_rounds in
    let* () = check "FIB restored after recovery" (Fib.size fib = n) in
    let* () =
      check "every fault flushed the table"
        (stats.Fib.withdraws - fib_before.Fib.withdraws = r * n)
    in
    let* () =
      check "every recovery re-installed the table"
        (stats.Fib.adds - fib_before.Fib.adds = r * n)
    in
    s2_holds_table ()
  | Scenario.Startup_announce ->
    let* () = check "FIB holds the table" (Fib.size fib = n) in
    check "every prefix was an Add" (stats.Fib.adds - fib_before.Fib.adds = n)
  | Scenario.Ending_withdraw ->
    let* () = check "FIB emptied" (Fib.size fib = 0) in
    check "every prefix was withdrawn"
      (stats.Fib.withdraws - fib_before.Fib.withdraws = n)
  | Scenario.Incremental_no_fib_change ->
    let* () = check "FIB intact" (Fib.size fib = n) in
    let* () =
      check "no FIB activity in the measured phase"
        (stats.Fib.replaces = fib_before.Fib.replaces
        && stats.Fib.adds = fib_before.Fib.adds
        && stats.Fib.withdraws = fib_before.Fib.withdraws)
    in
    check "speaker 2 held the full table"
      (match s2_opt with
      | Some s2 -> Hashtbl.length (Speaker.received_prefix_set s2) = n
      | None -> false)
  | Scenario.Incremental_fib_change ->
    let* () = check "FIB intact" (Fib.size fib = n) in
    check "every prefix was replaced"
      (stats.Fib.replaces - fib_before.Fib.replaces = n)

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

let run_standard ~config arch scenario =
  let cfg = config in
  (* --table FILE: the Phase-1 table comes from disk (bgpmark text or
     MRT dump, auto-detected); its size overrides [table_size]. *)
  let file_entries =
    Option.map
      (fun f ->
        match Bgp_speaker.Table_io.load_auto f with
        | Ok entries -> entries
        (* [load_auto] errors already lead with the file name. *)
        | Error msg -> failwith (Printf.sprintf "Harness: %s" msg))
      cfg.table_file
  in
  let cfg =
    match file_entries with
    | Some entries -> { cfg with table_size = List.length entries }
    | None -> cfg
  in
  let env = make_env cfg.mode in
  let clock = env.clock in
  let router =
    Router.create ?mrai:cfg.mrai ?damping:cfg.damping ?tracer:cfg.tracer
      ~trace_process:
        (Printf.sprintf "%s/scenario-%d" arch.Arch.name scenario.Scenario.id)
      clock arch ~local_asn:router_asn ~router_id
  in
  let lp1 = env.new_link () in
  let lp2 = env.new_link () in
  Router.attach_peer router ~peer:peer1 ~link:lp1.rt_end;
  Router.attach_peer router ~peer:peer2 ~link:lp2.rt_end;
  let s1 =
    Speaker.create clock ~asn:speaker1_asn ~router_id:speaker1_id
      ~link:lp1.sp_end
  in
  let s2 =
    Speaker.create clock ~asn:speaker2_asn ~router_id:speaker2_id
      ~link:lp2.sp_end
  in
  Router.set_cross_traffic router cfg.cross_traffic;
  let tracer =
    Option.map
      (fun interval -> Trace.start clock (Router.sched router) ~interval ())
      cfg.trace_interval
  in
  let table =
    match file_entries with
    | Some entries ->
      Array.of_list
        (List.map (fun e -> e.Bgp_speaker.Table_io.e_prefix) entries)
    | None -> Bgp_addr.Prefix_gen.table ~seed:cfg.seed ~n:cfg.table_size ()
  in
  let s1_attrs path_len =
    Workload.attrs ~speaker_asn:speaker1_asn ~next_hop:speaker1_id ~path_len ()
  in
  let s2_attrs path_len =
    Workload.attrs ~speaker_asn:speaker2_asn ~next_hop:speaker2_id ~path_len ()
  in
  let packing = Scenario.packing ~large:cfg.large_packing scenario in
  let timeout = cfg.timeout in

  (* --- Establish Speaker 1 ---------------------------------------- *)
  Speaker.start s1;
  wait_established clock ~timeout s1;

  let measured_phase_is_1 = Scenario.measures_phase scenario = 1 in

  (* --- Phase 1: table injection ----------------------------------- *)
  (* When Phase 1 is the measured phase it uses the scenario packing;
     otherwise it is setup and always uses large packets. *)
  let phase1_packing = if measured_phase_is_1 then packing else cfg.large_packing in
  Router.reset_counters router;
  let fib_before_measured = Fib.stats (Router.fib router) in
  (* Per-entry-attribute workloads (file-loaded or varied synthetic):
     an UPDATE carries one attribute set, so entries are grouped by
     equal attributes before packing, and groups are emitted in
     arena-id order so the workload is deterministic regardless of
     hash-table iteration. *)
  let inject_entries entries =
    let module I = Bgp_route.Attrs.Interned in
    let groups = I.Tbl.create 32 in
    List.iter
      (fun e ->
        let interned =
          I.intern (Bgp_speaker.Table_io.to_attrs ~next_hop:speaker1_id e)
        in
        let prefixes =
          Option.value ~default:[] (I.Tbl.find_opt groups interned)
        in
        I.Tbl.replace groups interned
          (e.Bgp_speaker.Table_io.e_prefix :: prefixes))
      entries;
    I.Tbl.fold (fun interned prefixes acc -> (interned, prefixes) :: acc)
      groups []
    |> List.sort (fun (a, _) (b, _) -> I.compare_id a b)
    |> List.iter (fun (interned, prefixes) ->
           ignore
             (Speaker.announce s1 ~packing:phase1_packing
                ~attrs:(I.value interned)
                (Array.of_list prefixes)))
  in
  (match file_entries with
  | Some entries -> inject_entries entries
  | None ->
    if cfg.varied_paths then
      (* Internet-shaped workload: 2-6 hop paths, mixed origins/MEDs. *)
      inject_entries
        (Bgp_speaker.Table_io.synthesize ~seed:cfg.seed ~n:cfg.table_size
           ~speaker_asn:speaker1_asn ())
    else
      ignore
        (Speaker.announce s1 ~packing:phase1_packing
           ~attrs:(s1_attrs cfg.setup_path_len)
           table));
  wait_router_idle clock ~timeout router ~what:"phase 1 table load"
    ~transactions:cfg.table_size;

  let phase1_counters = Router.counters router in
  let phase1_stage_stats = Router.stage_stats router in

  (* --- Phase 2: speaker 2 sync (scenarios 5-8) --------------------- *)
  if Scenario.uses_speaker2 scenario then begin
    Speaker.start s2;
    wait_established clock ~timeout s2;
    wait_until clock ~timeout ~what:"phase 2 table transfer" (fun () ->
        Router.idle router
        && Hashtbl.length (Speaker.received_prefix_set s2) = cfg.table_size)
  end;

  (* --- Phase 3 / measurement window -------------------------------- *)
  let fib_before, measure_window =
    if measured_phase_is_1 then
      ( fib_before_measured,
        fun () ->
          (* Phase 1 was the measurement; nothing more to inject. *)
          () )
    else begin
      Router.reset_counters router;
      let fib_before = Fib.stats (Router.fib router) in
      ( fib_before,
        fun () ->
          (match scenario.Scenario.operation with
          | Scenario.Ending_withdraw ->
            ignore (Speaker.withdraw s1 ~packing table)
          | Scenario.Incremental_no_fib_change ->
            let longer =
              (* must exceed every Phase-1 path: varied tables go up to
                 6 hops *)
              if cfg.varied_paths then max cfg.longer_path_len 8
              else cfg.longer_path_len
            in
            ignore
              (Speaker.announce s2 ~packing ~attrs:(s2_attrs longer) table)
          | Scenario.Incremental_fib_change ->
            ignore
              (Speaker.announce s2 ~packing
                 ~attrs:(s2_attrs cfg.shorter_path_len)
                 table)
          | Scenario.Startup_announce | Scenario.Corrupted_storm
          | Scenario.Session_flaps | Scenario.Topo_convergence
          | Scenario.Topo_link_failure | Scenario.Mrt_replay
          | Scenario.Flap_damping | Scenario.Subscriber_churn ->
            (* Phase-1-measured, adversarial, topology, MRT, and churn
               scenarios never reach this driver. *)
            assert false);
          wait_router_idle clock ~timeout router ~what:"measured phase"
            ~transactions:cfg.table_size )
    end
  in
  measure_window ();

  (* --- Collect ------------------------------------------------------ *)
  let counters =
    if measured_phase_is_1 then phase1_counters else Router.counters router
  in
  let stage_stats =
    if measured_phase_is_1 then phase1_stage_stats
    else Router.stage_stats router
  in
  Option.iter Trace.stop tracer;
  let trace = match tracer with Some t -> Trace.samples t | None -> [] in
  let measured = counters.Router.transactions in
  let measure_seconds =
    match counters.Router.first_work_at, counters.Router.last_transaction_at with
    | Some t0, Some t1 when t1 > t0 -> t1 -. t0
    | _ -> 0.0
  in
  let tps =
    if measure_seconds > 0.0 then float_of_int measured /. measure_seconds
    else 0.0
  in
  let fwd_ratio_now =
    if cfg.cross_traffic.Traffic.mbps <= 0.0 then 1.0
    else
      Bgp_netsim.Forwarding.achieved_mbps (Router.forwarding router)
      /. cfg.cross_traffic.Traffic.mbps
  in
  let fwd_ratio_min =
    List.fold_left
      (fun acc s -> Float.min acc s.Trace.s_fwd_ratio)
      fwd_ratio_now trace
  in
  let s2_opt = if Scenario.uses_speaker2 scenario then Some s2 else None in
  let verified =
    verify scenario cfg router s2_opt ~measured ~fib_before
  in
  let locrib_fp = router_fingerprint router in
  env.dispose ();
  { arch_name = arch.Arch.name; scenario; used = cfg; tps;
    measured_prefixes = measured; measure_seconds;
    setup_seconds = Clock.now clock -. measure_seconds; trace;
    fib_size_end = Fib.size (Router.fib router);
    fib_stats = Fib.stats (Router.fib router);
    rib_stats = Bgp_rib.Rib_manager.stats (Router.rib router);
    stage_stats;
    msgs_rx = counters.Router.msgs_rx; msgs_tx = counters.Router.msgs_tx;
    fwd_ratio_min; faults = None; damping = damping_report_of router;
    churn = None; locrib_fp; verified }

(* ------------------------------------------------------------------ *)
(* Adversarial runs (scenarios 9-10, 14)                               *)
(* ------------------------------------------------------------------ *)

(* Deliberately a separate driver rather than more branches in
   [run_standard]: the fault machinery (shared metrics registry, channel
   taps, auto-restart) must stay completely out of the paper-faithful
   path so Table III is bit-for-bit unaffected by this subsystem. *)
let run_adversarial ~config arch scenario =
  let cfg : config = config in
  (* Scenario 14 is the session-flap storm with damping forced on; 9-10
     pick it up only when the config asks (the --damping ablation). *)
  let cfg =
    match scenario.Scenario.operation, cfg.damping with
    | Scenario.Flap_damping, None ->
      { cfg with damping = Some Damping.test_config }
    | _ -> cfg
  in
  let rounds = cfg.fault_rounds in
  let n = cfg.table_size in
  let env = make_env cfg.mode in
  let clock = env.clock in
  let metrics = Metrics.create () in
  let trace_process =
    Printf.sprintf "%s/scenario-%d" arch.Arch.name scenario.Scenario.id
  in
  let router =
    Router.create ?mrai:cfg.mrai ?damping:cfg.damping ~metrics
      ?tracer:cfg.tracer ~trace_process clock arch ~local_asn:router_asn
      ~router_id
  in
  let faults =
    Faults.create ?tracer:cfg.tracer ~trace_process ~clock ~metrics ()
  in
  let lp1 = env.new_link () in
  let lp2 = env.new_link () in
  (* Speaker 1 is the adversarial peer: its transmissions pass through
     the fault tap, and the router's replies on the same link are
     watched for NOTIFICATIONs at send time (a teardown NOTIFICATION
     races the close, so receipt at the speaker is not guaranteed). *)
  Router.attach_peer ~restart_delay:0.05 router ~peer:peer1 ~link:lp1.rt_end;
  Router.attach_peer router ~peer:peer2 ~link:lp2.rt_end;
  Faults.tap_adversarial faults lp1.sp_end;
  Faults.observe_notifications faults lp1.rt_end;
  let s1 =
    Speaker.create clock ~asn:speaker1_asn ~router_id:speaker1_id
      ~link:lp1.sp_end
  in
  let s2 =
    Speaker.create clock ~asn:speaker2_asn ~router_id:speaker2_id
      ~link:lp2.sp_end
  in
  Router.set_cross_traffic router cfg.cross_traffic;
  let table = Bgp_addr.Prefix_gen.table ~seed:cfg.seed ~n () in
  let attrs =
    Workload.attrs ~speaker_asn:speaker1_asn ~next_hop:speaker1_id
      ~path_len:cfg.setup_path_len ()
  in
  let packing = Scenario.packing ~large:cfg.large_packing scenario in
  let timeout = cfg.timeout in

  (* --- Phase 1: table injection (setup, always large packets) ------- *)
  Speaker.start s1;
  wait_established clock ~timeout s1;
  ignore (Speaker.announce s1 ~packing:cfg.large_packing ~attrs table);
  wait_router_idle clock ~timeout router ~what:"phase 1 table load"
    ~transactions:n;

  (* --- Phase 2: speaker 2 sync -------------------------------------- *)
  Speaker.start s2;
  wait_established clock ~timeout s2;
  wait_until clock ~timeout ~what:"phase 2 table transfer" (fun () ->
      Router.idle router
      && Hashtbl.length (Speaker.received_prefix_set s2) = n);

  (* --- Measurement: fault rounds ------------------------------------ *)
  Router.reset_counters router;
  let fib_before = Fib.stats (Router.fib router) in
  (* Virtual timestamps of each fault injection, newest first: the
     damping verdict needs the inter-flap gaps to know whether
     suppression was even reachable (RFC 2439 suppresses only flaps
     faster than the half-life-scaled decay). *)
  let fault_times = ref [] in
  for k = 1 to rounds do
    let fault_at = Clock.now clock in
    fault_times := fault_at :: !fault_times;
    (match scenario.Scenario.operation with
    | Scenario.Corrupted_storm ->
      (* Corrupt the next UPDATE in flight: a small slice announcement
         whose single message is mutated into a pre-validated malformed
         image.  The router must answer with the predicted RFC 4271
         NOTIFICATION and tear the session down; the slice therefore
         contributes zero transactions. *)
      Faults.arm_corrupt_next faults;
      ignore
        (Speaker.announce s1 ~packing ~attrs (Array.sub table 0 (min packing n)))
    | Scenario.Session_flaps | Scenario.Flap_damping ->
      (* Alternate the two teardown flavors: an unsolicited TCP reset
         (close under the FSM's feet) and an orderly CEASE from the
         speaker.  With damping on, every flap charges a withdrawal
         penalty per lost route; from the second round on the
         re-announcements are suppressed and re-convergence completes
         only when the reuse timer re-injects them. *)
      Faults.note_session_fault faults;
      if k mod 2 = 1 then lp1.sp_end.Link.close () else Speaker.stop s1
    | _ -> assert false);
    wait_until clock ~timeout
      ~what:(Printf.sprintf "speaker teardown (round %d)" k) (fun () ->
        Speaker.state s1 = Fsm.Idle);
    (* The router side restarts passively after [restart_delay]; the
       speaker must not reconnect before that or its OPEN hits a dead
       socket.  Also wait for the peer-loss flush to drain: its
       withdrawals to speaker 2 ride the FIB process and would
       otherwise race (and cancel) the re-announced routes. *)
    wait_until clock ~timeout
      ~what:(Printf.sprintf "flush + session rearm (round %d)" k) (fun () ->
        Router.idle router
        && Router.session_state router peer1 = Fsm.Active);
    Speaker.start s1;
    wait_established clock ~timeout s1;
    Faults.note_session_restart faults;
    ignore (Speaker.announce s1 ~packing ~attrs table);
    wait_until clock ~timeout
      ~what:(Printf.sprintf "re-convergence (round %d)" k) (fun () ->
        (Router.counters router).Router.transactions >= k * n
        && Router.idle router
        && Fib.size (Router.fib router) = n
        && Hashtbl.length (Speaker.received_prefix_set s2) = n);
    Faults.observe_reconvergence faults (Clock.now clock -. fault_at)
  done;

  (* --- Collect ------------------------------------------------------ *)
  let counters = Router.counters router in
  let measured = counters.Router.transactions in
  let measure_seconds =
    match counters.Router.first_work_at, counters.Router.last_transaction_at with
    | Some t0, Some t1 when t1 > t0 -> t1 -. t0
    | _ -> 0.0
  in
  let tps =
    if measure_seconds > 0.0 then float_of_int measured /. measure_seconds
    else 0.0
  in
  let fwd_ratio_min =
    if cfg.cross_traffic.Traffic.mbps <= 0.0 then 1.0
    else
      Bgp_netsim.Forwarding.achieved_mbps (Router.forwarding router)
      /. cfg.cross_traffic.Traffic.mbps
  in
  let rc_count, rc_mean, rc_max = Faults.reconvergence_stats faults in
  let report =
    { fr_injected = Faults.injected faults;
      fr_malformed_dropped = Faults.malformed_dropped faults;
      fr_session_restarts = Faults.session_restarts faults;
      fr_reconverge_count = rc_count; fr_reconverge_mean = rc_mean;
      fr_reconverge_max = rc_max;
      fr_expected = List.map Msg.error_code (Faults.expected_errors faults);
      fr_answered = List.map Msg.error_code (Faults.notifications_seen faults) }
  in
  let verified =
    let* () = verify scenario cfg router (Some s2) ~measured ~fib_before in
    let* () =
      check "session restarted after every fault"
        (Faults.session_restarts faults = rounds)
    in
    let* () =
      check "re-convergence timed for every fault" (rc_count = rounds)
    in
    let* () =
      match scenario.Scenario.operation with
      | Scenario.Corrupted_storm ->
        let* () =
          check "one malformed update injected per round"
            (List.length (Faults.expected_errors faults) = rounds)
        in
        let* () =
          check "router answered each malformed update with the predicted \
                 NOTIFICATION"
            (Faults.all_answered faults)
        in
        check "malformed updates counted"
          (Faults.malformed_dropped faults = rounds)
      | _ ->
        check "every session fault recorded" (Faults.injected faults = rounds)
    in
    match Router.damping router, cfg.damping with
    | None, _ | _, None -> Ok ()
    | Some d, Some dc ->
      (* Suppression is only *guaranteed* when two consecutive
         withdrawal charges landed close enough that the decayed
         remnant of the first plus the second crosses the threshold:
         withdraw * 2^(-gap/half_life) + withdraw >= suppress, i.e.
         gap <= half_life * log2 (withdraw / (suppress - withdraw)).
         Slower flapping legitimately escapes damping (that is the
         RFC working as specified, e.g. a big table on a slow cost
         model where one teardown-reconverge round outlasts the
         half-life), so only then is the check waived.  The 0.8
         safety factor absorbs the skew between teardown initiation
         (timed here) and the router processing the peer loss. *)
      let guaranteed =
        let headroom = dc.Damping.suppress_threshold -. dc.Damping.withdraw_penalty in
        headroom <= 0.0
        ||
        let bound =
          dc.Damping.half_life
          *. (log (dc.Damping.withdraw_penalty /. headroom) /. log 2.0)
        in
        let rec min_gap = function
          | a :: (b :: _ as rest) -> min (a -. b) (min_gap rest)
          | _ -> infinity
        in
        min_gap !fault_times <= 0.8 *. bound
      in
      let* () =
        check "damping suppressed flapping routes"
          ((not guaranteed) || Damping.suppressions d > 0)
      in
      let* () =
        check "every suppressed route was reused"
          (Damping.reuses d = Damping.suppressions d)
      in
      check "no route left suppressed" (Damping.suppressed_count d = 0)
  in
  let locrib_fp = router_fingerprint router in
  env.dispose ();
  { arch_name = arch.Arch.name; scenario; used = cfg; tps;
    measured_prefixes = measured; measure_seconds;
    setup_seconds = Clock.now clock -. measure_seconds; trace = [];
    fib_size_end = Fib.size (Router.fib router);
    fib_stats = Fib.stats (Router.fib router);
    rib_stats = Bgp_rib.Rib_manager.stats (Router.rib router);
    stage_stats = Router.stage_stats router;
    msgs_rx = counters.Router.msgs_rx; msgs_tx = counters.Router.msgs_tx;
    fwd_ratio_min; faults = Some report; damping = damping_report_of router;
    churn = None; locrib_fp; verified }

(* ------------------------------------------------------------------ *)
(* MRT replay (scenario 13)                                            *)
(* ------------------------------------------------------------------ *)

(* Load a recorded (or synthesized) TABLE_DUMP_V2 RIB through Phase 1,
   then replay the dump's BGP4MP update trace through speaker 1 at
   recorded or accelerated timing and measure sustained throughput.
   The oracle folds the trace's announce/withdraw effects over the
   initial prefix set, so the final FIB and speaker 2's view are
   checked against the exact expected route set — in sim and live. *)
let run_mrt ~config arch scenario =
  let cfg = config in
  let records =
    match cfg.table_file with
    | Some f ->
      (match Mrt.read_file f with
      | Ok (records, _skipped) -> records
      | Error msg -> failwith (Printf.sprintf "Harness: %s: %s" f msg))
    | None ->
      Mrt_gen.records ~seed:cfg.seed ~events:cfg.replay_events
        ~n:cfg.table_size ~speaker_asn:speaker1_asn ~next_hop:speaker1_id ()
  in
  let routes = Mrt.routes_of_dump records in
  let events =
    (* Real traces may carry KEEPALIVEs etc.; only UPDATEs replay. *)
    List.filter
      (fun (_, m) -> match m with Msg.Update _ -> true | _ -> false)
      (Mrt.updates_of_dump records)
  in
  let n = List.length routes in
  if n = 0 then failwith "Harness: MRT dump has no IPv4-unicast RIB entries";
  let cfg = { cfg with table_size = n } in
  (* Each replayed UPDATE books one transaction per prefix it names,
     changed or not — the deterministic completion criterion. *)
  let event_prefixes =
    List.fold_left
      (fun acc (_, m) ->
        match m with
        | Msg.Update u ->
          acc + List.length u.Msg.withdrawn + List.length u.Msg.nlri
        | _ -> acc)
      0 events
  in
  let expected = Replay.expected_prefixes events (List.map fst routes) in
  let n_expected = List.length expected in
  let env = make_env cfg.mode in
  let clock = env.clock in
  let router =
    Router.create ?mrai:cfg.mrai ?tracer:cfg.tracer
      ~trace_process:
        (Printf.sprintf "%s/scenario-%d" arch.Arch.name scenario.Scenario.id)
      clock arch ~local_asn:router_asn ~router_id
  in
  let lp1 = env.new_link () in
  let lp2 = env.new_link () in
  Router.attach_peer router ~peer:peer1 ~link:lp1.rt_end;
  Router.attach_peer router ~peer:peer2 ~link:lp2.rt_end;
  let s1 =
    Speaker.create clock ~asn:speaker1_asn ~router_id:speaker1_id
      ~link:lp1.sp_end
  in
  let s2 =
    Speaker.create clock ~asn:speaker2_asn ~router_id:speaker2_id
      ~link:lp2.sp_end
  in
  Router.set_cross_traffic router cfg.cross_traffic;
  let timeout = cfg.timeout in

  (* --- Phase 1: dump's RIB, grouped by shared attribute handle ------ *)
  Speaker.start s1;
  wait_established clock ~timeout s1;
  let module I = Bgp_route.Attrs.Interned in
  let groups = I.Tbl.create 32 in
  List.iter
    (fun (prefix, interned) ->
      let prefixes =
        Option.value ~default:[] (I.Tbl.find_opt groups interned)
      in
      I.Tbl.replace groups interned (prefix :: prefixes))
    routes;
  I.Tbl.fold (fun interned prefixes acc -> (interned, prefixes) :: acc)
    groups []
  |> List.sort (fun (a, _) (b, _) -> I.compare_id a b)
  |> List.iter (fun (interned, prefixes) ->
         ignore
           (Speaker.announce s1 ~packing:cfg.large_packing
              ~attrs:(I.value interned)
              (Array.of_list prefixes)));
  wait_router_idle clock ~timeout router ~what:"phase 1 MRT table load"
    ~transactions:n;

  (* --- Phase 2: speaker 2 sync -------------------------------------- *)
  Speaker.start s2;
  wait_established clock ~timeout s2;
  wait_until clock ~timeout ~what:"phase 2 table transfer" (fun () ->
      Router.idle router
      && Hashtbl.length (Speaker.received_prefix_set s2) = n);

  (* --- Measurement: update-trace replay ----------------------------- *)
  Router.reset_counters router;
  let pacing =
    match cfg.replay_speedup with
    | None -> Replay.Unpaced
    | Some x -> Replay.Timed x
  in
  let rp =
    Replay.start ~clock ~pacing ~send:(fun m -> Speaker.send_update s1 m)
      events
  in
  wait_until clock ~timeout ~what:"update-trace replay" (fun () ->
      Replay.finished rp
      && (Router.counters router).Router.transactions >= event_prefixes
      && Router.idle router
      && Hashtbl.length (Speaker.received_prefix_set s2) = n_expected);

  (* --- Collect ------------------------------------------------------ *)
  let counters = Router.counters router in
  let measured = counters.Router.transactions in
  let measure_seconds =
    match counters.Router.first_work_at, counters.Router.last_transaction_at with
    | Some t0, Some t1 when t1 > t0 -> t1 -. t0
    | _ -> 0.0
  in
  let tps =
    if measure_seconds > 0.0 then float_of_int measured /. measure_seconds
    else 0.0
  in
  let fwd_ratio_min =
    if cfg.cross_traffic.Traffic.mbps <= 0.0 then 1.0
    else
      Bgp_netsim.Forwarding.achieved_mbps (Router.forwarding router)
      /. cfg.cross_traffic.Traffic.mbps
  in
  let verified =
    let* () =
      check "replay delivered every update"
        ((not (Replay.failed rp)) && Replay.sent rp = Replay.total rp)
    in
    let* () =
      check "all replayed prefixes measured" (measured = event_prefixes)
    in
    let* () =
      check "FIB matches the replay oracle"
        (Fib.size (Router.fib router) = n_expected)
    in
    let s2_set = Speaker.received_prefix_set s2 in
    let* () =
      check "speaker 2 converged to the oracle set"
        (Hashtbl.length s2_set = n_expected
        && List.for_all (fun p -> Hashtbl.mem s2_set p) expected)
    in
    Ok ()
  in
  let locrib_fp = router_fingerprint router in
  env.dispose ();
  { arch_name = arch.Arch.name; scenario; used = cfg; tps;
    measured_prefixes = measured; measure_seconds;
    setup_seconds = Clock.now clock -. measure_seconds; trace = [];
    fib_size_end = Fib.size (Router.fib router);
    fib_stats = Fib.stats (Router.fib router);
    rib_stats = Bgp_rib.Rib_manager.stats (Router.rib router);
    stage_stats = Router.stage_stats router;
    msgs_rx = counters.Router.msgs_rx; msgs_tx = counters.Router.msgs_tx;
    fwd_ratio_min; faults = None; damping = None; churn = None; locrib_fp;
    verified }

(* ------------------------------------------------------------------ *)
(* Subscriber-edge churn (scenario 16)                                 *)
(* ------------------------------------------------------------------ *)

(* The BNG/WISP workload: N /32 session routes batch-injected through
   speaker 1 with [max_prefixes] set to exactly N and MRAI active, then
   a deterministic Markov churn plan (session up/down/resync), then
   failover — speaker 1's link dies and the full withdraw sweep is
   timed end-to-end as it lands at speaker 2.  Every phase is verified
   against the [Subscriber] plan oracle, which knows the expected
   up-set independently of anything the router did.

   The resync events are the traffic that used to CEASE the session
   under the old NLRI-length prefix-limit check: a re-announce at a
   full table projects to zero growth and must pass. *)
let run_churn ~config arch scenario =
  let cfg : config = config in
  let sub_cfg =
    match cfg.churn with
    | Some c -> c
    | None ->
      { Subscriber.default with
        Subscriber.subscribers = cfg.table_size; seed = cfg.seed }
  in
  let sub = Subscriber.create sub_cfg in
  let n = sub_cfg.Subscriber.subscribers in
  (* MRAI must be live under churn (the issue's point); honor an
     explicit setting, else a realistic 50ms. *)
  let mrai = match cfg.mrai with Some m -> Some m | None -> Some 0.05 in
  let cfg = { cfg with table_size = n; mrai; churn = Some sub_cfg } in
  let env = make_env cfg.mode in
  let clock = env.clock in
  let router =
    Router.create ?mrai:cfg.mrai ?damping:cfg.damping ?tracer:cfg.tracer
      ~trace_process:
        (Printf.sprintf "%s/scenario-%d" arch.Arch.name scenario.Scenario.id)
      clock arch ~local_asn:router_asn ~router_id
  in
  let sweep_hist = Metrics.histogram (Router.metrics router) "churn.sweep_latency" in
  let lp1 = env.new_link () in
  let lp2 = env.new_link () in
  (* Prefix-limit protection sized exactly to the subscriber pool: any
     over-count in the limit check tears the session mid-churn. *)
  Router.attach_peer ~max_prefixes:n router ~peer:peer1 ~link:lp1.rt_end;
  Router.attach_peer router ~peer:peer2 ~link:lp2.rt_end;
  let s1 =
    Speaker.create clock ~asn:speaker1_asn ~router_id:speaker1_id
      ~link:lp1.sp_end
  in
  let s2 =
    Speaker.create clock ~asn:speaker2_asn ~router_id:speaker2_id
      ~link:lp2.sp_end
  in
  Router.set_cross_traffic router cfg.cross_traffic;
  let prefixes = Subscriber.prefixes sub in
  let attrs =
    Workload.attrs ~speaker_asn:speaker1_asn ~next_hop:speaker1_id
      ~path_len:cfg.setup_path_len ()
  in
  let timeout = cfg.timeout in
  let phase_seconds () =
    let c = Router.counters router in
    match c.Router.first_work_at, c.Router.last_transaction_at with
    | Some t0, Some t1 when t1 > t0 -> t1 -. t0
    | _ -> 0.0
  in

  (* --- Phase A: rate-limited batch injection (measured) ------------- *)
  Speaker.start s1;
  wait_established clock ~timeout s1;
  Router.reset_counters router;
  List.iter
    (fun (at, batch) ->
      ignore
        (Clock.schedule clock ~delay:at (fun () ->
             ignore
               (Speaker.announce s1 ~packing:sub_cfg.Subscriber.batch ~attrs
                  batch))))
    (Subscriber.batches sub);
  wait_router_idle clock ~timeout router ~what:"subscriber injection"
    ~transactions:n;
  let injected = (Router.counters router).Router.transactions in
  let injection_s = phase_seconds () in
  let fib_after_inject = Fib.size (Router.fib router) in

  (* --- Phase 2 equivalent: speaker 2 sync --------------------------- *)
  Speaker.start s2;
  wait_established clock ~timeout s2;
  wait_until clock ~timeout ~what:"speaker 2 table transfer" (fun () ->
      Router.idle router
      && Hashtbl.length (Speaker.received_prefix_set s2) = n);

  (* --- Phase B: steady-state churn (measured) ----------------------- *)
  Router.reset_counters router;
  let plan = Subscriber.plan sub in
  let n_events = Subscriber.n_events sub in
  List.iter
    (fun ev ->
      let p = [| prefixes.(ev.Subscriber.ev_idx) |] in
      ignore
        (Clock.schedule clock ~delay:ev.Subscriber.ev_at (fun () ->
             match ev.Subscriber.ev_kind with
             | Subscriber.Up | Subscriber.Resync ->
               ignore (Speaker.announce s1 ~packing:1 ~attrs p)
             | Subscriber.Down -> ignore (Speaker.withdraw s1 ~packing:1 p))))
    plan;
  let up_count = Subscriber.up_count sub in
  wait_until clock ~timeout ~what:"steady-state churn" (fun () ->
      (Router.counters router).Router.transactions >= n_events
      && Router.idle router
      && Hashtbl.length (Speaker.received_prefix_set s2) = up_count);
  let churned = (Router.counters router).Router.transactions in
  let churn_s = phase_seconds () in
  let fib_after_churn = Fib.size (Router.fib router) in
  let s1_lost_before_failover = Speaker.sessions_lost s1 in
  let s2_holds_oracle_set =
    let set = Speaker.received_prefix_set s2 in
    Hashtbl.length set = up_count
    && List.for_all (fun p -> Hashtbl.mem set p) (Subscriber.up_prefixes sub)
  in
  (* The crosscheck fingerprint is taken here, at peak state: after the
     failover the Loc-RIB is empty and every run would trivially agree. *)
  let locrib_fp = router_fingerprint router in

  (* --- Phase C: failover — peer loss, full withdraw sweep ----------- *)
  let t_fail = Clock.now clock in
  Speaker.set_update_observer s2 (fun u ->
      let dt = Clock.now clock -. t_fail in
      List.iter (fun _ -> Metrics.observe sweep_hist dt) u.Msg.withdrawn);
  lp1.sp_end.Link.close ();
  wait_until clock ~timeout ~what:"failover withdraw sweep" (fun () ->
      Router.idle router
      && Fib.size (Router.fib router) = 0
      && Hashtbl.length (Speaker.received_prefix_set s2) = 0);
  let failover_s = Clock.now clock -. t_fail in
  Speaker.set_update_observer s2 ignore;

  (* --- Collect ------------------------------------------------------ *)
  let counters = Router.counters router in
  let measured = injected + churned in
  let measure_seconds = injection_s +. churn_s in
  let tps =
    if measure_seconds > 0.0 then float_of_int measured /. measure_seconds
    else 0.0
  in
  let fwd_ratio_min =
    if cfg.cross_traffic.Traffic.mbps <= 0.0 then 1.0
    else
      Bgp_netsim.Forwarding.achieved_mbps (Router.forwarding router)
      /. cfg.cross_traffic.Traffic.mbps
  in
  let report =
    { cr_subscribers = n;
      cr_injection_s = injection_s;
      cr_injection_tps =
        (if injection_s > 0.0 then float_of_int injected /. injection_s
         else 0.0);
      cr_churn_events = churned;
      cr_churn_s = churn_s;
      cr_churn_tps =
        (if churn_s > 0.0 then float_of_int churned /. churn_s else 0.0);
      cr_sessions_up_end = up_count;
      cr_failover_s = failover_s;
      cr_sweep_count = Metrics.hist_count sweep_hist;
      cr_sweep_mean_s = Metrics.hist_mean sweep_hist;
      cr_sweep_max_s = Metrics.hist_max sweep_hist;
      cr_metrics = Metrics.to_json (Router.metrics router) }
  in
  let verified =
    let* () = check "every subscriber injected" (injected = n) in
    let* () = check "FIB held the pool after injection" (fib_after_inject = n) in
    let* () = check "every churn event measured" (churned = n_events) in
    let* () =
      check "session survived churn at the prefix limit"
        (s1_lost_before_failover = 0)
    in
    let* () =
      check "FIB matched the churn oracle" (fib_after_churn = up_count)
    in
    let* () = check "speaker 2 converged to the oracle set" s2_holds_oracle_set in
    let* () =
      check "failover emptied the FIB" (Fib.size (Router.fib router) = 0)
    in
    let* () =
      check "failover swept speaker 2 clean"
        (Hashtbl.length (Speaker.received_prefix_set s2) = 0)
    in
    check "every swept withdrawal was timed"
      (Metrics.hist_count sweep_hist = up_count)
  in
  env.dispose ();
  { arch_name = arch.Arch.name; scenario; used = cfg; tps;
    measured_prefixes = measured; measure_seconds;
    setup_seconds = Clock.now clock -. measure_seconds; trace = [];
    fib_size_end = Fib.size (Router.fib router);
    fib_stats = Fib.stats (Router.fib router);
    rib_stats = Bgp_rib.Rib_manager.stats (Router.rib router);
    stage_stats = Router.stage_stats router;
    msgs_rx = counters.Router.msgs_rx; msgs_tx = counters.Router.msgs_tx;
    fwd_ratio_min; faults = None; damping = damping_report_of router;
    churn = Some report; locrib_fp; verified }

let run ?(config = default_config) arch scenario =
  if Scenario.is_topo scenario then
    invalid_arg
      (Printf.sprintf
         "Harness.run: %s is a multi-router topology scenario; run it \
          through Bgp_topo (bgpbench topo)"
         (Scenario.name scenario))
  else if Scenario.is_churn scenario then run_churn ~config arch scenario
  else if Scenario.is_adversarial scenario then
    run_adversarial ~config arch scenario
  else if Scenario.is_mrt scenario then
    match scenario.Scenario.operation with
    | Scenario.Mrt_replay -> run_mrt ~config arch scenario
    | _ -> run_adversarial ~config arch scenario
  else run_standard ~config arch scenario

let pp_faults ppf = function
  | None -> ()
  | Some f ->
    Format.fprintf ppf
      "@,  faults injected %d; malformed dropped %d; session restarts %d@,  \
       re-convergence: %d events, mean %.3fs virtual, max %.3fs"
      f.fr_injected f.fr_malformed_dropped f.fr_session_restarts
      f.fr_reconverge_count f.fr_reconverge_mean f.fr_reconverge_max

let pp_damping ppf = function
  | None -> ()
  | Some d ->
    Format.fprintf ppf
      "@,  damping: %d flaps, %d suppressions, %d reuses, %d still \
       suppressed@,  reuse latency: mean %.3fs, max %.3fs"
      d.dr_flaps d.dr_suppressions d.dr_reuses d.dr_suppressed_end
      d.dr_reuse_latency_mean d.dr_reuse_latency_max

let pp_churn ppf = function
  | None -> ()
  | Some c ->
    Format.fprintf ppf
      "@,  churn: %d subscribers injected in %.2fs (%.0f tps); %d events in \
       %.2fs (%.0f tps); %d up at failover@,  failover sweep: %.3fs \
       end-to-end, %d withdrawals, latency mean %.3fs max %.3fs"
      c.cr_subscribers c.cr_injection_s c.cr_injection_tps c.cr_churn_events
      c.cr_churn_s c.cr_churn_tps c.cr_sessions_up_end c.cr_failover_s
      c.cr_sweep_count c.cr_sweep_mean_s c.cr_sweep_max_s

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s / %s:@,  %.1f transactions/s (%d prefixes in %.2fs virtual)@,  FIB end size %d; verification %s%a%a%a@,  per-stage breakdown (measured phase):@,  @[<v>%a@]@]"
    r.arch_name (Scenario.describe r.scenario) r.tps r.measured_prefixes
    r.measure_seconds r.fib_size_end
    (match r.verified with Ok () -> "OK" | Error e -> "FAILED: " ^ e)
    pp_faults r.faults pp_damping r.damping pp_churn r.churn
    Bgp_pipeline.Pipeline.pp_stage_stats r.stage_stats

let fault_report_json (f : fault_report) =
  let module J = Bgp_stats.Json in
  let codes l = J.List (List.map (fun (c, s) -> J.List [ J.Int c; J.Int s ]) l) in
  J.Obj
    [ ("injected", J.Int f.fr_injected);
      ("malformed_dropped", J.Int f.fr_malformed_dropped);
      ("session_restarts", J.Int f.fr_session_restarts);
      ("reconverge_count", J.Int f.fr_reconverge_count);
      ("reconverge_mean_s", J.Float f.fr_reconverge_mean);
      ("reconverge_max_s", J.Float f.fr_reconverge_max);
      ("expected_notifications", codes f.fr_expected);
      ("answered_notifications", codes f.fr_answered) ]

let damping_report_json (d : damping_report) =
  let module J = Bgp_stats.Json in
  J.Obj
    [ ("flaps", J.Int d.dr_flaps);
      ("suppressions", J.Int d.dr_suppressions);
      ("reuses", J.Int d.dr_reuses);
      ("suppressed_end", J.Int d.dr_suppressed_end);
      ("reuse_latency_mean_s", J.Float d.dr_reuse_latency_mean);
      ("reuse_latency_max_s", J.Float d.dr_reuse_latency_max) ]

let churn_report_json (c : churn_report) =
  let module J = Bgp_stats.Json in
  J.Obj
    [ ("subscribers", J.Int c.cr_subscribers);
      ("injection_s", J.Float c.cr_injection_s);
      ("injection_tps", J.Float c.cr_injection_tps);
      ("churn_events", J.Int c.cr_churn_events);
      ("churn_s", J.Float c.cr_churn_s);
      ("churn_tps", J.Float c.cr_churn_tps);
      ("sessions_up_end", J.Int c.cr_sessions_up_end);
      ("failover_s", J.Float c.cr_failover_s);
      ("sweep_count", J.Int c.cr_sweep_count);
      ("sweep_latency_mean_s", J.Float c.cr_sweep_mean_s);
      ("sweep_latency_max_s", J.Float c.cr_sweep_max_s);
      ("metrics", c.cr_metrics) ]

(* A snapshot of the process-global attribute arena (JSON only — the
   rendered tables never include it, so text output is unaffected by
   the sharing subsystem). *)
let arena_json () =
  let module J = Bgp_stats.Json in
  let module I = Bgp_route.Attrs.Interned in
  let s = I.stats () in
  J.Obj
    [ ("interns", J.Int s.I.interns);
      ("hits", J.Int s.I.hits);
      ("hit_rate", J.Float (I.hit_rate s));
      ("live", J.Int s.I.live);
      ("saved_bytes", J.Int s.I.saved_bytes);
      ("sharing", J.Bool (I.sharing_enabled ())) ]

let result_json (r : result) =
  let module J = Bgp_stats.Json in
  J.Obj
    ([ ("arch", J.Str r.arch_name);
       ("scenario", J.Int r.scenario.Scenario.id);
       ("name", J.Str (Scenario.name r.scenario));
       ("tps", J.Float r.tps);
       ("transactions", J.Int r.measured_prefixes);
       ("measure_s", J.Float r.measure_seconds);
       ("setup_s", J.Float r.setup_seconds);
       ("fib_size", J.Int r.fib_size_end);
       ("msgs_rx", J.Int r.msgs_rx);
       ("msgs_tx", J.Int r.msgs_tx);
       ("fwd_ratio_min", J.Float r.fwd_ratio_min);
       ("mode", J.Str (mode_name r.used.mode));
       ("locrib_fp", J.Str r.locrib_fp) ]
    @ (match r.faults with
      | None -> []
      | Some f -> [ ("faults", fault_report_json f) ])
    @ (match r.damping with
      | None -> []
      | Some d -> [ ("damping", damping_report_json d) ])
    @ (match r.churn with
      | None -> []
      | Some c -> [ ("churn", churn_report_json c) ])
    @
    match r.verified with
    | Ok () -> [ ("verified", J.Bool true) ]
    | Error e -> [ ("verified", J.Bool false); ("error", J.Str e) ])

(* ------------------------------------------------------------------ *)
(* Sim-vs-live cross-validation                                        *)
(* ------------------------------------------------------------------ *)

type crosscheck = {
  xc_arch : string;
  xc_scenario : Scenario.t;
  xc_sim : result;
  xc_live : result;
  xc_fingerprints_match : bool;
  xc_verdicts_match : bool;
}

(* Run the same scenario/seed simulated and over loopback TCP.  Routing
   outcomes must agree exactly (Loc-RIB fingerprints equal, the same
   verification verdict); only timings may differ. *)
let cross_validate ?(config = default_config) ?(live_timeout = 120.0) arch
    scenario =
  let xc_sim = run ~config:{ config with mode = Sim } arch scenario in
  let xc_live =
    run ~config:{ config with mode = Live; timeout = live_timeout } arch
      scenario
  in
  { xc_arch = arch.Arch.name; xc_scenario = scenario; xc_sim; xc_live;
    xc_fingerprints_match = String.equal xc_sim.locrib_fp xc_live.locrib_fp;
    xc_verdicts_match =
      Result.is_ok xc_sim.verified = Result.is_ok xc_live.verified }

let crosscheck_ok xc =
  xc.xc_fingerprints_match && xc.xc_verdicts_match
  && Result.is_ok xc.xc_sim.verified

let pp_crosscheck ppf xc =
  Format.fprintf ppf
    "@[<v>%s / %s:@,  sim  %8.1f tps in %8.2fs  fp %s  verified %s@,  live \
     %8.1f tps in %8.2fs  fp %s  verified %s@,  fingerprints %s; verdicts \
     %s@]"
    xc.xc_arch
    (Scenario.describe xc.xc_scenario)
    xc.xc_sim.tps xc.xc_sim.measure_seconds
    (String.sub xc.xc_sim.locrib_fp 0 12)
    (match xc.xc_sim.verified with Ok () -> "OK" | Error e -> "FAILED: " ^ e)
    xc.xc_live.tps xc.xc_live.measure_seconds
    (String.sub xc.xc_live.locrib_fp 0 12)
    (match xc.xc_live.verified with Ok () -> "OK" | Error e -> "FAILED: " ^ e)
    (if xc.xc_fingerprints_match then "MATCH" else "MISMATCH")
    (if xc.xc_verdicts_match then "MATCH" else "MISMATCH")

let crosscheck_json xc =
  let module J = Bgp_stats.Json in
  J.Obj
    [ ("arch", J.Str xc.xc_arch);
      ("scenario", J.Int xc.xc_scenario.Scenario.id);
      ("name", J.Str (Scenario.name xc.xc_scenario));
      ("sim", result_json xc.xc_sim);
      ("live", result_json xc.xc_live);
      ("fingerprints_match", J.Bool xc.xc_fingerprints_match);
      ("verdicts_match", J.Bool xc.xc_verdicts_match);
      ("ok", J.Bool (crosscheck_ok xc)) ]
