(** The benchmark harness (paper Fig. 1): two speakers, one router
    under test, three phases, transactions-per-second measured over the
    scenario's relevant phase only.

    Topology on one {!Bgp_engine.Clock}:
    {v  Speaker 1 (AS 65001) <---> Router (AS 65000) <---> Speaker 2 (AS 65002) v}

    The same harness runs in two modes: [Sim] (simulated channels on a
    discrete-event engine, virtual time, fully deterministic) and
    [Live] (real loopback TCP sockets on a select loop, wall-clock
    time).  Scenario code, verification, and the Loc-RIB fingerprint
    are mode-independent; {!cross_validate} asserts it.

    Phases:
    + Speaker 1 injects the routing table;
    + (scenarios 5-8) Speaker 2 connects and receives the router's full
      table;
    + the scenario's incremental activity (withdrawals or competing
      announcements).

    Setup phases always use large packets so that setup time — which is
    excluded from the metric anyway — stays small. *)

type mode =
  | Sim  (** simulated channels, virtual time, deterministic *)
  | Live  (** loopback TCP on a {!Bgp_tcp.Event_loop}, wall-clock time *)

val mode_name : mode -> string
(** ["sim"] / ["live"]. *)

type config = {
  mode : mode;
  table_size : int;          (** prefixes in the injected table *)
  large_packing : int;       (** prefixes per "large" UPDATE (paper: 500) *)
  cross_traffic : Bgp_netsim.Traffic.t;
  seed : int;                (** table generation seed *)
  trace_interval : float option;
      (** sample CPU load every n virtual seconds (figures 3/4/6) *)
  setup_path_len : int;      (** Speaker 1's AS-path length *)
  longer_path_len : int;     (** Speaker 2's path in scenarios 5/6 *)
  shorter_path_len : int;    (** Speaker 2's path in scenarios 7/8 *)
  varied_paths : bool;
      (** inject an Internet-shaped table (2-6 hop paths, mixed
          origins/MEDs via {!Bgp_speaker.Table_io.synthesize}) instead
          of the paper's uniform-path workload — an ablation knob *)
  mrai : float option;
      (** enable MinRouteAdvertisementInterval batching on the router
          (RFC 4271 section 9.2.1.1) — an ablation knob, off in the
          paper's XORP setup *)
  timeout : float;
      (** clock-seconds guard per run — virtual in [Sim] (the default
          is effectively unbounded), wall-clock in [Live] (set a small
          real bound, e.g. 120) *)
  fault_rounds : int;
      (** fault injections per adversarial run (scenarios 9-10, 14) *)
  table_file : string option;
      (** load the Phase-1 table from a file — bgpmark text
          ({!Bgp_speaker.Table_io}) or an MRT TABLE_DUMP_V2 dump
          ({!Bgp_mrt.Mrt}), auto-detected — instead of synthesizing;
          overrides [table_size] with the file's entry count.  For
          scenario 13 the same file also supplies the BGP4MP update
          trace. *)
  damping : Bgp_rib.Damping.config option;
      (** RFC 2439 route flap damping on the router under test.  [None]
          (the default) leaves the update path byte-identical to a
          damping-free build; scenario 14 forces
          {!Bgp_rib.Damping.test_config} when unset. *)
  replay_speedup : float option;
      (** scenario 13 pacing: [None] replays the update trace unpaced
          (back-to-back, throughput mode); [Some x] honors the recorded
          inter-arrival times divided by [x] *)
  replay_events : int;
      (** scenario 13 synthesized-trace length; negative (the default)
          picks the generator's default (table_size/5, at least 20) *)
  churn : Bgp_speaker.Subscriber.config option;
      (** scenario 16 workload shape.  [None] (the default) derives
          {!Bgp_speaker.Subscriber.default} with [table_size]
          subscribers and this config's [seed]; an explicit config
          overrides [table_size] with its subscriber count *)
  tracer : Bgp_trace.Tracer.t option;
      (** record structured trace events (pipeline stage spans,
          scheduler occupancy, FSM transitions, fault fates) for the
          whole run; each (arch, scenario) cell traces under the
          process name ["<arch>/scenario-<id>"].  Observational only:
          results are identical with tracing on or off. *)
}

val default_config : config
(** [Sim] mode, 10000 prefixes, packing 500, no cross-traffic, seed 42,
    no trace, paths 3/6/1, timeout 500000 s, 5 fault rounds. *)

type fault_report = {
  fr_injected : int;           (** [faults.injected] counter *)
  fr_malformed_dropped : int;  (** malformed UPDATEs answered correctly *)
  fr_session_restarts : int;   (** sessions brought back to Established *)
  fr_reconverge_count : int;
  fr_reconverge_mean : float;  (** mean fault-to-recovered virtual secs *)
  fr_reconverge_max : float;
  fr_expected : (int * int) list;
      (** RFC 4271 (code, subcode) predicted per injected corruption *)
  fr_answered : (int * int) list;
      (** (code, subcode) of every NOTIFICATION the router transmitted *)
}

type damping_report = {
  dr_flaps : int;          (** penalty charges (withdrawals + attr changes) *)
  dr_suppressions : int;   (** routes pushed over the suppress threshold *)
  dr_reuses : int;         (** suppressed routes released by decay *)
  dr_suppressed_end : int; (** routes still suppressed at run end *)
  dr_reuse_latency_mean : float;
      (** mean suppression-to-reuse clock seconds *)
  dr_reuse_latency_max : float;
}

type churn_report = {
  cr_subscribers : int;
  cr_injection_s : float;
      (** phase A clock seconds, first UPDATE to last transaction *)
  cr_injection_tps : float;
  cr_churn_events : int;  (** session events processed in phase B *)
  cr_churn_s : float;
  cr_churn_tps : float;
  cr_sessions_up_end : int;
      (** oracle up-count when failover hits — the expected FIB size
          pre-sweep and the expected withdraw-sweep size *)
  cr_failover_s : float;
      (** peer loss to the last withdrawal landing at speaker 2 *)
  cr_sweep_count : int;
  cr_sweep_mean_s : float;  (** per-withdrawal failover latency *)
  cr_sweep_max_s : float;
  cr_metrics : Bgp_stats.Json.t;
      (** {!Bgp_stats.Metrics.to_json} dump of the router's registry at
          run end — the machine-readable stand-in for the BNG
          playbook's Prometheus targets *)
}

type result = {
  arch_name : string;
  scenario : Scenario.t;
  used : config;
  tps : float;              (** the Table III metric *)
  measured_prefixes : int;  (** transactions in the measured phase *)
  measure_seconds : float;
      (** clock duration of the measured phase (virtual or wall) *)
  setup_seconds : float;    (** phases excluded from the metric *)
  trace : Bgp_sim.Trace.sample list;
      (** CPU-load samples over the whole run (empty without
          [trace_interval]) *)
  fib_size_end : int;
  fib_stats : Bgp_fib.Fib.stats;
  rib_stats : Bgp_rib.Rib_manager.stats;
  stage_stats : Bgp_pipeline.Pipeline.stage_stat list;
      (** per-stage unit/batch/cycle breakdown over the measured phase *)
  msgs_rx : int;  (** wire messages received in the measured phase *)
  msgs_tx : int;  (** wire messages sent in the measured phase *)
  fwd_ratio_min : float;
      (** worst forwarding ratio observed (1.0 = no loss) *)
  faults : fault_report option;
      (** present for adversarial runs (scenarios 9-10, 14) only *)
  damping : damping_report option;
      (** present when the router ran with RFC 2439 damping enabled
          (scenario 14, or any run with [config.damping] set) *)
  churn : churn_report option;  (** present for scenario 16 only *)
  locrib_fp : string;
      (** Loc-RIB digest ({!Bgp_rib.Loc_rib.fingerprint}) at run end;
          equal across sim and live runs of the same scenario/seed.
          Scenario 16 fingerprints at peak state — after churn, before
          the failover empties the table — so the crosscheck compares a
          non-trivial RIB *)
  verified : (unit, string) Stdlib.result;
      (** scenario-specific semantic checks (see DESIGN.md §6) *)
}

val run : ?config:config -> Bgp_router.Arch.t -> Scenario.t -> result
(** Run one (architecture, scenario) cell.  Deterministic for a given
    config.  Adversarial scenarios (9-10) run [fault_rounds] rounds of
    fault → NOTIFICATION/teardown → reconnect → full re-announcement,
    so the measured phase covers [fault_rounds * table_size]
    transactions and [faults] is populated.

    Scenario 13 loads the MRT RIB from [table_file] (or synthesizes a
    dump in memory when unset) through Phase 1, then replays the
    dump's update trace through speaker 1 — unpaced or at
    [replay_speedup] × recorded timing — and verifies the final FIB and
    speaker 2's view against the trace's folded announce/withdraw
    effects.  Scenario 14 is the scenario-10 flap storm with damping
    forced on ({!Bgp_rib.Damping.test_config} unless [config.damping]
    overrides): from the second round on the re-announcements are
    suppressed, and the run completes only once the reuse timer has
    re-injected every withheld route ([damping] is populated).

    Scenario 16 runs the subscriber-edge churn workload ([config.churn]
    or its [table_size]-derived default): speaker 1 batch-injects the
    /32 pool against a [max_prefixes] limit of exactly the pool size
    with MRAI forced on (50 ms unless [config.mrai] overrides), the
    Markov churn plan replays as timed announce/withdraw/resync events,
    and finally speaker 1's link is cut — the full withdraw sweep is
    timed end-to-end as it drains at speaker 2.  Every phase verifies
    against the {!Bgp_speaker.Subscriber} plan oracle and [churn] is
    populated.
    @raise Failure if a phase fails to converge within the timeout
    (with a diagnostic of what was stuck). *)

val pp_result : Format.formatter -> result -> unit

val arena_json : unit -> Bgp_stats.Json.t
(** Snapshot of the process-global attribute arena
    ({!Bgp_route.Attrs.Interned.stats}): intern calls, hits, hit rate,
    live handles, approximate bytes saved, and whether sharing is on.
    Included in JSON payloads only — rendered tables never show it. *)

val result_json : result -> Bgp_stats.Json.t
(** Machine-readable form of one run — the per-cell record behind every
    [--json] CLI flag (fault report, mode, Loc-RIB fingerprint, and
    verification status included). *)

(** {1 Sim-vs-live cross-validation} *)

type crosscheck = {
  xc_arch : string;
  xc_scenario : Scenario.t;
  xc_sim : result;
  xc_live : result;
  xc_fingerprints_match : bool;
  xc_verdicts_match : bool;
}

val cross_validate :
  ?config:config -> ?live_timeout:float -> Bgp_router.Arch.t -> Scenario.t ->
  crosscheck
(** Run the same (architecture, scenario, seed) cell in both modes and
    compare routing outcomes.  Timings are expected to differ; the
    Loc-RIB fingerprints and the verification verdicts must not.
    [live_timeout] (default 120 s) bounds the wall-clock leg. *)

val crosscheck_ok : crosscheck -> bool
(** Fingerprints equal, verdicts agree, and the sim leg verified. *)

val pp_crosscheck : Format.formatter -> crosscheck -> unit
val crosscheck_json : crosscheck -> Bgp_stats.Json.t
