module Engine = Bgp_sim.Engine
module Channel = Bgp_netsim.Channel
module Arch = Bgp_router.Arch
module Router = Bgp_router.Router
module Speaker = Bgp_speaker.Speaker
module Workload = Bgp_speaker.Workload
module Peer = Bgp_route.Peer
module Ipv4 = Bgp_addr.Ipv4

type point = { n_peers : int; tps : float; avg_candidates : float }

type t = { arch_name : string; points : point list }

let speaker_identity i =
  let asn = Bgp_route.Asn.of_int (65001 + i) in
  let addr = Ipv4.of_octets 192 0 2 (i + 1) in
  (asn, addr)

let run_one arch ~table_size ~seed ~n =
  if n < 2 then invalid_arg "Peers_sweep: need at least 2 peers";
  let engine = Engine.create () in
  Engine.set_event_limit engine 500_000_000;
  let clock = Engine.clock engine in
  let router =
    Router.create clock arch
      ~local_asn:(Bgp_route.Asn.of_int 65000)
      ~router_id:(Ipv4.of_string_exn "10.255.0.1")
  in
  let speakers =
    List.init n (fun i ->
        let asn, addr = speaker_identity i in
        let channel = Channel.create engine () in
        let peer = Peer.make ~id:i ~asn ~router_id:addr ~addr in
        Router.attach_peer router ~peer ~link:(Channel.endpoint channel Channel.B);
        Speaker.create clock ~asn ~router_id:addr
          ~link:(Channel.endpoint channel Channel.A))
  in
  let table = Bgp_addr.Prefix_gen.table ~seed ~n:table_size () in
  let wait ~what cond =
    let deadline = Engine.now engine +. 500_000.0 in
    let rec go step =
      if cond () then ()
      else if Engine.now engine >= deadline then
        failwith ("Peers_sweep: timeout waiting for " ^ what)
      else begin
        Engine.run ~until:(Engine.now engine +. step) engine;
        go (Float.min 2.0 (step *. 1.5))
      end
    in
    go 0.01
  in
  (* Bring every session up, then inject the table from every speaker:
     speaker i uses path length (3 + i), so speaker 0 wins initially. *)
  List.iter Speaker.start speakers;
  wait ~what:"session establishment" (fun () ->
      List.for_all Speaker.established speakers);
  List.iteri
    (fun i s ->
      let asn, addr = speaker_identity i in
      ignore
        (Speaker.announce s ~packing:500
           ~attrs:(Workload.attrs ~speaker_asn:asn ~next_hop:addr ~path_len:(3 + i) ())
           table))
    speakers;
  let expected_setup = table_size * n in
  wait ~what:"multi-peer table load" (fun () ->
      (Router.counters router).Router.transactions >= expected_setup
      && Router.idle router);
  (* Measured phase: the last speaker takes over every prefix with a
     path that beats all others — an n-way decision + FIB replace per
     prefix. *)
  Router.reset_counters router;
  let rib_before = Bgp_rib.Rib_manager.stats (Router.rib router) in
  let last = List.nth speakers (n - 1) in
  let asn, addr = speaker_identity (n - 1) in
  ignore
    (Speaker.announce last ~packing:500
       ~attrs:(Workload.attrs ~speaker_asn:asn ~next_hop:addr ~path_len:1 ())
       table);
  wait ~what:"measured phase" (fun () ->
      (Router.counters router).Router.transactions >= table_size
      && Router.idle router);
  let counters = Router.counters router in
  let tps =
    match counters.Router.first_work_at, counters.Router.last_transaction_at with
    | Some t0, Some t1 when t1 > t0 -> float_of_int table_size /. (t1 -. t0)
    | _ -> 0.0
  in
  (* Every measured-phase decision sees one candidate per peer; sanity:
     it ran exactly one decision per prefix. *)
  let rib_after = Bgp_rib.Rib_manager.stats (Router.rib router) in
  let decisions =
    rib_after.Bgp_rib.Rib_manager.decisions_run
    - rib_before.Bgp_rib.Rib_manager.decisions_run
  in
  assert (decisions = table_size);
  { n_peers = n; tps; avg_candidates = float_of_int n }

let run ?(table_size = 2000) ?(seed = 42) ?(counts = [ 2; 4; 8; 16 ]) arch =
  { arch_name = arch.Arch.name;
    points = List.map (fun n -> run_one arch ~table_size ~seed ~n) counts }

let render t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "Peering-density scaling on %s (incremental best-path takeover):\n"
       t.arch_name);
  Buffer.add_string b "  peers   transactions/s   candidates/decision\n";
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "  %5d   %14.1f   %19.1f\n" p.n_peers p.tps
           p.avg_candidates))
    t.points;
  Buffer.contents b

let to_json t =
  let module J = Bgp_stats.Json in
  J.Obj
    [ ("name", J.Str "peers-sweep");
      ("arch", J.Str t.arch_name);
      ( "points",
        J.List
          (List.map
             (fun p ->
               J.Obj
                 [ ("n_peers", J.Int p.n_peers);
                   ("tps", J.Float p.tps);
                   ("avg_candidates", J.Float p.avg_candidates) ])
             t.points) ) ]
