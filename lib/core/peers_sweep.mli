(** Extension experiment: peering-density scaling.

    The paper's benchmark uses exactly two speakers.  Real routers peer
    with dozens of neighbors, and every additional Adj-RIB-In adds a
    candidate to each decision.  This experiment grows the speaker
    count: all N speakers inject the same table (with per-speaker path
    lengths so one of them wins), then the winner re-announces every
    prefix with a better path — scenario-7 work with an N-way decision
    per prefix — and we measure how transactions/s falls off with N. *)

type point = {
  n_peers : int;
  tps : float;
  avg_candidates : float;
      (** mean decision candidates per processed prefix in the
          measured phase *)
}

type t = {
  arch_name : string;
  points : point list;  (** ascending [n_peers] *)
}

val run :
  ?table_size:int -> ?seed:int -> ?counts:int list -> Bgp_router.Arch.t -> t
(** Defaults: table 2000, seed 42, counts [2; 4; 8; 16].
    @raise Invalid_argument for counts below 2. *)

val render : t -> string

val to_json : t -> Bgp_stats.Json.t
(** Machine-readable sweep (the [bgpbench peers --json] payload). *)
