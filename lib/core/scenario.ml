type operation =
  | Startup_announce
  | Ending_withdraw
  | Incremental_no_fib_change
  | Incremental_fib_change
  | Corrupted_storm
  | Session_flaps
  | Topo_convergence
  | Topo_link_failure
  | Mrt_replay
  | Flap_damping
  | Subscriber_churn

type packet_size = Small | Large

type t = { id : int; operation : operation; packet_size : packet_size }

let all =
  [ { id = 1; operation = Startup_announce; packet_size = Small };
    { id = 2; operation = Startup_announce; packet_size = Large };
    { id = 3; operation = Ending_withdraw; packet_size = Small };
    { id = 4; operation = Ending_withdraw; packet_size = Large };
    { id = 5; operation = Incremental_no_fib_change; packet_size = Small };
    { id = 6; operation = Incremental_no_fib_change; packet_size = Large };
    { id = 7; operation = Incremental_fib_change; packet_size = Small };
    { id = 8; operation = Incremental_fib_change; packet_size = Large } ]

(* Adversarial extensions (not part of the paper's Table I, so not in
   [all]: Table III iterates [all] and must keep its exact shape). *)
let adversarial =
  [ { id = 9; operation = Corrupted_storm; packet_size = Large };
    { id = 10; operation = Session_flaps; packet_size = Large } ]

(* Multi-router topology scenarios (driven by [Bgp_topo], not by the
   single-DUT harness; packet size is per-decision advertisement, i.e.
   small, as the routers advertise XORP-style). *)
let topo =
  [ { id = 11; operation = Topo_convergence; packet_size = Small };
    { id = 12; operation = Topo_link_failure; packet_size = Small } ]

(* Real-trace scenarios: MRT table load + update replay, and the flap
   storm with RFC 2439 damping enabled (also outside Table I/III). *)
let mrt =
  [ { id = 13; operation = Mrt_replay; packet_size = Large };
    { id = 14; operation = Flap_damping; packet_size = Large } ]

(* Subscriber-edge churn (scenario 16): batched /32 injection,
   steady-state session churn, failover sweep.  Scenario 15 (partitioned
   multi-domain) is driven by [Bgp_topo.Pengine] and has no Scenario.t;
   16 goes through the single-DUT harness, so it does. *)
let churn = [ { id = 16; operation = Subscriber_churn; packet_size = Large } ]

let is_adversarial t =
  match t.operation with
  | Corrupted_storm | Session_flaps -> true
  | _ -> false

let is_topo t =
  match t.operation with
  | Topo_convergence | Topo_link_failure -> true
  | _ -> false

let is_mrt t =
  match t.operation with Mrt_replay | Flap_damping -> true | _ -> false

let is_churn t =
  match t.operation with Subscriber_churn -> true | _ -> false

let of_id id =
  List.find_opt (fun s -> s.id = id) (all @ adversarial @ topo @ mrt @ churn)

let of_id_exn id =
  match of_id id with
  | Some s -> s
  | None ->
    invalid_arg (Printf.sprintf "Scenario.of_id_exn: %d not in 1-14, 16" id)

let packing ?(large = 500) t =
  match t.packet_size with Small -> 1 | Large -> large

let forwarding_table_changes t =
  match t.operation with
  | Startup_announce | Ending_withdraw | Incremental_fib_change -> true
  | Corrupted_storm | Session_flaps -> true  (* flush + re-install per fault *)
  | Topo_convergence | Topo_link_failure -> true  (* every node's FIB moves *)
  | Mrt_replay -> true (* withdrawals in the trace remove FIB routes *)
  | Flap_damping -> true (* flush + suppress + reuse re-install *)
  | Subscriber_churn -> true (* every Up/Down moves a /32; failover sweeps all *)
  | Incremental_no_fib_change -> false

let measures_phase t =
  match t.operation with Startup_announce -> 1 | _ -> 3

let uses_speaker2 t =
  match t.operation with
  | Incremental_no_fib_change | Incremental_fib_change -> true
  | Corrupted_storm | Session_flaps -> true  (* export side must recover too *)
  | Mrt_replay | Flap_damping -> true (* replay/flap effects observed at s2 *)
  | Subscriber_churn -> true (* churn + failover sweep observed at s2 *)
  | Startup_announce | Ending_withdraw | Topo_convergence | Topo_link_failure
    -> false

let name t = Printf.sprintf "scenario-%d" t.id

let op_string = function
  | Startup_announce -> "start-up table load (announcements)"
  | Ending_withdraw -> "ending (withdrawals)"
  | Incremental_no_fib_change -> "incremental, longer path (no FIB change)"
  | Incremental_fib_change -> "incremental, shorter path (FIB change)"
  | Corrupted_storm -> "adversarial: corrupted-update storm"
  | Session_flaps -> "adversarial: session flaps mid-measurement"
  | Topo_convergence -> "topology: announce/withdraw convergence sweep"
  | Topo_link_failure -> "topology: link failure and path hunting"
  | Mrt_replay -> "MRT: recorded table load + update-trace replay"
  | Flap_damping -> "MRT: flap storm under RFC 2439 route flap damping"
  | Subscriber_churn -> "churn: subscriber-edge /32 churn + failover (BNG scale)"

let describe t =
  Printf.sprintf "%s: %s, %s packets" (name t) (op_string t.operation)
    (match t.packet_size with Small -> "small" | Large -> "large")

let pp ppf t = Format.pp_print_string ppf (describe t)

let table1 () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "Table I: BGP benchmark scenarios\n";
  Buffer.add_string b
    "+----+----------------------+----------+-------------+--------+\n";
  Buffer.add_string b
    "| id | operation            | message  | FIB changes | packet |\n";
  Buffer.add_string b
    "+----+----------------------+----------+-------------+--------+\n";
  List.iter
    (fun s ->
      let op, msg =
        match s.operation with
        | Startup_announce -> ("start-up", "ANNOUNCE")
        | Ending_withdraw -> ("ending", "WITHDRAW")
        | Incremental_no_fib_change -> ("incremental", "ANNOUNCE")
        | Incremental_fib_change -> ("incremental", "ANNOUNCE")
        | Corrupted_storm -> ("adversarial", "CORRUPT")
        | Session_flaps -> ("adversarial", "FLAP")
        | Topo_convergence -> ("topology", "ANNOUNCE")
        | Topo_link_failure -> ("topology", "CUT")
        | Mrt_replay -> ("mrt", "REPLAY")
        | Flap_damping -> ("mrt", "FLAP")
        | Subscriber_churn -> ("churn", "CHURN")
      in
      Buffer.add_string b
        (Printf.sprintf "| %2d | %-20s | %-8s | %-11s | %-6s |\n" s.id op msg
           (if forwarding_table_changes s then "yes" else "no")
           (match s.packet_size with Small -> "small" | Large -> "large")))
    all;
  Buffer.add_string b
    "+----+----------------------+----------+-------------+--------+\n";
  Buffer.contents b
