(** The eight benchmark scenarios (paper Table I).

    Three orthogonal knobs: BGP operation (start-up table load, ending
    withdrawals, incremental updates), whether the forwarding table
    changes, and UPDATE packing (one prefix per message vs. 500). *)

type operation =
  | Startup_announce    (** Phase 1 table injection (scenarios 1-2) *)
  | Ending_withdraw     (** Phase 3 withdrawal of the table (3-4) *)
  | Incremental_no_fib_change
      (** Speaker 2 re-announces with a longer AS path (5-6) *)
  | Incremental_fib_change
      (** Speaker 2 re-announces with a shorter AS path (7-8) *)
  | Corrupted_storm
      (** Adversarial (9): rounds of pre-validated corrupted UPDATEs;
          each must draw the exact RFC 4271 NOTIFICATION, then the
          session recovers and the table re-converges *)
  | Session_flaps
      (** Adversarial (10): repeated session flaps (CEASE and TCP
          reset alternating) mid-measurement, re-convergence timed *)
  | Topo_convergence
      (** Topology (11): single-origin announce/withdraw convergence
          over a multi-router graph, swept over topology size (driven
          by [Bgp_topo], not this harness) *)
  | Topo_link_failure
      (** Topology (12): cut a link mid-graph and measure path hunting
          plus re-convergence (driven by [Bgp_topo]) *)
  | Mrt_replay
      (** MRT (13): load a recorded (or synthesized) TABLE_DUMP_V2 RIB
          through Phase 1, then replay the dump's BGP4MP update trace
          and measure msgs/s and per-stage costs against the synthetic
          equivalent *)
  | Flap_damping
      (** MRT (14): the scenario-10 flap storm with RFC 2439 damping
          enabled — suppressed-prefix counts, reuse-timer latencies,
          and convergence deltas against the undamped run *)
  | Subscriber_churn
      (** Churn (16): BNG/WISP subscriber-edge workload — N /32 session
          routes injected in rate-limited batches, steady-state Markov
          up/down churn with [max_prefixes] and MRAI active, then a
          failover (peer loss) whose full withdraw sweep is timed
          end-to-end against the {!Bgp_speaker.Subscriber} oracle *)

type packet_size = Small | Large

type t = { id : int; operation : operation; packet_size : packet_size }

val all : t list
(** Scenarios 1-8 in Table I order.  Deliberately excludes the
    adversarial extensions so Table III keeps the paper's exact
    shape. *)

val adversarial : t list
(** The fault-injection scenarios 9-10 (not part of the paper). *)

val topo : t list
(** The multi-router topology scenarios 11-12 (not part of the paper);
    they run through [Bgp_topo], and {!Harness.run} rejects them. *)

val mrt : t list
(** The real-trace scenarios 13-14 (MRT replay, flap damping). *)

val churn : t list
(** The subscriber-edge churn scenario 16.  (15, the partitioned
    multi-domain sweep, runs through [Bgp_topo.Pengine] and has no
    [Scenario.t].) *)

val is_adversarial : t -> bool

val is_topo : t -> bool

val is_mrt : t -> bool

val is_churn : t -> bool

val of_id : int -> t option
(** Scenario by number: 1-8 from Table I, 9-10 adversarial, 11-12
    topology, 13-14 MRT/damping, 16 subscriber churn. *)

val of_id_exn : int -> t

val packing : ?large:int -> t -> int
(** Prefixes per UPDATE: 1 for [Small], [large] (default 500) for
    [Large]. *)

val forwarding_table_changes : t -> bool
(** The "Forwarding Table Changes" row of Table I. *)

val measures_phase : t -> int
(** Which benchmark phase the transactions/second metric covers: 1 for
    scenarios 1-2, 3 for the rest. *)

val uses_speaker2 : t -> bool
(** Scenarios 5-8 need the second speaker (and hence Phase 2). *)

val name : t -> string
(** e.g. ["scenario-5"] *)

val describe : t -> string
val pp : Format.formatter -> t -> unit

val table1 : unit -> string
(** Rendered Table I. *)
