type t = {
  config : Harness.config;
  cells : (string * (int * Harness.result) list) list;
}

let paper =
  [ (1, [ ("pentium3", 185.2); ("xeon", 2105.3); ("ixp2400", 24.1); ("cisco3620", 10.7) ]);
    (2, [ ("pentium3", 312.5); ("xeon", 2247.2); ("ixp2400", 36.4); ("cisco3620", 2492.9) ]);
    (3, [ ("pentium3", 204.1); ("xeon", 2898.6); ("ixp2400", 26.7); ("cisco3620", 10.4) ]);
    (4, [ ("pentium3", 344.8); ("xeon", 1941.7); ("ixp2400", 43.5); ("cisco3620", 2927.5) ]);
    (5, [ ("pentium3", 1111.1); ("xeon", 3389.8); ("ixp2400", 85.7); ("cisco3620", 10.9) ]);
    (6, [ ("pentium3", 3636.4); ("xeon", 10000.0); ("ixp2400", 230.8); ("cisco3620", 3332.3) ]);
    (7, [ ("pentium3", 116.6); ("xeon", 784.3); ("ixp2400", 11.6); ("cisco3620", 10.7) ]);
    (8, [ ("pentium3", 118.7); ("xeon", 673.4); ("ixp2400", 14.9); ("cisco3620", 2445.2) ]) ]

let paper_value ~scenario ~arch =
  Option.bind (List.assoc_opt scenario paper) (List.assoc_opt arch)

let run ?(config = Harness.default_config) ?(archs = Bgp_router.Arch.all)
    ?(scenarios = Scenario.all) () =
  let cells =
    List.map
      (fun arch ->
        ( arch.Bgp_router.Arch.name,
          List.map
            (fun sc -> (sc.Scenario.id, Harness.run ~config arch sc))
            scenarios ))
      archs
  in
  { config; cells }

let result t ~scenario ~arch =
  Option.bind (List.assoc_opt arch t.cells) (List.assoc_opt scenario)

let tps t ~scenario ~arch =
  Option.map (fun r -> r.Harness.tps) (result t ~scenario ~arch)

let render ?(compare_paper = true) t =
  let archs = List.map fst t.cells in
  let scenario_ids =
    match t.cells with [] -> [] | (_, rs) :: _ -> List.map fst rs
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "Table III: BGP performance without cross-traffic (transactions/s)\n\
        table size %d, large packing %d\n\n"
       t.config.Harness.table_size t.config.Harness.large_packing);
  Buffer.add_string b (Printf.sprintf "%-12s" "");
  List.iter (fun a -> Buffer.add_string b (Printf.sprintf "%12s" a)) archs;
  Buffer.add_char b '\n';
  List.iter
    (fun sid ->
      Buffer.add_string b (Printf.sprintf "%-12s" (Printf.sprintf "Scenario %d" sid));
      List.iter
        (fun arch ->
          match tps t ~scenario:sid ~arch with
          | Some v -> Buffer.add_string b (Printf.sprintf "%12.1f" v)
          | None -> Buffer.add_string b (Printf.sprintf "%12s" "-"))
        archs;
      Buffer.add_char b '\n';
      if compare_paper then begin
        Buffer.add_string b (Printf.sprintf "%-12s" "  (x paper)");
        List.iter
          (fun arch ->
            match tps t ~scenario:sid ~arch, paper_value ~scenario:sid ~arch with
            | Some v, Some p when p > 0.0 ->
              Buffer.add_string b (Printf.sprintf "%12s" (Printf.sprintf "x%.2f" (v /. p)))
            | _ -> Buffer.add_string b (Printf.sprintf "%12s" "-"))
          archs;
        Buffer.add_char b '\n'
      end)
    scenario_ids;
  (* verification summary *)
  let failures =
    List.concat_map
      (fun (arch, rs) ->
        List.filter_map
          (fun (sid, r) ->
            match r.Harness.verified with
            | Ok () -> None
            | Error e -> Some (Printf.sprintf "%s/scenario %d: %s" arch sid e))
          rs)
      t.cells
  in
  (match failures with
  | [] -> Buffer.add_string b "\nAll semantic verifications passed.\n"
  | fs ->
    Buffer.add_string b "\nVERIFICATION FAILURES:\n";
    List.iter (fun f -> Buffer.add_string b ("  " ^ f ^ "\n")) fs);
  Buffer.contents b

let shape_checks t =
  let v ~scenario ~arch = Option.value ~default:nan (tps t ~scenario ~arch) in
  let all_scen f = List.for_all f [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  [ ( "dual-core >= ~6x uni-core on every scenario",
      all_scen (fun s -> v ~scenario:s ~arch:"xeon" >= 5.0 *. v ~scenario:s ~arch:"pentium3") );
    ( "uni-core >= ~6x network processor on every scenario",
      all_scen (fun s ->
          v ~scenario:s ~arch:"pentium3" >= 5.0 *. v ~scenario:s ~arch:"ixp2400") );
    ( "commercial beats dual-core exactly on scenarios 2, 4, 8",
      all_scen (fun s ->
          let cisco_wins = v ~scenario:s ~arch:"cisco3620" > v ~scenario:s ~arch:"xeon" in
          cisco_wins = List.mem s [ 2; 4; 8 ]) );
    ( "commercial slower than network processor on small packets",
      List.for_all
        (fun s -> v ~scenario:s ~arch:"cisco3620" < v ~scenario:s ~arch:"ixp2400")
        [ 1; 3; 5; 7 ] );
    ( "no-FIB-change scenarios are each system's fastest",
      List.for_all
        (fun arch ->
          let m56 = Float.max (v ~scenario:5 ~arch) (v ~scenario:6 ~arch) in
          List.for_all (fun s -> m56 >= v ~scenario:s ~arch) [ 1; 2; 3; 4; 7; 8 ])
        [ "pentium3"; "xeon"; "ixp2400" ] );
    ( "large packets beat small packets on start-up scenarios",
      List.for_all
        (fun arch ->
          v ~scenario:2 ~arch > v ~scenario:1 ~arch
          && v ~scenario:4 ~arch > v ~scenario:3 ~arch)
        [ "pentium3"; "xeon"; "ixp2400"; "cisco3620" ] );
    ( "scenario 7 ~ scenario 8 on XORP systems (within 2x)",
      List.for_all
        (fun arch ->
          let a = v ~scenario:7 ~arch and b = v ~scenario:8 ~arch in
          Float.max a b <= 2.0 *. Float.min a b)
        [ "pentium3"; "xeon"; "ixp2400" ] ) ]

let to_json t =
  let module J = Bgp_stats.Json in
  J.Obj
    [ ("name", J.Str "table3");
      ("table_size", J.Int t.config.Harness.table_size);
      ("seed", J.Int t.config.Harness.seed);
      ( "cells",
        J.List
          (List.concat_map
             (fun (_, results) ->
               List.map (fun (_, r) -> Harness.result_json r) results)
             t.cells) );
      ( "shape_checks",
        J.Obj
          (List.map (fun (desc, ok) -> (desc, J.Bool ok)) (shape_checks t)) );
      ("arena", Harness.arena_json ()) ]
