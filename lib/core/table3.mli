(** Reproduction of Table III: BGP performance without cross-traffic,
    transactions per second, 8 scenarios x 4 systems. *)

type t = {
  config : Harness.config;
  cells : (string * (int * Harness.result) list) list;
      (** per architecture name, per scenario id *)
}

val paper : (int * (string * float) list) list
(** The published Table III numbers, [(scenario id, [(arch, tps)])] —
    kept here so reports and tests can compare shapes against the
    paper. *)

val paper_value : scenario:int -> arch:string -> float option

val run :
  ?config:Harness.config -> ?archs:Bgp_router.Arch.t list ->
  ?scenarios:Scenario.t list -> unit -> t
(** Defaults: all four architectures, all eight scenarios. *)

val result : t -> scenario:int -> arch:string -> Harness.result option

val render : ?compare_paper:bool -> t -> string
(** The table, formatted like the paper's (plus measured-vs-paper
    ratios when [compare_paper], default true). *)

val shape_checks : t -> (string * bool) list
(** The DESIGN.md §5 shape criteria evaluated on this run:
    each [(description, holds?)]. *)

val to_json : t -> Bgp_stats.Json.t
(** The whole table plus its shape-check verdicts, machine-readable
    (the [bgpbench table3 --json] payload). *)
