type handle = { h_cancel : unit -> unit; h_cancelled : unit -> bool }

type t = {
  label : string;
  c_now : unit -> float;
  c_schedule_at : time:float -> (unit -> unit) -> handle;
  c_post : (unit -> unit) -> unit;
  c_run : cond:(unit -> bool) -> step:float -> bool;
}

let make ~label ~now ~schedule_at ~post ~run_window =
  { label; c_now = now; c_schedule_at = schedule_at; c_post = post;
    c_run = run_window }

let handle ~cancel ~cancelled = { h_cancel = cancel; h_cancelled = cancelled }

let label t = t.label
let now t = t.c_now ()
let schedule_at t ~time fn = t.c_schedule_at ~time fn

let schedule t ~delay fn =
  t.c_schedule_at ~time:(t.c_now () +. Float.max 0.0 delay) fn

let cancel h = h.h_cancel ()
let cancelled h = h.h_cancelled ()
let post t fn = t.c_post fn
let run t ~cond ~step = t.c_run ~cond ~step
