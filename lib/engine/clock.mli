(** One clock over simulated and real time.

    Every layer that schedules work — FSM hold/keepalive timers, the
    CPU scheduler's job completions, MRAI pacing, fault restart timers,
    convergence drivers — goes through this capability interface rather
    than through a concrete event source.  Two implementations exist:

    - {!Bgp_sim.Engine.clock}: virtual time on the discrete-event heap;
    - {!Bgp_tcp.Event_loop.clock}: monotonic wall-clock time on the
      [select] loop.

    Both provide identical semantics, spelled out per operation below,
    so a scenario written against this interface runs unchanged in
    simulation and over real sockets.

    Semantics table (the contract both implementations satisfy):

    - time is in seconds, starts near 0, and never decreases;
    - events scheduled for the same instant fire in scheduling (FIFO)
      order;
    - a delay [<= 0] (or an absolute time in the past) schedules for
      the current instant — the callback never runs synchronously
      inside [schedule], only from a later pump;
    - {!cancel} is idempotent, a no-op after the event fired, and safe
      to call from inside the firing callback itself;
    - {!post} runs a thunk from the next pump, after the events already
      due; posting from inside a callback is allowed and preserves
      order. *)

type handle
(** A scheduled event, cancellable until it fires. *)

type t

val make :
  label:string ->
  now:(unit -> float) ->
  schedule_at:(time:float -> (unit -> unit) -> handle) ->
  post:((unit -> unit) -> unit) ->
  run_window:(cond:(unit -> bool) -> step:float -> bool) ->
  t
(** Implementor-side constructor; see {!Bgp_sim.Engine.clock} and
    {!Bgp_tcp.Event_loop.clock} for the two canonical instances. *)

val handle : cancel:(unit -> unit) -> cancelled:(unit -> bool) -> handle
(** Implementor-side constructor for handles. *)

val label : t -> string
(** ["sim"] or ["live"] for the canonical implementations; used in
    diagnostics only. *)

val now : t -> float
(** Current time, seconds.  Virtual on a simulated clock, monotonic
    elapsed wall-clock on a live one. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. max 0. delay]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Absolute-time variant; a [time] in the past fires at [now]. *)

val cancel : handle -> unit
(** Idempotent; cancelling a fired event is a no-op, including from
    inside the firing callback. *)

val cancelled : handle -> bool

val post : t -> (unit -> unit) -> unit
(** Run a thunk from the pump's next iteration (breaks reentrancy). *)

val run : t -> cond:(unit -> bool) -> step:float -> bool
(** Pump the clock for (up to) [step] seconds of its own time and
    return [cond ()].  A simulated clock processes the whole window at
    virtual speed; a live clock sleeps/selects through it in real time
    and may return as soon as [cond] holds.  [cond] must be free of
    side effects: implementations may evaluate it at different
    granularities. *)
