type fate = Pass | Drop | Deliver of string * float

type t = {
  send : string -> unit;
  start_connect : unit -> unit;
  close : unit -> unit;
  set_receiver : (string -> unit) -> unit;
  set_on_connected : (unit -> unit) -> unit;
  set_on_closed : (unit -> unit) -> unit;
  set_tap : (string -> fate) option -> unit;
}

let tap t f = t.set_tap (Some f)
let clear_tap t = t.set_tap None
