(** One endpoint of a bidirectional byte transport.

    The transport-facing twin of {!Clock}: a BGP session speaks to its
    peer through this record whether the bytes ride a simulated
    {!Bgp_netsim.Channel} (with modelled latency and serialization) or
    a real TCP socket on a {!Bgp_tcp.Event_loop}.  Routers, speakers,
    and the fault injector are written against it and never name a
    concrete transport.

    An endpoint owns one direction of transmission ([send]) plus the
    callbacks for its own side (receiver, connected, closed) and an
    outbound tap used by fault injection. *)

type fate =
  | Pass
  | Drop
  | Deliver of string * float
      (** possibly-tampered payload, extra delivery delay *)

type t = {
  send : string -> unit;  (** transmit wire bytes toward the peer *)
  start_connect : unit -> unit;
      (** initiate the transport connection (active opener only; no-op
          on a listening side) *)
  close : unit -> unit;  (** tear the connection down *)
  set_receiver : (string -> unit) -> unit;
      (** bytes arrived from the peer *)
  set_on_connected : (unit -> unit) -> unit;
  set_on_closed : (unit -> unit) -> unit;
  set_tap : (string -> fate) option -> unit;
      (** intercept this endpoint's outbound transmissions; [None]
          clears *)
}

val tap : t -> (string -> fate) -> unit
val clear_tap : t -> unit
