module Clock = Bgp_engine.Clock
module Link = Bgp_engine.Link
module Rng = Bgp_sim.Rng
module Msg = Bgp_wire.Msg
module Codec = Bgp_wire.Codec
module Metrics = Bgp_stats.Metrics

type profile = {
  seed : int;
  corrupt_prob : float;
  truncate_prob : float;
  drop_prob : float;
  reorder_prob : float;
  reorder_delay : float;
  blackhole : (float * float) option;
}

let none =
  { seed = 0; corrupt_prob = 0.0; truncate_prob = 0.0; drop_prob = 0.0;
    reorder_prob = 0.0; reorder_delay = 0.0; blackhole = None }

let is_active p =
  p.corrupt_prob > 0.0 || p.truncate_prob > 0.0 || p.drop_prob > 0.0
  || p.reorder_prob > 0.0 || p.blackhole <> None

type t = {
  clock : Clock.t;
  prof : profile;
  rng : Rng.t;
  c_injected : Metrics.counter;
  c_malformed_dropped : Metrics.counter;
  c_session_restarts : Metrics.counter;
  h_reconverge : Metrics.histogram;
  mutable armed : int;                       (* one-shot corruptions pending *)
  mutable expected_rev : Msg.error list;     (* all predictions, reversed *)
  mutable expect_queue : Msg.error list;     (* predictions not yet answered *)
  mutable seen_rev : Msg.error list;         (* observed NOTIFICATIONs, reversed *)
  trace : (Bgp_trace.Tracer.t * Bgp_trace.Tracer.track) option;
}

let create ?(profile = none) ?tracer ?(trace_process = "bgpmark") ~clock
    ~metrics () =
  { clock; prof = profile; rng = Rng.create profile.seed;
    c_injected = Metrics.counter metrics "faults.injected";
    c_malformed_dropped = Metrics.counter metrics "faults.malformed_dropped";
    c_session_restarts = Metrics.counter metrics "faults.session_restarts";
    h_reconverge = Metrics.histogram metrics "faults.reconverge_seconds";
    armed = 0; expected_rev = []; expect_queue = []; seen_rev = [];
    trace =
      Option.map
        (fun tr ->
          (tr, Bgp_trace.Tracer.track tr ~process:trace_process ~thread:"faults" ()))
        tracer }

let trace_fate t ~fate ~detail =
  match t.trace with
  | Some (tr, tk) ->
    Bgp_trace.Tracer.fault tr tk ~ts:(Clock.now t.clock) ~fate ~detail
  | None -> ()

let profile t = t.prof

(* ------------------------------------------------------------------ *)
(* The corruption oracle                                               *)
(* ------------------------------------------------------------------ *)

(* The router's framer raises either at the header layer
   (required_length) or, once the full declared length is buffered, at
   the body layer (decode_at).  Predicting which — on the exact mutant
   byte image — is what lets the adversarial scenarios assert the
   precise NOTIFICATION code/subcode the router must answer with. *)
let predict wire =
  let avail = String.length wire in
  match Codec.required_length wire ~pos:0 ~avail with
  | Error e -> Some e
  | Ok None -> None (* shorter than a header: the framer would stall *)
  | Ok (Some need) ->
    if need > avail then None (* declared length overruns: stalls *)
    else (
      match Codec.decode_at wire ~pos:0 with
      | Error e -> Some e
      | Ok _ -> None)

let flip_byte rng wire =
  let b = Bytes.of_string wire in
  let pos = Rng.int rng (Bytes.length b) in
  let delta = 1 + Rng.int rng 255 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor delta));
  Bytes.to_string b

(* Cut the tail and rewrite the header length to match, so the mutant
   still frames as one complete (but internally truncated) message —
   truncation without the length fixup would merely stall the framer
   waiting for bytes that never come. *)
let truncate_fixup rng wire =
  let n = String.length wire in
  if n <= Msg.header_len then None
  else begin
    let cut = 1 + Rng.int rng (n - Msg.header_len) in
    let total = n - cut in
    let b = Bytes.sub (Bytes.unsafe_of_string wire) 0 total in
    Bytes.set b 16 (Char.chr ((total lsr 8) land 0xFF));
    Bytes.set b 17 (Char.chr (total land 0xFF));
    Some (Bytes.unsafe_to_string b)
  end

let corrupt t wire =
  let rec go tries =
    if tries = 0 then None
    else
      let cand =
        if Rng.bool t.rng then
          match truncate_fixup t.rng wire with
          | Some c -> c
          | None -> flip_byte t.rng wire
        else flip_byte t.rng wire
      in
      match predict cand with
      | Some e -> Some (cand, e)
      | None -> go (tries - 1)
  in
  go 256

(* ------------------------------------------------------------------ *)
(* Taps                                                                *)
(* ------------------------------------------------------------------ *)

let is_update wire =
  String.length wire > 18 && Char.code wire.[18] = 2

let blackholed t =
  match t.prof.blackhole with
  | Some (t0, t1) ->
    let now = Clock.now t.clock in
    now >= t0 && now < t1
  | None -> false

let draw t p = p > 0.0 && Rng.float t.rng 1.0 < p

let apply_faults t wire =
  if t.armed > 0 && is_update wire then begin
    t.armed <- t.armed - 1;
    match corrupt t wire with
    | Some (mutant, err) ->
      t.expected_rev <- err :: t.expected_rev;
      t.expect_queue <- t.expect_queue @ [ err ];
      Metrics.incr t.c_injected;
      let code, sub = Msg.error_code err in
      trace_fate t ~fate:"corrupt-armed"
        ~detail:(Printf.sprintf "expect NOTIFICATION %d/%d" code sub);
      Link.Deliver (mutant, 0.0)
    | None -> Link.Pass
  end
  else if blackholed t then begin
    Metrics.incr t.c_injected;
    trace_fate t ~fate:"blackhole" ~detail:"";
    Link.Drop
  end
  else if draw t t.prof.truncate_prob then (
    match truncate_fixup t.rng wire with
    | Some mutant ->
      Metrics.incr t.c_injected;
      trace_fate t ~fate:"truncate" ~detail:"";
      Link.Deliver (mutant, 0.0)
    | None -> Link.Pass)
  else if draw t t.prof.corrupt_prob then begin
    Metrics.incr t.c_injected;
    trace_fate t ~fate:"bitflip" ~detail:"";
    Link.Deliver (flip_byte t.rng wire, 0.0)
  end
  else if draw t t.prof.drop_prob then begin
    Metrics.incr t.c_injected;
    trace_fate t ~fate:"drop" ~detail:"";
    Link.Drop
  end
  else if draw t t.prof.reorder_prob then begin
    Metrics.incr t.c_injected;
    trace_fate t ~fate:"reorder" ~detail:"";
    Link.Deliver (wire, Rng.float t.rng t.prof.reorder_delay)
  end
  else Link.Pass

let tap_adversarial t (link : Link.t) = Link.tap link (apply_faults t)

let same_code e e' = Msg.error_code e = Msg.error_code e'

let note_notification t e =
  t.seen_rev <- e :: t.seen_rev;
  let code, sub = Msg.error_code e in
  trace_fate t ~fate:"notification"
    ~detail:(Printf.sprintf "%d/%d" code sub);
  match t.expect_queue with
  | expected :: rest when same_code expected e ->
    t.expect_queue <- rest;
    Metrics.incr t.c_malformed_dropped
  | _ -> ()

let observe_notifications t (link : Link.t) =
  Link.tap link (fun wire ->
      (match Codec.decode wire with
      | Ok (Msg.Notification e) -> note_notification t e
      | _ -> ());
      Link.Pass)

(* ------------------------------------------------------------------ *)
(* Armed faults and bookkeeping                                        *)
(* ------------------------------------------------------------------ *)

let arm_corrupt_next t = t.armed <- t.armed + 1
let expected_errors t = List.rev t.expected_rev
let notifications_seen t = List.rev t.seen_rev
let all_answered t = t.armed = 0 && t.expect_queue = []

let note_session_fault t =
  Metrics.incr t.c_injected;
  trace_fate t ~fate:"session-fault" ~detail:""

let note_session_restart t =
  Metrics.incr t.c_session_restarts;
  trace_fate t ~fate:"session-restart" ~detail:""
let observe_reconvergence t d = Metrics.observe t.h_reconverge d

let injected t = Metrics.value t.c_injected
let malformed_dropped t = Metrics.value t.c_malformed_dropped
let session_restarts t = Metrics.value t.c_session_restarts

let reconvergence_stats t =
  ( Metrics.hist_count t.h_reconverge,
    Metrics.hist_mean t.h_reconverge,
    Metrics.hist_max t.h_reconverge )
