(** Deterministic, seed-driven fault injection for adversarial BGP
    workloads.

    The paper's eight scenarios assume well-formed, well-behaved
    peers.  This layer threads controlled misbehavior through the
    simulated transport so the harness can also characterize the
    router's error paths:

    - {b byte-level faults} — corruption and truncation of encoded
      messages between a {!Bgp_speaker.Speaker} and the router's
      framer, each mutation pre-validated through the codec so the
      RFC 4271 NOTIFICATION the router must answer with is known in
      advance;
    - {b session faults} — unsolicited TCP resets (transport close
      under the session), speaker-initiated CEASE + reconnect
      flaps, and hold-timer starvation (a blackhole window longer than
      the negotiated hold time);
    - {b channel impairments} — probabilistic loss, reordering (extra
      per-message delay), applied below BGP's TCP reliability
      assumption, which is exactly why they must never crash the
      decoder or the FSM.

    Everything is off by default ({!none}); a profile only takes
    effect on channels explicitly tapped.  All randomness flows from
    one {!Bgp_sim.Rng} stream seeded by the profile, so identical
    profiles replay identical fault sequences.

    Counters registered in the router's metrics registry —
    [faults.injected], [faults.malformed_dropped],
    [faults.session_restarts], and the [faults.reconverge_seconds]
    histogram — surface in the harness per-stage breakdown, the bench
    smoke run, and [bgpbench] output. *)

type profile = {
  seed : int;
  corrupt_prob : float;   (** chance a sent message is byte-flipped *)
  truncate_prob : float;  (** chance a sent message is truncated *)
  drop_prob : float;      (** chance a sent message is lost *)
  reorder_prob : float;   (** chance a message takes the slow path *)
  reorder_delay : float;  (** extra delay (s) for reordered messages *)
  blackhole : (float * float) option;
      (** absolute virtual-time window during which every tapped
          message is dropped — starves the hold timer *)
}

val none : profile
(** All probabilities zero, no blackhole: a tapped channel behaves
    exactly like an untapped one. *)

val is_active : profile -> bool

type t
(** A fault injector bound to one clock and metrics registry. *)

val create :
  ?profile:profile ->
  ?tracer:Bgp_trace.Tracer.t ->
  ?trace_process:string ->
  clock:Bgp_engine.Clock.t ->
  metrics:Bgp_stats.Metrics.t ->
  unit ->
  t
(** Registers the [faults.*] counters/histogram in [metrics] (so a
    phase-boundary {!Bgp_stats.Metrics.reset_all} clears them with
    everything else).  Default profile {!none}.

    With [tracer], every injected fate (corrupt-armed, bitflip,
    truncate, drop, reorder, blackhole), observed NOTIFICATION and
    session fault/restart becomes an instant event on a
    [trace_process]/"faults" track (default process ["bgpmark"]). *)

val profile : t -> profile

(** {1 Channel taps} *)

val tap_adversarial : t -> Bgp_engine.Link.t -> unit
(** Install the fault tap on messages sent {e by} the given endpoint
    (normally the speaker side): applies armed one-shot corruptions
    first, then the profile's probabilistic truncation, corruption,
    blackhole, loss, and reordering.  Works on any
    {!Bgp_engine.Link.t} — simulated channel side or live TCP
    connection alike. *)

val observe_notifications : t -> Bgp_engine.Link.t -> unit
(** Install an observe-only tap recording every NOTIFICATION the given
    endpoint (normally the router side) {e transmits}.  Observation happens
    at send time because a teardown NOTIFICATION races the close that
    follows it (RST semantics) and may legitimately never be
    delivered. *)

(** {1 One-shot armed corruption (the corrupted-update storm)} *)

val arm_corrupt_next : t -> unit
(** Corrupt the next UPDATE that crosses the adversarial tap, using a
    mutation pre-validated to make decoding fail; the predicted
    RFC 4271 error is appended to {!expected_errors}. *)

val expected_errors : t -> Bgp_wire.Msg.error list
(** Predicted NOTIFICATIONs for every armed corruption, in injection
    order. *)

val notifications_seen : t -> Bgp_wire.Msg.error list
(** NOTIFICATIONs the observed side transmitted, in order. *)

val all_answered : t -> bool
(** Every expected error was answered by a transmitted NOTIFICATION
    with the matching RFC 4271 code/subcode, in order (extra
    notifications, e.g. hold-timer expiries under loss, are allowed
    in between). *)

(** {1 The corruption oracle (exposed for property tests)} *)

val corrupt : t -> string -> (string * Bgp_wire.Msg.error) option
(** [corrupt t wire] mutates an encoded message (byte flip or
    length-fixed truncation) until the codec predicts a definite
    decode error for the mutant; returns the mutant and the predicted
    error, or [None] if no failing mutation was found (practically
    impossible for real messages). Deterministic given the injector's
    RNG state. *)

val predict : string -> Bgp_wire.Msg.error option
(** The error the router-side framer must raise on this exact byte
    image, if it is guaranteed to raise at all: header-level errors
    from {!Bgp_wire.Codec.required_length}, otherwise body errors from
    {!Bgp_wire.Codec.decode_at}.  [None] means the image decodes
    cleanly or stalls waiting for more bytes. *)

(** {1 Session-fault bookkeeping (driven by the harness)} *)

val note_session_fault : t -> unit
(** A harness-initiated session fault (flap or reset) was injected. *)

val note_session_restart : t -> unit
(** A torn-down session came back to Established. *)

val observe_reconvergence : t -> float -> unit
(** Record one fault-to-recovered duration (seconds of virtual time)
    into the re-convergence histogram. *)

(** {1 Counter views} *)

val injected : t -> int
val malformed_dropped : t -> int
val session_restarts : t -> int

val reconvergence_stats : t -> int * float * float
(** (count, mean, max) of the re-convergence histogram. *)
