type t = {
  mutable buf : string;     (* unconsumed suffix semantics via [pos] *)
  mutable pos : int;
  mutable poisoned : Bgp_wire.Msg.error option;
}

let create () = { buf = ""; pos = 0; poisoned = None }

(* A new transport connection is a new byte stream: leftover bytes and
   any poison from the previous connection must not leak into it. *)
let reset t =
  t.buf <- "";
  t.pos <- 0;
  t.poisoned <- None

let compact t =
  if t.pos > 0 then begin
    t.buf <- String.sub t.buf t.pos (String.length t.buf - t.pos);
    t.pos <- 0
  end

let feed t bytes =
  if bytes <> "" then begin
    compact t;
    t.buf <- t.buf ^ bytes
  end

type result =
  | Msg of Bgp_wire.Msg.t * int
  | Need_more
  | Error of Bgp_wire.Msg.error

let buffered t = String.length t.buf - t.pos

let next t =
  match t.poisoned with
  | Some e -> Error e
  | None -> (
    let avail = buffered t in
    match Bgp_wire.Codec.required_length t.buf ~pos:t.pos ~avail with
    | Error e ->
      t.poisoned <- Some e;
      Error e
    | Ok None -> Need_more
    | Ok (Some need) ->
      if avail < need then Need_more
      else (
        match Bgp_wire.Codec.decode_at t.buf ~pos:t.pos with
        | Ok (msg, consumed) ->
          t.pos <- t.pos + consumed;
          if t.pos = String.length t.buf then begin
            t.buf <- "";
            t.pos <- 0
          end;
          Msg (msg, consumed)
        | Error e ->
          t.poisoned <- Some e;
          Error e))
