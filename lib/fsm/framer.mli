(** Incremental message framing over a byte stream.

    TCP delivers arbitrary chunks; the framer buffers them and yields
    complete BGP messages (or a header-level error that must kill the
    session).  Used by both the simulated channels and the real-socket
    transport. *)

type t

val create : unit -> t

val feed : t -> string -> unit
(** Append received bytes. *)

val reset : t -> unit
(** Discard buffered bytes and clear any poison — a new transport
    connection starts a fresh byte stream.  Called by
    {!Bgp_fsm.Session} on reconnect so a session torn down by a decode
    error can come back up. *)

type result =
  | Msg of Bgp_wire.Msg.t * int  (** decoded message and its wire size *)
  | Need_more                    (** no complete message buffered *)
  | Error of Bgp_wire.Msg.error  (** unrecoverable framing/decoding error *)

val next : t -> result
(** Extract the next message.  After [Error] the framer is poisoned and
    keeps returning the same error. *)

val buffered : t -> int
(** Bytes currently buffered (unconsumed). *)
