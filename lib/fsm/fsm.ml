module Msg = Bgp_wire.Msg

type state = Idle | Connect | Active | Open_sent | Open_confirm | Established

let state_name = function
  | Idle -> "Idle"
  | Connect -> "Connect"
  | Active -> "Active"
  | Open_sent -> "OpenSent"
  | Open_confirm -> "OpenConfirm"
  | Established -> "Established"

let pp_state ppf s = Format.pp_print_string ppf (state_name s)

type timer = Connect_retry | Hold | Keepalive

let pp_timer ppf t =
  Format.pp_print_string ppf
    (match t with
    | Connect_retry -> "connect-retry"
    | Hold -> "hold"
    | Keepalive -> "keepalive")

type event =
  | Manual_start
  | Manual_stop
  | Tcp_connected
  | Tcp_failed
  | Tcp_closed
  | Msg_received of Msg.t
  | Protocol_error of Msg.error
  | Timer_expired of timer

type action =
  | Start_connect
  | Close_connection
  | Send of Msg.t
  | Arm of timer * float
  | Cancel of timer
  | Deliver_update of Msg.update
  | Deliver_refresh of int * int
  | Session_established
  | Session_down of string

type config = {
  my_asn : Bgp_route.Asn.t;
  my_id : Bgp_addr.Ipv4.t;
  hold_time : int;
  connect_retry : float;
  passive : bool;
}

let default_config ~asn ~router_id =
  { my_asn = asn; my_id = router_id; hold_time = 90; connect_retry = 30.0;
    passive = false }

type t = {
  cfg : config;
  st : state;
  hold : float option;        (* negotiated, None before/when disabled *)
  popen : Msg.open_msg option;
}

let create cfg = { cfg; st = Idle; hold = None; popen = None }
let state t = t.st
let config t = t.cfg
let negotiated_hold_time t = t.hold
let peer_open t = t.popen

let my_open t =
  Msg.open_msg ~hold_time:t.cfg.hold_time ~asn:t.cfg.my_asn ~bgp_id:t.cfg.my_id ()

(* Negotiated hold = min of both proposals; 0 on either side disables. *)
let negotiate t (o : Msg.open_msg) =
  if t.cfg.hold_time = 0 || o.Msg.opn_hold_time = 0 then None
  else Some (float_of_int (min t.cfg.hold_time o.Msg.opn_hold_time))

(* RFC 4271 §10 recommends a KeepaliveTime of one third of the Hold
   Time; every (re)arm of the keepalive timer goes through here so the
   ratio cannot drift between states. *)
let keepalive_interval h = h /. 3.0

let hold_actions hold =
  match hold with
  | None -> [ Cancel Hold; Cancel Keepalive ]
  | Some h -> [ Arm (Hold, h); Arm (Keepalive, keepalive_interval h) ]

let rearm_keepalive t =
  match t.hold with
  | None -> []
  | Some h -> [ Arm (Keepalive, keepalive_interval h) ]

let reset_hold t = match t.hold with None -> [] | Some h -> [ Arm (Hold, h) ]

let to_idle ?notify t reason =
  let send = match notify with None -> [] | Some e -> [ Send (Msg.Notification e) ] in
  (* Timers are cancelled before the transport is torn down so no
     cancelled-timer callback can ever observe a closed connection. *)
  ( { t with st = Idle; hold = None; popen = None },
    send
    @ [ Cancel Connect_retry; Cancel Hold; Cancel Keepalive; Close_connection;
        Session_down reason ] )

let fsm_error t = to_idle ~notify:Msg.Fsm_error t "FSM error"

let handle t ev =
  match t.st, ev with
  (* ----- Idle ----------------------------------------------------- *)
  | Idle, Manual_start ->
    if t.cfg.passive then ({ t with st = Active }, [])
    else
      ( { t with st = Connect },
        [ Start_connect; Arm (Connect_retry, t.cfg.connect_retry) ] )
  | Idle, _ -> (t, [])
  (* ----- Connect -------------------------------------------------- *)
  | Connect, Tcp_connected ->
    ( { t with st = Open_sent },
      [ Cancel Connect_retry; Send (my_open t);
        Arm (Hold, 4.0 *. 60.0) (* large initial hold, §8.2.2 *) ] )
  | Connect, Tcp_failed ->
    ({ t with st = Active }, [ Arm (Connect_retry, t.cfg.connect_retry) ])
  | Connect, Timer_expired Connect_retry ->
    (t, [ Start_connect; Arm (Connect_retry, t.cfg.connect_retry) ])
  | Connect, Manual_stop -> to_idle t "manual stop"
  | Connect, (Tcp_closed | Msg_received _ | Protocol_error _) ->
    to_idle t "connection error in Connect"
  | Connect, (Manual_start | Timer_expired _) -> (t, [])
  (* ----- Active --------------------------------------------------- *)
  | Active, Tcp_connected ->
    ( { t with st = Open_sent },
      [ Cancel Connect_retry; Send (my_open t); Arm (Hold, 4.0 *. 60.0) ] )
  | Active, Timer_expired Connect_retry ->
    ( { t with st = Connect },
      [ Start_connect; Arm (Connect_retry, t.cfg.connect_retry) ] )
  | Active, Manual_stop -> to_idle t "manual stop"
  | Active, (Tcp_failed | Tcp_closed) ->
    ({ t with st = Active }, [ Arm (Connect_retry, t.cfg.connect_retry) ])
  | Active, (Msg_received _ | Protocol_error _) ->
    to_idle t "unexpected data in Active"
  | Active, (Manual_start | Timer_expired _) -> (t, [])
  (* ----- OpenSent ------------------------------------------------- *)
  | Open_sent, Msg_received (Msg.Open o) ->
    let hold = negotiate t o in
    ( { t with st = Open_confirm; hold; popen = Some o },
      (Send Msg.Keepalive :: hold_actions hold) )
  | Open_sent, Msg_received (Msg.Notification _) ->
    to_idle t "notification in OpenSent"
  | Open_sent, Msg_received _ ->
    to_idle ~notify:Msg.Fsm_error t "non-OPEN in OpenSent"
  | Open_sent, Protocol_error e -> to_idle ~notify:e t "protocol error"
  | Open_sent, Timer_expired Hold ->
    to_idle ~notify:Msg.Hold_timer_expired t "hold timer (OpenSent)"
  | Open_sent, (Tcp_closed | Tcp_failed) ->
    ({ t with st = Active }, [ Arm (Connect_retry, t.cfg.connect_retry) ])
  | Open_sent, Manual_stop -> to_idle ~notify:Msg.Cease t "manual stop"
  | Open_sent, (Manual_start | Tcp_connected | Timer_expired _) -> (t, [])
  (* ----- OpenConfirm ---------------------------------------------- *)
  | Open_confirm, Msg_received Msg.Keepalive ->
    ({ t with st = Established }, Session_established :: reset_hold t)
  | Open_confirm, Msg_received (Msg.Notification _) ->
    to_idle t "notification in OpenConfirm"
  | Open_confirm, Msg_received _ -> fsm_error t
  | Open_confirm, Protocol_error e -> to_idle ~notify:e t "protocol error"
  | Open_confirm, Timer_expired Hold ->
    to_idle ~notify:Msg.Hold_timer_expired t "hold timer (OpenConfirm)"
  | Open_confirm, Timer_expired Keepalive ->
    (t, Send Msg.Keepalive :: rearm_keepalive t)
  | Open_confirm, (Tcp_closed | Tcp_failed) -> to_idle t "connection lost"
  | Open_confirm, Manual_stop -> to_idle ~notify:Msg.Cease t "manual stop"
  | Open_confirm, (Manual_start | Tcp_connected | Timer_expired Connect_retry) ->
    (t, [])
  (* ----- Established ---------------------------------------------- *)
  | Established, Msg_received (Msg.Update u) ->
    (t, Deliver_update u :: reset_hold t)
  | Established, Msg_received (Msg.Route_refresh (afi, safi)) ->
    (t, Deliver_refresh (afi, safi) :: reset_hold t)
  | Established, Msg_received Msg.Keepalive -> (t, reset_hold t)
  | Established, Msg_received (Msg.Notification _) ->
    to_idle t "notification received"
  | Established, Msg_received (Msg.Open _) -> fsm_error t
  | Established, Protocol_error e -> to_idle ~notify:e t "protocol error"
  | Established, Timer_expired Hold ->
    to_idle ~notify:Msg.Hold_timer_expired t "hold timer expired"
  | Established, Timer_expired Keepalive ->
    (t, Send Msg.Keepalive :: rearm_keepalive t)
  | Established, (Tcp_closed | Tcp_failed) -> to_idle t "connection lost"
  | Established, Manual_stop -> to_idle ~notify:Msg.Cease t "manual stop"
  | Established, (Manual_start | Tcp_connected | Timer_expired Connect_retry) ->
    (t, [])
