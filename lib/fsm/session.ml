module Msg = Bgp_wire.Msg

type timer_service = { arm_timer : float -> (unit -> unit) -> unit -> unit }

let timer_service_of clock =
  { arm_timer =
      (fun delay fn ->
        let h = Bgp_engine.Clock.schedule clock ~delay fn in
        fun () -> Bgp_engine.Clock.cancel h) }

type io = {
  out_bytes : string -> unit;
  start_connect : unit -> unit;
  close : unit -> unit;
}

let io_of_link ~active (link : Bgp_engine.Link.t) =
  { out_bytes = link.send;
    start_connect = (if active then link.start_connect else fun () -> ());
    close = link.close }

type hooks = {
  on_update : Msg.update -> unit;
  on_refresh : int -> int -> unit;
  on_established : unit -> unit;
  on_down : string -> unit;
  on_tx_msg : Msg.t -> int -> unit;
  on_rx_msg : Msg.t -> int -> unit;
}

let null_hooks =
  { on_update = (fun _ -> ()); on_refresh = (fun _ _ -> ());
    on_established = (fun () -> ()); on_down = (fun _ -> ());
    on_tx_msg = (fun _ _ -> ()); on_rx_msg = (fun _ _ -> ()) }

type t = {
  timers : timer_service;
  io : io;
  hooks : hooks;
  framer : Framer.t;
  mutable fsm : Fsm.t;
  cancels : (Fsm.timer, unit -> unit) Hashtbl.t;
  mutable closed_flag : bool;  (* transport currently closed *)
  mutable on_transition : Fsm.state -> Fsm.state -> unit;
}

let create cfg timers io hooks =
  { timers; io; hooks; framer = Framer.create (); fsm = Fsm.create cfg;
    cancels = Hashtbl.create 4; closed_flag = true;
    on_transition = (fun _ _ -> ()) }

let set_transition_observer t f = t.on_transition <- f

let state t = Fsm.state t.fsm
let fsm t = t.fsm

let cancel_timer t timer =
  match Hashtbl.find_opt t.cancels timer with
  | Some cancel ->
    cancel ();
    Hashtbl.remove t.cancels timer
  | None -> ()

let transmit t msg =
  let wire = Bgp_wire.Codec.encode msg in
  t.hooks.on_tx_msg msg (String.length wire);
  t.io.out_bytes wire

let rec dispatch t ev =
  let before = Fsm.state t.fsm in
  let fsm', actions = Fsm.handle t.fsm ev in
  t.fsm <- fsm';
  let after = Fsm.state fsm' in
  if after <> before then t.on_transition before after;
  List.iter (perform t) actions

and perform t = function
  | Fsm.Start_connect ->
    t.closed_flag <- false;
    t.io.start_connect ()
  | Fsm.Close_connection ->
    if not t.closed_flag then begin
      t.closed_flag <- true;
      t.io.close ()
    end
  | Fsm.Send msg -> transmit t msg
  | Fsm.Arm (timer, delay) ->
    cancel_timer t timer;
    let cancel =
      t.timers.arm_timer delay (fun () ->
          Hashtbl.remove t.cancels timer;
          dispatch t (Fsm.Timer_expired timer))
    in
    Hashtbl.replace t.cancels timer cancel
  | Fsm.Cancel timer -> cancel_timer t timer
  | Fsm.Deliver_update u -> t.hooks.on_update u
  | Fsm.Deliver_refresh (afi, safi) -> t.hooks.on_refresh afi safi
  | Fsm.Session_established -> t.hooks.on_established ()
  | Fsm.Session_down reason -> t.hooks.on_down reason

let start t = dispatch t Fsm.Manual_start
let stop t = dispatch t Fsm.Manual_stop

let connected t =
  t.closed_flag <- false;
  Framer.reset t.framer;
  dispatch t Fsm.Tcp_connected

let failed t = dispatch t Fsm.Tcp_failed

let closed t =
  t.closed_flag <- true;
  dispatch t Fsm.Tcp_closed

let feed t bytes =
  Framer.feed t.framer bytes;
  let rec drain () =
    (* Stop draining the moment the session leaves a message-accepting
       state (an error may have reset it to Idle). *)
    match Fsm.state t.fsm with
    | Fsm.Idle | Fsm.Connect | Fsm.Active -> ()
    | Fsm.Open_sent | Fsm.Open_confirm | Fsm.Established -> (
      match Framer.next t.framer with
      | Framer.Need_more -> ()
      | Framer.Msg (msg, size) ->
        t.hooks.on_rx_msg msg size;
        dispatch t (Fsm.Msg_received msg);
        drain ()
      | Framer.Error e -> dispatch t (Fsm.Protocol_error e))
  in
  drain ()

let send t msg =
  match Fsm.state t.fsm with
  | Fsm.Established ->
    transmit t msg;
    true
  | _ -> false
