(** A live BGP session: {!Fsm} + {!Framer} wired to a transport and a
    timer service.

    The session is transport-agnostic — the simulated byte channels of
    [bgp_netsim] and the real TCP sockets of [bgp_tcp] both drive it
    through the same five entry points ({!connected}, {!failed},
    {!closed}, {!feed}, plus timer callbacks the session arms itself). *)

type timer_service = {
  arm_timer : float -> (unit -> unit) -> unit -> unit;
      (** [arm_timer delay fn] schedules [fn] after [delay] seconds of
          the transport's notion of time and returns a cancel thunk. *)
}

val timer_service_of : Bgp_engine.Clock.t -> timer_service
(** The canonical timer service over a {!Bgp_engine.Clock}: [arm_timer]
    schedules on the clock and the returned thunk is the clock handle's
    idempotent cancel.  Simulated and live sessions both use this — the
    clock is the only thing that differs. *)

type io = {
  out_bytes : string -> unit;     (** transmit wire bytes *)
  start_connect : unit -> unit;   (** initiate the transport connection *)
  close : unit -> unit;           (** tear the connection down *)
}

val io_of_link : active:bool -> Bgp_engine.Link.t -> io
(** Session I/O over a transport endpoint.  [active] gates
    [start_connect]: a passive (listening) side never initiates the
    transport connection even if the FSM were to ask. *)

type hooks = {
  on_update : Bgp_wire.Msg.update -> unit;
      (** an UPDATE arrived (session is Established) *)
  on_refresh : int -> int -> unit;
      (** a ROUTE-REFRESH arrived (RFC 2918): [(afi, safi)] *)
  on_established : unit -> unit;
  on_down : string -> unit;       (** reason *)
  on_tx_msg : Bgp_wire.Msg.t -> int -> unit;
      (** observation hook: a message of n wire bytes was sent *)
  on_rx_msg : Bgp_wire.Msg.t -> int -> unit;
      (** observation hook: a message of n wire bytes was decoded *)
}

val null_hooks : hooks

type t

val create : Fsm.config -> timer_service -> io -> hooks -> t
val state : t -> Fsm.state
val fsm : t -> Fsm.t

val set_transition_observer : t -> (Fsm.state -> Fsm.state -> unit) -> unit
(** Install an observer called as [(before, after)] whenever dispatching
    an event changes the FSM state (before the resulting actions are
    performed).  Observation only — installing one must not change
    session behavior.  Replaces any previous observer; default is a
    no-op. *)

val start : t -> unit
(** Administrative up (Idle -> Connect, or Active when passive). *)

val stop : t -> unit
(** Administrative down (sends CEASE when appropriate). *)

val connected : t -> unit
(** Transport reports the connection opened (either direction). *)

val failed : t -> unit
val closed : t -> unit

val feed : t -> string -> unit
(** Bytes arrived from the transport. *)

val send : t -> Bgp_wire.Msg.t -> bool
(** Transmit a message if the session is Established ([false]
    otherwise).  OPEN/KEEPALIVE/NOTIFICATION are emitted by the FSM
    itself; use this for UPDATEs. *)
