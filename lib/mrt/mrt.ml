module Ipv4 = Bgp_addr.Ipv4
module Prefix = Bgp_addr.Prefix
module Asn = Bgp_route.Asn
module I = Bgp_route.Attrs.Interned
module Msg = Bgp_wire.Msg
module Codec = Bgp_wire.Codec

type peer_entry = {
  pe_bgp_id : Ipv4.t;
  pe_addr : Ipv4.t;
  pe_asn : Asn.t;
}

type source = {
  src_peer : int;
  src_time : int;
  src_attrs : I.t;
}

type rib_entry = {
  seq : int;
  prefix : Prefix.t;
  sources : source list;
}

type message = {
  ms_time : float;
  ms_peer_asn : Asn.t;
  ms_local_asn : Asn.t;
  ms_peer_addr : Ipv4.t;
  ms_local_addr : Ipv4.t;
  ms_msg : Msg.t;
}

type record =
  | Peer_index of {
      collector_id : Ipv4.t;
      view_name : string;
      peers : peer_entry array;
    }
  | Rib of rib_entry
  | Message of message

(* RFC 6396 type/subtype constants. *)
let t_table_dump = 12
let t_table_dump_v2 = 13
let t_bgp4mp = 16
let t_bgp4mp_et = 17
let st_peer_index_table = 1
let st_rib_ipv4_unicast = 2
let st_bgp4mp_message = 1
let st_bgp4mp_message_as4 = 4
let st_bgp4mp_state_change = 0
let st_bgp4mp_state_change_as4 = 5

let as_trans = Asn.of_int 23456

let clamp_asn v =
  match Asn.of_int_opt v with Some a -> a | None -> as_trans

(* ---------- reading ---------- *)

exception Fail of string

let fail fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

type reader = { buf : string; mutable pos : int; limit : int }

let need r n what =
  if r.pos + n > r.limit then
    fail "truncated %s at offset %d (need %d bytes, have %d)" what r.pos n
      (r.limit - r.pos)

let ru8 r what =
  need r 1 what;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let ru16 r what =
  need r 2 what;
  let v =
    (Char.code r.buf.[r.pos] lsl 8) lor Char.code r.buf.[r.pos + 1]
  in
  r.pos <- r.pos + 2;
  v

let ru32 r what =
  need r 4 what;
  let v =
    (Char.code r.buf.[r.pos] lsl 24)
    lor (Char.code r.buf.[r.pos + 1] lsl 16)
    lor (Char.code r.buf.[r.pos + 2] lsl 8)
    lor Char.code r.buf.[r.pos + 3]
  in
  r.pos <- r.pos + 4;
  v

let r_ipv4 r what = Ipv4.of_int (ru32 r what)

let r_prefix r =
  let plen = ru8 r "prefix length" in
  if plen > 32 then fail "prefix length %d > 32 at offset %d" plen (r.pos - 1);
  let noct = (plen + 7) / 8 in
  need r noct "prefix octets";
  let addr = ref 0 in
  for i = 0 to 3 do
    let o = if i < noct then Char.code r.buf.[r.pos + i] else 0 in
    addr := (!addr lsl 8) lor o
  done;
  r.pos <- r.pos + noct;
  Prefix.make (Ipv4.of_int !addr) plen

let parse_peer_index r =
  let collector_id = r_ipv4 r "collector id" in
  let vlen = ru16 r "view name length" in
  need r vlen "view name";
  let view_name = String.sub r.buf r.pos vlen in
  r.pos <- r.pos + vlen;
  let count = ru16 r "peer count" in
  let peers =
    Array.init count (fun _ ->
        let ptype = ru8 r "peer type" in
        let pe_bgp_id = r_ipv4 r "peer bgp id" in
        let pe_addr =
          if ptype land 0x01 = 0 then r_ipv4 r "peer address"
          else begin
            (* IPv6 peer: skip the 16 address octets, keep a zero
               placeholder — sources referencing it stay indexable. *)
            need r 16 "peer IPv6 address";
            r.pos <- r.pos + 16;
            Ipv4.zero
          end
        in
        let pe_asn =
          if ptype land 0x02 = 0 then Asn.of_int (ru16 r "peer AS")
          else clamp_asn (ru32 r "peer AS4")
        in
        { pe_bgp_id; pe_addr; pe_asn })
  in
  Peer_index { collector_id; view_name; peers }

let parse_rib_ipv4 r =
  let seq = ru32 r "RIB sequence" in
  let prefix = r_prefix r in
  let count = ru16 r "RIB entry count" in
  let sources =
    List.init count (fun _ ->
        let src_peer = ru16 r "peer index" in
        let src_time = ru32 r "originated time" in
        let alen = ru16 r "attribute length" in
        need r alen "RIB attributes";
        let src_attrs =
          match Codec.decode_path_attrs ~as4:true r.buf ~pos:r.pos ~len:alen with
          | Ok h -> h
          | Error e ->
            fail "bad RIB attributes at offset %d: %s" r.pos
              (Fmt.str "%a" Msg.pp_error e)
        in
        r.pos <- r.pos + alen;
        { src_peer; src_time; src_attrs })
  in
  Rib { seq; prefix; sources }

let parse_bgp4mp r ~subtype ~secs ~usecs =
  let as4 = subtype = st_bgp4mp_message_as4 in
  let ms_peer_asn =
    if as4 then clamp_asn (ru32 r "peer AS4") else Asn.of_int (ru16 r "peer AS")
  in
  let ms_local_asn =
    if as4 then clamp_asn (ru32 r "local AS4")
    else Asn.of_int (ru16 r "local AS")
  in
  let _ifindex = ru16 r "interface index" in
  let afi = ru16 r "AFI" in
  if afi <> 1 then None (* IPv6 message: skip *)
  else begin
    let ms_peer_addr = r_ipv4 r "peer address" in
    let ms_local_addr = r_ipv4 r "local address" in
    match Codec.decode_at r.buf ~pos:r.pos with
    | Error e ->
      fail "bad BGP message at offset %d: %s" r.pos (Fmt.str "%a" Msg.pp_error e)
    | Ok (ms_msg, consumed) ->
      if r.pos + consumed > r.limit then
        fail "BGP message at offset %d overruns its MRT record" r.pos;
      r.pos <- r.pos + consumed;
      let ms_time = float_of_int secs +. (float_of_int usecs /. 1e6) in
      Some
        (Message
           { ms_time; ms_peer_asn; ms_local_asn; ms_peer_addr; ms_local_addr;
             ms_msg })
  end

let of_string buf =
  try
    let len = String.length buf in
    let records = ref [] in
    let skipped = ref 0 in
    let pos = ref 0 in
    while !pos < len do
      if !pos + 12 > len then fail "truncated MRT header at offset %d" !pos;
      let hdr = { buf; pos = !pos; limit = len } in
      let secs = ru32 hdr "timestamp" in
      let mtype = ru16 hdr "type" in
      let subtype = ru16 hdr "subtype" in
      let blen = ru32 hdr "length" in
      let body = !pos + 12 in
      if body + blen > len then
        fail "record at offset %d declares %d body bytes but only %d remain"
          !pos blen (len - body);
      let r = { buf; pos = body; limit = body + blen } in
      (if mtype = t_table_dump_v2 then begin
         if subtype = st_peer_index_table then
           records := parse_peer_index r :: !records
         else if subtype = st_rib_ipv4_unicast then
           records := parse_rib_ipv4 r :: !records
         else incr skipped
       end
       else if mtype = t_bgp4mp || mtype = t_bgp4mp_et then begin
         let usecs =
           if mtype = t_bgp4mp_et then ru32 r "microseconds" else 0
         in
         if subtype = st_bgp4mp_message || subtype = st_bgp4mp_message_as4
         then
           match parse_bgp4mp r ~subtype ~secs ~usecs with
           | Some rec_ -> records := rec_ :: !records
           | None -> incr skipped
         else if
           subtype = st_bgp4mp_state_change
           || subtype = st_bgp4mp_state_change_as4
         then incr skipped
         else incr skipped
       end
       else incr skipped);
      pos := body + blen
    done;
    Ok (List.rev !records, !skipped)
  with Fail e -> Error e

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | buf -> of_string buf

(* ---------- writing ---------- *)

let w8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w16 b v =
  w8 b (v lsr 8);
  w8 b v

let w32 b v =
  w16 b (v lsr 16);
  w16 b (v land 0xffff)

let add_record b ~ts ~mtype ~subtype body =
  w32 b ts;
  w16 b mtype;
  w16 b subtype;
  w32 b (String.length body);
  Buffer.add_string b body

let peer_index_body ~collector_id ~view_name peers =
  let b = Buffer.create 64 in
  w32 b (Ipv4.to_int collector_id);
  w16 b (String.length view_name);
  Buffer.add_string b view_name;
  w16 b (Array.length peers);
  Array.iter
    (fun p ->
      w8 b 0x02 (* IPv4 address, 32-bit AS *);
      w32 b (Ipv4.to_int p.pe_bgp_id);
      w32 b (Ipv4.to_int p.pe_addr);
      w32 b (Asn.to_int p.pe_asn))
    peers;
  Buffer.contents b

let rib_body e =
  let b = Buffer.create 64 in
  w32 b e.seq;
  let plen = Prefix.len e.prefix in
  w8 b plen;
  let addr = Ipv4.to_int (Prefix.addr e.prefix) in
  for i = 0 to Prefix.wire_octets e.prefix - 1 do
    w8 b ((addr lsr (24 - (8 * i))) land 0xff)
  done;
  w16 b (List.length e.sources);
  List.iter
    (fun s ->
      w16 b s.src_peer;
      w32 b s.src_time;
      let attrs = Codec.encode_path_attrs ~as4:true (I.value s.src_attrs) in
      w16 b (String.length attrs);
      Buffer.add_string b attrs)
    e.sources;
  Buffer.contents b

let message_body ~usecs m =
  let b = Buffer.create 64 in
  w32 b usecs;
  w16 b (Asn.to_int m.ms_peer_asn);
  w16 b (Asn.to_int m.ms_local_asn);
  w16 b 0 (* interface index *);
  w16 b 1 (* AFI: IPv4 *);
  w32 b (Ipv4.to_int m.ms_peer_addr);
  w32 b (Ipv4.to_int m.ms_local_addr);
  Buffer.add_string b (Codec.encode m.ms_msg);
  Buffer.contents b

let to_string records =
  let b = Buffer.create 4096 in
  List.iter
    (fun r ->
      match r with
      | Peer_index { collector_id; view_name; peers } ->
        add_record b ~ts:0 ~mtype:t_table_dump_v2 ~subtype:st_peer_index_table
          (peer_index_body ~collector_id ~view_name peers)
      | Rib e ->
        add_record b ~ts:0 ~mtype:t_table_dump_v2 ~subtype:st_rib_ipv4_unicast
          (rib_body e)
      | Message m ->
        let secs = int_of_float (floor m.ms_time) in
        let usecs =
          int_of_float (Float.round ((m.ms_time -. floor m.ms_time) *. 1e6))
        in
        let secs, usecs =
          if usecs >= 1_000_000 then (secs + 1, usecs - 1_000_000)
          else (secs, usecs)
        in
        add_record b ~ts:secs ~mtype:t_bgp4mp_et ~subtype:st_bgp4mp_message
          (message_body ~usecs m))
    records;
  Buffer.contents b

let write_file path records =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string records))

(* ---------- sniffing ---------- *)

type format = Mrt_dump | Bgpmark_table | Unknown_format

let table_header = "# bgpmark-table v1"

let sniff_string s =
  let hl = String.length table_header in
  if String.length s >= hl && String.sub s 0 hl = table_header then
    Bgpmark_table
  else if String.length s >= 12 then begin
    let u16 p = (Char.code s.[p] lsl 8) lor Char.code s.[p + 1] in
    let u32 p = (u16 p lsl 16) lor u16 (p + 2) in
    let mtype = u16 4 in
    let blen = u32 8 in
    if
      (mtype = t_table_dump || mtype = t_table_dump_v2 || mtype = t_bgp4mp
     || mtype = t_bgp4mp_et)
      && 12 + blen <= String.length s
    then Mrt_dump
    else Unknown_format
  end
  else Unknown_format

let sniff_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = min 64 (in_channel_length ic) in
        really_input_string ic n)
  with
  | exception Sys_error _ -> Unknown_format
  | head -> sniff_string head

let format_name = function
  | Mrt_dump -> "MRT dump (RFC 6396 binary)"
  | Bgpmark_table -> Printf.sprintf "bgpmark table (%S text)" table_header
  | Unknown_format -> "unknown"

(* ---------- builders and projections ---------- *)

let rib_table ~collector_id ~peer routes =
  Peer_index { collector_id; view_name = "bgpmark"; peers = [| peer |] }
  :: List.mapi
       (fun i (prefix, attrs) ->
         Rib
           { seq = i; prefix;
             sources = [ { src_peer = 0; src_time = 0; src_attrs = attrs } ] })
       routes

let routes_of_dump records =
  let ribs =
    List.filter_map (function Rib e -> Some e | _ -> None) records
  in
  let ribs = List.stable_sort (fun a b -> compare a.seq b.seq) ribs in
  List.filter_map
    (fun e ->
      match e.sources with
      | [] -> None
      | s :: _ -> Some (e.prefix, s.src_attrs))
    ribs

let updates_of_dump records =
  let msgs =
    List.filter_map (function Message m -> Some m | _ -> None) records
  in
  match msgs with
  | [] -> []
  | first :: _ ->
    let t0 = first.ms_time in
    List.map (fun m -> (m.ms_time -. t0, m.ms_msg)) msgs
