(** MRT (RFC 6396) reading and writing, restricted to the two record
    families the benchmark replays: TABLE_DUMP_V2 IPv4-unicast RIB
    dumps and BGP4MP update traces.

    The reader decodes attribute blobs straight through
    {!Bgp_wire.Codec.decode_path_attrs}, so every RIB entry's
    attributes intern into the shared arena exactly as a live decode
    would.  The writer produces dumps the reader (and other MRT tools)
    accept, which is how tests and CI exercise replay without any
    external dump: synthesize, write, read back, replay.

    Records the benchmark cannot represent (IPv6 RIBs, state changes,
    unknown types) are skipped and counted, not errors — real
    RouteViews/RIS dumps interleave them freely.  4-octet ASNs outside
    the 16-bit {!Bgp_route.Asn} domain clamp to AS_TRANS (RFC 6793). *)

type peer_entry = {
  pe_bgp_id : Bgp_addr.Ipv4.t;
  pe_addr : Bgp_addr.Ipv4.t;
      (** [Ipv4.zero] when the dump's peer entry is IPv6. *)
  pe_asn : Bgp_route.Asn.t;
}

type source = {
  src_peer : int;        (** index into the preceding peer-index table *)
  src_time : int;        (** originated time, epoch seconds *)
  src_attrs : Bgp_route.Attrs.Interned.t;
}

type rib_entry = {
  seq : int;
  prefix : Bgp_addr.Prefix.t;
  sources : source list;
}

type message = {
  ms_time : float;       (** epoch seconds; microsecond resolution *)
  ms_peer_asn : Bgp_route.Asn.t;
  ms_local_asn : Bgp_route.Asn.t;
  ms_peer_addr : Bgp_addr.Ipv4.t;
  ms_local_addr : Bgp_addr.Ipv4.t;
  ms_msg : Bgp_wire.Msg.t;
}

type record =
  | Peer_index of {
      collector_id : Bgp_addr.Ipv4.t;
      view_name : string;
      peers : peer_entry array;
    }
  | Rib of rib_entry
  | Message of message

(** {1 Reading} *)

val of_string : string -> (record list * int, string) result
(** Parse a whole dump.  [Ok (records, skipped)] preserves record
    order; [skipped] counts well-formed records outside the supported
    subset.  Errors carry the byte offset of the offending record. *)

val read_file : string -> (record list * int, string) result

(** {1 Writing} *)

val to_string : record list -> string
(** Serialize: [Peer_index] and [Rib] as TABLE_DUMP_V2 (peers with
    32-bit ASNs, attributes with 4-octet AS encoding), [Message] as
    BGP4MP_ET so replay timing keeps microsecond resolution. *)

val write_file : string -> record list -> unit

(** {1 Format sniffing} *)

type format = Mrt_dump | Bgpmark_table | Unknown_format

val sniff_string : string -> format
val sniff_file : string -> format
(** Decide between an MRT dump (binary, plausible first record header)
    and the textual [# bgpmark-table v1] format, reading at most the
    first few bytes. *)

val format_name : format -> string

(** {1 Builders and projections} *)

val rib_table :
  collector_id:Bgp_addr.Ipv4.t -> peer:peer_entry ->
  (Bgp_addr.Prefix.t * Bgp_route.Attrs.Interned.t) list -> record list
(** A single-peer TABLE_DUMP_V2 dump: peer index followed by one RIB
    record per route, sequence-numbered in list order. *)

val routes_of_dump : record list -> (Bgp_addr.Prefix.t * Bgp_route.Attrs.Interned.t) list
(** Best-source view of the RIB records: the first source of each
    entry, in sequence order — what a collector's client would load. *)

val updates_of_dump : record list -> (float * Bgp_wire.Msg.t) list
(** The BGP4MP messages as [(offset, msg)] with offsets rebased so the
    first message is at [0.] — ready for {!Replay}. *)
