module Clock = Bgp_engine.Clock
module Msg = Bgp_wire.Msg

type pacing = Unpaced | Timed of float

type t = {
  mutable sent : int;
  total : int;
  mutable failed : bool;
}

let send_now t send msg =
  if not t.failed then
    if send msg then t.sent <- t.sent + 1 else t.failed <- true

let start ~clock ~pacing ~send events =
  let t = { sent = 0; total = List.length events; failed = false } in
  (match pacing with
  | Unpaced ->
    (* Still hop through the pump once so [start] never sends
       synchronously — same contract as Clock.schedule. *)
    Clock.post clock (fun () ->
        List.iter (fun (_, msg) -> send_now t send msg) events)
  | Timed speedup ->
    let speedup = if speedup <= 0. then 1. else speedup in
    let base = Clock.now clock in
    List.iter
      (fun (offset, msg) ->
        let at = base +. (Float.max 0. offset /. speedup) in
        ignore (Clock.schedule_at clock ~time:at (fun () -> send_now t send msg)))
      events);
  t

let sent t = t.sent
let total t = t.total
let finished t = t.failed || t.sent = t.total
let failed t = t.failed

module PSet = Set.Make (Bgp_addr.Prefix)

let expected_prefixes events initial =
  let set = ref (PSet.of_list initial) in
  List.iter
    (fun (_, msg) ->
      match msg with
      | Msg.Update u ->
        List.iter (fun p -> set := PSet.remove p !set) u.Msg.withdrawn;
        List.iter (fun p -> set := PSet.add p !set) u.Msg.nlri
      | _ -> ())
    events;
  PSet.elements !set
