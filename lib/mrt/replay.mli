(** Replay of a recorded update sequence through a peer.

    Drives [(offset, msg)] events (from {!Mrt.updates_of_dump}) into a
    caller-supplied send function, either as fast as the receiver
    drains them or paced on a {!Bgp_engine.Clock} at recorded or
    accelerated timing.  Because pacing goes through the clock
    capability, the identical replay runs under the simulator and the
    live TCP loop — which is what lets the harness crosscheck
    fingerprints between the two. *)

type pacing =
  | Unpaced
      (** Send every event back-to-back, ignoring recorded offsets —
          the throughput-measurement mode. *)
  | Timed of float
      (** Honor recorded inter-arrival times divided by the speedup
          factor ([Timed 1.] is real recorded pacing; [Timed 60.]
          replays a minute of trace per second). *)

type t

val start :
  clock:Bgp_engine.Clock.t ->
  pacing:pacing ->
  send:(Bgp_wire.Msg.t -> bool) ->
  (float * Bgp_wire.Msg.t) list ->
  t
(** Begin the replay.  [send] returns [false] when the transport has
    gone away; the replay then stops early.  Events with non-positive
    or out-of-order offsets are sent at the earliest legal instant
    (the clock never runs backwards). *)

val sent : t -> int
(** Messages pushed into [send] so far. *)

val total : t -> int

val finished : t -> bool
(** All events sent, or the transport failed. *)

val failed : t -> bool
(** [send] returned [false] before the sequence completed. *)

val expected_prefixes :
  (float * Bgp_wire.Msg.t) list -> Bgp_addr.Prefix.t list ->
  Bgp_addr.Prefix.t list
(** Fold announcements and withdrawals over an initial prefix set (the
    loaded table) to the set a correct receiver holds after the full
    replay — the replay oracle.  Sorted by {!Bgp_addr.Prefix.compare}. *)
