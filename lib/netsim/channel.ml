module Engine = Bgp_sim.Engine

type side = A | B

type fate = Bgp_engine.Link.fate =
  | Pass
  | Drop
  | Deliver of string * float  (* possibly-tampered payload, extra delay *)

type dir_state = {
  mutable receiver : string -> unit;
  mutable on_connected : unit -> unit;
  mutable on_closed : unit -> unit;
  mutable busy_until : float;  (* serialization horizon of the sender *)
  mutable carried : int;
  mutable tap : (string -> fate) option;
}

type t = {
  engine : Engine.t;
  latency : float;
  bandwidth_bps : float;
  a : dir_state;
  b : dir_state;
  mutable opened : bool;
  mutable in_flight : int;  (* scheduled-but-undelivered payloads *)
  (* Incremented on every connect/close.  In-flight deliveries capture
     the generation at send time and are discarded if the connection
     has turned over by delivery time, so bytes from a previous
     connection can never leak into a reconnected stream. *)
  mutable generation : int;
}

let blank () =
  { receiver = (fun _ -> ()); on_connected = (fun () -> ());
    on_closed = (fun () -> ()); busy_until = 0.0; carried = 0; tap = None }

let create engine ?(latency = 1e-4) ?(bandwidth_mbps = 1000.0) () =
  if latency < 0.0 then invalid_arg "Channel.create: negative latency";
  if bandwidth_mbps <= 0.0 then invalid_arg "Channel.create: bandwidth";
  { engine; latency; bandwidth_bps = bandwidth_mbps *. 1e6; a = blank ();
    b = blank (); opened = false; in_flight = 0; generation = 0 }

let this t = function A -> t.a | B -> t.b
let other t = function A -> t.b | B -> t.a

let set_receiver t side f = (this t side).receiver <- f
let set_on_connected t side f = (this t side).on_connected <- f
let set_on_closed t side f = (this t side).on_closed <- f
let set_tap t side f = (this t side).tap <- Some f
let clear_tap t side = (this t side).tap <- None

let connect t =
  if not t.opened then begin
    t.opened <- true;
    t.generation <- t.generation + 1;
    ignore
      (Engine.schedule t.engine ~delay:t.latency (fun () ->
           if t.opened then begin
             t.a.on_connected ();
             t.b.on_connected ()
           end))
  end

let close t =
  if t.opened then begin
    t.opened <- false;
    t.generation <- t.generation + 1;
    t.a.busy_until <- 0.0;
    t.b.busy_until <- 0.0;
    ignore
      (Engine.schedule t.engine ~delay:t.latency (fun () ->
           t.a.on_closed ();
           t.b.on_closed ()))
  end

let is_open t = t.opened

let send t side bytes =
  if t.opened && bytes <> "" then begin
    let src = this t side in
    let dst = other t side in
    (* Serialization is charged for the bytes the sender transmitted;
       what the tap does to them downstream does not refund it. *)
    src.carried <- src.carried + String.length bytes;
    let now = Engine.now t.engine in
    let start = Float.max now src.busy_until in
    let ser = float_of_int (8 * String.length bytes) /. t.bandwidth_bps in
    src.busy_until <- start +. ser;
    let fate = match src.tap with None -> Pass | Some f -> f bytes in
    match fate with
    | Drop -> ()
    | Pass | Deliver _ ->
      let bytes, extra =
        match fate with Deliver (b, d) -> (b, d) | _ -> (bytes, 0.0)
      in
      let deliver_at = start +. ser +. t.latency +. extra in
      let gen = t.generation in
      t.in_flight <- t.in_flight + 1;
      ignore
        (Engine.schedule_at t.engine ~time:deliver_at (fun () ->
             t.in_flight <- t.in_flight - 1;
             if t.opened && t.generation = gen then dst.receiver bytes))
  end

let endpoint t side =
  { Bgp_engine.Link.send = (fun bytes -> send t side bytes);
    start_connect = (fun () -> connect t);
    close = (fun () -> close t);
    set_receiver = set_receiver t side;
    set_on_connected = set_on_connected t side;
    set_on_closed = set_on_closed t side;
    set_tap =
      (function Some f -> set_tap t side f | None -> clear_tap t side) }

let bytes_carried t side = (this t side).carried
let in_flight t = t.in_flight
