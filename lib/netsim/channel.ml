module Engine = Bgp_sim.Engine
module Pengine = Bgp_sim.Pengine

type side = A | B

type fate = Bgp_engine.Link.fate =
  | Pass
  | Drop
  | Deliver of string * float  (* possibly-tampered payload, extra delay *)

(* ------------------------------------------------------------------ *)
(* Same-partition implementation: one engine, direct scheduling.       *)
(* This is the original channel, untouched — the single-partition      *)
(* path stays bit-identical to the pre-partitioning engine.            *)
(* ------------------------------------------------------------------ *)

type dir_state = {
  mutable receiver : string -> unit;
  mutable on_connected : unit -> unit;
  mutable on_closed : unit -> unit;
  mutable busy_until : float;  (* serialization horizon of the sender *)
  mutable carried : int;
  mutable tap : (string -> fate) option;
}

type shared = {
  engine : Engine.t;
  latency : float;
  bandwidth_bps : float;
  a : dir_state;
  b : dir_state;
  mutable opened : bool;
  mutable in_flight : int;  (* scheduled-but-undelivered payloads *)
  (* Incremented on every connect/close.  In-flight deliveries capture
     the generation at send time and are discarded if the connection
     has turned over by delivery time, so bytes from a previous
     connection can never leak into a reconnected stream. *)
  mutable generation : int;
}

(* ------------------------------------------------------------------ *)
(* Cross-partition implementation: each side lives on its own          *)
(* partition; deliveries and connection notifications travel through   *)
(* the Pengine mailbox and take effect one link latency later — which  *)
(* the conservative lookahead makes exact, not approximate.            *)
(*                                                                     *)
(* Connection state is per-side: a side's [x_open]/[x_gen] are owned   *)
(* (written and read during windows) by that side's partition only.    *)
(* Every open/close transition bumps the local generation and posts a  *)
(* mirror event to the peer at +latency, so both sides step through    *)
(* the same epoch sequence, one latency apart.  A payload captures the *)
(* sender's epoch and is delivered only if the receiver is still in    *)
(* that epoch — the cross-partition analogue of the shared channel's   *)
(* generation check (bytes of a dead connection die on the wire).      *)
(* ------------------------------------------------------------------ *)

type xside = {
  x_part : int;
  mutable x_receiver : string -> unit;
  mutable x_on_connected : unit -> unit;
  mutable x_on_closed : unit -> unit;
  mutable x_busy_until : float;
  mutable x_carried : int;
  mutable x_tap : (string -> fate) option;
  mutable x_open : bool;
  mutable x_gen : int;  (* epoch transitions this side has processed *)
}

type cross = {
  xc_pe : Pengine.t;
  xc_latency : float;
  xc_bandwidth_bps : float;
  xc_a : xside;
  xc_b : xside;
  xc_in_flight : int Atomic.t;
}

type t = Shared of shared | Cross of cross

let blank () =
  { receiver = (fun _ -> ()); on_connected = (fun () -> ());
    on_closed = (fun () -> ()); busy_until = 0.0; carried = 0; tap = None }

let check_params ~latency ~bandwidth_mbps =
  if latency < 0.0 then invalid_arg "Channel.create: negative latency";
  if bandwidth_mbps <= 0.0 then invalid_arg "Channel.create: bandwidth"

let create engine ?(latency = 1e-4) ?(bandwidth_mbps = 1000.0) () =
  check_params ~latency ~bandwidth_mbps;
  Shared
    { engine; latency; bandwidth_bps = bandwidth_mbps *. 1e6; a = blank ();
      b = blank (); opened = false; in_flight = 0; generation = 0 }

let blank_x part =
  { x_part = part; x_receiver = (fun _ -> ());
    x_on_connected = (fun () -> ()); x_on_closed = (fun () -> ());
    x_busy_until = 0.0; x_carried = 0; x_tap = None; x_open = false;
    x_gen = 0 }

let create_cross pe ~part_a ~part_b ?(latency = 1e-4)
    ?(bandwidth_mbps = 1000.0) () =
  check_params ~latency ~bandwidth_mbps;
  if part_a = part_b then create (Pengine.part pe part_a) ~latency ~bandwidth_mbps ()
  else begin
    (* Registers the lookahead; rejects latency <= 0, which a
       cross-partition link cannot have. *)
    Pengine.register_cross_latency pe latency;
    Cross
      { xc_pe = pe; xc_latency = latency;
        xc_bandwidth_bps = bandwidth_mbps *. 1e6; xc_a = blank_x part_a;
        xc_b = blank_x part_b; xc_in_flight = Atomic.make 0 }
  end

let this_s t = function A -> t.a | B -> t.b
let other_s t = function A -> t.b | B -> t.a
let this_x c = function A -> c.xc_a | B -> c.xc_b
let other_x c = function A -> c.xc_b | B -> c.xc_a

let set_receiver t side f =
  match t with
  | Shared s -> (this_s s side).receiver <- f
  | Cross c -> (this_x c side).x_receiver <- f

let set_on_connected t side f =
  match t with
  | Shared s -> (this_s s side).on_connected <- f
  | Cross c -> (this_x c side).x_on_connected <- f

let set_on_closed t side f =
  match t with
  | Shared s -> (this_s s side).on_closed <- f
  | Cross c -> (this_x c side).x_on_closed <- f

let set_tap t side f =
  match t with
  | Shared s -> (this_s s side).tap <- Some f
  | Cross c -> (this_x c side).x_tap <- Some f

let clear_tap t side =
  match t with
  | Shared s -> (this_s s side).tap <- None
  | Cross c -> (this_x c side).x_tap <- None

(* --- connection management ---------------------------------------- *)

let shared_connect t =
  if not t.opened then begin
    t.opened <- true;
    t.generation <- t.generation + 1;
    ignore
      (Engine.schedule t.engine ~delay:t.latency (fun () ->
           if t.opened then begin
             t.a.on_connected ();
             t.b.on_connected ()
           end))
  end

let cross_connect c side =
  let s = this_x c side and r = other_x c side in
  if not s.x_open then begin
    s.x_open <- true;
    s.x_gen <- s.x_gen + 1;
    let eng = Pengine.part c.xc_pe s.x_part in
    let at = Engine.now eng +. c.xc_latency in
    ignore
      (Engine.schedule_at eng ~time:at (fun () ->
           if s.x_open then s.x_on_connected ()));
    Pengine.post c.xc_pe ~src:s.x_part ~dst:r.x_part ~time:at (fun () ->
        if not r.x_open then begin
          r.x_open <- true;
          r.x_gen <- r.x_gen + 1;
          r.x_on_connected ()
        end)
  end

let connect_from t side =
  match t with Shared s -> shared_connect s | Cross c -> cross_connect c side

let connect t = connect_from t A

let shared_close t =
  if t.opened then begin
    t.opened <- false;
    t.generation <- t.generation + 1;
    t.a.busy_until <- 0.0;
    t.b.busy_until <- 0.0;
    ignore
      (Engine.schedule t.engine ~delay:t.latency (fun () ->
           t.a.on_closed ();
           t.b.on_closed ()))
  end

let cross_close c side =
  let s = this_x c side and r = other_x c side in
  if s.x_open then begin
    s.x_open <- false;
    s.x_gen <- s.x_gen + 1;
    s.x_busy_until <- 0.0;
    let eng = Pengine.part c.xc_pe s.x_part in
    let at = Engine.now eng +. c.xc_latency in
    ignore (Engine.schedule_at eng ~time:at (fun () -> s.x_on_closed ()));
    Pengine.post c.xc_pe ~src:s.x_part ~dst:r.x_part ~time:at (fun () ->
        if r.x_open then begin
          r.x_open <- false;
          r.x_gen <- r.x_gen + 1;
          r.x_busy_until <- 0.0;
          r.x_on_closed ()
        end)
  end

let close_from t side =
  match t with Shared s -> shared_close s | Cross c -> cross_close c side

let close t = close_from t A

let is_open = function
  | Shared s -> s.opened
  | Cross c -> c.xc_a.x_open || c.xc_b.x_open

(* --- data path ----------------------------------------------------- *)

let shared_send t side bytes =
  if t.opened && bytes <> "" then begin
    let src = this_s t side in
    let dst = other_s t side in
    (* Serialization is charged for the bytes the sender transmitted;
       what the tap does to them downstream does not refund it. *)
    src.carried <- src.carried + String.length bytes;
    let now = Engine.now t.engine in
    let start = Float.max now src.busy_until in
    let ser = float_of_int (8 * String.length bytes) /. t.bandwidth_bps in
    src.busy_until <- start +. ser;
    let fate = match src.tap with None -> Pass | Some f -> f bytes in
    match fate with
    | Drop -> ()
    | Pass | Deliver _ ->
      let bytes, extra =
        match fate with Deliver (b, d) -> (b, d) | _ -> (bytes, 0.0)
      in
      let deliver_at = start +. ser +. t.latency +. extra in
      let gen = t.generation in
      t.in_flight <- t.in_flight + 1;
      ignore
        (Engine.schedule_at t.engine ~time:deliver_at (fun () ->
             t.in_flight <- t.in_flight - 1;
             if t.opened && t.generation = gen then dst.receiver bytes))
  end

let cross_send c side bytes =
  let s = this_x c side in
  if s.x_open && bytes <> "" then begin
    let r = other_x c side in
    s.x_carried <- s.x_carried + String.length bytes;
    let now = Engine.now (Pengine.part c.xc_pe s.x_part) in
    let start = Float.max now s.x_busy_until in
    let ser = float_of_int (8 * String.length bytes) /. c.xc_bandwidth_bps in
    s.x_busy_until <- start +. ser;
    let fate = match s.x_tap with None -> Pass | Some f -> f bytes in
    match fate with
    | Drop -> ()
    | Pass | Deliver _ ->
      let bytes, extra =
        match fate with Deliver (b, d) -> (b, d) | _ -> (bytes, 0.0)
      in
      let deliver_at = start +. ser +. c.xc_latency +. extra in
      let gen = s.x_gen in
      Atomic.incr c.xc_in_flight;
      Pengine.post c.xc_pe ~src:s.x_part ~dst:r.x_part ~time:deliver_at
        (fun () ->
          Atomic.decr c.xc_in_flight;
          if r.x_open && r.x_gen = gen then r.x_receiver bytes)
  end

let send t side bytes =
  match t with
  | Shared s -> shared_send s side bytes
  | Cross c -> cross_send c side bytes

let endpoint t side =
  { Bgp_engine.Link.send = (fun bytes -> send t side bytes);
    start_connect = (fun () -> connect_from t side);
    close = (fun () -> close_from t side);
    set_receiver = set_receiver t side;
    set_on_connected = set_on_connected t side;
    set_on_closed = set_on_closed t side;
    set_tap =
      (function Some f -> set_tap t side f | None -> clear_tap t side) }

let bytes_carried t side =
  match t with
  | Shared s -> (this_s s side).carried
  | Cross c -> (this_x c side).x_carried

let in_flight = function
  | Shared s -> s.in_flight
  | Cross c -> Atomic.get c.xc_in_flight
