(** A reliable, ordered, bidirectional byte channel inside the
    simulator — the stand-in for a TCP connection between a benchmark
    speaker and the router under test.

    Models propagation latency and per-direction serialization at a
    configurable bandwidth; delivery is loss-free and ordered, which is
    what BGP assumes of TCP. *)

type side = A | B

type fate = Bgp_engine.Link.fate =
  | Pass  (** deliver unchanged *)
  | Drop  (** silently discard (transport-level loss) *)
  | Deliver of string * float
      (** deliver this (possibly tampered) payload with the given extra
          delay on top of the channel latency (corruption/reordering) *)

type t

val create :
  Bgp_sim.Engine.t -> ?latency:float -> ?bandwidth_mbps:float -> unit -> t
(** Default latency 100 us, bandwidth 1000 Mbps.  Both sides live on
    the given engine; this is the original direct-scheduling path and
    is bit-identical to the pre-partitioning channel. *)

val create_cross :
  Bgp_sim.Pengine.t ->
  part_a:int ->
  part_b:int ->
  ?latency:float ->
  ?bandwidth_mbps:float ->
  unit ->
  t
(** A channel between two partitions of a {!Bgp_sim.Pengine}.  With
    [part_a = part_b] this is exactly {!create} on that partition's
    engine (same-partition sends stay the direct path).  Otherwise each
    side lives on its own partition: payload deliveries and
    connect/close notifications travel through the partitioned engine's
    mailbox and take effect one link latency later, which the
    conservative lookahead (the latency is registered as a bound) makes
    exact rather than approximate.  Connection state is per-side — a
    side keeps sending until the peer's close notification reaches it,
    and such bytes die on the wire via the per-epoch generation check,
    observably the same RST behavior as the shared path.
    @raise Invalid_argument if the parts differ and [latency <= 0]. *)

val set_receiver : t -> side -> (string -> unit) -> unit
(** Install the byte sink for one side (bytes sent by the {e other}
    side arrive here). *)

val set_on_connected : t -> side -> (unit -> unit) -> unit
val set_on_closed : t -> side -> (unit -> unit) -> unit

val set_tap : t -> side -> (string -> fate) -> unit
(** Install a fault-injection tap on bytes {e sent by} [side]: every
    [send] consults the tap to pass, drop, tamper with, or delay the
    payload.  Serialization cost is always charged for the original
    bytes.  The default (no tap) is exactly the loss-free channel —
    taps exist for the {!Bgp_faults} adversarial scenarios and change
    nothing until installed. *)

val clear_tap : t -> side -> unit

val connect : t -> unit
(** Begin the (abstracted) handshake; both sides' [on_connected] fire
    after one latency.  Idempotent while open.  Reconnecting after
    {!close} starts a new connection generation: bytes still in flight
    from the previous connection are discarded, never delivered into
    the new stream. *)

val close : t -> unit
(** Both sides' [on_closed] fire after one latency; in-flight bytes are
    dropped (as with a TCP RST).  Also how the fault injector models an
    unsolicited peer reset. *)

val is_open : t -> bool

val send : t -> side -> string -> unit
(** Queue bytes from [side] to its peer.  Silently dropped when the
    channel is closed (as with a TCP RST race). *)

val endpoint : t -> side -> Bgp_engine.Link.t
(** One side of the channel as a transport-neutral
    {!Bgp_engine.Link.t}.  [start_connect] opens the channel (harmless
    from the passive side, which never calls it), [close] closes it,
    and [set_tap] installs/clears this side's outbound tap.  This is
    how routers and speakers see a simulated channel — the same shape
    a live TCP connection presents. *)

val bytes_carried : t -> side -> int
(** Total payload bytes this side has transmitted. *)

val in_flight : t -> int
(** Payloads scheduled but not yet delivered, both directions.  Stale
    deliveries from a turned-over connection count until their delivery
    time passes.  A multi-router convergence detector treats
    [in_flight = 0] (on every channel) as "no bytes on the wire". *)
