module Sched = Bgp_sim.Sched
module Metrics = Bgp_stats.Metrics
module Tracer = Bgp_trace.Tracer

type stage_id =
  | Wire_decode
  | Import_policy
  | Adj_rib_in
  | Decision
  | Fib_install
  | Export_policy
  | Mrai_pacing

let all_stage_ids =
  [ Wire_decode; Import_policy; Adj_rib_in; Decision; Fib_install;
    Export_policy; Mrai_pacing ]

let stage_name = function
  | Wire_decode -> "wire-decode"
  | Import_policy -> "import-policy"
  | Adj_rib_in -> "adj-rib-in"
  | Decision -> "decision"
  | Fib_install -> "fib-install"
  | Export_policy -> "export-policy"
  | Mrai_pacing -> "mrai-pacing"

type work = {
  mutable w_bytes : int;
  mutable w_announced : int;
  mutable w_withdrawn : int;
  mutable w_peers : int;
  mutable w_attr_groups : int;
  mutable w_src : int;
  mutable w_candidates : int;
  mutable w_loc_changes : int;
  mutable w_fib_installs : int;
  mutable w_fib_replaces : int;
  mutable w_announcements : int;
  mutable w_mrai_buffered : int;
}

let work ?(bytes = 0) ?(announced = 0) ?(withdrawn = 0) ?(peers = 0)
    ?(attr_groups = 0) ?(src = -1) () =
  { w_bytes = bytes; w_announced = announced; w_withdrawn = withdrawn;
    w_peers = peers; w_attr_groups = attr_groups; w_src = src;
    w_candidates = 0; w_loc_changes = 0; w_fib_installs = 0;
    w_fib_replaces = 0; w_announcements = 0; w_mrai_buffered = 0 }

let prefixes w = w.w_announced + w.w_withdrawn
let fib_deltas w = w.w_fib_installs + w.w_fib_replaces

type spec = {
  sp_id : stage_id;
  sp_proc : string option;
  sp_cost : work -> float;
  sp_units : work -> int;
  sp_skip : work -> bool;
}

let spec ?proc ?(cost = fun _ -> 0.0) ?(units = fun _ -> 0)
    ?(skip = fun _ -> false) id =
  { sp_id = id; sp_proc = proc; sp_cost = cost; sp_units = units;
    sp_skip = skip }

let spec_id sp = sp.sp_id
let spec_proc sp = sp.sp_proc

type layout = Pipelined | Fused_paced of float

type hooks = {
  on_begin : stage_id -> unit;
  on_finish : stage_id -> unit;
  on_done : unit -> unit;
}

type stage = {
  spec : spec;
  proc : Sched.proc option;
  m_units : Metrics.counter;
  m_batches : Metrics.counter;
  m_cycles : Metrics.histogram;
}

type batch = { b_work : work; b_hooks : hooks; b_traced : bool; b_t0 : float }

(* Trace tracks: one per stage process (shared with the scheduler's
   run/block instants via name-deduplication in the tracer) plus an
   "updates" lane carrying whole-update latency spans and the
   zero-duration marks of inline stages. *)
type trace_state = {
  ts_tr : Tracer.t;
  ts_updates : Tracer.track;
  ts_stage : Tracer.track option array;  (* [None] = inline stage *)
}

type t = {
  clock : Bgp_engine.Clock.t;
  sched : Sched.t;
  layout : layout;
  stages : stage array;
  procs : (string * Sched.proc) list;  (* creation order *)
  fused_proc : Sched.proc option;      (* the single proc of a fused table *)
  pending : batch Queue.t;             (* paced batches (fused layout) *)
  mutable pacer_busy : bool;
  trace : trace_state option;
}

let create ~clock ~sched ~metrics ~layout ?tracer
    ?(trace_process = "bgpmark") specs =
  if specs = [] then invalid_arg "Pipeline.create: empty stage table";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      if Hashtbl.mem seen sp.sp_id then
        invalid_arg
          (Printf.sprintf "Pipeline.create: duplicate stage %s"
             (stage_name sp.sp_id));
      Hashtbl.replace seen sp.sp_id ())
    specs;
  (* One scheduler process per distinct name, in table order. *)
  let procs =
    List.fold_left
      (fun acc sp ->
        match sp.sp_proc with
        | Some name when not (List.mem_assoc name acc) ->
          acc @ [ (name, Sched.add_proc sched name) ]
        | Some _ | None -> acc)
      [] specs
  in
  let fused_proc =
    match layout with
    | Pipelined -> None
    | Fused_paced _ -> (
      match procs with
      | [ (_, p) ] -> Some p
      | _ ->
        invalid_arg
          (Printf.sprintf
             "Pipeline.create: fused layout needs exactly one process, got %d"
             (List.length procs)))
  in
  let stages =
    Array.of_list
      (List.map
         (fun sp ->
           let name = stage_name sp.sp_id in
           { spec = sp;
             proc =
               Option.map (fun n -> List.assoc n procs) sp.sp_proc;
             m_units = Metrics.counter metrics ("pipeline." ^ name ^ ".units");
             m_batches =
               Metrics.counter metrics ("pipeline." ^ name ^ ".batches");
             m_cycles =
               Metrics.histogram metrics ("pipeline." ^ name ^ ".cycles") })
         specs)
  in
  let trace =
    Option.map
      (fun tr ->
        { ts_tr = tr;
          ts_updates = Tracer.track tr ~process:trace_process ~thread:"updates" ();
          ts_stage =
            Array.map
              (fun st ->
                Option.map
                  (fun name ->
                    Tracer.track tr ~process:trace_process ~thread:name ())
                  st.spec.sp_proc)
              stages })
      tracer
  in
  { clock; sched; layout; stages; procs; fused_proc;
    pending = Queue.create (); pacer_busy = false; trace }

(* Charge accounting at dispatch (cost is decided there), unit counts at
   completion (late stages' units are produced by earlier finish hooks,
   e.g. MRAI buffering happens while Export_policy emits). *)
let record_dispatch st cycles =
  Metrics.incr st.m_batches;
  Metrics.observe st.m_cycles cycles

let record_finish st w = Metrics.incr ~by:(st.spec.sp_units w) st.m_units

(* --- Pipelined layout: one scheduled job per proc-bearing stage. ---- *)

let trace_update_done t b =
  match t.trace with
  | Some ts when b.b_traced ->
    Tracer.update_span ts.ts_tr ts.ts_updates ~dispatch:b.b_t0
      ~finish:(Bgp_engine.Clock.now t.clock) ~peer:b.b_work.w_src
      ~prefixes:(prefixes b.b_work) ~bytes:b.b_work.w_bytes
  | _ -> ()

let rec dispatch_from t b i =
  if i >= Array.length t.stages then begin
    trace_update_done t b;
    b.b_hooks.on_done ()
  end
  else begin
    let st = t.stages.(i) in
    if st.spec.sp_skip b.b_work then dispatch_from t b (i + 1)
    else begin
      b.b_hooks.on_begin st.spec.sp_id;
      let cycles = st.spec.sp_cost b.b_work in
      record_dispatch st cycles;
      let t_dispatch =
        if b.b_traced then Bgp_engine.Clock.now t.clock else 0.0
      in
      let complete () =
        b.b_hooks.on_finish st.spec.sp_id;
        record_finish st b.b_work;
        (match t.trace with
        | Some ts when b.b_traced ->
          let w = b.b_work in
          let stage = stage_name st.spec.sp_id in
          (match ts.ts_stage.(i) with
          | Some tk ->
            Tracer.stage_span ts.ts_tr tk ~stage ~dispatch:t_dispatch
              ~finish:(Bgp_engine.Clock.now t.clock) ~cycles
              ~units:(st.spec.sp_units w) ~attr_groups:w.w_attr_groups
              ~peer:w.w_src
          | None ->
            Tracer.stage_mark ts.ts_tr ts.ts_updates ~stage ~ts:t_dispatch
              ~units:(st.spec.sp_units w) ~attr_groups:w.w_attr_groups
              ~peer:w.w_src)
        | _ -> ());
        dispatch_from t b (i + 1)
      in
      match st.proc with
      | None -> complete ()  (* inline bookkeeping: no simulated CPU *)
      | Some p -> Sched.submit t.sched p ~cycles complete
    end
  end

(* --- Fused layout: all stages priced into one paced job. ------------ *)

let dispatch_fused t b =
  let n = Array.length t.stages in
  let ran = Array.make n false in
  let total = ref 0.0 in
  let costs = if b.b_traced then Array.make n 0.0 else [||] in
  Array.iteri
    (fun i st ->
      if not (st.spec.sp_skip b.b_work) then begin
        ran.(i) <- true;
        b.b_hooks.on_begin st.spec.sp_id;
        let cycles = st.spec.sp_cost b.b_work in
        record_dispatch st cycles;
        if b.b_traced then costs.(i) <- cycles;
        total := !total +. cycles
      end)
    t.stages;
  let proc = Option.get t.fused_proc in
  let t_dispatch = if b.b_traced then Bgp_engine.Clock.now t.clock else 0.0 in
  Sched.submit t.sched proc ~cycles:!total (fun () ->
      Array.iteri
        (fun i st ->
          if ran.(i) then begin
            b.b_hooks.on_finish st.spec.sp_id;
            record_finish st b.b_work
          end)
        t.stages;
      (match t.trace with
      | Some ts when b.b_traced ->
        (* One fused job slice on the single process track, with the
           stage slices nested inside it, partitioned proportionally to
           the cycles each stage was charged. *)
        let w = b.b_work in
        let tk =
          match ts.ts_stage.(0) with Some tk -> tk | None -> ts.ts_updates
        in
        let start, fin =
          Tracer.span_fifo ts.ts_tr tk ~name:"update-job"
            ~dispatch:t_dispatch ~finish:(Bgp_engine.Clock.now t.clock)
            ~args:
              [ ("prefixes", Tracer.Int (prefixes w));
                ("peer", Tracer.Int w.w_src) ]
            ()
        in
        let window = fin -. start in
        let n_ran =
          Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 ran
        in
        let cursor = ref start in
        Array.iteri
          (fun i st ->
            if ran.(i) then begin
              let frac =
                if !total > 0.0 then costs.(i) /. !total
                else 1.0 /. float_of_int (max n_ran 1)
              in
              let dur = window *. frac in
              Tracer.span ts.ts_tr tk ~name:(stage_name st.spec.sp_id)
                ~ts:!cursor ~dur
                ~args:
                  [ ("cycles", Tracer.Float costs.(i));
                    ("units", Tracer.Int (st.spec.sp_units w));
                    ("attr_groups", Tracer.Int w.w_attr_groups) ]
                ();
              cursor := !cursor +. dur
            end)
          t.stages;
        trace_update_done t b
      | _ -> ());
      b.b_hooks.on_done ())

let rec pump t pacing =
  if (not t.pacer_busy) && not (Queue.is_empty t.pending) then begin
    t.pacer_busy <- true;
    let b = Queue.pop t.pending in
    ignore
      (Bgp_engine.Clock.schedule t.clock ~delay:pacing (fun () ->
           dispatch_fused t
             { b with
               b_hooks =
                 { b.b_hooks with
                   on_done =
                     (fun () ->
                       b.b_hooks.on_done ();
                       t.pacer_busy <- false;
                       pump t pacing) } }))
  end

let submit t w hooks =
  let traced =
    match t.trace with Some ts -> Tracer.sample_this ts.ts_tr | None -> false
  in
  let b =
    { b_work = w; b_hooks = hooks; b_traced = traced;
      b_t0 = (if traced then Bgp_engine.Clock.now t.clock else 0.0) }
  in
  match t.layout with
  | Pipelined -> dispatch_from t b 0
  | Fused_paced pacing ->
    Queue.add b t.pending;
    pump t pacing

let procs t = t.procs

let find_proc t name = List.assoc_opt name t.procs

let stage_proc t id =
  Array.fold_left
    (fun acc st -> if st.spec.sp_id = id then st.proc else acc)
    None t.stages

let idle t =
  Queue.is_empty t.pending
  && (not t.pacer_busy)
  && List.for_all (fun (_, p) -> Sched.queue_length t.sched p = 0) t.procs

type stage_stat = {
  st_stage : string;
  st_proc : string option;
  st_units : int;
  st_batches : int;
  st_cycles : float;
}

let stage_stats t =
  Array.to_list
    (Array.map
       (fun st ->
         { st_stage = stage_name st.spec.sp_id;
           st_proc = st.spec.sp_proc;
           st_units = Metrics.value st.m_units;
           st_batches = Metrics.value st.m_batches;
           st_cycles = Metrics.hist_sum st.m_cycles })
       t.stages)

let pp_stage_stats ppf stats =
  Format.fprintf ppf "@[<v>%-14s %-12s %10s %10s %14s %12s@," "stage" "proc"
    "units" "batches" "cycles" "cyc/batch";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-14s %-12s %10d %10d %14.0f %12.0f@," s.st_stage
        (Option.value ~default:"-" s.st_proc)
        s.st_units s.st_batches s.st_cycles
        (if s.st_batches = 0 then 0.0
         else s.st_cycles /. float_of_int s.st_batches))
    stats;
  Format.fprintf ppf "@]"
