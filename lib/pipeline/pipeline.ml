module Engine = Bgp_sim.Engine
module Sched = Bgp_sim.Sched
module Metrics = Bgp_stats.Metrics

type stage_id =
  | Wire_decode
  | Import_policy
  | Adj_rib_in
  | Decision
  | Fib_install
  | Export_policy
  | Mrai_pacing

let all_stage_ids =
  [ Wire_decode; Import_policy; Adj_rib_in; Decision; Fib_install;
    Export_policy; Mrai_pacing ]

let stage_name = function
  | Wire_decode -> "wire-decode"
  | Import_policy -> "import-policy"
  | Adj_rib_in -> "adj-rib-in"
  | Decision -> "decision"
  | Fib_install -> "fib-install"
  | Export_policy -> "export-policy"
  | Mrai_pacing -> "mrai-pacing"

type work = {
  mutable w_bytes : int;
  mutable w_announced : int;
  mutable w_withdrawn : int;
  mutable w_peers : int;
  mutable w_attr_groups : int;
  mutable w_candidates : int;
  mutable w_loc_changes : int;
  mutable w_fib_installs : int;
  mutable w_fib_replaces : int;
  mutable w_announcements : int;
  mutable w_mrai_buffered : int;
}

let work ?(bytes = 0) ?(announced = 0) ?(withdrawn = 0) ?(peers = 0)
    ?(attr_groups = 0) () =
  { w_bytes = bytes; w_announced = announced; w_withdrawn = withdrawn;
    w_peers = peers; w_attr_groups = attr_groups; w_candidates = 0;
    w_loc_changes = 0; w_fib_installs = 0;
    w_fib_replaces = 0; w_announcements = 0; w_mrai_buffered = 0 }

let prefixes w = w.w_announced + w.w_withdrawn
let fib_deltas w = w.w_fib_installs + w.w_fib_replaces

type spec = {
  sp_id : stage_id;
  sp_proc : string option;
  sp_cost : work -> float;
  sp_units : work -> int;
  sp_skip : work -> bool;
}

let spec ?proc ?(cost = fun _ -> 0.0) ?(units = fun _ -> 0)
    ?(skip = fun _ -> false) id =
  { sp_id = id; sp_proc = proc; sp_cost = cost; sp_units = units;
    sp_skip = skip }

let spec_id sp = sp.sp_id
let spec_proc sp = sp.sp_proc

type layout = Pipelined | Fused_paced of float

type hooks = {
  on_begin : stage_id -> unit;
  on_finish : stage_id -> unit;
  on_done : unit -> unit;
}

type stage = {
  spec : spec;
  proc : Sched.proc option;
  m_units : Metrics.counter;
  m_batches : Metrics.counter;
  m_cycles : Metrics.histogram;
}

type batch = { b_work : work; b_hooks : hooks }

type t = {
  engine : Engine.t;
  sched : Sched.t;
  layout : layout;
  stages : stage array;
  procs : (string * Sched.proc) list;  (* creation order *)
  fused_proc : Sched.proc option;      (* the single proc of a fused table *)
  pending : batch Queue.t;             (* paced batches (fused layout) *)
  mutable pacer_busy : bool;
}

let create ~engine ~sched ~metrics ~layout specs =
  if specs = [] then invalid_arg "Pipeline.create: empty stage table";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      if Hashtbl.mem seen sp.sp_id then
        invalid_arg
          (Printf.sprintf "Pipeline.create: duplicate stage %s"
             (stage_name sp.sp_id));
      Hashtbl.replace seen sp.sp_id ())
    specs;
  (* One scheduler process per distinct name, in table order. *)
  let procs =
    List.fold_left
      (fun acc sp ->
        match sp.sp_proc with
        | Some name when not (List.mem_assoc name acc) ->
          acc @ [ (name, Sched.add_proc sched name) ]
        | Some _ | None -> acc)
      [] specs
  in
  let fused_proc =
    match layout with
    | Pipelined -> None
    | Fused_paced _ -> (
      match procs with
      | [ (_, p) ] -> Some p
      | _ ->
        invalid_arg
          (Printf.sprintf
             "Pipeline.create: fused layout needs exactly one process, got %d"
             (List.length procs)))
  in
  let stages =
    Array.of_list
      (List.map
         (fun sp ->
           let name = stage_name sp.sp_id in
           { spec = sp;
             proc =
               Option.map (fun n -> List.assoc n procs) sp.sp_proc;
             m_units = Metrics.counter metrics ("pipeline." ^ name ^ ".units");
             m_batches =
               Metrics.counter metrics ("pipeline." ^ name ^ ".batches");
             m_cycles =
               Metrics.histogram metrics ("pipeline." ^ name ^ ".cycles") })
         specs)
  in
  { engine; sched; layout; stages; procs; fused_proc;
    pending = Queue.create (); pacer_busy = false }

(* Charge accounting at dispatch (cost is decided there), unit counts at
   completion (late stages' units are produced by earlier finish hooks,
   e.g. MRAI buffering happens while Export_policy emits). *)
let record_dispatch st cycles =
  Metrics.incr st.m_batches;
  Metrics.observe st.m_cycles cycles

let record_finish st w = Metrics.incr ~by:(st.spec.sp_units w) st.m_units

(* --- Pipelined layout: one scheduled job per proc-bearing stage. ---- *)

let rec dispatch_from t b i =
  if i >= Array.length t.stages then b.b_hooks.on_done ()
  else begin
    let st = t.stages.(i) in
    if st.spec.sp_skip b.b_work then dispatch_from t b (i + 1)
    else begin
      b.b_hooks.on_begin st.spec.sp_id;
      let cycles = st.spec.sp_cost b.b_work in
      record_dispatch st cycles;
      let complete () =
        b.b_hooks.on_finish st.spec.sp_id;
        record_finish st b.b_work;
        dispatch_from t b (i + 1)
      in
      match st.proc with
      | None -> complete ()  (* inline bookkeeping: no simulated CPU *)
      | Some p -> Sched.submit t.sched p ~cycles complete
    end
  end

(* --- Fused layout: all stages priced into one paced job. ------------ *)

let dispatch_fused t b =
  let n = Array.length t.stages in
  let ran = Array.make n false in
  let total = ref 0.0 in
  Array.iteri
    (fun i st ->
      if not (st.spec.sp_skip b.b_work) then begin
        ran.(i) <- true;
        b.b_hooks.on_begin st.spec.sp_id;
        let cycles = st.spec.sp_cost b.b_work in
        record_dispatch st cycles;
        total := !total +. cycles
      end)
    t.stages;
  let proc = Option.get t.fused_proc in
  Sched.submit t.sched proc ~cycles:!total (fun () ->
      Array.iteri
        (fun i st ->
          if ran.(i) then begin
            b.b_hooks.on_finish st.spec.sp_id;
            record_finish st b.b_work
          end)
        t.stages;
      b.b_hooks.on_done ())

let rec pump t pacing =
  if (not t.pacer_busy) && not (Queue.is_empty t.pending) then begin
    t.pacer_busy <- true;
    let b = Queue.pop t.pending in
    ignore
      (Engine.schedule t.engine ~delay:pacing (fun () ->
           dispatch_fused t
             { b with
               b_hooks =
                 { b.b_hooks with
                   on_done =
                     (fun () ->
                       b.b_hooks.on_done ();
                       t.pacer_busy <- false;
                       pump t pacing) } }))
  end

let submit t w hooks =
  let b = { b_work = w; b_hooks = hooks } in
  match t.layout with
  | Pipelined -> dispatch_from t b 0
  | Fused_paced pacing ->
    Queue.add b t.pending;
    pump t pacing

let procs t = t.procs

let find_proc t name = List.assoc_opt name t.procs

let stage_proc t id =
  Array.fold_left
    (fun acc st -> if st.spec.sp_id = id then st.proc else acc)
    None t.stages

let idle t =
  Queue.is_empty t.pending
  && (not t.pacer_busy)
  && List.for_all (fun (_, p) -> Sched.queue_length t.sched p = 0) t.procs

type stage_stat = {
  st_stage : string;
  st_proc : string option;
  st_units : int;
  st_batches : int;
  st_cycles : float;
}

let stage_stats t =
  Array.to_list
    (Array.map
       (fun st ->
         { st_stage = stage_name st.spec.sp_id;
           st_proc = st.spec.sp_proc;
           st_units = Metrics.value st.m_units;
           st_batches = Metrics.value st.m_batches;
           st_cycles = Metrics.hist_sum st.m_cycles })
       t.stages)

let pp_stage_stats ppf stats =
  Format.fprintf ppf "@[<v>%-14s %-12s %10s %10s %14s %12s@," "stage" "proc"
    "units" "batches" "cycles" "cyc/batch";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-14s %-12s %10d %10d %14.0f %12.0f@," s.st_stage
        (Option.value ~default:"-" s.st_proc)
        s.st_units s.st_batches s.st_cycles
        (if s.st_batches = 0 then 0.0
         else s.st_cycles /. float_of_int s.st_batches))
    stats;
  Format.fprintf ppf "@]"
