(** The staged per-update transaction pipeline.

    The paper's metric — transactions per second — is a prefix-level
    route update fully processed through wire decode, import policy,
    Adj-RIB-In, the decision process, Loc-RIB/FIB installation, export
    policy, and (optionally) MRAI pacing.  This module makes that path
    an explicit, instrumented abstraction:

    - a {e stage} is declared by a {!spec}: which simulated
      {!Bgp_sim.Sched} process it runs on (or none, for pure protocol
      bookkeeping), a cost hook giving its simulated CPU cycles as a
      function of the batch's {!work} profile (the hooks are built from
      the architecture's cost model), and per-stage metrics (unit and
      batch counters plus a cycle histogram) registered in a shared
      {!Bgp_stats.Metrics} registry;
    - an {e architecture} is a declarative stage table plus an
      execution {!layout} — [Pipelined] runs each proc-bearing stage as
      its own scheduled job (the XORP multi-process structure), while
      [Fused_paced] charges all stages as one job on one process behind
      a fixed per-message pacing delay (the IOS black box);
    - all NLRI of one inbound UPDATE flow through as a single batch
      (one decision run per message — the paper's transaction
      definition).

    The protocol side effects (running the RIB machinery, installing
    FIB deltas, emitting announcements) are supplied per batch as
    {!hooks}; the pipeline owns sequencing, CPU charging, and cost
    accounting. *)

(** The seven stages of the per-update transaction path, in pipeline
    order. *)
type stage_id =
  | Wire_decode     (** message receive: TCP/parse per byte and prefix *)
  | Import_policy   (** inbound policy evaluation fan-out *)
  | Adj_rib_in      (** Adj-RIB-In maintenance (runs the RIB machinery) *)
  | Decision        (** best-route selection + announcement building *)
  | Fib_install     (** Loc-RIB commit pushed to the FIB *)
  | Export_policy   (** advertisement emission toward peers *)
  | Mrai_pacing     (** RFC 4271 §9.2.1.1 outbound batching *)

val all_stage_ids : stage_id list
(** Pipeline order. *)

val stage_name : stage_id -> string
(** e.g. ["wire-decode"]. *)

(** The per-batch work profile: pure counts describing one inbound
    UPDATE's journey, filled in by the protocol hooks as the batch
    advances.  Cost hooks price stages from these counts alone, which
    keeps the stage table independent of protocol data structures. *)
type work = {
  mutable w_bytes : int;          (** wire size of the UPDATE *)
  mutable w_announced : int;      (** NLRI count *)
  mutable w_withdrawn : int;      (** withdrawn-routes count *)
  mutable w_peers : int;          (** import fan-out (attached peers) *)
  mutable w_attr_groups : int;
      (** distinct attribute sets in the batch: 1 for the shared NLRI
          handle (+1 when withdrawals ride along).  The attr-group
          batched path does per-attribute work (interning, loop
          guards) once per group while TPS stays prefix-level
          ({!prefixes}).  Stage costs ignore it by default, so legacy
          cost tables are unchanged. *)
  mutable w_src : int;
      (** source peer id, or -1 when not peer-originated (trace
          annotation only; never priced) *)
  mutable w_candidates : int;     (** routes considered by the decision *)
  mutable w_loc_changes : int;    (** Loc-RIB mutations *)
  mutable w_fib_installs : int;   (** FIB add/withdraw deltas *)
  mutable w_fib_replaces : int;   (** FIB entry replacements *)
  mutable w_announcements : int;  (** outbound advertisements produced *)
  mutable w_mrai_buffered : int;  (** advertisements held by MRAI pacing *)
}

val work :
  ?bytes:int -> ?announced:int -> ?withdrawn:int -> ?peers:int ->
  ?attr_groups:int -> ?src:int -> unit -> work
(** A fresh profile; every unlisted field starts at 0 ([src] at -1). *)

val prefixes : work -> int
(** [w_announced + w_withdrawn] — the batch's transaction count. *)

val fib_deltas : work -> int
(** [w_fib_installs + w_fib_replaces]. *)

(** Declarative description of one stage (see {!spec}). *)
type spec

val spec :
  ?proc:string ->
  ?cost:(work -> float) ->
  ?units:(work -> int) ->
  ?skip:(work -> bool) ->
  stage_id ->
  spec
(** [proc]: name of the scheduler process the stage's cycles are
    charged to; omitted for inline bookkeeping stages that consume no
    simulated CPU.  [cost] (default: 0 cycles) prices one batch.
    [units] (default: 0) is what the stage's unit counter advances by
    per batch.  [skip] (default: never) suppresses the stage for
    batches it does not apply to (e.g. FIB install when an update
    changed no forwarding entry). *)

val spec_id : spec -> stage_id
val spec_proc : spec -> string option

(** How the stage table executes on the scheduler. *)
type layout =
  | Pipelined
      (** every proc-bearing stage is a separate scheduled job;
          consecutive batches overlap across processes (XORP) *)
  | Fused_paced of float
      (** all stages of a batch are charged as one job on the single
          named process, and each batch waits the given pacing delay
          (seconds) before dispatch (IOS) *)

(** Protocol callbacks for one batch.  [on_begin] runs when a stage is
    dispatched (before its cycles are charged) — this is where work
    that prices later stages happens; [on_finish] runs when the
    stage's cycles have executed; [on_done] runs after the last
    stage. *)
type hooks = {
  on_begin : stage_id -> unit;
  on_finish : stage_id -> unit;
  on_done : unit -> unit;
}

type t

val create :
  clock:Bgp_engine.Clock.t ->
  sched:Bgp_sim.Sched.t ->
  metrics:Bgp_stats.Metrics.t ->
  layout:layout ->
  ?tracer:Bgp_trace.Tracer.t ->
  ?trace_process:string ->
  spec list ->
  t
(** Build a pipeline from a stage table.  Scheduler processes are
    created here, one per distinct [proc] name in table order, and the
    per-stage metrics ([pipeline.<stage>.units], [.batches],
    [.cycles]) are registered in [metrics].

    With [tracer], sampled batches record structured spans: each
    proc-bearing stage becomes a slice on a track named after its
    process ([trace_process]/<proc>, shared with the scheduler's
    run/block instants), inline stages become zero-duration marks and
    whole-update submit-to-done latencies become async spans on an
    ["updates"] track.  Under [Fused_paced] the single job is one
    ["update-job"] slice with per-stage slices nested inside it,
    partitioned proportionally to the cycles charged.  Tracing is
    observational only: virtual timings, scheduling and metrics are
    identical with or without it.
    @raise Invalid_argument on a duplicate stage id, an empty table, or
    a [Fused_paced] table naming more than one process. *)

val submit : t -> work -> hooks -> unit
(** Route one batch through every stage. *)

val procs : t -> (string * Bgp_sim.Sched.proc) list
(** The scheduler processes backing the table, in creation order. *)

val find_proc : t -> string -> Bgp_sim.Sched.proc option

val stage_proc : t -> stage_id -> Bgp_sim.Sched.proc option
(** The process a stage runs on ([None] for inline stages or absent
    ids). *)

val idle : t -> bool
(** No batch queued, paced, or holding CPU on any stage process. *)

(** A per-stage accounting snapshot (from the shared registry). *)
type stage_stat = {
  st_stage : string;
  st_proc : string option;
  st_units : int;    (** stage-specific unit count (prefixes, deltas, ...) *)
  st_batches : int;  (** batches that executed the stage *)
  st_cycles : float; (** total simulated CPU cycles charged *)
}

val stage_stats : t -> stage_stat list
(** Table-ordered snapshot of every stage's counters. *)

val pp_stage_stats : Format.formatter -> stage_stat list -> unit
(** Render a breakdown table (units, batches, cycles, cycles/batch). *)
