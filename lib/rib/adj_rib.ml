module H = Hashtbl.Make (struct
  type t = Bgp_addr.Prefix.t

  let equal = Bgp_addr.Prefix.equal
  let hash = Bgp_addr.Prefix.hash
end)

module I = Bgp_route.Attrs.Interned

type t = I.t H.t

let create () = H.create 1024

type change = [ `New | `Changed | `Unchanged ]

let set t p attrs =
  match H.find_opt t p with
  | None ->
    H.replace t p attrs;
    `New
  | Some old ->
    (* Interned handles: an integer compare in the common case, with a
       structural fallback — never an O(path-length) walk. *)
    if I.equal old attrs then `Unchanged
    else begin
      H.replace t p attrs;
      `Changed
    end

let remove t p =
  if H.mem t p then begin
    H.remove t p;
    true
  end
  else false

let find t p = H.find_opt t p
let mem t p = H.mem t p
let size t = H.length t
let iter f t = H.iter f t
let fold f t acc = H.fold f t acc
let clear t = H.reset t

let prefixes t =
  H.fold (fun p _ acc -> p :: acc) t []
  |> List.sort Bgp_addr.Prefix.compare
