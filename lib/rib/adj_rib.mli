(** One Adj-RIB: the per-neighbor route store (RFC 4271 §3.2).

    Used both inbound (Adj-RIB-In: unprocessed routes advertised {e by}
    a neighbor) and outbound (Adj-RIB-Out: routes selected for
    advertisement {e to} a neighbor).  Keyed by prefix; holds an
    interned handle ({!Bgp_route.Attrs.Interned}) to the path
    attributes last exchanged for that prefix, so duplicate detection
    is an id compare and a full table stores each attribute set once. *)

type t

val create : unit -> t

type change = [ `New | `Changed | `Unchanged ]

val set : t -> Bgp_addr.Prefix.t -> Bgp_route.Attrs.Interned.t -> change
(** Record an announcement. [`Unchanged] means the identical attributes
    were already present (a duplicate announcement). *)

val remove : t -> Bgp_addr.Prefix.t -> bool
(** Record a withdrawal; [false] when the prefix was not present. *)

val find : t -> Bgp_addr.Prefix.t -> Bgp_route.Attrs.Interned.t option
val mem : t -> Bgp_addr.Prefix.t -> bool
val size : t -> int
val iter : (Bgp_addr.Prefix.t -> Bgp_route.Attrs.Interned.t -> unit) -> t -> unit

val fold :
  (Bgp_addr.Prefix.t -> Bgp_route.Attrs.Interned.t -> 'a -> 'a) -> t -> 'a -> 'a

val clear : t -> unit

val prefixes : t -> Bgp_addr.Prefix.t list
(** Sorted by prefix — independent of hash-table fold order. *)
