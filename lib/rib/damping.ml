module Prefix = Bgp_addr.Prefix
module Peer = Bgp_route.Peer
module I = Bgp_route.Attrs.Interned
module Metrics = Bgp_stats.Metrics

type config = {
  half_life : float;
  suppress_threshold : float;
  reuse_threshold : float;
  max_suppress : float;
  withdraw_penalty : float;
  attr_change_penalty : float;
}

let rfc_config =
  { half_life = 900.; suppress_threshold = 2000.; reuse_threshold = 750.;
    max_suppress = 3600.; withdraw_penalty = 1000.; attr_change_penalty = 500. }

let test_config =
  { half_life = 2.; suppress_threshold = 1500.; reuse_threshold = 750.;
    max_suppress = 8.; withdraw_penalty = 1000.; attr_change_penalty = 500. }

let ceiling c = c.reuse_threshold *. (2. ** (c.max_suppress /. c.half_life))

type entry = {
  e_peer : Peer.t;
  e_prefix : Prefix.t;
  mutable penalty : float;       (* value as of [updated_at] *)
  mutable updated_at : float;
  mutable suppressed : bool;
  mutable suppressed_at : float;
  mutable last_attrs : I.t option;  (* None = last event was a withdrawal *)
}

module Key = struct
  type t = int * Prefix.t
  let equal (a, p) (b, q) = a = b && Prefix.equal p q
  let hash (a, p) = (a * 0x9e3779b1) lxor Prefix.hash p
end

module Tbl = Hashtbl.Make (Key)

type verdict = Pass | Suppress

type t = {
  cfg : config;
  ceiling : float;
  entries : entry Tbl.t;
  mutable n_suppressed : int;
  mutable n_flaps : int;
  mutable n_suppressions : int;
  mutable n_reuses : int;
  c_flaps : Metrics.counter option;
  c_suppressions : Metrics.counter option;
  c_reuses : Metrics.counter option;
  h_reuse_latency : Metrics.histogram option;
}

let create ?metrics cfg =
  let t =
    { cfg; ceiling = ceiling cfg; entries = Tbl.create 64;
      n_suppressed = 0; n_flaps = 0; n_suppressions = 0; n_reuses = 0;
      c_flaps = Option.map (fun m -> Metrics.counter m "damping.flaps") metrics;
      c_suppressions =
        Option.map (fun m -> Metrics.counter m "damping.suppressions") metrics;
      c_reuses = Option.map (fun m -> Metrics.counter m "damping.reuses") metrics;
      h_reuse_latency =
        Option.map (fun m -> Metrics.histogram m "damping.reuse_latency") metrics }
  in
  Option.iter
    (fun m ->
      ignore (Metrics.gauge m "damping.suppressed" (fun () -> t.n_suppressed)))
    metrics;
  t

let config t = t.cfg

let bump c = Option.iter Metrics.incr c

let decay t e ~now =
  let dt = now -. e.updated_at in
  if dt > 0. then begin
    e.penalty <- e.penalty *. (2. ** (-.dt /. t.cfg.half_life));
    e.updated_at <- now
  end

let key peer prefix = (peer.Peer.id, prefix)

(* A route whose penalty has decayed well under the reuse threshold and
   which is not suppressed carries no information: forget it so the
   table tracks only routes that are actually flapping. *)
let forgiven t e = (not e.suppressed) && e.penalty < t.cfg.reuse_threshold /. 2.

let charge t e amount =
  e.penalty <- Float.min (e.penalty +. amount) t.ceiling;
  t.n_flaps <- t.n_flaps + 1;
  bump t.c_flaps

let suppress t e ~now =
  e.suppressed <- true;
  e.suppressed_at <- now;
  t.n_suppressed <- t.n_suppressed + 1;
  t.n_suppressions <- t.n_suppressions + 1;
  bump t.c_suppressions

let release t e ~now =
  e.suppressed <- false;
  t.n_suppressed <- t.n_suppressed - 1;
  t.n_reuses <- t.n_reuses + 1;
  bump t.c_reuses;
  Option.iter
    (fun h -> Metrics.observe h (now -. e.suppressed_at))
    t.h_reuse_latency

let on_announce t ~now ~peer ~prefix ~attrs =
  match Tbl.find_opt t.entries (key peer prefix) with
  | None -> Pass (* first sighting: no flap, no state *)
  | Some e ->
    decay t e ~now;
    (match e.last_attrs with
    | Some prev when not (I.equal prev attrs) ->
      charge t e t.cfg.attr_change_penalty
    | _ -> ());
    e.last_attrs <- Some attrs;
    if e.suppressed then
      if e.penalty <= t.cfg.reuse_threshold then begin
        release t e ~now;
        if forgiven t e then Tbl.remove t.entries (key peer prefix);
        Pass
      end
      else Suppress
    else if e.penalty >= t.cfg.suppress_threshold then begin
      suppress t e ~now;
      Suppress
    end
    else begin
      if forgiven t e then Tbl.remove t.entries (key peer prefix);
      Pass
    end

let note_withdraw t ~now ~peer ~prefix =
  let e =
    match Tbl.find_opt t.entries (key peer prefix) with
    | Some e -> decay t e ~now; e
    | None ->
      let e =
        { e_peer = peer; e_prefix = prefix; penalty = 0.; updated_at = now;
          suppressed = false; suppressed_at = now; last_attrs = None }
      in
      Tbl.replace t.entries (key peer prefix) e;
      e
  in
  charge t e t.cfg.withdraw_penalty;
  e.last_attrs <- None;
  if (not e.suppressed) && e.penalty >= t.cfg.suppress_threshold then
    suppress t e ~now

let penalty t ~now ~peer ~prefix =
  match Tbl.find_opt t.entries (key peer prefix) with
  | None -> 0.
  | Some e -> e.penalty *. (2. ** (-.(now -. e.updated_at) /. t.cfg.half_life))

let suppressed_count t = t.n_suppressed

let reuse_time t e =
  (* Solve penalty * 2^(-(x - updated)/hl) = reuse for x. *)
  if e.penalty <= t.cfg.reuse_threshold then e.updated_at
  else
    e.updated_at
    +. t.cfg.half_life *. (log (e.penalty /. t.cfg.reuse_threshold) /. log 2.)

let next_reuse_at t =
  Tbl.fold
    (fun _ e acc ->
      if not e.suppressed then acc
      else
        let at = reuse_time t e in
        match acc with Some b when b <= at -> acc | _ -> Some at)
    t.entries None

let take_reusable t ~now =
  let ready =
    Tbl.fold
      (fun _ e acc ->
        if e.suppressed then begin
          decay t e ~now;
          if e.penalty <= t.cfg.reuse_threshold then e :: acc else acc
        end
        else acc)
      t.entries []
  in
  let ready =
    List.sort
      (fun a b ->
        match compare a.e_peer.Peer.id b.e_peer.Peer.id with
        | 0 -> Prefix.compare a.e_prefix b.e_prefix
        | c -> c)
      ready
  in
  List.filter_map
    (fun e ->
      release t e ~now;
      let out =
        match e.last_attrs with
        | Some attrs -> Some (e.e_peer, e.e_prefix, attrs)
        | None -> None
      in
      if forgiven t e then Tbl.remove t.entries (key e.e_peer e.e_prefix);
      out)
    ready

let flaps t = t.n_flaps
let suppressions t = t.n_suppressions
let reuses t = t.n_reuses
