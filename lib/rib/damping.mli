(** RFC 2439 route flap damping: a per-(peer, prefix) penalty /
    suppress / reuse-timer state machine.

    Each route accumulates a penalty on every flap (withdrawal, or
    re-announcement with changed attributes); the penalty decays
    exponentially with a configured half-life.  When it crosses the
    suppress threshold the route is {e suppressed} — further
    announcements are withheld from the decision process — until decay
    brings the penalty back below the reuse threshold, at which point
    the most recent announcement is released for re-injection.

    The module is pure with respect to time: every transition takes an
    explicit [~now] (seconds, from whichever {!Bgp_engine.Clock} the
    caller runs on), so the same flap sequence damps identically in
    sim and live modes.  Only routes that have actually flapped carry
    state — a clean table load with damping enabled allocates
    nothing. *)

type config = {
  half_life : float;          (** seconds for the penalty to halve *)
  suppress_threshold : float; (** penalty at/above which a route is suppressed *)
  reuse_threshold : float;    (** decayed penalty at/below which it is reused *)
  max_suppress : float;       (** max seconds a route may stay suppressed *)
  withdraw_penalty : float;   (** added per withdrawal *)
  attr_change_penalty : float;(** added per re-announcement with new attrs *)
}

val rfc_config : config
(** The RFC 2439 §4.2 example values: half-life 900 s, suppress 2000,
    reuse 750, max suppress 3600 s, penalties 1000 / 500. *)

val test_config : config
(** Compressed timers for simulation and tests: half-life 2 s, suppress
    1500, reuse 750, max suppress 8 s, penalties 1000 / 500 — two
    quick withdrawals suppress a route, and reuse arrives within
    seconds of sim time. *)

val ceiling : config -> float
(** The penalty ceiling [reuse_threshold * 2^(max_suppress /
    half_life)]: clamping accumulation here guarantees no route stays
    suppressed longer than [max_suppress] once it stops flapping. *)

type t

type verdict = Pass | Suppress

val create : ?metrics:Bgp_stats.Metrics.t -> config -> t
(** A damping table.  When [metrics] is given, registers
    [damping.flaps] / [damping.suppressions] / [damping.reuses]
    counters, the [damping.reuse_latency] histogram (seconds spent
    suppressed), and the [damping.suppressed] gauge. *)

val config : t -> config

val on_announce :
  t -> now:float -> peer:Bgp_route.Peer.t -> prefix:Bgp_addr.Prefix.t ->
  attrs:Bgp_route.Attrs.Interned.t -> verdict
(** Charge an incoming announcement.  [Pass] means the caller should
    run the route through the RIB as usual; [Suppress] means it must
    be withheld (the module remembers [attrs] and releases them via
    {!take_reusable} when the penalty decays).  A first announcement
    of an untracked route always passes and creates no state. *)

val note_withdraw :
  t -> now:float -> peer:Bgp_route.Peer.t -> prefix:Bgp_addr.Prefix.t -> unit
(** Charge a withdrawal.  Withdrawals themselves always reach the RIB
    (RFC 2439 §2.2: suppression never keeps an unreachable route). *)

val penalty :
  t -> now:float -> peer:Bgp_route.Peer.t -> prefix:Bgp_addr.Prefix.t -> float
(** Decayed penalty as of [now] ([0.] for untracked routes). *)

val suppressed_count : t -> int

val next_reuse_at : t -> float option
(** Earliest instant at which some suppressed route's penalty decays
    to the reuse threshold — the caller's reuse-timer deadline.
    [None] when nothing is suppressed. *)

val take_reusable :
  t -> now:float ->
  (Bgp_route.Peer.t * Bgp_addr.Prefix.t * Bgp_route.Attrs.Interned.t) list
(** Release every suppressed route whose penalty has decayed to the
    reuse threshold at [now].  Routes whose latest state is an
    announcement are returned (peer-id then prefix order, so
    re-injection is deterministic) for the caller to feed back into
    the decision process; routes withdrawn while suppressed are simply
    unsuppressed. *)

val flaps : t -> int
(** Total flaps charged since creation (not reset by metric phases). *)

val suppressions : t -> int
val reuses : t -> int
