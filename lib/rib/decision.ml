module R = Bgp_route.Route
module A = Bgp_route.Attrs
module Peer = Bgp_route.Peer

let default_local_pref = A.default_local_pref

type rule =
  | Local_origin
  | Local_pref
  | Path_length
  | Origin
  | Med
  | Ebgp_over_ibgp
  | Router_id
  | Peer_address
  | Identical

let pp_rule ppf r =
  Format.pp_print_string ppf
    (match r with
    | Local_origin -> "local-origin"
    | Local_pref -> "local-pref"
    | Path_length -> "as-path-length"
    | Origin -> "origin"
    | Med -> "med"
    | Ebgp_over_ibgp -> "ebgp-over-ibgp"
    | Router_id -> "router-id"
    | Peer_address -> "peer-address"
    | Identical -> "identical")

let compare_routes ~local_asn a b =
  (* Straight-line rule chain: each step yields [c] with c > 0 iff [a]
     preferred.  The attribute-dependent inputs come from the handles'
     memoized preference tuples ({!Bgp_route.Attrs.pref}): defaults are
     baked in at intern time, so no step walks an AS path or an option,
     and the chain allocates nothing but its return pair — this runs
     once per pairwise comparison on the decision hot path. *)
  let pa = R.pref a and pb = R.pref b in
  let c = Bool.compare (Peer.is_local (R.from a)) (Peer.is_local (R.from b)) in
  if c <> 0 then (c, Local_origin)
  else
    let c = Int.compare pa.A.pr_local_pref pb.A.pr_local_pref in
    if c <> 0 then (c, Local_pref)
    else
      let c = Int.compare pb.A.pr_path_len pa.A.pr_path_len in
      if c <> 0 then (c, Path_length)
      else
        let c = Int.compare pb.A.pr_origin pa.A.pr_origin in
        if c <> 0 then (c, Origin)
        else
          let c =
            match pa.A.pr_first_hop, pb.A.pr_first_hop with
            | Some na, Some nb when Bgp_route.Asn.equal na nb ->
              Int.compare pb.A.pr_med pa.A.pr_med
            | _ -> 0
          in
          if c <> 0 then (c, Med)
          else
            let is_ebgp r =
              (not (Peer.is_local (R.from r)))
              && not (Bgp_route.Asn.equal (R.from r).Peer.asn local_asn)
            in
            let c = Bool.compare (is_ebgp a) (is_ebgp b) in
            if c <> 0 then (c, Ebgp_over_ibgp)
            else
              let c =
                Bgp_addr.Ipv4.compare (R.from b).Peer.router_id
                  (R.from a).Peer.router_id
              in
              if c <> 0 then (c, Router_id)
              else
                let c =
                  Bgp_addr.Ipv4.compare (R.from b).Peer.addr (R.from a).Peer.addr
                in
                if c <> 0 then (c, Peer_address) else (0, Identical)

let better ~local_asn a b = fst (compare_routes ~local_asn a b) > 0

let select ~local_asn candidates =
  (* The fold's result is order-dependent because the ranking above is
     not a total order (MED comparability depends on the pair), so the
     caller must present candidates in stable source-peer order
     ({!Bgp_route.Peer.compare}: local routes first, then ascending
     peer id).  {!Bgp_rib.Rib_manager} iterates its Adj-RIBs-In in that
     order by construction, which keeps selection arrival-order
     independent without a per-call sort. *)
  match candidates with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun best r -> if better ~local_asn r best then r else best)
         first rest)
