module R = Bgp_route.Route
module A = Bgp_route.Attrs
module Peer = Bgp_route.Peer

let default_local_pref = A.default_local_pref

type rule =
  | Local_origin
  | Local_pref
  | Path_length
  | Origin
  | Med
  | Ebgp_over_ibgp
  | Router_id
  | Peer_address
  | Identical

let pp_rule ppf r =
  Format.pp_print_string ppf
    (match r with
    | Local_origin -> "local-origin"
    | Local_pref -> "local-pref"
    | Path_length -> "as-path-length"
    | Origin -> "origin"
    | Med -> "med"
    | Ebgp_over_ibgp -> "ebgp-over-ibgp"
    | Router_id -> "router-id"
    | Peer_address -> "peer-address"
    | Identical -> "identical")

let compare_routes ~local_asn a b =
  (* Each step returns [c] with c > 0 iff [a] preferred.  The
     attribute-dependent inputs come from the handles' memoized
     preference tuples ({!Bgp_route.Attrs.pref}): defaults are baked in
     at intern time, so no step walks an AS path or an option. *)
  let pa = R.pref a and pb = R.pref b in
  let steps =
    [ ( Local_origin,
        fun () ->
          Bool.compare (Peer.is_local (R.from a)) (Peer.is_local (R.from b)) );
      (Local_pref, fun () -> Int.compare pa.A.pr_local_pref pb.A.pr_local_pref);
      ( Path_length,
        fun () -> Int.compare pb.A.pr_path_len pa.A.pr_path_len );
      ( Origin,
        fun () -> Int.compare pb.A.pr_origin pa.A.pr_origin );
      ( Med,
        fun () ->
          match pa.A.pr_first_hop, pb.A.pr_first_hop with
          | Some na, Some nb when Bgp_route.Asn.equal na nb ->
            Int.compare pb.A.pr_med pa.A.pr_med
          | _ -> 0 );
      ( Ebgp_over_ibgp,
        fun () ->
          let is_ebgp r =
            (not (Peer.is_local (R.from r)))
            && not (Bgp_route.Asn.equal (R.from r).Peer.asn local_asn)
          in
          Bool.compare (is_ebgp a) (is_ebgp b) );
      ( Router_id,
        fun () ->
          Bgp_addr.Ipv4.compare (R.from b).Peer.router_id
            (R.from a).Peer.router_id );
      ( Peer_address,
        fun () ->
          Bgp_addr.Ipv4.compare (R.from b).Peer.addr (R.from a).Peer.addr )
    ]
  in
  let rec go = function
    | [] -> (0, Identical)
    | (rule, step) :: rest ->
      let c = step () in
      if c <> 0 then (c, rule) else go rest
  in
  go steps

let better ~local_asn a b = fst (compare_routes ~local_asn a b) > 0

let select ~local_asn candidates =
  (* Sorting by source peer first makes the fold's result independent
     of candidate arrival order even though the ranking above is not a
     total order (MED comparability depends on the pair). *)
  let sorted =
    List.sort (fun a b -> Peer.compare (R.from a) (R.from b)) candidates
  in
  match sorted with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun best r -> if better ~local_asn r best then r else best)
         first rest)
