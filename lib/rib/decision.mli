(** The BGP decision process (RFC 4271 §9.1): choose, per prefix, the
    single most preferred route among all Adj-RIB-In candidates.

    The ranking implemented here is the de-facto standard sequence the
    paper alludes to ("most vendors implement best path selection based
    on the length of AS path"):

    + locally originated routes win outright;
    + highest LOCAL_PREF (absent treated as {!default_local_pref});
    + shortest AS path ({!Bgp_route.As_path.length}, sets count 1);
    + lowest ORIGIN (IGP < EGP < INCOMPLETE);
    + lowest MED, compared only between routes from the same
      neighboring AS (absent treated as 0, i.e. best);
    + EBGP-learned preferred over IBGP-learned;
    + lowest peer BGP identifier;
    + lowest peer address (final deterministic tie-break). *)

val default_local_pref : int
(** 100, the customary default. *)

type rule =
  | Local_origin
  | Local_pref
  | Path_length
  | Origin
  | Med
  | Ebgp_over_ibgp
  | Router_id
  | Peer_address
  | Identical

val pp_rule : Format.formatter -> rule -> unit

val compare_routes :
  local_asn:Bgp_route.Asn.t -> Bgp_route.Route.t -> Bgp_route.Route.t ->
  int * rule
(** [(c, rule)] where [c > 0] iff the first route is preferred and
    [rule] names the step that discriminated ([Identical] when the
    routes tie through every step, which implies [c = 0]). *)

val better :
  local_asn:Bgp_route.Asn.t -> Bgp_route.Route.t -> Bgp_route.Route.t -> bool

val select :
  local_asn:Bgp_route.Asn.t -> Bgp_route.Route.t list ->
  Bgp_route.Route.t option
(** Best of the candidates, or [None] for an empty list.

    Precondition: candidates are in stable source-peer order
    ({!Bgp_route.Peer.compare}: local routes first, then ascending peer
    id; at most one candidate per peer).  Because the ranking is not a
    total order (MED comparability depends on the pair), the left fold
    is order-dependent; presenting the candidates in one fixed order is
    what keeps selection independent of update arrival order.
    {!Bgp_rib.Rib_manager} iterates its Adj-RIBs-In in exactly this
    order, so it never pays a per-call sort. *)
