module H = Hashtbl.Make (struct
  type t = Bgp_addr.Prefix.t

  let equal = Bgp_addr.Prefix.equal
  let hash = Bgp_addr.Prefix.hash
end)

type t = Bgp_route.Route.t H.t

let create () = H.create 4096

let set t r =
  let p = Bgp_route.Route.prefix r in
  match H.find_opt t p with
  | None ->
    H.replace t p r;
    `New
  | Some old ->
    if Bgp_route.Route.equal old r then `Unchanged
    else begin
      H.replace t p r;
      `Changed
    end

let remove t p =
  match H.find_opt t p with
  | None -> None
  | Some r ->
    H.remove t p;
    Some r

let find t p = H.find_opt t p
let size t = H.length t
let iter f t = H.iter (fun _ r -> f r) t
let fold f t acc = H.fold (fun _ r acc -> f r acc) t acc

let to_list t =
  fold (fun r acc -> r :: acc) t []
  |> List.sort (fun a b ->
         Bgp_addr.Prefix.compare
           (Bgp_route.Route.prefix a)
           (Bgp_route.Route.prefix b))

let fingerprint t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      let a = Bgp_route.Route.attrs r in
      Buffer.add_string buf
        (Format.asprintf "%s|%a|%s|%a|%s|%s\n"
           (Bgp_addr.Prefix.to_string (Bgp_route.Route.prefix r))
           Bgp_route.As_path.pp a.Bgp_route.Attrs.as_path
           (Bgp_addr.Ipv4.to_string a.Bgp_route.Attrs.next_hop)
           Bgp_route.Attrs.pp_origin a.Bgp_route.Attrs.origin
           (match a.Bgp_route.Attrs.med with
           | Some m -> string_of_int m
           | None -> "-")
           (match a.Bgp_route.Attrs.local_pref with
           | Some lp -> string_of_int lp
           | None -> "-")))
    (to_list t);
  Digest.to_hex (Digest.string (Buffer.contents buf))
