(** The Loc-RIB: routes selected by the local speaker's decision
    process (RFC 4271 §3.2).  One best route per prefix, with the
    source peer retained so re-advertisement and split-horizon
    filtering can consult it.

    Note (paper §III.A): the Loc-RIB is distinct from the forwarding
    table — changes here are pushed into {!Bgp_fib.Fib} by a separate
    (and separately costed) step. *)

type t

val create : unit -> t
val set : t -> Bgp_route.Route.t -> [ `New | `Changed | `Unchanged ]
val remove : t -> Bgp_addr.Prefix.t -> Bgp_route.Route.t option
(** Returns the evicted route, if any. *)

val find : t -> Bgp_addr.Prefix.t -> Bgp_route.Route.t option
val size : t -> int
val iter : (Bgp_route.Route.t -> unit) -> t -> unit
val fold : (Bgp_route.Route.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Bgp_route.Route.t list
(** Sorted by prefix — dumps and fingerprints do not depend on
    hash-table fold order. *)

val fingerprint : t -> string
(** Hex digest over the prefix-sorted
    [prefix|as_path|next_hop|origin|med|local_pref] dump.  Stable
    across runs and across execution modes: a simulated run and a live
    (loopback TCP) run of the same scenario must produce equal
    fingerprints — the sim-vs-live cross-validation invariant. *)
