module R = Bgp_route.Route
module A = Bgp_route.Attrs
module I = Bgp_route.Attrs.Interned
module M = Bgp_stats.Metrics
module Peer = Bgp_route.Peer
module Policy = Bgp_policy.Policy
module Fib = Bgp_fib.Fib
module P = Bgp_addr.Prefix

type peer_state = {
  peer : Peer.t;
  adj_in : Adj_rib.t;
  adj_out : Adj_rib.t;
  import : Policy.t;
  export : Policy.t;
  rr_client : bool;  (* route-reflection client (RFC 4456) *)
  mutable up : bool;  (* advertise to this peer? *)
}

type aggregate_config = {
  agg_prefix : P.t;
  agg_as_set : bool;
  agg_summary_only : bool;
}

type agg_state = { agg_cfg : aggregate_config; mutable agg_active : bool }

type t = {
  local_asn : Bgp_route.Asn.t;
  router_id : Bgp_addr.Ipv4.t;
  cluster_id : Bgp_addr.Ipv4.t;  (* RFC 4456; defaults to the router id *)
  default_import : Policy.t;
  default_export : Policy.t;
  peer_states : (int, peer_state) Hashtbl.t;
  (* [peer_states] snapshot sorted by {!Peer.compare}, rebuilt on
     {!add_peer}.  Peers are added during setup and then iterated on
     every decision, so caching the order here removes the
     sort-per-walk that [fold_peer_states] used to pay. *)
  mutable peers_sorted : peer_state array;
  incremental : bool;  (* enable the best-vs-challenger fast path *)
  aggregates : agg_state list;
  local_routes : Adj_rib.t;  (* locally originated, keyed like an adj-in *)
  loc : Loc_rib.t;
  (* Work counters live in a shared metrics registry so that a phase
     boundary ({!Bgp_stats.Metrics.reset_all}) clears RIB, router, and
     pipeline accounting together. *)
  c_updates_processed : M.counter;
  c_decisions_run : M.counter;
  c_decision_fastpath : M.counter;
  c_loc_rib_changes : M.counter;
  c_announcements_emitted : M.counter;
  c_policy_units : M.counter;
}

let create ?(import = Policy.accept_all) ?(export = Policy.accept_all)
    ?(aggregates = []) ?cluster_id ?metrics ?(incremental = true) ~local_asn
    ~router_id () =
  let metrics =
    match metrics with Some m -> m | None -> M.create ()
  in
  { local_asn; router_id;
    cluster_id = Option.value ~default:router_id cluster_id;
    default_import = import; default_export = export;
    peer_states = Hashtbl.create 16; peers_sorted = [||]; incremental;
    aggregates =
      List.map (fun agg_cfg -> { agg_cfg; agg_active = false }) aggregates;
    local_routes = Adj_rib.create (); loc = Loc_rib.create ();
    c_updates_processed = M.counter metrics "rib.updates_processed";
    c_decisions_run = M.counter metrics "rib.decisions_run";
    c_decision_fastpath = M.counter metrics "rib.decision_fastpath";
    c_loc_rib_changes = M.counter metrics "rib.loc_rib_changes";
    c_announcements_emitted = M.counter metrics "rib.announcements_emitted";
    c_policy_units = M.counter metrics "rib.policy_units" }

let local_asn t = t.local_asn
let router_id t = t.router_id

let rebuild_peer_cache t =
  let arr =
    Hashtbl.fold (fun _ ps acc -> ps :: acc) t.peer_states []
    |> Array.of_list
  in
  Array.sort (fun a b -> Peer.compare a.peer b.peer) arr;
  t.peers_sorted <- arr

let add_peer ?import ?export ?(rr_client = false) ?(up = true) t peer =
  if Peer.is_local peer then invalid_arg "Rib_manager.add_peer: local pseudo-peer";
  if Hashtbl.mem t.peer_states peer.Peer.id then
    invalid_arg
      (Printf.sprintf "Rib_manager.add_peer: duplicate peer id %d" peer.Peer.id);
  Hashtbl.replace t.peer_states peer.Peer.id
    { peer; adj_in = Adj_rib.create (); adj_out = Adj_rib.create ();
      import = Option.value ~default:t.default_import import;
      export = Option.value ~default:t.default_export export; rr_client; up };
  rebuild_peer_cache t

let peer_state t peer =
  match Hashtbl.find_opt t.peer_states peer.Peer.id with
  | Some ps -> ps
  | None ->
    invalid_arg (Printf.sprintf "Rib_manager: unknown peer id %d" peer.Peer.id)

let peers t = Array.to_list (Array.map (fun ps -> ps.peer) t.peers_sorted)

(* Deterministic peer iteration: every walk over [peer_states] goes
   through the cached sorted array, ordered by peer id, so no output can
   inherit the hash-table's fold order — and no walk pays a sort. *)
let fold_peer_states t f acc =
  Array.fold_left (fun acc ps -> f ps acc) acc t.peers_sorted

let loc_rib t = t.loc
let adj_in_size t peer = Adj_rib.size (peer_state t peer).adj_in
let adj_out_size t peer = Adj_rib.size (peer_state t peer).adj_out

(* The Adj-RIB-In size one UPDATE would leave behind, computed without
   mutating anything.  A re-announced prefix and a duplicate within the
   NLRI contribute zero growth; a withdrawal of a held prefix shrinks
   the projection unless the same message re-announces it (RFC 4271
   processes withdrawals first, so announce wins).  The prefix-limit
   check keys on this so a peer steadily re-announcing its existing
   routes — the subscriber-churn steady state — can never trip a limit
   at or above its live route count. *)
let projected_adj_in_size t peer ~announced ~withdrawn =
  let ps = peer_state t peer in
  let nlri = Hashtbl.create (max 16 (List.length announced)) in
  List.iter (fun p -> Hashtbl.replace nlri p ()) announced;
  let growth =
    Hashtbl.fold
      (fun p () acc -> if Adj_rib.mem ps.adj_in p then acc else acc + 1)
      nlri 0
  in
  let gone = Hashtbl.create (max 16 (List.length withdrawn)) in
  List.iter
    (fun p ->
      if Adj_rib.mem ps.adj_in p && not (Hashtbl.mem nlri p) then
        Hashtbl.replace gone p ())
    withdrawn;
  Adj_rib.size ps.adj_in + growth - Hashtbl.length gone

type announcement = {
  dest : Peer.t;
  ann_prefix : P.t;
  ann_attrs : I.t option;
}

let pp_announcement ppf a =
  match a.ann_attrs with
  | Some attrs ->
    Format.fprintf ppf "to %a: announce %a [%a]" Peer.pp a.dest P.pp
      a.ann_prefix I.pp attrs
  | None ->
    Format.fprintf ppf "to %a: withdraw %a" Peer.pp a.dest P.pp a.ann_prefix

type outcome = {
  adj_in_change : [ `New | `Changed | `Unchanged | `Removed | `Absent | `Loop ];
  loc_changed : bool;
  fib_deltas : Fib.delta list;
  announcements : announcement list;
  candidates : int;
  policy_work : int;
}

let no_op_outcome =
  { adj_in_change = `Unchanged; loc_changed = false; fib_deltas = [];
    announcements = []; candidates = 0; policy_work = 0 }

(* ------------------------------------------------------------------ *)
(* Decision support                                                    *)
(* ------------------------------------------------------------------ *)

let nexthop_of_route r =
  { Fib.nh_addr = (R.attrs r).A.next_hop;
    nh_port = (R.from r).Peer.id }

(* Candidates for [prefix]: the post-import-policy view of every
   Adj-RIB-In entry, plus local routes. Returns the candidate list and
   the policy work expended.  Candidate routes are built from the
   stored handles ({!R.of_interned}) — the decision hot path never
   touches the arena.

   The list comes out in stable source-peer order (local first, then
   ascending peer id), which is {!Decision.select}'s precondition: the
   ranking is not a total order (MED), so a fixed presentation order is
   what keeps selection independent of update arrival order. *)
let candidates_for t prefix =
  let work = ref 0 in
  let cands = ref [] in
  let arr = t.peers_sorted in
  for i = Array.length arr - 1 downto 0 do
    let ps = arr.(i) in
    match Adj_rib.find ps.adj_in prefix with
    | None -> ()
    | Some interned ->
      let r = R.of_interned ~prefix ~interned ~from:ps.peer in
      work := !work + Policy.work_units ps.import r;
      (match Policy.eval ps.import r with
      | Some r' -> cands := r' :: !cands
      | None -> ())
  done;
  (match Adj_rib.find t.local_routes prefix with
  | None -> ()
  | Some interned ->
    cands := R.of_interned ~prefix ~interned ~from:Peer.local :: !cands);
  (!cands, !work)

(* Transform the best route for advertisement to [ps], or None when it
   must not be advertised there (split horizon, communities, policy). *)
(* Is [p] a strict more-specific of [agg]? *)
let strict_under agg p =
  P.subsumes agg.agg_prefix p && P.len p > P.len agg.agg_prefix

let suppressed_by_aggregate t p =
  List.exists
    (fun ag ->
      ag.agg_active && ag.agg_cfg.agg_summary_only && strict_under ag.agg_cfg p)
    t.aggregates

let export_route t ps best work =
  let src = R.from best in
  if Peer.equal src ps.peer then None
  else if suppressed_by_aggregate t (R.prefix best) then None
  else begin
    let attrs = R.attrs best in
    let ebgp = not (Bgp_route.Asn.equal ps.peer.Peer.asn t.local_asn) in
    let src_ibgp =
      (not (Peer.is_local src)) && Bgp_route.Asn.equal src.Peer.asn t.local_asn
    in
    (* IBGP re-advertisement rule (RFC 4271 section 9.2): a route
       learned from an IBGP peer is not passed to other IBGP peers —
       unless this router is a route reflector for one side of the
       exchange (RFC 4456: client routes reflect to everyone, non-client
       routes reflect to clients). *)
    let reflection =
      if ebgp || not src_ibgp then `Plain
      else begin
        let src_client =
          match Hashtbl.find_opt t.peer_states src.Peer.id with
          | Some sps -> sps.rr_client
          | None -> false
        in
        if src_client || ps.rr_client then `Reflect else `Forbidden
      end
    in
    if reflection = `Forbidden then None
    else if
      A.has_community Bgp_route.Community.no_advertise attrs
      || (ebgp && A.has_community Bgp_route.Community.no_export attrs)
    then None
    else begin
      work := !work + Policy.work_units ps.export best;
      match Policy.eval ps.export best with
      | None -> None
      | Some r ->
        let attrs = R.attrs r in
        let rewritten =
          if ebgp then
            (* EBGP export: prepend our AS, next-hop-self, drop the
               IBGP-only LOCAL_PREF, and do not propagate a received
               MED to other EBGP neighbors (RFC 4271 section 5.1.4). *)
            Some
              { (A.prepend_as t.local_asn attrs) with
                A.next_hop = t.router_id; local_pref = None; med = None }
          else None
        in
        let rewritten =
          match reflection with
          | `Reflect ->
            (* RFC 4456 section 8: stamp the originator once, grow the
               cluster list on every reflection hop. *)
            let base = Option.value ~default:attrs rewritten in
            Some
              { base with
                A.originator_id =
                  Some
                    (Option.value ~default:src.Peer.router_id
                       base.A.originator_id);
                cluster_list = t.cluster_id :: base.A.cluster_list }
          | `Plain | `Forbidden -> rewritten
        in
        (* Untouched attributes reuse the route's handle; only a
           rewrite pays an arena lookup. *)
        Some
          (match rewritten with
          | None -> R.interned r
          | Some a -> I.intern a)
    end
  end

(* Diff desired advertisement against Adj-RIB-Out and produce the
   necessary announcement, updating the Adj-RIB-Out. *)
let sync_adj_out ps prefix desired =
  match desired with
  | Some attrs ->
    (match Adj_rib.set ps.adj_out prefix attrs with
    | `New | `Changed ->
      Some { dest = ps.peer; ann_prefix = prefix; ann_attrs = Some attrs }
    | `Unchanged -> None)
  | None ->
    if Adj_rib.remove ps.adj_out prefix then
      Some { dest = ps.peer; ann_prefix = prefix; ann_attrs = None }
    else None

(* Re-run the decision process for [prefix] and propagate the result to
   Loc-RIB, FIB deltas, and Adj-RIBs-Out. *)
let redecide t prefix =
  M.incr t.c_decisions_run;
  let cands, import_work = candidates_for t prefix in
  let best = Decision.select ~local_asn:t.local_asn cands in
  let work = ref import_work in
  let loc_changed, fib_deltas =
    match best with
    | None ->
      (match Loc_rib.remove t.loc prefix with
      | None -> (false, [])
      | Some _ -> (true, [ Fib.Withdraw prefix ]))
    | Some r ->
      let nh = nexthop_of_route r in
      let previous = Loc_rib.find t.loc prefix in
      (match Loc_rib.set t.loc r with
      | `Unchanged -> (false, [])
      | `New -> (true, [ Fib.Add (prefix, nh) ])
      | `Changed ->
        let delta =
          (* The forwarding table only holds next hops: a best-route
             change that keeps the next hop (e.g. same peer, new
             attributes) does not touch the FIB — the distinction
             scenarios 5/6 vs 7/8 hinge on. *)
          match previous with
          | Some old when Fib.nexthop_equal (nexthop_of_route old) nh -> []
          | _ -> [ Fib.Replace (prefix, nh) ]
        in
        (true, delta))
  in
  if loc_changed then M.incr t.c_loc_rib_changes;
  let announcements =
    if not loc_changed then []
    else
      fold_peer_states t
        (fun ps acc ->
          if not ps.up then acc
          else
            let desired =
              match best with
              | None -> None
              | Some r -> export_route t ps r work
            in
            match sync_adj_out ps prefix desired with
            | Some ann -> ann :: acc
            | None -> acc)
        []
      |> List.sort (fun a b -> Peer.compare a.dest b.dest)
  in
  M.incr ~by:(List.length announcements) t.c_announcements_emitted;
  M.incr ~by:!work t.c_policy_units;
  (loc_changed, fib_deltas, announcements, List.length cands, !work)

(* ------------------------------------------------------------------ *)
(* Route aggregation (RFC 4271 section 9.2.2.2 / CIDR)                 *)
(* ------------------------------------------------------------------ *)

(* Contributor routes: Loc-RIB entries strictly inside the aggregate. *)
let aggregate_contributors t agg =
  Loc_rib.fold
    (fun r acc -> if strict_under agg (R.prefix r) then r :: acc else acc)
    t.loc []

let aggregate_attrs t agg contributors =
  let as_path =
    if agg.agg_as_set then begin
      let asns =
        List.concat_map
          (fun r -> Bgp_route.As_path.to_asn_list (R.attrs r).A.as_path)
          contributors
        |> List.sort_uniq Bgp_route.Asn.compare
      in
      match asns with
      | [] -> Bgp_route.As_path.empty
      | _ -> Bgp_route.As_path.of_segments [ Bgp_route.As_path.Set asns ]
    end
    else Bgp_route.As_path.empty
  in
  (* ATOMIC_AGGREGATE marks that path information was dropped, i.e.
     contributors had AS paths we are not carrying in an AS_SET. *)
  let atomic =
    (not agg.agg_as_set)
    && List.exists
         (fun r -> Bgp_route.As_path.length (R.attrs r).A.as_path > 0)
         contributors
  in
  A.make ~atomic_aggregate:atomic
    ~aggregator:(t.local_asn, t.router_id)
    ~as_path ~next_hop:t.router_id ()

(* Withdraw every exported more-specific of a freshly active
   summary-only aggregate (or re-export them on deactivation). *)
let sweep_specifics t agg ~suppress =
  let work = ref 0 in
  let anns =
    fold_peer_states t
      (fun ps acc ->
        if not ps.up then acc
        else
          List.fold_left
            (fun acc best ->
              let p = R.prefix best in
              if not (strict_under agg p) then acc
              else
                let desired =
                  if suppress then None else export_route t ps best work
                in
                match sync_adj_out ps p desired with
                | Some ann -> ann :: acc
                | None -> acc)
            acc (Loc_rib.to_list t.loc))
      []
    |> List.sort (fun a b ->
           match Peer.compare a.dest b.dest with
           | 0 -> P.compare a.ann_prefix b.ann_prefix
           | c -> c)
  in
  M.incr ~by:!work t.c_policy_units;
  M.incr ~by:(List.length anns) t.c_announcements_emitted;
  anns

(* Re-evaluate one aggregate; returns the extra deltas/announcements it
   produced (activation, update, or deactivation). *)
let rec update_aggregate t ag =
  let agg = ag.agg_cfg in
  match aggregate_contributors t agg with
  | [] ->
    if Adj_rib.remove t.local_routes agg.agg_prefix then begin
      ag.agg_active <- false;
      let _, fd, ann, _, _ = redecide t agg.agg_prefix in
      let unsuppressed =
        if agg.agg_summary_only then sweep_specifics t agg ~suppress:false
        else []
      in
      let cfd, cann = eval_aggregates t agg.agg_prefix in
      (fd @ cfd, ann @ unsuppressed @ cann)
    end
    else ([], [])
  | contributors -> (
    let attrs = I.intern (aggregate_attrs t agg contributors) in
    match Adj_rib.set t.local_routes agg.agg_prefix attrs with
    | `Unchanged -> ([], [])
    | (`New | `Changed) as change ->
      let newly_active = not ag.agg_active in
      ag.agg_active <- true;
      ignore change;
      let _, fd, ann, _, _ = redecide t agg.agg_prefix in
      let suppressed =
        if newly_active && agg.agg_summary_only then
          sweep_specifics t agg ~suppress:true
        else []
      in
      let cfd, cann = eval_aggregates t agg.agg_prefix in
      (fd @ cfd, ann @ suppressed @ cann))

(* Evaluate every configured aggregate that strictly covers [prefix].
   Terminates because an aggregate is strictly shorter than its
   contributors, so the recursion climbs toward /0. *)
and eval_aggregates t prefix =
  List.fold_left
    (fun (fd, ann) ag ->
      if strict_under ag.agg_cfg prefix then begin
        let fd', ann' = update_aggregate t ag in
        (fd @ fd', ann @ ann')
      end
      else (fd, ann))
    ([], []) t.aggregates

let finish t
    (adj_in_change :
      [ `New | `Changed | `Unchanged | `Removed | `Absent | `Loop ]) prefix =
  M.incr t.c_updates_processed;
  match adj_in_change with
  | `Unchanged | `Absent ->
    { no_op_outcome with adj_in_change }
  | (`New | `Changed | `Removed | `Loop) as c ->
    let loc_changed, fib_deltas, announcements, candidates, policy_work =
      redecide t prefix
    in
    let agg_deltas, agg_anns =
      if loc_changed then eval_aggregates t prefix else ([], [])
    in
    { adj_in_change = c; loc_changed;
      fib_deltas = fib_deltas @ agg_deltas;
      announcements = announcements @ agg_anns; candidates; policy_work }

(* ------------------------------------------------------------------ *)
(* Incremental decision fast path                                      *)
(* ------------------------------------------------------------------ *)

(* Soundness rests on {!Decision.select} being a left fold over the
   candidates in stable source-peer order: once the fold passes the
   winning route's position, the running best never changes again, so
   every candidate at a later position lost (or would lose) to it.
   Hence, when an update arrives from peer [p] and the current Loc-RIB
   best comes from a strictly earlier source ([Peer.compare src p < 0],
   which includes locally originated bests):

   - an announce only needs best-vs-challenger: if the post-import
     challenger loses (or is filtered), the fold over the full
     candidate set would return the same best — [p]'s previous entry,
     if any, had also lost, so replacing one loser with another leaves
     the result intact;
   - a withdraw removes a candidate that had lost, so the result is
     intact unconditionally.

   Everything else — best from [p] itself or from a later source, no
   current best, a challenger that wins — falls back to the full
   {!redecide}.  The fast path leaves Loc-RIB, FIB, and Adj-RIBs-Out
   untouched by construction (loc_changed is false), so aggregates
   need no re-evaluation either. *)

let fast_outcome t change ~candidates ~policy_work =
  M.incr t.c_updates_processed;
  M.incr t.c_decision_fastpath;
  if policy_work > 0 then M.incr ~by:policy_work t.c_policy_units;
  { adj_in_change = change; loc_changed = false; fib_deltas = [];
    announcements = []; candidates; policy_work }

let try_fast_announce t ps prefix interned change =
  if not t.incremental then None
  else
    match Loc_rib.find t.loc prefix with
    | None -> None
    | Some best ->
      if Peer.compare (R.from best) ps.peer >= 0 then None
      else begin
        let challenger = R.of_interned ~prefix ~interned ~from:ps.peer in
        let work = Policy.work_units ps.import challenger in
        match Policy.eval ps.import challenger with
        | None -> Some (fast_outcome t change ~candidates:1 ~policy_work:work)
        | Some c ->
          if Decision.better ~local_asn:t.local_asn c best then None
          else Some (fast_outcome t change ~candidates:2 ~policy_work:work)
      end

let try_fast_withdraw t ps prefix =
  if not t.incremental then None
  else
    match Loc_rib.find t.loc prefix with
    | None -> None
    | Some best ->
      if Peer.compare (R.from best) ps.peer >= 0 then None
      else Some (fast_outcome t `Removed ~candidates:0 ~policy_work:0)

(* RFC 4456 section 8 loop protection: our own ORIGINATOR_ID or
   cluster id in an incoming route means a reflection loop. *)
let reflection_loop t (attrs : A.t) =
  Option.fold ~none:false ~some:(Bgp_addr.Ipv4.equal t.router_id)
    attrs.A.originator_id
  || List.exists (Bgp_addr.Ipv4.equal t.cluster_id) attrs.A.cluster_list

(* The loop guards (§9.1.2 AS loop, RFC 4456 §8 reflection loop) look
   only at the attribute set, so a grouped announce evaluates them once
   per UPDATE rather than once per NLRI prefix. *)
let rejects_attrs t (attrs : A.t) =
  Bgp_route.As_path.contains t.local_asn attrs.A.as_path
  || reflection_loop t attrs

let announce_one t ps ~looping prefix interned =
  if looping then
    (* AS loop (§9.1.2): the route is excluded from consideration; any
       older route from this peer for the prefix is dropped too. *)
    let removed = Adj_rib.remove ps.adj_in prefix in
    if removed then finish t `Loop prefix
    else begin
      M.incr t.c_updates_processed;
      { no_op_outcome with adj_in_change = `Loop }
    end
  else
    match Adj_rib.set ps.adj_in prefix interned with
    | `Unchanged -> finish t `Unchanged prefix
    | (`New | `Changed) as change -> (
      match try_fast_announce t ps prefix interned change with
      | Some outcome -> outcome
      | None ->
        finish t
          (change
            :> [ `New | `Changed | `Unchanged | `Removed | `Absent | `Loop ])
          prefix)

let announce_interned t ~from prefix interned =
  let ps = peer_state t from in
  let looping = rejects_attrs t (I.value interned) in
  announce_one t ps ~looping prefix interned

let announce t ~from prefix attrs =
  announce_interned t ~from prefix (I.intern attrs)

let announce_group t ~from ~each prefixes interned =
  let ps = peer_state t from in
  let looping = rejects_attrs t (I.value interned) in
  List.iter
    (fun prefix -> each prefix (announce_one t ps ~looping prefix interned))
    prefixes

let withdraw t ~from prefix =
  let ps = peer_state t from in
  if Adj_rib.remove ps.adj_in prefix then
    match try_fast_withdraw t ps prefix with
    | Some outcome -> outcome
    | None -> finish t `Removed prefix
  else finish t `Absent prefix

let withdraw_local t ~prefix =
  if Adj_rib.remove t.local_routes prefix then finish t `Removed prefix
  else begin
    M.incr t.c_updates_processed;
    { no_op_outcome with adj_in_change = `Absent }
  end

let inject_local_route t ~prefix ~attrs =
  finish t
    (Adj_rib.set t.local_routes prefix (I.intern attrs)
      :> [ `New | `Changed | `Unchanged | `Removed | `Absent | `Loop ])
    prefix

let inject_local t ~prefix ~next_hop =
  inject_local_route t ~prefix
    ~attrs:(A.make ~as_path:Bgp_route.As_path.empty ~next_hop ())

let set_peer_up t peer up = (peer_state t peer).up <- up

let export_full t peer =
  let ps = peer_state t peer in
  let work = ref 0 in
  let anns =
    Loc_rib.fold
      (fun best acc ->
        let desired = export_route t ps best work in
        match sync_adj_out ps (R.prefix best) desired with
        | Some ann -> ann :: acc
        | None -> acc)
      t.loc []
  in
  M.incr ~by:!work t.c_policy_units;
  M.incr ~by:(List.length anns) t.c_announcements_emitted;
  List.sort (fun a b -> P.compare a.ann_prefix b.ann_prefix) anns

let refresh t peer =
  (* RFC 2918: forget what we believe the peer knows and resend. *)
  Adj_rib.clear (peer_state t peer).adj_out;
  export_full t peer

let peer_down t peer =
  let ps = peer_state t peer in
  ps.up <- false;
  let contributed = Adj_rib.prefixes ps.adj_in in
  Adj_rib.clear ps.adj_in;
  Adj_rib.clear ps.adj_out;
  let merged =
    List.fold_left
      (fun acc prefix ->
        let loc_changed, fib_deltas, announcements, candidates, policy_work =
          redecide t prefix
        in
        { adj_in_change = `Removed;
          loc_changed = acc.loc_changed || loc_changed;
          fib_deltas = acc.fib_deltas @ fib_deltas;
          announcements = acc.announcements @ announcements;
          candidates = acc.candidates + candidates;
          policy_work = acc.policy_work + policy_work })
      { no_op_outcome with adj_in_change = `Removed }
      contributed
  in
  M.incr ~by:(List.length contributed) t.c_updates_processed;
  merged

type stats = {
  updates_processed : int;
  decisions_run : int;
  decision_fastpath : int;
  loc_rib_changes : int;
  announcements_emitted : int;
  policy_units : int;
}

let stats (t : t) =
  { updates_processed = M.value t.c_updates_processed;
    decisions_run = M.value t.c_decisions_run;
    decision_fastpath = M.value t.c_decision_fastpath;
    loc_rib_changes = M.value t.c_loc_rib_changes;
    announcements_emitted = M.value t.c_announcements_emitted;
    policy_units = M.value t.c_policy_units }
