(** The three-RIB update engine: Adj-RIBs-In -> (import policy) ->
    decision process -> Loc-RIB -> FIB deltas + (export policy) ->
    Adj-RIBs-Out -> announcements (RFC 4271 §9).

    This module is {e pure protocol logic} — it knows nothing about
    time, scheduling, or cost.  Every {!update} returns an {!outcome}
    that (a) tells the caller what to transmit and what to install in
    the FIB, and (b) carries work counters that the simulated router
    converts into CPU cycles. *)

type t

(** A configured route aggregate (RFC 4271 section 9.2.2.2, CIDR).
    When any strictly-more-specific route is selected into the Loc-RIB,
    the router originates the aggregate locally. *)
type aggregate_config = {
  agg_prefix : Bgp_addr.Prefix.t;
  agg_as_set : bool;
      (** carry contributor ASes in an AS_SET (loop-safe aggregation);
          otherwise the aggregate has an empty path and sets
          ATOMIC_AGGREGATE when path information was dropped *)
  agg_summary_only : bool;
      (** suppress advertisement of the more-specifics while the
          aggregate is active *)
}

val create :
  ?import:Bgp_policy.Policy.t ->
  ?export:Bgp_policy.Policy.t ->
  ?aggregates:aggregate_config list ->
  ?cluster_id:Bgp_addr.Ipv4.t ->
  ?metrics:Bgp_stats.Metrics.t ->
  ?incremental:bool ->
  local_asn:Bgp_route.Asn.t ->
  router_id:Bgp_addr.Ipv4.t ->
  unit ->
  t
(** [import]/[export] are default policies for peers added without
    per-peer overrides (both default to accept-all).  [cluster_id]
    (default: the router id) identifies this router's reflection
    cluster when peers are added with [~rr_client:true].

    [metrics] is the registry the work counters ([rib.*]) register
    into, shared with the owning router so one
    {!Bgp_stats.Metrics.reset_all} clears all accounting together; by
    default the manager keeps a private registry.

    [incremental] (default true) enables the best-vs-challenger fast
    path: an update from peer [p] skips the full candidate rescan when
    the current Loc-RIB best comes from a strictly earlier source in
    decision order ({!Bgp_route.Peer.compare}) and the post-import
    challenger does not beat it (withdraws of losing routes skip
    unconditionally).  Because {!Decision.select} is a left fold in
    that same source order, the fast path is observationally equivalent
    to full re-selection — [~incremental:false] exists so tests can
    check that equivalence differentially.
    @raise Invalid_argument if [metrics] already holds [rib.*] names
    (one registry backs at most one manager). *)

val local_asn : t -> Bgp_route.Asn.t
val router_id : t -> Bgp_addr.Ipv4.t

val add_peer :
  ?import:Bgp_policy.Policy.t -> ?export:Bgp_policy.Policy.t ->
  ?rr_client:bool -> ?up:bool -> t -> Bgp_route.Peer.t -> unit
(** [rr_client] (default false) marks an IBGP peer as a
    route-reflection client (RFC 4456): the router reflects routes
    between clients and the rest of the IBGP mesh, stamping
    ORIGINATOR_ID and growing CLUSTER_LIST.  Without reflection, IBGP
    routes are never re-advertised to IBGP peers (RFC 4271 §9.2).

    [up] (default true) marks the peer as advertisable; a router
    normally registers peers with [~up:false] and flips them with
    {!set_peer_up} when the session reaches Established.
    @raise Invalid_argument if the peer id is already registered or the
    peer is {!Bgp_route.Peer.local}. *)

val set_peer_up : t -> Bgp_route.Peer.t -> bool -> unit
(** Enable/disable advertisement to a registered peer.  Down peers are
    skipped by the export step of every decision ({!announce},
    {!withdraw}); their Adj-RIB-Out is only mutated by {!export_full}
    and {!peer_down}. *)

val peers : t -> Bgp_route.Peer.t list
val loc_rib : t -> Loc_rib.t
val adj_in_size : t -> Bgp_route.Peer.t -> int
val adj_out_size : t -> Bgp_route.Peer.t -> int

val projected_adj_in_size :
  t ->
  Bgp_route.Peer.t ->
  announced:Bgp_addr.Prefix.t list ->
  withdrawn:Bgp_addr.Prefix.t list ->
  int
(** The Adj-RIB-In size the peer's table would have {e after} an UPDATE
    carrying [announced] NLRI and [withdrawn] routes, without applying
    it: current size, plus announced prefixes not already held
    (duplicates within the NLRI counted once), minus withdrawn prefixes
    actually held and not re-announced by the same message.  This is
    what a prefix limit must compare against — counting raw NLRI length
    double-counts re-announcements, so a peer refreshing its existing
    routes would falsely trip the limit.
    @raise Invalid_argument for an unregistered peer. *)

(** One item the router must send to a neighbor.  The attributes are an
    interned handle, so the router's UPDATE packing and MRAI grouping
    key on the arena id instead of hashing structures. *)
type announcement = {
  dest : Bgp_route.Peer.t;
  ann_prefix : Bgp_addr.Prefix.t;
  ann_attrs : Bgp_route.Attrs.Interned.t option;  (** [None] = withdraw *)
}

val pp_announcement : Format.formatter -> announcement -> unit

type outcome = {
  adj_in_change : [ `New | `Changed | `Unchanged | `Removed | `Absent | `Loop ];
      (** What happened in the source Adj-RIB-In. [`Loop] means the
          announcement was rejected by AS-loop detection (and any
          previous route from that peer removed). *)
  loc_changed : bool;
  fib_deltas : Bgp_fib.Fib.delta list;
  announcements : announcement list;
  candidates : int;   (** routes considered by the decision process *)
  policy_work : int;  (** condition evaluations across import+export *)
}

val no_op_outcome : outcome

val announce :
  t -> from:Bgp_route.Peer.t -> Bgp_addr.Prefix.t -> Bgp_route.Attrs.t ->
  outcome
(** Process one announced prefix from a neighbor (interns the
    attributes first; see {!announce_interned}).
    @raise Invalid_argument for an unregistered peer. *)

val announce_interned :
  t -> from:Bgp_route.Peer.t -> Bgp_addr.Prefix.t ->
  Bgp_route.Attrs.Interned.t -> outcome
(** Like {!announce} from an existing handle — no arena lookup. *)

val announce_group :
  t ->
  from:Bgp_route.Peer.t ->
  each:(Bgp_addr.Prefix.t -> outcome -> unit) ->
  Bgp_addr.Prefix.t list ->
  Bgp_route.Attrs.Interned.t ->
  unit
(** The attr-group batched path: process every NLRI prefix of one
    UPDATE against its single shared attribute handle.  Per-prefix
    outcomes (and their work counters) are identical to calling
    {!announce_interned} in sequence; the AS-loop and reflection-loop
    guards, which depend only on the attributes, run once per group.
    [each] observes each prefix's outcome in NLRI order. *)

val withdraw : t -> from:Bgp_route.Peer.t -> Bgp_addr.Prefix.t -> outcome
(** Process one withdrawn prefix from a neighbor. *)

val inject_local :
  t -> prefix:Bgp_addr.Prefix.t -> next_hop:Bgp_addr.Ipv4.t -> outcome
(** Originate a route locally (it wins every decision). *)

val inject_local_route :
  t -> prefix:Bgp_addr.Prefix.t -> attrs:Bgp_route.Attrs.t -> outcome
(** Originate a route locally with explicit attributes (e.g. when
    replaying a saved table through a route server). *)

val withdraw_local : t -> prefix:Bgp_addr.Prefix.t -> outcome
(** Remove a locally originated route. *)

val export_full : t -> Bgp_route.Peer.t -> announcement list
(** Initial table sync to a newly Established peer: computes and
    records the full Adj-RIB-Out for that peer and returns the
    corresponding announcements (Phase 2 of the benchmark).  Announces
    nothing for prefixes whose best route came from that same peer. *)

val refresh : t -> Bgp_route.Peer.t -> announcement list
(** RFC 2918 route refresh: drop the peer's Adj-RIB-Out bookkeeping and
    recompute + resend the full advertisement set. *)

val peer_down : t -> Bgp_route.Peer.t -> outcome
(** Session loss: mark the peer down, flush its Adj-RIB-In and Adj-RIB-Out and
    re-run the decision process for every prefix it contributed.  The
    returned outcome aggregates all resulting deltas/announcements. *)

(** Cumulative work statistics (for the cost model and EXPERIMENTS). *)
type stats = {
  updates_processed : int;
  decisions_run : int;
  decision_fastpath : int;
      (** updates resolved by the best-vs-challenger fast path without
          a full candidate rescan *)
  loc_rib_changes : int;
  announcements_emitted : int;
  policy_units : int;
}

val stats : t -> stats
