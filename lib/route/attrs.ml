type origin = Igp | Egp | Incomplete

let origin_to_int = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

let origin_of_int = function
  | 0 -> Some Igp
  | 1 -> Some Egp
  | 2 -> Some Incomplete
  | _ -> None

let pp_origin ppf o =
  Format.pp_print_string ppf
    (match o with Igp -> "IGP" | Egp -> "EGP" | Incomplete -> "incomplete")

type t = {
  origin : origin;
  as_path : As_path.t;
  next_hop : Bgp_addr.Ipv4.t;
  med : int option;
  local_pref : int option;
  atomic_aggregate : bool;
  aggregator : (Asn.t * Bgp_addr.Ipv4.t) option;
  communities : Community.t list;
  originator_id : Bgp_addr.Ipv4.t option;
  cluster_list : Bgp_addr.Ipv4.t list;
}

(* Canonical community form: sorted, duplicate-free.  COMMUNITIES is a
   set on the wire, so two attribute records that differ only in
   insertion order must be one arena entry; CLUSTER_LIST stays
   order-significant (it is a reflection path). *)
let canon_communities = function
  | [] -> []
  | [ _ ] as cs -> cs
  | cs -> List.sort_uniq Community.compare cs

let make ?(origin = Igp) ?med ?local_pref ?(atomic_aggregate = false) ?aggregator
    ?(communities = []) ?originator_id ?(cluster_list = []) ~as_path ~next_hop
    () =
  { origin; as_path; next_hop; med; local_pref; atomic_aggregate; aggregator;
    communities = canon_communities communities; originator_id; cluster_list }

let with_as_path as_path t = { t with as_path }
let with_local_pref local_pref t = { t with local_pref }
let with_med med t = { t with med }

let add_community c t =
  if List.exists (Community.equal c) t.communities then t
  else { t with communities = List.merge Community.compare [ c ] t.communities }

let has_community c t = List.exists (Community.equal c) t.communities
let prepend_as a t = { t with as_path = As_path.prepend a t.as_path }

let equal a b =
  a.origin = b.origin
  && As_path.equal a.as_path b.as_path
  && Bgp_addr.Ipv4.equal a.next_hop b.next_hop
  && Option.equal Int.equal a.med b.med
  && Option.equal Int.equal a.local_pref b.local_pref
  && Bool.equal a.atomic_aggregate b.atomic_aggregate
  && Option.equal
       (fun (x, xa) (y, ya) -> Asn.equal x y && Bgp_addr.Ipv4.equal xa ya)
       a.aggregator b.aggregator
  && List.equal Community.equal
       (canon_communities a.communities)
       (canon_communities b.communities)
  && Option.equal Bgp_addr.Ipv4.equal a.originator_id b.originator_id
  && List.equal Bgp_addr.Ipv4.equal a.cluster_list b.cluster_list

let pp ppf t =
  Format.fprintf ppf "@[<h>origin=%a path=[%a] nh=%a" pp_origin t.origin
    As_path.pp t.as_path Bgp_addr.Ipv4.pp t.next_hop;
  Option.iter (Format.fprintf ppf " med=%d") t.med;
  Option.iter (Format.fprintf ppf " lp=%d") t.local_pref;
  if t.atomic_aggregate then Format.pp_print_string ppf " atomic";
  (match t.communities with
  | [] -> ()
  | cs ->
    Format.fprintf ppf " comm=%a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         Community.pp)
      cs);
  Option.iter
    (fun o -> Format.fprintf ppf " originator=%a" Bgp_addr.Ipv4.pp o)
    t.originator_id;
  (match t.cluster_list with
  | [] -> ()
  | cl ->
    Format.fprintf ppf " clusters=%a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         Bgp_addr.Ipv4.pp)
      cl);
  Format.fprintf ppf "@]"

(* Structural hash, consistent with [equal]: communities hash in sorted
   order (construction keeps them sorted, but record updates may not go
   through [make]) and [As_path.hash] already sorts Set segments. *)
let hash t =
  let mix h v = (h * 31) + v in
  let h = mix 17 (origin_to_int t.origin) in
  let h = mix h (As_path.hash t.as_path) in
  let h = mix h (Bgp_addr.Ipv4.hash t.next_hop) in
  let h = mix h (match t.med with None -> -1 | Some m -> m) in
  let h = mix h (match t.local_pref with None -> -1 | Some l -> l) in
  let h = mix h (Bool.to_int t.atomic_aggregate) in
  let h =
    match t.aggregator with
    | None -> mix h 0
    | Some (a, ip) -> mix (mix h (Asn.hash a)) (Bgp_addr.Ipv4.hash ip)
  in
  let h =
    List.fold_left
      (fun h c -> mix h (Community.to_int32_value c))
      (mix h 1)
      (canon_communities t.communities)
  in
  let h =
    match t.originator_id with
    | None -> mix h 0
    | Some ip -> mix h (Bgp_addr.Ipv4.hash ip)
  in
  let h =
    List.fold_left (fun h ip -> mix h (Bgp_addr.Ipv4.hash ip)) (mix h 2)
      t.cluster_list
  in
  h land max_int

(* ------------------------------------------------------------------ *)
(* Decision-preference tuple                                           *)
(* ------------------------------------------------------------------ *)

let default_local_pref = 100

type pref = {
  pr_local_pref : int;
  pr_path_len : int;
  pr_origin : int;
  pr_med : int;
  pr_first_hop : Asn.t option;
}

let pref_of t =
  { pr_local_pref = Option.value ~default:default_local_pref t.local_pref;
    pr_path_len = As_path.length t.as_path;
    pr_origin = origin_to_int t.origin;
    pr_med = Option.value ~default:0 t.med;
    pr_first_hop = As_path.first_hop t.as_path }

(* Rough heap footprint of one attribute record, in bytes: what a
   duplicate would have cost.  Blocks are (1 + fields) words, cons
   cells 3 words, boxed options 2 words; ASNs/communities/addresses
   are immediates. *)
let approx_bytes t =
  let word = Sys.word_size / 8 in
  let opt = function None -> 0 | Some _ -> 2 in
  let list per l = List.fold_left (fun acc x -> acc + 3 + per x) 0 l in
  let seg_words = function
    | As_path.Seq asns | As_path.Set asns -> 2 + list (fun _ -> 0) asns
  in
  let words =
    11 (* the record *)
    + list seg_words (As_path.segments t.as_path)
    + opt t.med + opt t.local_pref
    + (match t.aggregator with None -> 0 | Some _ -> 2 + 3)
    + list (fun _ -> 0) t.communities
    + opt t.originator_id
    + list (fun _ -> 0) t.cluster_list
  in
  words * word

(* ------------------------------------------------------------------ *)
(* Hash-consing arena                                                  *)
(* ------------------------------------------------------------------ *)

module Interned = struct
  type attrs = t

  type t = {
    id : int;             (* unique per arena entry; allocation order *)
    cached_hash : int;    (* [hash value] *)
    value : attrs;
    pref : pref;
    vbytes : int;         (* [approx_bytes value] *)
  }

  module Arena = Hashtbl.Make (struct
    type t = attrs

    let equal = equal
    let hash = hash
  end)

  type arena_stats = {
    interns : int;
    hits : int;
    live : int;
    saved_bytes : int;
  }

  (* The arena is sharded per domain: each OCaml domain interns into
     its own table, bound through domain-local storage, so partitioned
     runs ({!Bgp_sim.Pengine}) never contend on — or corrupt — a shared
     Hashtbl.  Ids are [slot * 2^40 + local allocation count], unique
     and deterministic: a partition's event order is deterministic, so
     its shard's allocation order is too.  Slot 0 is the calling
     domain's default shard, which keeps single-domain ids identical to
     the historical global arena.  Two shards may intern structurally
     equal attrs under different ids; {!equal}'s structural fallback
     (already required by the un-interned A/B mode) makes such handles
     compare equal, so sharding is invisible to route semantics. *)

  type shard = {
    slot : int;
    table : t Arena.t;
    span_tbl : (int, (string * t) list) Hashtbl.t;
    mutable next_local : int;
    mutable s_interns : int;
    mutable s_hits : int;
    mutable s_saved : int;
  }

  let id_bits = 40  (* local ids per shard; the slot lives above *)
  let sharing = ref true
  let shards_mu = Mutex.create ()
  let shards : (int, shard) Hashtbl.t = Hashtbl.create 8

  let shard_for slot =
    Mutex.lock shards_mu;
    let sh =
      match Hashtbl.find_opt shards slot with
      | Some sh -> sh
      | None ->
        let sh =
          { slot; table = Arena.create 4096; span_tbl = Hashtbl.create 4096;
            next_local = 0; s_interns = 0; s_hits = 0; s_saved = 0 }
        in
        Hashtbl.add shards slot sh;
        sh
    in
    Mutex.unlock shards_mu;
    sh

  let default_shard = shard_for 0
  let dls = Domain.DLS.new_key (fun () -> default_shard)
  let bind_shard slot = Domain.DLS.set dls (shard_for slot)
  let current () = Domain.DLS.get dls

  let fresh sh value =
    let id = (sh.slot lsl id_bits) lor sh.next_local in
    sh.next_local <- sh.next_local + 1;
    { id; cached_hash = hash value; value; pref = pref_of value;
      vbytes = approx_bytes value }

  let intern value =
    let sh = current () in
    sh.s_interns <- sh.s_interns + 1;
    if not !sharing then fresh sh value
    else
      match Arena.find_opt sh.table value with
      | Some h ->
        sh.s_hits <- sh.s_hits + 1;
        sh.s_saved <- sh.s_saved + h.vbytes;
        h
      | None ->
        let h = fresh sh value in
        Arena.add sh.table value h;
        h

  (* Wire-span cache: raw attribute byte-span -> handle, so a decoder
     that has seen the exact bytes before interns without materializing
     the intermediate record at all.  Keyed by an FNV-1a hash of the
     span with the stored copy as the collision check; the stats
     counters on a hit mirror exactly what the [intern] call being
     skipped would have recorded, so arena accounting is unchanged by
     who found the handle.  Per shard, like the arena itself. *)
  let span_hash buf ~pos ~len =
    let h = ref 0x811c9dc5 in
    for i = pos to pos + len - 1 do
      h := (!h lxor Char.code (String.unsafe_get buf i)) * 0x01000193
    done;
    !h land max_int

  let span_matches span buf pos len =
    String.length span = len
    &&
    let rec go i =
      i = len
      || Char.equal (String.unsafe_get span i) (String.unsafe_get buf (pos + i))
         && go (i + 1)
    in
    go 0

  let find_span buf ~pos ~len =
    if not !sharing then None
    else
      let sh = current () in
      match Hashtbl.find_opt sh.span_tbl (span_hash buf ~pos ~len) with
      | None -> None
      | Some entries -> (
        match
          List.find_opt (fun (span, _) -> span_matches span buf pos len) entries
        with
        | None -> None
        | Some (_, h) ->
          sh.s_interns <- sh.s_interns + 1;
          sh.s_hits <- sh.s_hits + 1;
          sh.s_saved <- sh.s_saved + h.vbytes;
          Some h)

  let add_span buf ~pos ~len h =
    if !sharing then begin
      let sh = current () in
      let key = span_hash buf ~pos ~len in
      let entries =
        Option.value ~default:[] (Hashtbl.find_opt sh.span_tbl key)
      in
      (* Only reached on a [find_span] miss, so the span is new under
         this key; the copy is the one allocation the cache ever pays
         for these bytes. *)
      Hashtbl.replace sh.span_tbl key ((String.sub buf pos len, h) :: entries)
    end

  let value h = h.value
  let id h = h.id
  let pref h = h.pref

  (* Id equality is complete only while sharing is on; the structural
     fallback keeps semantics identical when the arena is bypassed
     (the benchmark's un-interned A/B mode). *)
  let equal a b =
    a.id = b.id || (a.cached_hash = b.cached_hash && equal a.value b.value)

  let hash h = h.cached_hash
  let compare_id a b = Int.compare a.id b.id
  let pp ppf h = pp ppf h.value

  module Tbl = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)

  (* Stats and [clear] aggregate over every shard ever bound, so
     multi-domain runs report the same totals a global arena would. *)
  let stats () =
    Mutex.lock shards_mu;
    let interns, hits, live, saved_bytes =
      Hashtbl.fold
        (fun _ sh (i, h, l, s) ->
          ( i + sh.s_interns, h + sh.s_hits, l + Arena.length sh.table,
            s + sh.s_saved ))
        shards (0, 0, 0, 0)
    in
    Mutex.unlock shards_mu;
    { interns; hits; live; saved_bytes }

  let hit_rate s =
    if s.interns = 0 then 0.0
    else float_of_int s.hits /. float_of_int s.interns

  let set_sharing b = sharing := b
  let sharing_enabled () = !sharing

  (* Ids survive a clear on purpose ([next_local] is not reset): stale
     handles must never collide with fresh ones on the id fast path. *)
  let clear () =
    Mutex.lock shards_mu;
    Hashtbl.iter
      (fun _ sh ->
        Arena.reset sh.table;
        Hashtbl.reset sh.span_tbl;
        sh.s_interns <- 0;
        sh.s_hits <- 0;
        sh.s_saved <- 0)
      shards;
    Mutex.unlock shards_mu
end
