(** Path attributes of a BGP route (RFC 4271 §5).

    Carries the well-known mandatory attributes (ORIGIN, AS_PATH,
    NEXT_HOP) plus the optional ones the decision process and the
    benchmark's policy layer consult. *)

type origin =
  | Igp         (** learned from an interior protocol; most preferred *)
  | Egp         (** learned via EGP *)
  | Incomplete  (** other means (e.g. redistribution); least preferred *)

val origin_to_int : origin -> int
(** Wire encoding: IGP = 0, EGP = 1, INCOMPLETE = 2; also the
    preference order (lower wins) used by the decision process. *)

val origin_of_int : int -> origin option
val pp_origin : Format.formatter -> origin -> unit

type t = {
  origin : origin;
  as_path : As_path.t;
  next_hop : Bgp_addr.Ipv4.t;
  med : int option;          (** MULTI_EXIT_DISC; lower preferred, only
                                 comparable between routes from the same
                                 neighboring AS *)
  local_pref : int option;   (** LOCAL_PREF; higher preferred; IBGP only *)
  atomic_aggregate : bool;
  aggregator : (Asn.t * Bgp_addr.Ipv4.t) option;
  communities : Community.t list;
  originator_id : Bgp_addr.Ipv4.t option;
      (** ORIGINATOR_ID (RFC 4456): router id of the route's IBGP
          originator, stamped by a route reflector *)
  cluster_list : Bgp_addr.Ipv4.t list;
      (** CLUSTER_LIST (RFC 4456): reflection path, most recent cluster
          first; loop protection for reflector topologies *)
}

val make :
  ?origin:origin ->
  ?med:int ->
  ?local_pref:int ->
  ?atomic_aggregate:bool ->
  ?aggregator:Asn.t * Bgp_addr.Ipv4.t ->
  ?communities:Community.t list ->
  ?originator_id:Bgp_addr.Ipv4.t ->
  ?cluster_list:Bgp_addr.Ipv4.t list ->
  as_path:As_path.t ->
  next_hop:Bgp_addr.Ipv4.t ->
  unit ->
  t
(** Default origin is [Igp]; optional attributes default to absent.
    [communities] are canonicalized (sorted, deduplicated) so that
    attribute sets differing only in community insertion order are
    [equal] and intern to one arena entry; [cluster_list] order is
    preserved (it is a reflection path). *)

val with_as_path : As_path.t -> t -> t
val with_local_pref : int option -> t -> t
val with_med : int option -> t -> t
val add_community : Community.t -> t -> t
(** Sorted insertion — keeps the community list canonical. *)

val has_community : Community.t -> t -> bool
val prepend_as : Asn.t -> t -> t
(** Prepend to the AS path (used when exporting over EBGP). *)

val equal : t -> t -> bool

val hash : t -> int
(** Structural hash consistent with [equal]: insensitive to community
    order and to the element order inside AS_SET segments. *)

val pp : Format.formatter -> t -> unit

val default_local_pref : int
(** 100 — the LOCAL_PREF assumed by the decision process when the
    attribute is absent (RFC 4271 §9.1.1). *)

(** The attribute-derived inputs of the decision process, precomputed
    once per interned attribute set so route comparisons never walk the
    AS path. *)
type pref = {
  pr_local_pref : int;        (** LOCAL_PREF, defaulted to 100 *)
  pr_path_len : int;          (** [As_path.length] *)
  pr_origin : int;            (** [origin_to_int]; lower preferred *)
  pr_med : int;               (** MED, defaulted to 0 *)
  pr_first_hop : Asn.t option; (** neighboring AS, for MED comparability *)
}

val pref_of : t -> pref

val approx_bytes : t -> int
(** Rough heap footprint of the record in bytes (what one duplicate
    costs); the arena's bytes-saved estimate sums this per hit. *)

(** The hash-consing arena: one canonical handle per distinct attribute
    set.  A handle carries a unique integer id, the cached structural
    hash, and the memoized decision-preference tuple, so RIB change
    detection and decision comparisons are integer compares and UPDATE
    grouping is a table lookup.

    The arena is process-global (attribute sets are immutable and the
    simulation is single-threaded). *)
module Interned : sig
  type attrs = t

  type t

  val intern : attrs -> t
  (** Canonical handle for [attrs]; O(1) amortized on an arena hit. *)

  val find_span : string -> pos:int -> len:int -> t option
  (** [find_span buf ~pos ~len] is the handle previously registered for
      the raw attribute byte-span [buf.[pos .. pos+len-1]] via
      {!add_span}, or [None].  A hit records exactly the arena stats
      the skipped {!intern} call would have (one intern, one hit, the
      handle's bytes saved), so accounting is independent of which path
      found the handle.  Always [None] while sharing is disabled: the
      A/B baseline must not share through the side door. *)

  val add_span : string -> pos:int -> len:int -> t -> unit
  (** Register [handle] as the decode result for the span (copying the
      bytes once).  Call only on a {!find_span} miss, with a handle
      obtained by decoding that very span; no-op while sharing is
      disabled. *)

  val value : t -> attrs
  val id : t -> int
  val pref : t -> pref

  val equal : t -> t -> bool
  (** Id fast path with a structural fallback, so equality keeps
      [Attrs.equal] semantics even when sharing is disabled. *)

  val hash : t -> int
  (** The cached structural hash of the underlying value. *)

  val compare_id : t -> t -> int
  (** Total order by arena id (allocation order) — used to make
      handle-keyed iteration deterministic. *)

  val pp : Format.formatter -> t -> unit

  (** Handle-keyed hash tables (announcement grouping, MRAI buffers);
      structural semantics, id-fast-path speed. *)
  module Tbl : Hashtbl.S with type key = t

  type arena_stats = {
    interns : int;     (** total [intern] calls since the last [clear] *)
    hits : int;        (** calls that found an existing entry *)
    live : int;        (** distinct attribute sets in the arena *)
    saved_bytes : int; (** estimated duplicate bytes avoided *)
  }

  val stats : unit -> arena_stats
  (** Aggregated over every shard (see {!bind_shard}), so multi-domain
      runs report the same totals a global arena would. *)

  val hit_rate : arena_stats -> float

  val bind_shard : int -> unit
  (** Bind the calling domain to arena shard [slot].  The arena is
      sharded per domain so partitioned simulations never contend on a
      shared table: each shard allocates ids [slot * 2^40 + k] in its
      own deterministic allocation order, and slot 0 — every domain's
      default — reproduces the historical global arena's ids exactly.
      Structurally equal attrs interned by different shards get
      distinct handles that still satisfy {!equal} (structural
      fallback).  A worker domain driving partition [i] of a
      {!Bgp_sim.Pengine} should call [bind_shard i] from the engine's
      worker-init hook; binding is idempotent and a rebind to the same
      slot resumes that shard (ids stay unique across rebinds). *)

  val set_sharing : bool -> unit
  (** [false] bypasses the arena: every [intern] allocates a fresh
      handle.  The benchmark's un-interned A/B baseline; semantics are
      unchanged because [equal] falls back to structure. *)

  val sharing_enabled : unit -> bool

  val clear : unit -> unit
  (** Drop all entries and zero the stats.  Ids keep growing across
      clears so stale handles can never alias fresh ones. *)
end
