type t = {
  prefix : Bgp_addr.Prefix.t;
  interned : Attrs.Interned.t;
  from : Peer.t;
}

let make ~prefix ~attrs ~from =
  { prefix; interned = Attrs.Interned.intern attrs; from }

let of_interned ~prefix ~interned ~from = { prefix; interned; from }

let local ~prefix ~next_hop =
  make ~prefix
    ~attrs:(Attrs.make ~as_path:As_path.empty ~next_hop ())
    ~from:Peer.local

let prefix t = t.prefix
let from t = t.from
let attrs t = Attrs.Interned.value t.interned
let interned t = t.interned
let pref t = Attrs.Interned.pref t.interned
let as_path_length t = (pref t).Attrs.pr_path_len

let equal a b =
  Bgp_addr.Prefix.equal a.prefix b.prefix
  && Attrs.Interned.equal a.interned b.interned
  && Peer.equal a.from b.from

let pp ppf t =
  Format.fprintf ppf "@[<h>%a via %a [%a]@]" Bgp_addr.Prefix.pp t.prefix
    Peer.pp t.from Attrs.Interned.pp t.interned
