(** A route: a destination prefix, its path attributes, and the peer it
    was learned from.  This is the unit stored in the RIBs and the unit
    the benchmark counts as one "transaction".

    The attributes are held as an interned arena handle
    ({!Attrs.Interned}), so route equality is an integer compare and
    every route sharing an attribute set shares one heap value. *)

type t

val make : prefix:Bgp_addr.Prefix.t -> attrs:Attrs.t -> from:Peer.t -> t
(** Interns [attrs]; prefer {!of_interned} when a handle is already at
    hand (the hot decision path). *)

val of_interned :
  prefix:Bgp_addr.Prefix.t -> interned:Attrs.Interned.t -> from:Peer.t -> t
(** Build from an existing handle without touching the arena. *)

val local : prefix:Bgp_addr.Prefix.t -> next_hop:Bgp_addr.Ipv4.t -> t
(** A locally originated route with an empty AS path. *)

val prefix : t -> Bgp_addr.Prefix.t
val attrs : t -> Attrs.t
val interned : t -> Attrs.Interned.t
val pref : t -> Attrs.pref
(** The memoized decision-preference tuple of the attribute set. *)

val from : t -> Peer.t
val as_path_length : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
