type forwarding_model =
  | Kernel_shared of {
      interrupt_cycles_per_packet : float;
      forwarding_cycles_per_packet : float;
      forwarding_weight : float;
    }
  | Dedicated_pps of float

type software_model =
  | Xorp_pipeline
  | Monolithic of { pacing_delay_per_msg : float }

type cost_model = {
  cyc_per_msg_rx : float;
  cyc_per_msg_tx : float;
  cyc_per_byte : float;
  cyc_per_prefix_parse : float;
  cyc_per_policy_unit : float;
  cyc_per_candidate : float;
  cyc_per_rib_change : float;
  cyc_per_announcement : float;
  cyc_per_fib_msg : float;
  cyc_per_fib_delta : float;
  cyc_per_fib_replace : float;
  cyc_per_withdraw_parse : float;
}

type t = {
  name : string;
  description : string;
  clock_hz : float;
  efficiency : float;
  pool : float;
  software : software_model;
  forwarding : forwarding_model;
  line_rate_mbps : float;
  cost : cost_model;
  rtrmgr_period : float;
  rtrmgr_cycles : float;
}

let effective_hz t = t.clock_hz *. t.efficiency

(* Calibrated against the Pentium III column of Table III (see
   DESIGN.md): with these constants the uni-core reference lands within
   ~10% of the paper on scenarios 1-4 and preserves every cross-system
   and cross-scenario ordering. *)
let xorp_cost =
  { cyc_per_msg_rx = 500_000.0;
    cyc_per_msg_tx = 150_000.0;
    cyc_per_byte = 100.0;
    cyc_per_prefix_parse = 50_000.0;
    cyc_per_policy_unit = 20_000.0;
    cyc_per_candidate = 100_000.0;
    cyc_per_rib_change = 300_000.0;
    cyc_per_announcement = 350_000.0;
    cyc_per_fib_msg = 1_300_000.0;
    cyc_per_fib_delta = 1_900_000.0;
    cyc_per_fib_replace = 4_500_000.0;
    cyc_per_withdraw_parse = 30_000.0 }

(* Cisco: per-prefix work is cheap and flat; the dominant term is the
   ~93 ms the IOS scheduler spends between messages (derivable from
   scenarios 1 vs 2: 1/10.7 - 500/2492.9 ~ 93 ms). *)
let ios_cost =
  { cyc_per_msg_rx = 80_000.0;
    cyc_per_msg_tx = 30_000.0;
    cyc_per_byte = 20.0;
    cyc_per_prefix_parse = 30_000.0;
    cyc_per_policy_unit = 5_000.0;
    cyc_per_candidate = 30_000.0;
    cyc_per_rib_change = 40_000.0;
    cyc_per_announcement = 15_000.0;
    cyc_per_fib_msg = 50_000.0;
    cyc_per_fib_delta = 60_000.0;
    cyc_per_fib_replace = 60_000.0;
    cyc_per_withdraw_parse = 15_000.0 }

let pentium3 =
  { name = "pentium3";
    description = "Uni-core router: Intel Pentium III 800 MHz, Linux 2.6, XORP 1.3";
    clock_hz = 800e6;
    efficiency = 1.0;
    pool = 1.0;
    software = Xorp_pipeline;
    forwarding =
      Kernel_shared
        { interrupt_cycles_per_packet = 400.0;
          forwarding_cycles_per_packet = 450.0;
          forwarding_weight = 2.0 };
    line_rate_mbps = 315.0 (* PCI32 bus limit *);
    cost = xorp_cost;
    rtrmgr_period = 1.0;
    rtrmgr_cycles = 8e6 (* ~1%: "hardly visible" on this class *) }

let xeon =
  { name = "xeon";
    description =
      "Dual-core router: Intel Xeon 3.0 GHz x 2 cores x 2 threads, Linux 2.6, XORP 1.3";
    clock_hz = 3e9;
    efficiency = 1.35 (* newer microarchitecture vs the P III reference *);
    pool = 2.4 (* two cores + hyper-threading gain *);
    software = Xorp_pipeline;
    forwarding =
      Kernel_shared
        { interrupt_cycles_per_packet = 400.0;
          forwarding_cycles_per_packet = 450.0;
          forwarding_weight = 2.0 };
    line_rate_mbps = 784.0 (* PCI Express path limit measured in the paper *);
    cost = xorp_cost;
    rtrmgr_period = 1.0;
    rtrmgr_cycles = 8e6 }

let ixp2400 =
  { name = "ixp2400";
    description =
      "Network processor router: Intel IXP2400 (XScale 600 MHz control CPU, \
       8 packet processors), Linux 2.4, XORP 1.3";
    clock_hz = 600e6;
    efficiency = 0.2 (* no L2, narrow memory path: low IPC on XORP code *);
    pool = 1.0;
    software = Xorp_pipeline;
    forwarding =
      (* Eight packet processors forward independently of the XScale:
         ~1.84 Mpps covers 940 Mbps of 64-byte frames. *)
      Dedicated_pps 1.9e6;
    line_rate_mbps = 940.0 (* media/switch-fabric interconnect limit *);
    cost = xorp_cost;
    rtrmgr_period = 0.5;
    rtrmgr_cycles = 15e6 (* ~25% of the effective XScale: "considerable" *) }

let cisco3620 =
  { name = "cisco3620";
    description = "Commercial router: Cisco 3620, IOS 12.1(5)YB (black box)";
    clock_hz = 1e9 (* abstract unit clock for the black-box cost model *);
    efficiency = 1.0;
    pool = 1.0;
    software = Monolithic { pacing_delay_per_msg = 0.093 };
    forwarding =
      (* Software forwarding on the shared CPU; 64-byte frames at the
         78 Mbps port ceiling (~152 kpps) consume ~90% of the CPU. *)
      Kernel_shared
        { interrupt_cycles_per_packet = 500.0;
          forwarding_cycles_per_packet = 6_000.0;
          forwarding_weight = 20.0 };
    line_rate_mbps = 78.0 (* 100 Mbps ports, measured ceiling *);
    cost = ios_cost;
    rtrmgr_period = 0.0;
    rtrmgr_cycles = 0.0 }

let all = [ pentium3; xeon; ixp2400; cisco3620 ]

(* ------------------------------------------------------------------ *)
(* Declarative stage tables                                            *)
(* ------------------------------------------------------------------ *)

module P = Bgp_pipeline.Pipeline

let fi = float_of_int

(* Message receive: TCP/syscall fixed cost, stream handling per byte,
   parse per announced/withdrawn prefix. *)
let rx_cost c (w : P.work) =
  c.cyc_per_msg_rx
  +. (fi w.P.w_bytes *. c.cyc_per_byte)
  +. (fi w.P.w_announced *. c.cyc_per_prefix_parse)
  +. (fi w.P.w_withdrawn *. c.cyc_per_withdraw_parse)

let fib_delta_cost c (w : P.work) =
  (fi w.P.w_fib_replaces *. c.cyc_per_fib_replace)
  +. (fi w.P.w_fib_installs *. c.cyc_per_fib_delta)

let policy_fanout (w : P.work) = P.prefixes w * w.P.w_peers

(* XORP (Table II uni-core / dual-core / NP systems): each stage with a
   process is a separate scheduled job, reproducing the
   bgp -> policy -> rib -> fea IPC chain; export and MRAI bookkeeping
   ride inline on the bgp process' transmit path. *)
let xorp_stage_table c =
  [ P.spec P.Wire_decode ~proc:"xorp_bgp" ~cost:(rx_cost c) ~units:P.prefixes;
    (* The process hop is priced from fan-out; the real per-candidate
       policy work is folded into the decision stage costing below. *)
    P.spec P.Import_policy ~proc:"xorp_policy"
      ~cost:(fun w -> fi (policy_fanout w) *. c.cyc_per_policy_unit)
      ~units:policy_fanout;
    (* Runs the RIB machinery (a begin hook); consumes no simulated CPU
       of its own — its outcome prices the decision stage. *)
    P.spec P.Adj_rib_in ~units:P.prefixes;
    P.spec P.Decision ~proc:"xorp_rib"
      ~cost:(fun w ->
        (fi w.P.w_candidates *. c.cyc_per_candidate)
        +. (fi w.P.w_loc_changes *. c.cyc_per_rib_change)
        +. (fi w.P.w_announcements *. c.cyc_per_announcement)
        (* prefixes that produced no decision at all still burn a
           lookup *)
        +. Float.max 0.0
             (fi (P.prefixes w - w.P.w_candidates)
             *. (0.5 *. c.cyc_per_candidate)))
      ~units:(fun w -> w.P.w_candidates);
    P.spec P.Fib_install ~proc:"xorp_fea"
      ~cost:(fun w -> c.cyc_per_fib_msg +. fib_delta_cost c w)
      ~units:P.fib_deltas
      ~skip:(fun w -> P.fib_deltas w = 0);
    P.spec P.Export_policy ~units:(fun w -> w.P.w_announcements);
    P.spec P.Mrai_pacing ~units:(fun w -> w.P.w_mrai_buffered) ]

(* IOS (black box): the same seven logical stages, but every priced
   stage charges the single "ios" process and the whole batch runs as
   one fused job behind the scheduler pacing delay.  No separate policy
   or FIB-IPC terms — the Table III numbers imply they are inside the
   flat per-prefix cost. *)
let ios_stage_table c =
  [ P.spec P.Wire_decode ~proc:"ios" ~cost:(rx_cost c) ~units:P.prefixes;
    P.spec P.Import_policy ~units:policy_fanout;
    P.spec P.Adj_rib_in ~units:P.prefixes;
    P.spec P.Decision ~proc:"ios"
      ~cost:(fun w ->
        (fi w.P.w_candidates *. c.cyc_per_candidate)
        +. (fi w.P.w_loc_changes *. c.cyc_per_rib_change)
        +. (fi w.P.w_announcements *. c.cyc_per_announcement))
      ~units:(fun w -> w.P.w_candidates);
    P.spec P.Fib_install ~proc:"ios" ~cost:(fib_delta_cost c)
      ~units:P.fib_deltas
      ~skip:(fun w -> P.fib_deltas w = 0);
    P.spec P.Export_policy ~units:(fun w -> w.P.w_announcements);
    P.spec P.Mrai_pacing ~units:(fun w -> w.P.w_mrai_buffered) ]

let stage_table t =
  match t.software with
  | Xorp_pipeline -> xorp_stage_table t.cost
  | Monolithic _ -> ios_stage_table t.cost

let layout t =
  match t.software with
  | Xorp_pipeline -> P.Pipelined
  | Monolithic { pacing_delay_per_msg } -> P.Fused_paced pacing_delay_per_msg

let tx_proc_name t =
  match t.software with Xorp_pipeline -> "xorp_bgp" | Monolithic _ -> "ios"

let fib_proc_name t =
  match t.software with Xorp_pipeline -> "xorp_fea" | Monolithic _ -> "ios"

let housekeeper_proc_name t =
  match t.software with
  | Xorp_pipeline -> Some "xorp_rtrmgr"
  | Monolithic _ -> None

let by_name name =
  let lname = String.lowercase_ascii name in
  List.find_opt (fun a -> a.name = lname) all

let pp ppf t =
  Format.fprintf ppf "%-10s %5.0f MHz x %.1f pool (eff %.2f), %s fwd, %.0f Mbps line"
    t.name (t.clock_hz /. 1e6) t.pool t.efficiency
    (match t.forwarding with
    | Kernel_shared _ -> "shared"
    | Dedicated_pps _ -> "dedicated")
    t.line_rate_mbps

let pp_block_diagram ppf t =
  let fwd =
    match t.forwarding with
    | Kernel_shared _ -> "| Forwarding (kernel) |<== data =>"
    | Dedicated_pps _ -> "| Packet processors   |<== data =>"
  in
  let ctrl =
    match t.software with
    | Xorp_pipeline -> "bgp | policy | rib | fea | rtrmgr"
    | Monolithic _ -> "IOS (black box)"
  in
  Format.fprintf ppf
    "@[<v>%s: %s@,+---------------------+@,| %-19s |  <- control plane@,+---------------------+@,%s@,+---------------------+@]"
    t.name t.description ctrl fwd
