(** Architecture models of the four router systems (paper §IV,
    Table II).

    Each architecture is a {e mechanism} description — clock, core
    count, instruction efficiency, process structure, forwarding
    resources, line-rate ceiling — plus a control-plane cost model in
    CPU cycles.  The XORP-based systems (Pentium III, Xeon, IXP2400)
    share one cost model (same software!) and differ only in hardware
    parameters; the Cisco is a black-box model with a large
    per-message pacing delay and a small per-prefix cost, the structure
    its Table III numbers imply.

    The Table III / Figure 3-6 shapes are {e emergent}: nothing below
    encodes a transactions-per-second number. *)

(** How the data plane is implemented. *)
type forwarding_model =
  | Kernel_shared of {
      interrupt_cycles_per_packet : float;
      forwarding_cycles_per_packet : float;
      forwarding_weight : float;
          (** scheduling weight of kernel forwarding vs. a user process *)
    }  (** forwarding shares the control CPU (uni-core, dual-core, and —
          with a heavy weight — the software-forwarding Cisco 3620) *)
  | Dedicated_pps of float
      (** independent forwarding silicon with a packet-rate capacity
          (IXP2400 packet processors) *)

(** Control-plane software structure. *)
type software_model =
  | Xorp_pipeline
      (** five processes: xorp_bgp -> xorp_policy -> xorp_rib ->
          xorp_fea, plus the xorp_rtrmgr housekeeper *)
  | Monolithic of { pacing_delay_per_msg : float }
      (** one opaque process; each inbound message additionally waits a
          fixed scheduler-pacing delay (seconds) before processing —
          the cost structure implied by the Cisco's small-packet
          numbers *)

type cost_model = {
  cyc_per_msg_rx : float;      (** TCP/syscall/parse per received message *)
  cyc_per_msg_tx : float;      (** send path per transmitted message *)
  cyc_per_byte : float;        (** stream handling per wire byte *)
  cyc_per_prefix_parse : float;
  cyc_per_policy_unit : float; (** per {!Bgp_policy.Policy.work_units} unit *)
  cyc_per_candidate : float;   (** decision process, per candidate route *)
  cyc_per_rib_change : float;  (** Loc-RIB insert/replace/remove *)
  cyc_per_announcement : float;(** building one prefix advertisement *)
  cyc_per_fib_msg : float;     (** RIB->FEA IPC per delta batch *)
  cyc_per_fib_delta : float;   (** kernel/hardware FIB install/remove per entry *)
  cyc_per_fib_replace : float; (** FIB entry replacement (delete+insert+verify);
                                   dominant in scenarios 7-8 *)
  cyc_per_withdraw_parse : float;
}

type t = {
  name : string;
  description : string;
  clock_hz : float;            (** nominal control-CPU clock *)
  efficiency : float;          (** effective IPC factor vs. the reference
                                   (Pentium III = 1.0) *)
  pool : float;                (** core-equivalents available to control
                                   software (hyper-threading as a
                                   fractional bonus) *)
  software : software_model;
  forwarding : forwarding_model;
  line_rate_mbps : float;      (** bus / interconnect / port ceiling *)
  cost : cost_model;
  rtrmgr_period : float;       (** housekeeping period, s (0 = none) *)
  rtrmgr_cycles : float;       (** cycles per housekeeping tick *)
}

val effective_hz : t -> float
(** [clock_hz *. efficiency]. *)

val xorp_cost : cost_model
(** The shared XORP cost model (see the calibration notes in
    DESIGN.md §4). *)

val pentium3 : t
(** Uni-core: 800 MHz, one core, kernel forwarding, 315 Mbps PCI
    ceiling. *)

val xeon : t
(** Dual-core 3 GHz with hyper-threading (pool 2.4), kernel
    forwarding, 784 Mbps PCI-X ceiling. *)

val ixp2400 : t
(** XScale 600 MHz control CPU with low efficiency and a heavy
    xorp_rtrmgr share; eight dedicated packet processors forward at up
    to 940 Mbps. *)

val cisco3620 : t
(** Black box: ~93 ms per-message pacing, cheap per-prefix work,
    software forwarding on the shared CPU, 78 Mbps port ceiling. *)

val all : t list
(** The four systems, in Table II order. *)

val by_name : string -> t option
(** Case-insensitive lookup of ["pentium3"], ["xeon"], ["ixp2400"],
    ["cisco3620"]. *)

(** {1 Stage tables}

    An architecture's update path is declared, not hardwired: the
    router builds a {!Bgp_pipeline.Pipeline} from [stage_table] +
    [layout].  A new architecture is a new stage table (see DESIGN.md
    "Update pipeline" for a worked example). *)

val stage_table : t -> Bgp_pipeline.Pipeline.spec list
(** The seven-stage per-update table with this architecture's cost
    hooks.  XORP systems charge wire decode to [xorp_bgp], import
    policy to [xorp_policy], the decision to [xorp_rib], and FIB
    install to [xorp_fea]; the IOS black box charges every priced stage
    to the single [ios] process. *)

val layout : t -> Bgp_pipeline.Pipeline.layout
(** [Pipelined] for the XORP process chain, [Fused_paced] (with the
    per-message scheduler delay) for the monolithic IOS model. *)

val tx_proc_name : t -> string
(** The stage process charged for the message send path. *)

val fib_proc_name : t -> string
(** The stage process charged for out-of-band FIB repair work (peer
    loss). *)

val housekeeper_proc_name : t -> string option
(** An extra, non-pipeline process for periodic housekeeping
    ([xorp_rtrmgr]); [None] when the architecture has no such
    process. *)

val pp : Format.formatter -> t -> unit
(** One-line summary. *)

val pp_block_diagram : Format.formatter -> t -> unit
(** ASCII rendition of the Fig. 2 block diagram. *)
