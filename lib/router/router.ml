module Clock = Bgp_engine.Clock
module Link = Bgp_engine.Link
module Sched = Bgp_sim.Sched
module Msg = Bgp_wire.Msg
module Session = Bgp_fsm.Session
module Peer = Bgp_route.Peer
module Rib_manager = Bgp_rib.Rib_manager
module Damping = Bgp_rib.Damping
module Fib = Bgp_fib.Fib
module Pipeline = Bgp_pipeline.Pipeline
module Metrics = Bgp_stats.Metrics

module Interned = Bgp_route.Attrs.Interned

type peer_link = {
  peer : Peer.t;
  mutable session : Session.t option;  (* set right after creation *)
  mutable last_rx_size : int;
  max_prefixes : int option;  (* per-peer prefix-limit protection *)
  (* MRAI (RFC 4271 section 9.2.1.1): advertisements pending the
     per-peer MinRouteAdvertisementInterval timer. Later decisions for
     the same prefix overwrite earlier ones (only the final state is
     advertised when the timer fires).  Values are interned handles, so
     the flush groups prefixes into UPDATEs by arena id. *)
  mrai_pending : (Bgp_addr.Prefix.t, Interned.t option) Hashtbl.t;
  mutable mrai_armed : bool;
  mutable mrai_timer : Clock.handle option;
      (* the armed timer, kept so session loss can cancel it: a timer
         surviving [on_down] would flush the dead session's buffer into
         the next incarnation of the session *)
}

type counters = {
  transactions : int;
  updates_rx : int;
  withdrawn_rx : int;
  msgs_rx : int;
  msgs_tx : int;
  bytes_rx : int;
  bytes_tx : int;
  first_work_at : float option;
  last_transaction_at : float option;
}

type t = {
  clock : Clock.t;
  arch : Arch.t;
  sched : Sched.t;
  rib : Rib_manager.t;
  fib : Fib.t;
  fwd : Bgp_netsim.Forwarding.t;
  pipeline : Pipeline.t;
  tx_proc : Sched.proc;   (* message send path *)
  fib_proc : Sched.proc;  (* out-of-band FIB repair (peer loss) *)
  metrics : Metrics.t;
  mrai : float option;
  damp : Damping.t option;
  mutable damp_timer : Clock.handle option;
  peers : (int, peer_link) Hashtbl.t;
  c_transactions : Metrics.counter;
  c_updates_rx : Metrics.counter;
  c_withdrawn_rx : Metrics.counter;
  c_msgs_rx : Metrics.counter;
  c_msgs_tx : Metrics.counter;
  c_bytes_rx : Metrics.counter;
  c_bytes_tx : Metrics.counter;
  mutable first_work_at : float option;
  mutable last_transaction_at : float option;
  mutable inflight : int;  (* update messages still in the pipeline *)
  mutable route_observer : Bgp_addr.Prefix.t -> unit;
      (* fired once per Loc-RIB best-route change, with the prefix *)
  tracer : Bgp_trace.Tracer.t option;
  fsm_track : Bgp_trace.Tracer.track option;  (* session transitions *)
}

let make_forwarding arch sched =
  match arch.Arch.forwarding with
  | Arch.Kernel_shared
      { interrupt_cycles_per_packet; forwarding_cycles_per_packet;
        forwarding_weight } ->
    (* Install the weight once; demand changes keep it. *)
    Sched.set_forwarding_demand sched ~weight:forwarding_weight
      ~cycles_per_sec:0.0 ();
    Bgp_netsim.Forwarding.create
      (Bgp_netsim.Forwarding.Shared
         { sched; interrupt_cycles_per_packet; forwarding_cycles_per_packet })
      ~line_rate_mbps:arch.Arch.line_rate_mbps
  | Arch.Dedicated_pps capacity_pps ->
    Bgp_netsim.Forwarding.create
      (Bgp_netsim.Forwarding.Dedicated { capacity_pps })
      ~line_rate_mbps:arch.Arch.line_rate_mbps

let start_rtrmgr clock sched arch proc =
  if arch.Arch.rtrmgr_period > 0.0 && arch.Arch.rtrmgr_cycles > 0.0 then begin
    let rec tick () =
      Sched.submit sched proc ~cycles:arch.Arch.rtrmgr_cycles (fun () -> ());
      ignore (Clock.schedule clock ~delay:arch.Arch.rtrmgr_period tick)
    in
    ignore (Clock.schedule clock ~delay:arch.Arch.rtrmgr_period tick)
  end

let create ?import ?export ?mrai ?damping ?metrics ?tracer ?trace_process clock
    arch ~local_asn ~router_id =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let trace_process =
    match trace_process with Some p -> p | None -> arch.Arch.name
  in
  let c_transactions = Metrics.counter metrics "router.transactions" in
  let c_updates_rx = Metrics.counter metrics "router.updates_rx" in
  let c_withdrawn_rx = Metrics.counter metrics "router.withdrawn_rx" in
  let c_msgs_rx = Metrics.counter metrics "router.msgs_rx" in
  let c_msgs_tx = Metrics.counter metrics "router.msgs_tx" in
  let c_bytes_rx = Metrics.counter metrics "router.bytes_rx" in
  let c_bytes_tx = Metrics.counter metrics "router.bytes_tx" in
  (* The attribute arena is process-global; expose it as sampled gauges
     so a registry dump shows sharing effectiveness alongside the
     router's own counters. *)
  List.iter
    (fun (name, sample) -> ignore (Metrics.gauge metrics name sample))
    [ ("arena.interns", fun () -> (Interned.stats ()).Interned.interns);
      ("arena.hits", fun () -> (Interned.stats ()).Interned.hits);
      ("arena.live", fun () -> (Interned.stats ()).Interned.live);
      ("arena.saved_bytes", fun () -> (Interned.stats ()).Interned.saved_bytes)
    ];
  let sched =
    Sched.create clock ~hz:(Arch.effective_hz arch) ~pool:arch.Arch.pool
  in
  Option.iter
    (fun tr -> Sched.set_tracer sched ~process:trace_process tr)
    tracer;
  (* The pipeline creates the stage processes in table order; the
     housekeeper (not part of the update path) comes after, preserving
     the historical bgp/policy/rib/fea/rtrmgr process numbering. *)
  let pipeline =
    Pipeline.create ~clock ~sched ~metrics ~layout:(Arch.layout arch)
      ?tracer ~trace_process (Arch.stage_table arch)
  in
  Option.iter
    (fun name ->
      let proc = Sched.add_proc sched name in
      start_rtrmgr clock sched arch proc)
    (Arch.housekeeper_proc_name arch);
  let stage_proc name =
    match Pipeline.find_proc pipeline name with
    | Some p -> p
    | None ->
      invalid_arg
        (Printf.sprintf "Router.create: %s names no stage process %s"
           arch.Arch.name name)
  in
  let fwd = make_forwarding arch sched in
  { clock; arch; sched;
    rib = Rib_manager.create ?import ?export ~metrics ~local_asn ~router_id ();
    fib = Fib.create (); fwd; pipeline;
    tx_proc = stage_proc (Arch.tx_proc_name arch);
    fib_proc = stage_proc (Arch.fib_proc_name arch);
    metrics; mrai;
    damp = Option.map (fun cfg -> Damping.create ~metrics cfg) damping;
    damp_timer = None; peers = Hashtbl.create 8;
    c_transactions; c_updates_rx; c_withdrawn_rx; c_msgs_rx; c_msgs_tx;
    c_bytes_rx;
    c_bytes_tx; first_work_at = None; last_transaction_at = None;
    inflight = 0; route_observer = ignore; tracer;
    fsm_track =
      Option.map
        (fun tr ->
          Bgp_trace.Tracer.track tr ~process:trace_process ~thread:"fsm" ())
        tracer }

let arch t = t.arch
let clock t = t.clock
let sched t = t.sched
let rib t = t.rib
let fib t = t.fib
let forwarding t = t.fwd
let metrics t = t.metrics
let damping t = t.damp
let pipeline t = t.pipeline
let stage_stats t = Pipeline.stage_stats t.pipeline

let set_cross_traffic t traffic = Bgp_netsim.Forwarding.set_offered t.fwd traffic
let set_route_observer t f = t.route_observer <- f

(* ------------------------------------------------------------------ *)
(* Cost helpers                                                        *)
(* ------------------------------------------------------------------ *)

let cost t = t.arch.Arch.cost

let delta_cycles (c : Arch.cost_model) deltas =
  List.fold_left
    (fun acc d ->
      acc
      +.
      match d with
      | Fib.Replace _ -> c.Arch.cyc_per_fib_replace
      | Fib.Add _ | Fib.Withdraw _ -> c.Arch.cyc_per_fib_delta)
    0.0 deltas

(* Aggregate of RIB outcomes for one inbound update. *)
type update_work = {
  mutable w_candidates : int;
  mutable w_loc_changes : int;
  mutable w_deltas : Fib.delta list;
  mutable w_anns : Rib_manager.announcement list;
}

let run_rib_update t ~from (u : Msg.update) =
  let w =
    { w_candidates = 0; w_loc_changes = 0; w_deltas = []; w_anns = [] }
  in
  let absorb prefix (o : Rib_manager.outcome) =
    w.w_candidates <- w.w_candidates + o.Rib_manager.candidates;
    if o.Rib_manager.loc_changed then begin
      w.w_loc_changes <- w.w_loc_changes + 1;
      t.route_observer prefix
    end;
    w.w_deltas <- w.w_deltas @ o.Rib_manager.fib_deltas;
    w.w_anns <- w.w_anns @ o.Rib_manager.announcements
  in
  (match t.damp with
  | None ->
    List.iter
      (fun p -> absorb p (Rib_manager.withdraw t.rib ~from p))
      u.Msg.withdrawn;
    (match u.Msg.attrs with
    | Some interned ->
      (* Attr-group batched path: one shared handle for all NLRI, so the
         per-attribute guards run once per UPDATE. *)
      Rib_manager.announce_group t.rib ~from ~each:absorb u.Msg.nlri interned
    | None -> ())
  | Some d ->
    (* RFC 2439: withdrawals always reach the RIB (a suppressed route
       must never stay reachable); announcements of suppressed routes
       are withheld before the decision process.  The damping table
       keeps the withheld attrs and the router's reuse timer re-injects
       them when the penalty decays. *)
    let now = Clock.now t.clock in
    List.iter
      (fun p ->
        Damping.note_withdraw d ~now ~peer:from ~prefix:p;
        absorb p (Rib_manager.withdraw t.rib ~from p))
      u.Msg.withdrawn;
    (match u.Msg.attrs with
    | Some interned ->
      let passed =
        List.filter
          (fun p ->
            match Damping.on_announce d ~now ~peer:from ~prefix:p ~attrs:interned
            with
            | Damping.Pass -> true
            | Damping.Suppress -> false)
          u.Msg.nlri
      in
      if passed <> [] then
        Rib_manager.announce_group t.rib ~from ~each:absorb passed interned
    | None -> ()));
  w

(* ------------------------------------------------------------------ *)
(* Transmission                                                        *)
(* ------------------------------------------------------------------ *)

let link t peer =
  match Hashtbl.find_opt t.peers peer.Peer.id with
  | Some l -> l
  | None ->
    invalid_arg (Printf.sprintf "Router: unattached peer id %d" peer.Peer.id)

let link_session l =
  match l.session with
  | Some s -> s
  | None -> invalid_arg "Router: session not initialized"

(* Send a message to a peer, charging [proc] for the send path. *)
let transmit t proc peer msg =
  let c = cost t in
  let bytes = Bgp_wire.Codec.encoded_size msg in
  let cycles =
    c.Arch.cyc_per_msg_tx +. (float_of_int bytes *. c.Arch.cyc_per_byte)
  in
  Sched.submit t.sched proc ~cycles (fun () ->
      ignore (Session.send (link_session (link t peer)) msg))

(* Flush a peer's MRAI buffer: withdrawals batched together, then
   announcements grouped by interned attribute handle (id-keyed instead
   of structural hashing), each group one UPDATE.  Groups are emitted in
   arena-id order, which is deterministic and independent of hash-table
   iteration. *)
let rec mrai_flush t lnk =
  let withdrawn = ref [] in
  let groups = Interned.Tbl.create 8 in
  Hashtbl.iter
    (fun prefix attrs_opt ->
      match attrs_opt with
      | None -> withdrawn := prefix :: !withdrawn
      | Some interned ->
        let prefixes =
          Option.value ~default:[] (Interned.Tbl.find_opt groups interned)
        in
        Interned.Tbl.replace groups interned (prefix :: prefixes))
    lnk.mrai_pending;
  Hashtbl.reset lnk.mrai_pending;
  let msgs =
    (if !withdrawn = [] then [] else [ Msg.withdrawal !withdrawn ])
    @ (Interned.Tbl.fold
         (fun interned prefixes acc -> (interned, prefixes) :: acc)
         groups []
      |> List.sort (fun (a, _) (b, _) -> Interned.compare_id a b)
      |> List.map (fun (interned, prefixes) ->
             Msg.announcement_interned interned prefixes))
  in
  if msgs <> [] then begin
    List.iter (fun msg -> transmit t t.tx_proc lnk.peer msg) msgs;
    true
  end
  else false

and mrai_arm t lnk interval =
  lnk.mrai_armed <- true;
  lnk.mrai_timer <-
    Some
      (Clock.schedule t.clock ~delay:interval (fun () ->
           lnk.mrai_timer <- None;
           if Hashtbl.length lnk.mrai_pending > 0 then begin
             ignore (mrai_flush t lnk);
             mrai_arm t lnk interval
           end
           else lnk.mrai_armed <- false))

(* Route one decision's advertisement toward a peer, immediately or
   through the MRAI buffer.  [w] is the owning batch's work profile;
   advertisements actually held back by an armed timer are counted
   there. *)
let emit_announcement t (w : Pipeline.work) (a : Rib_manager.announcement) =
  match t.mrai with
  | None ->
    (* XORP-style: one UPDATE per announcement as decisions are made. *)
    let msg =
      match a.Rib_manager.ann_attrs with
      | Some interned ->
        Msg.announcement_interned interned [ a.Rib_manager.ann_prefix ]
      | None -> Msg.withdrawal [ a.Rib_manager.ann_prefix ]
    in
    transmit t t.tx_proc a.Rib_manager.dest msg
  | Some interval ->
    let lnk = link t a.Rib_manager.dest in
    if lnk.mrai_armed then
      w.Pipeline.w_mrai_buffered <- w.Pipeline.w_mrai_buffered + 1;
    Hashtbl.replace lnk.mrai_pending a.Rib_manager.ann_prefix
      a.Rib_manager.ann_attrs;
    if not lnk.mrai_armed then begin
      ignore (mrai_flush t lnk);
      mrai_arm t lnk interval
    end

(* XORP emits one UPDATE per announcement as decisions are made. *)
let announcement_msgs anns =
  List.map
    (fun (a : Rib_manager.announcement) ->
      ( a.Rib_manager.dest,
        match a.Rib_manager.ann_attrs with
        | Some interned ->
          Msg.announcement_interned interned [ a.Rib_manager.ann_prefix ]
        | None -> Msg.withdrawal [ a.Rib_manager.ann_prefix ] ))
    anns

(* Pack a full-table export (Phase 2) into large UPDATEs: consecutive
   announcements sharing an attribute handle ride in one message (the
   shared-attrs check is an O(1) arena-id comparison). *)
let pack_export anns =
  let max_per_msg = 200 in
  let rec go acc current_attrs current_prefixes = function
    | [] ->
      let acc =
        if current_prefixes = [] then acc
        else
          match current_attrs with
          | Some interned ->
            Msg.announcement_interned interned (List.rev current_prefixes)
            :: acc
          | None -> acc
      in
      List.rev acc
    | (a : Rib_manager.announcement) :: rest -> (
      match a.Rib_manager.ann_attrs with
      | None -> go acc current_attrs current_prefixes rest
      | Some interned -> (
        match current_attrs with
        | Some cur
          when Interned.equal cur interned
               && List.length current_prefixes < max_per_msg ->
          go acc current_attrs (a.Rib_manager.ann_prefix :: current_prefixes) rest
        | Some cur ->
          go
            (Msg.announcement_interned cur (List.rev current_prefixes) :: acc)
            (Some interned)
            [ a.Rib_manager.ann_prefix ] rest
        | None -> go acc (Some interned) [ a.Rib_manager.ann_prefix ] rest))
  in
  go [] None [] anns

(* ------------------------------------------------------------------ *)
(* The update pipeline                                                 *)
(* ------------------------------------------------------------------ *)

let note_transactions t n =
  Metrics.incr ~by:n t.c_transactions;
  t.last_transaction_at <- Some (Clock.now t.clock);
  t.inflight <- t.inflight - 1

(* Originate (or withdraw) a prefix locally — also the re-injection
   path for damping reuse.  The FIB commit and the resulting
   advertisements ride the FIB process, like a peer-loss repair:
   origination is operator/IGP work, not an inbound UPDATE, so it stays
   off the update pipeline.  Books one transaction when the commit
   lands (the event a convergence detector keys on). *)
let local_change t ~prefix outcome =
  let now = Clock.now t.clock in
  if t.first_work_at = None then t.first_work_at <- Some now;
  if outcome.Rib_manager.loc_changed then t.route_observer prefix;
  t.inflight <- t.inflight + 1;
  let c = cost t in
  let deltas = outcome.Rib_manager.fib_deltas in
  let anns = outcome.Rib_manager.announcements in
  let cycles =
    c.Arch.cyc_per_fib_msg +. delta_cycles c deltas
    +. (float_of_int (List.length anns) *. c.Arch.cyc_per_announcement)
  in
  Sched.submit t.sched t.fib_proc ~cycles (fun () ->
      ignore (Fib.apply_all t.fib deltas);
      List.iter
        (fun (dest, msg) -> transmit t t.fib_proc dest msg)
        (announcement_msgs anns);
      note_transactions t 1)

(* Reuse timer: one timer per router, armed at the earliest instant any
   suppressed route's penalty decays to the reuse threshold.  Firing
   re-injects the withheld announcements through the FIB process (each
   books a transaction, so convergence detection sees the reuse). *)
let rec arm_reuse t =
  match t.damp with
  | None -> ()
  | Some d ->
    (match t.damp_timer with
    | Some h ->
      Clock.cancel h;
      t.damp_timer <- None
    | None -> ());
    (match Damping.next_reuse_at d with
    | None -> ()
    | Some at ->
      (* Fire a hair after the solved reuse instant: at [at] exactly the
         decayed penalty can still sit an ulp above the threshold, and a
         timer that re-arms for the same instant would spin the clock in
         place. *)
      t.damp_timer <-
        Some
          (Clock.schedule_at t.clock ~time:(at +. 1e-3) (fun () ->
               t.damp_timer <- None;
               reuse_fire t d)))

and reuse_fire t d =
  let now = Clock.now t.clock in
  List.iter
    (fun (peer, prefix, attrs) ->
      (* A peer that went away while the route sat suppressed keeps
         nothing: its withheld announcement must not resurrect. *)
      let established =
        match Hashtbl.find_opt t.peers peer.Peer.id with
        | Some l -> (
          match l.session with
          | Some s -> Session.state s = Bgp_fsm.Fsm.Established
          | None -> false)
        | None -> false
      in
      if established then
        local_change t ~prefix
          (Rib_manager.announce_interned t.rib ~from:peer prefix attrs))
    (Damping.take_reusable d ~now);
  arm_reuse t

(* Prefix-limit protection: a peer announcing more prefixes than
   configured gets a CEASE, the standard operator defense against
   leaks (and against the worm-scale storms of paper section II). *)
let over_prefix_limit t peer_link (u : Msg.update) =
  match peer_link.max_prefixes with
  | None -> false
  | Some limit ->
    (* Project the post-UPDATE table size rather than adding the raw
       NLRI length: re-announced prefixes and duplicates within one
       NLRI don't grow the table, so a peer refreshing its existing
       routes at the limit must not be CEASEd. *)
    Rib_manager.projected_adj_in_size t.rib peer_link.peer
      ~announced:u.Msg.nlri ~withdrawn:u.Msg.withdrawn
    > limit

(* Route one inbound UPDATE — all its NLRI as one batch — through the
   architecture's stage table.  The protocol side effects ride on the
   stage hooks:

   - [Adj_rib_in]'s begin hook checks the prefix limit (here, not at
     decode time: the projection must see every earlier UPDATE from
     this peer already applied, and the pipeline is the point where
     that ordering holds), then runs the RIB machinery and copies its
     outcome into the work profile, which prices the decision and FIB
     stages;
   - [Fib_install]'s finish hook commits the deltas to the FIB;
   - [Export_policy]'s finish hook emits the advertisements
     (immediately, or into the MRAI buffers);
   - the done hook books the transactions. *)
let process_update t peer_link ~bytes (u : Msg.update) =
  let from = peer_link.peer in
  let announced = List.length u.Msg.nlri in
  let withdrawn = List.length u.Msg.withdrawn in
  let prefixes = announced + withdrawn in
  let n_peers = max 1 (List.length (Rib_manager.peers t.rib)) in
  (* One attribute group for the shared NLRI handle, one more when
     withdrawals ride along in the same UPDATE. *)
  let attr_groups =
    (if u.Msg.attrs <> None && u.Msg.nlri <> [] then 1 else 0)
    + if u.Msg.withdrawn <> [] then 1 else 0
  in
  let w =
    Pipeline.work ~bytes ~announced ~withdrawn ~peers:n_peers ~attr_groups
      ~src:from.Peer.id ()
  in
  let deltas = ref [] in
  let anns = ref [] in
  let ceased = ref false in
  let on_begin = function
    | Pipeline.Adj_rib_in ->
      if over_prefix_limit t peer_link u then begin
        (* Session teardown; the FSM sends CEASE and on_down flushes
           the peer's contribution.  The update is NOT applied. *)
        ceased := true;
        Option.iter Session.stop peer_link.session
      end
      else begin
      let r = run_rib_update t ~from u in
      w.Pipeline.w_candidates <- r.w_candidates;
      w.Pipeline.w_loc_changes <- r.w_loc_changes;
      List.iter
        (function
          | Fib.Replace _ ->
            w.Pipeline.w_fib_replaces <- w.Pipeline.w_fib_replaces + 1
          | Fib.Add _ | Fib.Withdraw _ ->
            w.Pipeline.w_fib_installs <- w.Pipeline.w_fib_installs + 1)
        r.w_deltas;
      w.Pipeline.w_announcements <- List.length r.w_anns;
      deltas := r.w_deltas;
      anns := r.w_anns
      end
    | _ -> ()
  in
  let on_finish = function
    | Pipeline.Fib_install -> ignore (Fib.apply_all t.fib !deltas)
    | Pipeline.Export_policy -> List.iter (emit_announcement t w) !anns
    | _ -> ()
  in
  Pipeline.submit t.pipeline w
    { Pipeline.on_begin; on_finish;
      on_done =
        (fun () ->
          if !ceased then t.inflight <- t.inflight - 1
          else begin
            note_transactions t prefixes;
            (* Any flap this UPDATE charged may have moved the earliest
               reuse instant. *)
            arm_reuse t
          end) }

let on_update t peer_link (u : Msg.update) =
  let now = Clock.now t.clock in
  if t.first_work_at = None then t.first_work_at <- Some now;
  Metrics.incr t.c_updates_rx;
  Metrics.incr ~by:(List.length u.Msg.withdrawn) t.c_withdrawn_rx;
  t.inflight <- t.inflight + 1;
  process_update t peer_link ~bytes:peer_link.last_rx_size u

(* Ship a full advertisement set to one peer, packed into large
   updates, charging per-prefix announcement-building cycles. *)
let send_packed t peer_link anns =
  let msgs = pack_export anns in
  let c = cost t in
  List.iter
    (fun msg ->
      t.inflight <- t.inflight + 1;
      let per_prefix =
        float_of_int (Msg.nlri_count msg) *. c.Arch.cyc_per_announcement
      in
      Sched.submit t.sched t.tx_proc ~cycles:per_prefix (fun () ->
          t.inflight <- t.inflight - 1;
          ignore (Session.send (link_session peer_link) msg)))
    msgs

(* Phase 2: a peer reached Established; if we already hold routes, ship
   the full table. *)
let on_established t peer_link =
  Rib_manager.set_peer_up t.rib peer_link.peer true;
  send_packed t peer_link (Rib_manager.export_full t.rib peer_link.peer)

(* RFC 2918: the peer asked for a refresh. Only IPv4 unicast exists
   here; other AFI/SAFI pairs are ignored, as the RFC prescribes for
   unadvertised families. *)
let on_refresh t peer_link ~afi ~safi =
  if afi = 1 && safi = 1 then
    send_packed t peer_link (Rib_manager.refresh t.rib peer_link.peer)

let attach_peer ?max_prefixes ?restart_delay ?(active = false) ?import ?export
    t ~peer ~(link : Link.t) =
  if Hashtbl.mem t.peers peer.Peer.id then
    invalid_arg (Printf.sprintf "Router.attach_peer: duplicate id %d" peer.Peer.id);
  Rib_manager.add_peer ?import ?export ~up:false t.rib peer;
  let cfg =
    { (Bgp_fsm.Fsm.default_config ~asn:(Rib_manager.local_asn t.rib)
         ~router_id:(Rib_manager.router_id t.rib))
      with Bgp_fsm.Fsm.passive = not active }
  in
  let io = Session.io_of_link ~active link in
  let lnk =
    { peer; session = None; last_rx_size = 0; max_prefixes;
      mrai_pending = Hashtbl.create 16; mrai_armed = false;
      mrai_timer = None }
  in
  let hooks =
    { Session.on_update = (fun u -> on_update t lnk u);
      on_refresh = (fun afi safi -> on_refresh t lnk ~afi ~safi);
      on_established = (fun () -> on_established t lnk);
      on_down =
        (fun _reason ->
          (* Advertisements buffered for the dead session must die with
             it: the next incarnation starts from export_full, and a
             stale armed timer would otherwise flush the old buffer
             into the reborn session (or leave mrai_armed stuck true,
             silently buffering forever with no timer to drain it). *)
          Option.iter Clock.cancel lnk.mrai_timer;
          lnk.mrai_timer <- None;
          Hashtbl.reset lnk.mrai_pending;
          lnk.mrai_armed <- false;
          (* Session loss invalidates everything the peer contributed;
             the repair work flows outside the update pipeline, charged
             to the architecture's FIB process like any other burst
             (paper: "a link is down or another router failed"). *)
          let o = Rib_manager.peer_down t.rib lnk.peer in
          List.iter
            (fun d -> t.route_observer (Fib.delta_prefix d))
            o.Rib_manager.fib_deltas;
          (match t.damp with
          | Some d ->
            (* Session loss is a withdrawal flap for every route the
               peer's loss took out of the FIB (RFC 2439 treats a
               session reset like a withdrawal of its routes). *)
            let now = Clock.now t.clock in
            List.iter
              (fun dl ->
                Damping.note_withdraw d ~now ~peer:lnk.peer
                  ~prefix:(Fib.delta_prefix dl))
              o.Rib_manager.fib_deltas;
            arm_reuse t
          | None -> ());
          (match o.Rib_manager.fib_deltas, o.Rib_manager.announcements with
          | [], [] -> ()
          | deltas, anns ->
            t.inflight <- t.inflight + 1;
            let c = cost t in
            let cycles =
              c.Arch.cyc_per_fib_msg +. delta_cycles c deltas
              +. (float_of_int (List.length anns) *. c.Arch.cyc_per_announcement)
            in
            Sched.submit t.sched t.fib_proc ~cycles (fun () ->
                ignore (Fib.apply_all t.fib deltas);
                List.iter
                  (fun (dest, msg) -> transmit t t.fib_proc dest msg)
                  (announcement_msgs anns);
                t.inflight <- t.inflight - 1));
          (* Operator-style automatic recovery (off by default): rearm
             the passive session so a flapping peer can reconnect.  The
             adversarial fault scenarios turn this on. *)
          Option.iter
            (fun delay ->
              ignore
                (Clock.schedule t.clock ~delay (fun () ->
                     match lnk.session with
                     | Some s when Session.state s = Bgp_fsm.Fsm.Idle ->
                       Session.start s
                     | _ -> ())))
            restart_delay);
      on_tx_msg =
        (fun _ bytes ->
          Metrics.incr t.c_msgs_tx;
          Metrics.incr ~by:bytes t.c_bytes_tx);
      on_rx_msg =
        (fun _ bytes ->
          Metrics.incr t.c_msgs_rx;
          Metrics.incr ~by:bytes t.c_bytes_rx;
          lnk.last_rx_size <- bytes) }
  in
  let session = Session.create cfg (Session.timer_service_of t.clock) io hooks in
  (match t.tracer, t.fsm_track with
  | Some tr, Some tk ->
    let peer_name = Printf.sprintf "peer-%d" peer.Peer.id in
    Session.set_transition_observer session (fun before after ->
        Bgp_trace.Tracer.fsm_transition tr tk ~ts:(Clock.now t.clock)
          ~peer:peer_name
          ~from_state:(Bgp_fsm.Fsm.state_name before)
          ~to_state:(Bgp_fsm.Fsm.state_name after))
  | _ -> ());
  lnk.session <- Some session;
  Hashtbl.replace t.peers peer.Peer.id lnk;
  link.Link.set_receiver (fun bytes -> Session.feed session bytes);
  link.Link.set_on_connected (fun () -> Session.connected session);
  link.Link.set_on_closed (fun () -> Session.closed session);
  Session.start session

let session_state t peer = Session.state (link_session (link t peer))

let originate t ~prefix =
  local_change t ~prefix
    (Rib_manager.inject_local t.rib ~prefix
       ~next_hop:(Rib_manager.router_id t.rib))

let withdraw_origin t ~prefix =
  local_change t ~prefix (Rib_manager.withdraw_local t.rib ~prefix)

let idle t = t.inflight = 0 && Pipeline.idle t.pipeline

let counters t =
  { transactions = Metrics.value t.c_transactions;
    updates_rx = Metrics.value t.c_updates_rx;
    withdrawn_rx = Metrics.value t.c_withdrawn_rx;
    msgs_rx = Metrics.value t.c_msgs_rx;
    msgs_tx = Metrics.value t.c_msgs_tx;
    bytes_rx = Metrics.value t.c_bytes_rx;
    bytes_tx = Metrics.value t.c_bytes_tx;
    first_work_at = t.first_work_at;
    last_transaction_at = t.last_transaction_at }

(* A measurement-phase boundary: the whole registry — router counters,
   RIB work counters, per-stage pipeline accounting — resets as one. *)
let reset_counters t =
  Metrics.reset_all t.metrics;
  t.first_work_at <- None;
  t.last_transaction_at <- None
