(** The router under test: protocol engine + architecture model.

    Assembles, on one {!Bgp_engine.Clock}:
    - a passive BGP {!Bgp_fsm.Session} per attached peer,
    - the {!Bgp_rib.Rib_manager} three-RIB update engine,
    - a {!Bgp_fib.Fib} forwarding table,
    - a {!Bgp_netsim.Forwarding} data-plane model, and
    - the architecture's CPU: a {!Bgp_pipeline.Pipeline} built from the
      architecture's declarative stage table ({!Arch.stage_table}) on a
      {!Bgp_sim.Sched} pool — the XORP process chain runs [Pipelined],
      the commercial black box runs [Fused_paced].

    Protocol work happens logically when messages arrive, but its
    {e completion} — and therefore the transactions-per-second metric —
    is gated by simulated CPU-cycle jobs flowing through the update
    pipeline, which is where architecture differences and cross-traffic
    interference show up.

    All instrumentation — router window counters, {!Bgp_rib.Rib_manager}
    work counters, and per-stage pipeline accounting — lives in one
    {!Bgp_stats.Metrics} registry, reset atomically at phase
    boundaries. *)

type t

val create :
  ?import:Bgp_policy.Policy.t ->
  ?export:Bgp_policy.Policy.t ->
  ?mrai:float ->
  ?damping:Bgp_rib.Damping.config ->
  ?metrics:Bgp_stats.Metrics.t ->
  ?tracer:Bgp_trace.Tracer.t ->
  ?trace_process:string ->
  Bgp_engine.Clock.t ->
  Arch.t ->
  local_asn:Bgp_route.Asn.t ->
  router_id:Bgp_addr.Ipv4.t ->
  t
(** [mrai]: enable RFC 4271 section 9.2.1.1 MinRouteAdvertisementInterval
    batching of outbound advertisements (seconds between flushes per
    peer).  Off by default — XORP 1.3, as benchmarked by the paper,
    advertises per decision.

    [damping]: enable RFC 2439 route flap damping with the given
    parameters ({!Bgp_rib.Damping.config}).  Announcements of
    suppressed routes are withheld before the decision process,
    withdrawals always pass, session loss charges a withdrawal flap
    for every route the peer's loss took out of the FIB, and a single
    reuse timer (on the router's clock) re-injects withheld routes as
    their penalties decay — each re-injection runs the FIB process and
    books one transaction, like a local origination.  Registers the
    [damping.*] metrics in the router's registry.  Off by default:
    with [damping] absent the update path is byte-identical to a
    router built without this parameter.

    [metrics]: the registry everything registers into (default: a fresh
    private one).  Supplying a shared registry lets a harness read all
    router metrics through one handle; it must not already hold
    [router.*], [rib.*], or [pipeline.*] names.

    [tracer]: record structured trace events — pipeline stage spans,
    scheduler run/block and core occupancy, FSM transitions of attached
    peers — into the given {!Bgp_trace.Tracer}, grouped under a trace
    process named [trace_process] (default: the architecture name).
    Off by default and purely observational: simulated timings and all
    counters are identical with tracing on or off. *)

val arch : t -> Arch.t
val clock : t -> Bgp_engine.Clock.t
val sched : t -> Bgp_sim.Sched.t
val rib : t -> Bgp_rib.Rib_manager.t
val fib : t -> Bgp_fib.Fib.t
val forwarding : t -> Bgp_netsim.Forwarding.t

val metrics : t -> Bgp_stats.Metrics.t
(** The unified registry behind {!counters}, the RIB work counters, and
    the per-stage pipeline accounting. *)

val damping : t -> Bgp_rib.Damping.t option
(** The damping table, when {!create} enabled it — the harness reads
    suppression state directly for its fault oracle. *)

val pipeline : t -> Bgp_pipeline.Pipeline.t
(** The instantiated update pipeline (stage procs, layout). *)

val stage_stats : t -> Bgp_pipeline.Pipeline.stage_stat list
(** Per-stage unit/batch/cycle breakdown for the current measurement
    window (reset by {!reset_counters}). *)

val attach_peer :
  ?max_prefixes:int -> ?restart_delay:float -> ?active:bool ->
  ?import:Bgp_policy.Policy.t -> ?export:Bgp_policy.Policy.t ->
  t -> peer:Bgp_route.Peer.t -> link:Bgp_engine.Link.t -> unit
(** Register a neighbor reachable over [link] — one endpoint of a
    simulated {!Bgp_netsim.Channel} or a live TCP connection, the
    router cannot tell — and start a session on it.
    @raise Invalid_argument if the peer's id is already attached
    (the id names the neighbor in every RIB; silently rebinding it
    would orphan the old session).
    [max_prefixes] enables prefix-limit protection: an announcement
    pushing the peer's Adj-RIB-In beyond the limit tears the session
    down with a CEASE and flushes the peer's routes.
    [restart_delay] enables automatic recovery: whenever the session
    drops to Idle it is restarted (passively, waiting for the peer to
    reconnect) after that many clock seconds — required by the
    adversarial flap scenarios, off by default.
    [active] (default false) makes this side the connection opener —
    router-to-router links in a {!Bgp_topo} graph designate exactly one
    opener per edge; the benchmark router stays passive, as in the
    paper's setup.
    [import]/[export] install per-peer policies (e.g. the Gao–Rexford
    relationship rules), overriding the router-wide defaults given to
    {!create}. *)

val session_state : t -> Bgp_route.Peer.t -> Bgp_fsm.Fsm.state

val originate : t -> prefix:Bgp_addr.Prefix.t -> unit
(** Originate [prefix] locally (next-hop self).  The FIB commit and the
    advertisements to every Established peer are charged to the FIB
    process, off the update pipeline; one transaction is booked when
    the commit completes. *)

val withdraw_origin : t -> prefix:Bgp_addr.Prefix.t -> unit
(** Withdraw a locally originated prefix (counterpart of
    {!originate}). *)

val set_cross_traffic : t -> Bgp_netsim.Traffic.t -> unit

val set_route_observer : t -> (Bgp_addr.Prefix.t -> unit) -> unit
(** Install a hook fired once per Loc-RIB best-route change, with the
    affected prefix — the signal a topology harness counts as one
    path-exploration step (default: ignore).  Covers inbound-update
    decisions, local (de)origination, and peer-loss flushes. *)

val idle : t -> bool
(** No control-plane work queued or in flight (the criterion the
    harness uses to detect the end of a phase). *)

type counters = {
  transactions : int;
      (** prefixes fully processed through to FIB/Loc-RIB completion *)
  updates_rx : int;
  withdrawn_rx : int;
      (** prefixes withdrawn in received UPDATEs *)
  msgs_rx : int;
  msgs_tx : int;
  bytes_rx : int;
  bytes_tx : int;
  first_work_at : float option;
      (** virtual time the first update of the window arrived *)
  last_transaction_at : float option;
}

val counters : t -> counters
val reset_counters : t -> unit
(** Zero the window counters (phase boundary).  Resets through the
    shared registry ({!Bgp_stats.Metrics.reset_all}), so router, RIB,
    and per-stage pipeline accounting clear together. *)
