type t = {
  heap : handle Heap.t;
  mutable time : float;
  mutable seq : int;
  mutable live : int;
  mutable cancelled_in_heap : int;
  mutable dispatched : int;
  mutable limit : int;
}

and handle = {
  mutable state : [ `Pending | `Cancelled | `Fired ];
  fn : unit -> unit;
  eng : t;
}

exception Too_many_events

let create () =
  { heap = Heap.create (); time = 0.0; seq = 0; live = 0;
    cancelled_in_heap = 0; dispatched = 0; limit = max_int }

let now t = t.time

let schedule_at t ~time fn =
  let time = if time < t.time then t.time else time in
  let h = { state = `Pending; fn; eng = t } in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  Heap.push t.heap ~time ~seq:t.seq h;
  h

let schedule t ~delay fn = schedule_at t ~time:(t.time +. max 0.0 delay) fn

(* Cancelled entries stay in the heap (there is no O(log n) removal by
   handle), but [pending] is kept exact by the [live] counter, and once
   more than half the heap is dead weight it is compacted in one O(n)
   pass — so a workload that schedules and cancels N timers holds O(live)
   heap, not O(N). *)
let compact t =
  Heap.compact t.heap ~keep:(fun h -> h.state = `Pending);
  t.cancelled_in_heap <- 0

let cancel h =
  match h.state with
  | `Pending ->
    h.state <- `Cancelled;
    let t = h.eng in
    t.live <- t.live - 1;
    t.cancelled_in_heap <- t.cancelled_in_heap + 1;
    if t.cancelled_in_heap > Heap.size t.heap / 2 && Heap.size t.heap >= 32
    then compact t
  | `Cancelled | `Fired -> ()

let cancelled h = h.state = `Cancelled

let fire t h =
  match h.state with
  | `Cancelled -> t.cancelled_in_heap <- t.cancelled_in_heap - 1
  | `Fired -> assert false
  | `Pending ->
    t.live <- t.live - 1;
    h.state <- `Fired;
    t.dispatched <- t.dispatched + 1;
    if t.dispatched > t.limit then raise Too_many_events;
    h.fn ()

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some (time, _, h) ->
    t.time <- time;
    fire t h;
    true

let run ?until t =
  let keep_going () =
    match Heap.peek t.heap with
    | None -> false
    | Some (time, _, _) ->
      (match until with Some u when time > u -> false | _ -> true)
  in
  while keep_going () do
    ignore (step t)
  done;
  (* When bounded, advance the clock to the bound so callers can rely
     on [now] after [run ~until]. *)
  match until with Some u when u > t.time -> t.time <- u | _ -> ()

(* Half-open variant for the partitioned engine's window drains: events
   at exactly [until] are left for the next window, where mailbox
   deliveries landing at that instant have already been enqueued. *)
let run_before t ~until =
  let keep_going () =
    match Heap.peek t.heap with
    | None -> false
    | Some (time, _, _) -> time < until
  in
  while keep_going () do
    ignore (step t)
  done;
  if until > t.time then t.time <- until

let pending t = t.live
let dispatched t = t.dispatched
let set_event_limit t n = t.limit <- n

let next_time t =
  match Heap.peek t.heap with
  | None -> None
  | Some (time, _, _) -> Some time

let clock t =
  Bgp_engine.Clock.make ~label:"sim"
    ~now:(fun () -> t.time)
    ~schedule_at:(fun ~time fn ->
      let h = schedule_at t ~time fn in
      Bgp_engine.Clock.handle
        ~cancel:(fun () -> cancel h)
        ~cancelled:(fun () -> cancelled h))
    ~post:(fun fn -> ignore (schedule t ~delay:0.0 fn))
    ~run_window:(fun ~cond ~step:window ->
      (* A simulated clock always consumes the whole window: virtual
         time is free, and burning it keeps event ordering — and hence
         byte-identical benchmark output — independent of what [cond]
         observes. *)
      run ~until:(t.time +. window) t;
      cond ())
