(** The discrete-event simulation core.

    Virtual time is in seconds (float).  Events scheduled for the same
    instant fire in scheduling order, so runs are fully deterministic.
    Everything in the benchmark — message transmission, CPU job
    completion, protocol timers, trace sampling — is an event on one
    engine. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time, seconds. *)

type handle
(** A scheduled event, cancellable until it fires. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. max 0 delay]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Absolute-time variant; a [time] in the past fires immediately
    (at [now]). *)

val cancel : handle -> unit
(** Idempotent; cancelling a fired event is a no-op. *)

val cancelled : handle -> bool

val run : ?until:float -> t -> unit
(** Process events until the queue drains or virtual time would exceed
    [until] (events at exactly [until] still fire). *)

val run_before : t -> until:float -> unit
(** Half-open variant: fire every event with time strictly below
    [until], then advance the clock to [until].  This is the window
    drain of the partitioned engine ({!Pengine}) — events at exactly
    [until] belong to the next window, together with any cross-partition
    deliveries landing at that instant. *)

val step : t -> bool
(** Fire the single next event; [false] when the queue is empty. *)

val pending : t -> int
(** Exact number of events scheduled but neither fired nor cancelled.
    Cancelled entries linger in the internal heap until their scheduled
    time (there is no O(log n) removal by handle), but they are not
    counted here, and the heap is compacted in one O(n) pass whenever
    dead entries outnumber live ones — so heap memory is O(pending),
    not O(ever scheduled). *)

val dispatched : t -> int
(** Events fired so far — the per-partition work measure behind the
    events/sec-per-domain curves. *)

exception Too_many_events

val set_event_limit : t -> int -> unit
(** Safety valve for runaway simulations: {!run} raises
    {!Too_many_events} after this many dispatched events
    (default [max_int]). *)

val next_time : t -> float option
(** Scheduled time of the earliest queued event, if any. *)

val clock : t -> Bgp_engine.Clock.t
(** This engine as a {!Bgp_engine.Clock}: virtual time, and a
    [run] pump that always consumes the whole requested window (so a
    simulation's event order never depends on the pump's exit
    condition).  [post] is [schedule ~delay:0.0]. *)
