(** The discrete-event simulation core.

    Virtual time is in seconds (float).  Events scheduled for the same
    instant fire in scheduling order, so runs are fully deterministic.
    Everything in the benchmark — message transmission, CPU job
    completion, protocol timers, trace sampling — is an event on one
    engine. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time, seconds. *)

type handle
(** A scheduled event, cancellable until it fires. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. max 0 delay]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Absolute-time variant; a [time] in the past fires immediately
    (at [now]). *)

val cancel : handle -> unit
(** Idempotent; cancelling a fired event is a no-op. *)

val cancelled : handle -> bool

val run : ?until:float -> t -> unit
(** Process events until the queue drains or virtual time would exceed
    [until] (events at exactly [until] still fire). *)

val step : t -> bool
(** Fire the single next event; [false] when the queue is empty. *)

val pending : t -> int
(** Number of events still queued (cancelled entries are counted until
    their scheduled time is reached and they are reaped). *)

exception Too_many_events

val set_event_limit : t -> int -> unit
(** Safety valve for runaway simulations: {!run} raises
    {!Too_many_events} after this many dispatched events
    (default [max_int]). *)

val next_time : t -> float option
(** Scheduled time of the earliest queued event, if any. *)

val clock : t -> Bgp_engine.Clock.t
(** This engine as a {!Bgp_engine.Clock}: virtual time, and a
    [run] pump that always consumes the whole requested window (so a
    simulation's event order never depends on the pump's exit
    condition).  [post] is [schedule ~delay:0.0]. *)
