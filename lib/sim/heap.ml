type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable arr : 'a entry array; mutable len : int }

let create () = { arr = [||]; len = 0 }
let size h = h.len
let is_empty h = h.len = 0

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h =
  let cap = Array.length h.arr in
  if h.len = cap then begin
    let bigger = Array.make (max 16 (2 * cap)) h.arr.(0) in
    Array.blit h.arr 0 bigger 0 h.len;
    h.arr <- bigger
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.arr.(i) h.arr.(parent) then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(parent);
      h.arr.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && less h.arr.(l) h.arr.(!smallest) then smallest := l;
  if r < h.len && less h.arr.(r) h.arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(!smallest);
    h.arr.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h ~time ~seq value =
  let e = { time; seq; value } in
  if h.len = 0 && Array.length h.arr = 0 then h.arr <- Array.make 16 e;
  grow h;
  h.arr.(h.len) <- e;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.arr.(0) <- h.arr.(h.len);
      sift_down h 0
    end;
    Some (top.time, top.seq, top.value)
  end

let peek h = if h.len = 0 then None else Some (h.arr.(0).time, h.arr.(0).seq, h.arr.(0).value)

let clear h = h.len <- 0

(* Filter in place, then restore the heap property bottom-up (Floyd):
   O(n) total, and the surviving entries keep their (time, seq) keys, so
   compaction can never change dispatch order. *)
let compact h ~keep =
  let j = ref 0 in
  for i = 0 to h.len - 1 do
    if keep h.arr.(i).value then begin
      h.arr.(!j) <- h.arr.(i);
      incr j
    end
  done;
  h.len <- !j;
  for i = (h.len / 2) - 1 downto 0 do
    sift_down h i
  done
