(** Binary min-heap used as the simulator's event queue.

    Entries are ordered by [(time, seq)] where [seq] is a caller-chosen
    tiebreaker (the engine uses a monotone counter so that events
    scheduled for the same instant fire in FIFO order — determinism the
    whole benchmark depends on). *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum entry. *)

val peek : 'a t -> (float * int * 'a) option
val clear : 'a t -> unit

val compact : 'a t -> keep:('a -> bool) -> unit
(** Drop every entry whose value fails [keep] and re-heapify, in O(n).
    Surviving entries keep their [(time, seq)] keys, so the dispatch
    order of what remains is unchanged. *)
