(* A partitioned discrete-event engine: P independent per-partition
   event queues ({!Engine.t}) coordinated by a conservative-lookahead
   window barrier.

   Safe horizon.  Let L be the minimum latency over cross-partition
   links (registered by {!register_cross_latency}).  Any event a
   partition executes at time t can influence another partition no
   earlier than t + L — the only cross-partition interaction is a
   mailbox post whose delivery time the poster derives from a link of
   latency >= L.  Hence inside a window [W, W + L) every partition can
   drain its own queue independently: nothing a peer does in the same
   window can land before W + L.  At the window barrier the mailboxes
   are flushed (in deterministic partition-major, send order) into the
   target queues, and the next window starts.  The synchronization is
   exact, not approximate: no cross-partition event is ever delivered
   late or reordered against anything it could causally affect.

   Determinism.  Each partition orders its events by the usual
   (time, seq) key of its own queue; mailbox flushes assign seqs in
   (source partition, send order) — a fixed order — so a run's event
   schedule is a pure function of the model, never of thread timing.
   With one partition there are no mailboxes and [run_until] is exactly
   [Engine.run ~until]: bit-identical to the unpartitioned engine. *)

type outbox = (float * (unit -> unit)) list ref

type pool = {
  m : Mutex.t;
  cv : Condition.t;
  mutable epoch : int;
  mutable bound : float;
  mutable inclusive : bool;
  mutable remaining : int;
  mutable stop : bool;
  mutable failed : (int * exn) option;
  mutable workers : unit Domain.t array;
}

type t = {
  parts : Engine.t array;
  boxes : outbox array array;  (* boxes.(src).(dst), src <> dst *)
  mutable lookahead : float;   (* min cross-partition latency; +inf when none *)
  mutable worker_init : int -> unit;
}

let create ?(parts = 1) () =
  if parts < 1 then invalid_arg "Pengine.create: need at least one partition";
  { parts = Array.init parts (fun _ -> Engine.create ());
    boxes = Array.init parts (fun _ -> Array.init parts (fun _ -> ref []));
    lookahead = infinity;
    worker_init = (fun _ -> ()) }

let n_parts t = Array.length t.parts
let part t i = t.parts.(i)
let now t = Engine.now t.parts.(0)
let lookahead t = t.lookahead
let set_worker_init t f = t.worker_init <- f

let register_cross_latency t lat =
  if lat <= 0.0 then
    invalid_arg
      "Pengine.register_cross_latency: cross-partition links need positive \
       latency (the conservative lookahead window)";
  if lat < t.lookahead then t.lookahead <- lat

let post t ~src ~dst ~time fn =
  if src = dst then ignore (Engine.schedule_at t.parts.(src) ~time fn)
  else begin
    let box = t.boxes.(src).(dst) in
    box := (time, fn) :: !box
  end

(* Drain every mailbox into its target queue.  Only called with all
   partitions parked at a barrier; iteration order (source-major, then
   send order) fixes the seq assignment, hence same-instant tie-breaks,
   deterministically. *)
let flush t =
  let n = n_parts t in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        let box = t.boxes.(src).(dst) in
        match !box with
        | [] -> ()
        | posts ->
          box := [];
          List.iter
            (fun (time, fn) -> ignore (Engine.schedule_at t.parts.(dst) ~time fn))
            (List.rev posts)
      end
    done
  done

let next_time t =
  Array.fold_left
    (fun acc p ->
      match (acc, Engine.next_time p) with
      | None, x | x, None -> x
      | Some a, Some b -> Some (Float.min a b))
    None t.parts

let pending t = Array.fold_left (fun acc p -> acc + Engine.pending p) 0 t.parts

let dispatched t i = Engine.dispatched t.parts.(i)

let total_dispatched t =
  Array.fold_left (fun acc p -> acc + Engine.dispatched p) 0 t.parts

(* ------------------------------------------------------------------ *)
(* The window driver                                                   *)
(* ------------------------------------------------------------------ *)

let drain eng ~bound ~inclusive =
  if inclusive then Engine.run ~until:bound eng
  else Engine.run_before eng ~until:bound

let start_pool t =
  let n = n_parts t in
  let pool =
    { m = Mutex.create (); cv = Condition.create (); epoch = 0; bound = 0.0;
      inclusive = false; remaining = 0; stop = false; failed = None;
      workers = [||] }
  in
  let worker k () =
    t.worker_init k;
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock pool.m;
      while pool.epoch = !seen && not pool.stop do
        Condition.wait pool.cv pool.m
      done;
      if pool.stop then begin
        Mutex.unlock pool.m;
        running := false
      end
      else begin
        seen := pool.epoch;
        let bound = pool.bound and inclusive = pool.inclusive in
        Mutex.unlock pool.m;
        (try drain t.parts.(k) ~bound ~inclusive
         with e ->
           Mutex.lock pool.m;
           if pool.failed = None then pool.failed <- Some (k, e);
           Mutex.unlock pool.m);
        Mutex.lock pool.m;
        pool.remaining <- pool.remaining - 1;
        Condition.broadcast pool.cv;
        Mutex.unlock pool.m
      end
    done
  in
  pool.workers <- Array.init (n - 1) (fun i -> Domain.spawn (worker (i + 1)));
  pool

let stop_pool pool =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.cv;
  Mutex.unlock pool.m;
  Array.iter Domain.join pool.workers

(* One window: release the workers on partitions 1..n-1, drain
   partition 0 on the calling domain, wait for everyone. *)
let run_window t pool ~bound ~inclusive =
  let n = n_parts t in
  Mutex.lock pool.m;
  pool.bound <- bound;
  pool.inclusive <- inclusive;
  pool.remaining <- n - 1;
  pool.epoch <- pool.epoch + 1;
  Condition.broadcast pool.cv;
  Mutex.unlock pool.m;
  let my_exn = (try drain t.parts.(0) ~bound ~inclusive; None with e -> Some e) in
  Mutex.lock pool.m;
  while pool.remaining > 0 do
    Condition.wait pool.cv pool.m
  done;
  let worker_exn = pool.failed in
  Mutex.unlock pool.m;
  match (my_exn, worker_exn) with
  | Some e, _ -> Error (0, e)
  | None, Some (k, e) -> Error (k, e)
  | None, None -> Ok ()

exception Partition_failed of int * exn

let run_until t until =
  (* Posts parked since the previous call (e.g. from its final,
     inclusive window) are delivered before anything runs. *)
  flush t;
  if n_parts t = 1 then Engine.run ~until t.parts.(0)
  else begin
    let pool = start_pool t in
    let finish r =
      stop_pool pool;
      match r with
      | Ok () -> ()
      | Error (k, e) -> raise (Partition_failed (k, e))
    in
    let advance_all bound =
      (* Nothing left at or below [bound]: just move every clock, the
         same way [Engine.run ~until] does on a quiet queue. *)
      Array.iter (fun p -> Engine.run ~until:bound p) t.parts
    in
    let rec loop () =
      (* Invariant: mailboxes empty, every partition clock equal. *)
      match next_time t with
      | None -> advance_all until; Ok ()
      | Some tn when tn > until -> advance_all until; Ok ()
      | Some tn ->
        let wend = tn +. t.lookahead in
        if wend >= until then begin
          (* Final window: inclusive, so events at exactly [until] fire,
             matching [Engine.run ~until]. *)
          match run_window t pool ~bound:until ~inclusive:true with
          | Error _ as e -> e
          | Ok () -> flush t; Ok ()
        end
        else begin
          match run_window t pool ~bound:wend ~inclusive:false with
          | Error _ as e -> e
          | Ok () -> flush t; loop ()
        end
    in
    finish (loop ())
  end
