(** Partitioned discrete-event engine: P per-partition {!Engine}
    queues, each drained on its own OCaml domain, coordinated by a
    conservative-lookahead window barrier.

    {b Safe horizon.}  Let L be the minimum latency over
    cross-partition links (every such link calls
    {!register_cross_latency}).  An event a partition executes at time
    t can influence another partition no earlier than t + L, because
    the only cross-partition interaction is a mailbox {!post} whose
    delivery time comes from a link of latency >= L.  So within a
    window [W, W + L) every partition drains independently; at the
    barrier the mailboxes are flushed into the target queues in
    deterministic (source partition, send order) order, and the next
    window starts.  The synchronization is exact: no event is delivered
    late or reordered against anything it could causally affect, and a
    run's event schedule is a pure function of the model — never of
    thread timing.

    With [parts = 1] there are no mailboxes, no worker domains, and
    {!run_until} is literally [Engine.run ~until] on the single
    partition: bit-identical to the unpartitioned engine. *)

type t

val create : ?parts:int -> unit -> t
(** Default 1 partition.  @raise Invalid_argument when [parts < 1]. *)

val n_parts : t -> int

val part : t -> int -> Engine.t
(** Partition [i]'s private engine.  Everything living on partition [i]
    (routers, timers, same-partition channels) schedules here, and only
    the domain draining partition [i] may touch it during a window. *)

val now : t -> float
(** Virtual time.  All partition clocks agree whenever the engine is
    parked (between {!run_until} calls / at barriers). *)

val register_cross_latency : t -> float -> unit
(** Every cross-partition link must register its latency; the minimum
    becomes the lookahead window.  @raise Invalid_argument on a
    non-positive latency — a zero-latency cross-partition link would
    collapse the safe horizon. *)

val lookahead : t -> float
(** Current safe horizon ([infinity] until a cross link registers). *)

val post : t -> src:int -> dst:int -> time:float -> (unit -> unit) -> unit
(** Schedule [fn] at [time] on partition [dst].  From the domain
    draining [src] during a window this is the {e only} legal way to
    reach another partition, and [time] must be >= now + the registered
    lookahead (true for any event derived from a registered link).
    With [src = dst] it is a plain local [schedule_at]. *)

val set_worker_init : t -> (int -> unit) -> unit
(** Hook run once by each worker domain (for partitions 1..P-1) before
    its first window of a {!run_until} call — e.g. to bind the domain
    to its partition's attribute-arena shard.  Partition 0 is drained
    by the calling domain, which keeps its own bindings. *)

exception Partition_failed of int * exn
(** An event callback raised on the given partition; re-raised by
    {!run_until} on the calling domain after the pool is stopped. *)

val run_until : t -> float -> unit
(** Drive all partitions to virtual time [t] (events at exactly [t]
    still fire, as with [Engine.run ~until]).  Parks with every
    partition clock at [t] and all mailboxes flushed-or-parked; posts
    emitted by the final window are delivered at the start of the next
    call, strictly in their future. *)

val next_time : t -> float option
(** Earliest queued event across partitions (parked state only). *)

val pending : t -> int
(** Sum of per-partition exact pending counts (parked state only). *)

val dispatched : t -> int -> int
(** Events fired by partition [i] so far — the per-domain events/sec
    numerator. *)

val total_dispatched : t -> int
