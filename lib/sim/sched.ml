module Clock = Bgp_engine.Clock

type job = { mutable remaining : float; on_done : unit -> unit }

type proc = {
  name : string;
  weight : float;
  queue : job Queue.t;
  mutable current : job option;
  mutable rate : float;  (* core-equivalents currently allotted *)
  mutable acc : float;   (* cycles consumed since last take_accounting *)
}

type trace_state = {
  tr : Bgp_trace.Tracer.t;
  tr_process : string;
  tr_cpu : Bgp_trace.Tracer.track;  (* occupancy counter track *)
  tr_tracks : (string, Bgp_trace.Tracer.track) Hashtbl.t;  (* per proc *)
  mutable tr_last_occ : (string * float) list;
}

type t = {
  clock : Clock.t;
  hz : float;
  pool : float;
  proc_cap : float;  (* one process <= one core *)
  mutable procs : proc list;  (* registration order *)
  mutable int_demand : float; (* cycles/s *)
  mutable int_rate : float;   (* core-equivalents *)
  mutable int_acc : float;
  mutable fwd_demand : float; (* cycles/s *)
  mutable fwd_weight : float;
  mutable fwd_rate : float;
  mutable fwd_acc : float;
  mutable last_settle : float;
  mutable acc_started : float;
  mutable completion : Clock.handle option;
  mutable trace : trace_state option;
}

let create clock ~hz ~pool =
  if hz <= 0.0 then invalid_arg "Sched.create: hz must be positive";
  if pool <= 0.0 then invalid_arg "Sched.create: pool must be positive";
  { clock; hz; pool; proc_cap = 1.0; procs = []; int_demand = 0.0;
    int_rate = 0.0; int_acc = 0.0; fwd_demand = 0.0; fwd_weight = 8.0;
    fwd_rate = 0.0; fwd_acc = 0.0; last_settle = 0.0; acc_started = 0.0;
    completion = None; trace = None }

let add_proc t ?(weight = 1.0) name =
  let p = { name; weight; queue = Queue.create (); current = None; rate = 0.0;
            acc = 0.0 } in
  t.procs <- t.procs @ [ p ];
  p

let proc_name p = p.name

let set_tracer t ?(process = "bgpmark") tracer =
  let module T = Bgp_trace.Tracer in
  t.trace <-
    Some
      { tr = tracer; tr_process = process;
        tr_cpu = T.track tracer ~process ~thread:"cpu" ();
        tr_tracks = Hashtbl.create 8; tr_last_occ = [] }

let trace_track ts name =
  match Hashtbl.find_opt ts.tr_tracks name with
  | Some tk -> tk
  | None ->
    let tk =
      Bgp_trace.Tracer.track ts.tr ~process:ts.tr_process ~thread:name ()
    in
    Hashtbl.add ts.tr_tracks name tk;
    tk

let queue_length _t p =
  Queue.length p.queue + (match p.current with Some _ -> 1 | None -> 0)

let busy _t p = p.current <> None

(* Charge elapsed virtual time against running jobs and accumulators. *)
let settle t =
  let now = Clock.now t.clock in
  let dt = now -. t.last_settle in
  if dt > 0.0 then begin
    List.iter
      (fun p ->
        match p.current with
        | Some job when p.rate > 0.0 ->
          let consumed = p.rate *. t.hz *. dt in
          let consumed = Float.min consumed job.remaining in
          job.remaining <- job.remaining -. consumed;
          p.acc <- p.acc +. consumed
        | _ -> ())
      t.procs;
    t.int_acc <- t.int_acc +. (t.int_rate *. t.hz *. dt);
    t.fwd_acc <- t.fwd_acc +. (t.fwd_rate *. t.hz *. dt);
    t.last_settle <- now
  end
  else t.last_settle <- now

(* Weighted max-min water-filling of [available] core-equivalents over
   claimants (cap, weight). Returns the allocation per claimant. *)
let water_fill available claimants =
  let alloc = Array.make (Array.length claimants) 0.0 in
  let active = Array.make (Array.length claimants) true in
  let remaining = ref available in
  let continue = ref true in
  while !continue do
    continue := false;
    let wsum = ref 0.0 in
    Array.iteri
      (fun i (_, w) -> if active.(i) then wsum := !wsum +. w)
      claimants;
    if !wsum > 0.0 && !remaining > 1e-12 then begin
      let unit = !remaining /. !wsum in
      (* First pass: cap-limited claimants take their cap and leave. *)
      let capped = ref false in
      Array.iteri
        (fun i (cap, w) ->
          if active.(i) && cap <= (w *. unit) +. 1e-15 then begin
            alloc.(i) <- cap;
            active.(i) <- false;
            remaining := !remaining -. cap;
            capped := true
          end)
        claimants;
      if !capped then continue := true
      else
        (* No claimant capped: split the remainder by weight. *)
        Array.iteri
          (fun i (_, w) ->
            if active.(i) then begin
              alloc.(i) <- w *. unit;
              active.(i) <- false
            end)
          claimants
    end
  done;
  alloc

let rec recompute t =
  settle t;
  (* Interrupts first, absolutely. *)
  t.int_rate <- Float.min t.pool (t.int_demand /. t.hz);
  let available = t.pool -. t.int_rate in
  (* Interrupt handling is spread across cores, so every core — in
     particular the one running the pipeline's bottleneck process —
     loses a proportional slice.  Without this, a multi-core system
     with spare capacity would shrug off interrupt load entirely,
     which is not what the paper's Xeon does (Fig. 5). *)
  let proc_cap = t.proc_cap *. (1.0 -. (t.int_rate /. t.pool)) in
  let runnable = List.filter (fun p -> p.current <> None) t.procs in
  let claimants =
    Array.of_list
      ((t.fwd_demand /. t.hz, t.fwd_weight)
      :: List.map (fun p -> (proc_cap, p.weight)) runnable)
  in
  let alloc = water_fill available claimants in
  t.fwd_rate <- alloc.(0);
  List.iteri (fun i p -> p.rate <- alloc.(i + 1)) runnable;
  List.iter (fun p -> if p.current = None then p.rate <- 0.0) t.procs;
  (match t.trace with
  | None -> ()
  | Some ts ->
    (* Occupancy sample: per-proc service rates plus interrupt and
       forwarding allotments, deduped against the previous sample (the
       runnable set rarely changes between consecutive recomputes) and
       decimated by the tracer's sampling interval. *)
    let occ =
      List.map (fun p -> (p.name, p.rate)) t.procs
      @ [ ("interrupt", t.int_rate); ("forwarding", t.fwd_rate) ]
    in
    if occ <> ts.tr_last_occ && Bgp_trace.Tracer.sim_hit ts.tr then begin
      ts.tr_last_occ <- occ;
      Bgp_trace.Tracer.occupancy ts.tr ts.tr_cpu ~ts:(Clock.now t.clock) occ
    end);
  reschedule_completion t

and reschedule_completion t =
  Option.iter Clock.cancel t.completion;
  t.completion <- None;
  let next =
    List.fold_left
      (fun acc p ->
        match p.current with
        | Some job when p.rate > 0.0 ->
          let eta = job.remaining /. (p.rate *. t.hz) in
          (match acc with Some best when best <= eta -> acc | _ -> Some eta)
        | _ -> acc)
      None t.procs
  in
  match next with
  | None -> ()
  | Some eta ->
    t.completion <-
      Some (Clock.schedule t.clock ~delay:eta (fun () -> on_completion t))

and on_completion t =
  t.completion <- None;
  settle t;
  (* Finish every job that has (numerically) run out of cycles. *)
  let finished = ref [] in
  let went_idle = ref [] in
  List.iter
    (fun p ->
      match p.current with
      | Some job when job.remaining <= 1.0 ->
        p.acc <- p.acc +. job.remaining;
        job.remaining <- 0.0;
        p.current <- Queue.take_opt p.queue;
        if p.current = None then went_idle := p :: !went_idle;
        finished := job :: !finished
      | _ -> ())
    t.procs;
  (match t.trace with
  | Some ts ->
    let now = Clock.now t.clock in
    List.iter
      (fun p ->
        if Bgp_trace.Tracer.sim_hit ts.tr then
          Bgp_trace.Tracer.proc_state ts.tr (trace_track ts p.name) ~ts:now
            ~running:false ~queue:0)
      (List.rev !went_idle)
  | None -> ());
  (* Callbacks may submit new work (which recomputes again); run them
     after the scheduler state is consistent. *)
  recompute t;
  List.iter (fun job -> job.on_done ()) (List.rev !finished)

let submit t p ~cycles on_done =
  let job = { remaining = Float.max cycles 0.0; on_done } in
  let was_idle = p.current = None in
  (match p.current with
  | None -> p.current <- Some job
  | Some _ -> Queue.add job p.queue);
  (match t.trace with
  | Some ts when was_idle ->
    if Bgp_trace.Tracer.sim_hit ts.tr then
      Bgp_trace.Tracer.proc_state ts.tr (trace_track ts p.name)
        ~ts:(Clock.now t.clock) ~running:true
        ~queue:(queue_length t p)
  | _ -> ());
  recompute t

let set_interrupt_demand t ~cycles_per_sec =
  t.int_demand <- Float.max 0.0 cycles_per_sec;
  recompute t

let set_forwarding_demand t ?weight ~cycles_per_sec () =
  Option.iter (fun w -> t.fwd_weight <- w) weight;
  t.fwd_demand <- Float.max 0.0 cycles_per_sec;
  recompute t

let forwarding_ratio t =
  if t.fwd_demand <= 0.0 then 1.0
  else Float.min 1.0 (t.fwd_rate *. t.hz /. t.fwd_demand)

type accounting = {
  acc_procs : (string * float) list;
  acc_interrupt : float;
  acc_forwarding : float;
  acc_elapsed : float;
}

let take_accounting t =
  settle t;
  let now = Clock.now t.clock in
  let result =
    { acc_procs = List.map (fun p -> (p.name, p.acc)) t.procs;
      acc_interrupt = t.int_acc; acc_forwarding = t.fwd_acc;
      acc_elapsed = now -. t.acc_started }
  in
  List.iter (fun p -> p.acc <- 0.0) t.procs;
  t.int_acc <- 0.0;
  t.fwd_acc <- 0.0;
  t.acc_started <- now;
  result

let total_pool t = t.pool
let clock_hz t = t.hz
