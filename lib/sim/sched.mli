(** CPU model: multi-core weighted processor sharing with
    kernel-priority background load.

    Models what the paper's routers do with their control CPUs:

    - a {e pool} of core-equivalents (1.0 for the Pentium III and the
      XScale, >1 for the dual-core Xeon);
    - single-threaded {e processes} (the five XORP processes) that
      execute FIFO queues of jobs measured in CPU cycles — a process
      can use at most one core, so a pipeline only speeds up when cores
      are free (exactly the uni-core vs dual-core contrast of Fig. 3);
    - {e interrupt load} (cross-traffic packet arrivals), served before
      everything else;
    - a continuous {e kernel forwarding demand}, weighted much heavier
      than user processes (Linux gives forwarding priority over
      user-space BGP — paper §V.B) but not absolutely: under heavy BGP
      load forwarding loses a little throughput, reproducing the
      forwarding dip of Fig. 6(c).

    Allocation is weighted max-min (water-filling) over the capacity
    left after interrupts, recomputed whenever the runnable set
    changes; job completions are simulated exactly under
    piecewise-constant rates. *)

type t
type proc

val create : Bgp_engine.Clock.t -> hz:float -> pool:float -> t
(** The clock supplies time and completion events — pass
    {!Engine.clock} for simulated runs or a live clock for wall-time
    ones; the model itself is identical either way.
    [hz]: cycles per second of one core-equivalent.  [pool]: number of
    core-equivalents (need not be integral: 2.4 models a dual-core with
    hyper-threading gain).
    @raise Invalid_argument when [hz <= 0] or [pool <= 0]. *)

val add_proc : t -> ?weight:float -> string -> proc
(** Register a process (default weight 1.0). *)

val proc_name : proc -> string

val set_tracer : t -> ?process:string -> Bgp_trace.Tracer.t -> unit
(** Record structured scheduler events into [tracer]: process run/block
    instants (one track per process, named after it) and deduplicated
    core-occupancy counter samples (per-process service rates plus
    interrupt and forwarding allotments) on a ["cpu"] track. [process]
    names the trace process grouping the tracks (default ["bgpmark"]).
    Recording is observational only — scheduling decisions and virtual
    timings are unaffected. *)

val submit : t -> proc -> cycles:float -> (unit -> unit) -> unit
(** Enqueue a job; the callback fires (as an engine event) when the
    job's cycles have been executed.  Zero-cycle jobs complete at the
    next recompute instant. *)

val queue_length : t -> proc -> int
(** Jobs waiting or running on the process. *)

val busy : t -> proc -> bool

val set_interrupt_demand : t -> cycles_per_sec:float -> unit
(** Continuous interrupt work (e.g. per-packet RX interrupts x packet
    rate).  Served with absolute priority, capped at the pool. *)

val set_forwarding_demand : t -> ?weight:float -> cycles_per_sec:float -> unit -> unit
(** Continuous kernel forwarding work.  Default weight 8.0 (heavily
    favored over user processes). *)

val forwarding_ratio : t -> float
(** Fraction of the forwarding demand currently being served, in
    [0, 1]; 1.0 when there is no demand.  The forwarding engine turns a
    ratio < 1 into packet loss. *)

(** Cycle accounting between two sampling instants (for CPU-load
    traces à la Fig. 3/4/6). *)
type accounting = {
  acc_procs : (string * float) list;  (** cycles consumed per process *)
  acc_interrupt : float;
  acc_forwarding : float;
  acc_elapsed : float;                (** seconds covered *)
}

val take_accounting : t -> accounting
(** Consume and reset the accumulators. *)

val total_pool : t -> float
val clock_hz : t -> float
