module Clock = Bgp_engine.Clock

type sample = {
  s_time : float;
  s_procs : (string * float) list;
  s_interrupt : float;
  s_forwarding : float;
  s_fwd_ratio : float;
}

type t = {
  clock : Clock.t;
  sched : Sched.t;
  interval : float;
  mutable rev_samples : sample list;
  mutable running : bool;
  mutable tick : Clock.handle option;
}

let percent hz cycles elapsed =
  if elapsed <= 0.0 then 0.0 else 100.0 *. cycles /. (hz *. elapsed)

let take t =
  let acc = Sched.take_accounting t.sched in
  let hz = Sched.clock_hz t.sched in
  let el = acc.Sched.acc_elapsed in
  if el > 0.0 then
    t.rev_samples <-
      { s_time = Clock.now t.clock;
        s_procs = List.map (fun (n, c) -> (n, percent hz c el)) acc.Sched.acc_procs;
        s_interrupt = percent hz acc.Sched.acc_interrupt el;
        s_forwarding = percent hz acc.Sched.acc_forwarding el;
        s_fwd_ratio = Sched.forwarding_ratio t.sched }
      :: t.rev_samples

let rec tick t =
  if t.running then begin
    take t;
    t.tick <- Some (Clock.schedule t.clock ~delay:t.interval (fun () -> tick t))
  end

let start clock sched ?(interval = 1.0) () =
  if interval <= 0.0 then invalid_arg "Trace.start: interval must be positive";
  (* Flush whatever accumulated before tracing began. *)
  ignore (Sched.take_accounting sched);
  let t =
    { clock; sched; interval; rev_samples = []; running = true; tick = None }
  in
  t.tick <- Some (Clock.schedule clock ~delay:interval (fun () -> tick t));
  t

let stop t =
  if t.running then begin
    t.running <- false;
    Option.iter Clock.cancel t.tick;
    t.tick <- None;
    take t
  end

let samples t = List.rev t.rev_samples
let total_user_percent s = List.fold_left (fun a (_, p) -> a +. p) 0.0 s.s_procs

let pp_sample ppf s =
  Format.fprintf ppf "@[<h>t=%.1fs" s.s_time;
  List.iter (fun (n, p) -> Format.fprintf ppf " %s=%.1f%%" n p) s.s_procs;
  Format.fprintf ppf " irq=%.1f%% fwd=%.1f%% fwd_ratio=%.2f@]" s.s_interrupt
    s.s_forwarding s.s_fwd_ratio

let to_rows t =
  let ss = samples t in
  match ss with
  | [] -> []
  | first :: _ ->
    let names = List.map fst first.s_procs in
    let series name =
      List.map
        (fun s -> (s.s_time, Option.value ~default:0.0 (List.assoc_opt name s.s_procs)))
        ss
    in
    List.map (fun n -> (n, series n)) names
    @ [ ("interrupts", List.map (fun s -> (s.s_time, s.s_interrupt)) ss);
        ("forwarding", List.map (fun s -> (s.s_time, s.s_forwarding)) ss) ]
