(** Periodic CPU-load sampling — the instrumentation behind the paper's
    Figures 3, 4 and 6.

    Attach a tracer to a scheduler and it records, once per interval of
    virtual time, the per-process CPU load (percent of one core, so a
    multi-core system can exceed 100 in aggregate), the interrupt and
    kernel-forwarding load, and the achieved forwarding ratio. *)

type sample = {
  s_time : float;                    (** end of the sampled interval *)
  s_procs : (string * float) list;   (** percent of one core, per process *)
  s_interrupt : float;               (** percent of one core *)
  s_forwarding : float;              (** percent of one core *)
  s_fwd_ratio : float;               (** achieved/demanded forwarding, 0-1 *)
}

type t

val start : Bgp_engine.Clock.t -> Sched.t -> ?interval:float -> unit -> t
(** Begin sampling every [interval] clock seconds (default 1.0) —
    virtual seconds on a simulated clock, wall seconds on a live one.
    Resets the scheduler's accounting accumulators. *)

val stop : t -> unit
(** Take a final partial sample and stop. Idempotent. *)

val samples : t -> sample list
(** Chronological. *)

val total_user_percent : sample -> float
(** Sum of the per-process loads of a sample. *)

val pp_sample : Format.formatter -> sample -> unit

val to_rows : t -> (string * (float * float) list) list
(** Per-series [(name, [(time, percent); ...])] view: one series per
    process plus ["interrupts"] and ["forwarding"] — the layout the
    figure printers consume. *)
