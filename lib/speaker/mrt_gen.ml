module Mrt = Bgp_mrt.Mrt
module Msg = Bgp_wire.Msg
module I = Bgp_route.Attrs.Interned
module Ipv4 = Bgp_addr.Ipv4
module Prefix_gen = Bgp_addr.Prefix_gen

let records ?(seed = 42) ?(events = -1) ?local_asn ~n ~speaker_asn ~next_hop ()
    =
  let events = if events < 0 then max 20 (n / 5) else events in
  let local_asn = Option.value local_asn ~default:speaker_asn in
  let entries = Table_io.synthesize ~seed ~n ~speaker_asn () in
  let prefixes = Array.of_list (List.map (fun e -> e.Table_io.e_prefix) entries) in
  let routes =
    List.map
      (fun e -> (e.Table_io.e_prefix, I.intern (Table_io.to_attrs ~next_hop e)))
      entries
  in
  let peer =
    { Mrt.pe_bgp_id = next_hop; pe_addr = next_hop; pe_asn = speaker_asn }
  in
  let table =
    Mrt.rib_table ~collector_id:(Ipv4.of_octets 10 0 0 1) ~peer routes
  in
  let local_addr = Ipv4.of_octets 10 0 0 1 in
  let message i msg =
    (* 20 ms spacing = 50 msgs/s recorded; exact in whole microseconds,
       so the write -> read roundtrip reproduces offsets bit-for-bit. *)
    let ms_time = float_of_int (i * 20_000) /. 1e6 in
    Mrt.Message
      { Mrt.ms_time; ms_peer_asn = speaker_asn; ms_local_asn = local_asn;
        ms_peer_addr = next_hop; ms_local_addr = local_addr; ms_msg = msg }
  in
  let trace =
    List.init events (fun i ->
        let h = Prefix_gen.mix64 ((seed * 31) + 7 + i) land max_int in
        let prefix = prefixes.(h mod n) in
        if (h lsr 8) mod 4 = 0 then message i (Msg.withdrawal [ prefix ])
        else
          let path_len = 2 + ((h lsr 16) mod 5) in
          let med = if h land 0x40000 = 0 then None else Some (h land 0xFF) in
          let attrs =
            Workload.attrs ?med ~speaker_asn ~next_hop ~path_len ()
          in
          message i (Msg.announcement attrs [ prefix ]))
  in
  table @ trace

let update_events = Mrt.updates_of_dump
