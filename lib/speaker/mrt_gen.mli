(** Deterministic MRT dump synthesis.

    Builds a complete in-memory MRT dump — single-peer
    TABLE_DUMP_V2 RIB (the {!Table_io.synthesize} table, attributes
    interned) followed by a BGP4MP update trace over the same prefixes
    (re-announcements with changed paths, plus a withdrawal mix, at
    50 msgs/s recorded pacing).  Tests and CI replay through this
    instead of fetching RouteViews data: same seed, same bytes. *)

val records :
  ?seed:int ->
  ?events:int ->
  ?local_asn:Bgp_route.Asn.t ->
  n:int ->
  speaker_asn:Bgp_route.Asn.t ->
  next_hop:Bgp_addr.Ipv4.t ->
  unit ->
  Bgp_mrt.Mrt.record list
(** [events] defaults to [max 20 (n / 5)]; pass [0] for a
    table-only dump.  [local_asn] (collector side of the BGP4MP
    headers) defaults to [speaker_asn]. *)

val update_events :
  Bgp_mrt.Mrt.record list -> (float * Bgp_wire.Msg.t) list
(** Shorthand for {!Bgp_mrt.Mrt.updates_of_dump}. *)
