module Link = Bgp_engine.Link
module Session = Bgp_fsm.Session
module Msg = Bgp_wire.Msg

type t = {
  mutable session : Session.t option;  (* set once in [create] *)
  mutable established_cb : unit -> unit;
  mutable updates_received : int;
  mutable prefixes_received : int;
  mutable withdrawals_received : int;
  mutable sessions_lost : int;
  mutable notifications_rx : Bgp_wire.Msg.error list;  (* reversed *)
  received : (Bgp_addr.Prefix.t, Bgp_route.Attrs.Interned.t) Hashtbl.t;
  mutable update_observer : Msg.update -> unit;
}

let session t =
  match t.session with
  | Some s -> s
  | None -> invalid_arg "Speaker: not initialized"

let create clock ~asn ~router_id ~(link : Link.t) =
  let cfg = Bgp_fsm.Fsm.default_config ~asn ~router_id in
  let io = Session.io_of_link ~active:true link in
  let t =
    { session = None; established_cb = (fun () -> ()); updates_received = 0;
      prefixes_received = 0; withdrawals_received = 0; sessions_lost = 0;
      notifications_rx = []; received = Hashtbl.create 1024;
      update_observer = ignore }
  in
  let hooks =
    { Session.null_hooks with
      Session.on_update =
        (fun u ->
          t.updates_received <- t.updates_received + 1;
          t.prefixes_received <- t.prefixes_received + List.length u.Msg.nlri;
          t.withdrawals_received <-
            t.withdrawals_received + List.length u.Msg.withdrawn;
          List.iter (fun p -> Hashtbl.remove t.received p) u.Msg.withdrawn;
          Option.iter
            (fun attrs ->
              List.iter (fun p -> Hashtbl.replace t.received p attrs) u.Msg.nlri)
            u.Msg.attrs;
          t.update_observer u);
      on_established = (fun () -> t.established_cb ());
      on_down = (fun _reason -> t.sessions_lost <- t.sessions_lost + 1);
      on_rx_msg =
        (fun msg _size ->
          match msg with
          | Msg.Notification e -> t.notifications_rx <- e :: t.notifications_rx
          | _ -> ()) }
  in
  t.session <- Some (Session.create cfg (Session.timer_service_of clock) io hooks);
  link.Link.set_receiver (fun bytes -> Session.feed (session t) bytes);
  link.Link.set_on_connected (fun () -> Session.connected (session t));
  link.Link.set_on_closed (fun () -> Session.closed (session t));
  t

let start t = Session.start (session t)
let stop t = Session.stop (session t)
let state t = Session.state (session t)
let established t = state t = Bgp_fsm.Fsm.Established
let on_established t cb = t.established_cb <- cb

let require_established t name =
  if not (established t) then
    invalid_arg (Printf.sprintf "Speaker.%s: session not established" name)

let announce t ~packing ~attrs prefixes =
  require_established t "announce";
  (* Intern once for the whole burst; every chunk shares the handle. *)
  let interned = Bgp_route.Attrs.Interned.intern attrs in
  let chunks = Workload.chunk packing prefixes in
  List.iter
    (fun nlri ->
      ignore (Session.send (session t) (Msg.announcement_interned interned nlri)))
    chunks;
  List.length chunks

let withdraw t ~packing prefixes =
  require_established t "withdraw";
  let chunks = Workload.chunk packing prefixes in
  List.iter
    (fun wd -> ignore (Session.send (session t) (Msg.withdrawal wd)))
    chunks;
  List.length chunks

let send_update t msg =
  require_established t "send_update";
  (match msg with
  | Msg.Update _ -> ()
  | m -> invalid_arg (Printf.sprintf "Speaker.send_update: %s" (Msg.kind_name m)));
  Session.send (session t) msg

let request_refresh t =
  require_established t "request_refresh";
  ignore (Session.send (session t) Msg.route_refresh)

let set_update_observer t f = t.update_observer <- f
let sessions_lost t = t.sessions_lost
let notifications_received t = List.rev t.notifications_rx
let updates_received t = t.updates_received
let prefixes_received t = t.prefixes_received
let withdrawals_received t = t.withdrawals_received
let received_prefix_set t = t.received
