(** A benchmark BGP speaker (Fig. 1): the active endpoint that drives
    the router under test.

    Speakers have no RIB and no cost model — they are ideal load
    generators, as in the paper's methodology, so the measured
    bottleneck is always the router. *)

type t

val create :
  Bgp_engine.Clock.t ->
  asn:Bgp_route.Asn.t ->
  router_id:Bgp_addr.Ipv4.t ->
  link:Bgp_engine.Link.t ->
  t
(** An active (connecting) speaker on one transport endpoint —
    simulated channel side or live TCP connector.  Call {!start} to
    bring the session up. *)

val start : t -> unit
val stop : t -> unit
val state : t -> Bgp_fsm.Fsm.state
val established : t -> bool

val on_established : t -> (unit -> unit) -> unit
(** Replaces the establishment callback (fires each time the session
    reaches Established). *)

val sessions_lost : t -> int
(** Times the session dropped out of Established/OpenSent/OpenConfirm
    (FSM [Session_down]).  {!start} may be called again from Idle to
    reconnect — the adversarial flap scenarios do. *)

val notifications_received : t -> Bgp_wire.Msg.error list
(** NOTIFICATION messages that actually arrived, in order.  A router
    tearing a session down races its NOTIFICATION against the close
    (RST semantics), so this can lag the router's sent count — the
    fault harness observes the router's transmissions at the channel
    tap instead. *)

val announce :
  t -> packing:int -> attrs:Bgp_route.Attrs.t -> Bgp_addr.Prefix.t array -> int
(** [announce t ~packing ~attrs prefixes] transmits the prefixes as
    UPDATE messages carrying [packing] prefixes each (1 = the paper's
    "small packets", 500 = "large packets").  Returns the number of
    messages sent.
    @raise Invalid_argument if the session is not Established. *)

val withdraw : t -> packing:int -> Bgp_addr.Prefix.t array -> int
(** Same, with withdrawal messages. *)

val send_update : t -> Bgp_wire.Msg.t -> bool
(** Transmit one pre-built UPDATE verbatim — the MRT replay path,
    where messages arrive already framed from the trace rather than
    being regenerated from a table.  Returns [false] if the transport
    refused the message (session dropped mid-replay).
    @raise Invalid_argument if the session is not Established or the
    message is not an UPDATE. *)

val request_refresh : t -> unit
(** Send a ROUTE-REFRESH (RFC 2918) asking the router to resend its
    full Adj-RIB-Out for IPv4 unicast.
    @raise Invalid_argument if the session is not Established. *)

val updates_received : t -> int
(** UPDATE messages the router sent us (Phase 2 transfers, Phase 3
    re-advertisements). *)

val prefixes_received : t -> int
(** Announced prefixes contained in those updates. *)

val withdrawals_received : t -> int

val received_prefix_set : t -> (Bgp_addr.Prefix.t, Bgp_route.Attrs.Interned.t) Hashtbl.t
(** Live view of the routes currently advertised to this speaker
    (announcements minus withdrawals) — the benchmark's correctness
    check that the router really transferred its table. *)

val set_update_observer : t -> (Bgp_wire.Msg.update -> unit) -> unit
(** Install a hook called on every UPDATE this speaker receives, after
    the built-in counters and {!received_prefix_set} bookkeeping have
    run.  The churn harness uses it to timestamp each prefix of the
    failover withdraw sweep as it lands.  Replaces any previous hook;
    [ignore] by default. *)
