module Prefix = Bgp_addr.Prefix
module Ipv4 = Bgp_addr.Ipv4
module Prefix_gen = Bgp_addr.Prefix_gen

type config = {
  subscribers : int;
  batch : int;
  batch_interval : float;
  churn_rate : float;
  churn_duration : float;
  seed : int;
}

let default =
  { subscribers = 10_000; batch = 500; batch_interval = 0.02;
    churn_rate = 500.0; churn_duration = 2.0; seed = 42 }

let pp_config ppf c =
  Format.fprintf ppf
    "%d subscribers, batch %d @ %gs, churn %g ev/s for %gs, seed %d"
    c.subscribers c.batch c.batch_interval c.churn_rate c.churn_duration
    c.seed

type event_kind = Up | Down | Resync
type event = { ev_at : float; ev_idx : int; ev_kind : event_kind }

type t = {
  config : config;
  prefixes : Prefix.t array;
  plan : event list;
  final_up : bool array;
}

(* RFC 6598 shared address space for CGNAT: 100.64.0.0/10. *)
let pool_base = Ipv4.of_string_exn "100.64.0.0"
let pool_size = 1 lsl 22

let validate c =
  if c.subscribers < 1 then
    invalid_arg "Subscriber.create: subscribers must be >= 1";
  if c.subscribers > pool_size then
    invalid_arg
      (Printf.sprintf
         "Subscriber.create: %d subscribers exceed the 100.64.0.0/10 pool (%d)"
         c.subscribers pool_size);
  if c.batch < 1 then invalid_arg "Subscriber.create: batch must be >= 1";
  if c.batch_interval < 0.0 then
    invalid_arg "Subscriber.create: batch_interval must be >= 0";
  if c.churn_rate <= 0.0 then
    invalid_arg "Subscriber.create: churn_rate must be > 0";
  if c.churn_duration < 0.0 then
    invalid_arg "Subscriber.create: churn_duration must be >= 0"

(* Independent draws off the seed: stream [k] of the plan never
   correlates with stream [k+1] (SplitMix64 finalizer, same generator
   as the synthetic-table module). *)
let draw seed k = Prefix_gen.mix64 ((seed * 0x9E3779B9) + k)

let make_plan c =
  let n_events = int_of_float (c.churn_rate *. c.churn_duration) in
  let spacing = 1.0 /. c.churn_rate in
  let up = Array.make c.subscribers true in
  let plan = ref [] in
  for k = 1 to n_events do
    let r = draw c.seed k in
    let idx = abs (r mod c.subscribers) in
    let kind =
      if not up.(idx) then Up
      else if (r lsr 23) land 1 = 0 then Down
      else Resync
    in
    (match kind with
    | Up -> up.(idx) <- true
    | Down -> up.(idx) <- false
    | Resync -> ());
    plan := { ev_at = float_of_int k *. spacing; ev_idx = idx; ev_kind = kind }
            :: !plan
  done;
  (List.rev !plan, up)

let create c =
  validate c;
  let prefixes =
    Array.init c.subscribers (fun i -> Prefix.make (Ipv4.add pool_base i) 32)
  in
  let plan, final_up = make_plan c in
  { config = c; prefixes; plan; final_up }

let config t = t.config
let prefixes t = t.prefixes
let plan t = t.plan
let n_events t = List.length t.plan
let final_up t = t.final_up

let batches t =
  let c = t.config in
  let n = c.subscribers in
  let rec go k acc =
    let start = k * c.batch in
    if start >= n then List.rev acc
    else
      let len = min c.batch (n - start) in
      go (k + 1)
        ((float_of_int k *. c.batch_interval, Array.sub t.prefixes start len)
        :: acc)
  in
  go 0 []

let up_count t =
  Array.fold_left (fun acc up -> if up then acc + 1 else acc) 0 t.final_up

let up_prefixes t =
  let acc = ref [] in
  for i = Array.length t.final_up - 1 downto 0 do
    if t.final_up.(i) then acc := t.prefixes.(i) :: !acc
  done;
  !acc
