(** Subscriber-edge churn workload (scenario 16): the BNG/WISP
    "subscriber route manager" pattern, where every broadband session
    contributes one /32 host route and the BGP load is dominated not by
    table transfers but by {e churn} — sessions coming and going all
    day, plus rare full-edge failovers.

    This module is the pure, deterministic model: given a {!config} it
    precomputes the subscriber prefix pool, the rate-limited injection
    schedule, and the churn {e plan} (a Markov up/down walk over
    sessions, driven by SplitMix64 off the seed).  Both the harness
    driver and its verification oracle fold the same plan, so expected
    end-state is computed independently of what the router actually
    did.  Nothing here touches a clock or a link — scheduling is the
    harness's job. *)

type config = {
  subscribers : int;  (** number of /32 session routes *)
  batch : int;  (** prefixes per injection batch (and NLRI packing) *)
  batch_interval : float;  (** seconds between injection batches *)
  churn_rate : float;  (** session events per second during churn *)
  churn_duration : float;  (** seconds of steady-state churn *)
  seed : int;
}

val default : config
(** 10k subscribers, batches of 500 every 20ms (25k routes/s
    injection), 500 events/s of churn for 2s, seed 42. *)

val pp_config : Format.formatter -> config -> unit

(** One step of the churn plan, applied to session [ev_idx] at time
    [ev_at] (relative to the start of the churn phase). *)
type event_kind =
  | Up  (** session returns: announce its /32 *)
  | Down  (** session drops: withdraw its /32 *)
  | Resync
      (** BNG keepalive resync: re-announce the /32 with identical
          attributes while the session stays up.  Zero routing change —
          but it is exactly the traffic that falsely tripped the old
          NLRI-length prefix-limit check at a full table. *)

type event = { ev_at : float; ev_idx : int; ev_kind : event_kind }

type t

val create : config -> t
(** Precompute pool, batches and plan.
    @raise Invalid_argument if [subscribers] exceeds the 100.64.0.0/10
    pool (2^22 hosts), or any rate/size field is non-positive. *)

val config : t -> config

val prefixes : t -> Bgp_addr.Prefix.t array
(** The subscriber /32s, drawn consecutively from the RFC 6598 CGNAT
    pool 100.64.0.0/10 (one address per session, as a BNG would
    allocate). *)

val batches : t -> (float * Bgp_addr.Prefix.t array) list
(** The rate-limited injection schedule: [(at, batch)] pairs with [at]
    relative to the start of the injection phase, batch [k] at
    [k * batch_interval]. *)

val plan : t -> event list
(** The churn plan in time order.  Kinds are state-consistent by
    construction: [Up] only fires for a down session, [Down]/[Resync]
    only for an up one, so replaying the plan's announces/withdraws
    from a fully-injected table is always valid. *)

val n_events : t -> int

val final_up : t -> bool array
(** [final_up t].(i) — is session [i] up after the whole plan runs?
    (All sessions start up, i.e. injected.)  This is the oracle for the
    post-churn table: the router's FIB and the far speaker's received
    set must equal exactly the up sessions' prefixes. *)

val up_count : t -> int
(** [Array.length (filter final_up)] — expected post-churn table size,
    and therefore the expected size of the failover withdraw sweep. *)

val up_prefixes : t -> Bgp_addr.Prefix.t list
(** The expected post-churn route set, ascending by subscriber index. *)
