module A = Bgp_route.Attrs
module As_path = Bgp_route.As_path
module Asn = Bgp_route.Asn

type entry = {
  e_prefix : Bgp_addr.Prefix.t;
  e_path : As_path.t;
  e_origin : A.origin;
  e_med : int option;
  e_local_pref : int option;
  e_communities : Bgp_route.Community.t list;
}

let entry_of_route r =
  let attrs = Bgp_route.Route.attrs r in
  { e_prefix = Bgp_route.Route.prefix r; e_path = attrs.A.as_path;
    e_origin = attrs.A.origin; e_med = attrs.A.med;
    e_local_pref = attrs.A.local_pref; e_communities = attrs.A.communities }

let to_attrs ~next_hop e =
  A.make ~origin:e.e_origin ?med:e.e_med ?local_pref:e.e_local_pref
    ~communities:e.e_communities ~as_path:e.e_path ~next_hop ()

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let path_to_string p =
  let seg_to_string = function
    | As_path.Seq asns ->
      String.concat "," (List.map (fun a -> string_of_int (Asn.to_int a)) asns)
    | As_path.Set asns ->
      "{"
      ^ String.concat "," (List.map (fun a -> string_of_int (Asn.to_int a)) asns)
      ^ "}"
  in
  match As_path.segments p with
  | [] -> "empty"
  | segs -> String.concat "," (List.map seg_to_string segs)

let origin_to_string = function
  | A.Igp -> "igp"
  | A.Egp -> "egp"
  | A.Incomplete -> "incomplete"

let entry_to_line e =
  let b = Buffer.create 64 in
  Buffer.add_string b (Bgp_addr.Prefix.to_string e.e_prefix);
  Buffer.add_string b (" path=" ^ path_to_string e.e_path);
  if e.e_origin <> A.Igp then
    Buffer.add_string b (" origin=" ^ origin_to_string e.e_origin);
  Option.iter (fun m -> Buffer.add_string b (Printf.sprintf " med=%d" m)) e.e_med;
  Option.iter
    (fun l -> Buffer.add_string b (Printf.sprintf " lp=%d" l))
    e.e_local_pref;
  (match e.e_communities with
  | [] -> ()
  | cs ->
    Buffer.add_string b " comm=";
    Buffer.add_string b
      (String.concat ","
         (List.map
            (fun c ->
              Printf.sprintf "%d:%d"
                (Asn.to_int (Bgp_route.Community.asn_part c))
                (Bgp_route.Community.value_part c))
            cs)));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let parse_asn s =
  match int_of_string_opt s with
  | Some n when n >= 1 && n <= 65535 -> Ok (Asn.of_int n)
  | _ -> Error (Printf.sprintf "bad ASN %S" s)

(* "7018,701,{3356,2914},174" — sets are single {..} groups between
   commas. *)
let parse_path s =
  if s = "empty" then Ok As_path.empty
  else begin
    (* split on commas that are not inside braces *)
    let parts = ref [] in
    let buf = Buffer.create 16 in
    let depth = ref 0 in
    String.iter
      (fun c ->
        match c with
        | '{' ->
          incr depth;
          Buffer.add_char buf c
        | '}' ->
          decr depth;
          Buffer.add_char buf c
        | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
        | c -> Buffer.add_char buf c)
      s;
    parts := Buffer.contents buf :: !parts;
    let parts = List.rev !parts in
    if !depth <> 0 then Error "unbalanced braces in path"
    else begin
      (* fold consecutive plain ASNs into sequences *)
      let rec go acc current_seq = function
        | [] ->
          let acc =
            if current_seq = [] then acc
            else As_path.Seq (List.rev current_seq) :: acc
          in
          Ok (List.rev acc)
        | part :: rest ->
          if String.length part >= 2 && part.[0] = '{' then begin
            if part.[String.length part - 1] <> '}' then
              Error "malformed AS_SET"
            else begin
              let inner = String.sub part 1 (String.length part - 2) in
              let* asns =
                List.fold_left
                  (fun acc s ->
                    let* acc = acc in
                    let* a = parse_asn s in
                    Ok (a :: acc))
                  (Ok [])
                  (String.split_on_char ',' inner)
              in
              let acc =
                if current_seq = [] then acc
                else As_path.Seq (List.rev current_seq) :: acc
              in
              go (As_path.Set (List.rev asns) :: acc) [] rest
            end
          end
          else
            let* a = parse_asn part in
            go acc (a :: current_seq) rest
      in
      let* segs = go [] [] parts in
      match As_path.of_segments segs with
      | p -> Ok p
      | exception Invalid_argument m -> Error m
    end
  end

let parse_community s =
  match String.split_on_char ':' s with
  | [ a; v ] -> (
    let* asn = parse_asn a in
    match int_of_string_opt v with
    | Some v when v >= 0 && v <= 0xFFFF -> Ok (Bgp_route.Community.make asn v)
    | _ -> Error (Printf.sprintf "bad community value %S" s))
  | _ -> Error (Printf.sprintf "bad community %S" s)

let entry_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [] | [ "" ] -> Error "empty line"
  | prefix_str :: fields ->
    let* prefix =
      Result.map_error
        (fun e -> Printf.sprintf "prefix: %s" e)
        (Bgp_addr.Prefix.of_string prefix_str)
    in
    let entry =
      ref
        { e_prefix = prefix; e_path = As_path.empty; e_origin = A.Igp;
          e_med = None; e_local_pref = None; e_communities = [] }
    in
    let seen = ref [] in
    let* () =
      List.fold_left
        (fun acc field ->
          let* () = acc in
          if field = "" then Ok ()
          else
            match String.index_opt field '=' with
            | None -> Error (Printf.sprintf "malformed field %S" field)
            | Some i -> (
              let key = String.sub field 0 i in
              let value = String.sub field (i + 1) (String.length field - i - 1) in
              if List.mem key !seen then
                Error (Printf.sprintf "duplicate field %S" key)
              else begin
              seen := key :: !seen;
              match key with
              | "path" ->
                let* p = parse_path value in
                Ok (entry := { !entry with e_path = p })
              | "origin" -> (
                match value with
                | "igp" -> Ok (entry := { !entry with e_origin = A.Igp })
                | "egp" -> Ok (entry := { !entry with e_origin = A.Egp })
                | "incomplete" ->
                  Ok (entry := { !entry with e_origin = A.Incomplete })
                | _ -> Error (Printf.sprintf "bad origin %S" value))
              | "med" -> (
                match int_of_string_opt value with
                | Some m -> Ok (entry := { !entry with e_med = Some m })
                | None -> Error (Printf.sprintf "bad med %S" value))
              | "lp" -> (
                match int_of_string_opt value with
                | Some l -> Ok (entry := { !entry with e_local_pref = Some l })
                | None -> Error (Printf.sprintf "bad lp %S" value))
              | "comm" ->
                let* cs =
                  List.fold_left
                    (fun acc s ->
                      let* acc = acc in
                      let* c = parse_community s in
                      Ok (c :: acc))
                    (Ok [])
                    (String.split_on_char ',' value)
                in
                Ok (entry := { !entry with e_communities = List.rev cs })
              | k -> Error (Printf.sprintf "unknown field %S" k)
              end))
        (Ok ()) fields
    in
    if not (List.mem "path" !seen) then Error "missing path= field"
    else Ok !entry

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let header = "# bgpmark-table v1"

let save filename entries =
  let oc = open_out filename in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (header ^ "\n");
      List.iter
        (fun e ->
          output_string oc (entry_to_line e);
          output_char oc '\n')
        entries)

let load filename =
  let ic = open_in filename in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | line ->
          let trimmed = String.trim line in
          if trimmed = "" || String.length trimmed > 0 && trimmed.[0] = '#' then
            go (lineno + 1) acc
          else (
            match entry_of_line trimmed with
            | Ok e -> go (lineno + 1) (e :: acc)
            | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
      in
      go 1 [])

(* ------------------------------------------------------------------ *)
(* Synthesis                                                           *)
(* ------------------------------------------------------------------ *)

let synthesize ?(seed = 42) ~n ~speaker_asn () =
  let prefixes = Bgp_addr.Prefix_gen.table ~seed ~n () in
  Array.to_list
    (Array.mapi
       (fun i p ->
         let h = Bgp_addr.Prefix_gen.mix64 ((seed * 7919) + i) land 0x3FFF_FFFF in
         (* 2..6 hops, mode at 3-4 like observed Internet paths *)
         let len = 2 + (h mod 5) in
         { e_prefix = p;
           e_path = Workload.path ~origin_asn:speaker_asn ~len;
           e_origin = (if h land 0x10000 = 0 then Bgp_route.Attrs.Igp
                       else Bgp_route.Attrs.Incomplete);
           e_med = (if h land 0x20000 = 0 then None else Some (h land 0xFF));
           e_local_pref = None; e_communities = [] })
       prefixes)

(* ------------------------------------------------------------------ *)
(* MRT bridging and format auto-detection                              *)
(* ------------------------------------------------------------------ *)

let entries_of_mrt records =
  List.map
    (fun (prefix, h) ->
      let a = A.Interned.value h in
      { e_prefix = prefix; e_path = a.A.as_path; e_origin = a.A.origin;
        e_med = a.A.med; e_local_pref = a.A.local_pref;
        e_communities = a.A.communities })
    (Bgp_mrt.Mrt.routes_of_dump records)

let load_auto filename =
  match Bgp_mrt.Mrt.sniff_file filename with
  | Bgp_mrt.Mrt.Bgpmark_table -> load filename
  | Bgp_mrt.Mrt.Mrt_dump -> (
    match Bgp_mrt.Mrt.read_file filename with
    | Error e -> Error (Printf.sprintf "%s: %s" filename e)
    | Ok (records, _skipped) -> (
      match entries_of_mrt records with
      | [] ->
        Error
          (Printf.sprintf "%s: MRT dump has no IPv4-unicast RIB entries"
             filename)
      | entries -> Ok entries))
  | Bgp_mrt.Mrt.Unknown_format ->
    Error
      (Printf.sprintf
         "%s: unrecognized table format — expected %s or %s" filename
         (Bgp_mrt.Mrt.format_name Bgp_mrt.Mrt.Mrt_dump)
         (Bgp_mrt.Mrt.format_name Bgp_mrt.Mrt.Bgpmark_table))
