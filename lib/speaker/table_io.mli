(** Textual routing-table serialization.

    A simple line format for full tables — the moral equivalent of an
    MRT RIB dump for this repository, so users can feed the benchmark
    (or [bgpd]) a table of their own instead of the synthetic
    generator:

    {v
    # bgpmark-table v1
    203.0.113.0/24 path=7018,701,3356 origin=igp med=10 lp=100 comm=7018:666
    198.51.100.0/24 path=7018,{3356,2914} origin=incomplete
    v}

    One route per line; [path] is the AS path (braces delimit an
    AS_SET); all attribute fields except [path] are optional.  Next
    hops are supplied by the loader (tables are speaker-relative).
    Lines starting with [#] and blank lines are ignored. *)

type entry = {
  e_prefix : Bgp_addr.Prefix.t;
  e_path : Bgp_route.As_path.t;
  e_origin : Bgp_route.Attrs.origin;
  e_med : int option;
  e_local_pref : int option;
  e_communities : Bgp_route.Community.t list;
}

val entry_of_route : Bgp_route.Route.t -> entry
val to_attrs : next_hop:Bgp_addr.Ipv4.t -> entry -> Bgp_route.Attrs.t

val entry_to_line : entry -> string
val entry_of_line : string -> (entry, string) result

val save : string -> entry list -> unit
(** Write a table file (truncates).
    @raise Sys_error on I/O failure. *)

val load : string -> (entry list, string) result
(** Parse a table file; the error carries the first offending line
    number and reason. *)

val synthesize :
  ?seed:int -> n:int -> speaker_asn:Bgp_route.Asn.t -> unit -> entry list
(** A deterministic synthetic table with {e varied} AS-path lengths
    (2-6 hops, Internet-ish mix) — unlike the benchmark workloads,
    where path length is a controlled variable. *)

val entries_of_mrt : Bgp_mrt.Mrt.record list -> entry list
(** Project the best-source RIB view of an MRT dump
    ({!Bgp_mrt.Mrt.routes_of_dump}) onto table entries.  Next hops are
    dropped — like the text format, loaded tables are
    speaker-relative. *)

val load_auto : string -> (entry list, string) result
(** Sniff the file ({!Bgp_mrt.Mrt.sniff_file}) and dispatch: the
    [# bgpmark-table v1] text format goes through {!load}, a binary
    MRT dump through {!Bgp_mrt.Mrt.read_file} + {!entries_of_mrt}.
    Unrecognized content is an error naming both accepted formats. *)
