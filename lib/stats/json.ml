type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_str f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

(* [indent < 0] means compact. *)
let rec emit b ~indent ~level v =
  let pad l =
    if indent >= 0 then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (indent * l) ' ')
    end
  in
  let sep () = Buffer.add_char b ',' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_str f)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then sep ();
        pad (level + 1);
        emit b ~indent ~level:(level + 1) item)
      items;
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then sep ();
        pad (level + 1);
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b (if indent >= 0 then "\": " else "\":");
        emit b ~indent ~level:(level + 1) item)
      fields;
    pad level;
    Buffer.add_char b '}'

let render ~indent v =
  let b = Buffer.create 256 in
  emit b ~indent ~level:0 v;
  Buffer.contents b

let to_string v = render ~indent:(-1) v
let to_string_pretty v = render ~indent:2 v
let pp ppf v = Format.pp_print_string ppf (to_string v)
