(** A minimal JSON emitter for machine-readable benchmark output.

    The repository deliberately carries no JSON dependency; every
    [--json] flag of [bgpbench] renders through this module.  Emission
    only — the perf-trajectory consumers ([BENCH_*.json]) never need to
    parse JSON back inside this repo. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values render as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** RFC 8259 string-body escaping (no surrounding quotes): quote,
    backslash and control characters below 0x20 become escape
    sequences. *)

val to_string : t -> string
(** Compact single-line rendering (RFC 8259 escaping). *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for artifacts meant to be diffed. *)

val pp : Format.formatter -> t -> unit
(** [to_string], as a formatter. *)
