(* Counters are Atomic-backed: each simulated router's registry is
   still written by one domain at a time (its partition's), but a
   partitioned run samples counters from the coordinating domain at
   window barriers, and Atomic publication makes those reads sound
   under the OCaml 5 memory model without a lock on the hot path. *)
type counter = { c_name : string; c_value : int Atomic.t }

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

(* A gauge samples external state (e.g. the global attribute arena)
   through a closure; it holds no state of its own, so [reset_all]
   leaves it alone. *)
type gauge = { g_name : string; g_sample : unit -> int }

(* Registration order is meaningful for reports, so entries are kept in
   an ordered list alongside the name index. *)
type entry = Counter of counter | Histogram of histogram | Gauge of gauge

type t = {
  index : (string, entry) Hashtbl.t;
  mutable entries : entry list;  (* reverse registration order *)
}

let create () = { index = Hashtbl.create 32; entries = [] }

let entry_name = function
  | Counter c -> c.c_name
  | Histogram h -> h.h_name
  | Gauge g -> g.g_name

let register t e =
  let name = entry_name e in
  if Hashtbl.mem t.index name then
    invalid_arg (Printf.sprintf "Metrics: %S already registered" name);
  Hashtbl.replace t.index name e;
  t.entries <- e :: t.entries

let counter t name =
  let c = { c_name = name; c_value = Atomic.make 0 } in
  register t (Counter c);
  c

let incr ?(by = 1) c =
  if by < 0 then
    invalid_arg (Printf.sprintf "Metrics.incr: negative step %d on %s" by c.c_name);
  ignore (Atomic.fetch_and_add c.c_value by)

let value c = Atomic.get c.c_value
let counter_name c = c.c_name

let find_counter t name =
  match Hashtbl.find_opt t.index name with
  | Some (Counter c) -> Some c
  | Some (Histogram _ | Gauge _) | None -> None

let histogram t name =
  let h = { h_name = name; h_count = 0; h_sum = 0.0; h_min = 0.0; h_max = 0.0 } in
  register t (Histogram h);
  h

let observe h x =
  if h.h_count = 0 then begin
    h.h_min <- x;
    h.h_max <- x
  end
  else begin
    if x < h.h_min then h.h_min <- x;
    if x > h.h_max then h.h_max <- x
  end;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. x

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_mean h = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count
let hist_min h = h.h_min
let hist_max h = h.h_max
let histogram_name h = h.h_name

let find_histogram t name =
  match Hashtbl.find_opt t.index name with
  | Some (Histogram h) -> Some h
  | Some (Counter _ | Gauge _) | None -> None

let gauge t name sample =
  let g = { g_name = name; g_sample = sample } in
  register t (Gauge g);
  g

let gauge_value g = g.g_sample ()
let gauge_name g = g.g_name

let find_gauge t name =
  match Hashtbl.find_opt t.index name with
  | Some (Gauge g) -> Some g
  | Some (Counter _ | Histogram _) | None -> None

let reset_all t =
  List.iter
    (function
      | Counter c -> Atomic.set c.c_value 0
      | Histogram h ->
        h.h_count <- 0;
        h.h_sum <- 0.0;
        h.h_min <- 0.0;
        h.h_max <- 0.0
      | Gauge _ -> ())
    t.entries

let in_order t = List.rev t.entries

let counters t =
  List.filter_map
    (function
      | Counter c -> Some (c.c_name, Atomic.get c.c_value)
      | Histogram _ | Gauge _ -> None)
    (in_order t)

let histograms t =
  List.filter_map
    (function
      | Histogram h -> Some (h.h_name, (h.h_count, h.h_sum))
      | Counter _ | Gauge _ -> None)
    (in_order t)

let gauges t =
  List.filter_map
    (function
      | Gauge g -> Some (g.g_name, g.g_sample ())
      | Counter _ | Histogram _ -> None)
    (in_order t)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (function
      | Counter c ->
        Format.fprintf ppf "%-40s %12d@," c.c_name (Atomic.get c.c_value)
      | Histogram h ->
        Format.fprintf ppf "%-40s count %8d  sum %14.0f  mean %12.1f@," h.h_name
          h.h_count h.h_sum (hist_mean h)
      | Gauge g ->
        Format.fprintf ppf "%-40s %12d (gauge)@," g.g_name (g.g_sample ()))
    (in_order t);
  Format.fprintf ppf "@]"

(* The Prometheus-style export: every metric in registration order,
   typed by kind.  This is what `bgpbench churn --metrics` dumps in
   place of the BNG playbook's Prometheus scrape targets. *)
let to_json t =
  Json.Obj
    (List.map
       (function
         | Counter c ->
           ( c.c_name,
             Json.Obj
               [ ("kind", Json.Str "counter");
                 ("value", Json.Int (Atomic.get c.c_value)) ] )
         | Histogram h ->
           ( h.h_name,
             Json.Obj
               [ ("kind", Json.Str "histogram");
                 ("count", Json.Int h.h_count);
                 ("sum", Json.Float h.h_sum);
                 ("mean", Json.Float (hist_mean h));
                 ("min", Json.Float h.h_min);
                 ("max", Json.Float h.h_max) ] )
         | Gauge g ->
           ( g.g_name,
             Json.Obj
               [ ("kind", Json.Str "gauge");
                 ("value", Json.Int (g.g_sample ())) ] ))
       (in_order t))
