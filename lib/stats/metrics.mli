(** A unified metrics registry: named monotonic counters and duration
    histograms.

    One registry instance is shared by everything that instruments a
    single simulated router ({!Bgp_rib.Rib_manager}, the router, the
    update-pipeline stages); each component registers its metrics
    {e exactly once} at construction, and a phase boundary resets the
    whole registry atomically ({!reset_all}) so no window counter can
    be missed.

    Counters count discrete events (updates, decisions, transactions);
    histograms observe per-batch magnitudes (simulated CPU cycles, or
    any duration-like quantity) and retain count / sum / min / max. *)

type t
(** A registry. *)

type counter
type histogram
type gauge

val create : unit -> t

(** {1 Counters} *)

val counter : t -> string -> counter
(** Register a monotonic counter under [name].
    @raise Invalid_argument if [name] is already registered. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) to the counter.  Counters are Atomic-backed,
    so a partitioned run ({!Bgp_sim.Pengine}) can sample them from the
    coordinating domain while worker domains increment them.
    @raise Invalid_argument if [by] is negative (counters are monotonic
    between resets). *)

val value : counter -> int
val counter_name : counter -> string

val find_counter : t -> string -> counter option
(** Look up a previously registered counter. *)

(** {1 Histograms} *)

val histogram : t -> string -> histogram
(** Register a histogram under [name].
    @raise Invalid_argument if [name] is already registered. *)

val observe : histogram -> float -> unit

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_mean : histogram -> float
(** 0 when empty. *)

val hist_min : histogram -> float
(** 0 when empty. *)

val hist_max : histogram -> float
(** 0 when empty. *)

val histogram_name : histogram -> string
val find_histogram : t -> string -> histogram option

(** {1 Gauges} *)

val gauge : t -> string -> (unit -> int) -> gauge
(** Register a sampled gauge under [name]: the closure reads external
    state (e.g. the shared attribute arena) on demand.  Gauges hold no
    state of their own, so {!reset_all} does not touch them.
    @raise Invalid_argument if [name] is already registered. *)

val gauge_value : gauge -> int
(** Sample the gauge now. *)

val gauge_name : gauge -> string
val find_gauge : t -> string -> gauge option

(** {1 Registry-wide operations} *)

val reset_all : t -> unit
(** Zero every counter and histogram (a measurement-phase boundary).
    Registration is preserved; gauges, being sampled, are unaffected. *)

val counters : t -> (string * int) list
(** All counters with current values, in registration order. *)

val histograms : t -> (string * (int * float)) list
(** All histograms as [(name, (count, sum))], in registration order. *)

val gauges : t -> (string * int) list
(** All gauges, sampled now, in registration order. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump of every metric, in registration order. *)

val to_json : t -> Json.t
(** Every metric in registration order as one JSON object keyed by
    metric name — counters as [{kind,value}], histograms as
    [{kind,count,sum,mean,min,max}], gauges sampled now.  The
    machine-readable stand-in for a Prometheus scrape endpoint. *)
