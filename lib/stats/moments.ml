type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable mn : float;
  mutable mx : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; mn = infinity; mx = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
(* Match Metrics histogram semantics: an empty accumulator reports 0.0
   rather than leaking the infinity sentinels (which Json.float_str would
   render as null). *)
let min_value t = if t.n = 0 then 0.0 else t.mn
let max_value t = if t.n = 0 then 0.0 else t.mx

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n (mean t)
      (stddev t) (min_value t) (max_value t)
