(** Online univariate statistics (Welford), used by the bench harness
    to summarize repeated measurements. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Sample variance; 0 with fewer than two observations. *)

val stddev : t -> float
val min_value : t -> float
(** 0 when empty (matching {!Metrics} histogram semantics). *)

val max_value : t -> float
(** 0 when empty (matching {!Metrics} histogram semantics). *)

val of_list : float list -> t
val pp : Format.formatter -> t -> unit
