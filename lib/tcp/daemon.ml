module Session = Bgp_fsm.Session
module Fsm = Bgp_fsm.Fsm
module Msg = Bgp_wire.Msg
module Rib = Bgp_rib.Rib_manager
module Fib = Bgp_fib.Fib
module Peer = Bgp_route.Peer

type neighbor = {
  endpoint : Endpoint.t;
  rr_client : bool;  (* treat this neighbor as a reflection client *)
  mutable peer : Peer.t option;  (* identity learned from the OPEN *)
}

type t = {
  loop : Event_loop.t;
  rib : Rib.t;
  fib : Fib.t;
  log : string -> unit;
  mutable neighbors : neighbor list;
  mutable next_peer_id : int;
}

let logf t fmt = Printf.ksprintf t.log fmt

let neighbor_of_peer t peer =
  List.find_opt
    (fun nb ->
      match nb.peer with
      | Some p -> Peer.equal p peer
      | None -> false)
    t.neighbors

(* One UPDATE per announcement, except consecutive announcements with
   identical attributes to the same peer, which are packed together. *)
let messages_of_announcements anns =
  let max_pack = 200 in
  let rec go acc current = function
    | [] -> List.rev (Option.to_list (Option.map close current) @ acc)
    | (a : Rib.announcement) :: rest -> (
      match a.Rib.ann_attrs, current with
      | None, Some c -> go (close c :: acc) None (a :: rest)
      | None, None ->
        go ((a.Rib.dest, Msg.withdrawal [ a.Rib.ann_prefix ]) :: acc) None rest
      | Some attrs, Some (dest, cattrs, prefixes)
        when Peer.equal dest a.Rib.dest
             && Bgp_route.Attrs.Interned.equal attrs cattrs
             && List.length prefixes < max_pack ->
        go acc (Some (dest, cattrs, a.Rib.ann_prefix :: prefixes)) rest
      | Some attrs, Some c ->
        go (close c :: acc) (Some (a.Rib.dest, attrs, [ a.Rib.ann_prefix ])) rest
      | Some attrs, None ->
        go acc (Some (a.Rib.dest, attrs, [ a.Rib.ann_prefix ])) rest)
  and close (dest, attrs, prefixes) =
    (dest, Msg.announcement_interned attrs (List.rev prefixes))
  in
  go [] None anns

let send_announcements t anns =
  List.iter
    (fun (dest, msg) ->
      match neighbor_of_peer t dest with
      | Some nb ->
        if not (Endpoint.send nb.endpoint msg) then
          logf t "warn: dropped %s to %s (session not established)"
            (Msg.kind_name msg)
            (Format.asprintf "%a" Peer.pp dest)
      | None -> ())
    (messages_of_announcements anns)

let apply_outcome t (o : Rib.outcome) =
  ignore (Fib.apply_all t.fib o.Rib.fib_deltas);
  send_announcements t o.Rib.announcements

let on_update t nb (u : Msg.update) =
  match nb.peer with
  | None -> ()
  | Some peer ->
    List.iter
      (fun p -> apply_outcome t (Rib.withdraw t.rib ~from:peer p))
      u.Msg.withdrawn;
    Option.iter
      (fun interned ->
        Rib.announce_group t.rib ~from:peer
          ~each:(fun _prefix o -> apply_outcome t o)
          u.Msg.nlri interned)
      u.Msg.attrs

let on_established t nb () =
  match Fsm.peer_open (Session.fsm (Endpoint.session nb.endpoint)) with
  | None -> logf t "error: established without a peer OPEN?"
  | Some o ->
    (match nb.peer with
    | None ->
      let peer =
        Peer.make ~id:t.next_peer_id ~asn:o.Msg.opn_asn
          ~router_id:o.Msg.opn_bgp_id ~addr:o.Msg.opn_bgp_id
      in
      t.next_peer_id <- t.next_peer_id + 1;
      nb.peer <- Some peer;
      Rib.add_peer ~rr_client:nb.rr_client ~up:true t.rib peer
    | Some peer -> Rib.set_peer_up t.rib peer true);
    let peer = Option.get nb.peer in
    logf t "session with %s established"
      (Format.asprintf "%a" Peer.pp peer);
    send_announcements t (Rib.export_full t.rib peer)

let on_down t nb reason =
  match nb.peer with
  | None -> ()
  | Some peer ->
    logf t "session with %s down: %s" (Format.asprintf "%a" Peer.pp peer) reason;
    apply_outcome t (Rib.peer_down t.rib peer)

let on_refresh t nb afi safi =
  match nb.peer with
  | Some peer when afi = 1 && safi = 1 ->
    send_announcements t (Rib.refresh t.rib peer)
  | _ -> ()

let create ?import ?export ?aggregates ?(log = fun _ -> ()) loop ~asn
    ~router_id () =
  { loop; rib = Rib.create ?import ?export ?aggregates ~local_asn:asn ~router_id ();
    fib = Fib.create (); log; neighbors = []; next_peer_id = 0 }

let hooks_for t nb_holder =
  let with_nb f = match !nb_holder with Some nb -> f nb | None -> () in
  { Session.null_hooks with
    Session.on_update = (fun u -> with_nb (fun nb -> on_update t nb u));
    on_refresh = (fun afi safi -> with_nb (fun nb -> on_refresh t nb afi safi));
    on_established = (fun () -> with_nb (fun nb -> on_established t nb ()));
    on_down = (fun reason -> with_nb (fun nb -> on_down t nb reason)) }

let session_cfg t ~passive =
  { (Fsm.default_config ~asn:(Rib.local_asn t.rib)
       ~router_id:(Rib.router_id t.rib))
    with Fsm.passive }

let add_endpoint t ~rr_client make =
  (* The hooks need the neighbor record, which needs the endpoint: tie
     the knot through an option initialized right after construction
     (no session event can fire before the loop next runs). *)
  let nb_holder = ref None in
  let endpoint = make (hooks_for t nb_holder) in
  let nb = { endpoint; rr_client; peer = None } in
  nb_holder := Some nb;
  t.neighbors <- nb :: t.neighbors;
  Endpoint.start endpoint

let listen ?(rr_client = false) t ~port =
  add_endpoint t ~rr_client (fun hooks ->
      Endpoint.listen t.loop ~port ~cfg:(session_cfg t ~passive:true) ~hooks)

let connect ?(rr_client = false) t ~port =
  add_endpoint t ~rr_client (fun hooks ->
      Endpoint.connect t.loop ~port ~cfg:(session_cfg t ~passive:false) ~hooks)

let originate t prefix =
  apply_outcome t
    (Rib.inject_local t.rib ~prefix ~next_hop:(Rib.router_id t.rib))

let originate_route t prefix attrs =
  apply_outcome t (Rib.inject_local_route t.rib ~prefix ~attrs)

let withdraw_origin t prefix =
  apply_outcome t (Rib.withdraw_local t.rib ~prefix)

let rib t = t.rib
let fib t = t.fib
let routes t = Bgp_rib.Loc_rib.to_list (Rib.loc_rib t.rib)

let established_peers t =
  List.length
    (List.filter
       (fun nb -> Endpoint.state nb.endpoint = Fsm.Established)
       t.neighbors)

let stop t =
  List.iter (fun nb -> Endpoint.close nb.endpoint) t.neighbors;
  t.neighbors <- []
