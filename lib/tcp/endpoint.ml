module Session = Bgp_fsm.Session
module Fsm = Bgp_fsm.Fsm

type role = Listener of Unix.file_descr | Connector of int

type t = {
  loop : Event_loop.t;
  role : role;
  mutable conn : Unix.file_descr option;
  out : Ring.t;  (* queued output not yet accepted by the socket *)
  mutable session : Session.t option;
}

let session t =
  match t.session with
  | Some s -> s
  | None -> invalid_arg "Endpoint: not initialized"

let close_conn t =
  match t.conn with
  | None -> ()
  | Some fd ->
    Event_loop.unwatch t.loop fd;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.conn <- None;
    Ring.clear t.out

let conn_error t =
  close_conn t;
  Session.closed (session t)

(* Non-blocking queued output on the shared ring discipline (see
   {!Tcp_link}): the whole contiguous head segment per syscall, O(1)
   head advance on partial writes, write-watch armed only while bytes
   are pending.  This replaces the old clear-O_NONBLOCK-and-block
   write-out, which could stall the entire loop on one slow peer. *)
let rec flush_out t =
  match t.conn with
  | None -> Ring.clear t.out
  | Some fd ->
    if not (Ring.is_empty t.out) then begin
      let buf, off, len = Ring.contiguous t.out in
      match Unix.write fd buf off len with
      | n ->
        Ring.consume t.out n;
        if Ring.is_empty t.out then Event_loop.unwatch_write t.loop fd
        else if n = len then flush_out t
        else Event_loop.watch_write t.loop fd (fun () -> flush_out t)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Event_loop.watch_write t.loop fd (fun () -> flush_out t)
      | exception Unix.Unix_error (_, _, _) -> conn_error t
    end

let install_conn t fd =
  close_conn t;
  Unix.set_nonblock fd;
  t.conn <- Some fd;
  let buf = Bytes.create 65536 in
  Event_loop.watch_read t.loop fd (fun () ->
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 ->
        close_conn t;
        Session.closed (session t)
      | n -> Session.feed (session t) (Bytes.sub_string buf 0 n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) ->
        close_conn t;
        Session.closed (session t));
  (* Tell the FSM once we are back at the loop's top level. *)
  Event_loop.post t.loop (fun () -> Session.connected (session t))

let io_of t ~active =
  { Session.out_bytes =
      (fun bytes ->
        if t.conn <> None && bytes <> "" then begin
          Ring.push_string t.out bytes;
          flush_out t
        end);
    start_connect =
      (fun () ->
        if active then
          match t.role with
          | Connector port -> (
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            try
              Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              install_conn t fd
            with Unix.Unix_error _ ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Event_loop.post t.loop (fun () -> Session.failed (session t)))
          | Listener _ -> ());
    close = (fun () -> close_conn t) }

let listen loop ~port ~cfg ~hooks =
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen lfd 1;
  let t = { loop; role = Listener lfd; conn = None; out = Ring.create (); session = None } in
  let cfg = { cfg with Fsm.passive = true } in
  t.session <-
    Some (Session.create cfg (Event_loop.timer_service loop) (io_of t ~active:false) hooks);
  Event_loop.watch_read loop lfd (fun () ->
      match Unix.accept lfd with
      | fd, _ -> install_conn t fd
      | exception Unix.Unix_error _ -> ());
  t

let connect loop ~port ~cfg ~hooks =
  let t = { loop; role = Connector port; conn = None; out = Ring.create (); session = None } in
  t.session <-
    Some (Session.create cfg (Event_loop.timer_service loop) (io_of t ~active:true) hooks);
  t

let start t = Session.start (session t)
let stop t = Session.stop (session t)
let state t = Session.state (session t)
let send t msg = Session.send (session t) msg

let close t =
  Session.stop (session t);
  close_conn t;
  match t.role with
  | Listener lfd ->
    Event_loop.unwatch t.loop lfd;
    (try Unix.close lfd with Unix.Unix_error _ -> ())
  | Connector _ -> ()
