type timer = { fire_at : float; fn : unit -> unit; mutable live : bool }

type t = {
  mutable readers : (Unix.file_descr * (unit -> unit)) list;
  mutable timers : timer list;
  mutable posted : (unit -> unit) list;
}

let create () = { readers = []; timers = []; posted = [] }

let watch_read t fd fn =
  t.readers <- (fd, fn) :: List.remove_assoc fd t.readers

let unwatch t fd = t.readers <- List.remove_assoc fd t.readers

let after t delay fn =
  let timer = { fire_at = Unix.gettimeofday () +. delay; fn; live = true } in
  t.timers <- timer :: t.timers;
  fun () -> timer.live <- false

let post t fn = t.posted <- t.posted @ [ fn ]

let timer_service t =
  { Bgp_fsm.Session.arm_timer = (fun delay fn -> after t delay fn) }

let run_due_timers t =
  let now = Unix.gettimeofday () in
  let due, rest = List.partition (fun tm -> tm.live && tm.fire_at <= now) t.timers in
  t.timers <- List.filter (fun tm -> tm.live) rest;
  (* Two timers due in the same tick must fire in deadline order, not
     in the (reversed-insertion) list order: a hold timer armed before
     a keepalive but due earlier would otherwise fire second. *)
  let due = List.stable_sort (fun a b -> Float.compare a.fire_at b.fire_at) due in
  List.iter (fun tm -> if tm.live then tm.fn ()) due

let run_posted t =
  let posted = t.posted in
  t.posted <- [];
  List.iter (fun fn -> fn ()) posted

(* Seconds until the earliest live timer, or [None] when no timer is
   armed.  No artificial cap: the caller sleeps until something can
   actually happen (a timer, a readable fd, or its own deadline). *)
let next_timer_in t =
  let now = Unix.gettimeofday () in
  List.fold_left
    (fun acc tm ->
      if tm.live then
        let d = Float.max 0.0 (tm.fire_at -. now) in
        Some (match acc with None -> d | Some a -> Float.min a d)
      else acc)
    None t.timers

let run t ~until ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if until () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      run_posted t;
      run_due_timers t;
      if until () then true
      else begin
        let fds = List.map fst t.readers in
        (* Sleep until the next thing that can change state: the
           earliest timer or the run deadline.  With neither closer
           than the deadline the select blocks the whole remaining
           window instead of busy-polling. *)
        let to_deadline = Float.max 0.0 (deadline -. Unix.gettimeofday ()) in
        let wait =
          match next_timer_in t with
          | None -> to_deadline
          | Some d -> Float.min d to_deadline
        in
        (* [select] cannot take an infinite timeout ([timeout:infinity]
           with no timer armed); an hourly wake-up is effectively
           event-driven. *)
        let wait = Float.min wait 3600.0 in
        (match Unix.select fds [] [] wait with
        | readable, _, _ ->
          List.iter
            (fun fd ->
              match List.assoc_opt fd t.readers with
              | Some fn -> fn ()
              | None -> ())
            readable
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go ()
      end
    end
  in
  go ()

let stop_watching_all t =
  t.readers <- [];
  t.timers <- [];
  t.posted <- []
