module Engine = Bgp_sim.Engine

type t = {
  (* Watchers are hash tables with a cached descriptor list: dispatch
     is O(1) per ready fd and the select argument lists are rebuilt
     only when the watched set changes, not on every iteration.
     Re-arming an already-watched fd (the flush-under-backpressure hot
     case) touches neither list. *)
  readers : (Unix.file_descr, unit -> unit) Hashtbl.t;
  writers : (Unix.file_descr, unit -> unit) Hashtbl.t;
  mutable fds_r : Unix.file_descr list;
  mutable fds_w : Unix.file_descr list;
  mutable posted : (unit -> unit) list;
  (* The timer queue IS a simulation engine: deadlines and FIFO
     tie-breaks live on its (time, seq) heap and cancellation is its
     handle state machine, so live timers share cancel-after-fire and
     same-instant ordering semantics with simulated ones by
     construction rather than by parallel reimplementation.  The
     engine's virtual time is only ever advanced to [now t] — elapsed
     monotonized wall-clock seconds. *)
  mutable timers : Engine.t;
  epoch : float;          (* gettimeofday at [create] *)
  mutable last_now : float;  (* high-water mark of elapsed seconds *)
}

let create () =
  { readers = Hashtbl.create 16; writers = Hashtbl.create 16;
    fds_r = []; fds_w = []; posted = []; timers = Engine.create ();
    epoch = Unix.gettimeofday (); last_now = 0.0 }

(* Monotonized time: [gettimeofday] can step backwards under NTP; we
   clamp to the high-water mark so timers can never un-expire.  (A
   backward step makes time stall until the wall clock catches up; a
   forward step fires pending timers early.  Without a monotonic
   clock source in the stdlib this is the best available behavior,
   and it is strictly better than raw [gettimeofday], where a
   backward step could also push armed deadlines unreachably far
   into the future.) *)
let now t =
  let raw = Unix.gettimeofday () -. t.epoch in
  if raw > t.last_now then t.last_now <- raw;
  t.last_now

let watch_read t fd fn =
  if not (Hashtbl.mem t.readers fd) then t.fds_r <- fd :: t.fds_r;
  Hashtbl.replace t.readers fd fn

let watch_write t fd fn =
  if not (Hashtbl.mem t.writers fd) then t.fds_w <- fd :: t.fds_w;
  Hashtbl.replace t.writers fd fn

let unwatch_write t fd =
  if Hashtbl.mem t.writers fd then begin
    Hashtbl.remove t.writers fd;
    t.fds_w <- List.filter (fun fd' -> fd' <> fd) t.fds_w
  end

let unwatch t fd =
  if Hashtbl.mem t.readers fd then begin
    Hashtbl.remove t.readers fd;
    t.fds_r <- List.filter (fun fd' -> fd' <> fd) t.fds_r
  end;
  unwatch_write t fd

let after t delay fn =
  let h = Engine.schedule_at t.timers ~time:(now t +. Float.max 0.0 delay) fn in
  fun () -> Engine.cancel h

let post t fn = t.posted <- t.posted @ [ fn ]

let rec clock t =
  Bgp_engine.Clock.make ~label:"live"
    ~now:(fun () -> now t)
    ~schedule_at:(fun ~time fn ->
      (* Clamp to live [now], not the (lagging) heap time: a deadline
         in the past must fire after everything already due. *)
      let h = Engine.schedule_at t.timers ~time:(Float.max time (now t)) fn in
      Bgp_engine.Clock.handle
        ~cancel:(fun () -> Engine.cancel h)
        ~cancelled:(fun () -> Engine.cancelled h))
    ~post:(fun fn -> post t fn)
    ~run_window:(fun ~cond ~step -> run t ~until:cond ~timeout:step)

and timer_service t = Bgp_fsm.Session.timer_service_of (clock t)

(* Fire every timer whose deadline has passed, in deadline order with
   FIFO ordering at equal deadlines (the engine heap's invariant). *)
and run_due_timers t = Engine.run ~until:(now t) t.timers

and run_posted t =
  let posted = t.posted in
  t.posted <- [];
  List.iter (fun fn -> fn ()) posted

(* Seconds until the earliest armed timer, or [None] when no timer is
   armed.  No artificial cap: the caller sleeps until something can
   actually happen (a timer, a ready fd, or its own deadline). *)
and next_timer_in t =
  match Engine.next_time t.timers with
  | None -> None
  | Some time -> Some (Float.max 0.0 (time -. now t))

and run t ~until ~timeout =
  let deadline = now t +. timeout in
  let rec go () =
    if until () then true
    else if now t > deadline then false
    else begin
      run_posted t;
      run_due_timers t;
      if until () then true
      else begin
        let fds_r = t.fds_r in
        let fds_w = t.fds_w in
        (* Sleep until the next thing that can change state: the
           earliest timer or the run deadline.  With neither closer
           than the deadline the select blocks the whole remaining
           window instead of busy-polling. *)
        let to_deadline = Float.max 0.0 (deadline -. now t) in
        let wait =
          match next_timer_in t with
          | None -> to_deadline
          | Some d -> Float.min d to_deadline
        in
        (* [select] cannot take an infinite timeout ([timeout:infinity]
           with no timer armed); an hourly wake-up is effectively
           event-driven. *)
        let wait = Float.min wait 3600.0 in
        (match Unix.select fds_r fds_w [] wait with
        | readable, writable, _ ->
          List.iter
            (fun fd ->
              match Hashtbl.find_opt t.readers fd with
              | Some fn -> fn ()
              | None -> ())
            readable;
          List.iter
            (fun fd ->
              match Hashtbl.find_opt t.writers fd with
              | Some fn -> fn ()
              | None -> ())
            writable
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go ()
      end
    end
  in
  go ()

let stop_watching_all t =
  Hashtbl.reset t.readers;
  Hashtbl.reset t.writers;
  t.fds_r <- [];
  t.fds_w <- [];
  t.posted <- [];
  (* Dropping the engine discards every armed timer; cancel thunks
     held against the old queue stay safe (cancel is idempotent and
     does not touch the loop). *)
  t.timers <- Engine.create ()
