(** A small single-threaded [select]-based event loop with wall-clock
    timers — the real-world counterpart of the simulator's engine, used
    to drive {!Bgp_fsm.Session}s over actual sockets.

    Timers ride an embedded {!Bgp_sim.Engine} heap whose virtual time
    is only ever advanced to elapsed wall-clock time, so live timer
    semantics are the simulator's by construction: deadline order with
    FIFO tie-breaks at equal deadlines, and idempotent cancellation.
    Time is monotonized (never decreases even if [gettimeofday] steps
    backwards), so a clock step cannot starve or spuriously fire armed
    timers. *)

type t

val create : unit -> t

val now : t -> float
(** Monotonized seconds since {!create} — the loop's time axis. *)

val watch_read : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Invoke the callback whenever the descriptor is readable.  Replaces
    any previous watcher for the descriptor. *)

val watch_write : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Invoke the callback whenever the descriptor is writable — armed by
    transports with queued output, and expected to
    {!unwatch_write} once the queue drains (a watched-and-writable
    descriptor otherwise spins the loop). *)

val unwatch : t -> Unix.file_descr -> unit
(** Drop both the read and write watchers of the descriptor. *)

val unwatch_write : t -> Unix.file_descr -> unit

val after : t -> float -> (unit -> unit) -> unit -> unit
(** [after t delay fn] schedules [fn] in [delay] wall-clock seconds and
    returns a cancel thunk.  Cancellation follows the
    {!Bgp_engine.Clock} contract exactly as {!Bgp_sim.Engine.cancel}
    does: it is idempotent, a no-op once the timer has fired, and safe
    to call from inside the firing callback itself.  Timers due in the
    same loop iteration fire in deadline order; timers sharing a
    deadline fire in the order they were armed. *)

val post : t -> (unit -> unit) -> unit
(** Run a thunk on the next loop iteration (breaks reentrancy). *)

val timer_service : t -> Bgp_fsm.Session.timer_service
(** Adapter for sessions — {!Bgp_fsm.Session.timer_service_of} over
    {!clock}. *)

val clock : t -> Bgp_engine.Clock.t
(** This loop as a {!Bgp_engine.Clock}: monotonized wall-clock [now],
    timers on the shared engine-heap semantics, [post] onto the loop,
    and a [run] pump that selects on the watched descriptors while
    waiting (returning as soon as the condition holds). *)

val run : t -> until:(unit -> bool) -> timeout:float -> bool
(** Pump the loop until [until ()] is true (returns [true]) or
    [timeout] wall-clock seconds elapse (returns [false]). *)

val stop_watching_all : t -> unit
(** Drop every watcher, queued thunk, and armed timer.  Outstanding
    cancel thunks remain safe to call. *)
