type t = {
  mutable buf : Bytes.t;
  mutable head : int;  (* index of the first queued byte *)
  mutable len : int;   (* queued bytes; tail = (head + len) mod cap *)
}

let create ?(initial = 4096) () =
  { buf = Bytes.create (max 1 initial); head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

(* Ensure room for [need] more bytes, unwrapping into the new buffer so
   the data is contiguous from index 0 after a grow. *)
let reserve t need =
  let cap = Bytes.length t.buf in
  if t.len + need > cap then begin
    let ncap = ref cap in
    while t.len + need > !ncap do
      ncap := !ncap * 2
    done;
    let nbuf = Bytes.create !ncap in
    let first = min t.len (cap - t.head) in
    Bytes.blit t.buf t.head nbuf 0 first;
    Bytes.blit t.buf 0 nbuf first (t.len - first);
    t.buf <- nbuf;
    t.head <- 0
  end

let push_string t s =
  let n = String.length s in
  if n > 0 then begin
    reserve t n;
    let cap = Bytes.length t.buf in
    let tail = (t.head + t.len) mod cap in
    let first = min n (cap - tail) in
    Bytes.blit_string s 0 t.buf tail first;
    Bytes.blit_string s first t.buf 0 (n - first);
    t.len <- t.len + n
  end

let contiguous t =
  (t.buf, t.head, min t.len (Bytes.length t.buf - t.head))

let consume t n =
  if n < 0 || n > t.len then invalid_arg "Ring.consume";
  t.head <- (t.head + n) mod Bytes.length t.buf;
  t.len <- t.len - n;
  if t.len = 0 then t.head <- 0

let clear t =
  t.head <- 0;
  t.len <- 0
