(** Growable circular byte queue backing the non-blocking transports.

    Pending output lives in one [Bytes.t]; a partial socket write
    advances the head index instead of re-copying the remainder (the
    [String.sub]-per-write requeue this replaces was O(n²) under
    backpressure).  Many queued messages coalesce into one contiguous
    head segment, so a single [Unix.write] drains them all in one
    syscall — the stdlib-only stand-in for [writev] batching
    ([Unix] exposes neither [writev] nor Bigarray IO). *)

type t

val create : ?initial:int -> unit -> t
(** Empty ring with [initial] (default 4096) bytes of capacity; grows
    by doubling as needed, never shrinks. *)

val length : t -> int
val is_empty : t -> bool

val push_string : t -> string -> unit
(** Append a whole string (amortized O(length)). *)

val contiguous : t -> Bytes.t * int * int
(** [(buf, off, len)] of the head segment: the longest prefix of the
    queued bytes that is contiguous in the backing buffer ([len = 0]
    iff empty; [len < length t] only when the data wraps).  Valid until
    the next mutating call. *)

val consume : t -> int -> unit
(** Drop [n] bytes from the head — O(1), no copying.
    @raise Invalid_argument if [n] exceeds {!length}. *)

val clear : t -> unit
