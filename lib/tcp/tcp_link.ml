module Link = Bgp_engine.Link

type role = Connector of Unix.sockaddr | Listener

(* One endpoint's connection state.  [gen] increments on every
   (re)connect and close; tap-delayed deliveries capture it at send
   time and are discarded on mismatch, mirroring the simulated
   channel's generation guard. *)
type conn = {
  loop : Event_loop.t;
  role : role;
  mutable fd : Unix.file_descr option;
  out : Ring.t;  (* queued output not yet accepted by the socket *)
  read_buf : Bytes.t;  (* per-connection: concurrent links never alias *)
  mutable receiver : string -> unit;
  mutable on_connected : unit -> unit;
  mutable on_closed : unit -> unit;
  mutable tap : (string -> Link.fate) option;
  mutable gen : int;
}

let make_conn loop role =
  { loop; role; fd = None; out = Ring.create ();
    read_buf = Bytes.create 65536; receiver = (fun _ -> ());
    on_connected = (fun () -> ()); on_closed = (fun () -> ()); tap = None;
    gen = 0 }

let teardown ?(notify = true) c =
  match c.fd with
  | None -> ()
  | Some fd ->
    Event_loop.unwatch c.loop fd;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    c.fd <- None;
    Ring.clear c.out;
    c.gen <- c.gen + 1;
    (* Deliver the close from the pump, as the simulated channel does,
       so a session never observes its own [close] reentrantly. *)
    if notify then Event_loop.post c.loop (fun () -> c.on_closed ())

(* Drain the ring: each [Unix.write] takes the whole contiguous head
   segment — every message coalesced since the last drain goes out in
   one syscall — and a partial write just advances the head (O(1); the
   old string queue re-copied the remainder per write, O(n²) under
   backpressure). *)
let rec flush_out c =
  match c.fd with
  | None -> Ring.clear c.out
  | Some fd ->
    if not (Ring.is_empty c.out) then begin
      let buf, off, len = Ring.contiguous c.out in
      match Unix.write fd buf off len with
      | n ->
        Ring.consume c.out n;
        if Ring.is_empty c.out then Event_loop.unwatch_write c.loop fd
        else if n = len then
          (* Wrapped tail segment and the socket is still accepting. *)
          flush_out c
        else Event_loop.watch_write c.loop fd (fun () -> flush_out c)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Event_loop.watch_write c.loop fd (fun () -> flush_out c)
      | exception Unix.Unix_error (_, _, _) -> teardown c
    end

let enqueue c bytes =
  if c.fd <> None && bytes <> "" then begin
    Ring.push_string c.out bytes;
    flush_out c
  end

let handle_readable c fd () =
  if c.fd = Some fd then begin
    match Unix.read fd c.read_buf 0 (Bytes.length c.read_buf) with
    | 0 -> teardown c
    | n -> c.receiver (Bytes.sub_string c.read_buf 0 n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> teardown c
  end

let install c fd =
  (* A lingering previous connection (e.g. a re-dial racing the old
     close) is torn down first; the new one is a fresh generation. *)
  teardown ~notify:false c;
  Unix.set_nonblock fd;
  c.fd <- Some fd;
  c.gen <- c.gen + 1;
  Event_loop.watch_read c.loop fd (handle_readable c fd);
  Event_loop.post c.loop (fun () -> if c.fd = Some fd then c.on_connected ())

let start_connect c =
  match c.role with
  | Listener -> ()
  | Connector addr ->
    if c.fd = None then begin
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match Unix.connect fd addr with
      | () -> install c fd
      | exception Unix.Unix_error (_, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Event_loop.post c.loop (fun () -> c.on_closed ())
    end

(* Outbound tap, consulted once per [send] — message granularity, like
   the simulated channel's tap.  Delayed deliveries ride the loop's
   timers and are dropped if the connection turned over meanwhile. *)
let send c bytes =
  if c.fd <> None && bytes <> "" then begin
    match c.tap with
    | None -> enqueue c bytes
    | Some f -> (
      match f bytes with
      | Link.Pass -> enqueue c bytes
      | Link.Drop -> ()
      | Link.Deliver (payload, extra) ->
        if extra <= 0.0 then enqueue c payload
        else begin
          let gen = c.gen in
          let (_ : unit -> unit) =
            Event_loop.after c.loop extra (fun () ->
                if c.gen = gen then enqueue c payload)
          in
          ()
        end)
  end

let endpoint c =
  { Link.send = (fun bytes -> send c bytes);
    start_connect = (fun () -> start_connect c);
    close = (fun () -> teardown c);
    set_receiver = (fun f -> c.receiver <- f);
    set_on_connected = (fun f -> c.on_connected <- f);
    set_on_closed = (fun f -> c.on_closed <- f);
    set_tap = (fun f -> c.tap <- f) }

type t = {
  connector : Link.t;
  listener : Link.t;
  dispose : unit -> unit;
}

let pair loop =
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lsock 4;
  let addr = Unix.getsockname lsock in
  let accept_side = make_conn loop Listener in
  let connect_side = make_conn loop (Connector addr) in
  (* The passive side is always willing: new connections are accepted
     (and re-accepted after a teardown) for as long as the pair lives. *)
  Event_loop.watch_read loop lsock (fun () ->
      match Unix.accept lsock with
      | fd, _ -> install accept_side fd
      | exception Unix.Unix_error (_, _, _) -> ());
  let dispose () =
    teardown ~notify:false connect_side;
    teardown ~notify:false accept_side;
    Event_loop.unwatch loop lsock;
    try Unix.close lsock with Unix.Unix_error _ -> ()
  in
  { connector = endpoint connect_side; listener = endpoint accept_side;
    dispose }
