(** A real TCP connection as a pair of {!Bgp_engine.Link.t} endpoints.

    The live counterpart of {!Bgp_netsim.Channel}: [pair] binds a
    loopback listener and hands back two transport-neutral endpoints —
    a connector (the benchmark speaker's side, whose [start_connect]
    actually opens the socket) and a listener side (the router under
    test, passive as in the paper's setup).  Both live on one
    {!Event_loop}; reads, connection events, and tap-delayed deliveries
    all flow through the loop, so callback context matches the
    simulated channel (everything fires from the pump, never from
    inside [send]).

    Semantics mirrored from the simulated channel:
    - outbound taps see whole messages (one [send] = one tap consult)
      and may pass, drop, tamper, or delay them;
    - closing either endpoint tears the connection down on both sides
      (close/EOF), after which the connector may [start_connect] again
      — a new connection generation; tap-delayed bytes from the old
      connection are discarded, never delivered into the new stream;
    - output is queued and flushed as the peer drains it (write
      readiness), so a burst larger than the socket buffers cannot
      deadlock the single-threaded loop. *)

type t = {
  connector : Bgp_engine.Link.t;
      (** active opener — [start_connect] dials the listener *)
  listener : Bgp_engine.Link.t;
      (** passive side — accepts (and re-accepts) connections *)
  dispose : unit -> unit;
      (** close every socket including the listening one; endpoints are
          dead afterwards *)
}

val pair : Event_loop.t -> t
(** Bind an ephemeral loopback listener and return the endpoint pair.
    Nothing connects until [connector.start_connect]. *)
