module Policy = Bgp_policy.Policy
module Community = Bgp_route.Community

type relation = Customer | Peer | Provider

let relation_to_string = function
  | Customer -> "customer"
  | Peer -> "peer"
  | Provider -> "provider"

let tier i =
  if i < 0 then invalid_arg "Gao_rexford.tier: negative vertex";
  let rec go acc v = if v < 1 then acc else go (acc + 1) (v lsr 1) in
  go (-1) (i + 1)

let relation_between ~self ~neighbor =
  let ts = tier self and tn = tier neighbor in
  if ts = tn then Peer else if ts < tn then Customer else Provider

let local_pref = function Customer -> 200 | Peer -> 150 | Provider -> 100

(* Tag namespace: a private community ASN so the tags can never collide
   with workload communities. *)
let tag_asn = Bgp_route.Asn.of_int 64511

let learned_tag = function
  | Customer -> Community.make tag_asn 101
  | Peer -> Community.make tag_asn 102
  | Provider -> Community.make tag_asn 103

let import_policy rel =
  Policy.make
    ~name:(Printf.sprintf "gr-import-from-%s" (relation_to_string rel))
    [ { Policy.term_name = "tag-and-rank";
        conds = [];
        verdict =
          Policy.Accept
            [ Policy.Add_community (learned_tag rel);
              Policy.Set_local_pref (local_pref rel) ] } ]

(* Valley-free propagation oracle: which vertices end up holding a
   route to [origin]'s prefix in the stable state, as a pure graph
   fixed point.  Class 0 = own or customer-learned (exportable to
   everyone), 1 = peer-learned, 2 = provider-learned (both exportable
   only to customers); prefer-customer selection means every vertex
   settles on its minimal reachable class, so a monotone worklist over
   (vertex, class) converges to exactly the protocol's reachable set. *)
let reachable ~n ~edges ~origin =
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  let best = Array.make n 3 in
  best.(origin) <- 0;
  let q = Queue.create () in
  Queue.add origin q;
  while not (Queue.is_empty q) do
    let x = Queue.pop q in
    let cls = best.(x) in
    List.iter
      (fun y ->
        let may_export =
          cls = 0 || relation_between ~self:x ~neighbor:y = Customer
        in
        if may_export then begin
          let cls_y =
            match relation_between ~self:y ~neighbor:x with
            | Customer -> 0
            | Peer -> 1
            | Provider -> 2
          in
          if cls_y < best.(y) then begin
            best.(y) <- cls_y;
            Queue.add y q
          end
        end)
      adj.(x)
  done;
  Array.map (fun c -> c < 3) best

let export_policy rel =
  match rel with
  | Customer ->
    Policy.make ~name:"gr-export-to-customer" []
  | Peer | Provider ->
    Policy.make
      ~name:(Printf.sprintf "gr-export-to-%s" (relation_to_string rel))
      [ { Policy.term_name = "valley-free";
          conds =
            [ Policy.Any
                [ Policy.Has_community (learned_tag Peer);
                  Policy.Has_community (learned_tag Provider) ] ];
          verdict = Policy.Reject } ]
