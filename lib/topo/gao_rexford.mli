(** Gao–Rexford commercial relationships and their policy encoding.

    The paper (§III.A) frames BGP as "always policy-based", citing Gao
    & Rexford's stability conditions; route-analysis surveys
    (arXiv:0908.0175) study the resulting valley-free route sets.  This
    module maps an abstract topology onto customer/provider/peer
    relationships and builds the corresponding import/export
    {!Bgp_policy.Policy} chains out of the existing combinators — no
    new policy mechanism.

    Encoding (one community namespace, local significance only):
    import from a neighbor tags the route with where it was learned
    ([learned-from-customer/peer/provider]) and sets LOCAL_PREF so
    customer routes beat peer routes beat provider routes; export to a
    peer or provider rejects routes tagged peer- or provider-learned
    (the valley-free rule), while export to a customer passes
    everything.  Locally originated routes carry no tag and export
    everywhere. *)

(** How the {e neighbor} relates to this router. *)
type relation = Customer | Peer | Provider

val relation_to_string : relation -> string

val tier : int -> int
(** [tier i] = floor(log2 (i+1)): vertex 0 is the lone tier-0 core,
    1–2 are tier 1, 3–6 tier 2, and so on.  A deterministic,
    topology-agnostic stand-in for provider hierarchy depth. *)

val relation_between : self:int -> neighbor:int -> relation
(** By tier: equal tiers peer; the lower tier is the provider.  Since
    tiers are monotone in the vertex index, the customer→provider
    digraph is acyclic on every topology (a Gao–Rexford stability
    precondition). *)

val local_pref : relation -> int
(** Customer 200, peer 150, provider 100 (prefer-customer ranking,
    Gao–Rexford condition on route selection). *)

val learned_tag : relation -> Bgp_route.Community.t
(** The community stamped on import from a neighbor of this
    relation. *)

val import_policy : relation -> Bgp_policy.Policy.t
(** Tag with {!learned_tag} and set {!local_pref}. *)

val export_policy : relation -> Bgp_policy.Policy.t
(** To a customer: accept everything.  To a peer or provider: reject
    routes tagged peer- or provider-learned (valley-free export). *)

val reachable : n:int -> edges:(int * int) list -> origin:int -> bool array
(** Pure-graph oracle for the stable state: which vertices hold a route
    to [origin]'s prefix once the network with these policies
    converges.  Worklist fixed point over (vertex, learned-class) with
    the valley-free export rule; used to verify the simulated network
    against the theory it encodes. *)
