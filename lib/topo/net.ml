module Engine = Bgp_sim.Engine
module Pengine = Bgp_sim.Pengine
module Tracer = Bgp_trace.Tracer
module Channel = Bgp_netsim.Channel
module Arch = Bgp_router.Arch
module Router = Bgp_router.Router
module Rib_manager = Bgp_rib.Rib_manager
module Loc_rib = Bgp_rib.Loc_rib
module Fib = Bgp_fib.Fib
module Peer = Bgp_route.Peer
module Asn = Bgp_route.Asn
module Attrs = Bgp_route.Attrs
module Route = Bgp_route.Route
module Ipv4 = Bgp_addr.Ipv4
module Prefix = Bgp_addr.Prefix
module Metrics = Bgp_stats.Metrics
module Fsm = Bgp_fsm.Fsm

type policy_mode = Transit | Gao_rexford

let policy_mode_to_string = function
  | Transit -> "transit"
  | Gao_rexford -> "gao-rexford"

type node = {
  index : int;
  asn : Asn.t;
  addr : Ipv4.t;
  router : Router.t;
  origin : Prefix.t;
  mutable peer_recs : (int * Peer.t) list;
      (* neighbor vertex -> the Peer record naming it on this router *)
  mutable loc_changes : int;
  explored : (Prefix.t, int) Hashtbl.t;
}

type t = {
  pe : Pengine.t;
  domains : int;
  part : int array;  (* vertex -> simulation domain *)
  cut_links : int;   (* edges whose endpoints straddle domains *)
  topo : Topology.t;
  mode : policy_mode;
  nodes : node array;
  links : (int * int * Channel.t) list;
  metrics : Metrics.t;
  c_updates : Metrics.counter;
  c_msgs : Metrics.counter;
  c_withdrawn : Metrics.counter;
  c_loc : Metrics.counter;
  h_conv : Metrics.histogram;
  mutable folded : int * int * int * int;
      (* node totals already mirrored into the aggregate counters *)
}

(* Up to 1023 routers the classic RFC 1930 private block [64512 + i];
   beyond it (10k-AS scale runs) plain ASNs [1 .. n], still 16-bit.
   The split keeps every historical scenario's wire bytes identical. *)
let asn_of_index ~n i = Asn.of_int (if n <= 1023 then 64512 + i else i + 1)

let addr_of_index i = Ipv4.of_octets 10 (i lsr 8) (i land 0xff) 1

let create ?(arch = Arch.pentium3) ?(mode = Transit) ?(latency = 1e-4)
    ?(domains = 1) ?tracer ?(trace_prefix = "topo") topo =
  let n = topo.Topology.n in
  if n > 65535 then
    invalid_arg
      (Printf.sprintf "Net.create: %d routers exceed the 16-bit ASN space" n);
  if domains < 1 then invalid_arg "Net.create: domains must be >= 1";
  let pe = Pengine.create ~parts:domains () in
  (* Worker domains intern into their partition's arena shard; the
     calling domain (partition 0) stays on the default shard. *)
  Pengine.set_worker_init pe (fun k -> Attrs.Interned.bind_shard k);
  (match tracer with
  | Some tr when domains > 1 -> Tracer.set_shared tr
  | _ -> ());
  let part =
    if domains = 1 then Array.make n 0
    else Partition.assign topo ~parts:domains
  in
  let prefixes = Bgp_addr.Prefix_gen.table ~seed:topo.Topology.seed ~n () in
  let nodes =
    Array.init n (fun i ->
        let asn = asn_of_index ~n i in
        let addr = addr_of_index i in
        let trace_process =
          if domains = 1 then Printf.sprintf "%s/node-%d" trace_prefix i
          else Printf.sprintf "%s/d%d/node-%d" trace_prefix part.(i) i
        in
        { index = i; asn; addr;
          router =
            Router.create ?tracer ~trace_process
              (Engine.clock (Pengine.part pe part.(i)))
              arch ~local_asn:asn ~router_id:addr;
          origin = prefixes.(i);
          peer_recs = []; loc_changes = 0; explored = Hashtbl.create 97 })
  in
  Array.iter
    (fun nd ->
      Router.set_route_observer nd.router (fun prefix ->
          nd.loc_changes <- nd.loc_changes + 1;
          let c = Option.value ~default:0 (Hashtbl.find_opt nd.explored prefix) in
          Hashtbl.replace nd.explored prefix (c + 1)))
    nodes;
  let next_id = Array.make n 0 in
  let fresh_id u =
    let id = next_id.(u) in
    next_id.(u) <- id + 1;
    id
  in
  let policies ~self ~neighbor =
    match mode with
    | Transit -> (None, None)
    | Gao_rexford ->
      let rel = Gao_rexford.relation_between ~self ~neighbor in
      (Some (Gao_rexford.import_policy rel),
       Some (Gao_rexford.export_policy rel))
  in
  let links =
    List.map
      (fun (u, v) ->
        let ch =
          Channel.create_cross pe ~part_a:part.(u) ~part_b:part.(v) ~latency ()
        in
        let nu = nodes.(u) and nv = nodes.(v) in
        let peer_v =
          Peer.make ~id:(fresh_id u) ~asn:nv.asn ~router_id:nv.addr
            ~addr:nv.addr
        and peer_u =
          Peer.make ~id:(fresh_id v) ~asn:nu.asn ~router_id:nu.addr
            ~addr:nu.addr
        in
        let import_u, export_u = policies ~self:u ~neighbor:v
        and import_v, export_v = policies ~self:v ~neighbor:u in
        (* One session per link: the lower index listens, the higher
           opens, so the FSM never needs §6.8 collision resolution. *)
        Router.attach_peer ?import:import_u ?export:export_u nu.router
          ~peer:peer_v ~link:(Channel.endpoint ch Channel.A);
        Router.attach_peer ~active:true ?import:import_v ?export:export_v
          nv.router ~peer:peer_u ~link:(Channel.endpoint ch Channel.B);
        nu.peer_recs <- (v, peer_v) :: nu.peer_recs;
        nv.peer_recs <- (u, peer_u) :: nv.peer_recs;
        (u, v, ch))
      topo.Topology.edges
  in
  let metrics = Metrics.create () in
  let cut_links =
    List.fold_left
      (fun acc (u, v, _) -> if part.(u) <> part.(v) then acc + 1 else acc)
      0 links
  in
  { pe; domains; part; cut_links; topo; mode; nodes; links; metrics;
    c_updates = Metrics.counter metrics "topo.updates_rx";
    c_msgs = Metrics.counter metrics "topo.msgs_tx";
    c_withdrawn = Metrics.counter metrics "topo.withdrawals_rx";
    c_loc = Metrics.counter metrics "topo.loc_rib_changes";
    h_conv = Metrics.histogram metrics "topo.convergence_s";
    folded = (0, 0, 0, 0) }

let engine t = Pengine.part t.pe 0
let pengine t = t.pe
let domains t = t.domains
let partition_of t i = t.part.(i)
let cut_links t = t.cut_links
let events_of_domain t d = Pengine.dispatched t.pe d
let topology t = t.topo
let mode t = t.mode
let size t = Array.length t.nodes
let router t i = t.nodes.(i).router
let origin_prefix t i = t.nodes.(i).origin
let asn_of t i = t.nodes.(i).asn
let metrics t = t.metrics

let totals t =
  Array.fold_left
    (fun (u, m, w, l) nd ->
      let k = Router.counters nd.router in
      ( u + k.Router.updates_rx, m + k.Router.msgs_tx,
        w + k.Router.withdrawn_rx, l + nd.loc_changes ))
    (0, 0, 0, 0) t.nodes

let fold_totals t =
  let (u, m, w, l) = totals t in
  let (u0, m0, w0, l0) = t.folded in
  Metrics.incr ~by:(u - u0) t.c_updates;
  Metrics.incr ~by:(m - m0) t.c_msgs;
  Metrics.incr ~by:(w - w0) t.c_withdrawn;
  Metrics.incr ~by:(l - l0) t.c_loc;
  t.folded <- (u, m, w, l)

let wait_until t ~timeout ~what cond =
  let deadline = Pengine.now t.pe +. timeout in
  (* Run before the first check: a just-injected fault (channel close,
     link cut) breaks quiescence only once its notification event
     fires, so the predicate must never be trusted on a cold queue.
     Exponential polling step, capped: convergence times come from
     event timestamps, not from this grid.  With one domain
     [Pengine.run_until] is exactly [Engine.run ~until]; with more, the
     predicate only runs between windows, when every partition is
     parked and its writes are visible here. *)
  let rec go step =
    Pengine.run_until t.pe (Pengine.now t.pe +. step);
    if cond () then ()
    else if Pengine.now t.pe >= deadline then
      failwith
        (Printf.sprintf "Net: timed out after %.0fs waiting for %s" timeout
           what)
    else go (Float.min 2.0 (step *. 1.5))
  in
  go 0.01

let establish ?(timeout = 600.) t =
  wait_until t ~timeout ~what:"session establishment" (fun () ->
      Array.for_all
        (fun nd ->
          List.for_all
            (fun (_, p) -> Router.session_state nd.router p = Fsm.Established)
            nd.peer_recs)
        t.nodes)

let originate t i = Router.originate t.nodes.(i).router ~prefix:t.nodes.(i).origin

let withdraw_origin t i =
  Router.withdraw_origin t.nodes.(i).router ~prefix:t.nodes.(i).origin

let originate_all t = Array.iteri (fun i _ -> originate t i) t.nodes

let quiescent t =
  Array.for_all (fun nd -> Router.idle nd.router) t.nodes
  && List.for_all (fun (_, _, ch) -> Channel.in_flight ch = 0) t.links

let converge ?(timeout = 600.) ~what t =
  let t0 = Pengine.now t.pe in
  wait_until t ~timeout ~what (fun () -> quiescent t);
  let t_end =
    Array.fold_left
      (fun acc nd ->
        match (Router.counters nd.router).Router.last_transaction_at with
        | Some x when x > acc -> x
        | _ -> acc)
      t0 t.nodes
  in
  let dt = t_end -. t0 in
  Metrics.observe t.h_conv dt;
  fold_totals t;
  dt

let cut_link t u v =
  let u, v = if u < v then (u, v) else (v, u) in
  match List.find_opt (fun (a, b, _) -> a = u && b = v) t.links with
  | None -> invalid_arg (Printf.sprintf "Net.cut_link: no edge %d-%d" u v)
  | Some (_, _, ch) ->
    Channel.set_tap ch Channel.A (fun _ -> Channel.Drop);
    Channel.set_tap ch Channel.B (fun _ -> Channel.Drop);
    Channel.close ch

type node_stats = {
  ns_index : int;
  ns_asn : int;
  ns_updates_rx : int;
  ns_msgs_tx : int;
  ns_withdrawn_rx : int;
  ns_loc_changes : int;
  ns_loc_rib_size : int;
  ns_fib_size : int;
}

let node_stats t i =
  let nd = t.nodes.(i) in
  let k = Router.counters nd.router in
  { ns_index = i;
    ns_asn = Asn.to_int nd.asn;
    ns_updates_rx = k.Router.updates_rx;
    ns_msgs_tx = k.Router.msgs_tx;
    ns_withdrawn_rx = k.Router.withdrawn_rx;
    ns_loc_changes = nd.loc_changes;
    ns_loc_rib_size = Loc_rib.size (Rib_manager.loc_rib (Router.rib nd.router));
    ns_fib_size = Fib.size (Router.fib nd.router) }

let total_updates t =
  let (u, _, _, _) = totals t in
  u

let explored_paths t i prefix =
  Option.value ~default:0 (Hashtbl.find_opt t.nodes.(i).explored prefix)

let reset_exploration t =
  Array.iter (fun nd -> Hashtbl.reset nd.explored) t.nodes

let loc_rib_fingerprint t i =
  let rib = Rib_manager.loc_rib (Router.rib t.nodes.(i).router) in
  let entries =
    Loc_rib.fold
      (fun r acc ->
        let a = Route.attrs r in
        Format.asprintf "%s|%a|%s"
          (Prefix.to_string (Route.prefix r))
          Bgp_route.As_path.pp a.Attrs.as_path
          (Ipv4.to_string a.Attrs.next_hop)
        :: acc)
      rib []
  in
  String.concat "\n" (List.sort compare entries)

let fib_fingerprint t i =
  let entries = ref [] in
  Fib.iter
    (fun prefix nh ->
      entries :=
        Printf.sprintf "%s|%s|%d"
          (Prefix.to_string prefix)
          (Ipv4.to_string nh.Fib.nh_addr)
          nh.Fib.nh_port
        :: !entries)
    (Router.fib t.nodes.(i).router);
  String.concat "\n" (List.sort compare !entries)

let reachability t i j =
  let rib = Rib_manager.loc_rib (Router.rib t.nodes.(i).router) in
  Loc_rib.find rib t.nodes.(j).origin <> None
