(** A network of simulated routers: N {!Bgp_router.Router} instances
    wired pairwise over {!Bgp_netsim.Channel}s on one shared event
    loop, each with its own AS number, router id, and per-edge
    policies.

    Vertex [i] of the topology becomes AS [64512 + i] (the RFC 1930
    private range; plain AS [i + 1] when the graph outgrows the
    1023-wide block) at address [10.<i/256>.<i%256>.1], originating
    one seeded prefix ({!Bgp_addr.Prefix_gen} stream of the topology
    seed).  For every edge the lower-index side listens passively and
    the higher-index side opens the connection, so exactly one BGP
    session runs per link (the FSM does not model §6.8 collision
    resolution).

    {b Convergence} is quiescence: every router idle (no update in the
    pipeline, no queued CPU job) and no bytes in flight on any channel
    — the only events left are keepalive-class timers.  Detection polls
    the event loop, but the reported convergence {e time} is
    event-precise simulated time: last transaction completion minus
    injection start, independent of the polling grid. *)

type policy_mode =
  | Transit       (** accept-all everywhere: full-mesh transit *)
  | Gao_rexford   (** {!Gao_rexford} relationship policies per edge *)

val policy_mode_to_string : policy_mode -> string

type t

val create :
  ?arch:Bgp_router.Arch.t ->
  ?mode:policy_mode ->
  ?latency:float ->
  ?domains:int ->
  ?tracer:Bgp_trace.Tracer.t ->
  ?trace_prefix:string ->
  Topology.t ->
  t
(** Build the graph (default arch: the Pentium III software router;
    default mode [Transit]; default per-link latency 100 us).  All
    state lives on a fresh private engine; nothing is shared with any
    single-DUT harness run.

    [domains] (default 1) splits the network over that many simulation
    partitions of a {!Bgp_sim.Pengine}: vertices are assigned by
    {!Partition.assign}, same-partition links stay on the direct
    scheduling path, and cross-partition links become mailbox channels
    whose latency bounds the conservative-lookahead window.  One domain
    is byte-identical to the historical single-engine network; more
    domains run the partitions on parallel OCaml domains and converge
    to the same routes (the decision process is arrival-order
    invariant), though same-instant event interleavings — and hence
    raw message counts — may differ.

    With [tracer], every router records structured trace events under
    the process name ["<trace_prefix>/node-<i>"] (default prefix
    ["topo"]; with multiple domains ["<trace_prefix>/d<p>/node-<i>"],
    and the tracer is switched to shared mode), so a converging network
    renders as one track group per node in the Chrome trace view. *)

val engine : t -> Bgp_sim.Engine.t
(** Partition 0's engine — the only partition when [domains = 1]. *)

val pengine : t -> Bgp_sim.Pengine.t

val domains : t -> int

val partition_of : t -> int -> int
(** The simulation domain vertex [i] lives on. *)

val cut_links : t -> int
(** Links whose endpoints straddle domains (mailbox channels). *)

val events_of_domain : t -> int -> int
(** Events dispatched so far by one domain's partition — the numerator
    of the per-domain events/sec curve. *)

val topology : t -> Topology.t
val mode : t -> policy_mode
val size : t -> int
val router : t -> int -> Bgp_router.Router.t
val origin_prefix : t -> int -> Bgp_addr.Prefix.t
(** The prefix vertex [i] originates. *)

val asn_of : t -> int -> Bgp_route.Asn.t

val metrics : t -> Bgp_stats.Metrics.t
(** Aggregate network-level registry: [topo.updates_rx],
    [topo.msgs_tx], [topo.withdrawals_rx], [topo.loc_rib_changes]
    counters (summed over nodes at collection points) and the
    [topo.convergence_s] histogram (one observation per
    {!converge}). *)

val establish : ?timeout:float -> t -> unit
(** Bring every session to Established (default timeout 600 virtual
    seconds).  @raise Failure on timeout. *)

val originate : t -> int -> unit
(** Vertex [i] announces its origin prefix. *)

val withdraw_origin : t -> int -> unit
val originate_all : t -> unit

val quiescent : t -> bool

val converge : ?timeout:float -> what:string -> t -> float
(** Drive the event loop to quiescence and return the convergence time
    in simulated seconds (last transaction completion − injection
    start; 0 when the episode moved nothing).  Also observed into the
    [topo.convergence_s] histogram and folded into the aggregate
    counters.  @raise Failure on timeout (default 600 virtual
    seconds). *)

val cut_link : t -> int -> int -> unit
(** Fail the edge [u]–[v]: install {!Bgp_netsim.Channel} drop taps on
    both directions (any bytes already serialized die on the wire,
    faults-style) and close the channel, so both ends detect the loss
    and start path hunting.  @raise Invalid_argument if no such edge
    exists. *)

(** {1 Measurement} *)

type node_stats = {
  ns_index : int;
  ns_asn : int;
  ns_updates_rx : int;
  ns_msgs_tx : int;
  ns_withdrawn_rx : int;   (** prefixes withdrawn in received UPDATEs *)
  ns_loc_changes : int;    (** Loc-RIB best-route changes *)
  ns_loc_rib_size : int;
  ns_fib_size : int;
}

val node_stats : t -> int -> node_stats
val total_updates : t -> int
(** Sum of [ns_updates_rx] — the update-amplification numerator. *)

val explored_paths : t -> int -> Bgp_addr.Prefix.t -> int
(** Loc-RIB changes vertex [i] went through for [prefix] since the
    last {!reset_exploration} — the path-exploration count. *)

val reset_exploration : t -> unit
(** Zero the per-(vertex, prefix) exploration counters; done at an
    episode boundary (e.g. post-convergence, before a link cut). *)

val loc_rib_fingerprint : t -> int -> string
(** Canonical rendering of vertex [i]'s Loc-RIB — (prefix, AS path,
    next hop) sorted by prefix — for determinism comparisons. *)

val fib_fingerprint : t -> int -> string
(** Canonical rendering of vertex [i]'s FIB — (prefix, next hop, port)
    sorted — the second leg of the single- vs multi-domain
    equivalence check. *)

val reachability : t -> int -> int -> bool
(** [reachability t i j]: does vertex [i] hold a route to vertex [j]'s
    origin prefix? *)
