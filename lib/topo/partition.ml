(* Greedy BFS edge-cut partitioner.

   Deterministic and linear-ish (O(n * parts + E)): visit vertices in
   BFS order from vertex 0 (restarting from the lowest unvisited vertex
   per component) and put each one where most of its already-placed
   neighbors live, subject to a balance cap of ceil(n / parts).  Ties
   break toward the smaller partition, then the lower index.  BFS order
   keeps each partition contiguous-ish, which is what bounds the edge
   cut: a random assignment of a BA graph cuts ~(1 - 1/P) of all edges,
   while BFS growth keeps most of each vertex's (already-seen) edges
   internal.  No attempt at optimality — the simulation only needs the
   cut small enough that mailbox traffic does not dominate, and the
   assignment deterministic so partitioned runs are reproducible. *)

let assign topo ~parts =
  let n = topo.Topology.n in
  if parts < 1 then invalid_arg "Partition.assign: parts must be >= 1";
  if parts > n then
    invalid_arg
      (Printf.sprintf "Partition.assign: %d partitions for %d vertices" parts n);
  let part = Array.make n (-1) in
  if parts = 1 then Array.map (fun _ -> 0) part
  else begin
    let adj = Topology.adjacency topo in
    let cap = (n + parts - 1) / parts in
    let size = Array.make parts 0 in
    let score = Array.make parts 0 in
    let place v =
      Array.fill score 0 parts 0;
      Array.iter
        (fun u -> if part.(u) >= 0 then score.(part.(u)) <- score.(part.(u)) + 1)
        adj.(v);
      let best = ref (-1) in
      for p = 0 to parts - 1 do
        if size.(p) < cap then
          if
            !best < 0
            || score.(p) > score.(!best)
            || (score.(p) = score.(!best) && size.(p) < size.(!best))
          then best := p
      done;
      part.(v) <- !best;
      size.(!best) <- size.(!best) + 1
    in
    let q = Queue.create () in
    for s = 0 to n - 1 do
      if part.(s) < 0 then begin
        place s;
        Queue.add s q;
        while not (Queue.is_empty q) do
          let v = Queue.pop q in
          Array.iter
            (fun u ->
              if part.(u) < 0 then begin
                place u;
                Queue.add u q
              end)
            adj.(v)
        done
      end
    done;
    part
  end

let cut_edges topo part =
  List.fold_left
    (fun acc (u, v) -> if part.(u) <> part.(v) then acc + 1 else acc)
    0 topo.Topology.edges

let sizes part ~parts =
  let size = Array.make parts 0 in
  Array.iter (fun p -> size.(p) <- size.(p) + 1) part;
  size
