(** Deterministic greedy edge-cut partitioner for simulation domains.

    Vertices are visited in BFS order (from vertex 0, restarting per
    component) and each goes to the partition holding most of its
    already-placed neighbors, under a balance cap of [ceil n/parts];
    ties break toward the smaller partition, then the lower index.
    Pure function of the topology, so a partitioned run is as
    reproducible as a single-domain one. *)

val assign : Topology.t -> parts:int -> int array
(** [assign topo ~parts] maps each vertex to a partition in
    [0 .. parts-1]; every partition gets at most [ceil n/parts]
    vertices (a partition may end up empty when [n] is far from a
    multiple of [parts] — its domain simply idles).
    @raise Invalid_argument when [parts < 1] or [parts > n]. *)

val cut_edges : Topology.t -> int array -> int
(** Edges whose endpoints land in different partitions — each becomes a
    cross-domain channel (mailbox traffic); the rest stay direct. *)

val sizes : int array -> parts:int -> int array
(** Per-partition vertex counts of an assignment. *)
