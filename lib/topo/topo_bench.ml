module Arch = Bgp_router.Arch
module Json = Bgp_stats.Json

type convergence_run = {
  cr_kind : Topology.kind;
  cr_n : int;
  cr_seed : int;
  cr_mode : Net.policy_mode;
  cr_arch : string;
  cr_edges : int;
  cr_announce_s : float;
  cr_withdraw_s : float;
  cr_announce_updates : int;
  cr_withdraw_updates : int;
  cr_msgs_tx : int;
  cr_reached : int;
  cr_verified : (unit, string) result;
}

let count_true = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0

let sum_stats net n f =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + f (Net.node_stats net i)
  done;
  !acc

let run_convergence ?(arch = Arch.pentium3) ?(mode = Net.Transit) ?(seed = 42)
    ?tracer ~kind ~n () =
  let topo = Topology.make ~seed kind ~n in
  let net =
    Net.create ~arch ~mode ?tracer
      ~trace_prefix:(Printf.sprintf "%s-%d" (Topology.kind_to_string kind) n)
      topo
  in
  Net.establish net;
  let u0 = Net.total_updates net in
  Net.originate net 0;
  let announce_s = Net.converge ~what:"announce convergence" net in
  let u1 = Net.total_updates net in
  let expected =
    match mode with
    | Net.Transit -> Array.make n true
    | Net.Gao_rexford ->
      Gao_rexford.reachable ~n ~edges:topo.Topology.edges ~origin:0
  in
  let got = Array.init n (fun i -> Net.reachability net i 0) in
  let verified_reach =
    let bad = ref None in
    Array.iteri
      (fun i g -> if !bad = None && g <> expected.(i) then bad := Some i)
      got;
    match !bad with
    | Some i ->
      Error
        (Printf.sprintf
           "node %d's reachability disagrees with the policy oracle" i)
    | None -> Ok ()
  in
  Net.withdraw_origin net 0;
  let withdraw_s = Net.converge ~what:"withdraw convergence" net in
  let u2 = Net.total_updates net in
  let verified =
    match verified_reach with
    | Error _ as e -> e
    | Ok () ->
      let leftover = ref None in
      for i = 1 to n - 1 do
        if !leftover = None && Net.reachability net i 0 then leftover := Some i
      done;
      (match !leftover with
      | Some i ->
        Error (Printf.sprintf "node %d still holds the route post-withdraw" i)
      | None -> Ok ())
  in
  { cr_kind = kind; cr_n = n; cr_seed = seed; cr_mode = mode;
    cr_arch = arch.Arch.name; cr_edges = Topology.edge_count topo;
    cr_announce_s = announce_s; cr_withdraw_s = withdraw_s;
    cr_announce_updates = u1 - u0; cr_withdraw_updates = u2 - u1;
    cr_msgs_tx = sum_stats net n (fun s -> s.Net.ns_msgs_tx);
    cr_reached = count_true got; cr_verified = verified }

let sweep ?arch ?mode ?seed ?tracer ~kind ~sizes () =
  List.map (fun n -> run_convergence ?arch ?mode ?seed ?tracer ~kind ~n ()) sizes

(* ------------------------------------------------------------------ *)
(* Scenario 12: link failure                                           *)
(* ------------------------------------------------------------------ *)

type link_failure_run = {
  lf_kind : Topology.kind;
  lf_n : int;
  lf_seed : int;
  lf_mode : Net.policy_mode;
  lf_arch : string;
  lf_cut_u : int;
  lf_cut_v : int;
  lf_partitioned : bool;
  lf_baseline_s : float;
  lf_heal_s : float;
  lf_affected : int;
  lf_max_explored : int;
  lf_mean_explored : float;
  lf_withdrawn_rx : int;
  lf_verified : (unit, string) result;
}

let components ~n ~edges =
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  let comp = Array.make n (-1) in
  let label = ref 0 in
  for v = 0 to n - 1 do
    if comp.(v) < 0 then begin
      let q = Queue.create () in
      Queue.add v q;
      comp.(v) <- !label;
      while not (Queue.is_empty q) do
        let x = Queue.pop q in
        List.iter
          (fun y ->
            if comp.(y) < 0 then begin
              comp.(y) <- !label;
              Queue.add y q
            end)
          adj.(x)
      done;
      incr label
    end
  done;
  comp

let run_link_failure ?(arch = Arch.pentium3) ?(mode = Net.Transit)
    ?(seed = 42) ?cut ?tracer ~kind ~n () =
  let topo = Topology.make ~seed kind ~n in
  let edges = topo.Topology.edges in
  let without e = List.filter (fun e' -> e' <> e) edges in
  let connected_without e =
    Array.for_all (fun c -> c = 0) (components ~n ~edges:(without e))
  in
  let cut_edge =
    match cut with
    | Some (u, v) ->
      let u, v = if u < v then (u, v) else (v, u) in
      if not (Topology.is_edge topo u v) then
        invalid_arg (Printf.sprintf "Topo_bench: no edge %d-%d to cut" u v);
      (u, v)
    | None -> (
      (* Prefer a cut the graph survives, so the run measures healing;
         on trees every edge partitions and we measure the flush. *)
      match List.find_opt connected_without edges with
      | Some e -> e
      | None -> List.hd edges)
  in
  let partitioned = not (connected_without cut_edge) in
  let net =
    Net.create ~arch ~mode ?tracer
      ~trace_prefix:
        (Printf.sprintf "cut-%s-%d" (Topology.kind_to_string kind) n)
      topo
  in
  Net.establish net;
  Net.originate_all net;
  let baseline_s = Net.converge ~what:"baseline convergence" net in
  let w0 = sum_stats net n (fun s -> s.Net.ns_withdrawn_rx) in
  Net.reset_exploration net;
  let cu, cv = cut_edge in
  Net.cut_link net cu cv;
  let heal_s = Net.converge ~what:"post-cut re-convergence" net in
  let w1 = sum_stats net n (fun s -> s.Net.ns_withdrawn_rx) in
  let affected = Hashtbl.create 17 in
  let counts = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let c = Net.explored_paths net i (Net.origin_prefix net j) in
      if c > 0 then begin
        Hashtbl.replace affected j ();
        counts := c :: !counts
      end
    done
  done;
  let max_explored = List.fold_left max 0 !counts in
  let mean_explored =
    match !counts with
    | [] -> 0.0
    | cs ->
      float_of_int (List.fold_left ( + ) 0 cs) /. float_of_int (List.length cs)
  in
  let reduced = without cut_edge in
  let comp = components ~n ~edges:reduced in
  let expected j =
    match mode with
    | Net.Transit -> Array.init n (fun i -> comp.(i) = comp.(j))
    | Net.Gao_rexford -> Gao_rexford.reachable ~n ~edges:reduced ~origin:j
  in
  let verified =
    let bad = ref None in
    for j = 0 to n - 1 do
      if !bad = None then begin
        let exp = expected j in
        for i = 0 to n - 1 do
          if !bad = None && Net.reachability net i j <> exp.(i) then
            bad := Some (i, j)
        done
      end
    done;
    match !bad with
    | Some (i, j) ->
      Error
        (Printf.sprintf
           "node %d's route to node %d's prefix disagrees with the post-cut \
            oracle"
           i j)
    | None -> Ok ()
  in
  { lf_kind = kind; lf_n = n; lf_seed = seed; lf_mode = mode;
    lf_arch = arch.Arch.name; lf_cut_u = cu; lf_cut_v = cv;
    lf_partitioned = partitioned; lf_baseline_s = baseline_s;
    lf_heal_s = heal_s; lf_affected = Hashtbl.length affected;
    lf_max_explored = max_explored; lf_mean_explored = mean_explored;
    lf_withdrawn_rx = w1 - w0; lf_verified = verified }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let verified_str = function Ok () -> "ok" | Error e -> "FAIL: " ^ e

let render_convergence_runs runs =
  let b = Buffer.create 1024 in
  (match runs with
  | [] -> Buffer.add_string b "no runs\n"
  | r0 :: _ ->
    Buffer.add_string b
      (Printf.sprintf
         "Scenario 11: single-origin convergence — %s topology, %s policies, \
          %s\n"
         (Topology.kind_to_string r0.cr_kind)
         (Net.policy_mode_to_string r0.cr_mode)
         r0.cr_arch);
    Buffer.add_string b
      "    n  edges  announce(s)  withdraw(s)  upd(ann)  upd(wd)  reached  \
       check\n";
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf "%5d  %5d  %11.6f  %11.6f  %8d  %7d  %7d  %s\n"
             r.cr_n r.cr_edges r.cr_announce_s r.cr_withdraw_s
             r.cr_announce_updates r.cr_withdraw_updates r.cr_reached
             (verified_str r.cr_verified)))
      runs);
  Buffer.contents b

let render_link_failure r =
  String.concat "\n"
    [ Printf.sprintf
        "Scenario 12: link failure — %s topology, n=%d, %s policies, %s"
        (Topology.kind_to_string r.lf_kind)
        r.lf_n
        (Net.policy_mode_to_string r.lf_mode)
        r.lf_arch;
      Printf.sprintf "  cut edge            %d-%d%s" r.lf_cut_u r.lf_cut_v
        (if r.lf_partitioned then "  (partitions the graph)" else "");
      Printf.sprintf "  baseline convergence %11.6f s" r.lf_baseline_s;
      Printf.sprintf "  re-convergence       %11.6f s" r.lf_heal_s;
      Printf.sprintf "  affected prefixes    %d" r.lf_affected;
      Printf.sprintf "  paths explored       max %d, mean %.2f"
        r.lf_max_explored r.lf_mean_explored;
      Printf.sprintf "  withdrawals received %d" r.lf_withdrawn_rx;
      Printf.sprintf "  check                %s" (verified_str r.lf_verified);
      "" ]

let result_fields = function
  | Ok () -> [ ("verified", Json.Bool true) ]
  | Error e -> [ ("verified", Json.Bool false); ("error", Json.Str e) ]

let convergence_run_json r =
  Json.Obj
    ([ ("n", Json.Int r.cr_n);
       ("edges", Json.Int r.cr_edges);
       ("announce_s", Json.Float r.cr_announce_s);
       ("withdraw_s", Json.Float r.cr_withdraw_s);
       ("announce_updates", Json.Int r.cr_announce_updates);
       ("withdraw_updates", Json.Int r.cr_withdraw_updates);
       ("msgs_tx", Json.Int r.cr_msgs_tx);
       ("reached", Json.Int r.cr_reached) ]
    @ result_fields r.cr_verified)

let convergence_runs_json runs =
  let header =
    match runs with
    | [] -> []
    | r :: _ ->
      [ ("kind", Json.Str (Topology.kind_to_string r.cr_kind));
        ("seed", Json.Int r.cr_seed);
        ("mode", Json.Str (Net.policy_mode_to_string r.cr_mode));
        ("arch", Json.Str r.cr_arch) ]
  in
  Json.Obj
    ([ ("scenario", Json.Int 11); ("name", Json.Str "topo-convergence") ]
    @ header
    @ [ ("runs", Json.List (List.map convergence_run_json runs)) ])

let link_failure_json r =
  Json.Obj
    ([ ("scenario", Json.Int 12);
       ("name", Json.Str "topo-link-failure");
       ("kind", Json.Str (Topology.kind_to_string r.lf_kind));
       ("n", Json.Int r.lf_n);
       ("seed", Json.Int r.lf_seed);
       ("mode", Json.Str (Net.policy_mode_to_string r.lf_mode));
       ("arch", Json.Str r.lf_arch);
       ("cut", Json.List [ Json.Int r.lf_cut_u; Json.Int r.lf_cut_v ]);
       ("partitioned", Json.Bool r.lf_partitioned);
       ("baseline_s", Json.Float r.lf_baseline_s);
       ("heal_s", Json.Float r.lf_heal_s);
       ("affected_prefixes", Json.Int r.lf_affected);
       ("max_explored", Json.Int r.lf_max_explored);
       ("mean_explored", Json.Float r.lf_mean_explored);
       ("withdrawn_rx", Json.Int r.lf_withdrawn_rx) ]
    @ result_fields r.lf_verified)

(* ------------------------------------------------------------------ *)
(* Scenario 15: partitioned scale runs                                 *)
(* ------------------------------------------------------------------ *)

type scale_run = {
  sc_kind : Topology.kind;
  sc_n : int;
  sc_seed : int;
  sc_domains : int;
  sc_edges : int;
  sc_cut_links : int;
  sc_domain_sizes : int array;
  sc_announce_s : float;  (* simulated convergence time *)
  sc_withdraw_s : float;
  sc_wall_s : float;  (* wall clock, establish through withdraw *)
  sc_domain_events : int array;  (* dispatched per domain *)
  sc_reached : int;
  sc_fingerprint : string;  (* digest over all Loc-RIBs and FIBs *)
  sc_verified : (unit, string) result;
}

let sc_events r = Array.fold_left ( + ) 0 r.sc_domain_events

let sc_events_per_sec r =
  if r.sc_wall_s <= 0.0 then 0.0
  else float_of_int (sc_events r) /. r.sc_wall_s

(* Single-origin convergence at scale: establish, announce from vertex
   0, converge, fingerprint every node's Loc-RIB and FIB, withdraw,
   converge.  The digest is what the domain-count equivalence gate
   compares: same graph, different [domains], same digest.  Unlike
   scenario 11 this never goes O(n^2): verification is reachability of
   the one origin, and the heavy all-pairs checks stay in the small
   scenarios.

   Default policies are Gao-Rexford, not Transit: valley-free export
   bounds withdrawal path hunting (and is the realistic model for an
   AS-level graph).  Under accept-all Transit a BA graph's withdrawal
   phase explores alternate paths combinatorially — ~500k events at
   n=100 and growing fast — so Transit at scale is a measurement of
   path hunting, not of the engine. *)
let run_scale ?(arch = Arch.pentium3) ?(mode = Net.Gao_rexford) ?(seed = 42)
    ?(domains = 1) ?(timeout = 3600.) ~kind ~n () =
  let topo = Topology.make ~seed kind ~n in
  let net = Net.create ~arch ~mode ~domains topo in
  let wall0 = Unix.gettimeofday () in
  Net.establish ~timeout net;
  Net.originate net 0;
  let announce_s = Net.converge ~timeout ~what:"announce convergence" net in
  let expected =
    match mode with
    | Net.Transit -> Array.make n true
    | Net.Gao_rexford ->
      Gao_rexford.reachable ~n ~edges:topo.Topology.edges ~origin:0
  in
  let reached = ref 0 in
  let bad = ref None in
  for i = 0 to n - 1 do
    let got = Net.reachability net i 0 in
    if got then incr reached;
    if !bad = None && got <> expected.(i) then bad := Some i
  done;
  let verified =
    match !bad with
    | Some i ->
      Error
        (Printf.sprintf
           "node %d's reachability disagrees with the policy oracle" i)
    | None -> Ok ()
  in
  let fingerprint =
    let ctx = Buffer.create (64 * n) in
    for i = 0 to n - 1 do
      Buffer.add_string ctx (Net.loc_rib_fingerprint net i);
      Buffer.add_char ctx '\n';
      Buffer.add_string ctx (Net.fib_fingerprint net i);
      Buffer.add_char ctx '\n'
    done;
    Digest.to_hex (Digest.string (Buffer.contents ctx))
  in
  Net.withdraw_origin net 0;
  let withdraw_s = Net.converge ~timeout ~what:"withdraw convergence" net in
  let wall_s = Unix.gettimeofday () -. wall0 in
  let part = Array.init n (fun i -> Net.partition_of net i) in
  { sc_kind = kind; sc_n = n; sc_seed = seed; sc_domains = domains;
    sc_edges = Topology.edge_count topo; sc_cut_links = Net.cut_links net;
    sc_domain_sizes = Partition.sizes part ~parts:domains;
    sc_announce_s = announce_s; sc_withdraw_s = withdraw_s; sc_wall_s = wall_s;
    sc_domain_events =
      Array.init domains (fun d -> Net.events_of_domain net d);
    sc_reached = !reached; sc_fingerprint = fingerprint;
    sc_verified = verified }

let render_scale_runs runs =
  let b = Buffer.create 1024 in
  (match runs with
  | [] -> Buffer.add_string b "no runs\n"
  | r0 :: _ ->
    Buffer.add_string b
      (Printf.sprintf
         "Scenario 15: partitioned scale — %s topology, seed %d\n"
         (Topology.kind_to_string r0.sc_kind)
         r0.sc_seed);
    Buffer.add_string b
      "    n  domains  edges    cut  announce(s)  withdraw(s)   wall(s)  \
       events  ev/s(wall)  fingerprint        check\n";
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf
             "%5d  %7d  %5d  %5d  %11.6f  %11.6f  %8.2f  %7d  %10.0f  %s  %s\n"
             r.sc_n r.sc_domains r.sc_edges r.sc_cut_links r.sc_announce_s
             r.sc_withdraw_s r.sc_wall_s (sc_events r) (sc_events_per_sec r)
             (String.sub r.sc_fingerprint 0 16)
             (verified_str r.sc_verified)))
      runs);
  Buffer.contents b

let scale_run_json r =
  Json.Obj
    ([ ("n", Json.Int r.sc_n);
       ("domains", Json.Int r.sc_domains);
       ("edges", Json.Int r.sc_edges);
       ("cut_links", Json.Int r.sc_cut_links);
       ("domain_sizes",
        Json.List
          (Array.to_list (Array.map (fun s -> Json.Int s) r.sc_domain_sizes)));
       ("announce_s", Json.Float r.sc_announce_s);
       ("withdraw_s", Json.Float r.sc_withdraw_s);
       ("wall_s", Json.Float r.sc_wall_s);
       ("events", Json.Int (sc_events r));
       ("events_per_sec_wall", Json.Float (sc_events_per_sec r));
       ("domain_events",
        Json.List
          (Array.to_list (Array.map (fun e -> Json.Int e) r.sc_domain_events)));
       ("reached", Json.Int r.sc_reached);
       ("fingerprint", Json.Str r.sc_fingerprint) ]
    @ result_fields r.sc_verified)

let scale_runs_json runs =
  let header =
    match runs with
    | [] -> []
    | r :: _ ->
      [ ("kind", Json.Str (Topology.kind_to_string r.sc_kind));
        ("seed", Json.Int r.sc_seed) ]
  in
  Json.Obj
    ([ ("scenario", Json.Int 15); ("name", Json.Str "topo-scale") ]
    @ header
    @ [ ("runs", Json.List (List.map scale_run_json runs)) ])
