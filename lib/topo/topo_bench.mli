(** The multi-router scenarios (11, 12, and 15) and their reporting.

    Scenario 11 — {e convergence}: one origin announces its prefix into
    an established graph, the network runs to quiescence, then the
    origin withdraws and the network drains again.  Reported per
    topology size, so a sweep exposes how convergence time and update
    amplification grow with the graph.

    Scenario 12 — {e link failure}: every node originates, the network
    converges, then one link is cut (drop taps + channel close, as in
    the fault scenarios) and the re-convergence is measured together
    with the path-hunting statistics — how many Loc-RIB changes each
    (node, prefix) pair went through while healing.

    Both runs verify the final state against a pure oracle: full
    component reachability under [Transit], the {!Gao_rexford.reachable}
    valley-free fixed point under [Gao_rexford].

    Scenario 15 — {e partitioned scale}: scenario 11's single-origin
    episode on large graphs (1k–10k nodes), run on [domains] parallel
    simulation partitions ({!Net.create}).  Reports per-domain event
    throughput and a digest of every node's converged Loc-RIB and FIB,
    which must be independent of the domain count. *)

type convergence_run = {
  cr_kind : Topology.kind;
  cr_n : int;
  cr_seed : int;
  cr_mode : Net.policy_mode;
  cr_arch : string;
  cr_edges : int;
  cr_announce_s : float;   (** quiescence time after the announce *)
  cr_withdraw_s : float;   (** quiescence time after the withdraw *)
  cr_announce_updates : int;  (** UPDATEs received network-wide, announce episode *)
  cr_withdraw_updates : int;
  cr_msgs_tx : int;        (** total messages sent over the whole run *)
  cr_reached : int;        (** nodes holding the route after the announce *)
  cr_verified : (unit, string) result;
}

val run_convergence :
  ?arch:Bgp_router.Arch.t ->
  ?mode:Net.policy_mode ->
  ?seed:int ->
  ?tracer:Bgp_trace.Tracer.t ->
  kind:Topology.kind ->
  n:int ->
  unit ->
  convergence_run
(** Scenario 11 at one size.  Defaults: Pentium III, [Transit],
    seed 42.  Vertex 0 is the origin.  [tracer] records per-node
    structured trace events under ["<kind>-<n>/node-<i>"]. *)

val sweep :
  ?arch:Bgp_router.Arch.t ->
  ?mode:Net.policy_mode ->
  ?seed:int ->
  ?tracer:Bgp_trace.Tracer.t ->
  kind:Topology.kind ->
  sizes:int list ->
  unit ->
  convergence_run list
(** Scenario 11 over a list of node counts (the paper's method of
    plotting metric-vs-load, applied to graph size). *)

type link_failure_run = {
  lf_kind : Topology.kind;
  lf_n : int;
  lf_seed : int;
  lf_mode : Net.policy_mode;
  lf_arch : string;
  lf_cut_u : int;
  lf_cut_v : int;
  lf_partitioned : bool;   (** the cut disconnects the graph *)
  lf_baseline_s : float;   (** full-origination convergence before the cut *)
  lf_heal_s : float;       (** re-convergence after the cut *)
  lf_affected : int;       (** prefixes that saw any Loc-RIB change while healing *)
  lf_max_explored : int;   (** max path-exploration count over (node, prefix) *)
  lf_mean_explored : float;(** mean over the explored (node, prefix) pairs *)
  lf_withdrawn_rx : int;   (** prefixes withdrawn in UPDATEs during healing *)
  lf_verified : (unit, string) result;
}

val run_link_failure :
  ?arch:Bgp_router.Arch.t ->
  ?mode:Net.policy_mode ->
  ?seed:int ->
  ?cut:int * int ->
  ?tracer:Bgp_trace.Tracer.t ->
  kind:Topology.kind ->
  n:int ->
  unit ->
  link_failure_run
(** Scenario 12.  Without [cut], fails the first edge whose removal
    keeps the graph connected (falling back to the first edge on trees,
    where the run then verifies the partition's unreachability instead
    of healing).
    @raise Invalid_argument if [cut] names a non-edge. *)

type scale_run = {
  sc_kind : Topology.kind;
  sc_n : int;
  sc_seed : int;
  sc_domains : int;
  sc_edges : int;
  sc_cut_links : int;        (** cross-domain links (mailbox channels) *)
  sc_domain_sizes : int array;
  sc_announce_s : float;     (** simulated announce-convergence time *)
  sc_withdraw_s : float;
  sc_wall_s : float;         (** wall clock, establish through withdraw *)
  sc_domain_events : int array;  (** events dispatched per domain *)
  sc_reached : int;
  sc_fingerprint : string;
      (** hex digest over every node's Loc-RIB and FIB after the
          announce converged — equal across domain counts *)
  sc_verified : (unit, string) result;
}

val sc_events : scale_run -> int
(** Total events dispatched, all domains. *)

val sc_events_per_sec : scale_run -> float
(** {!sc_events} over the wall clock. *)

val run_scale :
  ?arch:Bgp_router.Arch.t ->
  ?mode:Net.policy_mode ->
  ?seed:int ->
  ?domains:int ->
  ?timeout:float ->
  kind:Topology.kind ->
  n:int ->
  unit ->
  scale_run
(** Scenario 15: establish, announce from vertex 0, converge,
    fingerprint, withdraw, converge — with every per-node check O(n),
    so 10k-node graphs stay tractable.  Defaults: Pentium III,
    [Gao_rexford] (valley-free export bounds withdrawal path hunting;
    accept-all [Transit] explodes combinatorially at scale), seed 42,
    1 domain, 3600 simulated-seconds timeout. *)

(** {1 Reporting} *)

val render_convergence_runs : convergence_run list -> string
val render_link_failure : link_failure_run -> string
val render_scale_runs : scale_run list -> string

val convergence_runs_json : convergence_run list -> Bgp_stats.Json.t
val link_failure_json : link_failure_run -> Bgp_stats.Json.t
val scale_runs_json : scale_run list -> Bgp_stats.Json.t
