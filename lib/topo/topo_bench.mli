(** The two multi-router scenarios (11 and 12) and their reporting.

    Scenario 11 — {e convergence}: one origin announces its prefix into
    an established graph, the network runs to quiescence, then the
    origin withdraws and the network drains again.  Reported per
    topology size, so a sweep exposes how convergence time and update
    amplification grow with the graph.

    Scenario 12 — {e link failure}: every node originates, the network
    converges, then one link is cut (drop taps + channel close, as in
    the fault scenarios) and the re-convergence is measured together
    with the path-hunting statistics — how many Loc-RIB changes each
    (node, prefix) pair went through while healing.

    Both runs verify the final state against a pure oracle: full
    component reachability under [Transit], the {!Gao_rexford.reachable}
    valley-free fixed point under [Gao_rexford]. *)

type convergence_run = {
  cr_kind : Topology.kind;
  cr_n : int;
  cr_seed : int;
  cr_mode : Net.policy_mode;
  cr_arch : string;
  cr_edges : int;
  cr_announce_s : float;   (** quiescence time after the announce *)
  cr_withdraw_s : float;   (** quiescence time after the withdraw *)
  cr_announce_updates : int;  (** UPDATEs received network-wide, announce episode *)
  cr_withdraw_updates : int;
  cr_msgs_tx : int;        (** total messages sent over the whole run *)
  cr_reached : int;        (** nodes holding the route after the announce *)
  cr_verified : (unit, string) result;
}

val run_convergence :
  ?arch:Bgp_router.Arch.t ->
  ?mode:Net.policy_mode ->
  ?seed:int ->
  ?tracer:Bgp_trace.Tracer.t ->
  kind:Topology.kind ->
  n:int ->
  unit ->
  convergence_run
(** Scenario 11 at one size.  Defaults: Pentium III, [Transit],
    seed 42.  Vertex 0 is the origin.  [tracer] records per-node
    structured trace events under ["<kind>-<n>/node-<i>"]. *)

val sweep :
  ?arch:Bgp_router.Arch.t ->
  ?mode:Net.policy_mode ->
  ?seed:int ->
  ?tracer:Bgp_trace.Tracer.t ->
  kind:Topology.kind ->
  sizes:int list ->
  unit ->
  convergence_run list
(** Scenario 11 over a list of node counts (the paper's method of
    plotting metric-vs-load, applied to graph size). *)

type link_failure_run = {
  lf_kind : Topology.kind;
  lf_n : int;
  lf_seed : int;
  lf_mode : Net.policy_mode;
  lf_arch : string;
  lf_cut_u : int;
  lf_cut_v : int;
  lf_partitioned : bool;   (** the cut disconnects the graph *)
  lf_baseline_s : float;   (** full-origination convergence before the cut *)
  lf_heal_s : float;       (** re-convergence after the cut *)
  lf_affected : int;       (** prefixes that saw any Loc-RIB change while healing *)
  lf_max_explored : int;   (** max path-exploration count over (node, prefix) *)
  lf_mean_explored : float;(** mean over the explored (node, prefix) pairs *)
  lf_withdrawn_rx : int;   (** prefixes withdrawn in UPDATEs during healing *)
  lf_verified : (unit, string) result;
}

val run_link_failure :
  ?arch:Bgp_router.Arch.t ->
  ?mode:Net.policy_mode ->
  ?seed:int ->
  ?cut:int * int ->
  ?tracer:Bgp_trace.Tracer.t ->
  kind:Topology.kind ->
  n:int ->
  unit ->
  link_failure_run
(** Scenario 12.  Without [cut], fails the first edge whose removal
    keeps the graph connected (falling back to the first edge on trees,
    where the run then verifies the partition's unreachability instead
    of healing).
    @raise Invalid_argument if [cut] names a non-edge. *)

(** {1 Reporting} *)

val render_convergence_runs : convergence_run list -> string
val render_link_failure : link_failure_run -> string

val convergence_runs_json : convergence_run list -> Bgp_stats.Json.t
val link_failure_json : link_failure_run -> Bgp_stats.Json.t
