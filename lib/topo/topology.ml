type kind = Line | Ring | Star | Grid | Clique | Scale_free

let kind_to_string = function
  | Line -> "line"
  | Ring -> "ring"
  | Star -> "star"
  | Grid -> "grid"
  | Clique -> "clique"
  | Scale_free -> "scale-free"

let all_kinds = [ Line; Ring; Star; Grid; Clique; Scale_free ]

let kind_of_string s =
  match s with
  | "ba" -> Some Scale_free  (* Barabási–Albert, the common shorthand *)
  | s -> List.find_opt (fun k -> kind_to_string k = s) all_kinds

type t = { kind : kind; n : int; seed : int; edges : (int * int) list }

let norm (u, v) = if u < v then (u, v) else (v, u)

let dedup_sort edges =
  List.sort_uniq compare (List.map norm edges)

let line n = List.init (n - 1) (fun i -> (i, i + 1))

let ring n = if n = 2 then line n else (0, n - 1) :: line n

let star n = List.init (n - 1) (fun i -> (0, i + 1))

(* Row-major grid, width ceil(sqrt n); right and down neighbors. *)
let grid n =
  let w = int_of_float (Float.ceil (sqrt (float_of_int n))) in
  let edges = ref [] in
  for i = 0 to n - 1 do
    if (i + 1) mod w <> 0 && i + 1 < n then edges := (i, i + 1) :: !edges;
    if i + w < n then edges := (i, i + w) :: !edges
  done;
  !edges

let clique n =
  List.concat (List.init n (fun u -> List.init (n - 1 - u) (fun k -> (u, u + 1 + k))))

(* Barabási–Albert preferential attachment, m = 2: a seed triangle,
   then each vertex v >= 3 wires to 2 distinct earlier vertices drawn
   from the degree-weighted endpoint bag.

   The construction used to rebuild the bag per vertex from the edge
   list — O(n^2) total, minutes at 10k vertices.  This version keeps
   the endpoint bag as a flat array and maps each draw through an index
   permutation so the RNG stream (and hence every graph ever generated
   from a seed) is bit-identical to the historical fold: the old bag
   enumerated the edge list newest-first with the seed triangle at the
   tail in literal order, i.e. exactly [ends] read backwards two
   endpoints at a time, provided the triangle is stored reversed.
   old_bag[i] = ends[2*(k-1 - i/2) + (i mod 2)] for k edges. *)
let scale_free ~seed n =
  if n <= 3 then clique n
  else begin
    let rng = Bgp_sim.Rng.create (Bgp_addr.Prefix_gen.mix64 (seed lxor 0x7090)) in
    let n_edges = 3 + (2 * (n - 3)) in
    let ends = Array.make (2 * n_edges) 0 in
    let k = ref 0 in
    let append u v =
      ends.(2 * !k) <- u;
      ends.((2 * !k) + 1) <- v;
      incr k
    in
    (* Seed triangle, reversed (see above). *)
    append 1 2;
    append 0 2;
    append 0 1;
    for v = 3 to n - 1 do
      let targets = ref [] in
      while List.length !targets < 2 do
        let i = Bgp_sim.Rng.int rng (2 * !k) in
        let u = ends.((2 * (!k - 1 - (i / 2))) + (i land 1)) in
        if not (List.mem u !targets) then targets := u :: !targets
      done;
      List.iter (fun u -> append u v) !targets
    done;
    List.init !k (fun e -> (ends.(2 * e), ends.((2 * e) + 1)))
  end

let make ?(seed = 42) kind ~n =
  if n < 2 then
    invalid_arg (Printf.sprintf "Topology.make: need at least 2 routers, got %d" n);
  let edges =
    match kind with
    | Line -> line n
    | Ring -> ring n
    | Star -> star n
    | Grid -> grid n
    | Clique -> clique n
    | Scale_free -> scale_free ~seed n
  in
  { kind; n; seed; edges = dedup_sort edges }

let edge_count t = List.length t.edges

let neighbors t i =
  List.filter_map
    (fun (u, v) ->
      if u = i then Some v else if v = i then Some u else None)
    t.edges
  |> List.sort_uniq compare

(* One O(n + E) pass; [neighbors] above scans the whole edge list per
   call, which is fine interactively but quadratic when every vertex of
   a 10k-node graph needs its neighbor set. *)
let adjacency t =
  let deg = Array.make t.n 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    t.edges;
  let adj = Array.init t.n (fun i -> Array.make deg.(i) 0) in
  let fill = Array.make t.n 0 in
  List.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    t.edges;
  (* Edges are deduplicated and sorted, so each row is already sorted
     ascending: for (u, v) with u < v, v-rows fill in increasing u and
     u-rows in increasing v. *)
  adj

let degree t i = List.length (neighbors t i)

let is_edge t u v = List.mem (norm (u, v)) t.edges

let pp ppf t =
  Format.fprintf ppf "%s(n=%d, seed=%d, %d edges)" (kind_to_string t.kind)
    t.n t.seed (edge_count t)
