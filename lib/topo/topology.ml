type kind = Line | Ring | Star | Grid | Clique | Scale_free

let kind_to_string = function
  | Line -> "line"
  | Ring -> "ring"
  | Star -> "star"
  | Grid -> "grid"
  | Clique -> "clique"
  | Scale_free -> "scale-free"

let all_kinds = [ Line; Ring; Star; Grid; Clique; Scale_free ]

let kind_of_string s =
  List.find_opt (fun k -> kind_to_string k = s) all_kinds

type t = { kind : kind; n : int; seed : int; edges : (int * int) list }

let norm (u, v) = if u < v then (u, v) else (v, u)

let dedup_sort edges =
  List.sort_uniq compare (List.map norm edges)

let line n = List.init (n - 1) (fun i -> (i, i + 1))

let ring n = if n = 2 then line n else (0, n - 1) :: line n

let star n = List.init (n - 1) (fun i -> (0, i + 1))

(* Row-major grid, width ceil(sqrt n); right and down neighbors. *)
let grid n =
  let w = int_of_float (Float.ceil (sqrt (float_of_int n))) in
  let edges = ref [] in
  for i = 0 to n - 1 do
    if (i + 1) mod w <> 0 && i + 1 < n then edges := (i, i + 1) :: !edges;
    if i + w < n then edges := (i, i + w) :: !edges
  done;
  !edges

let clique n =
  List.concat (List.init n (fun u -> List.init (n - 1 - u) (fun k -> (u, u + 1 + k))))

(* Barabási–Albert preferential attachment, m = 2: a seed triangle,
   then each vertex v >= 3 wires to 2 distinct earlier vertices drawn
   from the degree-weighted endpoint bag.  The bag is rebuilt per
   vertex from the edge list, so the construction is a pure fold over
   the RNG stream. *)
let scale_free ~seed n =
  if n <= 3 then clique n
  else begin
    let rng = Bgp_sim.Rng.create (Bgp_addr.Prefix_gen.mix64 (seed lxor 0x7090)) in
    let edges = ref [ (0, 1); (0, 2); (1, 2) ] in
    for v = 3 to n - 1 do
      let bag =
        Array.of_list
          (List.concat_map (fun (a, b) -> [ a; b ]) !edges)
      in
      let targets = ref [] in
      while List.length !targets < 2 do
        let u = Bgp_sim.Rng.pick rng bag in
        if not (List.mem u !targets) then targets := u :: !targets
      done;
      List.iter (fun u -> edges := (u, v) :: !edges) !targets
    done;
    !edges
  end

let make ?(seed = 42) kind ~n =
  if n < 2 then
    invalid_arg (Printf.sprintf "Topology.make: need at least 2 routers, got %d" n);
  let edges =
    match kind with
    | Line -> line n
    | Ring -> ring n
    | Star -> star n
    | Grid -> grid n
    | Clique -> clique n
    | Scale_free -> scale_free ~seed n
  in
  { kind; n; seed; edges = dedup_sort edges }

let edge_count t = List.length t.edges

let neighbors t i =
  List.filter_map
    (fun (u, v) ->
      if u = i then Some v else if v = i then Some u else None)
    t.edges
  |> List.sort_uniq compare

let degree t i = List.length (neighbors t i)

let is_edge t u v = List.mem (norm (u, v)) t.edges

let pp ppf t =
  Format.fprintf ppf "%s(n=%d, seed=%d, %d edges)" (kind_to_string t.kind)
    t.n t.seed (edge_count t)
