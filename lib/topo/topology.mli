(** Deterministic AS-graph generators.

    Every topology is a pure function of [(kind, n, seed)], so any run
    built on it is reproducible — the same design rule as
    {!Bgp_addr.Prefix_gen} for tables.  Edges are undirected, stored
    once as [(u, v)] with [u < v], sorted lexicographically.

    The regular families ([Line] … [Clique]) ignore the seed entirely;
    [Scale_free] is a seeded Barabási–Albert preferential-attachment
    graph (m = 2), the standard stand-in for the Internet's AS-level
    degree distribution (cf. the distributed BGP-simulation feasibility
    study, arXiv:1304.4750). *)

type kind = Line | Ring | Star | Grid | Clique | Scale_free

val kind_to_string : kind -> string

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string}; also accepts ["ba"] for
    [Scale_free]. *)

val all_kinds : kind list

type t = private {
  kind : kind;
  n : int;        (** number of routers (vertices 0 .. n-1) *)
  seed : int;
  edges : (int * int) list;  (** u < v, sorted, duplicate-free *)
}

val make : ?seed:int -> kind -> n:int -> t
(** Default seed 42.  Every kind yields a connected graph.
    @raise Invalid_argument when [n < 2]. *)

val edge_count : t -> int
val neighbors : t -> int -> int list
(** Ascending neighbor indices of one vertex.  O(edges) per call; use
    {!adjacency} when every vertex's neighbor set is needed. *)

val adjacency : t -> int array array
(** All neighbor sets in one O(n + edges) pass; row [i] is vertex [i]'s
    neighbors, ascending. *)

val degree : t -> int -> int
val is_edge : t -> int -> int -> bool
val pp : Format.formatter -> t -> unit
