module J = Bgp_stats.Json

let us s = s *. 1e6

let value_json = function
  | Tracer.Int i -> J.Int i
  | Tracer.Float f -> J.Float f
  | Tracer.Str s -> J.Str s

let args_json args = J.Obj (List.map (fun (k, v) -> (k, value_json v)) args)

(* pid per distinct process name, in track-registration order; tid is the
   track id (globally unique, which the format permits). *)
let pid_table tracer =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun tk ->
      let p = Tracer.track_process tk in
      if not (Hashtbl.mem tbl p) then Hashtbl.add tbl p (Hashtbl.length tbl + 1))
    (Tracer.tracks tracer);
  tbl

let json tracer =
  let pid_tbl = pid_table tracer in
  let pid tk = Hashtbl.find pid_tbl (Tracer.track_process tk) in
  let tid tk = Tracer.track_id tk + 1 in
  let meta =
    (* process_name per pid (emitted once), thread_name per track *)
    let seen = Hashtbl.create 8 in
    List.concat_map
      (fun tk ->
        let p = pid tk in
        let proc_meta =
          if Hashtbl.mem seen p then []
          else begin
            Hashtbl.add seen p ();
            [ J.Obj
                [ ("name", J.Str "process_name"); ("ph", J.Str "M");
                  ("pid", J.Int p); ("tid", J.Int 0);
                  ("args", J.Obj [ ("name", J.Str (Tracer.track_process tk)) ]) ] ]
          end
        in
        proc_meta
        @ [ J.Obj
              [ ("name", J.Str "thread_name"); ("ph", J.Str "M");
                ("pid", J.Int p); ("tid", J.Int (tid tk));
                ("args", J.Obj [ ("name", J.Str (Tracer.track_thread tk)) ]) ] ])
      (Tracer.tracks tracer)
  in
  let async_id = ref 0 in
  (* (sort_ts, neg_dur, json) triples so nested slices follow their parents *)
  let timed =
    List.concat_map
      (fun ev ->
        let tk = ev.Tracer.ev_track in
        let base ?(cat = "bgpmark") ?(ts = ev.Tracer.ev_ts) name ph extra =
          J.Obj
            ([ ("name", J.Str name); ("cat", J.Str cat); ("ph", J.Str ph);
               ("ts", J.Float (us ts)); ("pid", J.Int (pid tk));
               ("tid", J.Int (tid tk)) ]
            @ extra)
        in
        match ev.Tracer.ev_phase with
        | Tracer.Span ->
          [ ( ev.Tracer.ev_ts, -.ev.Tracer.ev_dur,
              base ev.Tracer.ev_name "X"
                [ ("dur", J.Float (us ev.Tracer.ev_dur));
                  ("args", args_json ev.Tracer.ev_args) ] ) ]
        | Tracer.Async ->
          incr async_id;
          let id = !async_id in
          let fin = ev.Tracer.ev_ts +. ev.Tracer.ev_dur in
          [ ( ev.Tracer.ev_ts, -.ev.Tracer.ev_dur,
              base ~cat:"update" ev.Tracer.ev_name "b"
                [ ("id", J.Int id); ("args", args_json ev.Tracer.ev_args) ] );
            ( fin, 0.0, base ~cat:"update" ~ts:fin ev.Tracer.ev_name "e" [ ("id", J.Int id) ] ) ]
        | Tracer.Instant ->
          [ ( ev.Tracer.ev_ts, 0.0,
              base ev.Tracer.ev_name "i"
                [ ("s", J.Str "t"); ("args", args_json ev.Tracer.ev_args) ] ) ]
        | Tracer.Counter ->
          [ ( ev.Tracer.ev_ts, 0.0,
              base ev.Tracer.ev_name "C" [ ("args", args_json ev.Tracer.ev_args) ] )
          ])
      (Tracer.events tracer)
  in
  let timed =
    List.stable_sort
      (fun (t1, d1, _) (t2, d2, _) ->
        let c = Float.compare t1 t2 in
        if c <> 0 then c else Float.compare d1 d2)
      timed
  in
  J.Obj
    [ ("traceEvents", J.List (meta @ List.map (fun (_, _, e) -> e) timed));
      ("displayTimeUnit", J.Str "ms");
      ( "otherData",
        J.Obj
          [ ("recorded", J.Int (Tracer.recorded tracer));
            ("dropped", J.Int (Tracer.dropped tracer));
            ("sample", J.Int (Tracer.sample_interval tracer)) ] ) ]

let to_string tracer = J.to_string (json tracer)

let write_file tracer path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string tracer);
      output_char oc '\n')
