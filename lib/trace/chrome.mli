(** Chrome trace-event exporter.

    Renders a {!Tracer} buffer as the JSON object format understood by
    Perfetto and [about:tracing]: each distinct track process becomes a
    trace process (pid), each track a named thread (tid), spans become
    ["X"] complete events, async spans ["b"]/["e"] pairs, instants ["i"]
    and counters ["C"]. Virtual seconds are scaled to the microseconds
    the format expects. *)

val json : Tracer.t -> Bgp_stats.Json.t
(** The full [{"traceEvents": [...]}] document. Events are sorted by
    timestamp (ties broken longest-span-first) so nested slices appear
    inside their parents. *)

val to_string : Tracer.t -> string
(** Compact rendering of {!json}. *)

val write_file : Tracer.t -> string -> unit
(** Write {!to_string} (plus a trailing newline) to the given path. *)
