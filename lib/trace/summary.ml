type row = {
  su_name : string;
  su_count : int;
  su_total : float;
  su_mean : float;
  su_max : float;
  su_slowest : (float * float * string) list;
}

type acc = {
  mutable a_count : int;
  mutable a_total : float;
  mutable a_max : float;
  mutable a_top : (float * float * string) list;  (* ascending by dur *)
  mutable a_top_n : int;
}

let track_label tk =
  Tracer.track_process tk ^ "/" ^ Tracer.track_thread tk

let rows ?(k = 5) tracer =
  let tbl : (string, acc) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match ev.Tracer.ev_phase with
      | Tracer.Span | Tracer.Async ->
        let a =
          match Hashtbl.find_opt tbl ev.Tracer.ev_name with
          | Some a -> a
          | None ->
            let a =
              { a_count = 0; a_total = 0.0; a_max = 0.0; a_top = []; a_top_n = 0 }
            in
            Hashtbl.add tbl ev.Tracer.ev_name a;
            a
        in
        let d = ev.Tracer.ev_dur in
        a.a_count <- a.a_count + 1;
        a.a_total <- a.a_total +. d;
        if d > a.a_max then a.a_max <- d;
        let entry = (ev.Tracer.ev_ts, d, track_label ev.Tracer.ev_track) in
        (* keep the k slowest, list held ascending so the head is evictable *)
        if a.a_top_n < k then begin
          a.a_top <-
            List.merge (fun (_, d1, _) (_, d2, _) -> Float.compare d1 d2)
              [ entry ] a.a_top;
          a.a_top_n <- a.a_top_n + 1
        end
        else begin
          match a.a_top with
          | (_, dmin, _) :: rest when d > dmin ->
            a.a_top <-
              List.merge (fun (_, d1, _) (_, d2, _) -> Float.compare d1 d2)
                [ entry ] rest
          | _ -> ()
        end
      | Tracer.Instant | Tracer.Counter -> ())
    (Tracer.events tracer);
  Hashtbl.fold
    (fun name a acc ->
      { su_name = name;
        su_count = a.a_count;
        su_total = a.a_total;
        su_mean = a.a_total /. float_of_int a.a_count;
        su_max = a.a_max;
        su_slowest = List.rev a.a_top }
      :: acc)
    tbl []
  |> List.sort (fun r1 r2 ->
         let c = Float.compare r2.su_total r1.su_total in
         if c <> 0 then c else String.compare r1.su_name r2.su_name)

let render ?(k = 5) tracer =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "Trace summary: %d events recorded, %d dropped (ring), sample 1/%d\n"
       (Tracer.recorded tracer) (Tracer.dropped tracer)
       (Tracer.sample_interval tracer));
  let rs = rows ~k tracer in
  if rs = [] then Buffer.add_string b "  (no spans recorded)\n"
  else begin
    Buffer.add_string b
      (Printf.sprintf "  %-16s %10s %14s %12s %12s\n" "span" "count" "total_s"
         "mean_us" "max_us");
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf "  %-16s %10d %14.6f %12.3f %12.3f\n" r.su_name
             r.su_count r.su_total (r.su_mean *. 1e6) (r.su_max *. 1e6));
        List.iter
          (fun (ts, d, where) ->
            Buffer.add_string b
              (Printf.sprintf "      slowest %10.3f us at t=%.6f s on %s\n"
                 (d *. 1e6) ts where))
          r.su_slowest)
      rs
  end;
  Buffer.contents b
