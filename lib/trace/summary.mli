(** Trace-summary report: per-span-name aggregates with the top-K
    slowest occurrences, for a quick read of where simulated time went
    without opening the trace in a viewer. *)

type row = {
  su_name : string;  (** span name (pipeline stage, "update", ...) *)
  su_count : int;
  su_total : float;  (** summed duration, virtual seconds *)
  su_mean : float;
  su_max : float;
  su_slowest : (float * float * string) list;
      (** top-K (start_ts, dur, "process/thread"), slowest first *)
}

val rows : ?k:int -> Tracer.t -> row list
(** One row per distinct span name (Span and Async events), sorted by
    total duration descending. [k] bounds [su_slowest] (default 5). *)

val render : ?k:int -> Tracer.t -> string
(** Human-readable table, including recorded/dropped ring statistics. *)
