type track = { tk_id : int; tk_process : string; tk_thread : string }

type value = Int of int | Float of float | Str of string
type phase = Span | Async | Instant | Counter

type event = {
  ev_track : track;
  ev_phase : phase;
  ev_name : string;
  ev_ts : float;
  ev_dur : float;
  ev_args : (string * value) list;
}

type t = {
  cap : int;
  sample : int;
  mutable buf : event array;  (* length 0 until the first event, then [cap] *)
  mutable head : int;  (* next write position *)
  mutable total : int;  (* events ever recorded *)
  mutable sample_ctr : int;
  mutable sim_ctr : int;
  track_tbl : (string, track) Hashtbl.t;
  mutable track_rev : track list;  (* registration order, reversed *)
  last_end : (int, float) Hashtbl.t;  (* FIFO clamp per track id *)
  (* None (default): single-domain recorder, no locking on the hot
     path.  [set_shared] installs the mutex so one tracer can collect
     from every partition of a multi-domain run. *)
  mutable mu : Mutex.t option;
}

let with_lock t f =
  match t.mu with
  | None -> f ()
  | Some m ->
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let create ?(capacity = 1 lsl 19) ?(sample = 1) () =
  if capacity < 1 then invalid_arg "Tracer.create: capacity must be >= 1";
  if sample < 1 then invalid_arg "Tracer.create: sample must be >= 1";
  { cap = capacity;
    sample;
    buf = [||];
    head = 0;
    total = 0;
    sample_ctr = 0;
    sim_ctr = 0;
    track_tbl = Hashtbl.create 16;
    track_rev = [];
    last_end = Hashtbl.create 16;
    mu = None }

let set_shared t = if t.mu = None then t.mu <- Some (Mutex.create ())

let capacity t = t.cap
let sample_interval t = t.sample

let track t ?(process = "bgpmark") ~thread () =
  with_lock t (fun () ->
      let key = process ^ "\x00" ^ thread in
      match Hashtbl.find_opt t.track_tbl key with
      | Some tk -> tk
      | None ->
        let tk =
          { tk_id = Hashtbl.length t.track_tbl; tk_process = process;
            tk_thread = thread }
        in
        Hashtbl.add t.track_tbl key tk;
        t.track_rev <- tk :: t.track_rev;
        tk)

let track_process tk = tk.tk_process
let track_thread tk = tk.tk_thread
let track_id tk = tk.tk_id

let sample_this t =
  with_lock t (fun () ->
      let hit = t.sample_ctr = 0 in
      t.sample_ctr <- (t.sample_ctr + 1) mod t.sample;
      hit)

let sim_hit t =
  with_lock t (fun () ->
      let hit = t.sim_ctr = 0 in
      t.sim_ctr <- (t.sim_ctr + 1) mod t.sample;
      hit)

let record_unlocked t ev =
  if Array.length t.buf = 0 then t.buf <- Array.make t.cap ev;
  t.buf.(t.head) <- ev;
  t.head <- (t.head + 1) mod t.cap;
  t.total <- t.total + 1

let record t ev = with_lock t (fun () -> record_unlocked t ev)

let span t tk ~name ~ts ~dur ?(args = []) () =
  record t
    { ev_track = tk; ev_phase = Span; ev_name = name; ev_ts = ts; ev_dur = dur;
      ev_args = args }

let span_fifo t tk ~name ~dispatch ~finish ?(args = []) () =
  with_lock t (fun () ->
      let prev =
        match Hashtbl.find_opt t.last_end tk.tk_id with
        | Some e -> e
        | None -> neg_infinity
      in
      let start = if dispatch > prev then dispatch else prev in
      let start = if start > finish then finish else start in
      Hashtbl.replace t.last_end tk.tk_id finish;
      let wait = start -. dispatch in
      let args = if wait > 0.0 then ("wait_s", Float wait) :: args else args in
      record_unlocked t
        { ev_track = tk; ev_phase = Span; ev_name = name; ev_ts = start;
          ev_dur = finish -. start; ev_args = args };
      (start, finish))

let async_span t tk ~name ~ts ~dur ?(args = []) () =
  record t
    { ev_track = tk; ev_phase = Async; ev_name = name; ev_ts = ts; ev_dur = dur;
      ev_args = args }

let instant t tk ~name ~ts ?(args = []) () =
  record t
    { ev_track = tk; ev_phase = Instant; ev_name = name; ev_ts = ts; ev_dur = 0.0;
      ev_args = args }

let counter t tk ~name ~ts values =
  record t
    { ev_track = tk; ev_phase = Counter; ev_name = name; ev_ts = ts; ev_dur = 0.0;
      ev_args = List.map (fun (k, v) -> (k, Float v)) values }

(* Typed helpers *)

let stage_args ~units ~attr_groups ~peer =
  let args = [ ("units", Int units); ("attr_groups", Int attr_groups) ] in
  if peer >= 0 then ("peer", Int peer) :: args else args

let stage_span t tk ~stage ~dispatch ~finish ~cycles ~units ~attr_groups ~peer =
  let args = ("cycles", Float cycles) :: stage_args ~units ~attr_groups ~peer in
  ignore (span_fifo t tk ~name:stage ~dispatch ~finish ~args () : float * float)

let stage_mark t tk ~stage ~ts ~units ~attr_groups ~peer =
  span t tk ~name:stage ~ts ~dur:0.0 ~args:(stage_args ~units ~attr_groups ~peer) ()

let update_span t tk ~dispatch ~finish ~peer ~prefixes ~bytes =
  let args = [ ("prefixes", Int prefixes); ("bytes", Int bytes) ] in
  let args = if peer >= 0 then ("peer", Int peer) :: args else args in
  async_span t tk ~name:"update" ~ts:dispatch ~dur:(finish -. dispatch) ~args ()

let proc_state t tk ~ts ~running ~queue =
  instant t tk
    ~name:(if running then "run" else "block")
    ~ts
    ~args:[ ("queue", Int queue) ]
    ()

let occupancy t tk ~ts values = counter t tk ~name:"occupancy" ~ts values

let fsm_transition t tk ~ts ~peer ~from_state ~to_state =
  instant t tk ~name:"fsm"
    ~ts
    ~args:[ ("peer", Str peer); ("from", Str from_state); ("to", Str to_state) ]
    ()

let fault t tk ~ts ~fate ~detail =
  let args = if detail = "" then [] else [ ("detail", Str detail) ] in
  instant t tk ~name:("fault:" ^ fate) ~ts ~args ()

(* Draining *)

let recorded t = t.total
let dropped t = if t.total > t.cap then t.total - t.cap else 0

let events t =
  let n = if t.total < t.cap then t.total else t.cap in
  let start = if t.total < t.cap then 0 else t.head in
  List.init n (fun i -> t.buf.((start + i) mod t.cap))

let tracks t = List.rev t.track_rev

let clear t =
  with_lock t (fun () ->
      t.buf <- [||];
      t.head <- 0;
      t.total <- 0;
      Hashtbl.reset t.last_end)
