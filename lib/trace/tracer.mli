(** Low-overhead structured trace recorder.

    A tracer is a bounded ring buffer of typed events recorded against
    named tracks (a track is a [process]/[thread] pair; in the exporter
    each simulated core or logical lane becomes one track). Timestamps
    are explicit — callers pass the virtual time of their
    {!Bgp_sim.Engine} — so this library depends on nothing below
    [bgp_stats] and every layer of the simulator can record into it
    without dependency cycles.

    Recording is unconditional and cheap (one ring slot per event); the
    zero-cost-when-disabled property comes from callers holding a
    [Tracer.t option] and skipping instrumentation entirely when it is
    [None]. Sampling ({!sample_this}) lets high-volume producers keep
    only every [1/N]-th unit of work so full-table runs stay bounded. *)

type t
type track

type value = Int of int | Float of float | Str of string

type phase =
  | Span  (** complete slice: [ev_ts .. ev_ts + ev_dur] *)
  | Async  (** overlapping span (per-update latency); exported as b/e pair *)
  | Instant  (** point event *)
  | Counter  (** sampled counter values carried in [ev_args] *)

type event = {
  ev_track : track;
  ev_phase : phase;
  ev_name : string;
  ev_ts : float;  (** virtual seconds *)
  ev_dur : float;  (** virtual seconds; 0 for non-span phases *)
  ev_args : (string * value) list;
}

val create : ?capacity:int -> ?sample:int -> unit -> t
(** [capacity] bounds the ring (default 524288 events; oldest events are
    overwritten once full and counted in {!dropped}). [sample] keeps one
    update batch in every [sample] (default 1 = keep all). *)

val capacity : t -> int
val sample_interval : t -> int

val set_shared : t -> unit
(** Make this tracer safe to record into from multiple OCaml domains
    (e.g. the partitions of a {!Bgp_sim.Pengine} run) by guarding every
    mutation with an internal mutex.  Off by default so single-domain
    recording pays no locking; idempotent. *)

val track : t -> ?process:string -> thread:string -> unit -> track
(** Register (or look up) the track named [(process, thread)]. Tracks are
    deduplicated by name pair, so calling this repeatedly is cheap and
    idempotent. Default process is ["bgpmark"]. *)

val track_process : track -> string
val track_thread : track -> string

val track_id : track -> int
(** Dense id in registration order, starting at 0. *)

val sample_this : t -> bool
(** Decimation gate for per-update producers: true once every
    {!sample_interval} calls. Each call advances the counter. *)

val sim_hit : t -> bool
(** Same interval as {!sample_this} but an independent counter, used by
    the simulator layer (scheduler instants / occupancy counters) so the
    two producers decimate independently. *)

val span :
  t -> track -> name:string -> ts:float -> dur:float ->
  ?args:(string * value) list -> unit -> unit

val span_fifo :
  t -> track -> name:string -> dispatch:float -> finish:float ->
  ?args:(string * value) list -> unit -> float * float
(** Record a span on a FIFO track (a single-job simulated process): the
    start is clamped to [max dispatch last_end] for that track so
    consecutive slices never overlap, and the queueing delay
    [start - dispatch] is attached as a ["wait_s"] arg. Returns the
    actual [(start, finish)] window recorded. *)

val async_span :
  t -> track -> name:string -> ts:float -> dur:float ->
  ?args:(string * value) list -> unit -> unit
(** A span that may overlap others on its track (e.g. pipelined update
    latencies); the Chrome exporter emits it as an async b/e pair. *)

val instant :
  t -> track -> name:string -> ts:float -> ?args:(string * value) list ->
  unit -> unit

val counter : t -> track -> name:string -> ts:float -> (string * float) list -> unit

(** {2 Typed helpers (the event taxonomy)} *)

val stage_span :
  t -> track -> stage:string -> dispatch:float -> finish:float ->
  cycles:float -> units:int -> attr_groups:int -> peer:int -> unit
(** Pipeline stage execution on a simulated core track (FIFO-clamped). *)

val stage_mark :
  t -> track -> stage:string -> ts:float -> units:int -> attr_groups:int ->
  peer:int -> unit
(** Inline (zero simulated CPU) stage: a zero-duration slice. *)

val update_span :
  t -> track -> dispatch:float -> finish:float -> peer:int -> prefixes:int ->
  bytes:int -> unit
(** Whole-update latency from submit to pipeline completion (async). *)

val proc_state : t -> track -> ts:float -> running:bool -> queue:int -> unit
(** Scheduler process run/block instant. *)

val occupancy : t -> track -> ts:float -> (string * float) list -> unit
(** Core-occupancy counter sample (per-proc service rates, interrupt and
    forwarding demand). *)

val fsm_transition :
  t -> track -> ts:float -> peer:string -> from_state:string ->
  to_state:string -> unit

val fault : t -> track -> ts:float -> fate:string -> detail:string -> unit

(** {2 Draining} *)

val events : t -> event list
(** Retained events in recording order (oldest first). *)

val recorded : t -> int
(** Total events ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val tracks : t -> track list
(** All registered tracks, in registration order. *)

val clear : t -> unit
(** Drop all retained events (tracks and counters are kept). *)
