module A = Bgp_route.Attrs
module P = Bgp_addr.Prefix

let attr_origin = 1
let attr_as_path = 2
let attr_next_hop = 3
let attr_med = 4
let attr_local_pref = 5
let attr_atomic_aggregate = 6
let attr_aggregator = 7
let attr_community = 8
let attr_originator_id = 9 (* RFC 4456 *)
let attr_cluster_list = 10 (* RFC 4456 *)
let flag_optional = 0x80
let flag_transitive = 0x40
let flag_partial = 0x20
let flag_extended = 0x10

let type_open = 1
let type_update = 2
let type_notification = 3
let type_keepalive = 4
let type_route_refresh = 5 (* RFC 2918 *)

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let u16 b v =
  u8 b (v lsr 8);
  u8 b v

let u32 b v =
  u16 b (v lsr 16);
  u16 b (v land 0xFFFF)

let add_ipv4 b a = u32 b (Bgp_addr.Ipv4.to_int a)

let add_prefix b p =
  (* RFC 4271 §4.3: length in bits, then ceil(len/8) address octets. *)
  let len = P.len p in
  u8 b len;
  let a = Bgp_addr.Ipv4.to_int (P.addr p) in
  for i = 0 to P.wire_octets p - 1 do
    u8 b ((a lsr (24 - (8 * i))) land 0xFF)
  done

let encode_capability b = function
  | Msg.Multiprotocol (afi, safi) ->
    u8 b 1;
    u8 b 4;
    u16 b afi;
    u8 b 0;
    u8 b safi
  | Msg.Route_refresh ->
    u8 b 2;
    u8 b 0
  | Msg.Unknown_capability (code, data) ->
    u8 b code;
    u8 b (String.length data);
    Buffer.add_string b data

let encode_opt_param b = function
  | Msg.Capability cap ->
    let inner = Buffer.create 8 in
    encode_capability inner cap;
    u8 b 2 (* param type: capability (RFC 3392) *);
    u8 b (Buffer.length inner);
    Buffer.add_buffer b inner
  | Msg.Unknown_param (code, data) ->
    u8 b code;
    u8 b (String.length data);
    Buffer.add_string b data

(* An attribute body is built in a scratch buffer first so the length
   field (and the Extended Length flag it may force) can be emitted. *)
let add_attr b ~flags ~code body =
  let len = Buffer.length body in
  if len > 0xFFFF then invalid_arg "Codec: attribute too long";
  let flags = if len > 0xFF then flags lor flag_extended else flags in
  u8 b flags;
  u8 b code;
  if flags land flag_extended <> 0 then u16 b len else u8 b len;
  Buffer.add_buffer b body

let encode_as_path ?(as4 = false) body segs =
  let add_asn = if as4 then u32 else u16 in
  let add_seg tag asns =
    let n = List.length asns in
    if n = 0 || n > 255 then invalid_arg "Codec: bad AS_PATH segment";
    u8 body tag;
    u8 body n;
    List.iter (fun a -> add_asn body (Bgp_route.Asn.to_int a)) asns
  in
  List.iter
    (function
      | Bgp_route.As_path.Set asns -> add_seg 1 asns
      | Bgp_route.As_path.Seq asns -> add_seg 2 asns)
    (Bgp_route.As_path.segments segs)

let encode_attrs ?(as4 = false) b (attrs : A.t) =
  let scratch = Buffer.create 64 in
  let emit ~flags ~code fill =
    Buffer.clear scratch;
    fill scratch;
    add_attr b ~flags ~code scratch
  in
  emit ~flags:flag_transitive ~code:attr_origin (fun s ->
      u8 s (A.origin_to_int attrs.A.origin));
  emit ~flags:flag_transitive ~code:attr_as_path (fun s ->
      encode_as_path ~as4 s attrs.A.as_path);
  emit ~flags:flag_transitive ~code:attr_next_hop (fun s ->
      add_ipv4 s attrs.A.next_hop);
  Option.iter
    (fun med -> emit ~flags:flag_optional ~code:attr_med (fun s -> u32 s med))
    attrs.A.med;
  Option.iter
    (fun lp ->
      emit ~flags:flag_transitive ~code:attr_local_pref (fun s -> u32 s lp))
    attrs.A.local_pref;
  if attrs.A.atomic_aggregate then
    emit ~flags:flag_transitive ~code:attr_atomic_aggregate (fun _ -> ());
  Option.iter
    (fun (asn, addr) ->
      emit ~flags:(flag_optional lor flag_transitive) ~code:attr_aggregator
        (fun s ->
          (if as4 then u32 else u16) s (Bgp_route.Asn.to_int asn);
          add_ipv4 s addr))
    attrs.A.aggregator;
  (match attrs.A.communities with
  | [] -> ()
  | cs ->
    emit ~flags:(flag_optional lor flag_transitive) ~code:attr_community
      (fun s -> List.iter (fun c -> u32 s (Bgp_route.Community.to_int32_value c)) cs));
  Option.iter
    (fun oid ->
      emit ~flags:flag_optional ~code:attr_originator_id (fun s -> add_ipv4 s oid))
    attrs.A.originator_id;
  (match attrs.A.cluster_list with
  | [] -> ()
  | cl ->
    emit ~flags:flag_optional ~code:attr_cluster_list (fun s ->
        List.iter (add_ipv4 s) cl))

let encode_body b = function
  | Msg.Open o ->
    if o.Msg.opn_hold_time < 0 || o.Msg.opn_hold_time > 0xFFFF then
      invalid_arg "Codec: hold time out of range";
    u8 b o.Msg.opn_version;
    u16 b (Bgp_route.Asn.to_int o.Msg.opn_asn);
    u16 b o.Msg.opn_hold_time;
    add_ipv4 b o.Msg.opn_bgp_id;
    let params = Buffer.create 16 in
    List.iter (encode_opt_param params) o.Msg.opn_params;
    if Buffer.length params > 0xFF then
      invalid_arg "Codec: optional parameters too long";
    u8 b (Buffer.length params);
    Buffer.add_buffer b params
  | Msg.Update u ->
    let withdrawn = Buffer.create 64 in
    List.iter (add_prefix withdrawn) u.Msg.withdrawn;
    if Buffer.length withdrawn > 0xFFFF then
      invalid_arg "Codec: withdrawn routes too long";
    u16 b (Buffer.length withdrawn);
    Buffer.add_buffer b withdrawn;
    let attrs = Buffer.create 64 in
    Option.iter
      (fun h -> encode_attrs attrs (A.Interned.value h))
      u.Msg.attrs;
    if Buffer.length attrs > 0xFFFF then
      invalid_arg "Codec: path attributes too long";
    u16 b (Buffer.length attrs);
    Buffer.add_buffer b attrs;
    List.iter (add_prefix b) u.Msg.nlri
  | Msg.Keepalive -> ()
  | Msg.Notification err ->
    let code, sub = Msg.error_code err in
    u8 b code;
    u8 b sub
  | Msg.Route_refresh (afi, safi) ->
    u16 b afi;
    u8 b 0;
    u8 b safi

let encode msg =
  let body = Buffer.create 64 in
  encode_body body msg;
  let total = Msg.header_len + Buffer.length body in
  if total > Msg.max_len then
    invalid_arg
      (Printf.sprintf "Codec.encode: %s message of %d bytes exceeds %d"
         (Msg.kind_name msg) total Msg.max_len);
  let b = Buffer.create total in
  for _ = 1 to 16 do
    Buffer.add_char b '\xFF'
  done;
  u16 b total;
  u8 b
    (match msg with
    | Msg.Open _ -> type_open
    | Msg.Update _ -> type_update
    | Msg.Notification _ -> type_notification
    | Msg.Keepalive -> type_keepalive
    | Msg.Route_refresh _ -> type_route_refresh);
  Buffer.add_buffer b body;
  Buffer.contents b

let encoded_size msg = String.length (encode msg)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Fail of Msg.error

let fail e = raise (Fail e)

(* [declared] is the length field of the enclosing header, threaded
   through so truncation errors can report the length the sender
   claimed (RFC 4271 §6.1: the erroneous Length field goes in the
   NOTIFICATION data) rather than a meaningless 0. *)
type reader = { buf : string; mutable pos : int; limit : int; declared : int }

let ru8 r =
  if r.pos >= r.limit then
    fail (Msg.Message_header_error (Msg.Bad_message_length r.declared));
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let ru16 r =
  let hi = ru8 r in
  (hi lsl 8) lor ru8 r

let ru32 r =
  let hi = ru16 r in
  (hi lsl 16) lor ru16 r

let r_ipv4 r = Bgp_addr.Ipv4.of_int (ru32 r)

let r_prefix r stop =
  let len = ru8 r in
  if len > 32 then fail (Msg.Update_message_error Msg.Invalid_network_field);
  let octets = (len + 7) / 8 in
  (* A prefix whose address octets run past the enclosing field is a
     malformed NLRI, not a header-length problem. *)
  if r.pos + octets > stop then
    fail (Msg.Update_message_error Msg.Invalid_network_field);
  let a = ref 0 in
  for i = 0 to octets - 1 do
    a := !a lor (ru8 r lsl (24 - (8 * i)))
  done;
  (* §6.3: bits beyond the prefix length are "irrelevant"; we apply the
     stricter check used by most implementations and reject them, which
     the property tests rely on for canonical roundtrips. *)
  let addr = Bgp_addr.Ipv4.of_int !a in
  if not (Bgp_addr.Ipv4.equal (Bgp_addr.Ipv4.apply_mask addr len) addr) then
    fail (Msg.Update_message_error Msg.Invalid_network_field);
  P.make addr len

let r_prefixes_until r stop =
  let acc = ref [] in
  while r.pos < stop do
    acc := r_prefix r stop :: !acc
  done;
  if r.pos <> stop then fail (Msg.Update_message_error Msg.Invalid_network_field);
  List.rev !acc

let decode_capability r stop =
  let code = ru8 r in
  let len = ru8 r in
  if r.pos + len > stop then
    fail (Msg.Open_message_error Msg.Unsupported_optional_parameter);
  match code with
  | 1 when len = 4 ->
    let afi = ru16 r in
    let _res = ru8 r in
    let safi = ru8 r in
    Msg.Multiprotocol (afi, safi)
  | 2 when len = 0 -> Msg.Route_refresh
  | _ ->
    let data = String.sub r.buf r.pos len in
    r.pos <- r.pos + len;
    Msg.Unknown_capability (code, data)

let decode_opt_params r =
  let total = ru8 r in
  let stop = r.pos + total in
  if stop > r.limit then
    fail (Msg.Message_header_error (Msg.Bad_message_length total));
  let acc = ref [] in
  while r.pos < stop do
    let ptype = ru8 r in
    let plen = ru8 r in
    if r.pos + plen > stop then
      fail (Msg.Open_message_error Msg.Unsupported_optional_parameter);
    let pstop = r.pos + plen in
    (match ptype with
    | 2 ->
      while r.pos < pstop do
        acc := Msg.Capability (decode_capability r pstop) :: !acc
      done
    | _ ->
      let data = String.sub r.buf r.pos plen in
      r.pos <- pstop;
      acc := Msg.Unknown_param (ptype, data) :: !acc);
    if r.pos <> pstop then
      fail (Msg.Open_message_error Msg.Unsupported_optional_parameter)
  done;
  List.rev !acc

let decode_open r =
  let v = ru8 r in
  if v <> Msg.version then fail (Msg.Open_message_error (Msg.Unsupported_version v));
  let asn_raw = ru16 r in
  let asn =
    match Bgp_route.Asn.of_int_opt asn_raw with
    | Some a when not (Bgp_route.Asn.equal a Bgp_route.Asn.reserved) -> a
    | _ -> fail (Msg.Open_message_error Msg.Bad_peer_as)
  in
  let hold = ru16 r in
  if hold <> 0 && hold < Msg.hold_time_min then
    fail (Msg.Open_message_error Msg.Unacceptable_hold_time);
  let bgp_id = r_ipv4 r in
  if Bgp_addr.Ipv4.equal bgp_id Bgp_addr.Ipv4.zero then
    fail (Msg.Open_message_error Msg.Bad_bgp_identifier);
  let params = decode_opt_params r in
  Msg.Open
    { Msg.opn_version = v; opn_asn = asn; opn_hold_time = hold;
      opn_bgp_id = bgp_id; opn_params = params }

(* 4-octet ASNs (RFC 6793, used by TABLE_DUMP_V2 attribute blobs) are
   clamped to AS_TRANS when they exceed the 16-bit [Asn] domain —
   exactly what a NEW-to-OLD speaker translation would put on the
   wire. *)
let as_trans = Bgp_route.Asn.of_int 23456

let r_asn4 r =
  let v = ru32 r in
  match Bgp_route.Asn.of_int_opt v with Some a -> a | None -> as_trans

let decode_as_path ?(as4 = false) r stop =
  let asn_octets = if as4 then 4 else 2 in
  let r_asn = if as4 then r_asn4 else fun r -> Bgp_route.Asn.of_int (ru16 r) in
  let segs = ref [] in
  while r.pos < stop do
    let tag = ru8 r in
    let n = ru8 r in
    if n = 0 || r.pos + (asn_octets * n) > stop then
      fail (Msg.Update_message_error Msg.Malformed_as_path);
    let asns = List.init n (fun _ -> r_asn r) in
    match tag with
    | 1 -> segs := Bgp_route.As_path.Set asns :: !segs
    | 2 -> segs := Bgp_route.As_path.Seq asns :: !segs
    | _ -> fail (Msg.Update_message_error Msg.Malformed_as_path)
  done;
  Bgp_route.As_path.of_segments (List.rev !segs)

type partial_attrs = {
  mutable p_origin : A.origin option;
  mutable p_as_path : Bgp_route.As_path.t option;
  mutable p_next_hop : Bgp_addr.Ipv4.t option;
  mutable p_med : int option;
  mutable p_local_pref : int option;
  mutable p_atomic : bool;
  mutable p_aggregator : (Bgp_route.Asn.t * Bgp_addr.Ipv4.t) option;
  mutable p_communities : Bgp_route.Community.t list;
  mutable p_originator_id : Bgp_addr.Ipv4.t option;
  mutable p_cluster_list : Bgp_addr.Ipv4.t list;
}

let decode_one_attr ?(as4 = false) r stop acc =
  let flags = ru8 r in
  (* An attribute header cut off by the Total Path Attribute Length is
     an UPDATE-level malformation (RFC 4271 §6.3), not a header error:
     the header itself framed fine. *)
  if r.pos >= stop then
    fail (Msg.Update_message_error Msg.Malformed_attribute_list);
  let code = ru8 r in
  let len_octets = if flags land flag_extended <> 0 then 2 else 1 in
  if r.pos + len_octets > stop then
    fail (Msg.Update_message_error (Msg.Attribute_length_error code));
  let len = if flags land flag_extended <> 0 then ru16 r else ru8 r in
  if r.pos + len > stop then
    fail (Msg.Update_message_error (Msg.Attribute_length_error code));
  let astop = r.pos + len in
  let check_flags ~want_optional ~want_transitive =
    let optional = flags land flag_optional <> 0 in
    let transitive = flags land flag_transitive <> 0 in
    if optional <> want_optional || (not optional && transitive <> want_transitive)
    then fail (Msg.Update_message_error (Msg.Attribute_flags_error code))
  in
  let check_len want =
    if len <> want then
      fail (Msg.Update_message_error (Msg.Attribute_length_error code))
  in
  (match code with
  | c when c = attr_origin ->
    check_flags ~want_optional:false ~want_transitive:true;
    check_len 1;
    (match A.origin_of_int (ru8 r) with
    | Some o -> acc.p_origin <- Some o
    | None -> fail (Msg.Update_message_error Msg.Invalid_origin_attribute))
  | c when c = attr_as_path ->
    check_flags ~want_optional:false ~want_transitive:true;
    acc.p_as_path <- Some (decode_as_path ~as4 r astop)
  | c when c = attr_next_hop ->
    check_flags ~want_optional:false ~want_transitive:true;
    check_len 4;
    let nh = r_ipv4 r in
    if Bgp_addr.Ipv4.equal nh Bgp_addr.Ipv4.zero then
      fail (Msg.Update_message_error Msg.Invalid_next_hop_attribute);
    acc.p_next_hop <- Some nh
  | c when c = attr_med ->
    check_flags ~want_optional:true ~want_transitive:false;
    check_len 4;
    acc.p_med <- Some (ru32 r)
  | c when c = attr_local_pref ->
    check_flags ~want_optional:false ~want_transitive:true;
    check_len 4;
    acc.p_local_pref <- Some (ru32 r)
  | c when c = attr_atomic_aggregate ->
    check_flags ~want_optional:false ~want_transitive:true;
    check_len 0;
    acc.p_atomic <- true
  | c when c = attr_aggregator ->
    check_flags ~want_optional:true ~want_transitive:false;
    check_len (if as4 then 8 else 6);
    let asn = if as4 then r_asn4 r else Bgp_route.Asn.of_int (ru16 r) in
    let addr = r_ipv4 r in
    acc.p_aggregator <- Some (asn, addr)
  | c when c = attr_community ->
    check_flags ~want_optional:true ~want_transitive:false;
    if len mod 4 <> 0 then
      fail (Msg.Update_message_error (Msg.Attribute_length_error code));
    let n = len / 4 in
    for _ = 1 to n do
      acc.p_communities <-
        Bgp_route.Community.of_int32_value (ru32 r) :: acc.p_communities
    done
  | c when c = attr_originator_id ->
    check_flags ~want_optional:true ~want_transitive:false;
    check_len 4;
    acc.p_originator_id <- Some (r_ipv4 r)
  | c when c = attr_cluster_list ->
    check_flags ~want_optional:true ~want_transitive:false;
    if len = 0 || len mod 4 <> 0 then
      fail (Msg.Update_message_error (Msg.Attribute_length_error code));
    let n = len / 4 in
    acc.p_cluster_list <- List.init n (fun _ -> r_ipv4 r)
  | c ->
    if flags land flag_optional = 0 then
      fail (Msg.Update_message_error (Msg.Unrecognized_wellknown_attribute c));
    (* Unknown optional attribute: skipped (transitive ones would be
       re-forwarded with Partial set; we do not originate them). *)
    r.pos <- astop);
  if r.pos <> astop then
    fail (Msg.Update_message_error (Msg.Attribute_length_error code))

let decode_attrs_slow ?(as4 = false) r stop ~nlri_present =
  let acc =
    { p_origin = None; p_as_path = None; p_next_hop = None; p_med = None;
      p_local_pref = None; p_atomic = false; p_aggregator = None;
      p_communities = []; p_originator_id = None; p_cluster_list = [] }
  in
  while r.pos < stop do
    decode_one_attr ~as4 r stop acc
  done;
  if r.pos <> stop then fail (Msg.Update_message_error Msg.Malformed_attribute_list);
  match acc.p_origin, acc.p_as_path, acc.p_next_hop with
  | None, None, None when not nlri_present -> None
  | Some origin, Some as_path, Some next_hop ->
    (* [A.make] canonicalizes communities; interning here — once per
       UPDATE — is what lets all the message's NLRI share one handle. *)
    Some
      (A.Interned.intern
         (A.make ~origin ?med:acc.p_med ?local_pref:acc.p_local_pref
            ~atomic_aggregate:acc.p_atomic ?aggregator:acc.p_aggregator
            ~communities:(List.rev acc.p_communities)
            ?originator_id:acc.p_originator_id
            ~cluster_list:acc.p_cluster_list ~as_path ~next_hop ()))
  | None, _, _ ->
    fail (Msg.Update_message_error (Msg.Missing_wellknown_attribute attr_origin))
  | _, None, _ ->
    fail (Msg.Update_message_error (Msg.Missing_wellknown_attribute attr_as_path))
  | _, _, None ->
    fail (Msg.Update_message_error (Msg.Missing_wellknown_attribute attr_next_hop))

(* Zero-copy fast path: hash the raw attribute byte-span before
   materializing anything — a span-cache hit returns the interned
   handle with no intermediate [Attrs.t], no AS-path list, and no
   validation re-run (identical bytes decode identically, so the first
   full decode vouches for every repeat).  Only spans whose decode
   produced a handle are cached: an attribute section of purely
   optional attributes legitimately decodes to [None] or [Some]
   depending on [nlri_present], which the byte-keyed cache cannot
   distinguish. *)
let decode_attrs r stop ~nlri_present =
  if r.pos >= stop then decode_attrs_slow r stop ~nlri_present
  else begin
    let pos0 = r.pos in
    let len = stop - pos0 in
    match A.Interned.find_span r.buf ~pos:pos0 ~len with
    | Some handle ->
      r.pos <- stop;
      Some handle
    | None ->
      let result = decode_attrs_slow r stop ~nlri_present in
      (match result with
      | Some handle -> A.Interned.add_span r.buf ~pos:pos0 ~len handle
      | None -> ());
      result
  end

let decode_update r =
  let wlen = ru16 r in
  if r.pos + wlen > r.limit then
    fail (Msg.Update_message_error Msg.Malformed_attribute_list);
  let wstop = r.pos + wlen in
  let withdrawn = r_prefixes_until r wstop in
  let alen = ru16 r in
  if r.pos + alen > r.limit then
    fail (Msg.Update_message_error Msg.Malformed_attribute_list);
  let astop = r.pos + alen in
  let nlri_present = astop < r.limit in
  let attrs = decode_attrs r astop ~nlri_present in
  let nlri = r_prefixes_until r r.limit in
  if nlri <> [] && attrs = None then
    fail (Msg.Update_message_error (Msg.Missing_wellknown_attribute attr_origin));
  Msg.Update { Msg.withdrawn; attrs; nlri }

let decode_notification r =
  let code = ru8 r in
  let sub = ru8 r in
  (* Remaining bytes are diagnostic data; we accept and discard them. *)
  r.pos <- r.limit;
  let err =
    match code, sub with
    | 1, 1 -> Msg.Message_header_error Msg.Connection_not_synchronized
    | 1, 2 -> Msg.Message_header_error (Msg.Bad_message_length 0)
    | 1, _ -> Msg.Message_header_error (Msg.Bad_message_type 0)
    | 2, 1 -> Msg.Open_message_error (Msg.Unsupported_version 0)
    | 2, 2 -> Msg.Open_message_error Msg.Bad_peer_as
    | 2, 3 -> Msg.Open_message_error Msg.Bad_bgp_identifier
    | 2, 4 -> Msg.Open_message_error Msg.Unsupported_optional_parameter
    | 2, _ -> Msg.Open_message_error Msg.Unacceptable_hold_time
    | 3, 2 -> Msg.Update_message_error (Msg.Unrecognized_wellknown_attribute 0)
    | 3, 3 -> Msg.Update_message_error (Msg.Missing_wellknown_attribute 0)
    | 3, 4 -> Msg.Update_message_error (Msg.Attribute_flags_error 0)
    | 3, 5 -> Msg.Update_message_error (Msg.Attribute_length_error 0)
    | 3, 6 -> Msg.Update_message_error Msg.Invalid_origin_attribute
    | 3, 8 -> Msg.Update_message_error Msg.Invalid_next_hop_attribute
    | 3, 9 -> Msg.Update_message_error (Msg.Optional_attribute_error 0)
    | 3, 10 -> Msg.Update_message_error Msg.Invalid_network_field
    | 3, 11 -> Msg.Update_message_error Msg.Malformed_as_path
    | 3, _ -> Msg.Update_message_error Msg.Malformed_attribute_list
    | 4, _ -> Msg.Hold_timer_expired
    | 5, _ -> Msg.Fsm_error
    | _, _ -> Msg.Cease
  in
  Msg.Notification err

let header_min_body = function
  | t when t = type_open -> 10
  | t when t = type_update -> 4
  | t when t = type_route_refresh -> 4
  | _ -> 0

let check_header buf ~pos =
  for i = 0 to 15 do
    if buf.[pos + i] <> '\xFF' then
      fail (Msg.Message_header_error Msg.Connection_not_synchronized)
  done;
  let len = (Char.code buf.[pos + 16] lsl 8) lor Char.code buf.[pos + 17] in
  let mtype = Char.code buf.[pos + 18] in
  if len < Msg.header_len || len > Msg.max_len then
    fail (Msg.Message_header_error (Msg.Bad_message_length len));
  if mtype < type_open || mtype > type_route_refresh then
    fail (Msg.Message_header_error (Msg.Bad_message_type mtype));
  if mtype = type_keepalive && len <> Msg.header_len then
    fail (Msg.Message_header_error (Msg.Bad_message_length len));
  if mtype = type_route_refresh && len <> Msg.header_len + 4 then
    fail (Msg.Message_header_error (Msg.Bad_message_length len));
  if len < Msg.header_len + header_min_body mtype then
    fail (Msg.Message_header_error (Msg.Bad_message_length len));
  (len, mtype)

let decode_at buf ~pos =
  try
    if pos < 0 || pos + Msg.header_len > String.length buf then
      fail (Msg.Message_header_error (Msg.Bad_message_length 0));
    let len, mtype = check_header buf ~pos in
    if pos + len > String.length buf then
      fail (Msg.Message_header_error (Msg.Bad_message_length len));
    let r = { buf; pos = pos + Msg.header_len; limit = pos + len; declared = len } in
    let msg =
      if mtype = type_open then decode_open r
      else if mtype = type_update then decode_update r
      else if mtype = type_notification then decode_notification r
      else if mtype = type_route_refresh then begin
        let afi = ru16 r in
        let _reserved = ru8 r in
        let safi = ru8 r in
        Msg.Route_refresh (afi, safi)
      end
      else Msg.Keepalive
    in
    if r.pos <> r.limit then
      fail (Msg.Message_header_error (Msg.Bad_message_length len));
    Ok (msg, len)
  with Fail e -> Error e

let decode buf =
  match decode_at buf ~pos:0 with
  | Error _ as e -> e
  | Ok (msg, consumed) ->
    if consumed <> String.length buf then
      Error (Msg.Message_header_error (Msg.Bad_message_length consumed))
    else Ok msg

let required_length buf ~pos ~avail =
  if avail < Msg.header_len then Ok None
  else try Ok (Some (fst (check_header buf ~pos))) with Fail e -> Error e

(* Raw path-attribute blocks (no BGP message framing) — used by the MRT
   subsystem, where TABLE_DUMP_V2 RIB entries carry a bare attribute
   blob encoded with 4-octet ASNs. *)

let encode_path_attrs ?(as4 = false) attrs =
  let b = Buffer.create 64 in
  encode_attrs ~as4 b attrs;
  Buffer.contents b

let decode_path_attrs ?(as4 = false) buf ~pos ~len =
  try
    if pos < 0 || len < 0 || pos + len > String.length buf then
      fail (Msg.Update_message_error Msg.Malformed_attribute_list);
    let stop = pos + len in
    let r = { buf; pos; limit = stop; declared = len } in
    (* The span cache is keyed purely on bytes, so it must be bypassed
       whenever the same bytes could decode differently ([as4]). *)
    let attrs =
      if as4 then decode_attrs_slow ~as4 r stop ~nlri_present:true
      else decode_attrs r stop ~nlri_present:true
    in
    match attrs with
    | Some h -> Ok h
    | None -> Error (Msg.Update_message_error Msg.Malformed_attribute_list)
  with Fail e -> Error e
