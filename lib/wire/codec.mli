(** Binary encoding and decoding of BGP-4 messages (RFC 4271 §4).

    The encoder produces exact wire images (16-byte all-ones marker,
    network byte order, one- or two-octet attribute lengths with the
    Extended Length flag as needed).  The decoder validates everything
    the RFC requires and reports failures using the notification error
    taxonomy of {!Msg.error}, so a session can answer a malformed
    message with the RFC-mandated NOTIFICATION. *)

val encode : Msg.t -> string
(** Wire image of a message.
    @raise Invalid_argument if the message would exceed
    {!Msg.max_len} bytes or contains unencodable fields (e.g. a hold
    time outside 16 bits). *)

val encoded_size : Msg.t -> int
(** [String.length (encode m)], without exposing the buffer. *)

val decode : string -> (Msg.t, Msg.error) result
(** Decode a buffer holding exactly one message; trailing bytes are a
    {!Msg.Bad_message_length} error. *)

val decode_at : string -> pos:int -> (Msg.t * int, Msg.error) result
(** Decode one message starting at [pos]; returns the message and the
    number of bytes consumed.  The buffer may extend beyond the
    message. *)

val required_length : string -> pos:int -> avail:int -> (int option, Msg.error) result
(** Stream framing support: given [avail] readable bytes at [pos],
    returns [Some n] when the next message occupies [n] bytes ([n] may
    exceed [avail]; read more and retry), [None] when even the header
    is incomplete, or a header error (bad marker / bad length) that
    must terminate the session. *)

(** {1 Raw path-attribute blocks} — the bare attribute section of an
    UPDATE, without any BGP message framing.  MRT TABLE_DUMP_V2 RIB
    entries (RFC 6396 §4.3) carry exactly this, encoded with 4-octet
    ASNs ([as4]).  4-octet ASNs outside the 16-bit {!Bgp_route.Asn}
    domain are clamped to AS_TRANS (23456, RFC 6793), matching what a
    NEW-to-OLD speaker translation would put on the wire. *)

val encode_path_attrs : ?as4:bool -> Bgp_route.Attrs.t -> string
(** Attribute section bytes for [attrs].  [as4] (default [false])
    selects 4-octet AS encoding in AS_PATH and AGGREGATOR. *)

val decode_path_attrs :
  ?as4:bool -> string -> pos:int -> len:int ->
  (Bgp_route.Attrs.Interned.t, Msg.error) result
(** Decode [len] bytes of attributes at [pos], interning the result.
    The mandatory attributes (ORIGIN, AS_PATH, NEXT_HOP) must all be
    present, as for an UPDATE carrying NLRI.  The byte-span intern
    cache is bypassed when [as4] is set (same bytes, different
    decode). *)

(** {1 Attribute wire constants} — exposed for tests and for malformed
    message construction in failure-injection suites. *)

val attr_origin : int
val attr_as_path : int
val attr_next_hop : int
val attr_med : int
val attr_local_pref : int
val attr_atomic_aggregate : int
val attr_aggregator : int
val attr_community : int
val attr_originator_id : int
val attr_cluster_list : int

val flag_optional : int
val flag_transitive : int
val flag_partial : int
val flag_extended : int
