let version = 4
let header_len = 19
let max_len = 4096
let hold_time_min = 3

type capability =
  | Multiprotocol of int * int
  | Route_refresh
  | Unknown_capability of int * string

type opt_param = Capability of capability | Unknown_param of int * string

type open_msg = {
  opn_version : int;
  opn_asn : Bgp_route.Asn.t;
  opn_hold_time : int;
  opn_bgp_id : Bgp_addr.Ipv4.t;
  opn_params : opt_param list;
}

type update = {
  withdrawn : Bgp_addr.Prefix.t list;
  attrs : Bgp_route.Attrs.Interned.t option;
  nlri : Bgp_addr.Prefix.t list;
}

type header_sub = Connection_not_synchronized | Bad_message_length of int
                | Bad_message_type of int

type open_sub = Unsupported_version of int | Bad_peer_as | Bad_bgp_identifier
              | Unsupported_optional_parameter | Unacceptable_hold_time

type update_sub =
  | Malformed_attribute_list
  | Unrecognized_wellknown_attribute of int
  | Missing_wellknown_attribute of int
  | Attribute_flags_error of int
  | Attribute_length_error of int
  | Invalid_origin_attribute
  | Invalid_next_hop_attribute
  | Optional_attribute_error of int
  | Invalid_network_field
  | Malformed_as_path

type error =
  | Message_header_error of header_sub
  | Open_message_error of open_sub
  | Update_message_error of update_sub
  | Hold_timer_expired
  | Fsm_error
  | Cease

let error_code = function
  | Message_header_error s ->
    ( 1,
      match s with
      | Connection_not_synchronized -> 1
      | Bad_message_length _ -> 2
      | Bad_message_type _ -> 3 )
  | Open_message_error s ->
    ( 2,
      match s with
      | Unsupported_version _ -> 1
      | Bad_peer_as -> 2
      | Bad_bgp_identifier -> 3
      | Unsupported_optional_parameter -> 4
      | Unacceptable_hold_time -> 6 )
  | Update_message_error s ->
    ( 3,
      match s with
      | Malformed_attribute_list -> 1
      | Unrecognized_wellknown_attribute _ -> 2
      | Missing_wellknown_attribute _ -> 3
      | Attribute_flags_error _ -> 4
      | Attribute_length_error _ -> 5
      | Invalid_origin_attribute -> 6
      | Invalid_next_hop_attribute -> 8
      | Optional_attribute_error _ -> 9
      | Invalid_network_field -> 10
      | Malformed_as_path -> 11 )
  | Hold_timer_expired -> (4, 0)
  | Fsm_error -> (5, 0)
  | Cease -> (6, 0)

let pp_error ppf e =
  let code, sub = error_code e in
  let name =
    match e with
    | Message_header_error _ -> "message-header-error"
    | Open_message_error _ -> "open-message-error"
    | Update_message_error _ -> "update-message-error"
    | Hold_timer_expired -> "hold-timer-expired"
    | Fsm_error -> "fsm-error"
    | Cease -> "cease"
  in
  Format.fprintf ppf "%s(%d/%d)" name code sub

type t =
  | Open of open_msg
  | Update of update
  | Keepalive
  | Notification of error
  | Route_refresh of int * int

let open_msg ?(hold_time = 90) ?(params = []) ~asn ~bgp_id () =
  Open
    { opn_version = version; opn_asn = asn; opn_hold_time = hold_time;
      opn_bgp_id = bgp_id; opn_params = params }

let update_interned ?(withdrawn = []) ?attrs ?(nlri = []) () =
  if nlri <> [] && attrs = None then
    invalid_arg "Msg.update: NLRI without path attributes";
  Update { withdrawn; attrs; nlri }

let update ?withdrawn ?attrs ?nlri () =
  update_interned ?withdrawn
    ?attrs:(Option.map Bgp_route.Attrs.Interned.intern attrs)
    ?nlri ()

let announcement attrs nlri = update ~attrs ~nlri ()
let announcement_interned attrs nlri = update_interned ~attrs ~nlri ()
let withdrawal withdrawn = update_interned ~withdrawn ()
let route_refresh = Route_refresh (1, 1)

let kind_name = function
  | Open _ -> "OPEN"
  | Update _ -> "UPDATE"
  | Keepalive -> "KEEPALIVE"
  | Notification _ -> "NOTIFICATION"
  | Route_refresh _ -> "ROUTE-REFRESH"

let pp ppf = function
  | Open o ->
    Format.fprintf ppf "OPEN(v%d %a hold=%ds id=%a)" o.opn_version
      Bgp_route.Asn.pp o.opn_asn o.opn_hold_time Bgp_addr.Ipv4.pp o.opn_bgp_id
  | Update u ->
    Format.fprintf ppf "UPDATE(withdraw=%d announce=%d%t)"
      (List.length u.withdrawn) (List.length u.nlri) (fun ppf ->
        match u.attrs with
        | None -> ()
        | Some a -> Format.fprintf ppf " %a" Bgp_route.Attrs.Interned.pp a)
  | Keepalive -> Format.pp_print_string ppf "KEEPALIVE"
  | Notification e -> Format.fprintf ppf "NOTIFICATION(%a)" pp_error e
  | Route_refresh (afi, safi) ->
    Format.fprintf ppf "ROUTE-REFRESH(afi=%d safi=%d)" afi safi

let nlri_count = function Update u -> List.length u.nlri | _ -> 0
let withdrawn_count = function Update u -> List.length u.withdrawn | _ -> 0
