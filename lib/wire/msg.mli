(** BGP-4 message types (RFC 4271 §4).

    These are the {e semantic} message values; {!Codec} maps them to and
    from the binary wire format. *)

val version : int
(** Protocol version, 4. *)

val header_len : int
(** 19: 16-byte marker + 2-byte length + 1-byte type. *)

val max_len : int
(** 4096, the maximum BGP message size (§4). *)

val hold_time_min : int
(** 3 — smallest nonzero hold time a speaker may offer (§4.2). *)

type capability =
  | Multiprotocol of int * int  (** AFI, SAFI (RFC 2858) *)
  | Route_refresh               (** RFC 2918 *)
  | Unknown_capability of int * string

type opt_param =
  | Capability of capability
  | Unknown_param of int * string

type open_msg = {
  opn_version : int;
  opn_asn : Bgp_route.Asn.t;
  opn_hold_time : int;          (** seconds; 0 disables keepalives *)
  opn_bgp_id : Bgp_addr.Ipv4.t;
  opn_params : opt_param list;
}

type update = {
  withdrawn : Bgp_addr.Prefix.t list;
  attrs : Bgp_route.Attrs.Interned.t option;
      (** Mandatory when [nlri] is non-empty (§5).  Held as an arena
          handle: {!Codec} interns once per decoded UPDATE, so every
          NLRI prefix of the message shares one attribute value. *)
  nlri : Bgp_addr.Prefix.t list;
}

(** Notification error taxonomy (§4.5, §6). *)

type header_sub = Connection_not_synchronized | Bad_message_length of int
                | Bad_message_type of int

type open_sub = Unsupported_version of int | Bad_peer_as | Bad_bgp_identifier
              | Unsupported_optional_parameter | Unacceptable_hold_time

type update_sub =
  | Malformed_attribute_list
  | Unrecognized_wellknown_attribute of int
  | Missing_wellknown_attribute of int
  | Attribute_flags_error of int
  | Attribute_length_error of int
  | Invalid_origin_attribute
  | Invalid_next_hop_attribute
  | Optional_attribute_error of int
  | Invalid_network_field
  | Malformed_as_path

type error =
  | Message_header_error of header_sub
  | Open_message_error of open_sub
  | Update_message_error of update_sub
  | Hold_timer_expired
  | Fsm_error
  | Cease

val error_code : error -> int * int
(** RFC 4271 (code, subcode) pair; subcode 0 when unspecific. *)

val pp_error : Format.formatter -> error -> unit

type t =
  | Open of open_msg
  | Update of update
  | Keepalive
  | Notification of error
  | Route_refresh of int * int
      (** (AFI, SAFI) — RFC 2918; asks the peer to resend its
          Adj-RIB-Out.  AFI 1 / SAFI 1 is IPv4 unicast. *)

val open_msg :
  ?hold_time:int ->
  ?params:opt_param list ->
  asn:Bgp_route.Asn.t ->
  bgp_id:Bgp_addr.Ipv4.t ->
  unit ->
  t
(** Hold time defaults to 90 s. *)

val update :
  ?withdrawn:Bgp_addr.Prefix.t list ->
  ?attrs:Bgp_route.Attrs.t ->
  ?nlri:Bgp_addr.Prefix.t list ->
  unit ->
  t
(** Interns [attrs].
    @raise Invalid_argument if [nlri] is non-empty but [attrs] absent. *)

val update_interned :
  ?withdrawn:Bgp_addr.Prefix.t list ->
  ?attrs:Bgp_route.Attrs.Interned.t ->
  ?nlri:Bgp_addr.Prefix.t list ->
  unit ->
  t
(** Like {!update} but from an existing handle — no arena lookup. *)

val announcement : Bgp_route.Attrs.t -> Bgp_addr.Prefix.t list -> t
val announcement_interned :
  Bgp_route.Attrs.Interned.t -> Bgp_addr.Prefix.t list -> t
val withdrawal : Bgp_addr.Prefix.t list -> t

val route_refresh : t
(** IPv4-unicast route refresh. *)

val kind_name : t -> string
val pp : Format.formatter -> t -> unit

val nlri_count : t -> int
(** Announced prefixes in the message (0 for non-UPDATEs). *)

val withdrawn_count : t -> int
