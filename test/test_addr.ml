open Bgp_addr

let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

(* ------------------------------------------------------------------ *)
(* Ipv4                                                                *)
(* ------------------------------------------------------------------ *)

let test_ipv4_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Ipv4.to_string (ip s)))
    [ "0.0.0.0"; "255.255.255.255"; "10.0.0.1"; "192.168.255.254"; "1.2.3.4" ]

let test_ipv4_octets () =
  let a = Ipv4.of_octets 10 20 30 40 in
  Alcotest.(check string) "octets" "10.20.30.40" (Ipv4.to_string a);
  let x, y, z, w = Ipv4.to_octets a in
  Alcotest.(check (list int)) "back" [ 10; 20; 30; 40 ] [ x; y; z; w ]

let test_ipv4_parse_errors () =
  List.iter
    (fun s ->
      match Ipv4.of_string s with
      | Ok _ -> Alcotest.failf "should reject %S" s
      | Error _ -> ())
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "1.2.3.4 "; " 1.2.3.4"; "a.b.c.d";
      "1..2.3"; "1.2.3.-4"; "01.2.3.4.5"; "1.2.3.4/8"; "1234.1.1.1" ]

let test_ipv4_order () =
  Alcotest.(check bool) "lt" true (Ipv4.compare (ip "1.0.0.0") (ip "2.0.0.0") < 0);
  Alcotest.(check bool)
    "128 > 127" true
    (Ipv4.compare (ip "128.0.0.0") (ip "127.255.255.255") > 0)

let test_ipv4_bits () =
  let a = ip "128.0.0.1" in
  Alcotest.(check bool) "bit0" true (Ipv4.bit a 0);
  Alcotest.(check bool) "bit1" false (Ipv4.bit a 1);
  Alcotest.(check bool) "bit31" true (Ipv4.bit a 31);
  Alcotest.check_raises "bit32" (Invalid_argument "Ipv4.bit: index out of range")
    (fun () -> ignore (Ipv4.bit a 32))

let test_ipv4_mask () =
  Alcotest.(check string) "/8" "255.0.0.0" (Ipv4.to_string (Ipv4.mask 8));
  Alcotest.(check string) "/0" "0.0.0.0" (Ipv4.to_string (Ipv4.mask 0));
  Alcotest.(check string) "/32" "255.255.255.255" (Ipv4.to_string (Ipv4.mask 32));
  Alcotest.(check string) "/19" "255.255.224.0" (Ipv4.to_string (Ipv4.mask 19));
  Alcotest.(check string) "apply" "10.1.0.0"
    (Ipv4.to_string (Ipv4.apply_mask (ip "10.1.2.3") 16))

let test_ipv4_arith () =
  Alcotest.(check string) "succ" "1.2.3.5" (Ipv4.to_string (Ipv4.succ (ip "1.2.3.4")));
  Alcotest.(check string) "wrap" "0.0.0.0" (Ipv4.to_string (Ipv4.succ Ipv4.broadcast));
  Alcotest.(check string) "add 256" "1.2.4.4"
    (Ipv4.to_string (Ipv4.add (ip "1.2.3.4") 256))

let test_common_prefix_len () =
  let check a b expect =
    Alcotest.(check int)
      (Printf.sprintf "%s %s" a b)
      expect
      (Ipv4.common_prefix_len (ip a) (ip b))
  in
  check "0.0.0.0" "0.0.0.0" 32;
  check "0.0.0.0" "128.0.0.0" 0;
  check "10.0.0.0" "10.0.0.1" 31;
  check "10.0.0.0" "10.128.0.0" 8;
  check "192.168.1.0" "192.168.1.128" 24

(* ------------------------------------------------------------------ *)
(* Prefix                                                              *)
(* ------------------------------------------------------------------ *)

let test_prefix_canonical () =
  let p = Prefix.make (ip "10.1.2.3") 16 in
  Alcotest.(check string) "canonical" "10.1.0.0/16" (Prefix.to_string p);
  Alcotest.(check bool) "equal" true (Prefix.equal p (pfx "10.1.0.0/16"))

let test_prefix_parse () =
  Alcotest.(check string) "p24" "192.168.1.0/24" (Prefix.to_string (pfx "192.168.1.0/24"));
  Alcotest.(check string) "bare /32" "1.2.3.4/32" (Prefix.to_string (pfx "1.2.3.4"));
  List.iter
    (fun s ->
      match Prefix.of_string s with
      | Ok _ -> Alcotest.failf "should reject %S" s
      | Error _ -> ())
    [ "10.0.0.1/24"; "10.0.0.0/33"; "10.0.0.0/-1"; "10.0.0.0/"; "/24";
      "10.0.0.0/2 4";
      (* int_of_string-isms a strict decimal length parser must reject *)
      "10.0.0.0/0x18"; "10.0.0.0/2_4"; "10.0.0.0/+24"; "10.0.0.0/024" ]

let test_prefix_mem_subsumes () =
  let p = pfx "10.0.0.0/8" in
  Alcotest.(check bool) "mem in" true (Prefix.mem (ip "10.200.3.4") p);
  Alcotest.(check bool) "mem out" false (Prefix.mem (ip "11.0.0.0") p);
  Alcotest.(check bool) "subsumes" true (Prefix.subsumes p (pfx "10.42.0.0/16"));
  Alcotest.(check bool) "not subsumes" false
    (Prefix.subsumes (pfx "10.42.0.0/16") p);
  Alcotest.(check bool) "self" true (Prefix.subsumes p p);
  Alcotest.(check bool) "default subsumes all" true
    (Prefix.subsumes Prefix.default (pfx "203.0.113.0/24"))

let test_prefix_range () =
  let p = pfx "192.168.1.0/24" in
  Alcotest.(check string) "first" "192.168.1.0" (Ipv4.to_string (Prefix.first p));
  Alcotest.(check string) "last" "192.168.1.255" (Ipv4.to_string (Prefix.last p));
  Alcotest.(check (float 0.1)) "size" 256.0 (Prefix.size p);
  Alcotest.(check (float 1.0)) "size default" (Float.pow 2.0 32.0)
    (Prefix.size Prefix.default)

let test_prefix_split () =
  match Prefix.split (pfx "10.0.0.0/8") with
  | None -> Alcotest.fail "split /8 must succeed"
  | Some (lo, hi) ->
    Alcotest.(check string) "lo" "10.0.0.0/9" (Prefix.to_string lo);
    Alcotest.(check string) "hi" "10.128.0.0/9" (Prefix.to_string hi);
    Alcotest.(check bool) "split /32" true (Prefix.split (pfx "1.2.3.4/32") = None)

let test_prefix_wire_octets () =
  List.iter
    (fun (s, n) -> Alcotest.(check int) s n (Prefix.wire_octets (pfx s)))
    [ ("0.0.0.0/0", 0); ("10.0.0.0/8", 1); ("10.128.0.0/9", 2); ("10.1.0.0/16", 2);
      ("10.1.1.0/24", 3); ("10.1.1.0/25", 4); ("10.1.1.1/32", 4) ]

(* ------------------------------------------------------------------ *)
(* Prefix_set                                                          *)
(* ------------------------------------------------------------------ *)

let test_set_basic () =
  let s = Prefix_set.of_list [ pfx "10.0.0.0/8"; pfx "10.1.0.0/16"; pfx "192.168.0.0/16" ] in
  Alcotest.(check int) "cardinal" 3 (Prefix_set.cardinal s);
  Alcotest.(check bool) "mem" true (Prefix_set.mem (pfx "10.1.0.0/16") s);
  Alcotest.(check bool) "not mem" false (Prefix_set.mem (pfx "10.1.0.0/17") s)

let test_set_covering () =
  let s = Prefix_set.of_list [ pfx "10.0.0.0/8"; pfx "10.1.0.0/16"; pfx "0.0.0.0/0" ] in
  let covers = Prefix_set.covering (pfx "10.1.2.0/24") s in
  Alcotest.(check (list string)) "covering"
    [ "0.0.0.0/0"; "10.0.0.0/8"; "10.1.0.0/16" ]
    (List.map Prefix.to_string covers);
  Alcotest.(check (option string)) "best" (Some "10.1.0.0/16")
    (Option.map Prefix.to_string (Prefix_set.best_covering (pfx "10.1.2.0/24") s));
  Alcotest.(check bool) "covers addr" true (Prefix_set.covers_addr (ip "10.9.9.9") s);
  Alcotest.(check bool) "empty covers nothing" false
    (Prefix_set.covers_addr (ip "10.9.9.9") Prefix_set.empty)

(* ------------------------------------------------------------------ *)
(* Prefix_gen                                                          *)
(* ------------------------------------------------------------------ *)

let test_gen_deterministic () =
  let a = Prefix_gen.table ~seed:7 ~n:500 () in
  let b = Prefix_gen.table ~seed:7 ~n:500 () in
  Alcotest.(check bool) "same" true
    (Array.for_all2 Prefix.equal a b);
  let c = Prefix_gen.table ~seed:8 ~n:500 () in
  Alcotest.(check bool) "different seed differs" false
    (Array.for_all2 Prefix.equal a c)

let test_gen_distinct () =
  let t = Prefix_gen.table ~seed:1 ~n:5000 () in
  let set = Hashtbl.create 8192 in
  Array.iter (fun p -> Hashtbl.replace set p ()) t;
  Alcotest.(check int) "all distinct" 5000 (Hashtbl.length set)

let test_gen_prefix_property () =
  (* A longer table extends a shorter one for the same seed. *)
  let small = Prefix_gen.table ~seed:3 ~n:100 () in
  let big = Prefix_gen.table ~seed:3 ~n:1000 () in
  Array.iteri
    (fun i p -> Alcotest.(check bool) "extends" true (Prefix.equal p big.(i)))
    small

let test_gen_shape () =
  let t = Prefix_gen.table ~seed:42 ~n:20_000 () in
  let hist = Prefix_gen.length_histogram t in
  let count l = Option.value ~default:0 (List.assoc_opt l hist) in
  (* Mode must be /24 and short prefixes must be rare. *)
  List.iter
    (fun (l, c) ->
      if l <> 24 && c >= count 24 then
        Alcotest.failf "mode is /%d (%d) not /24 (%d)" l c (count 24))
    hist;
  Alcotest.(check bool) "short tail thin" true (count 8 * 20 < count 24);
  List.iter
    (fun (l, _) ->
      if l < 8 || l > 24 then Alcotest.failf "unexpected length /%d" l)
    hist

let test_gen_valid_space () =
  let t = Prefix_gen.table ~seed:42 ~n:5000 () in
  Array.iter
    (fun p ->
      let o, _, _, _ = Ipv4.to_octets (Prefix.addr p) in
      if o = 0 || o = 127 || o > 223 then
        Alcotest.failf "prefix %s outside plausible unicast space"
          (Prefix.to_string p))
    t

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let arb_ipv4 =
  QCheck2.Gen.map Ipv4.of_int (QCheck2.Gen.int_range 0 0xFFFF_FFFF)

let arb_prefix =
  QCheck2.Gen.map2
    (fun a l -> Prefix.make a l)
    arb_ipv4
    (QCheck2.Gen.int_range 0 32)

let prop_ipv4_string_roundtrip =
  QCheck2.Test.make ~name:"ipv4 to_string/of_string roundtrip" ~count:1000
    arb_ipv4 (fun a ->
      match Ipv4.of_string (Ipv4.to_string a) with
      | Ok b -> Ipv4.equal a b
      | Error _ -> false)

let prop_prefix_string_roundtrip =
  QCheck2.Test.make ~name:"prefix to_string/of_string roundtrip" ~count:1000
    arb_prefix (fun p ->
      match Prefix.of_string (Prefix.to_string p) with
      | Ok q -> Prefix.equal p q
      | Error _ -> false)

let prop_mask_idempotent =
  QCheck2.Test.make ~name:"apply_mask idempotent" ~count:1000
    QCheck2.Gen.(pair arb_ipv4 (int_range 0 32))
    (fun (a, l) ->
      let m = Ipv4.apply_mask a l in
      Ipv4.equal m (Ipv4.apply_mask m l))

let prop_common_prefix_symmetric =
  QCheck2.Test.make ~name:"common_prefix_len symmetric and consistent" ~count:1000
    QCheck2.Gen.(pair arb_ipv4 arb_ipv4)
    (fun (a, b) ->
      let l = Ipv4.common_prefix_len a b in
      l = Ipv4.common_prefix_len b a
      && l >= 0 && l <= 32
      && Ipv4.equal (Ipv4.apply_mask a l) (Ipv4.apply_mask b l)
      && (l = 32 || Ipv4.bit a l <> Ipv4.bit b l))

let prop_subsumes_partial_order =
  QCheck2.Test.make ~name:"subsumes is a partial order" ~count:1000
    QCheck2.Gen.(triple arb_prefix arb_prefix arb_prefix)
    (fun (p, q, r) ->
      Prefix.subsumes p p
      && ((not (Prefix.subsumes p q && Prefix.subsumes q p)) || Prefix.equal p q)
      && ((not (Prefix.subsumes p q && Prefix.subsumes q r)) || Prefix.subsumes p r))

let prop_split_partitions =
  QCheck2.Test.make ~name:"split partitions the prefix" ~count:1000 arb_prefix
    (fun p ->
      match Prefix.split p with
      | None -> Prefix.len p = 32
      | Some (lo, hi) ->
        Prefix.subsumes p lo && Prefix.subsumes p hi
        && (not (Prefix.subsumes lo hi))
        && (not (Prefix.subsumes hi lo))
        && Prefix.size lo +. Prefix.size hi = Prefix.size p)

let prop_mem_first_last =
  QCheck2.Test.make ~name:"first/last bound membership" ~count:1000 arb_prefix
    (fun p ->
      Prefix.mem (Prefix.first p) p
      && Prefix.mem (Prefix.last p) p
      && (Prefix.len p = 0
         || not (Prefix.mem (Ipv4.succ (Prefix.last p)) p)
         || Ipv4.equal (Prefix.last p) Ipv4.broadcast))

let prop_gen_same_seed_identical =
  (* Any seed, any table size: re-generation yields the identical
     stream — the repeatability every topology run depends on. *)
  QCheck2.Test.make ~name:"prefix_gen same seed, identical stream" ~count:50
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 400))
    (fun (seed, n) ->
      let a = Prefix_gen.table ~seed ~n () in
      let b = Prefix_gen.table ~seed ~n () in
      Array.for_all2 Prefix.equal a b)

let prop_gen_distinct_seeds_disjoint =
  (* Streams of different seeds may share the odd prefix (the space is
     finite) but must be overwhelmingly disjoint: allow at most 10%
     overlap between two independently seeded tables. *)
  QCheck2.Test.make ~name:"prefix_gen distinct seeds, mostly disjoint"
    ~count:50
    QCheck2.Gen.(
      triple (int_range 0 1_000_000) (int_range 1 1_000_000)
        (int_range 50 300))
    (fun (s1, delta, n) ->
      let s2 = s1 + delta in
      let a = Prefix_gen.table ~seed:s1 ~n () in
      let b = Prefix_gen.table ~seed:s2 ~n () in
      let seen = Hashtbl.create (2 * n) in
      Array.iter (fun p -> Hashtbl.replace seen p ()) a;
      let shared =
        Array.fold_left
          (fun acc p -> if Hashtbl.mem seen p then acc + 1 else acc)
          0 b
      in
      shared * 10 <= n)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "bgp_addr"
    [ ( "ipv4",
        [ Alcotest.test_case "roundtrip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "octets" `Quick test_ipv4_octets;
          Alcotest.test_case "parse errors" `Quick test_ipv4_parse_errors;
          Alcotest.test_case "ordering" `Quick test_ipv4_order;
          Alcotest.test_case "bits" `Quick test_ipv4_bits;
          Alcotest.test_case "masks" `Quick test_ipv4_mask;
          Alcotest.test_case "arithmetic" `Quick test_ipv4_arith;
          Alcotest.test_case "common prefix length" `Quick test_common_prefix_len
        ] );
      ( "prefix",
        [ Alcotest.test_case "canonicalization" `Quick test_prefix_canonical;
          Alcotest.test_case "parsing" `Quick test_prefix_parse;
          Alcotest.test_case "mem/subsumes" `Quick test_prefix_mem_subsumes;
          Alcotest.test_case "first/last/size" `Quick test_prefix_range;
          Alcotest.test_case "split" `Quick test_prefix_split;
          Alcotest.test_case "wire octets" `Quick test_prefix_wire_octets
        ] );
      ( "prefix_set",
        [ Alcotest.test_case "basic" `Quick test_set_basic;
          Alcotest.test_case "covering" `Quick test_set_covering
        ] );
      ( "prefix_gen",
        [ Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "distinct" `Quick test_gen_distinct;
          Alcotest.test_case "prefix property" `Quick test_gen_prefix_property;
          Alcotest.test_case "length distribution shape" `Quick test_gen_shape;
          Alcotest.test_case "plausible address space" `Quick test_gen_valid_space
        ] );
      qsuite "properties"
        [ prop_ipv4_string_roundtrip; prop_prefix_string_roundtrip;
          prop_mask_idempotent; prop_common_prefix_symmetric;
          prop_subsumes_partial_order; prop_split_partitions;
          prop_mem_first_last; prop_gen_same_seed_identical;
          prop_gen_distinct_seeds_disjoint ]
    ]
