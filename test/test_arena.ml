(* Properties of the hash-consing attribute arena: interning is
   idempotent, preserves structural equality, survives the wire codec,
   and the memoized decision-preference tuple agrees with the decision
   process on random attribute pairs. *)

open Bgp_wire
module A = Bgp_route.Attrs
module I = A.Interned
module Asn = Bgp_route.Asn
module As_path = Bgp_route.As_path
module Community = Bgp_route.Community
module Route = Bgp_route.Route
module Peer = Bgp_route.Peer
module Ipv4 = Bgp_addr.Ipv4
module Prefix = Bgp_addr.Prefix
module Decision = Bgp_rib.Decision

let ip = Ipv4.of_string_exn
let asn = Asn.of_int

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_asn = QCheck2.Gen.map Asn.of_int (QCheck2.Gen.int_range 1 65535)

let gen_seg =
  QCheck2.Gen.(
    bind bool (fun is_set ->
        map
          (fun l -> if is_set then As_path.Set l else As_path.Seq l)
          (list_size (int_range 1 6) gen_asn)))

(* Deliberately narrow value ranges: collisions between independently
   generated attribute sets are what exercise the arena's sharing. *)
let gen_attrs =
  QCheck2.Gen.(
    let* segs = list_size (int_range 0 2) gen_seg in
    let* origin = oneofl [ A.Igp; A.Egp; A.Incomplete ] in
    let* med = option (int_range 0 3) in
    let* lp = option (int_range 99 101) in
    let* ncomm = int_range 0 3 in
    let* comm_raw = list_size (return ncomm) (int_range 0 5) in
    let* nh = map Ipv4.of_int (int_range 1 4) in
    return
      (A.make ~origin ?med ?local_pref:lp
         ~communities:(List.map Community.of_int32_value comm_raw)
         ~as_path:(As_path.of_segments segs) ~next_hop:nh ()))

let gen_attrs_pair = QCheck2.Gen.pair gen_attrs gen_attrs

let print_attrs a = Format.asprintf "%a" A.pp a
let print_pair (a, b) = print_attrs a ^ " / " ^ print_attrs b

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let prop_idempotent =
  QCheck2.Test.make ~name:"intern (value (intern a)) == intern a" ~count:500
    ~print:print_attrs gen_attrs (fun a ->
      let h = I.intern a in
      I.intern (I.value h) == h && I.intern a == h)

let prop_preserves_equal =
  QCheck2.Test.make ~name:"Interned.equal mirrors Attrs.equal" ~count:1000
    ~print:print_pair gen_attrs_pair (fun (a, b) ->
      I.equal (I.intern a) (I.intern b) = A.equal a b)

let prop_id_equality =
  QCheck2.Test.make ~name:"equal attrs share one handle (same id)" ~count:1000
    ~print:print_pair gen_attrs_pair (fun (a, b) ->
      if A.equal a b then I.id (I.intern a) = I.id (I.intern b)
      else I.id (I.intern a) <> I.id (I.intern b))

let prop_community_order =
  QCheck2.Test.make
    ~name:"community order and duplicates do not split arena entries"
    ~count:500 ~print:print_attrs gen_attrs (fun a ->
      let cs = a.A.communities in
      let scrambled =
        A.make ~origin:a.A.origin ?med:a.A.med ?local_pref:a.A.local_pref
          ~communities:(List.rev cs @ cs) ~as_path:a.A.as_path
          ~next_hop:a.A.next_hop ()
      in
      I.intern scrambled == I.intern a)

let prop_wire_roundtrip =
  QCheck2.Test.make ~name:"wire roundtrip returns the same handle"
    ~count:500 ~print:print_attrs gen_attrs (fun a ->
      let h = I.intern a in
      let m = Msg.announcement_interned h [ Prefix.of_string_exn "203.0.113.0/24" ] in
      match Codec.decode (Codec.encode m) with
      | Ok (Msg.Update { Msg.attrs = Some h'; _ }) -> h' == h
      | Ok _ | Error _ -> false)

let prop_pref_memo =
  QCheck2.Test.make ~name:"memoized pref tuple matches direct reads"
    ~count:1000 ~print:print_attrs gen_attrs (fun a ->
      let p = I.pref (I.intern a) in
      p.A.pr_local_pref
      = Option.value ~default:A.default_local_pref a.A.local_pref
      && p.A.pr_path_len = As_path.length a.A.as_path
      && p.A.pr_origin = A.origin_to_int a.A.origin
      && p.A.pr_med = Option.value ~default:0 a.A.med
      && Option.equal Asn.equal p.A.pr_first_hop
           (As_path.first_hop a.A.as_path))

(* Reference implementation of the attribute-dependent decision steps,
   reading the raw records rather than the memoized tuples. *)
let ref_attr_compare a b =
  let lp x = Option.value ~default:A.default_local_pref x.A.local_pref in
  let med x = Option.value ~default:0 x.A.med in
  let steps =
    [ (fun () -> Int.compare (lp a) (lp b));
      (fun () ->
        Int.compare (As_path.length b.A.as_path) (As_path.length a.A.as_path));
      (fun () ->
        Int.compare
          (A.origin_to_int b.A.origin)
          (A.origin_to_int a.A.origin));
      (fun () ->
        match As_path.first_hop a.A.as_path, As_path.first_hop b.A.as_path with
        | Some na, Some nb when Asn.equal na nb ->
          Int.compare (med b) (med a)
        | _ -> 0)
    ]
  in
  List.fold_left (fun c step -> if c <> 0 then c else step ()) 0 steps

let peer1 = Peer.make ~id:1 ~asn:(asn 65001) ~router_id:(ip "10.0.0.1") ~addr:(ip "10.0.0.1")
let peer2 = Peer.make ~id:2 ~asn:(asn 65002) ~router_id:(ip "10.0.0.2") ~addr:(ip "10.0.0.2")

let prop_decision_agrees =
  QCheck2.Test.make
    ~name:"decision process agrees with raw-attribute reference" ~count:1000
    ~print:print_pair gen_attrs_pair (fun (a, b) ->
      let prefix = Prefix.of_string_exn "203.0.113.0/24" in
      let ra = Route.make ~prefix ~attrs:a ~from:peer1 in
      let rb = Route.make ~prefix ~attrs:b ~from:peer2 in
      let c, rule = Decision.compare_routes ~local_asn:(asn 65000) ra rb in
      let expected = ref_attr_compare a b in
      if expected <> 0 then compare expected 0 = compare c 0
      else
        (* Attributes tie through every memoized step; both peers are
           EBGP and non-local, so the discriminator must be a peer
           property, not an attribute. *)
        match rule with
        | Decision.Router_id | Decision.Peer_address | Decision.Identical ->
          true
        | _ -> false)

(* ------------------------------------------------------------------ *)
(* Unit tests: stats accounting and sharing toggle                     *)
(* ------------------------------------------------------------------ *)

let distinct_attrs tag =
  (* A set unlikely to collide with generator output: MED far outside
     the generator's range keys each call to a fresh arena entry. *)
  A.make ~med:(1_000_000 + tag)
    ~as_path:(As_path.of_asns [ asn 64512 ])
    ~next_hop:(ip "198.51.100.1") ()

let test_stats_accounting () =
  let before = I.stats () in
  let a = distinct_attrs 1 in
  let h1 = I.intern a in
  let h2 = I.intern a in
  let after = I.stats () in
  Alcotest.(check bool) "same handle" true (h1 == h2);
  Alcotest.(check int) "two interns" (before.I.interns + 2) after.I.interns;
  Alcotest.(check int) "one hit" (before.I.hits + 1) after.I.hits;
  Alcotest.(check int) "one new live entry" (before.I.live + 1) after.I.live;
  Alcotest.(check bool) "saved bytes grew" true
    (after.I.saved_bytes > before.I.saved_bytes)

let test_sharing_off_structural () =
  let a = distinct_attrs 2 in
  let h0 = I.intern a in
  Fun.protect
    ~finally:(fun () -> I.set_sharing true)
    (fun () ->
      I.set_sharing false;
      let h1 = I.intern a in
      let h2 = I.intern a in
      Alcotest.(check bool) "fresh handles" true (h1 != h2);
      Alcotest.(check bool) "distinct ids" true (I.id h1 <> I.id h2);
      Alcotest.(check bool) "still equal (structural fallback)" true
        (I.equal h1 h2 && I.equal h0 h1))

let test_clear_keeps_ids_fresh () =
  let a = distinct_attrs 3 in
  let h_old = I.intern a in
  I.clear ();
  let s = I.stats () in
  Alcotest.(check int) "stats zeroed" 0 (s.I.interns + s.I.hits + s.I.live);
  let h_new = I.intern a in
  Alcotest.(check bool) "post-clear id is fresh" true
    (I.id h_new > I.id h_old);
  Alcotest.(check bool) "stale handle still structurally equal" true
    (I.equal h_old h_new)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "arena"
    [ qsuite "properties"
        [ prop_idempotent; prop_preserves_equal; prop_id_equality;
          prop_community_order; prop_wire_roundtrip; prop_pref_memo;
          prop_decision_agrees ];
      ( "units",
        [ Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
          Alcotest.test_case "sharing off keeps structural equality" `Quick
            test_sharing_off_structural;
          Alcotest.test_case "clear keeps ids fresh" `Quick
            test_clear_keeps_ids_fresh ] ) ]
