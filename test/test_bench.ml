(* Integration tests: router + speakers + harness, at reduced scale.
   These assert the semantic correctness of full benchmark runs and the
   paper's qualitative shapes (DESIGN.md section 5). *)

module H = Bgpmark.Harness
module Scenario = Bgpmark.Scenario
module Arch = Bgp_router.Arch
module Traffic = Bgp_netsim.Traffic

let small_config = { H.default_config with H.table_size = 400 }

let run ?(config = small_config) arch id =
  H.run ~config arch (Scenario.of_id_exn id)

let check_verified r =
  match r.H.verified with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "%s scenario %d failed verification: %s" r.H.arch_name
      r.H.scenario.Scenario.id e

(* ------------------------------------------------------------------ *)
(* Correctness of full runs                                            *)
(* ------------------------------------------------------------------ *)

let test_all_scenarios_verify_pentium3 () =
  List.iter
    (fun sc ->
      let r = H.run ~config:small_config Arch.pentium3 sc in
      check_verified r;
      Alcotest.(check int)
        (Printf.sprintf "scenario %d counts all prefixes" sc.Scenario.id)
        400 r.H.measured_prefixes;
      Alcotest.(check bool) "positive tps" true (r.H.tps > 0.0))
    Scenario.all

let test_all_archs_scenario1_verify () =
  List.iter
    (fun arch ->
      let r = H.run ~config:small_config arch (Scenario.of_id_exn 1) in
      check_verified r;
      Alcotest.(check int) "fib holds table" 400 r.H.fib_size_end)
    Arch.all

let test_deterministic () =
  let a = run Arch.pentium3 5 in
  let b = run Arch.pentium3 5 in
  Alcotest.(check (float 1e-9)) "same tps" a.H.tps b.H.tps;
  Alcotest.(check (float 1e-9)) "same duration" a.H.measure_seconds
    b.H.measure_seconds

let test_seed_changes_table_not_shape () =
  let c1 = { small_config with H.seed = 1 } in
  let c2 = { small_config with H.seed = 2 } in
  let a = H.run ~config:c1 Arch.pentium3 (Scenario.of_id_exn 1) in
  let b = H.run ~config:c2 Arch.pentium3 (Scenario.of_id_exn 1) in
  check_verified a;
  check_verified b;
  (* different tables, same workload shape: within 10% *)
  Alcotest.(check bool) "tps stable across seeds" true
    (Float.abs (a.H.tps -. b.H.tps) /. a.H.tps < 0.1)

(* ------------------------------------------------------------------ *)
(* Paper shape criteria                                                *)
(* ------------------------------------------------------------------ *)

let test_packet_size_speedup () =
  let s1 = run Arch.pentium3 1 and s2 = run Arch.pentium3 2 in
  Alcotest.(check bool) "large packets faster (startup)" true
    (s2.H.tps > 1.3 *. s1.H.tps);
  let s5 = run Arch.pentium3 5 and s6 = run Arch.pentium3 6 in
  Alcotest.(check bool) "large packets faster (incremental)" true
    (s6.H.tps > 1.3 *. s5.H.tps)

let test_no_fib_change_fastest () =
  let tps id = (run Arch.pentium3 id).H.tps in
  let s5 = tps 5 in
  List.iter
    (fun id ->
      if tps id >= s5 then
        Alcotest.failf "scenario %d should be slower than scenario 5" id)
    [ 1; 3; 7 ]

let test_scenario7_8_close () =
  let s7 = run Arch.pentium3 7 and s8 = run Arch.pentium3 8 in
  let hi = Float.max s7.H.tps s8.H.tps and lo = Float.min s7.H.tps s8.H.tps in
  Alcotest.(check bool) "within 2x" true (hi <= 2.0 *. lo)

let test_architecture_ordering () =
  List.iter
    (fun id ->
      let xeon = (run Arch.xeon id).H.tps in
      let p3 = (run Arch.pentium3 id).H.tps in
      let ixp = (run Arch.ixp2400 id).H.tps in
      if not (xeon > 3.0 *. p3 && p3 > 3.0 *. ixp) then
        Alcotest.failf "ordering violated on scenario %d: %.1f / %.1f / %.1f" id
          xeon p3 ixp)
    [ 1; 5; 7 ]

let test_commercial_shape () =
  (* Cisco: ~10.7 tps on small packets regardless of scenario; beats
     the Xeon on scenario 8. *)
  List.iter
    (fun id ->
      let r = run Arch.cisco3620 id in
      if Float.abs (r.H.tps -. 10.7) > 1.0 then
        Alcotest.failf "cisco small-packet tps %f (scenario %d)" r.H.tps id)
    [ 1; 3; 5; 7 ];
  let cisco8 = (run Arch.cisco3620 8).H.tps in
  let xeon8 = (run Arch.xeon 8).H.tps in
  Alcotest.(check bool) "cisco wins scenario 8" true (cisco8 > xeon8)

(* ------------------------------------------------------------------ *)
(* Cross-traffic                                                       *)
(* ------------------------------------------------------------------ *)

let with_cross mbps = { small_config with H.cross_traffic = Traffic.make ~mbps () }

let test_cross_traffic_degrades_shared () =
  let base = run Arch.pentium3 1 in
  let loaded = H.run ~config:(with_cross 250.0) Arch.pentium3 (Scenario.of_id_exn 1) in
  check_verified loaded;
  Alcotest.(check bool) "pentium3 degrades" true
    (loaded.H.tps < 0.75 *. base.H.tps)

let test_cross_traffic_spares_dedicated () =
  let base = run Arch.ixp2400 5 in
  let loaded = H.run ~config:(with_cross 900.0) Arch.ixp2400 (Scenario.of_id_exn 5) in
  check_verified loaded;
  Alcotest.(check bool) "ixp2400 unaffected" true
    (Float.abs (loaded.H.tps -. base.H.tps) /. base.H.tps < 0.02)

let test_cross_traffic_cisco_contrast () =
  (* Small packets: negligible change. Large packets: drastic drop. *)
  let s1_base = run Arch.cisco3620 1 in
  let s1_load = H.run ~config:(with_cross 78.0) Arch.cisco3620 (Scenario.of_id_exn 1) in
  Alcotest.(check bool) "small barely moves" true
    (s1_load.H.tps > 0.9 *. s1_base.H.tps);
  let s8_base = run Arch.cisco3620 8 in
  let s8_load = H.run ~config:(with_cross 78.0) Arch.cisco3620 (Scenario.of_id_exn 8) in
  Alcotest.(check bool) "large drops drastically" true
    (s8_load.H.tps < 0.25 *. s8_base.H.tps)

let test_forwarding_dip_under_bgp_load () =
  (* Fig 6(c): during scenario 8 with 300 Mbps cross-traffic on the
     uni-core router, forwarding loses some throughput. *)
  let config =
    { (with_cross 300.0) with H.trace_interval = Some 0.5; table_size = 800 }
  in
  let r = H.run ~config Arch.pentium3 (Scenario.of_id_exn 8) in
  check_verified r;
  Alcotest.(check bool) "trace recorded" true (List.length r.H.trace > 3);
  Alcotest.(check bool) "forwarding dipped" true (r.H.fwd_ratio_min < 0.98);
  Alcotest.(check bool) "but did not collapse" true (r.H.fwd_ratio_min > 0.5)

let test_interrupt_share_at_300mbps () =
  (* Fig 6(b): ~20-30% of the Pentium III is interrupt processing at
     300 Mbps. *)
  let config =
    { (with_cross 300.0) with H.trace_interval = Some 0.5; table_size = 800 }
  in
  let r = H.run ~config Arch.pentium3 (Scenario.of_id_exn 8) in
  let busy_samples =
    List.filter (fun s -> s.Bgp_sim.Trace.s_interrupt > 1.0) r.H.trace
  in
  Alcotest.(check bool) "has samples" true (busy_samples <> []);
  List.iter
    (fun s ->
      let irq = s.Bgp_sim.Trace.s_interrupt in
      if irq < 20.0 || irq > 40.0 then
        Alcotest.failf "interrupt share %.1f%% outside 20-40%%" irq)
    busy_samples

(* ------------------------------------------------------------------ *)
(* Traces (figures 3/4)                                                *)
(* ------------------------------------------------------------------ *)

let test_trace_shows_xorp_processes () =
  let config = { small_config with H.trace_interval = Some 0.25 } in
  let r = H.run ~config Arch.pentium3 (Scenario.of_id_exn 6) in
  match r.H.trace with
  | [] -> Alcotest.fail "no trace"
  | s :: _ ->
    let names = List.map fst s.Bgp_sim.Trace.s_procs in
    List.iter
      (fun n ->
        if not (List.mem n names) then Alcotest.failf "missing process %s" n)
      [ "xorp_bgp"; "xorp_policy"; "xorp_rib"; "xorp_fea"; "xorp_rtrmgr" ]

let test_xeon_pipelines_above_one_core () =
  (* Fig 3(b): on the dual-core system the aggregate process load
     exceeds 100% of one core — the pipeline really runs in parallel. *)
  let config =
    { small_config with H.table_size = 3000; trace_interval = Some 0.25 }
  in
  let r = H.run ~config Arch.xeon (Scenario.of_id_exn 1) in
  let peak =
    List.fold_left
      (fun acc s -> Float.max acc (Bgp_sim.Trace.total_user_percent s))
      0.0 r.H.trace
  in
  Alcotest.(check bool)
    (Printf.sprintf "peak aggregate load %.0f%% > 100%%" peak)
    true (peak > 100.0);
  (* ...while the uni-core can never exceed its single core *)
  let r3 = H.run ~config Arch.pentium3 (Scenario.of_id_exn 1) in
  List.iter
    (fun s ->
      let total =
        Bgp_sim.Trace.total_user_percent s +. s.Bgp_sim.Trace.s_interrupt
        +. s.Bgp_sim.Trace.s_forwarding
      in
      if total > 101.0 then
        Alcotest.failf "uni-core exceeded one core: %.1f%%" total)
    r3.H.trace

let test_rtrmgr_heavy_on_ixp () =
  (* Fig 3(c): the router manager is a considerable share on the
     XScale, hardly visible on the Pentium III. *)
  let config = { small_config with H.trace_interval = Some 1.0 } in
  let avg_rtrmgr arch =
    let r = H.run ~config arch (Scenario.of_id_exn 6) in
    let samples = r.H.trace in
    let total, n =
      List.fold_left
        (fun (acc, n) s ->
          ( acc +. Option.value ~default:0.0
                     (List.assoc_opt "xorp_rtrmgr" s.Bgp_sim.Trace.s_procs),
            n + 1 ))
        (0.0, 0) samples
    in
    if n = 0 then 0.0 else total /. float_of_int n
  in
  let ixp = avg_rtrmgr Arch.ixp2400 and p3 = avg_rtrmgr Arch.pentium3 in
  Alcotest.(check bool) "considerable on XScale" true (ixp > 10.0);
  Alcotest.(check bool) "hardly visible on Pentium III" true (p3 < 3.0)

(* ------------------------------------------------------------------ *)
(* Varied-path (Internet-shaped) workload ablation                      *)
(* ------------------------------------------------------------------ *)

let test_varied_paths_verify () =
  let config = { small_config with H.varied_paths = true } in
  List.iter
    (fun id ->
      let r = H.run ~config Arch.pentium3 (Scenario.of_id_exn id) in
      check_verified r)
    [ 1; 3; 5; 7 ]

let test_varied_paths_shape_stable () =
  (* The workload realism knob must not change who wins or the broad
     magnitudes (within 40%). *)
  let uniform = (run Arch.pentium3 1).H.tps in
  let varied =
    (H.run
       ~config:{ small_config with H.varied_paths = true }
       Arch.pentium3 (Scenario.of_id_exn 1))
      .H.tps
  in
  Alcotest.(check bool) "within 40%" true
    (Float.abs (uniform -. varied) /. uniform < 0.4)

(* ------------------------------------------------------------------ *)
(* Peering-density extension + prefix-limit protection                  *)
(* ------------------------------------------------------------------ *)

let test_peers_sweep_monotone () =
  let sweep =
    Bgpmark.Peers_sweep.run ~table_size:300 ~counts:[ 2; 8 ] Arch.pentium3
  in
  match sweep.Bgpmark.Peers_sweep.points with
  | [ two; eight ] ->
    Alcotest.(check bool) "tps positive" true (two.Bgpmark.Peers_sweep.tps > 0.0);
    Alcotest.(check bool) "more peers is slower" true
      (eight.Bgpmark.Peers_sweep.tps < two.Bgpmark.Peers_sweep.tps)
  | _ -> Alcotest.fail "two points expected"

let test_max_prefixes_ceases_session () =
  let module Engine = Bgp_sim.Engine in
  let module Channel = Bgp_netsim.Channel in
  let module Router = Bgp_router.Router in
  let module Speaker = Bgp_speaker.Speaker in
  let ip = Bgp_addr.Ipv4.of_string_exn in
  let asn = Bgp_route.Asn.of_int in
  let engine = Engine.create () in
  let clock = Engine.clock engine in
  let router =
    Router.create clock Arch.xeon ~local_asn:(asn 65000)
      ~router_id:(ip "10.255.0.1")
  in
  let ch = Channel.create engine () in
  let peer =
    Bgp_route.Peer.make ~id:0 ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
      ~addr:(ip "192.0.2.1")
  in
  Router.attach_peer ~max_prefixes:100 router ~peer
    ~link:(Channel.endpoint ch Channel.B);
  let s =
    Speaker.create clock ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
      ~link:(Channel.endpoint ch Channel.A)
  in
  Speaker.start s;
  Engine.run ~until:1.0 engine;
  Alcotest.(check bool) "established" true (Speaker.established s);
  (* Within the limit: fine. *)
  let table = Bgp_addr.Prefix_gen.table ~seed:2 ~n:150 () in
  let attrs =
    Bgp_speaker.Workload.attrs ~speaker_asn:(asn 65001)
      ~next_hop:(ip "192.0.2.1") ~path_len:3 ()
  in
  ignore (Speaker.announce s ~packing:50 ~attrs (Array.sub table 0 100));
  Engine.run ~until:30.0 engine;
  Alcotest.(check int) "100 accepted" 100
    (Bgp_rib.Loc_rib.size (Bgp_rib.Rib_manager.loc_rib (Router.rib router)));
  Alcotest.(check string) "still up" "Established"
    (Bgp_fsm.Fsm.state_name (Router.session_state router peer));
  (* The 101st prefix crosses the limit: CEASE + flush. *)
  ignore (Speaker.announce s ~packing:50 ~attrs (Array.sub table 100 50));
  Engine.run ~until:60.0 engine;
  Alcotest.(check bool) "session torn down" true
    (Router.session_state router peer <> Bgp_fsm.Fsm.Established);
  Alcotest.(check int) "routes flushed" 0
    (Bgp_rib.Loc_rib.size (Bgp_rib.Rib_manager.loc_rib (Router.rib router)))

(* ------------------------------------------------------------------ *)
(* MRAI ablation                                                        *)
(* ------------------------------------------------------------------ *)

let test_mrai_batches_advertisements () =
  (* Scenario 7 (small packets) makes the router advertise per prefix:
     2 outbound UPDATEs per transaction without MRAI.  With a 1 s MRAI
     the outbound message count collapses while the measured
     transaction processing is unchanged. *)
  let without = run Arch.xeon 7 in
  check_verified without;
  let with_mrai =
    H.run
      ~config:{ small_config with H.mrai = Some 1.0 }
      Arch.xeon (Scenario.of_id_exn 7)
  in
  check_verified with_mrai;
  Alcotest.(check int) "same transactions" without.H.measured_prefixes
    with_mrai.H.measured_prefixes;
  (* compare wire messages: without MRAI ~2 per prefix; with it, far
     fewer (batched flushes) *)
  Alcotest.(check bool)
    (Printf.sprintf "fewer wire messages (%d vs %d)" with_mrai.H.msgs_tx
       without.H.msgs_tx)
    true
    (with_mrai.H.msgs_tx * 4 < without.H.msgs_tx)

(* ------------------------------------------------------------------ *)
(* Route refresh end to end                                            *)
(* ------------------------------------------------------------------ *)

let test_route_refresh_end_to_end () =
  (* Run scenario 5 setup (both speakers up, table synced), then have
     speaker 2 request a refresh and check it receives the table again
     through the simulated CPU pipeline. *)
  let module Engine = Bgp_sim.Engine in
  let module Channel = Bgp_netsim.Channel in
  let module Router = Bgp_router.Router in
  let module Speaker = Bgp_speaker.Speaker in
  let ip = Bgp_addr.Ipv4.of_string_exn in
  let asn = Bgp_route.Asn.of_int in
  let engine = Engine.create () in
  let clock = Engine.clock engine in
  let router =
    Router.create clock Arch.xeon ~local_asn:(asn 65000)
      ~router_id:(ip "10.255.0.1")
  in
  let ch1 = Channel.create engine () and ch2 = Channel.create engine () in
  let p1 =
    Bgp_route.Peer.make ~id:0 ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
      ~addr:(ip "192.0.2.1")
  in
  let p2 =
    Bgp_route.Peer.make ~id:1 ~asn:(asn 65002) ~router_id:(ip "192.0.2.2")
      ~addr:(ip "192.0.2.2")
  in
  Router.attach_peer router ~peer:p1 ~link:(Channel.endpoint ch1 Channel.B);
  Router.attach_peer router ~peer:p2 ~link:(Channel.endpoint ch2 Channel.B);
  let s1 =
    Speaker.create clock ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
      ~link:(Channel.endpoint ch1 Channel.A)
  in
  let s2 =
    Speaker.create clock ~asn:(asn 65002) ~router_id:(ip "192.0.2.2")
      ~link:(Channel.endpoint ch2 Channel.A)
  in
  Speaker.start s1;
  Engine.run ~until:1.0 engine;
  let table = Bgp_addr.Prefix_gen.table ~seed:4 ~n:100 () in
  let attrs =
    Bgp_speaker.Workload.attrs ~speaker_asn:(asn 65001)
      ~next_hop:(ip "192.0.2.1") ~path_len:3 ()
  in
  ignore (Speaker.announce s1 ~packing:100 ~attrs table);
  Engine.run ~until:30.0 engine;
  Speaker.start s2;
  Engine.run ~until:60.0 engine;
  Alcotest.(check int) "phase 2 table" 100
    (Hashtbl.length (Speaker.received_prefix_set s2));
  let before = Speaker.prefixes_received s2 in
  Speaker.request_refresh s2;
  Engine.run ~until:120.0 engine;
  Alcotest.(check int) "refresh resends the table" (before + 100)
    (Speaker.prefixes_received s2);
  Alcotest.(check int) "still consistent" 100
    (Hashtbl.length (Speaker.received_prefix_set s2))

(* ------------------------------------------------------------------ *)
(* Table3 module                                                       *)
(* ------------------------------------------------------------------ *)

let test_table3_module () =
  let t =
    Bgpmark.Table3.run ~config:small_config
      ~archs:[ Arch.pentium3; Arch.cisco3620 ]
      ~scenarios:[ Scenario.of_id_exn 1; Scenario.of_id_exn 2 ]
      ()
  in
  (match Bgpmark.Table3.result t ~scenario:1 ~arch:"pentium3" with
  | Some r -> check_verified r
  | None -> Alcotest.fail "missing cell");
  Alcotest.(check (option (float 0.01))) "paper lookup" (Some 2105.3)
    (Bgpmark.Table3.paper_value ~scenario:1 ~arch:"xeon");
  let contains haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  let rendered = Bgpmark.Table3.render t in
  Alcotest.(check bool) "render mentions scenario" true
    (contains rendered "Scenario 1")

let () =
  Alcotest.run "bgpmark integration"
    [ ( "correctness",
        [ Alcotest.test_case "all scenarios verify (pentium3)" `Slow
            test_all_scenarios_verify_pentium3;
          Alcotest.test_case "scenario 1 verifies on all systems" `Slow
            test_all_archs_scenario1_verify;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed-insensitive shape" `Quick
            test_seed_changes_table_not_shape
        ] );
      ( "paper shapes",
        [ Alcotest.test_case "packet size speedup" `Quick test_packet_size_speedup;
          Alcotest.test_case "no-FIB-change fastest" `Quick test_no_fib_change_fastest;
          Alcotest.test_case "scenario 7 ~ 8" `Quick test_scenario7_8_close;
          Alcotest.test_case "xeon > p3 > ixp" `Slow test_architecture_ordering;
          Alcotest.test_case "commercial black box" `Slow test_commercial_shape
        ] );
      ( "cross traffic",
        [ Alcotest.test_case "shared CPU degrades" `Quick
            test_cross_traffic_degrades_shared;
          Alcotest.test_case "dedicated unaffected" `Quick
            test_cross_traffic_spares_dedicated;
          Alcotest.test_case "cisco contrast" `Slow test_cross_traffic_cisco_contrast;
          Alcotest.test_case "forwarding dip (fig 6c)" `Quick
            test_forwarding_dip_under_bgp_load;
          Alcotest.test_case "interrupt share (fig 6b)" `Quick
            test_interrupt_share_at_300mbps
        ] );
      ( "traces",
        [ Alcotest.test_case "xorp processes visible" `Quick
            test_trace_shows_xorp_processes;
          Alcotest.test_case "xeon pipelines above one core" `Quick
            test_xeon_pipelines_above_one_core;
          Alcotest.test_case "rtrmgr heavy on ixp" `Slow test_rtrmgr_heavy_on_ixp
        ] );
      ( "extensions",
        [ Alcotest.test_case "peering density monotone" `Quick
            test_peers_sweep_monotone;
          Alcotest.test_case "prefix limit ceases session" `Quick
            test_max_prefixes_ceases_session
        ] );
      ( "mrai",
        [ Alcotest.test_case "batches advertisements" `Quick
            test_mrai_batches_advertisements ] );
      ( "varied paths",
        [ Alcotest.test_case "verifies" `Quick test_varied_paths_verify;
          Alcotest.test_case "shape stable" `Quick test_varied_paths_shape_stable
        ] );
      ( "route refresh",
        [ Alcotest.test_case "end to end" `Quick test_route_refresh_end_to_end ] );
      ( "table3",
        [ Alcotest.test_case "module" `Slow test_table3_module ] )
    ]
