(* Scenario 16 (subscriber-edge churn) and the two churn-path bugfixes:
   the projected-size prefix-limit check and MRAI state cleared on
   session loss.  The two regression tests fail on the pre-fix code:
   the old limit check CEASEd a peer re-announcing its own routes at
   the limit, and the old MRAI path flushed a dead session's buffered
   advertisements into its next incarnation. *)

module Engine = Bgp_sim.Engine
module Channel = Bgp_netsim.Channel
module Router = Bgp_router.Router
module Speaker = Bgp_speaker.Speaker
module Subscriber = Bgp_speaker.Subscriber
module Workload = Bgp_speaker.Workload
module Rib_manager = Bgp_rib.Rib_manager
module Loc_rib = Bgp_rib.Loc_rib
module Prefix = Bgp_addr.Prefix
module Arch = Bgp_router.Arch
module H = Bgpmark.Harness
module Scenario = Bgpmark.Scenario
module Faults = Bgp_faults.Faults
module Metrics = Bgp_stats.Metrics
module Msg = Bgp_wire.Msg
module Fsm = Bgp_fsm.Fsm

let ip = Bgp_addr.Ipv4.of_string_exn
let asn = Bgp_route.Asn.of_int

let loc_size router =
  Loc_rib.size (Rib_manager.loc_rib (Router.rib router))

let speaker_attrs ?(path_len = 3) () =
  Workload.attrs ~speaker_asn:(asn 65001) ~next_hop:(ip "192.0.2.1") ~path_len
    ()

(* One router, one speaker over a simulated channel; returns the pieces
   the prefix-limit tests poke at. *)
let limit_rig ?max_prefixes ?mrai ?metrics () =
  let engine = Engine.create () in
  let clock = Engine.clock engine in
  let router =
    Router.create ?mrai ?metrics clock Arch.xeon ~local_asn:(asn 65000)
      ~router_id:(ip "10.255.0.1")
  in
  let ch = Channel.create engine () in
  let peer =
    Bgp_route.Peer.make ~id:0 ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
      ~addr:(ip "192.0.2.1")
  in
  Router.attach_peer ?max_prefixes router ~peer
    ~link:(Channel.endpoint ch Channel.B);
  let s =
    Speaker.create clock ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
      ~link:(Channel.endpoint ch Channel.A)
  in
  Speaker.start s;
  Engine.run ~until:1.0 engine;
  (engine, router, peer, s, ch)

(* ------------------------------------------------------------------ *)
(* Bugfix 1: prefix limit counts genuinely-new prefixes only           *)
(* ------------------------------------------------------------------ *)

(* Re-announcing the full table at the limit — the churn steady state
   (BNG keepalive resync) — must not trip the limit.  The old check
   added the raw NLRI length to the adj-in size, so this CEASEd. *)
let test_limit_survives_reannounce () =
  let engine, router, peer, s, _ = limit_rig ~max_prefixes:100 () in
  let table = Bgp_addr.Prefix_gen.table ~seed:2 ~n:100 () in
  let attrs = speaker_attrs () in
  ignore (Speaker.announce s ~packing:50 ~attrs table);
  Engine.run ~until:30.0 engine;
  Alcotest.(check int) "table at the limit" 100 (loc_size router);
  (* Full-table resync at the limit. *)
  ignore (Speaker.announce s ~packing:50 ~attrs table);
  Engine.run ~until:60.0 engine;
  Alcotest.(check string) "still Established after resync" "Established"
    (Fsm.state_name (Router.session_state router peer));
  Alcotest.(check int) "table unchanged" 100 (loc_size router);
  (* Duplicates inside one NLRI add nothing either. *)
  ignore
    (Speaker.announce s ~packing:50 ~attrs
       [| table.(0); table.(0); table.(1); table.(1) |]);
  (* A withdraw+announce swap in churn order: down one session, bring
     up a new one — net zero, also fine at the limit. *)
  ignore (Speaker.withdraw s ~packing:50 [| table.(99) |]);
  let extra = Prefix.of_string_exn "100.64.255.1/32" in
  ignore (Speaker.announce s ~packing:50 ~attrs [| extra |]);
  Engine.run ~until:90.0 engine;
  Alcotest.(check string) "still Established after swap" "Established"
    (Fsm.state_name (Router.session_state router peer));
  Alcotest.(check int) "table back at the limit" 100 (loc_size router)

(* The limit must still fire — with the exact RFC 4271 CEASE — on the
   first genuinely-new prefix past it.  The NOTIFICATION is observed at
   the router's endpoint: teardown races the close, so speaker-side
   receipt is not guaranteed. *)
let test_limit_exact_cease () =
  let metrics = Metrics.create () in
  let engine, router, peer, s, ch = limit_rig ~max_prefixes:100 ~metrics () in
  let faults =
    Faults.create ~clock:(Engine.clock engine) ~metrics ()
  in
  Faults.observe_notifications faults (Channel.endpoint ch Channel.B);
  let table = Bgp_addr.Prefix_gen.table ~seed:2 ~n:101 () in
  let attrs = speaker_attrs () in
  ignore (Speaker.announce s ~packing:50 ~attrs (Array.sub table 0 100));
  Engine.run ~until:30.0 engine;
  Alcotest.(check string) "at the limit: still up" "Established"
    (Fsm.state_name (Router.session_state router peer));
  Alcotest.(check bool) "no NOTIFICATION yet" true
    (Faults.notifications_seen faults = []);
  (* Limit + 1: one new prefix over the line. *)
  ignore (Speaker.announce s ~packing:50 ~attrs [| table.(100) |]);
  Engine.run ~until:60.0 engine;
  Alcotest.(check bool) "session torn down" true
    (Router.session_state router peer <> Fsm.Established);
  Alcotest.(check int) "routes flushed" 0 (loc_size router);
  (match Faults.notifications_seen faults with
  | [ e ] ->
    Alcotest.(check (pair int int)) "exactly one CEASE (code 6)" (6, 0)
      (Msg.error_code e)
  | l ->
    Alcotest.failf "expected exactly one NOTIFICATION, saw %d" (List.length l))

(* ------------------------------------------------------------------ *)
(* Bugfix 2: MRAI pending/armed state dies with the session            *)
(* ------------------------------------------------------------------ *)

(* Flap-then-reconnect: advertisements buffered behind an armed MRAI
   timer when the session drops must NOT be flushed into the reborn
   session.  Pre-fix, the stale timer survived [on_down] and delivered
   a withdrawn route's announcement to the reconnected peer. *)
let test_mrai_flap_then_reconnect () =
  let engine = Engine.create () in
  let clock = Engine.clock engine in
  let router =
    (* MRAI long enough that the flap happens while P2 is buffered. *)
    Router.create ~mrai:5.0 clock Arch.xeon ~local_asn:(asn 65000)
      ~router_id:(ip "10.255.0.1")
  in
  let ch1 = Channel.create engine () in
  let ch2 = Channel.create engine () in
  let peer1 =
    Bgp_route.Peer.make ~id:0 ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
      ~addr:(ip "192.0.2.1")
  in
  let peer2 =
    Bgp_route.Peer.make ~id:1 ~asn:(asn 65002) ~router_id:(ip "192.0.2.2")
      ~addr:(ip "192.0.2.2")
  in
  Router.attach_peer router ~peer:peer1 ~link:(Channel.endpoint ch1 Channel.B);
  Router.attach_peer ~restart_delay:0.05 router ~peer:peer2
    ~link:(Channel.endpoint ch2 Channel.B);
  let s1 =
    Speaker.create clock ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
      ~link:(Channel.endpoint ch1 Channel.A)
  in
  let s2 =
    Speaker.create clock ~asn:(asn 65002) ~router_id:(ip "192.0.2.2")
      ~link:(Channel.endpoint ch2 Channel.A)
  in
  Speaker.start s1;
  Speaker.start s2;
  Engine.run ~until:1.0 engine;
  Alcotest.(check bool) "both established" true
    (Speaker.established s1 && Speaker.established s2);
  let p1 = Prefix.of_string_exn "100.64.0.1/32" in
  let p2 = Prefix.of_string_exn "100.64.0.2/32" in
  let attrs = speaker_attrs () in
  (* P1 flushes to s2 immediately and arms the 5s MRAI timer. *)
  ignore (Speaker.announce s1 ~packing:1 ~attrs [| p1 |]);
  Engine.run ~until:1.2 engine;
  Alcotest.(check int) "P1 delivered" 1
    (Hashtbl.length (Speaker.received_prefix_set s2));
  (* P2 lands in the armed timer's pending buffer... *)
  ignore (Speaker.announce s1 ~packing:1 ~attrs [| p2 |]);
  Engine.run ~until:1.5 engine;
  Alcotest.(check int) "P2 held back by MRAI" 1
    (Hashtbl.length (Speaker.received_prefix_set s2));
  (* ...then s2's session drops with P2 still buffered. *)
  (Channel.endpoint ch2 Channel.A).Bgp_engine.Link.close ();
  Engine.run ~until:2.0 engine;
  Alcotest.(check bool) "s2 down" true (Speaker.state s2 = Fsm.Idle);
  (* While s2 is down, s1 withdraws P2: the Loc-RIB is {P1} and the
     buffered P2 announcement is stale. *)
  ignore (Speaker.withdraw s1 ~packing:1 [| p2 |]);
  Engine.run ~until:2.5 engine;
  Alcotest.(check int) "Loc-RIB holds P1 only" 1 (loc_size router);
  (* Reconnect: the full-table export ships exactly {P1}. *)
  Hashtbl.reset (Speaker.received_prefix_set s2);
  Speaker.start s2;
  Engine.run ~until:3.5 engine;
  Alcotest.(check bool) "s2 re-established" true (Speaker.established s2);
  (* Run well past the old timer's 5s firing point: nothing stale may
     arrive.  Pre-fix, the surviving timer flushed the buffered P2
     announcement into the new session here. *)
  Engine.run ~until:12.0 engine;
  let received = Speaker.received_prefix_set s2 in
  Alcotest.(check int) "only P1 advertised after reconnect" 1
    (Hashtbl.length received);
  Alcotest.(check bool) "P1 present" true (Hashtbl.mem received p1);
  Alcotest.(check bool) "stale P2 never delivered" false
    (Hashtbl.mem received p2)

(* ------------------------------------------------------------------ *)
(* Property: the projection is exactly the post-update adj-in size     *)
(* ------------------------------------------------------------------ *)

let prop_peer =
  Bgp_route.Peer.make ~id:0 ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
    ~addr:(ip "192.0.2.1")

let pool = Bgp_addr.Prefix_gen.table ~seed:7 ~n:24 ()

(* A synthetic UPDATE: indices into the pool, duplicates and
   announce/withdraw overlap allowed — exactly the shapes the old
   NLRI-length count got wrong. *)
let gen_update =
  QCheck2.Gen.(
    pair
      (list_size (int_range 0 8) (int_range 0 23))
      (list_size (int_range 0 8) (int_range 0 23)))

let prop_projection_matches_applied =
  QCheck2.Test.make
    ~name:"projected_adj_in_size = adj-in size after applying the update"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 20) gen_update)
    (fun updates ->
      let rib =
        Rib_manager.create ~local_asn:(asn 65000)
          ~router_id:(ip "10.255.0.1") ()
      in
      Rib_manager.add_peer rib prop_peer;
      let attrs = speaker_attrs () in
      let interned = Bgp_route.Attrs.Interned.intern attrs in
      List.for_all
        (fun (ann_idx, wd_idx) ->
          let announced = List.map (fun i -> pool.(i)) ann_idx in
          let withdrawn = List.map (fun i -> pool.(i)) wd_idx in
          let projected =
            Rib_manager.projected_adj_in_size rib prop_peer ~announced
              ~withdrawn
          in
          (* Apply in RFC 4271 order: withdrawals first, then NLRI (so
             a prefix in both ends up announced). *)
          List.iter
            (fun p ->
              if not (List.exists (Prefix.equal p) announced) then
                ignore (Rib_manager.withdraw rib ~from:prop_peer p))
            withdrawn;
          List.iter
            (fun p ->
              ignore (Rib_manager.announce_interned rib ~from:prop_peer p interned))
            announced;
          projected = Rib_manager.adj_in_size rib prop_peer)
        updates)

(* The issue's weaker-but-direct statement: any announce / withdraw /
   re-announce sequence through the router never trips a limit at
   least as large as the live adj-in ever gets. *)
let prop_limit_never_trips_at_live_size =
  QCheck2.Test.make
    ~name:"sequences never CEASE a limit >= peak live adj-in size" ~count:30
    QCheck2.Gen.(list_size (int_range 1 12) gen_update)
    (fun updates ->
      (* Peak distinct-prefix count an honest replay can reach. *)
      let live = Hashtbl.create 32 in
      let peak = ref 0 in
      List.iter
        (fun (ann_idx, wd_idx) ->
          List.iter
            (fun i ->
              if not (List.mem i ann_idx) then Hashtbl.remove live i)
            wd_idx;
          List.iter (fun i -> Hashtbl.replace live i ()) ann_idx;
          peak := max !peak (Hashtbl.length live))
        updates;
      let limit = max 1 !peak in
      let engine, router, peer, s, _ = limit_rig ~max_prefixes:limit () in
      let attrs = speaker_attrs () in
      let t = ref 1.0 in
      List.iter
        (fun (ann_idx, wd_idx) ->
          let arr l = Array.of_list (List.map (fun i -> pool.(i)) l) in
          if wd_idx <> [] then
            ignore (Speaker.withdraw s ~packing:50 (arr wd_idx));
          if ann_idx <> [] then
            ignore (Speaker.announce s ~packing:50 ~attrs (arr ann_idx));
          t := !t +. 5.0;
          Engine.run ~until:!t engine)
        updates;
      Router.session_state router peer = Fsm.Established)

(* ------------------------------------------------------------------ *)
(* The subscriber model                                                *)
(* ------------------------------------------------------------------ *)

let test_subscriber_plan_consistent () =
  let cfg =
    { Subscriber.default with
      Subscriber.subscribers = 200; churn_rate = 400.0; churn_duration = 1.5 }
  in
  let sub = Subscriber.create cfg in
  Alcotest.(check int) "event count" 600 (Subscriber.n_events sub);
  (* Kinds must be state-consistent, and folding the plan must land on
     final_up exactly. *)
  let up = Array.make 200 true in
  let last_at = ref 0.0 in
  List.iter
    (fun ev ->
      Alcotest.(check bool) "events in time order" true
        (ev.Subscriber.ev_at >= !last_at);
      last_at := ev.Subscriber.ev_at;
      match ev.Subscriber.ev_kind with
      | Subscriber.Up ->
        Alcotest.(check bool) "Up only for a down session" false
          up.(ev.Subscriber.ev_idx);
        up.(ev.Subscriber.ev_idx) <- true
      | Subscriber.Down ->
        Alcotest.(check bool) "Down only for an up session" true
          up.(ev.Subscriber.ev_idx);
        up.(ev.Subscriber.ev_idx) <- false
      | Subscriber.Resync ->
        Alcotest.(check bool) "Resync only for an up session" true
          up.(ev.Subscriber.ev_idx))
    (Subscriber.plan sub);
  Alcotest.(check bool) "fold matches final_up" true
    (up = Subscriber.final_up sub);
  Alcotest.(check int) "up_count matches"
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 up)
    (Subscriber.up_count sub);
  (* Same config -> same plan (determinism across sim/live legs). *)
  let sub' = Subscriber.create cfg in
  Alcotest.(check bool) "plan deterministic" true
    (Subscriber.plan sub = Subscriber.plan sub')

let test_subscriber_pool_guard () =
  Alcotest.check_raises "pool overflow rejected"
    (Invalid_argument
       "Subscriber.create: 4194305 subscribers exceed the 100.64.0.0/10 pool \
        (4194304)") (fun () ->
      ignore
        (Subscriber.create
           { Subscriber.default with Subscriber.subscribers = 4_194_305 }))

(* ------------------------------------------------------------------ *)
(* Scenario 16 end to end (sim)                                        *)
(* ------------------------------------------------------------------ *)

let churn_config =
  { H.default_config with
    H.churn =
      Some
        { Subscriber.subscribers = 400; batch = 100; batch_interval = 0.02;
          churn_rate = 200.0; churn_duration = 0.5; seed = 42 } }

let test_scenario16_sim () =
  let r = H.run ~config:churn_config Arch.xeon (Scenario.of_id_exn 16) in
  (match r.H.verified with
  | Ok () -> ()
  | Error e -> Alcotest.failf "scenario 16 failed verification: %s" e);
  let c = Option.get r.H.churn in
  Alcotest.(check int) "all subscribers" 400 c.H.cr_subscribers;
  Alcotest.(check int) "all events" 100 c.H.cr_churn_events;
  Alcotest.(check bool) "injection tps positive" true
    (c.H.cr_injection_tps > 0.0);
  Alcotest.(check bool) "churn tps positive" true (c.H.cr_churn_tps > 0.0);
  Alcotest.(check int) "sweep timed every withdrawal" c.H.cr_sessions_up_end
    c.H.cr_sweep_count;
  Alcotest.(check bool) "failover took time" true (c.H.cr_failover_s > 0.0);
  Alcotest.(check int) "FIB empty after failover" 0 r.H.fib_size_end;
  (* The registry dump (the Prometheus stand-in) rendered non-trivially. *)
  (match c.H.cr_metrics with
  | Bgp_stats.Json.Obj entries ->
    Alcotest.(check bool) "metrics dump non-empty" true (entries <> []);
    Alcotest.(check bool) "sweep histogram exported" true
      (List.mem_assoc "churn.sweep_latency" entries)
  | _ -> Alcotest.fail "metrics dump is not an object")

let test_scenario16_deterministic () =
  let r1 = H.run ~config:churn_config Arch.xeon (Scenario.of_id_exn 16) in
  let r2 = H.run ~config:churn_config Arch.xeon (Scenario.of_id_exn 16) in
  Alcotest.(check string) "same post-churn fingerprint" r1.H.locrib_fp
    r2.H.locrib_fp;
  Alcotest.(check bool) "fingerprint non-trivial" true
    (r1.H.locrib_fp <> "")

let qtests tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "churn"
    [ ( "prefix-limit",
        Alcotest.test_case "resync at the limit survives" `Quick
          test_limit_survives_reannounce
        :: Alcotest.test_case "exact CEASE at limit+1" `Quick
             test_limit_exact_cease
        :: qtests
             [ prop_projection_matches_applied;
               prop_limit_never_trips_at_live_size ] );
      ( "mrai",
        [ Alcotest.test_case "flap-then-reconnect drops buffered state"
            `Quick test_mrai_flap_then_reconnect ] );
      ( "subscriber-model",
        [ Alcotest.test_case "plan consistent + deterministic" `Quick
            test_subscriber_plan_consistent;
          Alcotest.test_case "pool guard" `Quick test_subscriber_pool_guard ] );
      ( "scenario-16",
        [ Alcotest.test_case "sim run verifies" `Quick test_scenario16_sim;
          Alcotest.test_case "deterministic" `Quick
            test_scenario16_deterministic ] ) ]
