(* Conformance suite for the Bgp_engine.Clock contract, run against
   both canonical implementations: the simulated discrete-event clock
   and the live select-loop clock.  Each case exercises one clause of
   the semantics table in clock.mli; a third implementation would hook
   in the same way. *)

module Clock = Bgp_engine.Clock

(* One conformance run needs a fresh clock and a way to drive it until
   a condition holds.  Delays are kept tiny so the live legs finish in
   milliseconds of wall-clock time. *)
type impl = { name : string; with_clock : (Clock.t -> unit) -> unit }

let pump clock ~what cond =
  let deadline = Clock.now clock +. 30.0 in
  let rec go () =
    if not (Clock.run clock ~cond ~step:0.02) then
      if Clock.now clock >= deadline then
        Alcotest.failf "clock %s: timeout waiting for %s" (Clock.label clock)
          what
      else go ()
  in
  go ()

let sim_impl =
  { name = "sim";
    with_clock =
      (fun f ->
        let e = Bgp_sim.Engine.create () in
        f (Bgp_sim.Engine.clock e)) }

let live_impl =
  { name = "live";
    with_clock =
      (fun f ->
        let loop = Bgp_tcp.Event_loop.create () in
        Fun.protect
          ~finally:(fun () -> Bgp_tcp.Event_loop.stop_watching_all loop)
          (fun () -> f (Bgp_tcp.Event_loop.clock loop))) }

(* ------------------------------------------------------------------ *)
(* The contract clauses                                                *)
(* ------------------------------------------------------------------ *)

let test_now_monotonic impl () =
  impl.with_clock (fun c ->
      let t0 = Clock.now c in
      let seen = ref t0 in
      let fired = ref 0 in
      for _ = 1 to 5 do
        ignore
          (Clock.schedule c ~delay:0.005 (fun () ->
               let t = Clock.now c in
               Alcotest.(check bool) "time never decreases" true (t >= !seen);
               seen := t;
               incr fired))
      done;
      pump c ~what:"5 firings" (fun () -> !fired = 5);
      Alcotest.(check bool) "advanced past start" true (Clock.now c >= t0))

let test_equal_instant_fifo impl () =
  impl.with_clock (fun c ->
      let order = ref [] in
      let at = Clock.now c +. 0.01 in
      List.iter
        (fun i ->
          ignore (Clock.schedule_at c ~time:at (fun () -> order := i :: !order)))
        [ 1; 2; 3; 4 ];
      pump c ~what:"equal-instant batch" (fun () -> List.length !order = 4);
      Alcotest.(check (list int)) "FIFO at one instant" [ 1; 2; 3; 4 ]
        (List.rev !order))

let test_zero_and_negative_delay impl () =
  impl.with_clock (fun c ->
      let order = ref [] in
      let fired_inside_schedule = ref false in
      ignore (Clock.schedule c ~delay:0.0 (fun () -> order := 1 :: !order));
      ignore (Clock.schedule c ~delay:(-5.0) (fun () -> order := 2 :: !order));
      ignore
        (Clock.schedule_at c ~time:(Clock.now c -. 100.0) (fun () ->
             order := 3 :: !order));
      (* Nothing may have run synchronously inside schedule. *)
      fired_inside_schedule := !order <> [];
      pump c ~what:"due-now batch" (fun () -> List.length !order = 3);
      Alcotest.(check bool) "never fires inside schedule" false
        !fired_inside_schedule;
      Alcotest.(check (list int)) "past deadlines clamp to now, FIFO"
        [ 1; 2; 3 ] (List.rev !order))

let test_cancel_idempotent impl () =
  impl.with_clock (fun c ->
      let fired = ref false and witness = ref false in
      let h = Clock.schedule c ~delay:0.005 (fun () -> fired := true) in
      Alcotest.(check bool) "pending" false (Clock.cancelled h);
      Clock.cancel h;
      Clock.cancel h;
      Alcotest.(check bool) "cancelled" true (Clock.cancelled h);
      ignore (Clock.schedule c ~delay:0.01 (fun () -> witness := true));
      pump c ~what:"witness event" (fun () -> !witness);
      Alcotest.(check bool) "cancelled event never fires" false !fired)

let test_cancel_after_fire_noop impl () =
  impl.with_clock (fun c ->
      let count = ref 0 in
      let h = Clock.schedule c ~delay:0.005 (fun () -> incr count) in
      pump c ~what:"event firing" (fun () -> !count = 1);
      (* The event is spent; cancel must not raise or un-run it. *)
      Clock.cancel h;
      Clock.cancel h;
      let witness = ref false in
      ignore (Clock.schedule c ~delay:0.005 (fun () -> witness := true));
      pump c ~what:"post-cancel witness" (fun () -> !witness);
      Alcotest.(check int) "fired exactly once" 1 !count)

let test_cancel_self_from_callback impl () =
  impl.with_clock (fun c ->
      let fired = ref false in
      let h = ref None in
      let cb () =
        fired := true;
        (* Cancelling the very handle that is firing is a no-op. *)
        Option.iter Clock.cancel !h
      in
      h := Some (Clock.schedule c ~delay:0.005 cb);
      pump c ~what:"self-cancelling callback" (fun () -> !fired))

let test_cancel_peer_from_callback impl () =
  impl.with_clock (fun c ->
      let b_fired = ref false and a_fired = ref false in
      let at = Clock.now c +. 0.01 in
      let hb = ref None in
      (* A and B are due at the same instant; A fires first (FIFO) and
         cancels B, so B must not run even though it is already due. *)
      ignore
        (Clock.schedule_at c ~time:at (fun () ->
             a_fired := true;
             Option.iter Clock.cancel !hb));
      hb := Some (Clock.schedule_at c ~time:at (fun () -> b_fired := true));
      let witness = ref false in
      ignore (Clock.schedule c ~delay:0.02 (fun () -> witness := true));
      pump c ~what:"cancel-peer witness" (fun () -> !witness);
      Alcotest.(check bool) "canceller ran" true !a_fired;
      Alcotest.(check bool) "due-but-cancelled peer did not" false !b_fired)

let test_post_reentrancy impl () =
  impl.with_clock (fun c ->
      let order = ref [] in
      let mark i () = order := i :: !order in
      (* Posting from inside a callback must defer to the pump, not run
         synchronously, and must preserve posting order. *)
      Clock.post c (fun () ->
          mark 1 ();
          Clock.post c (fun () -> mark 3 ());
          Clock.post c (fun () -> mark 4 ());
          Alcotest.(check (list int)) "nested posts deferred" [ 1 ]
            (List.rev !order));
      Clock.post c (fun () -> mark 2 ());
      pump c ~what:"posted thunks" (fun () -> List.length !order = 4);
      Alcotest.(check (list int)) "posts run in order" [ 1; 2; 3; 4 ]
        (List.rev !order))

let test_schedule_from_callback impl () =
  impl.with_clock (fun c ->
      let chain = ref 0 in
      let rec step () =
        incr chain;
        if !chain < 5 then ignore (Clock.schedule c ~delay:0.002 step)
      in
      ignore (Clock.schedule c ~delay:0.002 step);
      pump c ~what:"timer chain" (fun () -> !chain = 5);
      Alcotest.(check int) "chain of rescheduled timers" 5 !chain)

let cases impl =
  let tc name f = Alcotest.test_case name `Quick (f impl) in
  ( "contract (" ^ impl.name ^ ")",
    [ tc "monotonic now" test_now_monotonic;
      tc "equal-instant FIFO" test_equal_instant_fifo;
      tc "zero/negative delays" test_zero_and_negative_delay;
      tc "cancel idempotent" test_cancel_idempotent;
      tc "cancel after fire no-op" test_cancel_after_fire_noop;
      tc "cancel self in callback" test_cancel_self_from_callback;
      tc "cancel due peer in callback" test_cancel_peer_from_callback;
      tc "post reentrancy" test_post_reentrancy;
      tc "reschedule from callback" test_schedule_from_callback ])

let () = Alcotest.run "bgp_clock" [ cases sim_impl; cases live_impl ]
