(* Unit tests for the benchmark-definition and reporting modules:
   Scenario (Table I), Arch (Table II), Sweep/Figures plumbing, and the
   bgp_stats helpers. *)

module Scenario = Bgpmark.Scenario
module Arch = Bgp_router.Arch
module Chart = Bgp_stats.Chart
module Moments = Bgp_stats.Moments

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Scenario (Table I)                                                  *)
(* ------------------------------------------------------------------ *)

let test_scenario_table1_structure () =
  Alcotest.(check int) "eight scenarios" 8 (List.length Scenario.all);
  List.iteri
    (fun i sc -> Alcotest.(check int) "ids in order" (i + 1) sc.Scenario.id)
    Scenario.all;
  (* Table I row: FIB changes everywhere except scenarios 5-6. *)
  List.iter
    (fun sc ->
      let expect = not (List.mem sc.Scenario.id [ 5; 6 ]) in
      Alcotest.(check bool)
        (Printf.sprintf "fib changes scenario %d" sc.Scenario.id)
        expect
        (Scenario.forwarding_table_changes sc))
    Scenario.all;
  (* packet sizes alternate small/large *)
  List.iter
    (fun sc ->
      let expect_small = sc.Scenario.id mod 2 = 1 in
      Alcotest.(check int)
        (Printf.sprintf "packing scenario %d" sc.Scenario.id)
        (if expect_small then 1 else 500)
        (Scenario.packing sc))
    Scenario.all

let test_scenario_phases () =
  Alcotest.(check int) "startup measures phase 1" 1
    (Scenario.measures_phase (Scenario.of_id_exn 1));
  List.iter
    (fun id ->
      Alcotest.(check int) "others measure phase 3" 3
        (Scenario.measures_phase (Scenario.of_id_exn id)))
    [ 3; 4; 5; 6; 7; 8 ];
  List.iter
    (fun id ->
      Alcotest.(check bool) "speaker 2 usage" (id >= 5)
        (Scenario.uses_speaker2 (Scenario.of_id_exn id)))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_scenario_lookup () =
  Alcotest.(check bool) "of_id 0" true (Scenario.of_id 0 = None);
  Alcotest.(check bool) "of_id 9 is adversarial" true
    (match Scenario.of_id 9 with
    | Some s -> Scenario.is_adversarial s
    | None -> false);
  Alcotest.(check bool) "of_id 11 is topo" true
    (match Scenario.of_id 11 with
    | Some s -> Scenario.is_topo s
    | None -> false);
  Alcotest.(check bool) "of_id 13 is mrt" true
    (match Scenario.of_id 13 with
    | Some s -> Scenario.is_mrt s
    | None -> false);
  Alcotest.(check bool) "of_id 15" true (Scenario.of_id 15 = None);
  Alcotest.(check bool) "of_id 16 is churn" true
    (match Scenario.of_id 16 with
    | Some s -> Scenario.is_churn s
    | None -> false);
  Alcotest.check_raises "of_id_exn"
    (Invalid_argument "Scenario.of_id_exn: 15 not in 1-14, 16") (fun () ->
      ignore (Scenario.of_id_exn 15));
  let rendered = Scenario.table1 () in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("table1 has " ^ s) true (contains rendered s))
    [ "start-up"; "ending"; "incremental"; "WITHDRAW"; "ANNOUNCE" ]

let test_custom_large_packing () =
  Alcotest.(check int) "custom large" 100
    (Scenario.packing ~large:100 (Scenario.of_id_exn 2));
  Alcotest.(check int) "small unaffected" 1
    (Scenario.packing ~large:100 (Scenario.of_id_exn 1))

(* ------------------------------------------------------------------ *)
(* Arch (Table II)                                                     *)
(* ------------------------------------------------------------------ *)

let test_arch_table2 () =
  Alcotest.(check int) "four systems" 4 (List.length Arch.all);
  Alcotest.(check (list string)) "order"
    [ "pentium3"; "xeon"; "ixp2400"; "cisco3620" ]
    (List.map (fun a -> a.Arch.name) Arch.all);
  List.iter
    (fun a ->
      Alcotest.(check bool) "lookup" true (Arch.by_name a.Arch.name = Some a))
    Arch.all;
  Alcotest.(check bool) "case insensitive" true (Arch.by_name "XEON" <> None);
  Alcotest.(check bool) "unknown" true (Arch.by_name "cray" = None)

let test_arch_parameters_sane () =
  List.iter
    (fun a ->
      Alcotest.(check bool) "positive clock" true (a.Arch.clock_hz > 0.0);
      Alcotest.(check bool) "positive pool" true (a.Arch.pool > 0.0);
      Alcotest.(check bool) "line rate" true (a.Arch.line_rate_mbps > 0.0);
      Alcotest.(check bool) "effective hz" true (Arch.effective_hz a > 0.0))
    Arch.all;
  (* The paper's hardware facts *)
  Alcotest.(check (float 1.0)) "p3 clock MHz" 800.0 (Arch.pentium3.Arch.clock_hz /. 1e6);
  Alcotest.(check (float 1.0)) "xeon clock GHz" 3.0 (Arch.xeon.Arch.clock_hz /. 1e9);
  Alcotest.(check (float 1.0)) "p3 line rate" 315.0 Arch.pentium3.Arch.line_rate_mbps;
  Alcotest.(check (float 1.0)) "cisco line rate" 78.0 Arch.cisco3620.Arch.line_rate_mbps;
  (* structural facts *)
  (match Arch.ixp2400.Arch.forwarding with
  | Arch.Dedicated_pps _ -> ()
  | Arch.Kernel_shared _ -> Alcotest.fail "ixp must have dedicated forwarding");
  match Arch.cisco3620.Arch.software with
  | Arch.Monolithic { pacing_delay_per_msg } ->
    Alcotest.(check bool) "pacing ~93ms" true
      (Float.abs (pacing_delay_per_msg -. 0.093) < 1e-9)
  | Arch.Xorp_pipeline -> Alcotest.fail "cisco must be monolithic"

let test_arch_rendering () =
  List.iter
    (fun a ->
      let line = Format.asprintf "%a" Arch.pp a in
      Alcotest.(check bool) "mentions name" true (contains line a.Arch.name);
      let diagram = Format.asprintf "%a" Arch.pp_block_diagram a in
      Alcotest.(check bool) "diagram nonempty" true (String.length diagram > 40))
    Arch.all

(* ------------------------------------------------------------------ *)
(* Moments                                                             *)
(* ------------------------------------------------------------------ *)

let test_moments () =
  let m = Moments.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check int) "count" 8 (Moments.count m);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Moments.mean m);
  Alcotest.(check (float 1e-6)) "variance (sample)" (32.0 /. 7.0) (Moments.variance m);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Moments.min_value m);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Moments.max_value m);
  let empty = Moments.create () in
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Moments.mean empty);
  Alcotest.(check (float 0.0)) "empty var" 0.0 (Moments.variance empty);
  (* empty min/max must not leak the +/-infinity sentinels *)
  Alcotest.(check (float 0.0)) "empty min" 0.0 (Moments.min_value empty);
  Alcotest.(check (float 0.0)) "empty max" 0.0 (Moments.max_value empty);
  Alcotest.(check string) "empty pp" "n=0"
    (Format.asprintf "%a" Moments.pp empty);
  let single = Moments.of_list [ 42.0 ] in
  Alcotest.(check (float 0.0)) "single var" 0.0 (Moments.variance single)

let prop_moments_match_naive =
  QCheck2.Test.make ~name:"welford matches naive mean/stddev" ~count:300
    QCheck2.Gen.(list_size (int_range 2 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Moments.of_list xs in
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
      in
      Float.abs (Moments.mean m -. mean) < 1e-6
      && Float.abs (Moments.variance m -. var) < 1e-4)

(* ------------------------------------------------------------------ *)
(* Json.escape                                                         *)
(* ------------------------------------------------------------------ *)

(* Inverse of Json.escape, for the roundtrip property: the escaper only
   ever emits the two-character forms and \uXXXX for C0 controls. *)
let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] <> '\\' then (Buffer.add_char b s.[i]; go (i + 1))
    else begin
      if i + 1 >= n then failwith "dangling backslash";
      (match s.[i + 1] with
       | '"' -> Buffer.add_char b '"'; go (i + 2)
       | '\\' -> Buffer.add_char b '\\'; go (i + 2)
       | 'n' -> Buffer.add_char b '\n'; go (i + 2)
       | 'r' -> Buffer.add_char b '\r'; go (i + 2)
       | 't' -> Buffer.add_char b '\t'; go (i + 2)
       | 'u' ->
         if i + 5 >= n then failwith "short \\u escape";
         let code = int_of_string ("0x" ^ String.sub s (i + 2) 4) in
         Buffer.add_char b (Char.chr code);
         go (i + 6)
       | c -> failwith (Printf.sprintf "bad escape \\%c" c))
    end
  in
  go 0;
  Buffer.contents b

let prop_json_escape_roundtrip =
  QCheck2.Test.make ~name:"Json.escape roundtrips over control chars"
    ~count:500
    (* Full byte range, biased so control characters actually appear. *)
    QCheck2.Gen.(
      string_size ~gen:(oneof [ int_range 0 31; int_range 0 255 ] >|= Char.chr)
        (int_range 0 64))
    (fun s ->
      let e = Bgp_stats.Json.escape s in
      (* roundtrip, and the escaped text must be safe to embed raw in a
         JSON string: no bare control characters survive *)
      unescape e = s
      && not (String.exists (fun c -> Char.code c < 0x20) e))

let test_json_escape_fixed () =
  Alcotest.(check string) "quote" "a\\\"b" (Bgp_stats.Json.escape "a\"b");
  Alcotest.(check string) "newline" "x\\ny" (Bgp_stats.Json.escape "x\ny");
  Alcotest.(check string) "nul" "\\u0000" (Bgp_stats.Json.escape "\x00")

(* ------------------------------------------------------------------ *)
(* Chart                                                               *)
(* ------------------------------------------------------------------ *)

let series = { Chart.label = "s"; points = [ (0.0, 1.0); (1.0, 10.0); (2.0, 100.0) ] }

let test_chart_render () =
  let out = Chart.render ~x_label:"x" ~y_label:"y" [ series ] in
  Alcotest.(check bool) "has glyph" true (contains out "*");
  Alcotest.(check bool) "legend" true (contains out "* = s");
  let log = Chart.render ~log_y:true ~x_label:"x" ~y_label:"y" [ series ] in
  Alcotest.(check bool) "log notes scale" true (contains log "log scale");
  let empty = Chart.render ~x_label:"x" ~y_label:"y" [] in
  Alcotest.(check bool) "empty message" true (contains empty "no data")

let test_chart_tsv () =
  let s2 = { Chart.label = "t"; points = [ (0.0, 5.0); (3.0, 6.0) ] } in
  let tsv = Chart.to_tsv [ series; s2 ] in
  let lines = String.split_on_char '\n' (String.trim tsv) in
  Alcotest.(check int) "header + 4 xs" 5 (List.length lines);
  Alcotest.(check string) "header" "x\ts\tt" (List.hd lines);
  Alcotest.(check bool) "gap cell" true (contains tsv "3\t\t6")

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

let test_sweep_structure () =
  let config = { Bgpmark.Harness.default_config with Bgpmark.Harness.table_size = 200 } in
  let sweep =
    Bgpmark.Sweep.run ~config ~levels:[ 0.0; 200.0 ]
      ~archs:[ Arch.pentium3; Arch.ixp2400 ]
      (Scenario.of_id_exn 5)
  in
  Alcotest.(check int) "two series" 2 (List.length sweep.Bgpmark.Sweep.series);
  let p3 = List.hd sweep.Bgpmark.Sweep.series in
  (* levels 0, 200, plus the 315 line-rate point *)
  Alcotest.(check int) "p3 points" 3 (List.length p3.Bgpmark.Sweep.points);
  Alcotest.(check bool) "degradation >= 1" true (Bgpmark.Sweep.degradation p3 >= 1.0);
  let ixp = List.nth sweep.Bgpmark.Sweep.series 1 in
  Alcotest.(check (float 0.02)) "ixp flat" 1.0 (Bgpmark.Sweep.degradation ixp);
  let rendered = Bgpmark.Sweep.render sweep in
  Alcotest.(check bool) "render mentions benchmark" true
    (contains rendered "Benchmark 5")

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let test_figures_fig4_contrast () =
  let config = { Bgpmark.Harness.default_config with Bgpmark.Harness.table_size = 300 } in
  match Bgpmark.Figures.fig4 ~config () with
  | [ small; large ] ->
    Alcotest.(check int) "small is scenario 1" 1 small.Bgpmark.Figures.scenario_id;
    Alcotest.(check int) "large is scenario 2" 2 large.Bgpmark.Figures.scenario_id;
    Alcotest.(check bool) "both verified" true
      (small.Bgpmark.Figures.result.Bgpmark.Harness.verified = Ok ()
      && large.Bgpmark.Figures.result.Bgpmark.Harness.verified = Ok ());
    (* small packets take longer on the same workload *)
    Alcotest.(check bool) "small slower" true
      (small.Bgpmark.Figures.result.Bgpmark.Harness.measure_seconds
      > large.Bgpmark.Figures.result.Bgpmark.Harness.measure_seconds);
    let txt = Bgpmark.Figures.render_cpu small in
    Alcotest.(check bool) "renders processes" true (contains txt "xorp_bgp")
  | _ -> Alcotest.fail "fig4 must produce two panels"

let () =
  Alcotest.run "bgpmark core"
    [ ( "scenario",
        [ Alcotest.test_case "table1 structure" `Quick test_scenario_table1_structure;
          Alcotest.test_case "phases" `Quick test_scenario_phases;
          Alcotest.test_case "lookup and render" `Quick test_scenario_lookup;
          Alcotest.test_case "custom packing" `Quick test_custom_large_packing
        ] );
      ( "arch",
        [ Alcotest.test_case "table2" `Quick test_arch_table2;
          Alcotest.test_case "parameters sane" `Quick test_arch_parameters_sane;
          Alcotest.test_case "rendering" `Quick test_arch_rendering
        ] );
      ( "moments",
        Alcotest.test_case "fixed values" `Quick test_moments
        :: List.map QCheck_alcotest.to_alcotest [ prop_moments_match_naive ] );
      ( "json",
        Alcotest.test_case "escape fixed vectors" `Quick test_json_escape_fixed
        :: List.map QCheck_alcotest.to_alcotest [ prop_json_escape_roundtrip ] );
      ( "chart",
        [ Alcotest.test_case "render" `Quick test_chart_render;
          Alcotest.test_case "tsv" `Quick test_chart_tsv
        ] );
      ("sweep", [ Alcotest.test_case "structure" `Quick test_sweep_structure ]);
      ( "figures",
        [ Alcotest.test_case "fig4 contrast" `Quick test_figures_fig4_contrast ] )
    ]
