(* The fault-injection subsystem: corruption oracle, channel taps, and
   the adversarial harness scenarios end to end. *)

module Engine = Bgp_sim.Engine
module Channel = Bgp_netsim.Channel
module Msg = Bgp_wire.Msg
module Codec = Bgp_wire.Codec
module Metrics = Bgp_stats.Metrics
module Faults = Bgp_faults.Faults
module H = Bgpmark.Harness
module Scenario = Bgpmark.Scenario
module Arch = Bgp_router.Arch

let ip = Bgp_addr.Ipv4.of_string_exn
let asn = Bgp_route.Asn.of_int

let sample_update n =
  let table = Bgp_addr.Prefix_gen.table ~seed:7 ~n () in
  let attrs =
    Bgp_speaker.Workload.attrs ~speaker_asn:(asn 65001)
      ~next_hop:(ip "192.0.2.1") ~path_len:3 ()
  in
  Msg.announcement attrs (Array.to_list table)

let injector ?(profile = Faults.none) () =
  let engine = Engine.create () in
  let metrics = Metrics.create () in
  (engine, Faults.create ~profile ~clock:(Engine.clock engine) ~metrics ())

(* ------------------------------------------------------------------ *)
(* The corruption oracle                                               *)
(* ------------------------------------------------------------------ *)

let test_predict_clean () =
  List.iter
    (fun m ->
      match Faults.predict (Codec.encode m) with
      | None -> ()
      | Some e ->
        Alcotest.failf "clean %s predicted %s" (Msg.kind_name m)
          (Format.asprintf "%a" Msg.pp_error e))
    [ Msg.Keepalive;
      Msg.open_msg ~asn:(asn 1) ~bgp_id:(ip "1.1.1.1") ();
      sample_update 50 ]

let test_predict_stalls () =
  (* Shorter than a header, and a declared length past the buffer:
     both stall the framer rather than raise, so predict must abstain. *)
  let w = Codec.encode (sample_update 5) in
  Alcotest.(check bool) "partial header" true
    (Faults.predict (String.sub w 0 10) = None);
  Alcotest.(check bool) "body not yet buffered" true
    (Faults.predict (String.sub w 0 25) = None)

let test_corrupt_prediction_holds () =
  (* Every mutant the oracle emits must decode to exactly the predicted
     RFC 4271 code/subcode. *)
  let _, t = injector ~profile:{ Faults.none with Faults.seed = 3 } () in
  List.iter
    (fun m ->
      let wire = Codec.encode m in
      for _ = 1 to 50 do
        match Faults.corrupt t wire with
        | None -> Alcotest.fail "oracle found no failing mutation"
        | Some (mutant, predicted) -> (
          match Codec.decode mutant with
          | Error e ->
            Alcotest.(check (pair int int))
              "predicted code/subcode" (Msg.error_code predicted)
              (Msg.error_code e)
          | Ok _ -> Alcotest.fail "mutant decoded cleanly")
      done)
    [ sample_update 2; sample_update 100; Msg.Keepalive ]

let test_corrupt_deterministic () =
  let wire = Codec.encode (sample_update 20) in
  let run () =
    let _, t = injector ~profile:{ Faults.none with Faults.seed = 11 } () in
    List.init 20 (fun _ ->
        match Faults.corrupt t wire with
        | Some (m, e) -> (m, Msg.error_code e)
        | None -> ("", (0, 0)))
  in
  Alcotest.(check bool) "same seed, same mutants" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Channel taps                                                        *)
(* ------------------------------------------------------------------ *)

let tapped_channel profile =
  let engine = Engine.create () in
  let metrics = Metrics.create () in
  let t = Faults.create ~profile ~clock:(Engine.clock engine) ~metrics () in
  let ch = Channel.create engine () in
  let got = ref [] in
  Channel.set_receiver ch Channel.B (fun bytes -> got := bytes :: !got);
  Channel.connect ch;
  Engine.run engine;
  (engine, t, ch, got)

let test_tap_loss () =
  let engine, t, ch, got =
    tapped_channel { Faults.none with Faults.seed = 5; drop_prob = 1.0 }
  in
  Faults.tap_adversarial t (Channel.endpoint ch Channel.A);
  for _ = 1 to 10 do
    Channel.send ch Channel.A (Codec.encode Msg.Keepalive)
  done;
  Engine.run engine;
  Alcotest.(check int) "all dropped" 0 (List.length !got);
  Alcotest.(check int) "all counted" 10 (Faults.injected t)

let test_tap_off_is_transparent () =
  let engine, t, ch, got = tapped_channel Faults.none in
  Faults.tap_adversarial t (Channel.endpoint ch Channel.A);
  let wire = Codec.encode (sample_update 10) in
  for _ = 1 to 10 do
    Channel.send ch Channel.A wire
  done;
  Engine.run engine;
  Alcotest.(check int) "all delivered" 10 (List.length !got);
  Alcotest.(check bool) "unmodified" true (List.for_all (( = ) wire) !got);
  Alcotest.(check int) "nothing counted" 0 (Faults.injected t)

let test_tap_reorder_delay () =
  (* Reordered messages arrive late but arrive. *)
  let engine, t, ch, got =
    tapped_channel
      { Faults.none with
        Faults.seed = 8; reorder_prob = 1.0; reorder_delay = 0.5 }
  in
  Faults.tap_adversarial t (Channel.endpoint ch Channel.A);
  Channel.send ch Channel.A (Codec.encode Msg.Keepalive);
  Engine.run ~until:(Engine.now engine +. 0.01) engine;
  Alcotest.(check int) "still in flight" 0 (List.length !got);
  Engine.run engine;
  Alcotest.(check int) "delivered late" 1 (List.length !got)

let test_armed_corruption_observed () =
  let engine, t, ch, got =
    tapped_channel { Faults.none with Faults.seed = 13 }
  in
  Faults.tap_adversarial t (Channel.endpoint ch Channel.A);
  Faults.arm_corrupt_next t;
  (* Keepalives are not UPDATEs: the armed mutation must wait. *)
  Channel.send ch Channel.A (Codec.encode Msg.Keepalive);
  let wire = Codec.encode (sample_update 30) in
  Channel.send ch Channel.A wire;
  Engine.run engine;
  Alcotest.(check int) "both delivered" 2 (List.length !got);
  (match Faults.expected_errors t with
  | [ e ] -> (
    let mutant = List.hd !got (* last received *) in
    Alcotest.(check bool) "mutant differs" true (mutant <> wire);
    match Codec.decode mutant with
    | Error e' ->
      Alcotest.(check (pair int int))
        "mutant draws the predicted error" (Msg.error_code e)
        (Msg.error_code e')
    | Ok _ -> Alcotest.fail "mutant decoded cleanly")
  | l -> Alcotest.failf "expected one prediction, got %d" (List.length l));
  Alcotest.(check bool) "still awaiting the NOTIFICATION" false
    (Faults.all_answered t)

(* ------------------------------------------------------------------ *)
(* Adversarial scenarios end to end                                    *)
(* ------------------------------------------------------------------ *)

let adv_config =
  { H.default_config with H.table_size = 120; fault_rounds = 2 }

let run_adv id =
  let r = H.run ~config:adv_config Arch.pentium3 (Scenario.of_id_exn id) in
  (match r.H.verified with
  | Ok () -> ()
  | Error e -> Alcotest.failf "scenario %d verification: %s" id e);
  (r, Option.get r.H.faults)

let test_scenario9 () =
  let r, f = run_adv 9 in
  Alcotest.(check int) "measured = rounds * n"
    (adv_config.H.fault_rounds * adv_config.H.table_size)
    r.H.measured_prefixes;
  Alcotest.(check int) "one corruption per round" adv_config.H.fault_rounds
    f.H.fr_injected;
  Alcotest.(check int) "every malformed update answered"
    adv_config.H.fault_rounds f.H.fr_malformed_dropped;
  Alcotest.(check int) "restart per round" adv_config.H.fault_rounds
    f.H.fr_session_restarts;
  Alcotest.(check int) "re-convergence histogram" adv_config.H.fault_rounds
    f.H.fr_reconverge_count;
  Alcotest.(check bool) "positive recovery time" true
    (f.H.fr_reconverge_mean > 0.0 && f.H.fr_reconverge_max >= f.H.fr_reconverge_mean);
  (* The answered NOTIFICATION sequence must contain the expected one,
     code pair by code pair, in order. *)
  Alcotest.(check int) "prediction per round" adv_config.H.fault_rounds
    (List.length f.H.fr_expected);
  let rec subseq xs ys =
    match xs, ys with
    | [], _ -> true
    | _, [] -> false
    | x :: xs', y :: ys' -> if x = y then subseq xs' ys' else subseq xs ys'
  in
  Alcotest.(check bool) "expected is a subsequence of answered" true
    (subseq f.H.fr_expected f.H.fr_answered)

let test_scenario10 () =
  let r, f = run_adv 10 in
  Alcotest.(check int) "measured = rounds * n"
    (adv_config.H.fault_rounds * adv_config.H.table_size)
    r.H.measured_prefixes;
  Alcotest.(check int) "one session fault per round" adv_config.H.fault_rounds
    f.H.fr_injected;
  Alcotest.(check int) "restart per round" adv_config.H.fault_rounds
    f.H.fr_session_restarts;
  Alcotest.(check int) "no malformed messages" 0 f.H.fr_malformed_dropped;
  Alcotest.(check int) "FIB restored" adv_config.H.table_size r.H.fib_size_end

let test_determinism_end_to_end () =
  let once () =
    let r, f = run_adv 9 in
    (r.H.tps, f.H.fr_expected, f.H.fr_reconverge_mean)
  in
  Alcotest.(check bool) "identical replays" true (once () = once ())

let test_baseline_unaffected () =
  (* The paper scenarios must not see the fault subsystem at all: a
     standard run carries no fault report and never touches a tap. *)
  let config = { H.default_config with H.table_size = 120 } in
  let r = H.run ~config Arch.pentium3 (Scenario.of_id_exn 2) in
  Alcotest.(check bool) "verified" true (r.H.verified = Ok ());
  Alcotest.(check bool) "no fault report" true (r.H.faults = None)

let () =
  Alcotest.run "bgp_faults"
    [ ( "oracle",
        [ Alcotest.test_case "clean images predict no error" `Quick
            test_predict_clean;
          Alcotest.test_case "stalling images predict no error" `Quick
            test_predict_stalls;
          Alcotest.test_case "mutants draw the predicted error" `Quick
            test_corrupt_prediction_holds;
          Alcotest.test_case "deterministic per seed" `Quick
            test_corrupt_deterministic
        ] );
      ( "taps",
        [ Alcotest.test_case "loss" `Quick test_tap_loss;
          Alcotest.test_case "inactive profile is transparent" `Quick
            test_tap_off_is_transparent;
          Alcotest.test_case "reorder delay" `Quick test_tap_reorder_delay;
          Alcotest.test_case "armed corruption" `Quick
            test_armed_corruption_observed
        ] );
      ( "adversarial scenarios",
        [ Alcotest.test_case "scenario 9: corrupted-update storm" `Quick
            test_scenario9;
          Alcotest.test_case "scenario 10: session flaps" `Quick test_scenario10;
          Alcotest.test_case "end-to-end determinism" `Quick
            test_determinism_end_to_end;
          Alcotest.test_case "paper scenarios untouched" `Quick
            test_baseline_unaffected
        ] )
    ]
