open Bgp_fib
module P = Bgp_addr.Prefix
module I = Bgp_addr.Ipv4

let ip = I.of_string_exn
let pfx = P.of_string_exn

let nh port = { Fib.nh_addr = ip (Printf.sprintf "10.0.0.%d" port); nh_port = port }

(* ------------------------------------------------------------------ *)
(* Patricia unit tests                                                 *)
(* ------------------------------------------------------------------ *)

let lookup_str t a =
  match Patricia.lookup (ip a) t with
  | Some (p, v) -> Printf.sprintf "%s=%d" (P.to_string p) v
  | None -> "none"

let test_patricia_basic () =
  let t =
    Patricia.empty
    |> Patricia.add (pfx "10.0.0.0/8") 1
    |> Patricia.add (pfx "10.1.0.0/16") 2
    |> Patricia.add (pfx "10.1.2.0/24") 3
    |> Patricia.add (pfx "192.168.0.0/16") 4
  in
  Alcotest.(check int) "cardinal" 4 (Patricia.cardinal t);
  Alcotest.(check string) "most specific" "10.1.2.0/24=3" (lookup_str t "10.1.2.99");
  Alcotest.(check string) "mid" "10.1.0.0/16=2" (lookup_str t "10.1.3.1");
  Alcotest.(check string) "least" "10.0.0.0/8=1" (lookup_str t "10.2.0.1");
  Alcotest.(check string) "other" "192.168.0.0/16=4" (lookup_str t "192.168.9.9");
  Alcotest.(check string) "miss" "none" (lookup_str t "172.16.0.1")

let test_patricia_default_route () =
  let t = Patricia.add P.default 0 Patricia.empty in
  Alcotest.(check string) "default catches all" "0.0.0.0/0=0" (lookup_str t "8.8.8.8");
  let t = Patricia.add (pfx "8.0.0.0/8") 1 t in
  Alcotest.(check string) "specific beats default" "8.0.0.0/8=1" (lookup_str t "8.8.8.8")

let test_patricia_replace () =
  let t = Patricia.add (pfx "10.0.0.0/8") 1 Patricia.empty in
  let t = Patricia.add (pfx "10.0.0.0/8") 99 t in
  Alcotest.(check int) "still one entry" 1 (Patricia.cardinal t);
  Alcotest.(check (option int)) "replaced" (Some 99)
    (Patricia.find_exact (pfx "10.0.0.0/8") t)

let test_patricia_remove () =
  let t =
    Patricia.empty
    |> Patricia.add (pfx "10.0.0.0/8") 1
    |> Patricia.add (pfx "10.1.0.0/16") 2
  in
  let t = Patricia.remove (pfx "10.1.0.0/16") t in
  Alcotest.(check int) "one left" 1 (Patricia.cardinal t);
  Alcotest.(check string) "falls back" "10.0.0.0/8=1" (lookup_str t "10.1.0.1");
  let t = Patricia.remove (pfx "10.0.0.0/8") t in
  Alcotest.(check bool) "empty" true (Patricia.is_empty t);
  (* removing a missing prefix is a no-op *)
  let t2 = Patricia.add (pfx "10.0.0.0/8") 1 Patricia.empty in
  let t3 = Patricia.remove (pfx "11.0.0.0/8") t2 in
  Alcotest.(check int) "no-op remove" 1 (Patricia.cardinal t3)

let test_patricia_slash32 () =
  let t =
    Patricia.empty
    |> Patricia.add (pfx "10.0.0.1/32") 1
    |> Patricia.add (pfx "10.0.0.0/31") 2
  in
  Alcotest.(check string) "host route" "10.0.0.1/32=1" (lookup_str t "10.0.0.1");
  Alcotest.(check string) "host sibling" "10.0.0.0/31=2" (lookup_str t "10.0.0.0")

let test_patricia_persistence () =
  let t1 = Patricia.add (pfx "10.0.0.0/8") 1 Patricia.empty in
  let t2 = Patricia.add (pfx "10.1.0.0/16") 2 t1 in
  (* t1 is unchanged by the second add *)
  Alcotest.(check int) "t1 size" 1 (Patricia.cardinal t1);
  Alcotest.(check string) "t1 lookup" "10.0.0.0/8=1" (lookup_str t1 "10.1.0.1");
  Alcotest.(check string) "t2 lookup" "10.1.0.0/16=2" (lookup_str t2 "10.1.0.1")

let test_patricia_lookup_prefix () =
  let t =
    Patricia.empty
    |> Patricia.add (pfx "10.0.0.0/8") 1
    |> Patricia.add (pfx "10.1.0.0/16") 2
  in
  (match Patricia.lookup_prefix (pfx "10.1.2.0/24") t with
  | Some (p, 2) -> Alcotest.(check string) "cover" "10.1.0.0/16" (P.to_string p)
  | _ -> Alcotest.fail "expected 10.1.0.0/16");
  match Patricia.lookup_prefix (pfx "11.0.0.0/8") t with
  | None -> ()
  | Some _ -> Alcotest.fail "no cover expected"

let test_patricia_subtree_count () =
  let t =
    Patricia.empty
    |> Patricia.add (pfx "10.0.0.0/8") 1
    |> Patricia.add (pfx "10.1.0.0/16") 2
    |> Patricia.add (pfx "10.2.0.0/16") 3
    |> Patricia.add (pfx "192.168.0.0/16") 4
  in
  Alcotest.(check int) "under 10/8" 3 (Patricia.subtree_count t (pfx "10.0.0.0/8"));
  Alcotest.(check int) "under 10.1/16" 1 (Patricia.subtree_count t (pfx "10.1.0.0/16"));
  Alcotest.(check int) "under default" 4 (Patricia.subtree_count t P.default);
  Alcotest.(check int) "none" 0 (Patricia.subtree_count t (pfx "172.16.0.0/12"))

(* ------------------------------------------------------------------ *)
(* Model-based property tests: Patricia vs Hash_lpm vs naive           *)
(* ------------------------------------------------------------------ *)

(* A step script drives all implementations identically. *)
type step = SAdd of P.t * int | SRemove of P.t

let gen_prefix =
  QCheck2.Gen.(
    (* Small universe to force collisions, nesting and removals of
       present entries. *)
    let* len = oneofl [ 0; 4; 8; 12; 16; 20; 24; 28; 32 ] in
    let* a = int_range 0 255 in
    let* b = oneofl [ 0; 64; 128 ] in
    return (P.make (I.of_octets 10 a b 1) len))

let gen_step =
  QCheck2.Gen.(
    let* p = gen_prefix in
    let* v = int_range 0 1000 in
    let* add = frequency [ (3, return true); (1, return false) ] in
    return (if add then SAdd (p, v) else SRemove p))

let gen_script = QCheck2.Gen.(list_size (int_range 0 120) gen_step)

(* Naive reference: association list keyed by prefix. *)
let naive_apply model = function
  | SAdd (p, v) -> (p, v) :: List.remove_assoc p model
  | SRemove p -> List.remove_assoc p model

let naive_lookup model a =
  List.fold_left
    (fun best (p, v) ->
      if P.mem a p then
        match best with
        | Some (bp, _) when P.len bp >= P.len p -> best
        | _ -> Some (p, v)
      else best)
    None model

let run_script script =
  let model = List.fold_left naive_apply [] script in
  let pat =
    List.fold_left
      (fun t -> function
        | SAdd (p, v) -> Patricia.add p v t
        | SRemove p -> Patricia.remove p t)
      Patricia.empty script
  in
  let hash = Hash_lpm.create () in
  List.iter
    (function
      | SAdd (p, v) -> Hash_lpm.insert hash p v
      | SRemove p -> ignore (Hash_lpm.remove hash p))
    script;
  (model, pat, hash)

let probe_addrs =
  [ "10.0.0.1"; "10.17.64.1"; "10.255.128.1"; "10.128.0.1"; "11.0.0.1";
    "0.0.0.0"; "255.255.255.255"; "10.3.128.200" ]
  |> List.map ip

let prop_patricia_vs_model =
  QCheck2.Test.make ~name:"patricia agrees with naive model" ~count:300 gen_script
    (fun script ->
      let model, pat, _ = run_script script in
      Patricia.cardinal pat = List.length model
      && List.for_all
           (fun a ->
             let expect = naive_lookup model a in
             let got = Patricia.lookup a pat in
             match expect, got with
             | None, None -> true
             | Some (p, v), Some (q, w) -> P.equal p q && v = w
             | _ -> false)
           probe_addrs)

let prop_hash_vs_model =
  QCheck2.Test.make ~name:"hash_lpm agrees with naive model" ~count:300 gen_script
    (fun script ->
      let model, _, hash = run_script script in
      Hash_lpm.size hash = List.length model
      && List.for_all
           (fun a ->
             match naive_lookup model a, Hash_lpm.lookup hash a with
             | None, None -> true
             | Some (p, v), Some (q, w) -> P.equal p q && v = w
             | _ -> false)
           probe_addrs)

let prop_patricia_invariants =
  QCheck2.Test.make ~name:"patricia invariants hold" ~count:300 gen_script
    (fun script ->
      let _, pat, _ = run_script script in
      match Patricia.check_invariants pat with
      | Ok () -> true
      | Error _ -> false)

let prop_patricia_find_exact =
  QCheck2.Test.make ~name:"find_exact matches model membership" ~count:300
    gen_script (fun script ->
      let model, pat, _ = run_script script in
      List.for_all
        (fun (p, v) -> Patricia.find_exact p pat = Some v)
        model)

(* ------------------------------------------------------------------ *)
(* Dir24_8                                                             *)
(* ------------------------------------------------------------------ *)

let test_dir24_agreement () =
  let table = Bgp_addr.Prefix_gen.table ~seed:11 ~n:2000 () in
  let bindings = Array.to_list (Array.mapi (fun i p -> (p, i)) table) in
  let dir = Dir24_8.build bindings in
  let pat =
    List.fold_left (fun t (p, v) -> Patricia.add p v t) Patricia.empty bindings
  in
  Alcotest.(check int) "size" 2000 (Dir24_8.size dir);
  (* Probe with the first address of every prefix plus perturbations. *)
  Array.iter
    (fun p ->
      List.iter
        (fun a ->
          let expect = Patricia.lookup a pat in
          let got = Dir24_8.lookup dir a in
          match expect, got with
          | None, None -> ()
          | Some (ep, ev), Some (gp, gv) ->
            if not (P.equal ep gp && ev = gv) then
              Alcotest.failf "disagree at %s: patricia %s=%d dir %s=%d"
                (I.to_string a) (P.to_string ep) ev (P.to_string gp) gv
          | Some (ep, _), None ->
            Alcotest.failf "dir miss at %s (expected %s)" (I.to_string a)
              (P.to_string ep)
          | None, Some (gp, _) ->
            Alcotest.failf "dir spurious at %s: %s" (I.to_string a)
              (P.to_string gp))
        [ P.first p; P.last p; I.add (P.first p) 1 ])
    table

let test_dir24_long_prefixes () =
  let bindings =
    [ (pfx "10.0.0.0/8", 1); (pfx "10.1.1.128/25", 2); (pfx "10.1.1.192/26", 3);
      (pfx "10.1.1.200/32", 4) ]
  in
  let dir = Dir24_8.build bindings in
  let check a expect =
    match Dir24_8.lookup dir (ip a) with
    | Some (_, v) -> Alcotest.(check int) a expect v
    | None -> Alcotest.failf "miss at %s" a
  in
  check "10.1.1.200" 4;
  check "10.1.1.201" 3;
  check "10.1.1.129" 2;
  check "10.1.1.1" 1;
  check "10.9.9.9" 1;
  Alcotest.(check bool) "memory accounted" true (Dir24_8.memory_bytes dir > 1 lsl 24)

(* Model-based check vs Patricia over random small tables (kept to a
   modest count: each build allocates the 32 MB first-level table). *)
let prop_dir24_vs_patricia =
  QCheck2.Test.make ~name:"dir24_8 agrees with patricia" ~count:15
    QCheck2.Gen.(list_size (int_range 1 60) (pair gen_prefix (int_range 0 100)))
    (fun bindings ->
      (* dedup with later-wins like Dir24_8.build *)
      let tbl = Hashtbl.create 64 in
      List.iter (fun (p, v) -> Hashtbl.replace tbl p v) bindings;
      let dedup = Hashtbl.fold (fun p v acc -> (p, v) :: acc) tbl [] in
      let dir = Dir24_8.build dedup in
      let pat =
        List.fold_left (fun t (p, v) -> Patricia.add p v t) Patricia.empty dedup
      in
      List.for_all
        (fun (p, _) ->
          List.for_all
            (fun a ->
              match Patricia.lookup a pat, Dir24_8.lookup dir a with
              | None, None -> true
              | Some (ep, ev), Some (gp, gv) -> P.equal ep gp && ev = gv
              | _ -> false)
            [ P.first p; P.last p ])
        dedup)

(* Edge-case differential: the default route (/0), host routes (/32),
   and many >24-bit prefixes packed densely into ONE /24 chunk, so a
   single second-level page carries deep nesting while /0 must answer
   for every address no chunk covers. *)
let gen_dense_chunk_bindings =
  QCheck2.Gen.(
    let with_val g =
      let* p = g in
      let* v = int_range 0 1000 in
      return (p, v)
    in
    let gen_long =
      let* len = int_range 25 32 in
      let* off = int_range 0 255 in
      return (P.make (I.of_octets 10 1 1 off) len)
    in
    let gen_wide =
      let* len = oneofl [ 0; 8; 16; 24 ] in
      let* a = oneofl [ 0; 1; 2 ] in
      return (P.make (I.of_octets 10 a 1 0) len)
    in
    let* longs = list_size (int_range 5 40) (with_val gen_long) in
    let* wides = list_size (int_range 0 6) (with_val gen_wide) in
    let* host = with_val (return (P.make (I.of_octets 10 1 1 77) 32)) in
    let* dflt = with_val (return P.default) in
    return (dflt :: host :: wides @ longs))

let prop_dir24_dense_chunk =
  QCheck2.Test.make ~name:"dir24_8 dense >24 chunk incl /0 and /32" ~count:10
    gen_dense_chunk_bindings
    (fun bindings ->
      let tbl = Hashtbl.create 64 in
      List.iter (fun (p, v) -> Hashtbl.replace tbl p v) bindings;
      let dedup = Hashtbl.fold (fun p v acc -> (p, v) :: acc) tbl [] in
      let dir = Dir24_8.build dedup in
      let pat =
        List.fold_left (fun t (p, v) -> Patricia.add p v t) Patricia.empty dedup
      in
      let probes =
        List.init 256 (fun o -> I.of_octets 10 1 1 o)
        @ [ I.of_octets 10 1 2 1; I.of_octets 9 9 9 9;
            I.of_octets 255 255 255 255; I.of_octets 0 0 0 0 ]
      in
      List.for_all
        (fun a ->
          match Patricia.lookup a pat, Dir24_8.lookup dir a with
          | None, None -> true
          | Some (ep, ev), Some (gp, gv) -> P.equal ep gp && ev = gv
          | _ -> false)
        probes)

let test_dir24_duplicate_bindings () =
  let dir = Dir24_8.build [ (pfx "10.0.0.0/8", 1); (pfx "10.0.0.0/8", 2) ] in
  Alcotest.(check int) "dedup" 1 (Dir24_8.size dir);
  match Dir24_8.lookup dir (ip "10.1.1.1") with
  | Some (_, 2) -> ()
  | _ -> Alcotest.fail "later binding must win"

(* ------------------------------------------------------------------ *)
(* Fib (deltas + stats)                                                *)
(* ------------------------------------------------------------------ *)

let test_fib_deltas () =
  let f = Fib.create () in
  Alcotest.(check bool) "add" true (Fib.apply f (Fib.Add (pfx "10.0.0.0/8", nh 1)));
  Alcotest.(check bool) "dup add no-op" false
    (Fib.apply f (Fib.Add (pfx "10.0.0.0/8", nh 1)));
  Alcotest.(check bool) "replace" true
    (Fib.apply f (Fib.Replace (pfx "10.0.0.0/8", nh 2)));
  Alcotest.(check bool) "same replace no-op" false
    (Fib.apply f (Fib.Replace (pfx "10.0.0.0/8", nh 2)));
  Alcotest.(check int) "size" 1 (Fib.size f);
  Alcotest.(check bool) "withdraw" true (Fib.apply f (Fib.Withdraw (pfx "10.0.0.0/8")));
  Alcotest.(check bool) "missing withdraw no-op" false
    (Fib.apply f (Fib.Withdraw (pfx "10.0.0.0/8")));
  Alcotest.(check int) "empty" 0 (Fib.size f);
  let s = Fib.stats f in
  Alcotest.(check int) "adds" 2 s.Fib.adds;
  Alcotest.(check int) "replaces" 2 s.Fib.replaces;
  Alcotest.(check int) "withdraws" 2 s.Fib.withdraws

let test_fib_lookup_and_snapshot () =
  let f = Fib.create () in
  let changed =
    Fib.apply_all f
      [ Fib.Add (pfx "10.0.0.0/8", nh 1); Fib.Add (pfx "10.1.0.0/16", nh 2);
        Fib.Add (pfx "10.1.0.0/16", nh 2) ]
  in
  Alcotest.(check int) "changed" 2 changed;
  (match Fib.lookup f (ip "10.1.2.3") with
  | Some (p, h) ->
    Alcotest.(check string) "lpm" "10.1.0.0/16" (P.to_string p);
    Alcotest.(check int) "port" 2 h.Fib.nh_port
  | None -> Alcotest.fail "lookup miss");
  let snap = Fib.snapshot f in
  ignore (Fib.apply f (Fib.Withdraw (pfx "10.1.0.0/16")));
  Alcotest.(check int) "snapshot immutable" 2 (Patricia.cardinal snap);
  Alcotest.(check int) "fib shrunk" 1 (Fib.size f);
  Alcotest.(check int) "lookup counted" 1 (Fib.stats f).Fib.lookups

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "bgp_fib"
    [ ( "patricia",
        [ Alcotest.test_case "basic lpm" `Quick test_patricia_basic;
          Alcotest.test_case "default route" `Quick test_patricia_default_route;
          Alcotest.test_case "replace" `Quick test_patricia_replace;
          Alcotest.test_case "remove" `Quick test_patricia_remove;
          Alcotest.test_case "host routes" `Quick test_patricia_slash32;
          Alcotest.test_case "persistence" `Quick test_patricia_persistence;
          Alcotest.test_case "lookup_prefix" `Quick test_patricia_lookup_prefix;
          Alcotest.test_case "subtree_count" `Quick test_patricia_subtree_count
        ] );
      qsuite "model-based"
        [ prop_patricia_vs_model; prop_hash_vs_model; prop_patricia_invariants;
          prop_patricia_find_exact ];
      ( "dir24_8",
        Alcotest.test_case "agrees with patricia" `Slow test_dir24_agreement
        :: Alcotest.test_case "long prefixes" `Quick test_dir24_long_prefixes
        :: Alcotest.test_case "duplicates" `Quick test_dir24_duplicate_bindings
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_dir24_vs_patricia; prop_dir24_dense_chunk ] );
      ( "fib",
        [ Alcotest.test_case "delta semantics" `Quick test_fib_deltas;
          Alcotest.test_case "lookup and snapshot" `Quick test_fib_lookup_and_snapshot
        ] )
    ]
