open Bgp_fsm
module Msg = Bgp_wire.Msg

let ip = Bgp_addr.Ipv4.of_string_exn
let asn = Bgp_route.Asn.of_int
let pfx = Bgp_addr.Prefix.of_string_exn

let cfg = Fsm.default_config ~asn:(asn 65001) ~router_id:(ip "192.0.2.1")
let peer_open = Msg.open_msg ~hold_time:90 ~asn:(asn 65002) ~bgp_id:(ip "192.0.2.2") ()

let attrs =
  Bgp_route.Attrs.make
    ~as_path:(Bgp_route.As_path.of_asns [ asn 65002 ])
    ~next_hop:(ip "192.0.2.2") ()

let state_t = Alcotest.testable Fsm.pp_state ( = )

let has_action pred actions = List.exists pred actions

let is_send_open = function Fsm.Send (Msg.Open _) -> true | _ -> false
let is_send_keepalive = function Fsm.Send Msg.Keepalive -> true | _ -> false

let is_send_notification code = function
  | Fsm.Send (Msg.Notification e) -> fst (Msg.error_code e) = code
  | _ -> false

(* Drive a pure FSM through a list of events, returning final state. *)
let drive t events =
  List.fold_left
    (fun (t, _) ev -> Fsm.handle t ev)
    (t, [])
    events

(* ------------------------------------------------------------------ *)
(* Pure FSM transitions                                                *)
(* ------------------------------------------------------------------ *)

let test_happy_path () =
  let t = Fsm.create cfg in
  Alcotest.check state_t "initial" Fsm.Idle (Fsm.state t);
  let t, acts = Fsm.handle t Fsm.Manual_start in
  Alcotest.check state_t "connect" Fsm.Connect (Fsm.state t);
  Alcotest.(check bool) "starts connect" true
    (has_action (function Fsm.Start_connect -> true | _ -> false) acts);
  let t, acts = Fsm.handle t Fsm.Tcp_connected in
  Alcotest.check state_t "opensent" Fsm.Open_sent (Fsm.state t);
  Alcotest.(check bool) "sends open" true (has_action is_send_open acts);
  let t, acts = Fsm.handle t (Fsm.Msg_received peer_open) in
  Alcotest.check state_t "openconfirm" Fsm.Open_confirm (Fsm.state t);
  Alcotest.(check bool) "sends keepalive" true (has_action is_send_keepalive acts);
  Alcotest.(check (option (float 0.01))) "negotiated hold" (Some 90.0)
    (Fsm.negotiated_hold_time t);
  let t, acts = Fsm.handle t (Fsm.Msg_received Msg.Keepalive) in
  Alcotest.check state_t "established" Fsm.Established (Fsm.state t);
  Alcotest.(check bool) "signals established" true
    (has_action (function Fsm.Session_established -> true | _ -> false) acts)

let established () =
  let t = Fsm.create cfg in
  let t, _ =
    drive t
      [ Fsm.Manual_start; Fsm.Tcp_connected; Fsm.Msg_received peer_open;
        Fsm.Msg_received Msg.Keepalive ]
  in
  t

let test_update_delivery () =
  let t = established () in
  let u =
    Msg.Update
      { Msg.withdrawn = [];
        attrs = Some (Bgp_route.Attrs.Interned.intern attrs);
        nlri = [ pfx "10.0.0.0/8" ] }
  in
  let t, acts = Fsm.handle t (Fsm.Msg_received u) in
  Alcotest.check state_t "stays established" Fsm.Established (Fsm.state t);
  Alcotest.(check bool) "delivers update" true
    (has_action (function Fsm.Deliver_update _ -> true | _ -> false) acts);
  Alcotest.(check bool) "rearms hold" true
    (has_action (function Fsm.Arm (Fsm.Hold, _) -> true | _ -> false) acts)

let test_hold_negotiation_min () =
  (* Peer proposes 30, we propose 90: min wins. *)
  let small = Msg.open_msg ~hold_time:30 ~asn:(asn 65002) ~bgp_id:(ip "192.0.2.2") () in
  let t = Fsm.create cfg in
  let t, _ = drive t [ Fsm.Manual_start; Fsm.Tcp_connected; Fsm.Msg_received small ] in
  Alcotest.(check (option (float 0.01))) "min hold" (Some 30.0)
    (Fsm.negotiated_hold_time t)

let test_hold_zero_disables () =
  let zero = Msg.open_msg ~hold_time:0 ~asn:(asn 65002) ~bgp_id:(ip "192.0.2.2") () in
  let t = Fsm.create cfg in
  let t, acts = drive t [ Fsm.Manual_start; Fsm.Tcp_connected ] in
  ignore acts;
  let t, acts = Fsm.handle t (Fsm.Msg_received zero) in
  Alcotest.(check (option (float 0.01))) "disabled" None (Fsm.negotiated_hold_time t);
  Alcotest.(check bool) "cancels hold" true
    (has_action (function Fsm.Cancel Fsm.Hold -> true | _ -> false) acts)

let test_hold_expiry_sends_notification () =
  let t = established () in
  let t, acts = Fsm.handle t (Fsm.Timer_expired Fsm.Hold) in
  Alcotest.check state_t "idle" Fsm.Idle (Fsm.state t);
  Alcotest.(check bool) "hold notification" true
    (has_action (is_send_notification 4) acts);
  Alcotest.(check bool) "session down" true
    (has_action (function Fsm.Session_down _ -> true | _ -> false) acts)

let test_keepalive_timer_resends () =
  let t = established () in
  let t, acts = Fsm.handle t (Fsm.Timer_expired Fsm.Keepalive) in
  Alcotest.check state_t "still up" Fsm.Established (Fsm.state t);
  Alcotest.(check bool) "sends ka" true (has_action is_send_keepalive acts);
  Alcotest.(check bool) "rearms ka" true
    (has_action (function Fsm.Arm (Fsm.Keepalive, _) -> true | _ -> false) acts)

let test_keepalive_rearm_interval () =
  (* RFC 4271 §10: keepalive at one third of the negotiated hold time —
     both the initial arm and every timer-driven re-arm. *)
  let expected = 90.0 /. 3.0 in
  let interval acts =
    List.find_map
      (function Fsm.Arm (Fsm.Keepalive, d) -> Some d | _ -> None)
      acts
  in
  let t = Fsm.create cfg in
  let t, _ = drive t [ Fsm.Manual_start; Fsm.Tcp_connected ] in
  let t, acts = Fsm.handle t (Fsm.Msg_received peer_open) in
  Alcotest.(check (option (float 1e-9))) "initial arm" (Some expected)
    (interval acts);
  let t, _ = Fsm.handle t (Fsm.Msg_received Msg.Keepalive) in
  let t, acts = Fsm.handle t (Fsm.Timer_expired Fsm.Keepalive) in
  Alcotest.(check (option (float 1e-9))) "re-arm in Established"
    (Some expected) (interval acts);
  (* ...and re-arming from Open_confirm uses the same interval. *)
  let t2 = Fsm.create cfg in
  let t2, _ =
    drive t2 [ Fsm.Manual_start; Fsm.Tcp_connected; Fsm.Msg_received peer_open ]
  in
  let _, acts2 = Fsm.handle t2 (Fsm.Timer_expired Fsm.Keepalive) in
  Alcotest.(check (option (float 1e-9))) "re-arm in Open_confirm"
    (Some expected) (interval acts2);
  ignore t

let test_teardown_action_order () =
  (* Teardown must cancel every timer before Close_connection: an action
     interpreter that closes first could see a stale timer fire against
     a dead connection.  The NOTIFICATION (if any) goes first, while the
     connection is still up; Session_down is last. *)
  let t = established () in
  let _, acts = Fsm.handle t Fsm.Manual_stop in
  let idx pred =
    let rec go i = function
      | [] -> Alcotest.fail "action missing"
      | a :: rest -> if pred a then i else go (i + 1) rest
    in
    go 0 acts
  in
  let i_notify = idx (is_send_notification 6) in
  let i_close = idx (function Fsm.Close_connection -> true | _ -> false) in
  let i_down = idx (function Fsm.Session_down _ -> true | _ -> false) in
  let cancels =
    List.filteri (fun i _ -> i < i_close) acts
    |> List.filter (function Fsm.Cancel _ -> true | _ -> false)
    |> List.length
  in
  Alcotest.(check bool) "notification before close" true (i_notify < i_close);
  Alcotest.(check int) "all three timers cancelled before close" 3 cancels;
  Alcotest.(check bool) "session down last" true
    (i_down = List.length acts - 1)

let test_route_refresh_delivery () =
  let t = established () in
  let t, acts = Fsm.handle t (Fsm.Msg_received Msg.route_refresh) in
  Alcotest.check state_t "stays established" Fsm.Established (Fsm.state t);
  Alcotest.(check bool) "delivers refresh" true
    (has_action (function Fsm.Deliver_refresh (1, 1) -> true | _ -> false) acts);
  (* ...but a refresh before Established is an FSM error *)
  let t2 = Fsm.create cfg in
  let t2, _ = drive t2 [ Fsm.Manual_start; Fsm.Tcp_connected ] in
  let t2, acts2 = Fsm.handle t2 (Fsm.Msg_received Msg.route_refresh) in
  Alcotest.check state_t "reset" Fsm.Idle (Fsm.state t2);
  Alcotest.(check bool) "fsm error" true (has_action (is_send_notification 5) acts2)

let test_unexpected_open_in_established () =
  let t = established () in
  let t, acts = Fsm.handle t (Fsm.Msg_received peer_open) in
  Alcotest.check state_t "reset" Fsm.Idle (Fsm.state t);
  Alcotest.(check bool) "fsm error" true (has_action (is_send_notification 5) acts)

let test_notification_resets () =
  let t = established () in
  let t, acts = Fsm.handle t (Fsm.Msg_received (Msg.Notification Msg.Cease)) in
  Alcotest.check state_t "idle" Fsm.Idle (Fsm.state t);
  (* Receiving a notification must not send one back. *)
  Alcotest.(check bool) "no notification reply" false
    (has_action (function Fsm.Send (Msg.Notification _) -> true | _ -> false) acts)

let test_protocol_error_notifies () =
  let t = established () in
  let err = Msg.Message_header_error Msg.Connection_not_synchronized in
  let t, acts = Fsm.handle t (Fsm.Protocol_error err) in
  Alcotest.check state_t "idle" Fsm.Idle (Fsm.state t);
  Alcotest.(check bool) "notifies header error" true
    (has_action (is_send_notification 1) acts)

let test_manual_stop_ceases () =
  let t = established () in
  let t, acts = Fsm.handle t Fsm.Manual_stop in
  Alcotest.check state_t "idle" Fsm.Idle (Fsm.state t);
  Alcotest.(check bool) "cease" true (has_action (is_send_notification 6) acts)

let test_passive_waits () =
  let t = Fsm.create { cfg with Fsm.passive = true } in
  let t, acts = Fsm.handle t Fsm.Manual_start in
  Alcotest.check state_t "active (waiting)" Fsm.Active (Fsm.state t);
  Alcotest.(check bool) "no connect attempt" false
    (has_action (function Fsm.Start_connect -> true | _ -> false) acts);
  let t, acts = Fsm.handle t Fsm.Tcp_connected in
  Alcotest.check state_t "opensent" Fsm.Open_sent (Fsm.state t);
  Alcotest.(check bool) "sends open" true (has_action is_send_open acts)

let test_connect_retry () =
  let t = Fsm.create cfg in
  let t, _ = Fsm.handle t Fsm.Manual_start in
  let t, acts = Fsm.handle t Fsm.Tcp_failed in
  Alcotest.check state_t "active" Fsm.Active (Fsm.state t);
  Alcotest.(check bool) "rearm retry" true
    (has_action (function Fsm.Arm (Fsm.Connect_retry, _) -> true | _ -> false) acts);
  let t, acts = Fsm.handle t (Fsm.Timer_expired Fsm.Connect_retry) in
  Alcotest.check state_t "reconnects" Fsm.Connect (Fsm.state t);
  Alcotest.(check bool) "start connect" true
    (has_action (function Fsm.Start_connect -> true | _ -> false) acts)

let test_connection_loss_in_established () =
  let t = established () in
  let t, _ = Fsm.handle t Fsm.Tcp_closed in
  Alcotest.check state_t "idle after loss" Fsm.Idle (Fsm.state t)

(* ------------------------------------------------------------------ *)
(* Framer                                                              *)
(* ------------------------------------------------------------------ *)

let test_framer_chunked () =
  let f = Framer.create () in
  let wire = Bgp_wire.Codec.encode Msg.Keepalive ^ Bgp_wire.Codec.encode peer_open in
  (* feed in 5-byte chunks *)
  let rec feed i =
    if i < String.length wire then begin
      Framer.feed f (String.sub wire i (min 5 (String.length wire - i)));
      feed (i + 5)
    end
  in
  feed 0;
  (match Framer.next f with
  | Framer.Msg (Msg.Keepalive, 19) -> ()
  | _ -> Alcotest.fail "first message");
  (match Framer.next f with
  | Framer.Msg (Msg.Open _, _) -> ()
  | _ -> Alcotest.fail "second message");
  (match Framer.next f with
  | Framer.Need_more -> ()
  | _ -> Alcotest.fail "drained");
  Alcotest.(check int) "no leftover" 0 (Framer.buffered f)

let test_framer_need_more () =
  let f = Framer.create () in
  Framer.feed f (String.sub (Bgp_wire.Codec.encode Msg.Keepalive) 0 10);
  match Framer.next f with
  | Framer.Need_more -> ()
  | _ -> Alcotest.fail "should need more"

let test_framer_poisoned () =
  let f = Framer.create () in
  Framer.feed f (String.make 19 '\x00');
  (match Framer.next f with
  | Framer.Error (Msg.Message_header_error Msg.Connection_not_synchronized) -> ()
  | _ -> Alcotest.fail "marker error expected");
  (* stays poisoned even with good bytes appended *)
  Framer.feed f (Bgp_wire.Codec.encode Msg.Keepalive);
  match Framer.next f with
  | Framer.Error _ -> ()
  | _ -> Alcotest.fail "should stay poisoned"

(* ------------------------------------------------------------------ *)
(* Session over an in-memory loopback                                  *)
(* ------------------------------------------------------------------ *)

(* A synchronous pipe connecting two sessions, with manual timer
   control. *)
type pipe = {
  mutable to_a : string list;
  mutable to_b : string list;
  mutable timers : (float * (unit -> unit) * bool ref) list;
}

let make_session pipe ~dir cfg hooks =
  let io =
    { Session.out_bytes =
        (fun bytes ->
          if dir = `A then pipe.to_b <- pipe.to_b @ [ bytes ]
          else pipe.to_a <- pipe.to_a @ [ bytes ]);
      start_connect = (fun () -> ());
      close = (fun () -> ()) }
  in
  let timer_service =
    { Session.arm_timer =
        (fun delay fn ->
          let alive = ref true in
          pipe.timers <- (delay, fn, alive) :: pipe.timers;
          fun () -> alive := false) }
  in
  Session.create cfg timer_service io hooks

let pump pipe a b =
  (* Deliver queued bytes until quiescent. *)
  let rec go budget =
    if budget = 0 then Alcotest.fail "pump did not quiesce";
    match pipe.to_a, pipe.to_b with
    | [], [] -> ()
    | xs, ys ->
      pipe.to_a <- [];
      pipe.to_b <- [];
      List.iter (Session.feed a) xs;
      List.iter (Session.feed b) ys;
      go (budget - 1)
  in
  go 100

let test_session_handshake_and_update () =
  let pipe = { to_a = []; to_b = []; timers = [] } in
  let got_update = ref None in
  let a_cfg = Fsm.default_config ~asn:(asn 65001) ~router_id:(ip "192.0.2.1") in
  let b_cfg =
    { (Fsm.default_config ~asn:(asn 65002) ~router_id:(ip "192.0.2.2")) with
      Fsm.passive = true }
  in
  let a = make_session pipe ~dir:`A a_cfg Session.null_hooks in
  let b =
    make_session pipe ~dir:`B b_cfg
      { Session.null_hooks with
        Session.on_update = (fun u -> got_update := Some u) }
  in
  Session.start a;
  Session.start b;
  (* Simulate the TCP connection coming up on both ends. *)
  Session.connected a;
  Session.connected b;
  pump pipe a b;
  Alcotest.(check string) "a established" "Established"
    (Fsm.state_name (Session.state a));
  Alcotest.(check string) "b established" "Established"
    (Fsm.state_name (Session.state b));
  (* a sends an update; b's hook sees it *)
  let u = Msg.announcement attrs [ pfx "10.0.0.0/8" ] in
  Alcotest.(check bool) "send ok" true (Session.send a u);
  pump pipe a b;
  (match !got_update with
  | Some uu -> Alcotest.(check int) "one nlri" 1 (List.length uu.Msg.nlri)
  | None -> Alcotest.fail "update not delivered");
  (* cannot send when not established *)
  Session.stop a;
  Alcotest.(check bool) "send refused" false (Session.send a u)

let test_session_garbage_kills () =
  let pipe = { to_a = []; to_b = []; timers = [] } in
  let down = ref false in
  let a_cfg = Fsm.default_config ~asn:(asn 65001) ~router_id:(ip "192.0.2.1") in
  let b_cfg =
    { (Fsm.default_config ~asn:(asn 65002) ~router_id:(ip "192.0.2.2")) with
      Fsm.passive = true }
  in
  let a = make_session pipe ~dir:`A a_cfg Session.null_hooks in
  let b =
    make_session pipe ~dir:`B b_cfg
      { Session.null_hooks with Session.on_down = (fun _ -> down := true) }
  in
  Session.start a;
  Session.start b;
  Session.connected a;
  Session.connected b;
  pump pipe a b;
  (* feed garbage straight into b *)
  Session.feed b (String.make 19 '\x00');
  Alcotest.(check bool) "session down" true !down;
  Alcotest.(check string) "b idle" "Idle" (Fsm.state_name (Session.state b))

(* Property: any chunking of a valid message stream reassembles the
   same messages. *)
let prop_framer_chunking =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 6 in
      let* cuts = list_size (int_range 0 20) (int_range 1 50) in
      return (n, cuts))
  in
  QCheck2.Test.make ~name:"framer reassembles under arbitrary chunking" ~count:200
    gen
    (fun (n, cuts) ->
      let msgs =
        List.init n (fun i ->
            if i mod 3 = 0 then Msg.Keepalive
            else if i mod 3 = 1 then peer_open
            else
              Msg.announcement attrs
                [ Bgp_addr.Prefix.of_string_exn (Printf.sprintf "10.%d.0.0/16" i) ])
      in
      let wire = String.concat "" (List.map Bgp_wire.Codec.encode msgs) in
      let f = Framer.create () in
      (* cut the stream at pseudo-random points driven by [cuts] *)
      let pos = ref 0 in
      let cuts = if cuts = [] then [ String.length wire ] else cuts in
      let rec feed i =
        if !pos < String.length wire then begin
          let step = List.nth cuts (i mod List.length cuts) in
          let take = min step (String.length wire - !pos) in
          Framer.feed f (String.sub wire !pos take);
          pos := !pos + take;
          feed (i + 1)
        end
      in
      feed 0;
      let rec drain acc =
        match Framer.next f with
        | Framer.Msg (m, _) -> drain (m :: acc)
        | Framer.Need_more -> List.rev acc
        | Framer.Error _ -> []
      in
      let out = drain [] in
      List.length out = n
      && List.for_all2
           (fun a b -> Msg.kind_name a = Msg.kind_name b)
           msgs out)

(* Robustness: any sequence of events leaves the FSM in a defined state
   and never raises. Also checks a structural invariant: only
   Established delivers updates. *)
let prop_fsm_never_crashes =
  let gen_event =
    QCheck2.Gen.oneofl
      [ Fsm.Manual_start; Fsm.Manual_stop; Fsm.Tcp_connected; Fsm.Tcp_failed;
        Fsm.Tcp_closed; Fsm.Msg_received peer_open;
        Fsm.Msg_received Msg.Keepalive;
        Fsm.Msg_received (Msg.announcement attrs [ pfx "10.0.0.0/8" ]);
        Fsm.Msg_received (Msg.Notification Msg.Cease);
        Fsm.Msg_received Msg.route_refresh;
        Fsm.Protocol_error (Msg.Message_header_error Msg.Connection_not_synchronized);
        Fsm.Timer_expired Fsm.Connect_retry; Fsm.Timer_expired Fsm.Hold;
        Fsm.Timer_expired Fsm.Keepalive ]
  in
  QCheck2.Test.make ~name:"fsm survives arbitrary event sequences" ~count:300
    QCheck2.Gen.(list_size (int_range 0 40) gen_event)
    (fun events ->
      let ok = ref true in
      let _ =
        List.fold_left
          (fun t ev ->
            let t', actions = Fsm.handle t ev in
            List.iter
              (fun a ->
                match a, Fsm.state t with
                | Fsm.Deliver_update _, Fsm.Established -> ()
                | Fsm.Deliver_update _, _ -> ok := false
                | _ -> ())
              actions;
            t')
          (Fsm.create cfg) events
      in
      !ok)

let () =
  Alcotest.run "bgp_fsm"
    [ ( "fsm",
        [ Alcotest.test_case "happy path to established" `Quick test_happy_path;
          Alcotest.test_case "update delivery" `Quick test_update_delivery;
          Alcotest.test_case "route refresh delivery" `Quick test_route_refresh_delivery;
          Alcotest.test_case "hold negotiation min" `Quick test_hold_negotiation_min;
          Alcotest.test_case "hold zero disables" `Quick test_hold_zero_disables;
          Alcotest.test_case "hold expiry notifies" `Quick
            test_hold_expiry_sends_notification;
          Alcotest.test_case "keepalive timer" `Quick test_keepalive_timer_resends;
          Alcotest.test_case "keepalive re-arm interval" `Quick
            test_keepalive_rearm_interval;
          Alcotest.test_case "teardown action order" `Quick
            test_teardown_action_order;
          Alcotest.test_case "unexpected open" `Quick test_unexpected_open_in_established;
          Alcotest.test_case "notification resets" `Quick test_notification_resets;
          Alcotest.test_case "protocol error notifies" `Quick test_protocol_error_notifies;
          Alcotest.test_case "manual stop" `Quick test_manual_stop_ceases;
          Alcotest.test_case "passive mode" `Quick test_passive_waits;
          Alcotest.test_case "connect retry" `Quick test_connect_retry;
          Alcotest.test_case "connection loss" `Quick test_connection_loss_in_established
        ] );
      ( "framer",
        Alcotest.test_case "chunked stream" `Quick test_framer_chunked
        :: Alcotest.test_case "need more" `Quick test_framer_need_more
        :: Alcotest.test_case "poisoned" `Quick test_framer_poisoned
        :: List.map QCheck_alcotest.to_alcotest [ prop_framer_chunking ] );
      ( "session",
        [ Alcotest.test_case "handshake and update" `Quick
            test_session_handshake_and_update;
          Alcotest.test_case "garbage kills session" `Quick test_session_garbage_kills
        ] );
      ( "fsm-properties",
        List.map QCheck_alcotest.to_alcotest [ prop_fsm_never_crashes ] )
    ]
