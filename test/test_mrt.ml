(* MRT roundtrip, format sniffing, replay, and the scenario 13/14
   drivers. *)

module Mrt = Bgp_mrt.Mrt
module Replay = Bgp_mrt.Replay
module Mrt_gen = Bgp_speaker.Mrt_gen
module Table_io = Bgp_speaker.Table_io
module Msg = Bgp_wire.Msg
module I = Bgp_route.Attrs.Interned
module Prefix = Bgp_addr.Prefix
module Ipv4 = Bgp_addr.Ipv4
module Scenario = Bgpmark.Scenario
module Harness = Bgpmark.Harness

let asn = Bgp_route.Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let gen_records ?(seed = 42) ?(events = -1) ?(n = 80) () =
  Mrt_gen.records ~seed ~events ~n ~speaker_asn:(asn 65001)
    ~next_hop:(ip "192.0.2.1") ()

(* ------------------------------------------------------------------ *)
(* Record equality (for the write -> read roundtrip)                   *)
(* ------------------------------------------------------------------ *)

let peer_entry_eq a b =
  Ipv4.equal a.Mrt.pe_bgp_id b.Mrt.pe_bgp_id
  && Ipv4.equal a.Mrt.pe_addr b.Mrt.pe_addr
  && Bgp_route.Asn.equal a.Mrt.pe_asn b.Mrt.pe_asn

let source_eq a b =
  a.Mrt.src_peer = b.Mrt.src_peer
  && a.Mrt.src_time = b.Mrt.src_time
  && I.equal a.Mrt.src_attrs b.Mrt.src_attrs

let msg_eq a b =
  match a, b with
  | Msg.Update u, Msg.Update v ->
    List.for_all2 Prefix.equal u.Msg.withdrawn v.Msg.withdrawn
    && List.for_all2 Prefix.equal u.Msg.nlri v.Msg.nlri
    && (match u.Msg.attrs, v.Msg.attrs with
       | Some x, Some y -> I.equal x y
       | None, None -> true
       | _ -> false)
  | a, b -> a = b

let record_eq a b =
  match a, b with
  | Mrt.Peer_index a, Mrt.Peer_index b ->
    Ipv4.equal a.collector_id b.collector_id
    && String.equal a.view_name b.view_name
    && Array.length a.peers = Array.length b.peers
    && Array.for_all2 peer_entry_eq a.peers b.peers
  | Mrt.Rib a, Mrt.Rib b ->
    a.Mrt.seq = b.Mrt.seq
    && Prefix.equal a.Mrt.prefix b.Mrt.prefix
    && List.length a.Mrt.sources = List.length b.Mrt.sources
    && List.for_all2 source_eq a.Mrt.sources b.Mrt.sources
  | Mrt.Message a, Mrt.Message b ->
    Float.equal a.Mrt.ms_time b.Mrt.ms_time
    && Bgp_route.Asn.equal a.Mrt.ms_peer_asn b.Mrt.ms_peer_asn
    && Bgp_route.Asn.equal a.Mrt.ms_local_asn b.Mrt.ms_local_asn
    && Ipv4.equal a.Mrt.ms_peer_addr b.Mrt.ms_peer_addr
    && Ipv4.equal a.Mrt.ms_local_addr b.Mrt.ms_local_addr
    && msg_eq a.Mrt.ms_msg b.Mrt.ms_msg
  | _ -> false

let records_eq a b =
  List.length a = List.length b && List.for_all2 record_eq a b

(* ------------------------------------------------------------------ *)
(* Roundtrip                                                           *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_basic () =
  let records = gen_records () in
  match Mrt.of_string (Mrt.to_string records) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok (records', skipped) ->
    Alcotest.(check int) "nothing skipped" 0 skipped;
    Alcotest.(check bool) "records equal" true (records_eq records records')

let prop_roundtrip =
  QCheck2.Test.make ~name:"MRT write -> read roundtrip" ~count:30
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 120))
    (fun (seed, n) ->
      let records = gen_records ~seed ~n () in
      match Mrt.of_string (Mrt.to_string records) with
      | Error _ -> false
      | Ok (records', skipped) -> skipped = 0 && records_eq records records')

let test_file_roundtrip () =
  let records = gen_records ~n:50 () in
  let file = Filename.temp_file "bgpmark" ".mrt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Mrt.write_file file records;
      match Mrt.read_file file with
      | Error e -> Alcotest.failf "read_file failed: %s" e
      | Ok (records', _) ->
        Alcotest.(check bool) "file roundtrip" true (records_eq records records'))

let test_truncation_rejected () =
  let s = Mrt.to_string (gen_records ~n:20 ()) in
  List.iter
    (fun cut ->
      let t = String.sub s 0 (String.length s - cut) in
      match Mrt.of_string t with
      | Ok _ -> Alcotest.failf "accepted a dump truncated by %d bytes" cut
      | Error e ->
        Alcotest.(check bool) "error names an offset" true
          (String.length e > 0))
    [ 1; 3; 7 ]

(* ------------------------------------------------------------------ *)
(* Projections                                                         *)
(* ------------------------------------------------------------------ *)

let test_projections () =
  let n = 60 in
  let records = gen_records ~n ~events:40 () in
  let routes = Mrt.routes_of_dump records in
  Alcotest.(check int) "one route per RIB entry" n (List.length routes);
  let events = Mrt.updates_of_dump records in
  Alcotest.(check int) "every message projected" 40 (List.length events);
  (match events with
  | (off, _) :: _ -> Alcotest.(check (float 0.)) "rebased to zero" 0. off
  | [] -> Alcotest.fail "no events");
  Alcotest.(check bool) "offsets non-decreasing" true
    (let rec mono = function
       | (a, _) :: ((b, _) :: _ as rest) -> a <= b && mono rest
       | _ -> true
     in
     mono events);
  (* The oracle folds withdraw/announce effects over the table. *)
  let expected = Replay.expected_prefixes events (List.map fst routes) in
  Alcotest.(check bool) "oracle is a subset-or-equal of the table size" true
    (List.length expected <= n);
  Alcotest.(check bool) "oracle sorted and unique" true
    (let rec sorted = function
       | a :: (b :: _ as rest) -> Prefix.compare a b < 0 && sorted rest
       | _ -> true
     in
     sorted expected)

(* ------------------------------------------------------------------ *)
(* Sniffing and auto-detection                                         *)
(* ------------------------------------------------------------------ *)

let test_sniff () =
  let mrt = Mrt.to_string (gen_records ~n:10 ()) in
  Alcotest.(check bool) "mrt bytes" true
    (Mrt.sniff_string mrt = Mrt.Mrt_dump);
  Alcotest.(check bool) "bgpmark header" true
    (Mrt.sniff_string "# bgpmark-table v1\n" = Mrt.Bgpmark_table);
  Alcotest.(check bool) "garbage" true
    (Mrt.sniff_string "hello world, not a table" = Mrt.Unknown_format);
  Alcotest.(check bool) "empty" true
    (Mrt.sniff_string "" = Mrt.Unknown_format)

let with_temp_file content f =
  let file = Filename.temp_file "bgpmark" ".auto" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out_bin file in
      output_string oc content;
      close_out oc;
      f file)

let test_load_auto () =
  let n = 30 in
  (* MRT branch *)
  with_temp_file (Mrt.to_string (gen_records ~n ())) (fun file ->
      match Table_io.load_auto file with
      | Error e -> Alcotest.failf "MRT auto-load failed: %s" e
      | Ok entries ->
        Alcotest.(check int) "MRT entries" n (List.length entries));
  (* bgpmark text branch *)
  let entries = Table_io.synthesize ~seed:3 ~n ~speaker_asn:(asn 65001) () in
  let text =
    "# bgpmark-table v1\n"
    ^ String.concat "\n" (List.map Table_io.entry_to_line entries)
    ^ "\n"
  in
  with_temp_file text (fun file ->
      match Table_io.load_auto file with
      | Error e -> Alcotest.failf "text auto-load failed: %s" e
      | Ok entries' ->
        Alcotest.(check int) "text entries" n (List.length entries'));
  (* unknown format names both accepted formats *)
  with_temp_file "certainly not a table\n" (fun file ->
      match Table_io.load_auto file with
      | Ok _ -> Alcotest.fail "accepted garbage"
      | Error e ->
        let has needle =
          let lh = String.length needle and l = String.length e in
          let rec go i = i + lh <= l && (String.sub e i lh = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "names MRT" true (has "MRT");
        Alcotest.(check bool) "names bgpmark" true (has "bgpmark"))

(* ------------------------------------------------------------------ *)
(* Scenario 13: replay through the harness (sim)                       *)
(* ------------------------------------------------------------------ *)

let test_scenario13_sim () =
  let config =
    { Harness.default_config with table_size = 60; replay_events = 40 }
  in
  let arch = Bgp_router.Arch.xeon in
  let r = Harness.run ~config arch (Scenario.of_id_exn 13) in
  (match r.Harness.verified with
  | Ok () -> ()
  | Error e -> Alcotest.failf "scenario 13 failed verification: %s" e);
  Alcotest.(check bool) "fingerprint non-empty" true
    (String.length r.Harness.locrib_fp > 0);
  Alcotest.(check bool) "throughput positive" true (r.Harness.tps > 0.);
  (* Determinism: the same seed replays to the same Loc-RIB. *)
  let r2 = Harness.run ~config arch (Scenario.of_id_exn 13) in
  Alcotest.(check string) "deterministic fingerprint" r.Harness.locrib_fp
    r2.Harness.locrib_fp

let test_scenario13_paced () =
  let config =
    { Harness.default_config with
      table_size = 40; replay_events = 20; replay_speedup = Some 100. }
  in
  let arch = Bgp_router.Arch.xeon in
  let r = Harness.run ~config arch (Scenario.of_id_exn 13) in
  match r.Harness.verified with
  | Ok () -> ()
  | Error e -> Alcotest.failf "paced replay failed verification: %s" e

(* ------------------------------------------------------------------ *)
(* Scenario 14: flap storm under damping (sim)                         *)
(* ------------------------------------------------------------------ *)

let test_scenario14_sim () =
  let config =
    { Harness.default_config with table_size = 40; fault_rounds = 3 }
  in
  let arch = Bgp_router.Arch.xeon in
  let r = Harness.run ~config arch (Scenario.of_id_exn 14) in
  (match r.Harness.verified with
  | Ok () -> ()
  | Error e -> Alcotest.failf "scenario 14 failed verification: %s" e);
  match r.Harness.damping with
  | None -> Alcotest.fail "no damping report"
  | Some d ->
    Alcotest.(check bool) "routes were suppressed" true
      (d.Harness.dr_suppressions > 0);
    Alcotest.(check int) "all suppressed routes reused"
      d.Harness.dr_suppressions d.Harness.dr_reuses;
    Alcotest.(check int) "nothing left suppressed" 0
      d.Harness.dr_suppressed_end;
    Alcotest.(check bool) "reuse latency observed" true
      (d.Harness.dr_reuse_latency_max > 0.)

(* Damping off must not change the paper-faithful path at all. *)
let test_damping_off_identical () =
  let arch = Bgp_router.Arch.xeon in
  let config = { Harness.default_config with table_size = 300 } in
  let sc = Scenario.of_id_exn 10 in
  let plain = Harness.run ~config arch sc in
  let damped =
    Harness.run
      ~config:{ config with damping = Some Bgp_rib.Damping.test_config }
      arch sc
  in
  (match plain.Harness.verified with
  | Ok () -> ()
  | Error e -> Alcotest.failf "undamped scenario 10 failed: %s" e);
  (match damped.Harness.verified with
  | Ok () -> ()
  | Error e -> Alcotest.failf "damped scenario 10 failed: %s" e);
  Alcotest.(check string) "same final Loc-RIB" plain.Harness.locrib_fp
    damped.Harness.locrib_fp;
  Alcotest.(check bool) "undamped run has no damping report" true
    (plain.Harness.damping = None)

let qtests tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  ignore pfx;
  Alcotest.run "bgp_mrt"
    [ ( "roundtrip",
        Alcotest.test_case "basic" `Quick test_roundtrip_basic
        :: Alcotest.test_case "file" `Quick test_file_roundtrip
        :: Alcotest.test_case "truncation rejected" `Quick
             test_truncation_rejected
        :: qtests [ prop_roundtrip ] );
      ( "projections",
        [ Alcotest.test_case "routes and events" `Quick test_projections ] );
      ( "sniffing",
        [ Alcotest.test_case "sniff" `Quick test_sniff;
          Alcotest.test_case "load_auto" `Quick test_load_auto ] );
      ( "scenarios",
        [ Alcotest.test_case "13 replay sim" `Quick test_scenario13_sim;
          Alcotest.test_case "13 paced" `Quick test_scenario13_paced;
          Alcotest.test_case "14 damping sim" `Quick test_scenario14_sim;
          Alcotest.test_case "damping ablation" `Quick
            test_damping_off_identical ] ) ]
